// pdsl_cli — command-line front door to the library.
//
//   pdsl_cli run        --algorithm pdsl --topology ring --agents 8 ...
//   pdsl_cli topology   --agents 10,15,20
//   pdsl_cli calibrate  --eps 0.1 --delta 1e-3 --clip 1 --batch 250 ...
//   pdsl_cli help
//
// `run` executes one experiment and prints the per-round series (optionally
// writing CSV and a model checkpoint); `topology` prints spectral/structure
// facts for the supported graphs; `calibrate` compares every sigma
// calibration mode and the total privacy spend over T rounds.

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "core/config_io.hpp"
#include "core/experiment.hpp"
#include "core/replicate.hpp"
#include "dp/accountant.hpp"
#include "dp/calibration.hpp"
#include "dp/mechanism.hpp"
#include "dp/rdp.hpp"
#include "graph/spectral.hpp"
#include "io/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "fleet/options.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "sim/metrics.hpp"

using namespace pdsl;

namespace {

int usage() {
  std::printf(
      "usage: pdsl_cli <command> [--flag value ...]\n"
      "\n"
      "commands:\n"
      "  run        run one experiment (or several seeds) and print the series\n"
      "             flags: --config <file.json> --json (machine-readable output)\n"
      "                    --algorithm --dataset --model --topology --agents --rounds\n"
      "                    --train --image --mu --partition --batch --gamma --alpha\n"
      "                    --clip --eps --delta --sigma_mode --noise_scale --seed\n"
      "                    --seeds 1,2,3 --compression --drop_prob --corrupt\n"
      "                    --csv <path> --save_model <path>\n"
      "                    --drop-prob P (alias of --drop_prob: lossy links)\n"
      "                    --delay-rounds D --delay-prob P (S-FAULT: delayed\n"
      "                      messages surface 1..D rounds late)\n"
      "                    --churn P --churn-interval K (agents offline with\n"
      "                      prob P per K-round interval)\n"
      "                    --staleness S (reuse a neighbor's cached\n"
      "                      cross-gradient up to S rounds old)\n"
      "                    --byz-frac F --byz-mode sign_flip|scale|noise|nan_bomb|\n"
      "                      stale_replay --byz-scale X --byz-onset T (S-BYZ:\n"
      "                      first round(F*M) agents attack from round T on)\n"
      "                    --robust-agg none|trimmed_mean|median --sanitize\n"
      "                      auto|on|off (consumer-side defense screening)\n"
      "                    --participation full|sampled|walk --active K\n"
      "                      --participation-rate R (S-SCALE: k of N agents\n"
      "                      per round, or a single random walker)\n"
      "                    --sparse --degree D (CSR graphs; enables the\n"
      "                      regular/geometric topologies at fleet scale)\n"
      "                    --lazy-state --worker-cache N (materialize agent\n"
      "                      state on demand, LRU-evict above N)\n"
      "                    --wire-roundtrip (encode+decode+verify every\n"
      "                      message through the fleet wire format)\n"
      "                    --metric-agents K (evaluate loss/acc on the first\n"
      "                      K agents only; 0 = all)\n"
      "                    --threads N (parallel agents; 1=sequential, 0=auto-detect)\n"
      "                    --backend blocked|naive|vectorized|auto (S-KER math\n"
      "                      kernels; default blocked, or the PDSL_KERNEL_BACKEND\n"
      "                      env var; vectorized/auto = S-VEC fast-math tier,\n"
      "                      deterministic but tolerance-banded, not bit-identical)\n"
      "                    --shapley-eval sequential|batched|linear (S-SHAP:\n"
      "                      batched = one stacked GEMM per layer, bit-identical;\n"
      "                      linear = reuse per-member first-layer pre-activations\n"
      "                      across coalitions, fastest, tolerance-banded; the\n"
      "                      default)\n"
      "                    --shapley-method mc|exact|tmc|stratified|adaptive\n"
      "                      (adaptive = antithetic pairs + CI early stop;\n"
      "                      see --shapley-min-perms / --shapley-ci-z)\n"
      "                    --shapley-min-perms K --shapley-ci-z Z (adaptive MC\n"
      "                      floor and confidence width; budget stays --mc_perms)\n"
      "                    --corrupt-prob P --dup-prob P --reorder-prob P\n"
      "                      --max-retries R (S-RECOV unreliable channel:\n"
      "                      deterministic bit flips caught by the wire checksum\n"
      "                      and NACK/retransmitted with exponential backoff,\n"
      "                      plus duplicate and out-of-order delivery)\n"
      "                    --crash-prob P --snapshot-every K --recovery-dir <dir>\n"
      "                      (S-RECOV fail-stop crashes: a crashed agent loses\n"
      "                      model/momentum/caches and restarts from its latest\n"
      "                      K-round snapshot plus a neighbor state-resync)\n"
      "                    --checkpoint-every N --checkpoint-path <f> (persist a\n"
      "                      resumable run-state file every N rounds)\n"
      "                    --resume-from <f> (continue a checkpointed run\n"
      "                      bit-identically; config must match the checkpoint)\n"
      "                    --profile (per-phase timing table + key counters)\n"
      "                    --trace-out <t.json> (Chrome trace-event spans)\n"
      "                    --metrics-out <m.csv> (metrics registry dump)\n"
      "                    --ledger-out <l.jsonl> (S-BENCH360 run ledger:\n"
      "                      per-round epsilon/pi/fault events as JSONL)\n"
      "  topology   print spectral facts for the supported graphs\n"
      "             flags: --agents 10,15,20\n"
      "  calibrate  compare sigma calibrations and composed privacy budgets\n"
      "             flags: --topology --agents --eps --delta --clip --batch --rounds\n"
      "                    --phimin\n"
      "  help       this text\n");
  return 2;
}

int cmd_run(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"algorithm", "dataset",  "model",   "topology",    "agents",
                      "rounds",    "train",    "image",   "mu",          "partition",
                      "batch",     "gamma",    "alpha",   "clip",        "eps",
                      "delta",     "sigma_mode", "noise_scale", "seed",  "seeds",
                      "compression", "drop_prob", "drop-prob", "corrupt", "csv",
                      "save_model",
                      "mc_perms",  "valbatch", "hidden",  "config",      "json",
                      "shapley-eval", "shapley_eval", "shapley-method", "shapley_method",
                      "shapley-min-perms", "shapley_min_perms",
                      "shapley-ci-z", "shapley_ci_z",
                      "threads",   "backend",  "profile",  "trace-out", "trace_out",
                      "metrics-out", "metrics_out", "ledger-out", "ledger_out",
                      "delay-rounds", "delay_rounds", "delay-prob", "delay_prob",
                      "churn", "churn-interval", "churn_interval",
                      "staleness",
                      "byz-frac", "byz_frac", "byz-mode", "byz_mode",
                      "byz-scale", "byz_scale", "byz-onset", "byz_onset",
                      "robust-agg", "robust_agg", "sanitize",
                      "participation", "active", "participation-rate", "participation_rate",
                      "sparse", "degree", "radius", "lazy-state", "lazy_state",
                      "worker-cache", "worker_cache", "wire-roundtrip", "wire_roundtrip",
                      "metric-agents", "metric_agents",
                      "corrupt-prob", "corrupt_prob", "dup-prob", "dup_prob",
                      "reorder-prob", "reorder_prob", "max-retries", "max_retries",
                      "crash-prob", "crash_prob", "snapshot-every", "snapshot_every",
                      "recovery-dir", "recovery_dir",
                      "checkpoint-every", "checkpoint_every",
                      "checkpoint-path", "checkpoint_path",
                      "resume-from", "resume_from"});
  core::ExperimentConfig cfg;
  if (args.has("config")) {
    cfg = core::load_config(args.get_string("config", ""));
  }
  const bool from_file = args.has("config");
  // Loud flag-range validation: a bad value exits immediately with a message
  // naming the offending flag, instead of wrapping through a size_t cast or
  // surfacing as a confusing failure deep inside the run.
  const auto prob = [](const char* flag, double v, double hi_excl = -1.0) {
    const bool bad = hi_excl > 0.0 ? (v < 0.0 || v >= hi_excl) : (v < 0.0 || v > 1.0);
    if (bad) {
      throw std::invalid_argument(std::string("--") + flag + " must be in [0,1" +
                                  (hi_excl > 0.0 ? ")" : "]") + ", got " + std::to_string(v));
    }
    return v;
  };
  const auto nonneg = [](const char* flag, std::int64_t v) {
    if (v < 0) {
      throw std::invalid_argument(std::string("--") + flag + " must be >= 0, got " +
                                  std::to_string(v));
    }
    return static_cast<std::size_t>(v);
  };
  const auto positive = [](const char* flag, std::int64_t v) {
    if (v <= 0) {
      throw std::invalid_argument(std::string("--") + flag + " must be > 0, got " +
                                  std::to_string(v));
    }
    return static_cast<std::size_t>(v);
  };
  // CLI defaults differ from the struct's (they target the quick demo scale);
  // a config file's values win over CLI defaults, explicit flags win over both.
  if (!from_file) {
    cfg.agents = 6;
    cfg.rounds = 25;
    cfg.train_samples = 900;
    cfg.image = 10;
    cfg.hp.batch = 16;
    cfg.hp.gamma = 0.05;
    cfg.hp.shapley_permutations = 6;
    cfg.hp.validation_batch = 32;
    cfg.epsilon = 0.3;
    cfg.noise_scale = 0.06;
  }
  cfg.algorithm = args.get_string("algorithm", cfg.algorithm);
  cfg.dataset = args.get_string("dataset", cfg.dataset);
  cfg.model = args.get_string("model", cfg.model);
  cfg.topology = args.get_string("topology", cfg.topology);
  cfg.agents = positive("agents", args.get_int("agents", static_cast<std::int64_t>(cfg.agents)));
  cfg.rounds = positive("rounds", args.get_int("rounds", static_cast<std::int64_t>(cfg.rounds)));
  cfg.train_samples =
      positive("train", args.get_int("train", static_cast<std::int64_t>(cfg.train_samples)));
  cfg.image = positive("image", args.get_int("image", static_cast<std::int64_t>(cfg.image)));
  cfg.hidden = positive("hidden", args.get_int("hidden", static_cast<std::int64_t>(cfg.hidden)));
  cfg.mu = args.get_double("mu", cfg.mu);
  cfg.partition = args.get_string("partition", cfg.partition);
  cfg.hp.batch =
      positive("batch", args.get_int("batch", static_cast<std::int64_t>(cfg.hp.batch)));
  cfg.hp.gamma = args.get_double("gamma", cfg.hp.gamma);
  cfg.hp.alpha = args.get_double("alpha", cfg.hp.alpha);
  cfg.hp.clip = args.get_double("clip", cfg.hp.clip);
  cfg.hp.shapley_permutations = static_cast<std::size_t>(
      args.get_int("mc_perms", static_cast<std::int64_t>(cfg.hp.shapley_permutations)));
  cfg.hp.validation_batch = static_cast<std::size_t>(
      args.get_int("valbatch", static_cast<std::int64_t>(cfg.hp.validation_batch)));
  // S-SHAP scoring knobs. Validated loudly here (naming the flag) in addition
  // to the Pdsl constructor, so a typo fails before any dataset is generated.
  cfg.hp.shapley_eval = args.get_string(
      "shapley-eval", args.get_string("shapley_eval", cfg.hp.shapley_eval));
  if (cfg.hp.shapley_eval != "sequential" && cfg.hp.shapley_eval != "batched" &&
      cfg.hp.shapley_eval != "linear") {
    throw std::invalid_argument(
        "--shapley-eval must be 'sequential', 'batched' or 'linear', got '" +
        cfg.hp.shapley_eval + "'");
  }
  cfg.hp.shapley_method = args.get_string(
      "shapley-method", args.get_string("shapley_method", cfg.hp.shapley_method));
  if (cfg.hp.shapley_method != "mc" && cfg.hp.shapley_method != "exact" &&
      cfg.hp.shapley_method != "tmc" && cfg.hp.shapley_method != "stratified" &&
      cfg.hp.shapley_method != "adaptive") {
    throw std::invalid_argument(
        "--shapley-method must be mc|exact|tmc|stratified|adaptive, got '" +
        cfg.hp.shapley_method + "'");
  }
  cfg.hp.shapley_min_permutations = positive(
      "shapley-min-perms",
      args.get_int("shapley-min-perms",
                   args.get_int("shapley_min_perms",
                                static_cast<std::int64_t>(cfg.hp.shapley_min_permutations))));
  cfg.hp.shapley_ci_z =
      args.get_double("shapley-ci-z", args.get_double("shapley_ci_z", cfg.hp.shapley_ci_z));
  if (cfg.hp.shapley_ci_z < 0.0) {
    throw std::invalid_argument("--shapley-ci-z must be >= 0, got " +
                                std::to_string(cfg.hp.shapley_ci_z));
  }
  cfg.epsilon = args.get_double("eps", cfg.epsilon);
  cfg.delta = args.get_double("delta", cfg.delta);
  cfg.sigma_mode = args.get_string("sigma_mode", cfg.sigma_mode);
  cfg.noise_scale = args.get_double("noise_scale", cfg.noise_scale);
  cfg.compression = args.get_string("compression", cfg.compression);
  cfg.drop_prob = prob("drop-prob",
                       args.get_double("drop-prob", args.get_double("drop_prob", cfg.drop_prob)),
                       /*hi_excl=*/1.0);
  // S-FAULT knobs (dash and underscore spellings accepted, like trace-out).
  cfg.faults.delay_rounds = nonneg(
      "delay-rounds",
      args.get_int("delay-rounds",
                   args.get_int("delay_rounds", static_cast<std::int64_t>(cfg.faults.delay_rounds))));
  cfg.faults.delay_prob = prob(
      "delay-prob",
      args.get_double("delay-prob", args.get_double("delay_prob", cfg.faults.delay_prob)));
  // --delay-rounds without --delay-prob gets a visible default rate, so the
  // single-flag quickstart actually injects delays.
  if (cfg.faults.delay_rounds > 0 && cfg.faults.delay_prob == 0.0) {
    cfg.faults.delay_prob = 0.25;
  }
  cfg.faults.churn_prob = prob("churn", args.get_double("churn", cfg.faults.churn_prob));
  cfg.faults.churn_interval = nonneg(
      "churn-interval",
      args.get_int("churn-interval",
                   args.get_int("churn_interval", static_cast<std::int64_t>(cfg.faults.churn_interval))));
  cfg.faults.staleness_rounds = nonneg(
      "staleness",
      args.get_int("staleness", static_cast<std::int64_t>(cfg.faults.staleness_rounds)));
  cfg.faults.validate();
  // S-RECOV unreliable-channel transport + crash/recovery flags.
  cfg.channel.corrupt_prob = prob(
      "corrupt-prob",
      args.get_double("corrupt-prob", args.get_double("corrupt_prob", cfg.channel.corrupt_prob)),
      /*hi_excl=*/1.0);
  cfg.channel.duplicate_prob = prob(
      "dup-prob", args.get_double("dup-prob", args.get_double("dup_prob", cfg.channel.duplicate_prob)),
      /*hi_excl=*/1.0);
  cfg.channel.reorder_prob = prob(
      "reorder-prob",
      args.get_double("reorder-prob", args.get_double("reorder_prob", cfg.channel.reorder_prob)),
      /*hi_excl=*/1.0);
  cfg.channel.max_retries = nonneg(
      "max-retries",
      args.get_int("max-retries",
                   args.get_int("max_retries", static_cast<std::int64_t>(cfg.channel.max_retries))));
  cfg.channel.validate();
  cfg.crash.crash_prob = prob(
      "crash-prob", args.get_double("crash-prob", args.get_double("crash_prob", cfg.crash.crash_prob)),
      /*hi_excl=*/1.0);
  cfg.crash.snapshot_every = nonneg(
      "snapshot-every",
      args.get_int("snapshot-every",
                   args.get_int("snapshot_every", static_cast<std::int64_t>(cfg.crash.snapshot_every))));
  cfg.crash.validate();
  cfg.recovery_dir =
      args.get_string("recovery-dir", args.get_string("recovery_dir", cfg.recovery_dir));
  cfg.checkpoint_every = nonneg(
      "checkpoint-every",
      args.get_int("checkpoint-every",
                   args.get_int("checkpoint_every", static_cast<std::int64_t>(cfg.checkpoint_every))));
  cfg.checkpoint_path =
      args.get_string("checkpoint-path", args.get_string("checkpoint_path", cfg.checkpoint_path));
  cfg.resume_from =
      args.get_string("resume-from", args.get_string("resume_from", cfg.resume_from));
  if (cfg.checkpoint_every > 0 && cfg.checkpoint_path.empty()) {
    throw std::invalid_argument("--checkpoint-every needs --checkpoint-path <file>");
  }
  // S-BYZ adversary + defense flags.
  cfg.adversary.frac =
      prob("byz-frac", args.get_double("byz-frac", args.get_double("byz_frac", cfg.adversary.frac)));
  if (args.has("byz-mode") || args.has("byz_mode")) {
    cfg.adversary.mode = sim::byz_mode_from_string(
        args.get_string("byz-mode", args.get_string("byz_mode", "sign_flip")));
  }
  cfg.adversary.scale =
      args.get_double("byz-scale", args.get_double("byz_scale", cfg.adversary.scale));
  cfg.adversary.onset = nonneg(
      "byz-onset",
      args.get_int("byz-onset", args.get_int("byz_onset", static_cast<std::int64_t>(cfg.adversary.onset))));
  cfg.adversary.validate();
  if (args.has("robust-agg") || args.has("robust_agg")) {
    cfg.defense.robust_agg = algos::robust_agg_from_string(
        args.get_string("robust-agg", args.get_string("robust_agg", "none")));
  }
  if (args.has("sanitize")) {
    cfg.defense.sanitize = algos::sanitize_from_string(args.get_string("sanitize", "auto"));
  }
  cfg.corrupt_agents = nonneg(
      "corrupt", args.get_int("corrupt", static_cast<std::int64_t>(cfg.corrupt_agents)));
  cfg.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(cfg.seed)));
  cfg.threads = nonneg(
      "threads", args.get_int("threads", static_cast<std::int64_t>(cfg.threads)));
  cfg.backend = args.get_string("backend", cfg.backend);
  // S-SCALE fleet flags. Range checks happen here (loud, naming the flag)
  // and again in FleetOptions::validate once the agent count is known.
  if (args.has("participation")) {
    cfg.fleet.participation.mode =
        fleet::participation_mode_from_string(args.get_string("participation", "full"));
  }
  cfg.fleet.participation.active = nonneg(
      "active", args.get_int("active", static_cast<std::int64_t>(cfg.fleet.participation.active)));
  if (cfg.fleet.participation.active > cfg.agents) {
    throw std::invalid_argument("--active (" + std::to_string(cfg.fleet.participation.active) +
                                ") exceeds --agents (" + std::to_string(cfg.agents) + ")");
  }
  cfg.fleet.participation.rate =
      args.get_double("participation-rate",
                      args.get_double("participation_rate", cfg.fleet.participation.rate));
  if (cfg.fleet.participation.rate < 0.0 || cfg.fleet.participation.rate > 1.0) {
    throw std::invalid_argument("--participation-rate must be in (0,1], got " +
                                std::to_string(cfg.fleet.participation.rate));
  }
  if (cfg.fleet.participation.mode == fleet::ParticipationMode::kSampled &&
      cfg.fleet.participation.active == 0 && cfg.fleet.participation.rate == 0.0) {
    throw std::invalid_argument(
        "--participation sampled needs --active K or --participation-rate R");
  }
  cfg.fleet.sparse = args.get_bool("sparse", cfg.fleet.sparse);
  cfg.fleet.degree = nonneg(
      "degree", args.get_int("degree", static_cast<std::int64_t>(cfg.fleet.degree)));
  if (cfg.topology == "regular" && cfg.fleet.degree >= cfg.agents) {
    throw std::invalid_argument("--degree (" + std::to_string(cfg.fleet.degree) +
                                ") must be below --agents (" + std::to_string(cfg.agents) + ")");
  }
  cfg.fleet.radius = args.get_double("radius", cfg.fleet.radius);
  cfg.fleet.lazy_state =
      args.get_bool("lazy-state", args.get_bool("lazy_state", cfg.fleet.lazy_state));
  cfg.fleet.worker_cache = nonneg(
      "worker-cache",
      args.get_int("worker-cache",
                   args.get_int("worker_cache", static_cast<std::int64_t>(cfg.fleet.worker_cache))));
  cfg.fleet.wire_roundtrip =
      args.get_bool("wire-roundtrip", args.get_bool("wire_roundtrip", cfg.fleet.wire_roundtrip));
  cfg.fleet.validate(cfg.agents);
  // The Shapley characteristic function keys coalitions by a 64-bit mask, so a
  // dense PDSL game is capped at 63 players (an agent plus its neighbors).
  // Catch the 1024-agent-fleet-on-full-graph mistake here, before any data is
  // generated; sparse graphs keep neighborhoods small and stay fine.
  if (cfg.algorithm.rfind("pdsl", 0) == 0 && cfg.topology == "full" &&
      !cfg.fleet.sparse && cfg.agents > 63) {
    throw std::invalid_argument(
        "--agents " + std::to_string(cfg.agents) +
        " on a full graph gives every agent a " + std::to_string(cfg.agents) +
        "-player Shapley game, above the 63-player uint64 coalition-mask cap; "
        "use --sparse --degree <= 62 (or a ring/torus topology) at this scale");
  }
  cfg.metrics.metric_agents = nonneg(
      "metric-agents",
      args.get_int("metric-agents",
                   args.get_int("metric_agents", static_cast<std::int64_t>(cfg.metrics.metric_agents))));
  if (cfg.metrics.eval_every == 1) cfg.metrics.eval_every = 5;
  cfg.profile = args.get_bool("profile", cfg.profile);
  cfg.trace_out =
      args.get_string("trace-out", args.get_string("trace_out", cfg.trace_out));
  cfg.ledger_out =
      args.get_string("ledger-out", args.get_string("ledger_out", cfg.ledger_out));
  const std::string metrics_out =
      args.get_string("metrics-out", args.get_string("metrics_out", ""));

  if (args.has("seeds")) {
    const auto seed_ints = args.get_int_list("seeds", {1, 2, 3});
    const auto rep =
        core::run_replicated(cfg, std::vector<std::uint64_t>(seed_ints.begin(), seed_ints.end()));
    std::printf("%s over %zu seeds: loss %.4f +- %.4f, accuracy %.3f +- %.3f\n",
                cfg.algorithm.c_str(), rep.runs.size(), rep.final_loss.mean,
                rep.final_loss.stddev, rep.final_accuracy.mean, rep.final_accuracy.stddev);
    return 0;
  }

  const auto res = core::run_experiment(cfg);
  if (args.get_bool("json", false)) {
    std::printf("%s\n", core::result_to_json(res).dump(2).c_str());
    return 0;
  }
  std::printf("algorithm=%s d=%zu sigma=%.4f heterogeneity=%.3f rho=%.3f\n",
              res.algorithm.c_str(), res.model_dim, res.sigma, res.heterogeneity,
              res.spectral.rho);
  std::printf("%6s %10s %10s %12s\n", "round", "avg_loss", "test_acc", "consensus");
  for (const auto& m : res.series) {
    if (m.round % 5 == 0 || m.round == 1 || m.round == res.series.size()) {
      std::printf("%6zu %10.4f %10.3f %12.5f\n", m.round, m.avg_loss, m.test_accuracy,
                  m.consensus);
    }
  }
  std::printf("final: loss=%.4f acc=%.3f messages=%zu bytes=%.1fMB\n", res.final_loss,
              res.final_accuracy, res.messages, static_cast<double>(res.bytes) / 1e6);
  if (res.epsilon_spent > 0.0) {
    std::printf("privacy: epsilon_spent=%.3f at delta=%.1e (RDP, per-round releases)\n",
                res.epsilon_spent, cfg.delta);
  }
  if (!cfg.ledger_out.empty()) {
    std::printf("run ledger written to %s\n", cfg.ledger_out.c_str());
  }
  if (res.dropped != 0 || res.delayed != 0) {
    std::printf("faults: dropped=%zu delayed=%zu\n", res.dropped, res.delayed);
  }
  if (res.corrupted != 0 || res.rejected != 0 || res.reclipped != 0) {
    std::printf("byzantine: corrupted=%zu rejected=%zu reclipped=%zu\n", res.corrupted,
                res.rejected, res.reclipped);
  }
  if (res.retransmits != 0 || res.corruptions_detected != 0 || res.duplicates_dropped != 0 ||
      res.reordered != 0) {
    std::printf(
        "transport: retransmits=%zu corrupt_detected=%zu retry_exhausted=%zu "
        "dup_dropped=%zu reordered=%zu\n",
        res.retransmits, res.corruptions_detected, res.retry_exhausted,
        res.duplicates_dropped, res.reordered);
  }
  if (res.crashes != 0) {
    std::printf("recovery: crashes=%zu resyncs=%zu\n", res.crashes, res.resyncs);
  }
  if (res.resumed_from_round != 0) {
    std::printf("resumed from round %zu (%s)\n", res.resumed_from_round,
                cfg.resume_from.c_str());
  }
  if (cfg.checkpoint_every > 0 && cfg.rounds > cfg.checkpoint_every) {
    std::printf("resumable run state checkpointed to %s (every %zu rounds)\n",
                cfg.checkpoint_path.c_str(), cfg.checkpoint_every);
  }
  if (cfg.fleet.enabled()) {
    std::printf("fleet: participants=%zu/%zu workers_peak=%zu models_materialized=%zu",
                res.participants, cfg.agents, res.workers_peak, res.models_materialized);
    if (res.wire_messages != 0) {
      std::printf(" wire=%zu msgs/%.1fMB", res.wire_messages,
                  static_cast<double>(res.wire_bytes) / 1e6);
    }
    std::printf("\n");
  }

  if (cfg.profile) {
    auto& reg = obs::MetricsRegistry::global();
    std::printf("\n-- phase breakdown (%zu rounds) --\n%s", cfg.rounds,
                obs::format_phase_table(res.phase_totals, cfg.rounds).c_str());
    const auto clip_total = reg.counter("grad.clip_total").value();
    const auto clipped = reg.counter("grad.clipped").value();
    std::printf("shapley.coalition_evals=%llu  grad.clip_fraction=%.3f  dp.sigma=%.4f\n",
                static_cast<unsigned long long>(
                    reg.counter("shapley.coalition_evals").value()),
                clip_total == 0 ? 0.0
                                : static_cast<double>(clipped) /
                                      static_cast<double>(clip_total),
                reg.gauge("dp.sigma").value());
    std::printf(
        "shapley.coalitions_batched=%llu  cache_hits=%llu  cache_misses=%llu  "
        "permutations_early_stopped=%llu\n",
        static_cast<unsigned long long>(reg.counter("shapley.coalitions_batched").value()),
        static_cast<unsigned long long>(reg.counter("shapley.cache_hits").value()),
        static_cast<unsigned long long>(reg.counter("shapley.cache_misses").value()),
        static_cast<unsigned long long>(
            reg.counter("shapley.permutations_early_stopped").value()));
  }
  if (!cfg.trace_out.empty()) {
    std::printf("trace written to %s (%zu events; load in chrome://tracing)\n",
                cfg.trace_out.c_str(), obs::TraceRecorder::global().size());
  }
  if (!metrics_out.empty()) {
    obs::MetricsRegistry::global().write_csv(metrics_out);
    std::printf("metrics registry written to %s\n", metrics_out.c_str());
  }

  if (args.has("csv")) {
    sim::write_metrics_csv(args.get_string("csv", ""), cfg.algorithm, res.series);
    std::printf("series written to %s\n", args.get_string("csv", "").c_str());
  }
  if (args.has("save_model")) {
    // Persist the consensus (average) model; agents are near-consensus
    // after the final gossip step anyway.
    const auto path = args.get_string("save_model", "");
    io::save_params(path, res.average_model);
    std::printf("average model written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_topology(int argc, const char* const* argv) {
  const CliArgs args(argc, argv, {"agents"});
  const auto counts = args.get_int_list("agents", {10, 15, 20});
  std::printf("%-16s %4s %6s %8s %8s %10s %10s\n", "topology", "M", "edges", "rho",
              "gap", "omega_min", "diam<=M?");
  Rng rng(1);
  for (const std::string name : {"full", "bipartite", "torus", "ring", "star", "er"}) {
    for (const auto m : counts) {
      try {
        const auto topo = graph::Topology::make(graph::topology_from_string(name),
                                                static_cast<std::size_t>(m), &rng);
        const auto w = graph::MixingMatrix::metropolis(topo);
        const auto info = graph::analyze(w);
        std::printf("%-16s %4lld %6zu %8.4f %8.4f %10.4f %10s\n", name.c_str(),
                    static_cast<long long>(m), topo.num_edges(), info.rho, info.spectral_gap,
                    w.min_positive_weight(), topo.is_connected() ? "yes" : "NO");
      } catch (const std::exception& e) {
        std::printf("%-16s %4lld  (skipped: %s)\n", name.c_str(), static_cast<long long>(m),
                    e.what());
      }
    }
  }
  return 0;
}

int cmd_calibrate(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"topology", "agents", "eps", "delta", "clip", "batch", "rounds", "phimin"});
  const std::string topology = args.get_string("topology", "full");
  const auto m = static_cast<std::size_t>(args.get_int("agents", 10));
  const double eps = args.get_double("eps", 0.1);
  const double delta = args.get_double("delta", 1e-3);
  const double clip = args.get_double("clip", 1.0);
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 250));
  const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 180));
  const double phimin = args.get_double("phimin", 0.1);

  Rng rng(1);
  const auto topo = graph::Topology::make(graph::topology_from_string(topology), m, &rng);
  const auto w = graph::MixingMatrix::metropolis(topo);
  const double sens = 2.0 * clip / static_cast<double>(batch);
  const double sigma_dpsgd = dp::gaussian_sigma(sens, eps, delta);
  dp::Theorem1Params p;
  p.epsilon = eps;
  p.delta = delta;
  p.clip = clip;
  p.phi_hat_min = phimin;
  const double sigma_thm = dp::theorem1_sigma(w, p);

  std::printf("topology=%s M=%zu eps=%.3g delta=%.1e clip=%.2f batch=%zu\n", topology.c_str(),
              m, eps, delta, clip, batch);
  std::printf("  per-round DP-SGD sigma (sens 2C/B):  %.6f\n", sigma_dpsgd);
  std::printf("  Theorem-1 sigma (phi_hat_min=%.2f):  %.4f\n", phimin, sigma_thm);
  std::printf("  Theorem-1 L2 sensitivity bound:      %.4f\n",
              dp::theorem1_sensitivity(w, clip));

  dp::PrivacyAccountant acc;
  acc.record_rounds(eps, delta, rounds);
  dp::RdpAccountant rdp;
  rdp.add_gaussian(sigma_dpsgd / sens, rounds);
  std::printf("composition over %zu rounds:\n", rounds);
  std::printf("  basic:    eps=%.3f  delta=%.2e\n", acc.basic_epsilon(), acc.basic_delta());
  std::printf("  advanced: eps=%.3f  (delta'=%.0e)\n", acc.advanced_epsilon(delta), delta);
  std::printf("  RDP:      eps=%.3f  at delta=%.2e (best order %.1f)\n",
              rdp.epsilon(acc.basic_delta()), acc.basic_delta(),
              rdp.best_order(acc.basic_delta()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Shift argv so CliArgs sees only the flags.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (cmd == "run") return cmd_run(sub_argc, sub_argv);
    if (cmd == "topology") return cmd_topology(sub_argc, sub_argv);
    if (cmd == "calibrate") return cmd_calibrate(sub_argc, sub_argv);
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
      usage();
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdsl_cli %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "pdsl_cli: unknown command '%s'\n", cmd.c_str());
  return usage();
}
