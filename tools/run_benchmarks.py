#!/usr/bin/env python3
"""S-BENCH360 driver: one-command benchmark/regression harness.

Rebuilds the Release tree, runs a selectable subset of the bench binaries
(each emitting the canonical schema-v1 envelope from bench/bench_util), merges
N repeats into per-metric median/min/max sample arrays, writes the merged
BENCH_<id>.json files at the repo root, appends a history line per bench to
BENCH_HISTORY.jsonl, and renders BENCH_REPORT.md with a leaderboard plus a
perf-trajectory section diffed against prior history entries.

Usage:
    python tools/run_benchmarks.py --quick          # default subset, 1 repeat
    python tools/run_benchmarks.py --repeats 5      # default subset, medians over 5
    python tools/run_benchmarks.py --only fig1,kernels
    python tools/run_benchmarks.py --validate       # schema-check checked-in files
    python tools/run_benchmarks.py --git-commit HEAD~1   # A/B vs an older rev

A/B mode builds the older rev in a temporary git worktree so speedups are
measured against a real binary, not remembered numbers. Only benches whose
binary already emitted JSON at the old rev participate; legacy (pre-envelope)
schemas are extracted tolerantly.
"""

import argparse
import datetime
import glob
import json
import os
import shutil
import statistics
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCHEMA_VERSION = 1

# Bench registry: binary name, envelope output filename the binary writes,
# quick-mode args (tiny configs for the big sweeps), default args, and which
# metric names to surface in the leaderboard (prefix match; [] = all).
FIG_QUICK = ["--rounds", "2", "--train", "300", "--agents", "4", "--eps", "0.3",
             "--mc_perms", "2"]
BENCHES = {
    "threads": {
        "binary": "bench_threads_scaling",
        "quick": ["--rounds", "3", "--train", "800"],
        "default": [],
        "headline": ["threads1.total_s", "threads2.speedup_total",
                     "threads4.speedup_total", "threads8.speedup_total"],
        "ab": True,
    },
    "kernels": {
        "binary": "bench_micro_kernels",
        "quick": ["--reps", "5"],
        "default": [],
        "headline": ["cifar_conv_min_speedup", "square_gemm_vec_min_speedup",
                     "conv_cifar_l2.speedup", "gemm_square_256.speedup",
                     "gemm_square_256.vec_speedup", "conv_cifar_l2.vec_speedup"],
        "ab": True,
    },
    "scale": {
        "binary": "bench_scale",
        "quick": ["--agents", "8,32,64", "--rounds", "3", "--train", "1024",
                  "--active", "8"],
        "default": [],
        "headline": ["n64.ms_per_round", "n256.ms_per_round",
                     "n1024.ms_per_round", "n1024.peak_rss_mb"],
        "ab": True,
    },
    "recovery": {
        # S-RECOV: retransmit-overhead sweep under channel corruption plus the
        # crash/resync recovery sweep; doubles as the <25% overhead contract.
        "binary": "bench_recovery",
        "quick": ["--rounds", "6", "--train", "600", "--reps", "2",
                  "--mc_perms", "2"],
        "default": [],
        "headline": ["corrupt_off.round_ms", "corrupt_wire.round_ms",
                     "corrupt_10pct.round_ms", "crash_10pct.final_accuracy"],
        "ab": True,
    },
    "byzantine": {
        "binary": "bench_byzantine",
        "quick": ["--rounds", "8", "--train", "600", "--mc_perms", "4",
                  "--fracs", "0.0,0.25"],
        "default": [],
        "headline": ["pdsl.final_accuracy", "dp_dpsgd.final_accuracy",
                     "pdsl_robust.pi_attacker_mean_last3"],
        "ab": True,
    },
    "fig1": {"binary": "bench_fig1_mnist_full", "quick": FIG_QUICK, "default": [],
             "headline": ["pdsl.final_loss", "pdsl.final_accuracy",
                          "dp_dpsgd.final_loss"], "ab": False},
    "fig2": {"binary": "bench_fig2_mnist_bipartite", "quick": FIG_QUICK, "default": [],
             "headline": ["pdsl.final_loss", "pdsl.final_accuracy"], "ab": False},
    "fig3": {"binary": "bench_fig3_mnist_ring", "quick": FIG_QUICK, "default": [],
             "headline": ["pdsl.final_loss", "pdsl.final_accuracy"], "ab": False},
    "fig4": {"binary": "bench_fig4_cifar_full", "quick": FIG_QUICK, "default": [],
             "headline": ["pdsl.final_loss", "pdsl.final_accuracy"], "ab": False},
    "fig5": {"binary": "bench_fig5_cifar_bipartite", "quick": FIG_QUICK, "default": [],
             "headline": ["pdsl.final_loss", "pdsl.final_accuracy"], "ab": False},
    "fig6": {"binary": "bench_fig6_cifar_ring", "quick": FIG_QUICK, "default": [],
             "headline": ["pdsl.final_loss", "pdsl.final_accuracy"], "ab": False},
    "table1": {"binary": "bench_table1_mnist_accuracy", "quick": FIG_QUICK,
               "default": [], "headline": ["pdsl.final_accuracy"], "ab": False},
    "table2": {"binary": "bench_table2_cifar_accuracy", "quick": FIG_QUICK,
               "default": [], "headline": ["pdsl.final_accuracy"], "ab": False},
    "shapley": {
        # S-SHAP: perf gate (sequential vs batched vs batched+adaptive) plus
        # the estimator-quality and weighting-ablation sections that used to
        # live in ablation_shapley / ablation_mc_shapley.
        "binary": "bench_shapley",
        "quick": ["--rounds", "2", "--agents", "4", "--perms", "2,4"],
        "default": [],
        "headline": ["perf.adaptive.shapley_speedup_x",
                     "perf.adaptive.round_speedup_x",
                     "perm8.mean_abs_phi_error",
                     "mu_sweep.pdsl.final_accuracy",
                     "byzantine.pdsl_robust.final_accuracy"],
        "ab": True,
    },
    "ablation_sigma": {
        "binary": "bench_ablation_sigma",
        "quick": ["--agents", "6", "--eps", "0.1,0.5"],
        "default": [],
        "headline": ["full.sigma_theorem1_over_dpsgd"],
        "ab": False,
    },
    "ablation_compression": {
        "binary": "bench_ablation_compression",
        "quick": ["--rounds", "2"],
        "default": [],
        "headline": ["none.final_accuracy", "topk_0_1.final_accuracy",
                     "topk_0_1.bytes_ratio_vs_dense"],
        "ab": False,
    },
    "privacy_attack": {
        "binary": "bench_privacy_attack",
        "quick": ["--trials", "20", "--rounds", "3", "--sigmas", "0.0,0.1"],
        "default": [],
        "headline": ["label_leakage.hit_rate_no_noise",
                     "label_leakage.hit_rate_max_noise", "membership.auc_no_noise"],
        "ab": False,
    },
    "extended_algorithms": {
        "binary": "bench_extended_algorithms",
        "quick": ["--rounds", "2", "--seeds", "1"],
        "default": [],
        "headline": ["pdsl.final_accuracy_mean", "dpsgd.final_accuracy_mean"],
        "ab": False,
    },
}
DEFAULT_SUBSET = ["threads", "kernels", "byzantine", "scale", "shapley", "recovery"]


def log(msg):
    print(f"[run_benchmarks] {msg}", flush=True)


def run(cmd, **kw):
    kw.setdefault("check", True)
    return subprocess.run(cmd, **kw)


def git_rev(repo=REPO):
    out = subprocess.run(["git", "rev-parse", "--short=12", "HEAD"], cwd=repo,
                         capture_output=True, text=True)
    return out.stdout.strip() if out.returncode == 0 else "unknown"


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

def validate_envelope(doc, path="<doc>"):
    """Return a list of schema violations (empty = valid)."""
    errs = []

    def need(obj, key, types, where):
        if not isinstance(obj, dict) or key not in obj:
            errs.append(f"{where}: missing key '{key}'")
            return None
        if not isinstance(obj[key], types):
            errs.append(f"{where}.{key}: expected {types}, got {type(obj[key]).__name__}")
            return None
        return obj[key]

    if need(doc, "schema_version", (int, float), path) != SCHEMA_VERSION:
        errs.append(f"{path}: schema_version != {SCHEMA_VERSION}")
    need(doc, "bench", str, path)
    kind = need(doc, "kind", str, path)
    if kind is not None and kind not in ("figure", "table", "ablation", "scaling",
                                         "micro", "attack", "calibration"):
        errs.append(f"{path}: unknown kind '{kind}'")
    need(doc, "git_rev", str, path)
    build = need(doc, "build", dict, path)
    if build is not None:
        need(build, "compiler", str, f"{path}.build")
        need(build, "compiler_version", str, f"{path}.build")
        need(build, "build_type", str, f"{path}.build")
        need(build, "pdsl_native", bool, f"{path}.build")
    host = need(doc, "host", dict, path)
    if host is not None:
        need(host, "hardware_concurrency", (int, float), f"{path}.host")
    repeats = need(doc, "repeats", (int, float), path)
    if repeats is not None and repeats < 1:
        errs.append(f"{path}: repeats must be >= 1")
    need(doc, "config", dict, path)
    need(doc, "faults", dict, path)
    need(doc, "adversary", dict, path)
    metrics = need(doc, "metrics", dict, path)
    if metrics is not None:
        for name, m in metrics.items():
            where = f"{path}.metrics[{name}]"
            need(m, "unit", str, where)
            for k in ("median", "min", "max"):
                need(m, k, (int, float), where)
            samples = need(m, "samples", list, where)
            if samples is not None:
                if not samples:
                    errs.append(f"{where}: empty samples")
                elif not all(isinstance(s, (int, float)) for s in samples):
                    errs.append(f"{where}: non-numeric sample")
                else:
                    lo, hi = min(samples), max(samples)
                    if not (lo <= m.get("median", lo) <= hi):
                        errs.append(f"{where}: median outside [min, max]")
    need(doc, "phases", dict, path)
    need(doc, "runs", list, path)
    if "acceptance" in doc:
        acc = need(doc, "acceptance", dict, path)
        if acc is not None:
            need(acc, "passed", bool, f"{path}.acceptance")
    return errs


def cmd_validate():
    files = sorted(glob.glob(os.path.join(REPO, "BENCH_*.json")))
    if not files:
        log("no BENCH_*.json files found at repo root")
        return 1
    bad = 0
    for f in files:
        try:
            doc = json.load(open(f))
        except json.JSONDecodeError as e:
            print(f"INVALID {os.path.basename(f)}: not JSON ({e})")
            bad += 1
            continue
        errs = validate_envelope(doc, os.path.basename(f))
        if errs:
            bad += 1
            print(f"INVALID {os.path.basename(f)}:")
            for e in errs:
                print(f"    {e}")
        else:
            print(f"ok      {os.path.basename(f)} "
                  f"(bench={doc['bench']}, {len(doc['metrics'])} metrics, "
                  f"repeats={doc['repeats']})")
    return 1 if bad else 0


# ---------------------------------------------------------------------------
# Build + run + merge
# ---------------------------------------------------------------------------

def build_tree(src, build_dir, jobs, targets=()):
    run(["cmake", "-B", build_dir, "-S", src, "-DCMAKE_BUILD_TYPE=Release"],
        stdout=subprocess.DEVNULL)
    cmd = ["cmake", "--build", build_dir, "-j", str(jobs)]
    for t in targets:
        cmd += ["--target", t]
    run(cmd, stdout=subprocess.DEVNULL)


def run_bench_once(build_dir, bench, args, rev):
    """Run one bench binary in a scratch cwd; return its parsed envelope."""
    spec = BENCHES[bench]
    binary = os.path.join(build_dir, "bench", spec["binary"])
    if not os.path.exists(binary):
        raise FileNotFoundError(binary)
    with tempfile.TemporaryDirectory(prefix=f"bench_{bench}_") as scratch:
        out = os.path.join(scratch, "out.json")
        env = dict(os.environ, PDSL_GIT_REV=rev)
        proc = subprocess.run([binary] + args + ["--out", out], cwd=scratch, env=env,
                              capture_output=True, text=True)
        # An acceptance-gate failure exits nonzero but still writes the
        # envelope; carry it through so the report shows FAIL (the driver
        # exits nonzero at the end). Abort only when there is no JSON at all.
        if proc.returncode != 0 and not os.path.exists(out):
            sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:])
            raise RuntimeError(f"{spec['binary']} exited {proc.returncode}")
        with open(out) as f:
            return json.load(f)


def merge_envelopes(envelopes):
    """Merge N per-process envelopes into one with repeats=N and concatenated
    metric samples (median/min/max recomputed)."""
    merged = dict(envelopes[0])
    merged["repeats"] = len(envelopes)
    metrics = {}
    for env in envelopes:
        for name, m in env.get("metrics", {}).items():
            entry = metrics.setdefault(name, {"unit": m["unit"], "samples": []})
            entry["samples"].extend(m["samples"])
    for m in metrics.values():
        s = m["samples"]
        m["median"] = statistics.median(s)
        m["min"] = min(s)
        m["max"] = max(s)
    merged["metrics"] = metrics
    return merged


def run_bench(build_dir, bench, args, repeats, rev):
    envelopes = []
    for rep in range(repeats):
        log(f"  {bench}: repeat {rep + 1}/{repeats}")
        envelopes.append(run_bench_once(build_dir, bench, args, rev))
    return merge_envelopes(envelopes)


# ---------------------------------------------------------------------------
# History + report
# ---------------------------------------------------------------------------

def history_path():
    return os.path.join(REPO, "BENCH_HISTORY.jsonl")


def load_history():
    entries = []
    if os.path.exists(history_path()):
        with open(history_path()) as f:
            for line in f:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
    return entries


def append_history(doc):
    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "bench": doc["bench"],
        "git_rev": doc["git_rev"],
        "repeats": doc["repeats"],
        "metrics": {k: m["median"] for k, m in doc["metrics"].items()},
    }
    if "acceptance" in doc:
        entry["acceptance_passed"] = doc["acceptance"].get("passed")
    with open(history_path(), "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def headline_metrics(doc, bench):
    wanted = BENCHES.get(bench, {}).get("headline", [])
    metrics = doc["metrics"]
    names = [n for n in wanted if n in metrics]
    if not names:
        names = sorted(metrics)[:8]
    return names


def fmt(v):
    if v is None:
        return "-"
    if abs(v) >= 1000 or (v != 0 and abs(v) < 0.001):
        return f"{v:.3e}"
    return f"{v:.4g}"


def render_report(docs, history, ab_section):
    lines = ["# Benchmark report (S-BENCH360)", ""]
    lines.append("Generated by `python tools/run_benchmarks.py`. Medians over "
                 "`repeats` runs of each bench binary; full sample arrays and "
                 "per-run rows live in the matching `BENCH_<id>.json`.")
    lines.append("")

    lines.append("## Leaderboard")
    lines.append("")
    lines.append("| bench | kind | git rev | repeats | metric | median | min | max | unit |")
    lines.append("|---|---|---|---|---|---|---|---|---|")
    for doc in docs:
        bench = doc["bench"]
        for name in headline_metrics(doc, bench):
            m = doc["metrics"][name]
            lines.append(f"| {bench} | {doc['kind']} | {doc['git_rev']} | "
                         f"{doc['repeats']} | {name} | {fmt(m['median'])} | "
                         f"{fmt(m['min'])} | {fmt(m['max'])} | {m['unit']} |")
    lines.append("")

    gates = [(d["bench"], d["acceptance"]) for d in docs if "acceptance" in d]
    if gates:
        lines.append("## Acceptance gates")
        lines.append("")
        for bench, acc in gates:
            status = "PASS" if acc.get("passed") else "FAIL"
            detail = ", ".join(f"{k}={fmt(v) if isinstance(v, (int, float)) else v}"
                               for k, v in sorted(acc.items()) if k != "passed")
            lines.append(f"- **{bench}**: {status} ({detail})")
        lines.append("")

    # Perf trajectory: current run vs the most recent prior history entry for
    # the same bench (skipping entries from this invocation).
    current_ids = {id(d) for d in docs}
    lines.append("## Perf trajectory")
    lines.append("")
    any_row = False
    traj = ["| bench | metric | previous | current | delta | prev rev -> cur rev |",
            "|---|---|---|---|---|---|"]
    for doc in docs:
        bench = doc["bench"]
        prior = [h for h in history if h.get("bench") == bench]
        if not prior:
            continue
        prev = prior[-1]
        for name in headline_metrics(doc, bench):
            cur = doc["metrics"][name]["median"]
            old = prev.get("metrics", {}).get(name)
            if old is None:
                continue
            delta = "-" if old == 0 else f"{100.0 * (cur - old) / abs(old):+.1f}%"
            traj.append(f"| {bench} | {name} | {fmt(old)} | {fmt(cur)} | {delta} | "
                        f"{prev.get('git_rev', '?')} -> {doc['git_rev']} |")
            any_row = True
    if any_row:
        lines.extend(traj)
    else:
        lines.append("No prior history for the selected benches "
                     "(BENCH_HISTORY.jsonl grows one line per bench per run).")
    lines.append("")

    if ab_section:
        lines.extend(ab_section)

    lines.append("---")
    lines.append("*Schema: every `BENCH_*.json` follows the schema-v1 envelope "
                 "(see `bench/bench_util.hpp`); validate with "
                 "`python tools/run_benchmarks.py --validate`.*")
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# A/B mode
# ---------------------------------------------------------------------------

def legacy_metrics(doc):
    """Tolerant metric extraction from pre-envelope bench JSON schemas.

    Mirrors the new envelope's semantics: when a legacy file has several rows
    for the same metric name (e.g. one per attacker fraction), the extracted
    value is the median over rows — the same reduction BenchEnvelope applies
    to its per-process samples.
    """
    if isinstance(doc.get("metrics"), dict) and "schema_version" in doc:
        return {k: m["median"] for k, m in doc["metrics"].items()}
    acc = {}

    def put(name, value):
        if isinstance(value, (int, float)):
            acc.setdefault(name, []).append(value)

    bench = doc.get("bench", "")
    runs = doc.get("runs", [])
    if bench == "bench_threads_scaling":
        for row in runs:
            t = row.get("threads")
            if t is not None:
                put(f"threads{int(t)}.total_s", row.get("total_s"))
                put(f"threads{int(t)}.speedup_total", row.get("speedup_total"))
    elif bench == "bench_micro_kernels":
        for row in runs:
            name = row.get("name")
            if name:
                put(f"{name}.naive_ms", row.get("naive_ms"))
                put(f"{name}.blocked_ms", row.get("blocked_ms"))
                put(f"{name}.speedup", row.get("speedup"))
                put(f"{name}.vec_ms", row.get("vec_ms"))
                put(f"{name}.vec_speedup", row.get("vec_speedup"))
        put("cifar_conv_min_speedup", doc.get("cifar_conv_min_speedup"))
        put("square_gemm_vec_min_speedup", doc.get("square_gemm_vec_min_speedup"))
    elif bench == "bench_byzantine":
        for row in runs:
            algo = row.get("algorithm")
            if algo:
                put(f"{algo}.final_accuracy", row.get("final_accuracy"))
    return {k: statistics.median(v) for k, v in acc.items()}


def run_ab(ref, benches, build_jobs, repeats, quick):
    """Build `ref` in a worktree, run the A/B-capable benches on both builds,
    return a markdown section with the measured comparison."""
    benches = [b for b in benches if BENCHES[b]["ab"]]
    if not benches:
        log("A/B: none of the selected benches support A/B mode; "
            f"eligible: {[b for b in BENCHES if BENCHES[b]['ab']]}")
        return []
    rev = subprocess.run(["git", "rev-parse", "--short=12", ref], cwd=REPO,
                         capture_output=True, text=True)
    if rev.returncode != 0:
        raise RuntimeError(f"A/B: cannot resolve rev '{ref}'")
    old_rev = rev.stdout.strip()
    worktree = tempfile.mkdtemp(prefix=f"pdsl_ab_{old_rev}_")
    lines = []
    try:
        log(f"A/B: adding worktree for {ref} ({old_rev})")
        run(["git", "worktree", "add", "--detach", worktree, ref], cwd=REPO,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        old_build = os.path.join(worktree, "build-ab")
        log(f"A/B: building {old_rev} (Release, bench targets only)")
        build_tree(worktree, old_build, build_jobs,
                   targets=[BENCHES[b]["binary"] for b in benches])

        lines = ["## A/B comparison", "",
                 f"Old rev `{old_rev}` (`{ref}`) rebuilt in a worktree and "
                 "re-measured on this host; both sides are medians over "
                 f"{repeats} repeat(s).", "",
                 "| bench | metric | old | new | delta |", "|---|---|---|---|---|"]
        for bench in benches:
            spec = BENCHES[bench]
            args = spec["quick"] if quick else spec["default"]
            new_doc = run_bench(os.path.join(REPO, "build"), bench, args, repeats,
                                git_rev())
            new_metrics = {k: m["median"] for k, m in new_doc["metrics"].items()}
            try:
                old_envs = []
                for rep in range(repeats):
                    log(f"  {bench}@{old_rev}: repeat {rep + 1}/{repeats}")
                    spec_binary = os.path.join(old_build, "bench", spec["binary"])
                    if not os.path.exists(spec_binary):
                        raise FileNotFoundError(spec_binary)
                    with tempfile.TemporaryDirectory() as scratch:
                        out = os.path.join(scratch, "out.json")
                        env = dict(os.environ, PDSL_GIT_REV=old_rev)
                        proc = subprocess.run([spec_binary] + args + ["--out", out],
                                              cwd=scratch, env=env,
                                              capture_output=True, text=True)
                        # Old revs may reject newer flags; retry with --out
                        # only, then bare (picking up the default-named JSON).
                        if proc.returncode != 0 and not os.path.exists(out):
                            proc = subprocess.run([spec_binary, "--out", out],
                                                  cwd=scratch, env=env,
                                                  capture_output=True, text=True)
                        if proc.returncode != 0 and not os.path.exists(out):
                            subprocess.run([spec_binary], cwd=scratch, env=env,
                                           capture_output=True, text=True)
                            found = glob.glob(os.path.join(scratch, "BENCH_*.json"))
                            if found:
                                out = found[0]
                        if not os.path.exists(out):
                            raise RuntimeError(f"no JSON from {spec['binary']}@{old_rev}")
                        with open(out) as f:
                            old_envs.append(legacy_metrics(json.load(f)))
            except (FileNotFoundError, RuntimeError) as e:
                log(f"A/B: skipping {bench}: {e}")
                lines.append(f"| {bench} | (skipped: old rev has no comparable "
                             f"JSON output) | - | - | - |")
                continue
            old_metrics = {}
            for k in old_envs[0]:
                vals = [e[k] for e in old_envs if k in e]
                if vals:
                    old_metrics[k] = statistics.median(vals)
            for name in headline_metrics(new_doc, bench):
                new_v = new_metrics.get(name)
                old_v = old_metrics.get(name)
                if new_v is None or old_v is None:
                    continue
                delta = "-" if old_v == 0 else f"{100.0 * (new_v - old_v) / abs(old_v):+.1f}%"
                lines.append(f"| {bench} | {name} | {fmt(old_v)} | {fmt(new_v)} | {delta} |")
        lines.append("")
    finally:
        subprocess.run(["git", "worktree", "remove", "--force", worktree], cwd=REPO,
                       capture_output=True)
        shutil.rmtree(worktree, ignore_errors=True)
    return lines


# ---------------------------------------------------------------------------
# Main
# ---------------------------------------------------------------------------

def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--quick", action="store_true",
                    help="tiny configs, 1 repeat (CI smoke)")
    ap.add_argument("--only", default="",
                    help="comma-separated bench ids (default: %s)" % ",".join(DEFAULT_SUBSET))
    ap.add_argument("--all", action="store_true", help="run every registered bench")
    ap.add_argument("--repeats", type=int, default=0,
                    help="repeat each bench N times and report medians "
                         "(default: 1 with --quick, 3 otherwise)")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check all checked-in BENCH_*.json and exit")
    ap.add_argument("--git-commit", default="",
                    help="A/B mode: rebuild this rev in a worktree and measure both")
    ap.add_argument("--no-build", action="store_true", help="skip the Release rebuild")
    ap.add_argument("--jobs", type=int, default=max(1, (os.cpu_count() or 1)),
                    help="build parallelism")
    args = ap.parse_args()

    if args.validate:
        sys.exit(cmd_validate())

    if args.all:
        subset = list(BENCHES)
    elif args.only:
        subset = [b.strip() for b in args.only.split(",") if b.strip()]
        unknown = [b for b in subset if b not in BENCHES]
        if unknown:
            ap.error(f"unknown bench id(s) {unknown}; known: {sorted(BENCHES)}")
    else:
        subset = list(DEFAULT_SUBSET)

    repeats = args.repeats or (1 if args.quick else 3)
    rev = git_rev()

    if not args.no_build:
        log("building Release tree (cmake -B build -DCMAKE_BUILD_TYPE=Release)")
        build_tree(REPO, os.path.join(REPO, "build"), args.jobs)

    history = load_history()
    docs = []
    for bench in subset:
        spec = BENCHES[bench]
        bench_args = spec["quick"] if args.quick else spec["default"]
        log(f"running {bench} ({spec['binary']} {' '.join(bench_args)})")
        doc = run_bench(os.path.join(REPO, "build"), bench, bench_args, repeats, rev)
        out_path = os.path.join(REPO, f"BENCH_{doc['bench']}.json")
        with open(out_path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        errs = validate_envelope(doc, os.path.basename(out_path))
        if errs:
            for e in errs:
                log(f"SCHEMA ERROR: {e}")
            sys.exit(1)
        log(f"wrote {os.path.basename(out_path)}")
        docs.append(doc)

    ab_section = []
    if args.git_commit:
        ab_section = run_ab(args.git_commit, subset, args.jobs, repeats, args.quick)

    report = render_report(docs, history, ab_section)
    with open(os.path.join(REPO, "BENCH_REPORT.md"), "w") as f:
        f.write(report)
    for doc in docs:
        append_history(doc)
    log("wrote BENCH_REPORT.md and appended BENCH_HISTORY.jsonl")

    failed = [d["bench"] for d in docs
              if "acceptance" in d and not d["acceptance"].get("passed")]
    if failed:
        log(f"acceptance gates FAILED: {failed}")
        sys.exit(1)
    log("done")


if __name__ == "__main__":
    main()
