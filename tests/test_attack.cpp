// Privacy attacks: label leakage from shared gradients (the risk motivating
// the paper's DP treatment) and loss-threshold membership inference. The key
// property: attacks succeed against unprotected gradients/models and degrade
// toward chance as DP noise grows.

#include <gtest/gtest.h>

#include "attack/label_inference.hpp"
#include "attack/membership.hpp"
#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"
#include "tensor/ops.hpp"

using namespace pdsl;
using namespace pdsl::attack;

namespace {

/// A model trained a little so gradients carry label structure.
nn::Model trained_model(const data::Dataset& ds, int steps, std::uint64_t seed) {
  Rng rng(seed);
  nn::Model m = nn::make_mlp(ds.sample_numel(), 16, ds.num_classes());
  m.init(rng);
  const Tensor x = ds.all_features();
  const auto y = ds.labels();
  for (int s = 0; s < steps; ++s) {
    m.loss_and_backward(x, y);
    auto params = m.flat_params();
    const auto grad = m.flat_grad();
    for (std::size_t i = 0; i < params.size(); ++i) params[i] -= 0.3f * grad[i];
    m.set_flat_params(params);
  }
  return m;
}

}  // namespace

TEST(LabelInference, ScoresComeFromFinalBiasSegment) {
  std::vector<float> grad(20, 0.0f);
  grad[17] = -0.9f;  // classes = 3 -> trailing segment [17, 18, 19]
  grad[18] = 0.2f;
  grad[19] = 0.1f;
  const auto scores = label_scores_from_gradient(grad, 3);
  EXPECT_NEAR(scores[0], 0.9, 1e-6);  // float->double widening
  EXPECT_EQ(infer_dominant_label(grad, 3), 0u);
  EXPECT_THROW(label_scores_from_gradient({1.0f}, 3), std::invalid_argument);
}

TEST(LabelInference, UnprotectedGradientsLeakLabels) {
  const auto ds = data::make_gaussian_mixture(400, 5, 8, 2.0, 0.6, 1);
  const auto model = trained_model(ds, 3, 2);
  const auto res = label_leakage_experiment(model, ds, 8, 1.0, 0.0, 60, Rng(3));
  // Softmax bias gradients reveal the single-class batch almost perfectly.
  EXPECT_GT(res.hit_rate, 0.9);
  EXPECT_DOUBLE_EQ(res.chance, 0.2);
}

TEST(LabelInference, DpNoiseDegradesTheAttackMonotonically) {
  const auto ds = data::make_gaussian_mixture(400, 5, 8, 2.0, 0.6, 4);
  const auto model = trained_model(ds, 3, 5);
  const auto clean = label_leakage_experiment(model, ds, 8, 1.0, 0.0, 60, Rng(6));
  const auto mild = label_leakage_experiment(model, ds, 8, 1.0, 0.05, 60, Rng(6));
  const auto heavy = label_leakage_experiment(model, ds, 8, 1.0, 1.0, 60, Rng(6));
  EXPECT_GE(clean.hit_rate, mild.hit_rate - 0.1);
  EXPECT_GT(mild.hit_rate, heavy.hit_rate);
  // Heavy noise pushes the attacker to ~chance.
  EXPECT_LT(heavy.hit_rate, 0.45);
}

TEST(LabelInference, Validation) {
  const auto ds = data::make_gaussian_mixture(50, 3, 4, 2.0, 0.5, 7);
  const auto model = trained_model(ds, 1, 8);
  EXPECT_THROW(label_leakage_experiment(model, ds, 4, 1.0, 0.0, 0, Rng(9)),
               std::invalid_argument);
}

TEST(Membership, FromLossesClosedCases) {
  // Perfectly separated: members all lower loss -> AUC 1, advantage 1.
  const auto perfect = membership_from_losses({0.1, 0.2}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(perfect.auc, 1.0);
  EXPECT_DOUBLE_EQ(perfect.advantage, 1.0);
  // Identical distributions: AUC 0.5, advantage 0.
  const auto none = membership_from_losses({1.0, 2.0}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(none.auc, 0.5);
  EXPECT_DOUBLE_EQ(none.advantage, 0.0);
  EXPECT_THROW(membership_from_losses({}, {1.0}), std::invalid_argument);
}

TEST(Membership, OverfitModelLeaksMembership) {
  // Train hard on a small member set; the held-out set must show higher loss.
  Rng rng(10);
  const auto members = data::make_gaussian_mixture(60, 4, 6, 1.2, 1.2, 11);
  const auto nonmembers = data::make_gaussian_mixture(60, 4, 6, 1.2, 1.2, 12);
  nn::Model m = nn::make_mlp(6, 32, 4);
  m.init(rng);
  const Tensor x = members.all_features();
  const auto y = members.labels();
  for (int s = 0; s < 300; ++s) {
    m.loss_and_backward(x, y);
    auto params = m.flat_params();
    const auto grad = m.flat_grad();
    for (std::size_t i = 0; i < params.size(); ++i) params[i] -= 0.5f * grad[i];
    m.set_flat_params(params);
  }
  const auto res = membership_inference(m, m.flat_params(), members, nonmembers);
  EXPECT_GT(res.auc, 0.7);
  EXPECT_GT(res.advantage, 0.2);
  EXPECT_LT(res.mean_member_loss, res.mean_nonmember_loss);
}

TEST(Membership, FreshModelLeaksNothing) {
  Rng rng(13);
  const auto members = data::make_gaussian_mixture(80, 4, 6, 1.5, 1.0, 14);
  const auto nonmembers = data::make_gaussian_mixture(80, 4, 6, 1.5, 1.0, 15);
  nn::Model m = nn::make_mlp(6, 16, 4);
  m.init(rng);
  const auto res = membership_inference(m, m.flat_params(), members, nonmembers);
  // An untrained model has no member/non-member asymmetry in expectation;
  // at 80 samples a side the empirical AUC still wobbles around 0.5.
  EXPECT_NEAR(res.auc, 0.5, 0.15);
  EXPECT_LT(res.advantage, 0.3);
}
