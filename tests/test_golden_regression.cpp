// Golden regression suite (ctest -L golden) in two tiers:
//
//   * Byte-exact tier: guard over the numeric columns of the per-round
//     metrics CSV for every algorithm, fault-free and under seeded fault
//     injection, pinned to the bit-identical backends (blocked kernels,
//     sequential Shapley eval). Any change to the math — kernels, RNG
//     consumption order, aggregation, fault hashing — shows up here as a
//     cell diff, with tolerance ZERO: the S-RT contract says same seed +
//     same config is the same bits, so the only legitimate diff is an
//     intentional numerics change.
//   * Tolerance-banded tier (S-VEC): fixtures for the fast-math paths
//     (--backend vectorized, --shapley-eval linear) whose results are
//     deterministic but only rounding-level reproducible across compilers
//     and FMA-contraction choices. Each banded fixture <name>.csv ships a
//     band spec <name>.band.csv next to it with per-column `abs,rel`
//     tolerances (row `*` is the default; 0,0 means exact, which is how the
//     counter columns stay locked down): a cell passes when
//     |got - want| <= abs + rel * |want|.
//
// Timing columns (elapsed_s, round_s and the per-phase *_s breakdown) are
// wall-clock and excluded from comparison in both tiers.
//
// Fixtures live in tests/golden/ (path injected by CMake as PDSL_GOLDEN_DIR).
// After an INTENTIONAL numerics change, regenerate and commit them:
//
//   ./build/tests/test_golden_regression --regenerate
//
// and explain the diff in the commit message. --regenerate rewrites both
// tiers' fixture CSVs; the hand-written .band.csv specs are left alone.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "sim/metrics.hpp"

#ifndef PDSL_GOLDEN_DIR
#error "PDSL_GOLDEN_DIR must be defined by the build (path to tests/golden)"
#endif

using pdsl::core::ExperimentConfig;
using pdsl::core::ExperimentResult;

namespace {

struct Scenario {
  std::string name;  ///< fixture file stem and CSV run label
  ExperimentConfig cfg;
};

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.dataset = "mnist_like";
  cfg.model = "mlp";
  cfg.topology = "full";
  cfg.agents = 4;
  cfg.rounds = 3;
  cfg.train_samples = 300;
  cfg.test_samples = 100;
  cfg.validation_samples = 80;
  cfg.image = 8;
  cfg.hidden = 16;
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.05;
  cfg.hp.alpha = 0.5;
  cfg.hp.clip = 5.0;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 24;
  cfg.sigma_mode = "dpsgd";  // exercises the DP noise streams too
  cfg.noise_scale = 0.05;
  cfg.seed = 5;
  cfg.threads = 1;
  cfg.metrics.eval_every = 1;
  cfg.metrics.test_subsample = 100;
  // The byte-exact tier pins the bit-identical reference paths explicitly:
  // the process defaults (shapley_eval = "linear", and blocked kernels today)
  // may move to faster banded tiers without invalidating these fixtures.
  cfg.backend = "blocked";
  cfg.hp.shapley_eval = "sequential";
  return cfg;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  // Fault-free fixture per algorithm: with every fault knob at zero each of
  // these must stay bit-identical across refactors of the fault machinery.
  for (const char* algo :
       {"pdsl", "pdsl_uniform", "dp_dpsgd", "muffliato", "dp_cga", "dp_netfleet",
        "async_dp_gossip", "dp_qgm", "fedavg", "dpsgd", "dmsgd"}) {
    ExperimentConfig cfg = base_config();
    cfg.algorithm = algo;
    out.push_back({std::string(algo) + "_clean", cfg});
  }
  {
    ExperimentConfig cfg = base_config();
    cfg.algorithm = "pdsl";
    cfg.faults.drop_prob = 0.1;
    out.push_back({"pdsl_drop10", cfg});
  }
  {
    ExperimentConfig cfg = base_config();
    cfg.algorithm = "pdsl";
    cfg.faults.drop_prob = 0.2;
    cfg.faults.delay_prob = 0.25;
    cfg.faults.delay_rounds = 1;
    cfg.faults.churn_prob = 0.2;
    cfg.faults.churn_interval = 2;
    cfg.faults.staleness_rounds = 2;
    out.push_back({"pdsl_chaos", cfg});
  }
  {
    // S-BYZ fixture: one of four agents sign-flips its cross-gradients.
    // Guards the adversary hash streams, sanitization and the pi split
    // columns with the same tolerance-zero contract.
    ExperimentConfig cfg = base_config();
    cfg.algorithm = "pdsl";
    cfg.adversary.frac = 0.25;
    cfg.adversary.mode = pdsl::sim::ByzMode::kSignFlip;
    cfg.adversary.scale = 3.0;
    out.push_back({"pdsl_byz_signflip", cfg});
  }
  return out;
}

// The tolerance-banded tier: same base run, fast-math knobs on. Each entry
// must have a <name>.band.csv spec checked in next to its fixture.
std::vector<Scenario> banded_scenarios() {
  std::vector<Scenario> out;
  {
    // S-VEC kernels end to end: every GEMM in the run dispatches to the
    // register-tiled microkernel.
    ExperimentConfig cfg = base_config();
    cfg.algorithm = "pdsl";
    cfg.backend = "vectorized";
    out.push_back({"pdsl_vectorized", cfg});
  }
  {
    // S-SHAP linear coalition evaluation (the process default): reuses
    // per-member first-layer pre-activations across coalitions.
    ExperimentConfig cfg = base_config();
    cfg.algorithm = "pdsl";
    cfg.hp.shapley_eval = "linear";
    out.push_back({"pdsl_linear", cfg});
  }
  return out;
}

std::string golden_path(const std::string& name) {
  return std::string(PDSL_GOLDEN_DIR) + "/" + name + ".csv";
}

std::string candidate_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("pdsl_golden_" + name + ".csv"))
      .string();
}

void run_scenario_to_csv(const Scenario& s, const std::string& path) {
  const ExperimentResult res = pdsl::core::run_experiment(s.cfg);
  pdsl::sim::write_metrics_csv(path, s.name, res.series);
}

bool is_timing_column(const std::string& name) {
  return name.size() > 2 && name.compare(name.size() - 2, 2, "_s") == 0;
}

/// Per-column tolerance: pass iff |got - want| <= abs + rel * |want|.
/// abs == rel == 0 degrades to exact string comparison (counters, labels).
struct Band {
  double abs = 0.0;
  double rel = 0.0;
  [[nodiscard]] bool exact() const { return abs == 0.0 && rel == 0.0; }
};

/// <fixture>.band.csv: header `column,abs,rel`, one row per column override,
/// `*` for the default applied to unlisted columns.
struct BandSpec {
  Band fallback;
  std::map<std::string, Band> columns;

  [[nodiscard]] const Band& for_column(const std::string& name) const {
    const auto it = columns.find(name);
    return it == columns.end() ? fallback : it->second;
  }
};

std::string band_path(const std::string& name) {
  return std::string(PDSL_GOLDEN_DIR) + "/" + name + ".band.csv";
}

BandSpec load_band_spec(const std::string& path) {
  const auto rows = pdsl::read_csv(path);
  EXPECT_GE(rows.size(), 2u) << path << ": band spec needs a header and rows";
  EXPECT_EQ(rows[0], (std::vector<std::string>{"column", "abs", "rel"})) << path;
  BandSpec spec;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    EXPECT_EQ(rows[r].size(), 3u) << path << " row " << r;
    if (rows[r].size() != 3) continue;
    const Band band{std::stod(rows[r][1]), std::stod(rows[r][2])};
    if (rows[r][0] == "*") {
      spec.fallback = band;
    } else {
      spec.columns[rows[r][0]] = band;
    }
  }
  return spec;
}

void compare_csv(const std::string& golden, const std::string& candidate,
                 const BandSpec* bands = nullptr) {
  const auto want = pdsl::read_csv(golden);
  const auto got = pdsl::read_csv(candidate);
  ASSERT_FALSE(want.empty()) << golden;
  ASSERT_FALSE(got.empty()) << candidate;
  ASSERT_EQ(got[0], want[0]) << "CSV schema changed — regenerate the fixtures "
                                "if intentional";
  ASSERT_EQ(got.size(), want.size()) << "row count changed";
  const auto& header = want[0];
  for (std::size_t r = 1; r < want.size(); ++r) {
    ASSERT_EQ(got[r].size(), header.size()) << "row " << r;
    ASSERT_EQ(want[r].size(), header.size()) << "row " << r;
    for (std::size_t c = 0; c < header.size(); ++c) {
      if (is_timing_column(header[c])) continue;  // wall-clock, not numerics
      const Band* band = bands ? &bands->for_column(header[c]) : nullptr;
      if (band != nullptr && !band->exact()) {
        double w = 0.0, g = 0.0;
        try {
          w = std::stod(want[r][c]);
          g = std::stod(got[r][c]);
        } catch (const std::exception&) {
          FAIL() << "cell (" << r << ", " << header[c] << ") of " << golden
                 << " is banded but not numeric: want '" << want[r][c] << "' got '"
                 << got[r][c] << "'";
        }
        EXPECT_NEAR(g, w, band->abs + band->rel * std::abs(w))
            << "cell (" << r << ", " << header[c] << ") of " << golden
            << " outside band (abs=" << band->abs << ", rel=" << band->rel << ")";
      } else {
        EXPECT_EQ(got[r][c], want[r][c])
            << "cell (" << r << ", " << header[c] << ") of " << golden;
      }
    }
  }
}

}  // namespace

TEST(GoldenRegression, MetricsSeriesMatchFixtures) {
  for (const Scenario& s : scenarios()) {
    SCOPED_TRACE(s.name);
    const std::string golden = golden_path(s.name);
    ASSERT_TRUE(std::filesystem::exists(golden))
        << "missing fixture " << golden
        << " — run: test_golden_regression --regenerate";
    const std::string candidate = candidate_path(s.name);
    run_scenario_to_csv(s, candidate);
    compare_csv(golden, candidate);
    std::filesystem::remove(candidate);
  }
}

// S-VEC banded tier: the fast-math configurations (vectorized kernels,
// linear Shapley eval) against their fixtures, each cell within the
// per-column band from the checked-in <name>.band.csv spec.
TEST(GoldenRegression, BandedFixturesWithinSpec) {
  for (const Scenario& s : banded_scenarios()) {
    SCOPED_TRACE(s.name);
    const std::string golden = golden_path(s.name);
    ASSERT_TRUE(std::filesystem::exists(golden))
        << "missing fixture " << golden
        << " — run: test_golden_regression --regenerate";
    const std::string spec_path = band_path(s.name);
    ASSERT_TRUE(std::filesystem::exists(spec_path))
        << "banded fixture " << golden << " has no band spec " << spec_path
        << " — band specs are hand-written and checked in";
    const BandSpec spec = load_band_spec(spec_path);
    const std::string candidate = candidate_path(s.name);
    run_scenario_to_csv(s, candidate);
    compare_csv(golden, candidate, &spec);
    std::filesystem::remove(candidate);
  }
}

// S-SCALE: every fixture re-run with the topology routed through
// fleet::SparseGraph / SparseMetropolis must reproduce the SAME bytes as the
// dense path — the sparse views are a storage change, not a numerics change.
TEST(GoldenRegression, SparseTopologyPathMatchesSameFixtures) {
  for (Scenario s : scenarios()) {
    // Centralized/event-driven baselines reject fleet mode by design
    // (run_experiment throws); the mixing-based algorithms are the contract.
    if (s.cfg.algorithm == "fedavg" || s.cfg.algorithm == "dp_fedavg" ||
        s.cfg.algorithm == "async_dp_gossip") {
      continue;
    }
    SCOPED_TRACE(s.name + " (fleet.sparse)");
    s.cfg.fleet.sparse = true;
    const std::string golden = golden_path(s.name);
    ASSERT_TRUE(std::filesystem::exists(golden)) << "missing fixture " << golden;
    const std::string candidate = candidate_path(s.name + "_sparse");
    run_scenario_to_csv(s, candidate);
    compare_csv(golden, candidate);
    std::filesystem::remove(candidate);
  }
}

// Custom main so the same binary can regenerate its fixtures; the object
// file's main wins over the one in the static gtest_main library.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regenerate") {
      std::filesystem::create_directories(PDSL_GOLDEN_DIR);
      for (const Scenario& s : scenarios()) {
        run_scenario_to_csv(s, golden_path(s.name));
        std::printf("regenerated %s\n", golden_path(s.name).c_str());
      }
      for (const Scenario& s : banded_scenarios()) {
        run_scenario_to_csv(s, golden_path(s.name));
        std::printf("regenerated %s (banded; spec %s untouched)\n",
                    golden_path(s.name).c_str(), band_path(s.name).c_str());
      }
      return 0;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
