// Golden regression suite (ctest -L golden): byte-exact guard over the
// numeric columns of the per-round metrics CSV for every algorithm, fault-free
// and under seeded fault injection. Any change to the math — kernels, RNG
// consumption order, aggregation, fault hashing — shows up here as a cell
// diff, with tolerance ZERO: the S-RT contract says same seed + same config
// is the same bits, so the only legitimate diff is an intentional numerics
// change.
//
// Timing columns (elapsed_s, round_s and the per-phase *_s breakdown) are
// wall-clock and excluded from comparison.
//
// Fixtures live in tests/golden/ (path injected by CMake as PDSL_GOLDEN_DIR).
// After an INTENTIONAL numerics change, regenerate and commit them:
//
//   ./build/tests/test_golden_regression --regenerate
//
// and explain the diff in the commit message.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "sim/metrics.hpp"

#ifndef PDSL_GOLDEN_DIR
#error "PDSL_GOLDEN_DIR must be defined by the build (path to tests/golden)"
#endif

using pdsl::core::ExperimentConfig;
using pdsl::core::ExperimentResult;

namespace {

struct Scenario {
  std::string name;  ///< fixture file stem and CSV run label
  ExperimentConfig cfg;
};

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.dataset = "mnist_like";
  cfg.model = "mlp";
  cfg.topology = "full";
  cfg.agents = 4;
  cfg.rounds = 3;
  cfg.train_samples = 300;
  cfg.test_samples = 100;
  cfg.validation_samples = 80;
  cfg.image = 8;
  cfg.hidden = 16;
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.05;
  cfg.hp.alpha = 0.5;
  cfg.hp.clip = 5.0;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 24;
  cfg.sigma_mode = "dpsgd";  // exercises the DP noise streams too
  cfg.noise_scale = 0.05;
  cfg.seed = 5;
  cfg.threads = 1;
  cfg.metrics.eval_every = 1;
  cfg.metrics.test_subsample = 100;
  return cfg;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  // Fault-free fixture per algorithm: with every fault knob at zero each of
  // these must stay bit-identical across refactors of the fault machinery.
  for (const char* algo :
       {"pdsl", "pdsl_uniform", "dp_dpsgd", "muffliato", "dp_cga", "dp_netfleet",
        "async_dp_gossip", "dp_qgm", "fedavg", "dpsgd", "dmsgd"}) {
    ExperimentConfig cfg = base_config();
    cfg.algorithm = algo;
    out.push_back({std::string(algo) + "_clean", cfg});
  }
  {
    ExperimentConfig cfg = base_config();
    cfg.algorithm = "pdsl";
    cfg.faults.drop_prob = 0.1;
    out.push_back({"pdsl_drop10", cfg});
  }
  {
    ExperimentConfig cfg = base_config();
    cfg.algorithm = "pdsl";
    cfg.faults.drop_prob = 0.2;
    cfg.faults.delay_prob = 0.25;
    cfg.faults.delay_rounds = 1;
    cfg.faults.churn_prob = 0.2;
    cfg.faults.churn_interval = 2;
    cfg.faults.staleness_rounds = 2;
    out.push_back({"pdsl_chaos", cfg});
  }
  {
    // S-BYZ fixture: one of four agents sign-flips its cross-gradients.
    // Guards the adversary hash streams, sanitization and the pi split
    // columns with the same tolerance-zero contract.
    ExperimentConfig cfg = base_config();
    cfg.algorithm = "pdsl";
    cfg.adversary.frac = 0.25;
    cfg.adversary.mode = pdsl::sim::ByzMode::kSignFlip;
    cfg.adversary.scale = 3.0;
    out.push_back({"pdsl_byz_signflip", cfg});
  }
  return out;
}

std::string golden_path(const std::string& name) {
  return std::string(PDSL_GOLDEN_DIR) + "/" + name + ".csv";
}

std::string candidate_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("pdsl_golden_" + name + ".csv"))
      .string();
}

void run_scenario_to_csv(const Scenario& s, const std::string& path) {
  const ExperimentResult res = pdsl::core::run_experiment(s.cfg);
  pdsl::sim::write_metrics_csv(path, s.name, res.series);
}

bool is_timing_column(const std::string& name) {
  return name.size() > 2 && name.compare(name.size() - 2, 2, "_s") == 0;
}

void compare_csv(const std::string& golden, const std::string& candidate) {
  const auto want = pdsl::read_csv(golden);
  const auto got = pdsl::read_csv(candidate);
  ASSERT_FALSE(want.empty()) << golden;
  ASSERT_FALSE(got.empty()) << candidate;
  ASSERT_EQ(got[0], want[0]) << "CSV schema changed — regenerate the fixtures "
                                "if intentional";
  ASSERT_EQ(got.size(), want.size()) << "row count changed";
  const auto& header = want[0];
  for (std::size_t r = 1; r < want.size(); ++r) {
    ASSERT_EQ(got[r].size(), header.size()) << "row " << r;
    ASSERT_EQ(want[r].size(), header.size()) << "row " << r;
    for (std::size_t c = 0; c < header.size(); ++c) {
      if (is_timing_column(header[c])) continue;  // wall-clock, not numerics
      EXPECT_EQ(got[r][c], want[r][c])
          << "cell (" << r << ", " << header[c] << ") of " << golden;
    }
  }
}

}  // namespace

TEST(GoldenRegression, MetricsSeriesMatchFixtures) {
  for (const Scenario& s : scenarios()) {
    SCOPED_TRACE(s.name);
    const std::string golden = golden_path(s.name);
    ASSERT_TRUE(std::filesystem::exists(golden))
        << "missing fixture " << golden
        << " — run: test_golden_regression --regenerate";
    const std::string candidate = candidate_path(s.name);
    run_scenario_to_csv(s, candidate);
    compare_csv(golden, candidate);
    std::filesystem::remove(candidate);
  }
}

// S-SCALE: every fixture re-run with the topology routed through
// fleet::SparseGraph / SparseMetropolis must reproduce the SAME bytes as the
// dense path — the sparse views are a storage change, not a numerics change.
TEST(GoldenRegression, SparseTopologyPathMatchesSameFixtures) {
  for (Scenario s : scenarios()) {
    // Centralized/event-driven baselines reject fleet mode by design
    // (run_experiment throws); the mixing-based algorithms are the contract.
    if (s.cfg.algorithm == "fedavg" || s.cfg.algorithm == "dp_fedavg" ||
        s.cfg.algorithm == "async_dp_gossip") {
      continue;
    }
    SCOPED_TRACE(s.name + " (fleet.sparse)");
    s.cfg.fleet.sparse = true;
    const std::string golden = golden_path(s.name);
    ASSERT_TRUE(std::filesystem::exists(golden)) << "missing fixture " << golden;
    const std::string candidate = candidate_path(s.name + "_sparse");
    run_scenario_to_csv(s, candidate);
    compare_csv(golden, candidate);
    std::filesystem::remove(candidate);
  }
}

// Custom main so the same binary can regenerate its fixtures; the object
// file's main wins over the one in the static gtest_main library.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regenerate") {
      std::filesystem::create_directories(PDSL_GOLDEN_DIR);
      for (const Scenario& s : scenarios()) {
        run_scenario_to_csv(s, golden_path(s.name));
        std::printf("regenerated %s\n", golden_path(s.name).c_str());
      }
      return 0;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
