// Experiment driver: config plumbing, sigma calibration modes, the algorithm
// registry and reproducibility of full runs.

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/replicate.hpp"

using namespace pdsl;
using namespace pdsl::core;

namespace {
ExperimentConfig tiny(const std::string& algorithm) {
  ExperimentConfig cfg;
  cfg.algorithm = algorithm;
  cfg.dataset = "gaussian";
  cfg.model = "logistic";
  cfg.topology = "ring";
  cfg.agents = 4;
  cfg.rounds = 3;
  cfg.train_samples = 240;
  cfg.test_samples = 60;
  cfg.validation_samples = 40;
  cfg.image = 3;  // gaussian: dim = 9
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.05;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.sigma_mode = "none";
  cfg.metrics.test_subsample = 40;
  cfg.metrics.eval_every = 3;
  return cfg;
}
}  // namespace

TEST(Experiment, EveryRegisteredAlgorithmRuns) {
  for (const std::string name : {"pdsl", "pdsl_uniform", "pdsl_relu", "pdsl_robust", "dp_dpsgd",
                                 "muffliato", "dp_cga", "dp_netfleet", "dpsgd", "dmsgd",
                                 "async_dp_gossip", "dp_qgm"}) {
    const auto res = run_experiment(tiny(name));
    EXPECT_EQ(res.series.size(), 3u) << name;
    EXPECT_TRUE(std::isfinite(res.final_loss)) << name;
    EXPECT_GT(res.messages, 0u) << name;
  }
}

TEST(Experiment, UnknownNamesThrow) {
  auto cfg = tiny("fedsgd_prox");
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
  cfg = tiny("pdsl");
  cfg.dataset = "imagenet";
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
  cfg = tiny("pdsl");
  cfg.sigma_mode = "renyi";
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(Experiment, PaperAlgorithmListIsStable) {
  const auto& algs = paper_algorithms();
  ASSERT_EQ(algs.size(), 5u);
  EXPECT_EQ(algs.back(), "pdsl");
}

TEST(Experiment, DeterministicGivenSeed) {
  const auto a = run_experiment(tiny("pdsl"));
  const auto b = run_experiment(tiny("pdsl"));
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series[i].avg_loss, b.series[i].avg_loss);
  }
  auto cfg = tiny("pdsl");
  cfg.seed = 2;
  const auto c = run_experiment(cfg);
  EXPECT_NE(a.series.back().avg_loss, c.series.back().avg_loss);
}

TEST(Experiment, SigmaModes) {
  auto cfg = tiny("dp_dpsgd");
  cfg.sigma_mode = "none";
  EXPECT_DOUBLE_EQ(run_experiment(cfg).sigma, 0.0);

  cfg.sigma_mode = "fixed";
  cfg.hp.sigma = 0.37;
  EXPECT_DOUBLE_EQ(run_experiment(cfg).sigma, 0.37);

  cfg.sigma_mode = "dpsgd";
  cfg.epsilon = 0.1;
  cfg.delta = 1e-3;
  const double expect =
      std::sqrt(2.0 * std::log(1.25 / 1e-3)) * (2.0 * cfg.hp.clip / 8.0) / 0.1;
  EXPECT_NEAR(run_experiment(cfg).sigma, expect, 1e-9);

  cfg.sigma_mode = "theorem1";
  cfg.rounds = 1;
  const auto res = run_experiment(cfg);
  EXPECT_GT(res.sigma, expect);  // Theorem-1 bound is far more conservative
}

TEST(Experiment, SmallerEpsilonMeansMoreNoise) {
  auto cfg = tiny("dp_dpsgd");
  cfg.sigma_mode = "dpsgd";
  cfg.epsilon = 0.08;
  const double hi = run_experiment(cfg).sigma;
  cfg.epsilon = 0.3;
  const double lo = run_experiment(cfg).sigma;
  EXPECT_GT(hi, lo);
}

TEST(Experiment, ReportsSpectralAndHeterogeneity) {
  auto cfg = tiny("dpsgd");
  cfg.topology = "full";
  cfg.mu = 0.1;
  const auto res = run_experiment(cfg);
  EXPECT_NEAR(res.spectral.rho, 0.0, 1e-9);  // fully connected
  EXPECT_GT(res.heterogeneity, 0.0);

  cfg.iid = true;
  const auto iid_res = run_experiment(cfg);
  EXPECT_LT(iid_res.heterogeneity, res.heterogeneity);
}

TEST(Experiment, TopologiesOfThePaperAllRun) {
  for (const std::string topo : {"full", "bipartite", "ring"}) {
    auto cfg = tiny("pdsl");
    cfg.topology = topo;
    const auto res = run_experiment(cfg);
    EXPECT_EQ(res.series.size(), 3u) << topo;
    EXPECT_LT(res.spectral.sqrt_rho, 1.0) << topo;
  }
}

TEST(Experiment, ReplicationAggregates) {
  auto cfg = tiny("dpsgd");
  const auto rep = run_replicated(cfg, {1, 2, 3});
  EXPECT_EQ(rep.runs.size(), 3u);
  EXPECT_GE(rep.final_loss.max, rep.final_loss.mean);
  EXPECT_LE(rep.final_loss.min, rep.final_loss.mean);
  EXPECT_GE(rep.final_loss.stddev, 0.0);
  EXPECT_THROW(run_replicated(cfg, {}), std::invalid_argument);

  const auto agg = Aggregate::of({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(agg.mean, 2.0);
  EXPECT_DOUBLE_EQ(agg.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.max, 3.0);
  EXPECT_NEAR(agg.stddev, 1.0, 1e-12);
}

TEST(Experiment, PartitionModes) {
  auto cfg = tiny("dpsgd");
  cfg.dataset = "mnist_like";
  cfg.image = 6;
  cfg.train_samples = 400;
  cfg.partition = "shards";
  const auto shards = run_experiment(cfg);
  cfg.partition = "dirichlet";
  cfg.mu = 100.0;  // nearly IID
  const auto mild = run_experiment(cfg);
  EXPECT_GT(shards.heterogeneity, mild.heterogeneity);
  cfg.partition = "zipf";
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(Experiment, PoisonedAgentsHurtButRun) {
  auto cfg = tiny("pdsl");
  cfg.rounds = 8;
  cfg.hp.gamma = 0.1;
  const auto clean = run_experiment(cfg);
  cfg.corrupt_agents = 2;
  const auto poisoned = run_experiment(cfg);
  EXPECT_GT(poisoned.final_loss, clean.final_loss * 0.9);
  cfg.corrupt_agents = 4;  // == agents
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(Experiment, NoiseScaleMultipliesSigma) {
  auto cfg = tiny("dp_dpsgd");
  cfg.sigma_mode = "fixed";
  cfg.hp.sigma = 0.4;
  cfg.noise_scale = 0.5;
  EXPECT_DOUBLE_EQ(run_experiment(cfg).sigma, 0.2);
  cfg.sigma_mode = "none";
  EXPECT_DOUBLE_EQ(run_experiment(cfg).sigma, 0.0);
}

TEST(Experiment, MnistLikeCnnPathRuns) {
  auto cfg = tiny("pdsl");
  cfg.dataset = "mnist_like";
  cfg.model = "mnist_cnn";
  cfg.image = 12;
  cfg.rounds = 1;
  cfg.train_samples = 160;
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.series.size(), 1u);
  EXPECT_GT(res.model_dim, 100u);
}

TEST(Experiment, CifarLikeCnnPathRuns) {
  auto cfg = tiny("dp_dpsgd");
  cfg.dataset = "cifar_like";
  cfg.model = "cifar_cnn";
  cfg.image = 12;
  cfg.rounds = 1;
  cfg.train_samples = 160;
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.series.size(), 1u);
}

TEST(Experiment, PhaseTimingsAccountForRoundTime) {
  const auto res = run_experiment(tiny("pdsl"));
  ASSERT_EQ(res.series.size(), 3u);
  for (const auto& rm : res.series) {
    const double phases = rm.phases.total();
    // Phase scopes live strictly inside run_round, so the sum can't exceed
    // the round's wall time by more than timer noise...
    EXPECT_GT(rm.round_s, 0.0);
    EXPECT_LE(phases, rm.round_s * 1.05 + 1e-4);
    // ...and for pdsl the five phases cover the bulk of the round's work
    // (the rest is loop scaffolding and message passing). Conservative bound
    // so a loaded CI machine doesn't flake.
    EXPECT_GE(phases, rm.round_s * 0.25);
    // The expensive phases actually registered time.
    EXPECT_GT(rm.phases.shapley_s, 0.0);
    EXPECT_GT(rm.phases.local_grad_s, 0.0);
  }
  // Run totals are the per-round sums.
  double shapley = 0.0;
  for (const auto& rm : res.series) shapley += rm.phases.shapley_s;
  EXPECT_DOUBLE_EQ(res.phase_totals.shapley_s, shapley);
}

TEST(Experiment, PhaseTimingsPopulatedForBaselines) {
  for (const std::string name : {"dp_dpsgd", "muffliato", "dp_cga", "dp_netfleet"}) {
    const auto res = run_experiment(tiny(name));
    EXPECT_GT(res.phase_totals.total(), 0.0) << name;
  }
}

// S-BENCH360 satellite: the per-round RDP spend column. One Gaussian release
// per agent per round at fixed noise means the accountant's epsilon must grow
// monotonically with the round count — and stay exactly zero without noise.
TEST(Experiment, EpsilonSpentIsMonotoneAcrossRounds) {
  auto cfg = tiny("pdsl");
  cfg.sigma_mode = "fixed";
  cfg.hp.sigma = 0.05;
  cfg.rounds = 4;
  const auto res = run_experiment(cfg);
  ASSERT_EQ(res.series.size(), cfg.rounds);
  double prev = 0.0;
  for (const auto& rm : res.series) {
    EXPECT_GE(rm.epsilon_spent, prev);
    prev = rm.epsilon_spent;
  }
  EXPECT_GT(prev, 0.0);
  EXPECT_DOUBLE_EQ(res.epsilon_spent, res.series.back().epsilon_spent);
}

TEST(Experiment, EpsilonSpentIsZeroWithoutNoise) {
  auto cfg = tiny("pdsl");  // tiny() uses sigma_mode = "none"
  const auto res = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(res.epsilon_spent, 0.0);
  for (const auto& rm : res.series) EXPECT_DOUBLE_EQ(rm.epsilon_spent, 0.0);
}
