// Unit tests for the deterministic RNG substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"

using pdsl::Rng;

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  Rng root(7);
  Rng c1 = root.split(1);
  Rng c2 = root.split(2);
  Rng c1_again = Rng(7).split(1);
  EXPECT_DOUBLE_EQ(c1.uniform(), c1_again.uniform());
  // Splitting must not perturb the parent stream.
  Rng fresh(7);
  EXPECT_DOUBLE_EQ(root.uniform(), fresh.uniform());
  // Children are distinct streams.
  EXPECT_NE(c1.uniform(), c2.uniform());
}

TEST(Rng, UniformRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng r(5);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.08);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, DirichletSumsToOneAndNonNegative) {
  Rng r(6);
  for (int rep = 0; rep < 50; ++rep) {
    const auto p = r.dirichlet(std::vector<double>(8, 0.25));
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletSmallAlphaIsConcentrated) {
  // As alpha -> 0 the draw approaches a one-hot vector.
  Rng r(7);
  double max_mass = 0.0;
  const int reps = 100;
  for (int rep = 0; rep < reps; ++rep) {
    const auto p = r.dirichlet(std::vector<double>(10, 0.05));
    max_mass += *std::max_element(p.begin(), p.end());
  }
  EXPECT_GT(max_mass / reps, 0.8);
}

TEST(Rng, DirichletLargeAlphaIsUniformish) {
  Rng r(8);
  const auto p = r.dirichlet(std::vector<double>(10, 500.0));
  for (double v : p) EXPECT_NEAR(v, 0.1, 0.03);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng r(9);
  const auto p = r.permutation(20);
  std::vector<std::size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, PermutationsVary) {
  Rng r(10);
  const auto a = r.permutation(12);
  const auto b = r.permutation(12);
  EXPECT_NE(a, b);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng r(11);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[r.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng r(12);
  EXPECT_THROW(r.categorical({}), std::invalid_argument);
  EXPECT_THROW(r.categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, FillNormalFills) {
  Rng r(13);
  std::vector<float> buf(1000, 0.0f);
  r.fill_normal(buf, 0.0, 1.0);
  double nonzero = 0;
  for (float v : buf) nonzero += (v != 0.0f);
  EXPECT_GT(nonzero, 990);
}

TEST(Rng, SplitMixAvalanche) {
  // Adjacent inputs should produce very different outputs.
  const auto a = pdsl::splitmix64(1);
  const auto b = pdsl::splitmix64(2);
  EXPECT_NE(a, b);
  EXPECT_GT(__builtin_popcountll(a ^ b), 16);
}
