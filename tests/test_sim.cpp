// Simulation runtime: network semantics (edges, mailboxes, fault injection),
// the local worker gradient oracle, evaluation helpers and metrics.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"
#include "sim/evaluate.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/worker.hpp"

using namespace pdsl;
using namespace pdsl::sim;

namespace {
graph::Topology ring(std::size_t n) { return graph::Topology::make(graph::TopologyKind::kRing, n); }
}  // namespace

TEST(Network, DeliversFifoPerChannel) {
  const auto topo = ring(4);
  Network net(topo);
  net.send(0, 1, "a", {1.0f});
  net.send(0, 1, "a", {2.0f});
  auto first = net.receive(1, 0, "a");
  auto second = net.receive(1, 0, "a");
  ASSERT_TRUE(first && second);
  EXPECT_FLOAT_EQ((*first)[0], 1.0f);
  EXPECT_FLOAT_EQ((*second)[0], 2.0f);
  EXPECT_FALSE(net.receive(1, 0, "a").has_value());
}

TEST(Network, TagsAreIsolated) {
  Network net(ring(4));
  net.send(0, 1, "x", {1.0f});
  EXPECT_FALSE(net.receive(1, 0, "y").has_value());
  EXPECT_TRUE(net.receive(1, 0, "x").has_value());
}

TEST(Network, EnforcesTopology) {
  Network net(ring(5));
  EXPECT_THROW(net.send(0, 2, "a", {1.0f}), std::invalid_argument);  // not an edge
  EXPECT_THROW(net.send(0, 9, "a", {1.0f}), std::out_of_range);
  EXPECT_NO_THROW(net.send(0, 1, "a", {1.0f}));
  EXPECT_NO_THROW(net.send(0, 0, "a", {1.0f}));  // self allowed by default
}

TEST(Network, CountsMessagesAndBytes) {
  Network net(ring(4));
  net.send(0, 1, "a", std::vector<float>(10, 0.0f));
  net.send(1, 2, "a", std::vector<float>(5, 0.0f));
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 15u * sizeof(float));
}

TEST(Network, DropInjectionLosesRoughlyTheRequestedFraction) {
  Network::Options opts;
  opts.drop_prob = 0.3;
  opts.seed = 5;
  Network net(ring(4), opts);
  int delivered = 0;
  const int total = 2000;
  for (int i = 0; i < total; ++i) {
    if (net.send(0, 1, "a", {1.0f})) ++delivered;
  }
  EXPECT_EQ(net.messages_dropped(), static_cast<std::size_t>(total - delivered));
  EXPECT_NEAR(static_cast<double>(delivered) / total, 0.7, 0.05);
}

TEST(Network, SelfSendsAreNeverDropped) {
  Network::Options opts;
  opts.drop_prob = 0.9;
  Network net(ring(4), opts);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(net.send(2, 2, "s", {1.0f}));
}

TEST(Network, ClearReportsLeftovers) {
  Network net(ring(4));
  net.send(0, 1, "a", {1.0f});
  net.send(1, 2, "b", {1.0f});
  EXPECT_EQ(net.clear(), 2u);
  EXPECT_FALSE(net.has_message(1, 0, "a"));
}

TEST(Worker, GradientMatchesDirectModelComputation) {
  const auto ds = data::make_gaussian_mixture(60, 3, 4, 2.0, 0.5, 1);
  Rng rng(2);
  nn::Model model = nn::make_logistic(4, 3);
  model.init(rng);
  std::vector<std::size_t> shard = {0, 1, 2, 3, 4, 5, 6, 7};
  LocalWorker worker(model, ds, shard, 4, Rng(3));
  worker.draw_batch();
  const auto params = model.flat_params();
  const auto g1 = worker.gradient(params);
  const auto g2 = worker.gradient(params);  // same batch -> identical gradient
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(g1.size(), model.num_params());

  worker.draw_batch();  // new batch -> (almost surely) different gradient
  const auto g3 = worker.gradient(params);
  EXPECT_NE(g1, g3);
}

TEST(Worker, RequiresBatchBeforeGradient) {
  const auto ds = data::make_gaussian_mixture(20, 2, 3, 1.0, 0.5, 4);
  Rng rng(5);
  nn::Model model = nn::make_logistic(3, 2);
  model.init(rng);
  LocalWorker worker(model, ds, {0, 1, 2}, 2, Rng(6));
  EXPECT_THROW(worker.gradient(model.flat_params()), std::logic_error);
}

TEST(Worker, EvalMetricsAreDeterministic) {
  const auto ds = data::make_gaussian_mixture(100, 4, 3, 2.0, 0.3, 7);
  Rng rng(8);
  nn::Model model = nn::make_logistic(3, 4);
  model.init(rng);
  std::vector<std::size_t> shard(30);
  for (std::size_t i = 0; i < 30; ++i) shard[i] = i;
  LocalWorker worker(model, ds, shard, 8, Rng(9));
  const auto params = model.flat_params();
  EXPECT_DOUBLE_EQ(worker.local_eval_loss(params), worker.local_eval_loss(params));
  EXPECT_DOUBLE_EQ(worker.local_eval_accuracy(params), worker.local_eval_accuracy(params));
}

TEST(Evaluate, FullVsSubsample) {
  const auto ds = data::make_gaussian_mixture(200, 4, 3, 2.0, 0.3, 10);
  Rng rng(11);
  nn::Model ws = nn::make_logistic(3, 4);
  ws.init(rng);
  const auto params = ws.flat_params();
  const auto full = evaluate(ws, params, ds);
  EXPECT_EQ(full.samples, 200u);
  const auto sub = evaluate(ws, params, ds, 50);
  EXPECT_EQ(sub.samples, 50u);
  EXPECT_GE(full.accuracy, 0.0);
  EXPECT_LE(full.accuracy, 1.0);
}

TEST(Evaluate, FixedBatchScoring) {
  const auto ds = data::make_gaussian_mixture(50, 2, 3, 3.0, 0.2, 12);
  Rng rng(13);
  nn::Model ws = nn::make_logistic(3, 2);
  ws.init(rng);
  const auto batch = FixedBatch::from(ds, {0, 1, 2, 3, 4});
  const auto params = ws.flat_params();
  const double acc = accuracy_on(ws, params, batch);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  EXPECT_GT(loss_on(ws, params, batch), 0.0);
}

TEST(Metrics, ConsensusDistance) {
  const std::vector<std::vector<float>> same = {{1.0f, 0.0f}, {1.0f, 0.0f}};
  EXPECT_DOUBLE_EQ(consensus_distance(same), 0.0);
  // Two models at distance 2 from each other: each is 1 from the mean.
  const std::vector<std::vector<float>> split = {{1.0f, 0.0f}, {-1.0f, 0.0f}};
  EXPECT_NEAR(consensus_distance(split), 1.0, 1e-6);
}

TEST(Metrics, AverageModel) {
  const std::vector<std::vector<float>> models = {{2.0f, 0.0f}, {0.0f, 2.0f}};
  const auto avg = average_model(models);
  EXPECT_FLOAT_EQ(avg[0], 1.0f);
  EXPECT_FLOAT_EQ(avg[1], 1.0f);
  EXPECT_THROW(average_model(std::vector<std::vector<float>>{}), std::invalid_argument);
}

TEST(Metrics, CsvRoundTrip) {
  const std::string path = "/tmp/pdsl_metrics_test.csv";
  std::vector<RoundMetrics> series(2);
  series[0].round = 1;
  series[0].avg_loss = 2.5;
  series[1].round = 2;
  series[1].test_accuracy = 0.75;
  write_metrics_csv(path, "unit", series);
  const auto rows = pdsl::read_csv(path);
  ASSERT_EQ(rows.size(), 3u);  // header + 2
  EXPECT_EQ(rows[0][0], "run");
  EXPECT_EQ(rows[1][1], "1");
  EXPECT_EQ(rows[2][0], "unit");
}
