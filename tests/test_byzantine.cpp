// S-BYZ tests (ctest -L byzantine): AdversaryPlan role resolution and JSON
// round-trip, corrupt_payload mode semantics and per-message determinism,
// Network channel gating (state traffic never corrupted) and stale-replay
// history, consumer-side sanitization (NaN-bomb rejection keeps every
// algorithm finite), robust aggregation for the baselines, the empty-plan
// bit-identity contract, attacked-run determinism across --threads and
// reruns, and the headline defense result: PDSL's Shapley weighting collapses
// attacker-edge pi and beats unweighted DP-SGD gossip under the same attack.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/config_io.hpp"
#include "core/experiment.hpp"
#include "core/pdsl.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

using namespace pdsl;
using pdsl::core::ExperimentConfig;
using pdsl::core::ExperimentResult;
using pdsl::sim::AdversaryPlan;
using pdsl::sim::ByzMode;
using pdsl::sim::ByzRole;
using pdsl::sim::Channel;
using pdsl::sim::Network;
using pdsl::sim::NetworkOptions;

namespace {

bool all_finite(const std::vector<float>& v) {
  for (float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// The reduced-scale mnist_like setup the defense acceptance runs use
/// (mirrors the pdsl_cli quick-demo defaults + bench_byzantine).
ExperimentConfig attacked_config(const std::string& algorithm) {
  ExperimentConfig cfg;
  cfg.algorithm = algorithm;
  cfg.dataset = "mnist_like";
  cfg.model = "mlp";
  cfg.topology = "full";
  cfg.agents = 8;
  cfg.rounds = 12;
  cfg.train_samples = 900;
  cfg.image = 10;
  cfg.hp.batch = 16;
  cfg.hp.gamma = 0.05;
  cfg.hp.shapley_permutations = 8;
  cfg.hp.validation_batch = 64;
  cfg.epsilon = 0.3;
  cfg.noise_scale = 0.06;
  cfg.seed = 1;
  cfg.metrics.eval_every = 12;  // accuracy at the final round only (speed)
  cfg.adversary.frac = 0.25;
  cfg.adversary.mode = ByzMode::kSignFlip;
  cfg.adversary.scale = 3.0;
  return cfg;
}

/// Small fast config for determinism / finiteness sweeps.
ExperimentConfig tiny_config(const std::string& algorithm) {
  ExperimentConfig cfg;
  cfg.algorithm = algorithm;
  cfg.dataset = "mnist_like";
  cfg.model = "mlp";
  cfg.topology = "full";
  cfg.agents = 4;
  cfg.rounds = 3;
  cfg.train_samples = 300;
  cfg.test_samples = 100;
  cfg.validation_samples = 80;
  cfg.image = 8;
  cfg.hidden = 16;
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.05;
  cfg.hp.clip = 5.0;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 24;
  cfg.noise_scale = 0.05;
  cfg.seed = 5;
  cfg.metrics.eval_every = 3;
  cfg.metrics.test_subsample = 100;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// AdversaryPlan semantics
// ---------------------------------------------------------------------------

TEST(AdversaryPlan, FracDefaultPicksLowestIdsWithOnsetWindow) {
  AdversaryPlan plan;
  plan.frac = 0.25;
  plan.mode = ByzMode::kSignFlip;
  plan.onset = 3;
  plan.until_round = 6;
  EXPECT_TRUE(plan.any());
  EXPECT_EQ(plan.num_default_attackers(8), 2u);
  EXPECT_TRUE(plan.is_byzantine(0, 8));
  EXPECT_TRUE(plan.is_byzantine(1, 8));
  EXPECT_FALSE(plan.is_byzantine(2, 8));
  // Outside [onset, until_round) everyone resolves honest.
  EXPECT_EQ(plan.role(0, 8, 2).mode, ByzMode::kNone);
  EXPECT_EQ(plan.role(0, 8, 3).mode, ByzMode::kSignFlip);
  EXPECT_EQ(plan.role(0, 8, 5).mode, ByzMode::kSignFlip);
  EXPECT_EQ(plan.role(0, 8, 6).mode, ByzMode::kNone);
  EXPECT_EQ(plan.active_count(8, 4), 2u);
  EXPECT_EQ(plan.active_count(8, 7), 0u);
}

TEST(AdversaryPlan, FracNeverConvertsTheWholeFleet) {
  AdversaryPlan plan;
  plan.frac = 0.99;
  plan.mode = ByzMode::kScale;
  EXPECT_EQ(plan.num_default_attackers(4), 3u);  // at least one honest agent
  EXPECT_EQ(plan.num_default_attackers(1), 0u);
  EXPECT_EQ(plan.num_default_attackers(0), 0u);
}

TEST(AdversaryPlan, ExplicitRolesOverrideTheFracDefault) {
  AdversaryPlan plan;
  plan.frac = 0.5;  // would cover agents 0..3 of 8
  plan.mode = ByzMode::kSignFlip;
  // Agent 0 is explicitly scheduled: nan_bomb in rounds [2,4) ONLY — the frac
  // default must not apply to it outside that window.
  plan.roles.push_back(ByzRole{0, ByzMode::kNanBomb, 1.0, 2, 4});
  EXPECT_EQ(plan.role(0, 8, 1).mode, ByzMode::kNone);
  EXPECT_EQ(plan.role(0, 8, 2).mode, ByzMode::kNanBomb);
  EXPECT_EQ(plan.role(0, 8, 4).mode, ByzMode::kNone);
  // Agent 1 still follows the frac default.
  EXPECT_EQ(plan.role(1, 8, 1).mode, ByzMode::kSignFlip);
}

TEST(AdversaryPlan, ValidateRejectsBadKnobs) {
  AdversaryPlan plan;
  plan.frac = 1.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.frac = 0.25;
  plan.onset = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.onset = 5;
  plan.until_round = 5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.until_round = sim::kNoRoundLimit;
  plan.scale = 0.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.scale = 3.0;
  plan.roles.push_back(ByzRole{0, ByzMode::kScale, 2.0, 3, 2});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(AdversaryPlan, JsonRoundTripPreservesEveryField) {
  AdversaryPlan plan;
  plan.frac = 0.25;
  plan.mode = ByzMode::kNoise;
  plan.scale = 1.5;
  plan.onset = 4;
  plan.until_round = 9;
  plan.seed = 42;
  plan.roles.push_back(ByzRole{3, ByzMode::kStaleReplay, 2.0, 2, 7});
  const auto v = sim::adversary_plan_to_json(plan);
  const AdversaryPlan back = sim::adversary_plan_from_json(json::parse(v.dump()));
  EXPECT_EQ(back.frac, plan.frac);
  EXPECT_EQ(back.mode, plan.mode);
  EXPECT_EQ(back.scale, plan.scale);
  EXPECT_EQ(back.onset, plan.onset);
  EXPECT_EQ(back.until_round, plan.until_round);
  EXPECT_EQ(back.seed, plan.seed);
  ASSERT_EQ(back.roles.size(), 1u);
  EXPECT_EQ(back.roles[0].agent, 3u);
  EXPECT_EQ(back.roles[0].mode, ByzMode::kStaleReplay);
  EXPECT_EQ(back.roles[0].from_round, 2u);
  EXPECT_EQ(back.roles[0].until_round, 7u);
}

TEST(AdversaryPlan, JsonParseRejectsUnknownKeys) {
  EXPECT_THROW(sim::adversary_plan_from_json(json::parse(R"({"fraction": 0.2})")),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// corrupt_payload
// ---------------------------------------------------------------------------

TEST(CorruptPayload, SignFlipNegatesAndAmplifies) {
  ByzRole role{0, ByzMode::kSignFlip, 3.0, 1, sim::kNoRoundLimit};
  std::vector<float> p{1.0f, -2.0f, 0.5f};
  sim::corrupt_payload(role, 7, 0, 1, sim::hash_tag("xg@1"), p);
  EXPECT_EQ(p, (std::vector<float>{-3.0f, 6.0f, -1.5f}));
}

TEST(CorruptPayload, ScaleModeAmplifiesWithoutFlip) {
  ByzRole role{0, ByzMode::kScale, 2.0, 1, sim::kNoRoundLimit};
  std::vector<float> p{1.0f, -2.0f};
  sim::corrupt_payload(role, 7, 0, 1, sim::hash_tag("xg@1"), p);
  EXPECT_EQ(p, (std::vector<float>{2.0f, -4.0f}));
}

TEST(CorruptPayload, NanBombReplacesEverythingNonFinite) {
  ByzRole role{0, ByzMode::kNanBomb, 1.0, 1, sim::kNoRoundLimit};
  std::vector<float> p(7, 1.0f);
  sim::corrupt_payload(role, 7, 0, 1, sim::hash_tag("xg@1"), p);
  for (float x : p) EXPECT_FALSE(std::isfinite(x));
}

TEST(CorruptPayload, NoiseIsAPureFunctionOfMessageIdentity) {
  ByzRole role{0, ByzMode::kNoise, 1.0, 1, sim::kNoRoundLimit};
  std::vector<float> a(8, 0.0f), b(8, 0.0f), c(8, 0.0f);
  sim::corrupt_payload(role, 7, 0, 1, sim::hash_tag("xg@1"), a);
  sim::corrupt_payload(role, 7, 0, 1, sim::hash_tag("xg@1"), b);
  sim::corrupt_payload(role, 7, 0, 1, sim::hash_tag("xg@2"), c);
  EXPECT_EQ(a, b);  // identical identity -> identical noise, any call order
  EXPECT_NE(a, c);  // a different message draws a different stream
  for (float x : a) EXPECT_TRUE(std::isfinite(x));
}

TEST(CorruptPayload, HashTagIsStableAndSensitive) {
  EXPECT_EQ(sim::hash_tag("xg@1"), sim::hash_tag("xg@1"));
  EXPECT_NE(sim::hash_tag("xg@1"), sim::hash_tag("xg@2"));
  EXPECT_NE(sim::hash_tag(""), sim::hash_tag("x"));
}

// ---------------------------------------------------------------------------
// Network integration: channel gating + stale replay
// ---------------------------------------------------------------------------

TEST(NetworkByzantine, StateChannelIsNeverCorrupted) {
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 3);
  NetworkOptions opts;
  opts.adversary.frac = 0.4;  // agent 0 attacks
  opts.adversary.mode = ByzMode::kSignFlip;
  Network net(topo, opts);
  net.begin_round(1);
  const std::vector<float> payload{1.0f, 2.0f};
  net.send(0, 1, "x@1", payload, Channel::kState);
  net.send(0, 1, "xg@1", payload, Channel::kContribution);
  EXPECT_EQ(*net.receive(1, 0, "x@1"), payload);
  EXPECT_EQ(*net.receive(1, 0, "xg@1"), (std::vector<float>{-3.0f, -6.0f}));
  EXPECT_EQ(net.messages_corrupted(), 1u);
}

TEST(NetworkByzantine, HonestSendersAreUntouchedOnEveryChannel) {
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 3);
  NetworkOptions opts;
  opts.adversary.frac = 0.4;  // agent 0 attacks; 1 and 2 are honest
  opts.adversary.mode = ByzMode::kSignFlip;
  Network net(topo, opts);
  net.begin_round(1);
  const std::vector<float> payload{1.0f, 2.0f};
  net.send(1, 2, "xg@1", payload, Channel::kContribution);
  EXPECT_EQ(*net.receive(2, 1, "xg@1"), payload);
  EXPECT_EQ(net.messages_corrupted(), 0u);
}

TEST(NetworkByzantine, StaleReplayResendsTheFirstRecordedPayload) {
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 2);
  NetworkOptions opts;
  opts.adversary.roles.push_back(
      ByzRole{0, ByzMode::kStaleReplay, 1.0, 1, sim::kNoRoundLimit});
  Network net(topo, opts);
  net.begin_round(1);
  net.send(0, 1, "xg@1", {1.0f}, Channel::kContribution);
  EXPECT_EQ(*net.receive(1, 0, "xg@1"), std::vector<float>{1.0f});  // recorded
  EXPECT_EQ(net.messages_corrupted(), 0u);
  net.begin_round(2);
  net.send(0, 1, "xg@2", {2.0f}, Channel::kContribution);
  // Round 2's payload is replaced by the round-1 recording (tag kind "xg").
  EXPECT_EQ(*net.receive(1, 0, "xg@2"), std::vector<float>{1.0f});
  EXPECT_EQ(net.messages_corrupted(), 1u);
  net.begin_round(3);
  net.send(0, 1, "xg@3", {3.0f}, Channel::kContribution);
  EXPECT_EQ(*net.receive(1, 0, "xg@3"), std::vector<float>{1.0f});
  EXPECT_EQ(net.messages_corrupted(), 2u);
}

// ---------------------------------------------------------------------------
// Defense screening end to end
// ---------------------------------------------------------------------------

TEST(Defense, EmptyPlanKeepsSanitizationOffAndRunsBitIdentical) {
  // kAuto must resolve to "off" with no adversary configured, taking the
  // exact pre-defense receive path: forcing kOff must change nothing.
  ExperimentConfig cfg = tiny_config("pdsl");
  const ExperimentResult a = core::run_experiment(cfg);
  cfg.defense.sanitize = algos::DefenseOptions::Sanitize::kOff;
  const ExperimentResult b = core::run_experiment(cfg);
  EXPECT_EQ(a.average_model, b.average_model);
  EXPECT_EQ(a.corrupted, 0u);
  EXPECT_EQ(a.rejected, 0u);
  EXPECT_EQ(a.reclipped, 0u);
}

TEST(Defense, EveryAlgorithmStaysFiniteUnderTheNanBomb) {
  for (const char* alg :
       {"pdsl", "pdsl_uniform", "dp_dpsgd", "muffliato", "dp_cga", "dp_netfleet",
        "async_dp_gossip", "dp_qgm", "fedavg", "dpsgd", "dmsgd"}) {
    SCOPED_TRACE(alg);
    ExperimentConfig cfg = tiny_config(alg);
    cfg.adversary.frac = 0.25;
    cfg.adversary.mode = ByzMode::kNanBomb;
    const ExperimentResult res = core::run_experiment(cfg);
    EXPECT_TRUE(all_finite(res.average_model));
    EXPECT_TRUE(std::isfinite(res.final_loss));
  }
}

TEST(Defense, SanitizationRejectsNanBombsAndCountsThem) {
  ExperimentConfig cfg = tiny_config("pdsl");
  cfg.adversary.frac = 0.25;
  cfg.adversary.mode = ByzMode::kNanBomb;
  const ExperimentResult res = core::run_experiment(cfg);
  EXPECT_GT(res.corrupted, 0u);
  EXPECT_GT(res.rejected, 0u);
  EXPECT_TRUE(all_finite(res.average_model));
  // Without screening the NaNs reach the aggregation and poison the fleet —
  // the counters and the finite model above are what the defense buys.
  cfg.defense.sanitize = algos::DefenseOptions::Sanitize::kOff;
  const ExperimentResult undefended = core::run_experiment(cfg);
  EXPECT_FALSE(all_finite(undefended.average_model));
}

TEST(Defense, RobustAggregationShieldsTheGossipBaseline) {
  // dp_dpsgd's model gossip is its contribution channel: a sign-flip attacker
  // injects -3x models into every neighbor average. Coordinate-median
  // aggregation must hold the fleet together where plain W-averaging sinks.
  ExperimentConfig plain = tiny_config("dp_dpsgd");
  plain.rounds = 8;
  plain.metrics.eval_every = 8;
  plain.adversary.frac = 0.25;
  plain.adversary.mode = ByzMode::kScale;
  plain.adversary.scale = 25.0;  // inflation attack: huge bogus models
  ExperimentConfig robust = plain;
  robust.defense.robust_agg = algos::DefenseOptions::RobustAgg::kMedian;
  const ExperimentResult a = core::run_experiment(plain);
  const ExperimentResult b = core::run_experiment(robust);
  // The median ignores the inflated minority entirely; plain averaging blows
  // the consensus distance up by the attack magnitude.
  ASSERT_FALSE(a.series.empty());
  ASSERT_FALSE(b.series.empty());
  EXPECT_LT(b.series.back().consensus, a.series.back().consensus);
  EXPECT_TRUE(all_finite(b.average_model));
}

// ---------------------------------------------------------------------------
// Determinism contract for attacked runs
// ---------------------------------------------------------------------------

TEST(ByzantineDeterminism, AttackedRunsAreBitIdenticalAcrossThreadsAndReruns) {
  ExperimentConfig cfg = tiny_config("pdsl");
  cfg.adversary.frac = 0.25;
  cfg.adversary.mode = ByzMode::kNoise;  // the only mode that draws noise
  cfg.adversary.scale = 2.0;
  const ExperimentResult first = core::run_experiment(cfg);
  const ExperimentResult rerun = core::run_experiment(cfg);
  cfg.threads = 4;
  const ExperimentResult wide = core::run_experiment(cfg);
  EXPECT_EQ(first.average_model, rerun.average_model);
  EXPECT_EQ(first.average_model, wide.average_model);
  EXPECT_EQ(first.corrupted, wide.corrupted);
  ASSERT_EQ(first.series.size(), wide.series.size());
  for (std::size_t r = 0; r < first.series.size(); ++r) {
    EXPECT_EQ(first.series[r].avg_loss, wide.series[r].avg_loss) << r;
    EXPECT_EQ(first.series[r].pi_attacker, wide.series[r].pi_attacker) << r;
    EXPECT_EQ(first.series[r].pi_honest, wide.series[r].pi_honest) << r;
    EXPECT_EQ(first.series[r].rejected, wide.series[r].rejected) << r;
  }
}

// ---------------------------------------------------------------------------
// The headline defense result (acceptance criteria)
// ---------------------------------------------------------------------------

TEST(ShapleyDefense, AttackerEdgeWeightsCollapseByRoundTen) {
  // 25% sign-flip attackers on mnist_like. The robust PDSL configuration
  // (loss characteristic + ReLU normalization — the repo's documented fix for
  // the flat-accuracy cold start) drives attacker-edge pi far below
  // honest-edge pi within ten rounds.
  ExperimentConfig cfg = attacked_config("pdsl_robust");
  const ExperimentResult res = core::run_experiment(cfg);
  ASSERT_GE(res.series.size(), 12u);
  const auto& r10 = res.series[9];
  EXPECT_GT(r10.byz_active, 0u);
  EXPECT_LT(r10.pi_attacker, r10.pi_honest);
  double att = 0.0, hon = 0.0;
  for (std::size_t r = 9; r < 12; ++r) {
    att += res.series[r].pi_attacker;
    hon += res.series[r].pi_honest;
  }
  EXPECT_LT(att, 0.5 * hon);  // collapsed, not merely below
}

TEST(ShapleyDefense, PdslBeatsUnweightedGossipUnderTheSameAttack) {
  const ExperimentResult pdsl = core::run_experiment(attacked_config("pdsl"));
  const ExperimentResult dpsgd = core::run_experiment(attacked_config("dp_dpsgd"));
  // dp_dpsgd averages the flipped models straight in and stays at chance
  // (~0.1); PDSL's weighting keeps learning through the attack.
  EXPECT_GT(pdsl.final_accuracy, dpsgd.final_accuracy + 0.15);
  EXPECT_GT(pdsl.final_accuracy, 0.25);
}

// ---------------------------------------------------------------------------
// S-RECOV x S-BYZ: adversarial corruption rides the unreliable channel
// ---------------------------------------------------------------------------

TEST(NetworkByzantine, CorruptedPayloadMaturesThroughTheDelayBuffer) {
  // A Byzantine sign-flip is *semantic* corruption: it happens before the
  // wire, so the checksum sees a consistent frame and the transport carries
  // the poisoned payload faithfully — including through the pending-delay
  // buffer and around any bit-flip/retransmit cycles the channel injects.
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 2);
  NetworkOptions opts;
  opts.adversary.frac = 0.5;  // agent 0 attacks
  opts.adversary.mode = ByzMode::kSignFlip;
  opts.faults.delay_prob = 0.8;
  opts.faults.delay_rounds = 2;
  opts.channel.corrupt_prob = 0.3;
  opts.channel.max_retries = 16;
  Network net(topo, opts);
  net.begin_round(1);
  const std::vector<float> flipped{-3.0f, -6.0f};
  const std::size_t kMsgs = 20;
  for (std::size_t k = 0; k < kMsgs; ++k) {
    ASSERT_TRUE(net.send(0, 1, "xg@1/" + std::to_string(k), {1.0f, 2.0f},
                         Channel::kContribution));
  }
  std::size_t now = 0;
  for (std::size_t k = 0; k < kMsgs; ++k) {
    const std::string tag = "xg@1/" + std::to_string(k);
    if (const auto got = net.receive(1, 0, tag)) {
      EXPECT_EQ(*got, flipped) << tag;
      ++now;
    }
  }
  EXPECT_GT(net.in_flight(), 0u);  // the delay knob actually fired
  std::size_t late = 0;
  for (std::size_t t = 2; t <= 14 && net.in_flight() > 0; ++t) {
    for (const auto& m : net.begin_round(t)) {
      EXPECT_EQ(m.payload, flipped) << m.tag;  // still poisoned after maturing
      ++late;
    }
  }
  EXPECT_EQ(now + late, kMsgs);  // nothing lost, nothing double-delivered
  EXPECT_EQ(net.messages_corrupted(), kMsgs);  // one Byz event per message
  // Every checksum-caught bit flip triggered exactly one retransmission and
  // never surfaced anywhere — the only corruption a receiver ever sees is
  // the adversary's, which the checksum cannot (and must not) flag.
  EXPECT_GT(net.corruptions_detected(), 0u);
  EXPECT_EQ(net.corruptions_detected(), net.retransmits());
  EXPECT_EQ(net.retry_exhausted(), 0u);
}
