// S-RECOV: unreliable-channel transport (corruption/NACK/retransmit/backoff,
// duplication dedup, reordering) and crash/restart recovery (CrashPlan purity,
// RecoveryManager snapshot + neighbor resync, snapshot files), plus the
// kill-and-resume contract: a run checkpointed mid-flight and resumed must be
// bit-identical to the uninterrupted run at any --threads width.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "graph/topology.hpp"
#include "io/checkpoint.hpp"
#include "io/codec.hpp"
#include "recovery/recovery.hpp"
#include "recovery/run_state.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

using namespace pdsl;
using namespace pdsl::sim;

namespace {

std::vector<float> payload_of(float base, std::size_t n = 8) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = base + static_cast<float>(i);
  return v;
}

Network make_net(std::size_t agents, ChannelPlan channel, FaultPlan faults = {}) {
  Rng rng(5);
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, agents, &rng);
  NetworkOptions opts;
  opts.seed = 77;
  opts.faults = std::move(faults);
  opts.channel = std::move(channel);
  return Network(topo, opts);
}

core::ExperimentConfig tiny_cfg() {
  core::ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "gaussian";
  cfg.model = "logistic";
  cfg.topology = "ring";
  cfg.agents = 5;
  cfg.rounds = 6;
  cfg.train_samples = 250;
  cfg.test_samples = 60;
  cfg.validation_samples = 40;
  cfg.image = 3;  // gaussian: dim = 9
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.05;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.sigma_mode = "none";
  cfg.metrics.test_subsample = 40;
  cfg.seed = 11;
  return cfg;
}

/// Compare every deterministic RoundMetrics field (everything except the
/// wall-clock "_s" columns and the phase breakdown).
void expect_same_series(const std::vector<RoundMetrics>& a,
                        const std::vector<RoundMetrics>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(std::string(what) + " round " + std::to_string(i));
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].avg_loss, b[i].avg_loss);
    EXPECT_EQ(a[i].test_accuracy, b[i].test_accuracy);
    EXPECT_EQ(a[i].consensus, b[i].consensus);
    EXPECT_EQ(a[i].grad_norm, b[i].grad_norm);
    EXPECT_EQ(a[i].messages, b[i].messages);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].dropped, b[i].dropped);
    EXPECT_EQ(a[i].delayed, b[i].delayed);
    EXPECT_EQ(a[i].offline, b[i].offline);
    EXPECT_EQ(a[i].stale_reused, b[i].stale_reused);
    EXPECT_EQ(a[i].fallbacks, b[i].fallbacks);
    EXPECT_EQ(a[i].byz_active, b[i].byz_active);
    EXPECT_EQ(a[i].corrupted, b[i].corrupted);
    EXPECT_EQ(a[i].rejected, b[i].rejected);
    EXPECT_EQ(a[i].reclipped, b[i].reclipped);
    EXPECT_EQ(a[i].pi_attacker, b[i].pi_attacker);
    EXPECT_EQ(a[i].pi_honest, b[i].pi_honest);
    EXPECT_EQ(a[i].epsilon_spent, b[i].epsilon_spent);
    EXPECT_EQ(a[i].shapley_evals, b[i].shapley_evals);
    EXPECT_EQ(a[i].shapley_batched, b[i].shapley_batched);
    EXPECT_EQ(a[i].shapley_cache_hits, b[i].shapley_cache_hits);
    EXPECT_EQ(a[i].shapley_cache_misses, b[i].shapley_cache_misses);
    EXPECT_EQ(a[i].shapley_early_stops, b[i].shapley_early_stops);
    EXPECT_EQ(a[i].retransmits, b[i].retransmits);
    EXPECT_EQ(a[i].corrupt_detected, b[i].corrupt_detected);
    EXPECT_EQ(a[i].dup_dropped, b[i].dup_dropped);
    EXPECT_EQ(a[i].reordered, b[i].reordered);
    EXPECT_EQ(a[i].crashes, b[i].crashes);
    EXPECT_EQ(a[i].resyncs, b[i].resyncs);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Plan semantics
// ---------------------------------------------------------------------------

TEST(ChannelPlanTest, ValidateRejectsOutOfRangeKnobs) {
  ChannelPlan p;
  p.corrupt_prob = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ChannelPlan{};
  p.duplicate_prob = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ChannelPlan{};
  p.reorder_prob = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ChannelPlan{};
  p.corrupt_prob = 0.3;
  p.duplicate_prob = 0.999;
  p.reorder_prob = 0.0;
  EXPECT_NO_THROW(p.validate());
}

TEST(ChannelPlanTest, JsonRoundTripPreservesEveryKnob) {
  ChannelPlan p;
  p.corrupt_prob = 0.12;
  p.duplicate_prob = 0.05;
  p.reorder_prob = 0.07;
  p.max_retries = 6;
  p.seed = 42;
  const auto back = channel_plan_from_json(channel_plan_to_json(p));
  EXPECT_EQ(back.corrupt_prob, p.corrupt_prob);
  EXPECT_EQ(back.duplicate_prob, p.duplicate_prob);
  EXPECT_EQ(back.reorder_prob, p.reorder_prob);
  EXPECT_EQ(back.max_retries, p.max_retries);
  EXPECT_EQ(back.seed, p.seed);

  auto v = channel_plan_to_json(p);
  v.as_object()["warp_speed"] = 1.0;
  EXPECT_THROW(channel_plan_from_json(v), std::invalid_argument);
}

TEST(ChannelPlanTest, DecisionsArePureFunctionsOfIdentity) {
  ChannelPlan p;
  p.corrupt_prob = 0.3;
  p.duplicate_prob = 0.3;
  p.reorder_prob = 0.3;
  p.seed = 99;
  // Same identity -> same answer, every time and in any query order.
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(p.corrupt(0, 1, 7, 0), p.corrupt(0, 1, 7, 0));
    EXPECT_EQ(p.duplicate(2, 3, 11), p.duplicate(2, 3, 11));
    EXPECT_EQ(p.reorder(1, 0, 5), p.reorder(1, 0, 5));
  }
  // The attempt number is mixed into the corruption hash, so a retransmission
  // re-rolls: over many messages the two attempt streams must differ.
  bool attempt_streams_differ = false;
  std::size_t hits = 0;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    if (p.corrupt(0, 1, k, 0) != p.corrupt(0, 1, k, 1)) attempt_streams_differ = true;
    if (p.corrupt(0, 1, k, 0)) ++hits;
  }
  EXPECT_TRUE(attempt_streams_differ);
  // Empirical rate within a loose band of the knob.
  EXPECT_NEAR(static_cast<double>(hits) / 2000.0, 0.3, 0.05);
}

TEST(ChannelPlanTest, BackoffScheduleIsRoundGranularAndCapped) {
  EXPECT_EQ(ChannelPlan::backoff_for(0), 0u);
  EXPECT_EQ(ChannelPlan::backoff_for(1), 0u);
  EXPECT_EQ(ChannelPlan::backoff_for(2), 1u);
  EXPECT_EQ(ChannelPlan::backoff_for(3), 2u);
  EXPECT_EQ(ChannelPlan::backoff_for(4), 4u);
  EXPECT_EQ(ChannelPlan::backoff_for(5), 8u);
  EXPECT_EQ(ChannelPlan::backoff_for(6), 8u);   // capped
  EXPECT_EQ(ChannelPlan::backoff_for(50), 8u);  // still capped
}

TEST(CrashPlanTest, ValidateRejectsBadKnobs) {
  CrashPlan p;
  p.crash_prob = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = CrashPlan{};
  p.crash_prob = 0.1;
  p.snapshot_every = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = CrashPlan{};
  p.crash_prob = 0.1;
  p.snapshot_every = 3;
  EXPECT_NO_THROW(p.validate());
}

TEST(CrashPlanTest, JsonRoundTripAndPurity) {
  CrashPlan p;
  p.crash_prob = 0.2;
  p.snapshot_every = 4;
  p.seed = 17;
  const auto back = crash_plan_from_json(crash_plan_to_json(p));
  EXPECT_EQ(back.crash_prob, p.crash_prob);
  EXPECT_EQ(back.snapshot_every, p.snapshot_every);
  EXPECT_EQ(back.seed, p.seed);

  std::size_t crashed = 0;
  for (std::size_t agent = 0; agent < 10; ++agent) {
    for (std::size_t t = 1; t <= 50; ++t) {
      EXPECT_EQ(p.crashes(agent, t), p.crashes(agent, t));
      if (p.crashes(agent, t)) ++crashed;
    }
  }
  EXPECT_NEAR(static_cast<double>(crashed) / 500.0, 0.2, 0.08);

  auto v = crash_plan_to_json(p);
  v.as_object()["blast_radius"] = 2.0;
  EXPECT_THROW(crash_plan_from_json(v), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Transport: corruption / retransmit / dedup / reorder
// ---------------------------------------------------------------------------

TEST(TransportTest, RetransmitRecoversEveryCorruptedFrame) {
  ChannelPlan ch;
  ch.corrupt_prob = 0.5;
  ch.max_retries = 16;  // 0.5^17 residual loss: effectively never exhausts
  ch.seed = 101;
  auto net = make_net(2, ch);
  net.begin_round(1);

  const std::size_t kMsgs = 80;
  std::vector<float> late_payloads;
  std::size_t delivered_now = 0;
  for (std::size_t k = 0; k < kMsgs; ++k) {
    ASSERT_TRUE(net.send(0, 1, "t@" + std::to_string(k), payload_of(static_cast<float>(k))));
  }
  for (std::size_t k = 0; k < kMsgs; ++k) {
    const auto got = net.receive(1, 0, "t@" + std::to_string(k));
    if (got) {
      ++delivered_now;
      // Delivered payloads survive the corrupt/retransmit loop bit-intact.
      EXPECT_EQ(*got, payload_of(static_cast<float>(k)));
    }
  }
  // Backed-off retransmissions surface in later rounds; collect them all.
  std::size_t delivered_late = net.in_flight();
  for (std::size_t t = 2; t <= 12 && net.in_flight() > 0; ++t) {
    for (const auto& late : net.begin_round(t)) {
      EXPECT_EQ(late.payload, payload_of(late.payload[0]));
    }
  }
  EXPECT_EQ(delivered_now + delivered_late, kMsgs);
  EXPECT_EQ(net.retry_exhausted(), 0u);
  EXPECT_GT(net.retransmits(), 0u);
  // Exactly-one-counter invariant: every checksum-caught flip either triggered
  // one retransmission or (never, here) exhausted the budget.
  EXPECT_EQ(net.corruptions_detected(), net.retransmits() + net.retry_exhausted());
}

TEST(TransportTest, DetectedCorruptionNeverReachesTheMailbox) {
  ChannelPlan ch;
  ch.corrupt_prob = 0.9;
  ch.max_retries = 0;  // no budget: every detected flip is a terminal loss
  ch.seed = 202;
  auto net = make_net(2, ch);
  net.begin_round(1);

  const std::size_t kMsgs = 60;
  std::size_t delivered = 0;
  for (std::size_t k = 0; k < kMsgs; ++k) {
    const std::string tag = "u@" + std::to_string(k);
    const bool ok = net.send(0, 1, tag, payload_of(1.0f));
    if (!ok) {
      // A detected corruption with no retry budget must never surface.
      EXPECT_FALSE(net.has_message(1, 0, tag));
      EXPECT_FALSE(net.receive(1, 0, tag).has_value());
    } else if (net.has_message(1, 0, tag)) {
      EXPECT_EQ(*net.receive(1, 0, tag), payload_of(1.0f));
      ++delivered;
    }
  }
  EXPECT_GT(net.corruptions_detected(), 0u);
  EXPECT_EQ(net.retransmits(), 0u);
  // With zero retries every detection is an exhaustion, counted exactly once.
  EXPECT_EQ(net.corruptions_detected(), net.retry_exhausted());
  EXPECT_EQ(net.retry_exhausted(), net.messages_dropped());
  EXPECT_EQ(delivered + net.in_flight() + net.messages_dropped(), kMsgs);
}

TEST(TransportTest, DuplicatesAreDeliveredExactlyOnce) {
  ChannelPlan ch;
  ch.duplicate_prob = 0.9;
  ch.seed = 303;
  auto net = make_net(2, ch);
  net.begin_round(1);

  const std::size_t kMsgs = 40;
  for (std::size_t k = 0; k < kMsgs; ++k) {
    ASSERT_TRUE(net.send(0, 1, "d@" + std::to_string(k), payload_of(2.0f)));
  }
  for (std::size_t k = 0; k < kMsgs; ++k) {
    const std::string tag = "d@" + std::to_string(k);
    ASSERT_TRUE(net.receive(1, 0, tag).has_value()) << tag;
    // Exactly-once: the duplicate copy was deduped at the transport.
    EXPECT_FALSE(net.receive(1, 0, tag).has_value()) << tag;
  }
  EXPECT_GT(net.duplicates_dropped(), 0u);
  // The duplicate copies consumed wire frames beyond one per message.
  EXPECT_GT(net.wire_messages(), kMsgs);
}

TEST(TransportTest, ReorderingIsDeterministicAndJumpsTheQueue) {
  ChannelPlan ch;
  ch.reorder_prob = 0.5;
  ch.seed = 404;
  auto net = make_net(2, ch);
  net.begin_round(1);

  // All sends share one tag so they land in one mailbox deque; replay the
  // plan's pure reorder decisions to predict the exact delivery order.
  const std::size_t kMsgs = 16;
  std::deque<float> expected;
  const auto& plan = net.channel();  // seed-folded effective plan
  for (std::size_t k = 0; k < kMsgs; ++k) {
    ASSERT_TRUE(net.send(0, 1, "r", {static_cast<float>(k)}));
    if (plan.reorder(0, 1, k)) {
      expected.push_front(static_cast<float>(k));
    } else {
      expected.push_back(static_cast<float>(k));
    }
  }
  std::vector<float> order;
  while (auto got = net.receive(1, 0, "r")) order.push_back((*got)[0]);
  ASSERT_EQ(order.size(), kMsgs);
  EXPECT_EQ(order, std::vector<float>(expected.begin(), expected.end()));
  EXPECT_GT(net.reorders(), 0u);
  EXPECT_NE(order.front(), 0.0f);  // at least one jump actually happened

  // Deterministic: an identical network replays the identical order.
  auto net2 = make_net(2, ch);
  net2.begin_round(1);
  for (std::size_t k = 0; k < kMsgs; ++k) {
    ASSERT_TRUE(net2.send(0, 1, "r", {static_cast<float>(k)}));
  }
  std::vector<float> order2;
  while (auto got = net2.receive(1, 0, "r")) order2.push_back((*got)[0]);
  EXPECT_EQ(order, order2);
}

TEST(TransportTest, BackoffDelaysLateRetransmissions) {
  // Find a message whose first two attempts are corrupted but whose third is
  // clean: attempt 2 carries backoff_for(2) = 1 round of delay, so the
  // payload must mature via begin_round instead of arriving immediately.
  ChannelPlan ch;
  ch.corrupt_prob = 0.6;
  ch.max_retries = 8;
  ch.seed = 505;
  auto net = make_net(2, ch);
  const auto& plan = net.channel();
  std::uint64_t target = static_cast<std::uint64_t>(-1);
  for (std::uint64_t k = 0; k < 512; ++k) {
    if (plan.corrupt(0, 1, k, 0) && plan.corrupt(0, 1, k, 1) && !plan.corrupt(0, 1, k, 2)) {
      target = k;
      break;
    }
  }
  ASSERT_NE(target, static_cast<std::uint64_t>(-1)) << "no suitable edge index in 512 tries";

  net.begin_round(1);
  for (std::uint64_t k = 0; k <= target; ++k) {
    net.send(0, 1, "b@" + std::to_string(k), payload_of(9.0f));
  }
  const std::string tag = "b@" + std::to_string(target);
  EXPECT_FALSE(net.has_message(1, 0, tag));  // in flight, not lost
  EXPECT_GE(net.in_flight(), 1u);
  bool matured = false;
  for (std::size_t t = 2; t <= 3 && !matured; ++t) {
    for (const auto& late : net.begin_round(t)) {
      if (late.tag == tag) {
        EXPECT_EQ(late.payload, payload_of(9.0f));
        matured = true;
      }
    }
  }
  EXPECT_TRUE(matured);
}

// ---------------------------------------------------------------------------
// Crash / recovery end-to-end
// ---------------------------------------------------------------------------

TEST(RecoveryTest, CrashedRunStaysFiniteAndIsBitIdentical) {
  auto cfg = tiny_cfg();
  cfg.crash.crash_prob = 0.15;
  cfg.crash.snapshot_every = 2;
  const auto a = core::run_experiment(cfg);
  EXPECT_GT(a.crashes, 0u) << "plan never fired; loosen the knobs";
  EXPECT_EQ(a.crashes, a.resyncs);  // ring: every agent has online neighbors here
  EXPECT_TRUE(std::isfinite(a.final_loss));

  const auto b = core::run_experiment(cfg);
  expect_same_series(a.series, b.series, "rerun");

  auto cfg4 = cfg;
  cfg4.threads = 4;
  const auto c = core::run_experiment(cfg4);
  expect_same_series(a.series, c.series, "threads 1 vs 4");
}

TEST(RecoveryTest, SnapshotFilesArePersistedAndLoadable) {
  const std::string dir = "/tmp/pdsl_recovery_snaps";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto cfg = tiny_cfg();
  cfg.crash.crash_prob = 0.15;
  cfg.crash.snapshot_every = 2;
  cfg.recovery_dir = dir;
  const auto res = core::run_experiment(cfg);
  EXPECT_GT(res.crashes, 0u);
  for (std::size_t i = 0; i < cfg.agents; ++i) {
    const std::string path = dir + "/agent_" + std::to_string(i) + ".snap";
    io::ByteBuffer body;
    ASSERT_NO_THROW(body = io::load_blob(path, recovery::kSnapshotMagic, "test"))
        << path;
    io::ByteReader r(body, "snap-test");
    const auto round = r.read_u64("round");
    EXPECT_GT(round, 0u);
    const auto model = r.read_floats("model");
    EXPECT_EQ(model.size(), res.model_dim);
    for (float x : model) EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(RecoveryTest, ChaosPlusRecoveryGate) {
  // The ISSUE acceptance gate: 10% corruption + dup/reorder + 10% crashes +
  // 5% drops simultaneously; the run must stay finite, keep learning, and be
  // bit-identical across reruns and thread widths.
  auto cfg = tiny_cfg();
  cfg.rounds = 8;
  cfg.channel.corrupt_prob = 0.10;
  cfg.channel.duplicate_prob = 0.05;
  cfg.channel.reorder_prob = 0.05;
  cfg.crash.crash_prob = 0.10;
  cfg.crash.snapshot_every = 3;
  cfg.faults.drop_prob = 0.05;
  const auto a = core::run_experiment(cfg);
  EXPECT_TRUE(std::isfinite(a.final_loss));
  // "Still learning" under chaos: the loss trajectory must head down.
  EXPECT_LT(a.series.back().avg_loss, a.series.front().avg_loss);
  EXPECT_GT(a.corruptions_detected, 0u);
  EXPECT_GT(a.retransmits, 0u);
  EXPECT_GT(a.duplicates_dropped, 0u);
  EXPECT_GT(a.crashes, 0u);

  const auto b = core::run_experiment(cfg);
  expect_same_series(a.series, b.series, "chaos rerun");
  auto cfg4 = cfg;
  cfg4.threads = 4;
  const auto c = core::run_experiment(cfg4);
  expect_same_series(a.series, c.series, "chaos threads 1 vs 4");
}

// ---------------------------------------------------------------------------
// Kill-and-resume
// ---------------------------------------------------------------------------

TEST(ResumeTest, KillAndResumeIsBitIdenticalToTheUninterruptedRun) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto base = tiny_cfg();
    base.rounds = 8;
    base.threads = threads;
    const auto uninterrupted = core::run_experiment(base);

    const std::string ck = "/tmp/pdsl_resume_t" + std::to_string(threads) + ".bin";
    std::remove(ck.c_str());
    auto first = base;
    first.checkpoint_every = 3;
    first.checkpoint_path = ck;
    const auto full = core::run_experiment(first);
    // The checkpointed run itself matches (checkpointing is observation-free).
    expect_same_series(uninterrupted.series, full.series, "checkpointed run");

    auto second = base;
    second.resume_from = ck;  // latest cursor on disk: round 6 of 8
    const auto resumed = core::run_experiment(second);
    EXPECT_EQ(resumed.resumed_from_round, 6u);
    expect_same_series(uninterrupted.series, resumed.series, "resumed run");
    EXPECT_EQ(uninterrupted.final_accuracy, resumed.final_accuracy);
    ASSERT_EQ(uninterrupted.average_model.size(), resumed.average_model.size());
    for (std::size_t i = 0; i < resumed.average_model.size(); ++i) {
      EXPECT_EQ(uninterrupted.average_model[i], resumed.average_model[i]) << i;
    }
  }
}

TEST(ResumeTest, ResumeRefusesAMismatchedConfig) {
  const std::string ck = "/tmp/pdsl_resume_mismatch.bin";
  std::remove(ck.c_str());
  auto cfg = tiny_cfg();
  cfg.checkpoint_every = 3;
  cfg.checkpoint_path = ck;
  (void)core::run_experiment(cfg);

  auto other = tiny_cfg();
  other.resume_from = ck;
  other.hp.gamma = 0.07;  // different trajectory -> different identity hash
  EXPECT_THROW(core::run_experiment(other), std::runtime_error);

  // Volatile knobs are scrubbed from the identity: changing threads resumes.
  auto same = tiny_cfg();
  same.resume_from = ck;
  same.threads = 4;
  EXPECT_NO_THROW(core::run_experiment(same));
}

TEST(ResumeTest, ResumeCursorPastTheRequestedRoundsIsRejected) {
  const std::string ck = "/tmp/pdsl_resume_past.bin";
  std::remove(ck.c_str());
  auto cfg = tiny_cfg();
  cfg.checkpoint_every = 3;  // last cursor on disk: round 3 of 6... then 6? no:
  cfg.checkpoint_path = ck;  // fires at 3 only (never after the final round)
  (void)core::run_experiment(cfg);

  auto shorter = tiny_cfg();
  shorter.rounds = 3;  // cursor == rounds: nothing left to run
  shorter.resume_from = ck;
  EXPECT_THROW(core::run_experiment(shorter), std::exception);
}

TEST(ResumeTest, RunStateRoundTripsAndDetectsDamage) {
  const std::string path = "/tmp/pdsl_runstate_unit.bin";
  recovery::RunState st;
  st.config_hash = 0xDEADBEEFCAFEF00DULL;
  st.resume.completed_rounds = 7;
  st.resume.last_acc = 0.625;
  st.resume.accountant_rdp = {0.5, 1.25, 2.0};
  st.resume.accountant_invocations = 35;
  RoundMetrics m;
  m.round = 7;
  m.avg_loss = 1.5;
  m.retransmits = 3;
  m.crashes = 1;
  st.resume.prior_series = {m};
  io::append_floats(st.algo_state, {1.0f, 2.0f, 3.0f});
  recovery::save_run_state(path, st);

  const auto back = recovery::load_run_state(path, st.config_hash);
  EXPECT_EQ(back.config_hash, st.config_hash);
  EXPECT_EQ(back.resume.completed_rounds, 7u);
  EXPECT_EQ(back.resume.last_acc, 0.625);
  EXPECT_EQ(back.resume.accountant_rdp, st.resume.accountant_rdp);
  EXPECT_EQ(back.resume.accountant_invocations, 35u);
  ASSERT_EQ(back.resume.prior_series.size(), 1u);
  EXPECT_EQ(back.resume.prior_series[0].avg_loss, 1.5);
  EXPECT_EQ(back.resume.prior_series[0].retransmits, 3u);
  EXPECT_EQ(back.resume.prior_series[0].crashes, 1u);
  EXPECT_EQ(back.algo_state, st.algo_state);

  // Wrong identity hash: refused loudly.
  EXPECT_THROW(recovery::load_run_state(path, 0x1234), std::runtime_error);
  // expected 0 = skip the check (the CLI resolves the hash itself).
  EXPECT_NO_THROW(recovery::load_run_state(path, 0));

  // Truncation and single-byte corruption are both caught by the blob frame.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(recovery::load_run_state(path, 0), std::runtime_error);
  {
    bytes[bytes.size() - 9] ^= 0x40;  // flip a bit inside the body
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(recovery::load_run_state(path, 0), std::runtime_error);
}
