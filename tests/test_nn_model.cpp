// Model-level behaviour: flat parameter views, cloning, the loss head, and
// end-to-end learning on a separable toy problem.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "nn/activations.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"

using namespace pdsl;
using namespace pdsl::nn;

namespace {
Model tiny_mlp(Rng& rng) {
  Model m;
  m.emplace<Linear>(4, 8);
  m.emplace<ReLU>();
  m.emplace<Linear>(8, 3);
  m.init(rng);
  return m;
}
}  // namespace

TEST(Model, FlatParamsRoundTrip) {
  Rng rng(1);
  Model m = tiny_mlp(rng);
  auto flat = m.flat_params();
  EXPECT_EQ(flat.size(), m.num_params());
  EXPECT_EQ(flat.size(), 4u * 8 + 8 + 8 * 3 + 3);
  for (auto& v : flat) v += 0.5f;
  m.set_flat_params(flat);
  EXPECT_EQ(m.flat_params(), flat);
  flat.pop_back();
  EXPECT_THROW(m.set_flat_params(flat), std::invalid_argument);
}

TEST(Model, CopyIsDeep) {
  Rng rng(2);
  Model a = tiny_mlp(rng);
  Model b = a;
  auto flat = a.flat_params();
  flat[0] += 1.0f;
  a.set_flat_params(flat);
  EXPECT_NE(a.flat_params()[0], b.flat_params()[0]);
}

TEST(Model, ZeroGradClearsAccumulation) {
  Rng rng(3);
  Model m = tiny_mlp(rng);
  Tensor x(Shape{2, 4}, 0.5f);
  m.loss_and_backward(x, {0, 1});
  const auto g1 = m.flat_grad();
  m.loss_and_backward(x, {0, 1});  // zero_grad is internal to loss_and_backward
  const auto g2 = m.flat_grad();
  for (std::size_t i = 0; i < g1.size(); ++i) EXPECT_FLOAT_EQ(g1[i], g2[i]);
}

TEST(Model, LossDecreasesUnderSgd) {
  Rng rng(4);
  Model m = tiny_mlp(rng);
  const auto ds = data::make_gaussian_mixture(300, 3, 4, 2.0, 0.5, 11);
  const Tensor x = ds.all_features().reshaped(Shape{ds.size(), 4});
  const auto y = ds.labels();

  const double initial = m.loss(x, y);
  for (int step = 0; step < 60; ++step) {
    m.loss_and_backward(x, y);
    auto params = m.flat_params();
    const auto grad = m.flat_grad();
    for (std::size_t i = 0; i < params.size(); ++i) params[i] -= 0.5f * grad[i];
    m.set_flat_params(params);
  }
  const double trained = m.loss(x, y);
  EXPECT_LT(trained, initial * 0.5);
  EXPECT_GT(m.accuracy(x, y), 0.8);
}

TEST(Model, PerSampleCorrectMatchesAccuracy) {
  Rng rng(5);
  Model m = tiny_mlp(rng);
  Tensor x(Shape{10, 4});
  rng.fill_normal(x.vec(), 0.0, 1.0);
  std::vector<int> y(10, 1);
  const auto correct = m.per_sample_correct(x, y);
  double frac = 0.0;
  for (bool c : correct) frac += c ? 1.0 : 0.0;
  frac /= 10.0;
  EXPECT_DOUBLE_EQ(frac, m.accuracy(x, y));
}

TEST(Model, LossRejectsBadLabels) {
  Rng rng(6);
  Model m = tiny_mlp(rng);
  Tensor x(Shape{2, 4}, 0.1f);
  EXPECT_THROW(m.loss(x, {0, 3}), std::out_of_range);   // 3 classes: labels 0..2
  EXPECT_THROW(m.loss(x, {0}), std::invalid_argument);  // count mismatch
}

TEST(ModelZoo, MnistCnnShapesAndForward) {
  Rng rng(7);
  Model m = make_mnist_cnn(28, 1, 10);
  m.init(rng);
  Tensor x(Shape{2, 1, 28, 28}, 0.1f);
  const Tensor out = m.forward(x);
  EXPECT_EQ(out.shape(), (Shape{2, 10}));
}

TEST(ModelZoo, MnistCnnReducedScale) {
  Rng rng(8);
  Model m = make_mnist_cnn(14, 1, 10);
  m.init(rng);
  Tensor x(Shape{3, 1, 14, 14}, 0.1f);
  EXPECT_EQ(m.forward(x).shape(), (Shape{3, 10}));
}

TEST(ModelZoo, CifarCnnShapes) {
  Rng rng(9);
  Model m = make_cifar_cnn(32, 3, 10);
  m.init(rng);
  Tensor x(Shape{2, 3, 32, 32}, 0.1f);
  EXPECT_EQ(m.forward(x).shape(), (Shape{2, 10}));
}

TEST(ModelZoo, CifarCnnReducedScale) {
  Rng rng(10);
  Model m = make_cifar_cnn(16, 3, 10);
  m.init(rng);
  Tensor x(Shape{2, 3, 16, 16}, 0.1f);
  EXPECT_EQ(m.forward(x).shape(), (Shape{2, 10}));
}

TEST(LayerNorm, NormalizesRows) {
  nn::LayerNorm ln(4);
  Rng rng(20);
  ln.init(rng);
  Tensor x(Shape{3, 4}, {1, 2, 3, 4, -10, 0, 10, 20, 5, 5, 5, 6});
  const Tensor y = ln.forward(x);
  for (std::size_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::size_t c = 0; c < 4; ++c) mean += y.at2(r, c);
    mean /= 4.0;
    for (std::size_t c = 0; c < 4; ++c) var += (y.at2(r, c) - mean) * (y.at2(r, c) - mean);
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 2e-2);
  }
  EXPECT_THROW(nn::LayerNorm(0), std::invalid_argument);
}

TEST(ModelZoo, FactoryDispatchAndErrors) {
  Rng rng(11);
  Model mlp = make_model("mlp", 8, 1, 10, 16);
  mlp.init(rng);
  Tensor x(Shape{1, 1, 8, 8}, 0.2f);
  EXPECT_EQ(mlp.forward(x).shape(), (Shape{1, 10}));

  Model logistic = make_model("logistic", 8, 1, 10);
  logistic.init(rng);
  EXPECT_EQ(logistic.forward(x).shape(), (Shape{1, 10}));
  EXPECT_EQ(logistic.num_params(), 64u * 10 + 10);

  EXPECT_THROW(make_model("vit", 8, 1, 10), std::invalid_argument);
}
