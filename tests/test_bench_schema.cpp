// S-BENCH360 envelope contract: every BENCH_*.json checked in at the repo
// root must parse and follow the schema-v1 envelope emitted by
// bench/bench_util (and merged by tools/run_benchmarks.py). This keeps the
// checked-in artifacts honest — a bench that drifts from the schema breaks
// here before the python driver ever sees it.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/json.hpp"

using namespace pdsl;

namespace {

std::vector<std::filesystem::path> checked_in_envelopes() {
  std::vector<std::filesystem::path> out;
  const std::filesystem::path root(PDSL_SOURCE_DIR);
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        entry.path().extension() == ".json") {
      out.push_back(entry.path());
    }
  }
  return out;
}

void check_metric(const json::Value& m, const std::string& where) {
  ASSERT_TRUE(m.is_object()) << where;
  ASSERT_TRUE(m.contains("unit") && m.at("unit").is_string()) << where;
  for (const std::string key : {"median", "min", "max"}) {
    ASSERT_TRUE(m.contains(key) && m.at(key).is_number()) << where << "." << key;
  }
  ASSERT_TRUE(m.contains("samples") && m.at("samples").is_array()) << where;
  const auto& samples = m.at("samples").as_array();
  ASSERT_FALSE(samples.empty()) << where << ": empty samples";
  double lo = samples.front().as_number();
  double hi = lo;
  for (const auto& s : samples) {
    ASSERT_TRUE(s.is_number()) << where << ": non-numeric sample";
    lo = std::min(lo, s.as_number());
    hi = std::max(hi, s.as_number());
  }
  EXPECT_DOUBLE_EQ(m.at("min").as_number(), lo) << where;
  EXPECT_DOUBLE_EQ(m.at("max").as_number(), hi) << where;
  EXPECT_GE(m.at("median").as_number(), lo) << where;
  EXPECT_LE(m.at("median").as_number(), hi) << where;
}

}  // namespace

TEST(BenchSchema, RepoRootHasEnvelopes) {
  // The quick subset (threads, kernels, byzantine) is always checked in.
  std::set<std::string> names;
  for (const auto& p : checked_in_envelopes()) names.insert(p.filename().string());
  EXPECT_TRUE(names.count("BENCH_threads.json"));
  EXPECT_TRUE(names.count("BENCH_kernels.json"));
  EXPECT_TRUE(names.count("BENCH_byzantine.json"));
}

TEST(BenchSchema, EveryCheckedInEnvelopeIsSchemaV1) {
  const std::set<std::string> kinds = {"figure", "table",  "ablation",   "scaling",
                                       "micro",  "attack", "calibration"};
  for (const auto& path : checked_in_envelopes()) {
    SCOPED_TRACE(path.filename().string());
    json::Value doc;
    ASSERT_NO_THROW(doc = json::parse_file(path.string()));
    ASSERT_TRUE(doc.is_object());

    ASSERT_TRUE(doc.contains("schema_version"));
    EXPECT_EQ(doc.at("schema_version").as_int(), 1);
    ASSERT_TRUE(doc.contains("bench") && doc.at("bench").is_string());
    ASSERT_TRUE(doc.contains("kind") && doc.at("kind").is_string());
    EXPECT_TRUE(kinds.count(doc.at("kind").as_string()))
        << "unknown kind " << doc.at("kind").as_string();
    ASSERT_TRUE(doc.contains("git_rev") && doc.at("git_rev").is_string());
    EXPECT_FALSE(doc.at("git_rev").as_string().empty());

    ASSERT_TRUE(doc.contains("build") && doc.at("build").is_object());
    const auto& build = doc.at("build");
    EXPECT_TRUE(build.contains("compiler") && build.at("compiler").is_string());
    EXPECT_TRUE(build.contains("compiler_version") &&
                build.at("compiler_version").is_string());
    EXPECT_TRUE(build.contains("build_type") && build.at("build_type").is_string());
    EXPECT_TRUE(build.contains("pdsl_native") && build.at("pdsl_native").is_bool());

    ASSERT_TRUE(doc.contains("host") && doc.at("host").is_object());
    EXPECT_TRUE(doc.at("host").contains("hardware_concurrency"));
    EXPECT_GE(doc.at("host").at("hardware_concurrency").as_int(), 1);

    ASSERT_TRUE(doc.contains("repeats") && doc.at("repeats").is_number());
    EXPECT_GE(doc.at("repeats").as_int(), 1);

    ASSERT_TRUE(doc.contains("config") && doc.at("config").is_object());
    ASSERT_TRUE(doc.contains("faults") && doc.at("faults").is_object());
    ASSERT_TRUE(doc.contains("adversary") && doc.at("adversary").is_object());
    ASSERT_TRUE(doc.contains("phases") && doc.at("phases").is_object());
    ASSERT_TRUE(doc.contains("runs") && doc.at("runs").is_array());

    ASSERT_TRUE(doc.contains("metrics") && doc.at("metrics").is_object());
    const auto& metrics = doc.at("metrics").as_object();
    EXPECT_FALSE(metrics.empty());
    for (const auto& [name, m] : metrics) check_metric(m, "metrics." + name);

    // Driver-merged envelopes concatenate one process worth of samples per
    // repeat, so each metric's sample count is a multiple of the repeat
    // count (a sweep bench may sample the same metric several times per
    // process, e.g. one per attacker fraction).
    const auto repeats = doc.at("repeats").as_int();
    for (const auto& [name, m] : metrics) {
      const auto n = static_cast<std::int64_t>(m.at("samples").as_array().size());
      EXPECT_EQ(n % repeats, 0) << "metrics." << name << ": " << n
                                << " samples not a multiple of repeats=" << repeats;
    }

    if (doc.contains("acceptance")) {
      ASSERT_TRUE(doc.at("acceptance").is_object());
      EXPECT_TRUE(doc.at("acceptance").contains("passed") &&
                  doc.at("acceptance").at("passed").is_bool());
    }
  }
}
