// Dataset, synthetic generators, Dirichlet partitioner and samplers.

#include <gtest/gtest.h>

#include <set>

#include "data/partition.hpp"
#include "data/sampler.hpp"
#include "data/synthetic.hpp"

using namespace pdsl;
using namespace pdsl::data;

TEST(Dataset, BasicAccessors) {
  Dataset ds(Shape{2, 1, 1}, {1, 2, 3, 4, 5, 6}, {0, 1, 2});
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.sample_numel(), 2u);
  EXPECT_EQ(ds.num_classes(), 3u);
  EXPECT_FLOAT_EQ(ds.sample(1)[0], 3.0f);
  EXPECT_THROW(ds.sample(3), std::out_of_range);
}

TEST(Dataset, BatchMaterialization) {
  Dataset ds(Shape{2, 1, 1}, {1, 2, 3, 4, 5, 6}, {0, 1, 0});
  const Tensor b = ds.batch_features({2, 0});
  EXPECT_EQ(b.shape(), (Shape{2, 2, 1, 1}));
  EXPECT_FLOAT_EQ(b[0], 5.0f);
  EXPECT_FLOAT_EQ(b[2], 1.0f);
  EXPECT_EQ(ds.batch_labels({2, 0}), (std::vector<int>{0, 0}));
}

TEST(Dataset, SubsetAndHistogram) {
  Dataset ds(Shape{1, 1, 1}, {0, 1, 2, 3}, {0, 1, 1, 1});
  const Dataset sub = ds.subset({1, 3});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), 1);
  const auto hist = ds.class_histogram();
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 3u);
}

TEST(Dataset, SplitOffIsAPartition) {
  const Dataset ds = make_gaussian_mixture(100, 4, 3, 1.0, 0.5, 1);
  Rng rng(2);
  auto [rest, held] = split_off(ds, 30, rng);
  EXPECT_EQ(rest.size(), 70u);
  EXPECT_EQ(held.size(), 30u);
  EXPECT_THROW(split_off(ds, 101, rng), std::invalid_argument);
}

TEST(Synthetic, ImagesHaveRequestedShapeAndLabels) {
  SyntheticSpec spec;
  spec.num_samples = 120;
  spec.classes = 10;
  spec.image = 8;
  spec.channels = 1;
  const Dataset ds = make_synthetic_images(spec);
  EXPECT_EQ(ds.size(), 120u);
  EXPECT_EQ(ds.sample_shape(), (Shape{1, 8, 8}));
  EXPECT_EQ(ds.num_classes(), 10u);
}

TEST(Synthetic, DeterministicInSeed) {
  const auto a = make_synthetic_images(mnist_like_spec(50, 8, 3));
  const auto b = make_synthetic_images(mnist_like_spec(50, 8, 3));
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_FLOAT_EQ(a.sample(i)[0], b.sample(i)[0]);
  }
}

TEST(Synthetic, ClassesAreSeparable) {
  // Same-class samples must be closer than cross-class samples on average,
  // otherwise nothing downstream can learn.
  const auto ds = make_synthetic_images(mnist_like_spec(200, 10, 5));
  double intra = 0.0, inter = 0.0;
  std::size_t n_intra = 0, n_inter = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t j = i + 1; j < 60; ++j) {
      double d2 = 0.0;
      for (std::size_t k = 0; k < ds.sample_numel(); ++k) {
        const double diff = ds.sample(i)[k] - ds.sample(j)[k];
        d2 += diff * diff;
      }
      if (ds.label(i) == ds.label(j)) {
        intra += d2;
        ++n_intra;
      } else {
        inter += d2;
        ++n_inter;
      }
    }
  }
  ASSERT_GT(n_intra, 0u);
  ASSERT_GT(n_inter, 0u);
  EXPECT_LT(intra / n_intra, 0.8 * inter / n_inter);
}

TEST(Synthetic, CifarLikeIsThreeChannel) {
  const auto ds = make_synthetic_images(cifar_like_spec(20, 8, 1));
  EXPECT_EQ(ds.sample_shape(), (Shape{3, 8, 8}));
}

TEST(Partition, IidCoversAllSamplesOnce) {
  const auto ds = make_gaussian_mixture(101, 5, 2, 1.0, 0.5, 3);
  Rng rng(4);
  const auto parts = iid_partition(ds, 4, rng);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    seen.insert(p.begin(), p.end());
  }
  EXPECT_EQ(total, 101u);
  EXPECT_EQ(seen.size(), 101u);
}

TEST(Partition, DirichletIsAPartition) {
  const auto ds = make_synthetic_images(mnist_like_spec(400, 6, 5));
  Rng rng(5);
  PartitionOptions opts;
  opts.mu = 0.25;
  const auto parts = dirichlet_partition(ds, 8, opts, rng);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), opts.min_per_agent);
    total += p.size();
    seen.insert(p.begin(), p.end());
  }
  EXPECT_EQ(total, 400u);
  EXPECT_EQ(seen.size(), 400u);
}

class PartitionHeterogeneity : public ::testing::TestWithParam<double> {};

TEST_P(PartitionHeterogeneity, SmallerMuMoreHeterogeneous) {
  const double mu = GetParam();
  const auto ds = make_synthetic_images(mnist_like_spec(600, 6, 6));
  Rng rng(6);
  PartitionOptions opts;
  opts.mu = mu;
  const auto parts = dirichlet_partition(ds, 6, opts, rng);
  const auto dists = label_distributions(ds, parts, ds.num_classes());
  const double h = heterogeneity_index(dists);
  // All Dirichlet splits are more heterogeneous than IID...
  Rng rng2(7);
  const auto iid = iid_partition(ds, 6, rng2);
  const double h_iid = heterogeneity_index(label_distributions(ds, iid, ds.num_classes()));
  EXPECT_GT(h, h_iid);
  // ...and strongly-skewed ones (mu <= 0.25) are very heterogeneous.
  if (mu <= 0.25) EXPECT_GT(h, 0.4);
}

INSTANTIATE_TEST_SUITE_P(MuSweep, PartitionHeterogeneity,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 1.0));

TEST(Partition, HeterogeneityMonotoneInMuOnAverage) {
  const auto ds = make_synthetic_images(mnist_like_spec(600, 6, 8));
  auto h_for = [&](double mu, std::uint64_t seed) {
    Rng rng(seed);
    PartitionOptions opts;
    opts.mu = mu;
    const auto parts = dirichlet_partition(ds, 6, opts, rng);
    return heterogeneity_index(label_distributions(ds, parts, ds.num_classes()));
  };
  double low = 0.0, high = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    low += h_for(0.05, 10 + s);
    high += h_for(5.0, 10 + s);
  }
  EXPECT_GT(low, high);
}

TEST(Partition, ShardsArePartitionAndPathological) {
  const auto ds = make_synthetic_images(mnist_like_spec(500, 6, 9));
  Rng rng(19);
  const auto parts = shard_partition(ds, 5, 2, rng);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  std::size_t max_labels = 0;
  for (const auto& p : parts) {
    total += p.size();
    seen.insert(p.begin(), p.end());
    std::set<int> labels;
    for (std::size_t i : p) labels.insert(ds.label(i));
    max_labels = std::max(max_labels, labels.size());
  }
  EXPECT_EQ(total, 500u);
  EXPECT_EQ(seen.size(), 500u);
  // 2 shards per agent: at most ~4 labels visible (shard boundaries can
  // straddle two labels).
  EXPECT_LE(max_labels, 4u);

  // Pathological split is more heterogeneous than Dirichlet(0.5).
  const auto shard_h = heterogeneity_index(label_distributions(ds, parts, ds.num_classes()));
  Rng rng2(20);
  PartitionOptions opts;
  opts.mu = 0.5;
  const auto dir = dirichlet_partition(ds, 5, opts, rng2);
  const auto dir_h = heterogeneity_index(label_distributions(ds, dir, ds.num_classes()));
  EXPECT_GT(shard_h, dir_h);
}

TEST(Partition, ShardValidation) {
  const auto ds = make_gaussian_mixture(10, 2, 2, 1.0, 0.5, 21);
  Rng rng(22);
  EXPECT_THROW(shard_partition(ds, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(shard_partition(ds, 6, 2, rng), std::invalid_argument);
}

TEST(Partition, RejectsDegenerateInputs) {
  const auto ds = make_gaussian_mixture(10, 2, 2, 1.0, 0.5, 9);
  Rng rng(9);
  PartitionOptions opts;
  EXPECT_THROW(dirichlet_partition(ds, 0, opts, rng), std::invalid_argument);
  EXPECT_THROW(dirichlet_partition(ds, 10, opts, rng), std::invalid_argument);
}

TEST(Sampler, WithReplacementDrawsFromOwnShardOnly) {
  const auto ds = make_gaussian_mixture(50, 5, 2, 1.0, 0.5, 10);
  std::vector<std::size_t> shard = {3, 7, 11};
  BatchSampler sampler(ds, shard, 8, Rng(11));
  for (int rep = 0; rep < 5; ++rep) {
    auto [x, y] = sampler.sample();
    EXPECT_EQ(x.dim(0), 8u);
    for (int label : y) {
      bool found = false;
      for (std::size_t idx : shard) found |= (ds.label(idx) == label);
      EXPECT_TRUE(found);
    }
  }
}

TEST(Sampler, EpochBatchesCycleThroughShard) {
  const auto ds = make_gaussian_mixture(40, 4, 2, 1.0, 0.5, 12);
  std::vector<std::size_t> shard;
  for (std::size_t i = 0; i < 12; ++i) shard.push_back(i);
  BatchSampler sampler(ds, shard, 4, Rng(13));
  // 3 batches = 1 epoch: all 12 shard samples appear exactly once.
  std::multiset<int> labels_seen;
  for (int b = 0; b < 3; ++b) {
    auto [x, y] = sampler.next_epoch_batch();
    labels_seen.insert(y.begin(), y.end());
  }
  std::multiset<int> expected;
  for (std::size_t i : shard) expected.insert(ds.label(i));
  EXPECT_EQ(labels_seen, expected);
}

TEST(Sampler, RejectsEmptyShard) {
  const auto ds = make_gaussian_mixture(10, 2, 2, 1.0, 0.5, 14);
  EXPECT_THROW(BatchSampler(ds, {}, 4, Rng(1)), std::invalid_argument);
}
