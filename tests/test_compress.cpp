// Communication compression: TopK / quantization semantics, wire byte
// accounting, factory parsing, and the Network channel integration.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/vec_math.hpp"
#include "compress/compressor.hpp"
#include "sim/network.hpp"

using namespace pdsl;
using namespace pdsl::compress;

TEST(TopK, KeepsLargestMagnitudes) {
  TopKCompressor c(0.5);
  const auto out = c.apply({5.0f, -0.1f, -7.0f, 0.2f});
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], -7.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(TopK, FullFractionIsIdentity) {
  TopKCompressor c(1.0);
  const std::vector<float> v = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(c.apply(v), v);
}

TEST(TopK, KeepCountAndWireBytes) {
  TopKCompressor c(0.1);
  EXPECT_EQ(c.keep_count(100), 10u);
  EXPECT_EQ(c.keep_count(5), 1u);  // at least one survives
  EXPECT_EQ(c.wire_bytes(std::vector<float>(100)), 10u * 8u);
}

TEST(TopK, PreservesEnergyOrdering) {
  // Top-k keeps at least k/n of the L2 energy (it keeps the largest coords).
  Rng rng(1);
  std::vector<float> v(200);
  rng.fill_normal(v, 0.0, 1.0);
  TopKCompressor c(0.25);
  const auto out = c.apply(v);
  EXPECT_GT(l2_norm(out), 0.25 * l2_norm(v));
  EXPECT_LE(l2_norm(out), l2_norm(v) + 1e-6);
}

TEST(TopK, RejectsBadFraction) {
  EXPECT_THROW(TopKCompressor(0.0), std::invalid_argument);
  EXPECT_THROW(TopKCompressor(1.5), std::invalid_argument);
}

TEST(Quantize, ErrorBoundedByHalfStep) {
  Rng rng(2);
  std::vector<float> v(500);
  rng.fill_normal(v, 0.0, 2.0);
  float mx = 0.0f;
  for (float x : v) mx = std::max(mx, std::abs(x));
  QuantizeCompressor c(8);
  const auto out = c.apply(v);
  const double step = mx / (127.5);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::abs(out[i] - v[i]), step / 2 + 1e-6);
  }
}

TEST(Quantize, FewerBitsMoreError) {
  Rng rng(3);
  std::vector<float> v(500);
  rng.fill_normal(v, 0.0, 1.0);
  auto err = [&](unsigned bits) {
    QuantizeCompressor c(bits);
    const auto out = c.apply(v);
    return l2_distance(out, v);
  };
  EXPECT_GT(err(2), err(4));
  EXPECT_GT(err(4), err(8));
}

TEST(Quantize, WireBytes) {
  QuantizeCompressor c4(4);
  EXPECT_EQ(c4.wire_bytes(std::vector<float>(100)), 50u + 4u);  // 4 bits each + scale
  QuantizeCompressor c8(8);
  EXPECT_EQ(c8.wire_bytes(std::vector<float>(100)), 100u + 4u);
}

TEST(Quantize, ZeroVectorUntouched) {
  QuantizeCompressor c(4);
  const std::vector<float> z(10, 0.0f);
  EXPECT_EQ(c.apply(z), z);
}

TEST(Quantize, RejectsBadBits) {
  EXPECT_THROW(QuantizeCompressor(0), std::invalid_argument);
  EXPECT_THROW(QuantizeCompressor(17), std::invalid_argument);
}

TEST(Factory, ParsesSpecs) {
  EXPECT_EQ(make_compressor("none")->name(), "identity");
  EXPECT_EQ(make_compressor("")->name(), "identity");
  EXPECT_EQ(make_compressor("quant:8")->name(), "quant:8");
  EXPECT_EQ(make_compressor("topk:0.1")->name().substr(0, 5), "topk:");
  EXPECT_THROW(make_compressor("gzip"), std::invalid_argument);
  EXPECT_THROW(make_compressor("topk"), std::invalid_argument);
}

TEST(NetworkChannel, CompressorIsAppliedAndBytesShrink) {
  const auto topo = graph::Topology::make(graph::TopologyKind::kRing, 4);
  TopKCompressor comp(0.1);
  sim::Network::Options opts;
  opts.compressor = &comp;
  sim::Network net(topo, opts);

  std::vector<float> payload(100, 1.0f);
  payload[7] = 50.0f;  // the clear winner coordinate
  net.send(0, 1, "t", payload);
  const auto got = net.receive(1, 0, "t");
  ASSERT_TRUE(got.has_value());
  EXPECT_FLOAT_EQ((*got)[7], 50.0f);
  std::size_t nonzero = 0;
  for (float v : *got) nonzero += (v != 0.0f);
  EXPECT_EQ(nonzero, 10u);
  EXPECT_EQ(net.bytes_sent(), 10u * 8u);  // wire bytes, not dense bytes
}

TEST(NetworkChannel, SelfSendsBypassCompression) {
  const auto topo = graph::Topology::make(graph::TopologyKind::kRing, 4);
  TopKCompressor comp(0.01);
  sim::Network::Options opts;
  opts.compressor = &comp;
  sim::Network net(topo, opts);
  const std::vector<float> payload(100, 1.0f);
  net.send(2, 2, "s", payload);
  EXPECT_EQ(*net.receive(2, 2, "s"), payload);
}
