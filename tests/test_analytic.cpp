// Analytic ground-truth checks: places where the implementation can be
// compared against closed-form math rather than against itself.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "dp/calibration.hpp"
#include "graph/spectral.hpp"
#include "nn/conv2d.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "tensor/ops.hpp"

using namespace pdsl;

TEST(Analytic, RingMetropolisEigenvalues) {
  // Ring with Metropolis weights: w = 1/3 on self and both neighbors, a
  // circulant matrix with eigenvalues (1 + 2 cos(2 pi k / n)) / 3.
  const std::size_t n = 8;
  const auto topo = graph::Topology::make(graph::TopologyKind::kRing, n);
  const auto w = graph::MixingMatrix::metropolis(topo);
  const auto eig = graph::symmetric_eigenvalues(w.dense());
  std::vector<double> expected;
  for (std::size_t k = 0; k < n; ++k) {
    expected.push_back(
        (1.0 + 2.0 * std::cos(2.0 * std::numbers::pi * static_cast<double>(k) /
                              static_cast<double>(n))) /
        3.0);
  }
  std::sort(expected.rbegin(), expected.rend());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(eig[i], expected[i], 1e-9);
}

TEST(Analytic, FullGraphMetropolisEigenvalues) {
  // W = (1/M) 1 1^T: eigenvalues are 1 and 0 (multiplicity M-1).
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 7);
  const auto eig = graph::symmetric_eigenvalues(graph::MixingMatrix::metropolis(topo).dense());
  EXPECT_NEAR(eig[0], 1.0, 1e-9);
  for (std::size_t i = 1; i < 7; ++i) EXPECT_NEAR(eig[i], 0.0, 1e-9);
}

TEST(Analytic, BipartiteMetropolisSpectrum) {
  // K_{h,h} with Metropolis weights: all degrees h, so w_edge = 1/(h+1) and
  // w_self = 1/(h+1). Eigenvalues: 1, (two blocks of) 1/(h+1) with
  // multiplicity 2(h-1), and -(h-1)/(h+1).
  const std::size_t h = 4;
  const auto topo = graph::Topology::make(graph::TopologyKind::kBipartite, 2 * h);
  const auto eig = graph::symmetric_eigenvalues(graph::MixingMatrix::metropolis(topo).dense());
  EXPECT_NEAR(eig.front(), 1.0, 1e-9);
  EXPECT_NEAR(eig.back(), -(static_cast<double>(h) - 1.0) / (static_cast<double>(h) + 1.0),
              1e-9);
  // The middle eigenvalues all equal 1/(h+1).
  for (std::size_t i = 1; i + 1 < eig.size(); ++i) {
    EXPECT_NEAR(eig[i], 1.0 / (static_cast<double>(h) + 1.0), 1e-9);
  }
}

TEST(Analytic, ConvolutionHandComputed) {
  // 1x1x3x3 input, 1->1 2x2 kernel, no padding.
  nn::Conv2D conv(1, 1, 2, 0);
  // Set kernel [[1,2],[3,4]], bias 0.5.
  auto params = conv.params();
  params[0]->value.vec() = {1, 2, 3, 4};
  params[1]->value.vec() = {0.5};
  Tensor x(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  // y[0,0] = 1*1+2*2+3*4+4*5 + 0.5 = 37.5
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 37.5f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 1 * 2 + 2 * 3 + 3 * 5 + 4 * 6 + 0.5f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 0), 1 * 4 + 2 * 5 + 3 * 7 + 4 * 8 + 0.5f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 1 * 5 + 2 * 6 + 3 * 8 + 4 * 9 + 0.5f);
}

TEST(Analytic, ConvolutionSamePaddingShape) {
  nn::Conv2D conv(2, 3, 3, 1);
  Tensor x(Shape{2, 2, 5, 5}, 0.1f);
  EXPECT_EQ(conv.forward(x).shape(), (Shape{2, 3, 5, 5}));
  // Kernel larger than padded input must throw.
  nn::Conv2D big(1, 1, 7, 0);
  Tensor tiny(Shape{1, 1, 3, 3}, 0.0f);
  EXPECT_THROW(big.forward(tiny), std::invalid_argument);
}

TEST(Analytic, MaxPoolRoutesGradientToArgmax) {
  nn::MaxPool2D pool(2);
  Tensor x(Shape{1, 1, 2, 2}, {1, 9, 3, 4});
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y[0], 9.0f);
  Tensor g(Shape{1, 1, 1, 1}, {5.0f});
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 5.0f);  // the argmax position
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
  EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

TEST(Analytic, SoftmaxCrossEntropyAtUniformLogits) {
  // Zero logits: loss = ln(C); gradient = (1/C - onehot)/N.
  nn::SoftmaxCrossEntropy loss;
  Tensor logits(Shape{2, 4}, 0.0f);
  const double value = loss.forward(logits, {1, 3});
  EXPECT_NEAR(value, std::log(4.0), 1e-6);
  const Tensor grad = loss.backward();
  EXPECT_NEAR(grad.at2(0, 0), 0.25 / 2.0, 1e-6);
  EXPECT_NEAR(grad.at2(0, 1), (0.25 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(grad.at2(1, 3), (0.25 - 1.0) / 2.0, 1e-6);
  // Gradient rows sum to zero (softmax simplex tangency).
  for (std::size_t r = 0; r < 2; ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < 4; ++c) row += grad.at2(r, c);
    EXPECT_NEAR(row, 0.0, 1e-7);
  }
}

TEST(Analytic, Theorem1ClosedFormOnRing) {
  // Ring: every positive weight is 1/3, closed neighborhood size 3.
  // numerator = 2C (3 + 9) sqrt(2 ln(1.25/delta)); denominator =
  // phimin * eps * sqrt(3 * 9).
  const auto topo = graph::Topology::make(graph::TopologyKind::kRing, 10);
  const auto w = graph::MixingMatrix::metropolis(topo);
  dp::Theorem1Params p;
  p.epsilon = 0.2;
  p.delta = 1e-4;
  p.clip = 2.0;
  p.phi_hat_min = 0.25;
  const double expected = 2.0 * 2.0 * (3.0 + 9.0) * std::sqrt(2.0 * std::log(1.25 / 1e-4)) /
                          (0.25 * 0.2 * std::sqrt(27.0));
  EXPECT_NEAR(dp::theorem1_sigma(w, p), expected, 1e-9);
}

TEST(Analytic, JsonFuzzRoundTrip) {
  // Generate random nested documents; dump -> parse must be a fixed point.
  Rng rng(42);
  std::function<json::Value(int)> gen = [&](int depth) -> json::Value {
    const auto kind = rng.uniform_int(0, depth > 2 ? 3 : 5);
    switch (kind) {
      case 0: return json::Value(nullptr);
      case 1: return json::Value(rng.bernoulli(0.5));
      case 2: return json::Value(rng.normal(0.0, 100.0));
      case 3: return json::Value("s" + std::to_string(rng.uniform_int(0, 999)) + "\n\"x\"");
      case 4: {
        json::Array arr;
        const auto n = rng.uniform_int(0, 4);
        for (std::int64_t i = 0; i < n; ++i) arr.push_back(gen(depth + 1));
        return json::Value(std::move(arr));
      }
      default: {
        json::Object obj;
        const auto n = rng.uniform_int(0, 4);
        for (std::int64_t i = 0; i < n; ++i) {
          obj["k" + std::to_string(i)] = gen(depth + 1);
        }
        return json::Value(std::move(obj));
      }
    }
  };
  for (int rep = 0; rep < 40; ++rep) {
    const auto doc = gen(0);
    const std::string once = doc.dump();
    const std::string twice = json::parse(once).dump();
    EXPECT_EQ(once, twice);
    // Pretty form parses back to the same compact form.
    EXPECT_EQ(json::parse(doc.dump(2)).dump(), once);
  }
}

TEST(Analytic, TensorReshapeFuzz) {
  Rng rng(7);
  for (int rep = 0; rep < 30; ++rep) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto b = static_cast<std::size_t>(rng.uniform_int(1, 6));
    const auto c = static_cast<std::size_t>(rng.uniform_int(1, 6));
    Tensor t(Shape{a, b, c});
    rng.fill_normal(t.vec(), 0.0, 1.0);
    const Tensor r = t.reshaped(Shape{c * b, a}).reshaped(Shape{a, b, c});
    EXPECT_EQ(r.vec(), t.vec());
  }
}
