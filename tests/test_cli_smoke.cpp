// End-to-end smoke test for the CLI observability surface: runs the real
// pdsl_cli binary (path injected by CMake as PDSL_CLI_PATH) with --profile
// and --trace-out on a tiny config, then validates the phase table on stdout
// and the Chrome trace JSON on disk. This doubles as the ctest smoke target
// for the S-OBS subsystem.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/json.hpp"

#ifndef PDSL_CLI_PATH
#error "PDSL_CLI_PATH must be defined by the build (path to the pdsl_cli binary)"
#endif

namespace {

using pdsl::json::Value;

constexpr std::size_t kRounds = 3;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Run `pdsl_cli run <extra_flags>` on the tiny base config; returns the
/// process exit status and fills `output` with combined stdout+stderr.
int run_cli(const std::string& extra_flags, std::string* output) {
  const std::string out = temp_path("pdsl_smoke_exit.txt");
  std::ostringstream cmd;
  cmd << '"' << PDSL_CLI_PATH << '"'
      << " run --algorithm pdsl --agents 4 --rounds 1 --train 240 --image 8"
      << " --batch 8 --mc_perms 2 --valbatch 16 " << extra_flags << " > \"" << out
      << "\" 2>&1";
  const int status = std::system(cmd.str().c_str());
  *output = slurp(out);
  std::remove(out.c_str());
  return status;
}

}  // namespace

TEST(CliSmoke, ProfileAndTraceOnTinyRun) {
  const std::string trace = temp_path("pdsl_smoke_trace.json");
  const std::string metrics = temp_path("pdsl_smoke_metrics.csv");
  const std::string out = temp_path("pdsl_smoke_stdout.txt");

  std::ostringstream cmd;
  cmd << '"' << PDSL_CLI_PATH << '"'
      << " run --algorithm pdsl --agents 4 --rounds " << kRounds
      << " --train 240 --image 8 --batch 8 --mc_perms 2 --valbatch 16"
      << " --profile --trace-out \"" << trace << '"'
      << " --metrics-out \"" << metrics << '"'
      << " > \"" << out << "\" 2>&1";
  ASSERT_EQ(std::system(cmd.str().c_str()), 0) << slurp(out);

  // Phase table and counters made it to stdout.
  const std::string stdout_text = slurp(out);
  for (const char* needle :
       {"phase", "local_grad", "shapley", "gossip", "total", "shapley.coalition_evals"}) {
    EXPECT_NE(stdout_text.find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n" << stdout_text;
  }

  // Trace file is valid Chrome trace JSON with >=1 span per phase per round.
  const Value v = pdsl::json::parse_file(trace);
  const auto& events = v.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  std::map<std::string, std::size_t> per_phase;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_GE(ev.at("dur").as_number(), 0.0);
    per_phase[ev.at("name").as_string()]++;
  }
  for (const char* phase : {"local_grad", "crossgrad", "shapley", "aggregate", "gossip"}) {
    EXPECT_GE(per_phase[phase], kRounds) << "phase " << phase;
  }
  EXPECT_GE(per_phase["round"], kRounds);

  // Metrics registry dump exists and includes the key instruments.
  const std::string metrics_text = slurp(metrics);
  EXPECT_NE(metrics_text.find("shapley.coalition_evals"), std::string::npos);
  EXPECT_NE(metrics_text.find("dp.sigma"), std::string::npos);
  EXPECT_NE(metrics_text.find("net.bytes"), std::string::npos);

  std::remove(trace.c_str());
  std::remove(metrics.c_str());
  std::remove(out.c_str());
}

TEST(CliSmoke, OutOfRangeFlagsFailLoudlyWithTheFlagName) {
  // Every numeric-range rejection must exit nonzero and name the offending
  // flag so a sweep-script typo is diagnosable from the error line alone.
  const struct {
    const char* flags;
    const char* needle;
  } cases[] = {
      {"--drop-prob 1.5", "--drop-prob"},
      {"--drop-prob -0.1", "--drop-prob"},
      {"--churn 2.0", "--churn"},
      {"--staleness -1", "--staleness"},
      {"--byz-frac 1.0", "frac"},
      {"--byz-mode bogus", "bogus"},
      {"--byz-onset -3", "--byz-onset"},
      {"--agents 0", "--agents"},
      {"--robust-agg krum", "krum"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.flags);
    std::string output;
    EXPECT_NE(run_cli(c.flags, &output), 0);
    EXPECT_NE(output.find(c.needle), std::string::npos)
        << "error does not mention '" << c.needle << "':\n" << output;
  }
}

TEST(CliSmoke, ByzantineRunReportsDefenseCounters) {
  std::string output;
  ASSERT_EQ(run_cli("--byz-frac 0.25 --byz-mode sign_flip", &output), 0) << output;
  EXPECT_NE(output.find("byzantine:"), std::string::npos) << output;
  EXPECT_NE(output.find("corrupted="), std::string::npos) << output;
}

TEST(CliSmoke, RecoveryFlagsAreValidatedWithTheFlagName) {
  const struct {
    const char* flags;
    const char* needle;
  } cases[] = {
      {"--corrupt-prob 1.0", "--corrupt-prob"},
      {"--corrupt-prob -0.2", "--corrupt-prob"},
      {"--dup-prob 1.0", "--dup-prob"},
      {"--reorder-prob 2.5", "--reorder-prob"},
      {"--crash-prob 1.0", "--crash-prob"},
      {"--max-retries -1", "--max-retries"},
      {"--crash-prob 0.1 --snapshot-every 0", "snapshot_every"},
      {"--checkpoint-every 2", "--checkpoint-path"},
      {"--resume-from /tmp/definitely_missing_pdsl_runstate.bin", "cannot open"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.flags);
    std::string output;
    EXPECT_NE(run_cli(c.flags, &output), 0);
    EXPECT_NE(output.find(c.needle), std::string::npos)
        << "error does not mention '" << c.needle << "':\n" << output;
  }
}

TEST(CliSmoke, ChaosRunReportsTransportAndRecoveryCounters) {
  std::string output;
  ASSERT_EQ(run_cli("--rounds 3 --corrupt-prob 0.2 --dup-prob 0.1 --reorder-prob 0.1"
                    " --crash-prob 0.2 --snapshot-every 2",
                    &output),
            0)
      << output;
  EXPECT_NE(output.find("transport:"), std::string::npos) << output;
  EXPECT_NE(output.find("retransmits="), std::string::npos) << output;
  EXPECT_NE(output.find("recovery:"), std::string::npos) << output;
  EXPECT_NE(output.find("crashes="), std::string::npos) << output;
}

TEST(CliSmoke, CheckpointThenResumeContinuesTheRun) {
  const std::string ck = temp_path("pdsl_smoke_resume.bin");
  std::remove(ck.c_str());
  std::string output;
  ASSERT_EQ(run_cli("--rounds 4 --checkpoint-every 2 --checkpoint-path \"" + ck + "\"",
                    &output),
            0)
      << output;
  EXPECT_NE(output.find("run state checkpointed"), std::string::npos) << output;

  std::string resumed;
  ASSERT_EQ(run_cli("--rounds 4 --resume-from \"" + ck + "\"", &resumed), 0) << resumed;
  EXPECT_NE(resumed.find("resumed from round 2"), std::string::npos) << resumed;

  // A config drift (different gamma) must be refused, naming the cause.
  std::string refused;
  EXPECT_NE(run_cli("--rounds 4 --gamma 0.3 --resume-from \"" + ck + "\"", &refused), 0);
  EXPECT_NE(refused.find("different experiment configuration"), std::string::npos)
      << refused;
  std::remove(ck.c_str());
}
