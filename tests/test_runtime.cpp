// S-RT runtime: ThreadPool lifecycle, parallel_for semantics (chunking,
// barriers, exceptions, nested-call rejection) and the determinism contract —
// bit-identical experiment results at every --threads setting.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"

using namespace pdsl;
using pdsl::runtime::ThreadPool;

namespace {

/// Restore the global width so test order can't leak a pool into later tests.
struct WidthGuard {
  ~WidthGuard() { runtime::set_global_threads(1); }
};

}  // namespace

TEST(ThreadPoolTest, StartsAndStopsCleanly) {
  for (std::size_t n : {1u, 2u, 7u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
  }  // destructor joins; nothing to assert beyond "no hang / no crash"
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    // Destructor waits for in-flight tasks? No — it discards *queued* tasks.
    // Use parallel_for's barrier to flush instead.
    pool.parallel_for(0, 1, 1, [](std::size_t) {});
  }
  // All 50 either ran or were discarded at shutdown; with the barrier after
  // them (FIFO queue) they all ran first.
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t grain : {0u, 1u, 3u, 16u, 1000u}) {
    std::vector<int> hits(257, 0);
    pool.parallel_for(0, hits.size(), grain,
                      [&hits](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257) << grain;
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
  }
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, 1, [&calls](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(9, 3, 1, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ExceptionPropagatesAfterBarrier) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(0, 64, 1, [&completed](std::size_t i) {
      if (i == 13) throw std::runtime_error("boom");
      completed.fetch_add(1);
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Barrier semantics: the other 63 indices still ran to completion.
  EXPECT_EQ(completed.load(), 63);
  // The pool survives an exception and remains usable.
  std::atomic<int> after{0};
  pool.parallel_for(0, 8, 1, [&after](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelForIsRejected) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 4, 1,
                                 [&pool](std::size_t) {
                                   pool.parallel_for(0, 2, 1, [](std::size_t) {});
                                 }),
               std::logic_error);
}

TEST(RuntimeTest, ResolveThreads) {
  EXPECT_GE(runtime::resolve_threads(0), 1u);  // auto-detect, never 0
  EXPECT_EQ(runtime::resolve_threads(1), 1u);
  EXPECT_EQ(runtime::resolve_threads(6), 6u);
}

TEST(RuntimeTest, GlobalParallelForAtEveryWidth) {
  WidthGuard guard;
  for (std::size_t w : {1u, 2u, 4u}) {
    runtime::set_global_threads(w);
    EXPECT_EQ(runtime::global_threads(), w);
    std::vector<std::size_t> out(100, 0);
    runtime::parallel_for(0, out.size(), 1,
                          [&out](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(RuntimeTest, InlinePathRejectsNestingToo) {
  WidthGuard guard;
  // Width 1 runs inline, but must enforce the same contract as the pool so
  // nesting bugs surface in sequential CI runs, not only at --threads N.
  runtime::set_global_threads(1);
  EXPECT_THROW(
      runtime::parallel_for(0, 3, 1,
                            [](std::size_t) {
                              runtime::parallel_for(0, 2, 1, [](std::size_t) {});
                            }),
      std::logic_error);
  // And it recovers: the guard flag is cleared on the error path.
  std::size_t n = 0;
  runtime::parallel_for(0, 5, 1, [&n](std::size_t) { ++n; });
  EXPECT_EQ(n, 5u);
}

TEST(RuntimeTest, ObsInstrumentsAreSafeFromWorkerThreads) {
  WidthGuard guard;
  runtime::set_global_threads(4);
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("test.runtime.events").reset();
  reg.histogram("test.runtime.h", {1.0, 2.0}).reset();
  obs::TraceRecorder::global().enable(true);
  const std::size_t before = obs::TraceRecorder::global().size();
  runtime::parallel_for(0, 512, 1, [&reg](std::size_t i) {
    // Cached-handle pattern used in hot loops: magic statics are thread-safe,
    // and registry handles never move (see metrics.hpp).
    static obs::Counter& c = reg.counter("test.runtime.events");
    c.add(1);
    reg.histogram("test.runtime.h", {}).observe(static_cast<double>(i % 3));
    PDSL_SPAN("test.runtime.span", i);
  });
  obs::TraceRecorder::global().enable(false);
  EXPECT_EQ(reg.counter("test.runtime.events").value(), 512u);
  EXPECT_EQ(reg.histogram("test.runtime.h", {}).count(), 512u);
  EXPECT_EQ(obs::TraceRecorder::global().size(), before + 512);
}

namespace {

core::ExperimentConfig det_config(const std::string& algorithm) {
  core::ExperimentConfig cfg;
  cfg.algorithm = algorithm;
  cfg.dataset = "mnist_like";
  cfg.model = "logistic";
  cfg.topology = "full";
  cfg.agents = 6;
  cfg.rounds = 3;
  cfg.train_samples = 360;
  cfg.test_samples = 60;
  cfg.validation_samples = 48;
  cfg.image = 3;
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.05;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.sigma_mode = "dpsgd";  // noise on: exercises the per-agent RNG streams
  cfg.noise_scale = 0.1;
  cfg.drop_prob = 0.15;  // lossy links: exercises hash-based drop decisions
  cfg.metrics.test_subsample = 40;
  cfg.metrics.eval_every = 1;
  return cfg;
}

void expect_bit_identical(const core::ExperimentResult& a,
                          const core::ExperimentResult& b) {
  // Model parameters: exact float equality, element by element.
  ASSERT_EQ(a.average_model.size(), b.average_model.size());
  EXPECT_TRUE(a.average_model == b.average_model);
  // RoundMetrics: every deterministic field exact (times are wall-clock and
  // legitimately differ).
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t r = 0; r < a.series.size(); ++r) {
    EXPECT_EQ(a.series[r].round, b.series[r].round);
    EXPECT_EQ(a.series[r].avg_loss, b.series[r].avg_loss) << "round " << r;
    EXPECT_EQ(a.series[r].test_accuracy, b.series[r].test_accuracy) << "round " << r;
    EXPECT_EQ(a.series[r].consensus, b.series[r].consensus) << "round " << r;
    EXPECT_EQ(a.series[r].messages, b.series[r].messages) << "round " << r;
    EXPECT_EQ(a.series[r].bytes, b.series[r].bytes) << "round " << r;
  }
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
}

}  // namespace

TEST(RuntimeDeterminism, PdslBitIdenticalAcrossWidths) {
  WidthGuard guard;
  auto cfg = det_config("pdsl");
  cfg.threads = 1;
  const auto seq = core::run_experiment(cfg);
  cfg.threads = 4;
  const auto par = core::run_experiment(cfg);
  expect_bit_identical(seq, par);
}

TEST(RuntimeDeterminism, BaselineBitIdenticalAcrossWidths) {
  WidthGuard guard;
  auto cfg = det_config("dp_dpsgd");
  cfg.threads = 1;
  const auto seq = core::run_experiment(cfg);
  cfg.threads = 4;
  const auto par = core::run_experiment(cfg);
  expect_bit_identical(seq, par);
}

TEST(RuntimeDeterminism, AutoDetectWidthAlsoMatches) {
  WidthGuard guard;
  auto cfg = det_config("pdsl");
  cfg.rounds = 2;
  cfg.threads = 1;
  const auto seq = core::run_experiment(cfg);
  cfg.threads = 0;  // hardware_concurrency
  const auto par = core::run_experiment(cfg);
  expect_bit_identical(seq, par);
}
