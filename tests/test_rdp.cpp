// Rényi-DP accountant: closed-form checks, composition, and comparison with
// the classic accountant's advanced composition.

#include <gtest/gtest.h>

#include <cmath>

#include "dp/accountant.hpp"
#include "dp/mechanism.hpp"
#include "dp/rdp.hpp"

using namespace pdsl::dp;

TEST(Rdp, SingleGaussianMatchesClosedForm) {
  // One invocation at noise multiplier z: eps(delta) =
  // min_a [ a/(2z^2) + log(1/delta)/(a-1) ], minimized (continuously) at
  // a* = 1 + sqrt(2 z^2 log(1/delta)) giving 1/(2z^2) + sqrt(2 log(1/delta))/z.
  const double z = 2.0;
  const double delta = 1e-5;
  RdpAccountant acc;
  acc.add_gaussian(z);
  const double expected =
      1.0 / (2.0 * z * z) + std::sqrt(2.0 * std::log(1.0 / delta)) / z;
  // Grid over discrete orders: allow a small gap above the continuous optimum.
  EXPECT_GE(acc.epsilon(delta), expected - 1e-9);
  EXPECT_LE(acc.epsilon(delta), expected * 1.05);
}

TEST(Rdp, ComposesLinearlyInRdpSpace) {
  RdpAccountant one;
  one.add_gaussian(1.0, 1);
  RdpAccountant hundred;
  hundred.add_gaussian(1.0, 100);
  // eps grows sublinearly in invocations (sqrt-ish), but RDP itself is linear:
  EXPECT_LT(hundred.epsilon(1e-5), 100.0 * one.epsilon(1e-5));
  EXPECT_GT(hundred.epsilon(1e-5), std::sqrt(100.0) * one.epsilon(1e-5) * 0.3);
  EXPECT_EQ(hundred.num_invocations(), 100u);
}

TEST(Rdp, MoreNoiseLessEpsilon) {
  RdpAccountant low, high;
  low.add_gaussian(0.5, 10);
  high.add_gaussian(4.0, 10);
  EXPECT_GT(low.epsilon(1e-5), high.epsilon(1e-5));
}

TEST(Rdp, TighterThanAdvancedCompositionForManyRounds) {
  // The headline benefit of the moments/RDP accountant. Use a per-round
  // budget derived from the same sigma so the comparison is apples-to-apples.
  const double sensitivity = 1.0;
  const double per_round_eps = 0.1;
  const double per_round_delta = 1e-6;
  const double sigma = gaussian_sigma(sensitivity, per_round_eps, per_round_delta);
  const std::size_t rounds = 500;

  PrivacyAccountant classic;
  classic.record_rounds(per_round_eps, per_round_delta, rounds);
  RdpAccountant rdp;
  rdp.add_gaussian(sigma / sensitivity, rounds);

  const double total_delta = rounds * per_round_delta + 1e-5;
  EXPECT_LT(rdp.epsilon(total_delta), classic.advanced_epsilon(1e-5));
}

TEST(Rdp, BestOrderShrinksWithMoreRounds) {
  // With more composition, the optimal Renyi order moves toward 1.
  RdpAccountant few, many;
  few.add_gaussian(1.0, 1);
  many.add_gaussian(1.0, 10000);
  EXPECT_GT(few.best_order(1e-5), many.best_order(1e-5));
}

TEST(Rdp, Validation) {
  RdpAccountant acc;
  EXPECT_THROW(acc.add_gaussian(0.0), std::invalid_argument);
  EXPECT_THROW(acc.epsilon(0.0), std::invalid_argument);
  EXPECT_THROW(acc.epsilon(1.0), std::invalid_argument);
  EXPECT_THROW(RdpAccountant({0.5}), std::invalid_argument);
  EXPECT_THROW(RdpAccountant(std::vector<double>{}), std::invalid_argument);
}
