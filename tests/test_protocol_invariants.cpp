// Cross-cutting protocol invariants, checked over (algorithm x topology)
// sweeps: conservation of the parameter mean under pure gossip, exact message
// counts per protocol, bounded momentum, and empirical L2 sensitivity of the
// clipped gradient (the quantity Theorem 1's proof bounds by 2C).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/vec_math.hpp"
#include "core/experiment.hpp"
#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "dp/mechanism.hpp"
#include "nn/model_zoo.hpp"

using namespace pdsl;

namespace {

algos::Env make_env(const graph::Topology& topo, const graph::MixingMatrix& mixing,
                    const data::Dataset& train, const data::Dataset& validation,
                    const nn::Model& model,
                    const std::vector<std::vector<std::size_t>>& partition, double sigma) {
  algos::Env env;
  env.topo = &topo;
  env.mixing = &mixing;
  env.train = &train;
  env.validation = &validation;
  env.model_template = &model;
  env.partition = &partition;
  env.hp.gamma = 0.05;
  env.hp.alpha = 0.5;
  env.hp.clip = 1.0;
  env.hp.sigma = sigma;
  env.hp.batch = 8;
  env.hp.shapley_permutations = 3;
  env.hp.validation_batch = 16;
  env.seed = 5;
  return env;
}

}  // namespace

class AlgoTopoSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(AlgoTopoSweep, RunsAndStaysFiniteWithMessages) {
  const auto [algo, topo] = GetParam();
  core::ExperimentConfig cfg;
  cfg.algorithm = algo;
  cfg.dataset = "gaussian";
  cfg.model = "logistic";
  cfg.topology = topo;
  cfg.agents = 6;
  cfg.rounds = 4;
  cfg.train_samples = 300;
  cfg.test_samples = 60;
  cfg.validation_samples = 40;
  cfg.image = 3;
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.05;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.sigma_mode = "fixed";
  cfg.hp.sigma = 0.1;
  cfg.metrics.eval_every = 4;
  const auto res = core::run_experiment(cfg);
  EXPECT_EQ(res.series.size(), 4u);
  for (const auto& m : res.series) {
    EXPECT_TRUE(std::isfinite(m.avg_loss));
    EXPECT_TRUE(std::isfinite(m.consensus));
  }
  EXPECT_GT(res.messages, 0u);
  EXPECT_LT(res.spectral.sqrt_rho, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AlgoTopoSweep,
    ::testing::Combine(::testing::Values("pdsl", "dp_dpsgd", "muffliato", "dp_cga",
                                         "dp_netfleet"),
                       ::testing::Values("full", "bipartite", "ring", "star")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(ProtocolInvariants, PdslMessageCountPerRoundIsExact) {
  // PDSL per round on a graph with E undirected edges sends:
  //   model broadcast:        2E
  //   cross-gradient returns: 2E (minus drops; none here)
  //   u-hat mixing:           2E
  //   x-hat mixing:           2E
  Rng rng(1);
  auto pool = data::make_gaussian_mixture(260, 3, 4, 2.0, 0.5, 2);
  auto [train, validation] = data::split_off(pool, 60, rng);
  const auto topo = graph::Topology::make(graph::TopologyKind::kRing, 5);
  const auto mixing = graph::MixingMatrix::metropolis(topo);
  const nn::Model model = nn::make_logistic(4, 3);
  const auto partition = data::iid_partition(train, 5, rng);
  auto env = make_env(topo, mixing, train, validation, model, partition, 0.0);
  core::Pdsl alg(env);
  alg.run_round(1);
  EXPECT_EQ(alg.network().messages_sent(), 8u * topo.num_edges());
  alg.run_round(2);
  EXPECT_EQ(alg.network().messages_sent(), 16u * topo.num_edges());
}

TEST(ProtocolInvariants, GossipPreservesParameterMean) {
  // Eqs. 24-25: with W doubly stochastic, the average of x-hat equals the
  // average of the mixed x. We verify through PDSL with gamma tiny and no
  // noise: the parameter mean must move only by the (tiny) gradient term.
  Rng rng(3);
  auto pool = data::make_gaussian_mixture(260, 3, 4, 2.0, 0.5, 4);
  auto [train, validation] = data::split_off(pool, 60, rng);
  const auto topo = graph::Topology::make(graph::TopologyKind::kBipartite, 6);
  const auto mixing = graph::MixingMatrix::metropolis(topo);
  const nn::Model model = nn::make_logistic(4, 3);
  const auto partition = data::iid_partition(train, 6, rng);
  auto env = make_env(topo, mixing, train, validation, model, partition, 0.0);
  env.hp.gamma = 1e-8;
  core::Pdsl alg(env);
  const auto mean_before = sim::average_model(alg.models());
  alg.run_round(1);
  const auto mean_after = sim::average_model(alg.models());
  EXPECT_LT(l2_distance(mean_before, mean_after), 1e-4);
}

TEST(ProtocolInvariants, EmpiricalSensitivityOfClippedGradientIsBounded) {
  // Theorem 1 rests on: swapping one example changes the clipped mini-batch
  // gradient by at most 2C in L2. Check empirically on a real model: gradient
  // of batch B vs batch B with one replaced sample, both clipped to C.
  Rng rng(7);
  nn::Model model = nn::make_mlp(6, 10, 4);
  model.init(rng);
  const auto ds = data::make_gaussian_mixture(100, 4, 6, 2.0, 0.5, 8);
  const auto params = model.flat_params();
  const double C = 0.5;
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<std::size_t> idx(8);
    for (auto& v : idx) {
      v = static_cast<std::size_t>(rng.uniform_int(0, 99));
    }
    auto idx2 = idx;
    idx2[0] = static_cast<std::size_t>(rng.uniform_int(0, 99));  // adjacent batch

    model.set_flat_params(params);
    model.loss_and_backward(ds.batch_features(idx), ds.batch_labels(idx));
    auto g1 = model.flat_grad();
    dp::clip_l2(g1, C);
    model.loss_and_backward(ds.batch_features(idx2), ds.batch_labels(idx2));
    auto g2 = model.flat_grad();
    dp::clip_l2(g2, C);
    EXPECT_LE(l2_distance(g1, g2), 2.0 * C + 1e-6);
  }
}

TEST(ProtocolInvariants, MomentumStaysBoundedUnderClippedGradients) {
  // u_t = sum alpha^k g-bar: with ||g-bar|| <= B_g, ||u|| <= B_g/(1-alpha)
  // up to the pi-weight amplification. Empirically the models must not blow
  // up over many rounds even with adversarial noise.
  Rng rng(9);
  auto pool = data::make_gaussian_mixture(300, 3, 4, 2.0, 0.5, 10);
  auto [train, validation] = data::split_off(pool, 60, rng);
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 5);
  const auto mixing = graph::MixingMatrix::metropolis(topo);
  const nn::Model model = nn::make_logistic(4, 3);
  const auto partition = data::iid_partition(train, 5, rng);
  auto env = make_env(topo, mixing, train, validation, model, partition, 1.0);  // heavy noise
  core::Pdsl alg(env);
  for (std::size_t t = 1; t <= 30; ++t) alg.run_round(t);
  for (const auto& x : alg.models()) {
    EXPECT_LT(l2_norm(x), 1e4);
    for (float v : x) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(ProtocolInvariants, DropProbZeroMeansNoDrops) {
  core::ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "gaussian";
  cfg.model = "logistic";
  cfg.topology = "ring";
  cfg.agents = 4;
  cfg.rounds = 2;
  cfg.train_samples = 200;
  cfg.test_samples = 40;
  cfg.validation_samples = 40;
  cfg.image = 3;
  cfg.hp.batch = 8;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.sigma_mode = "none";
  cfg.metrics.eval_every = 2;
  const auto res = core::run_experiment(cfg);
  // 8 messages per edge per round on the ring (4 edges): 2 rounds.
  EXPECT_EQ(res.messages, 2u * 8u * 4u);
}
