// Checkpoint serialization: round trips, corruption detection, fleet I/O.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "io/checkpoint.hpp"
#include "io/codec.hpp"
#include "nn/model_zoo.hpp"

using namespace pdsl;
using namespace pdsl::io;

namespace {
std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  rng.fill_normal(v, 0.0, 1.0);
  return v;
}
}  // namespace

TEST(Checkpoint, SingleRoundTrip) {
  const std::string path = "/tmp/pdsl_ckpt_single.bin";
  const auto params = random_vec(1234, 1);
  save_params(path, params);
  EXPECT_EQ(load_params(path), params);
}

TEST(Checkpoint, EmptyVectorRoundTrips) {
  const std::string path = "/tmp/pdsl_ckpt_empty.bin";
  save_params(path, {});
  EXPECT_TRUE(load_params(path).empty());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(load_params("/tmp/definitely_missing_pdsl.bin"), std::runtime_error);
}

TEST(Checkpoint, BadMagicDetected) {
  const std::string path = "/tmp/pdsl_ckpt_magic.bin";
  std::ofstream(path) << "this is not a checkpoint at all, not even close";
  EXPECT_THROW(load_params(path), std::runtime_error);
}

TEST(Checkpoint, TruncationDetected) {
  const std::string path = "/tmp/pdsl_ckpt_trunc.bin";
  save_params(path, random_vec(1000, 2));
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  EXPECT_THROW(load_params(path), std::runtime_error);
}

TEST(Checkpoint, CorruptionDetectedByChecksum) {
  const std::string path = "/tmp/pdsl_ckpt_corrupt.bin";
  save_params(path, random_vec(500, 3));
  // Flip one payload byte (past the 24-byte header).
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(24 + 100);
  char byte;
  f.read(&byte, 1);
  f.seekp(24 + 100);
  byte = static_cast<char>(byte ^ 0x5A);
  f.write(&byte, 1);
  f.close();
  EXPECT_THROW(load_params(path), std::runtime_error);
}

TEST(Checkpoint, SaveIsAtomicOverAnExistingCheckpoint) {
  // The new bytes must land via tmp + rename: after a save there is no .tmp
  // sibling and the file holds exactly the new payload.
  const std::string path = "/tmp/pdsl_ckpt_atomic.bin";
  save_params(path, random_vec(100, 11));
  const auto next = random_vec(100, 12);
  save_params(path, next);
  EXPECT_EQ(load_params(path), next);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good()) << "tmp sibling left behind";
}

TEST(Checkpoint, StaleTmpLeftoverIsOverwrittenByTheNextSave) {
  // Simulate a crash mid-save: a garbage .tmp sibling sits next to a valid
  // checkpoint. The checkpoint must still load, and the next save must
  // reclaim the tmp path and still commit atomically.
  const std::string path = "/tmp/pdsl_ckpt_stale.bin";
  const auto params = random_vec(80, 13);
  save_params(path, params);
  std::ofstream(path + ".tmp") << "half-written garbage from a crashed save";
  EXPECT_EQ(load_params(path), params);
  const auto next = random_vec(80, 14);
  save_params(path, next);
  EXPECT_EQ(load_params(path), next);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

TEST(Checkpoint, FailedSaveLeavesTheOldCheckpointAndNoTmp) {
  // Unwritable destination directory: the save must throw, the previous
  // checkpoint must survive untouched, and no .tmp may be left anywhere.
  const std::string path = "/tmp/pdsl_ckpt_dir_missing/ckpt.bin";
  EXPECT_THROW(save_params(path, random_vec(10, 15)), std::runtime_error);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  const std::string good = "/tmp/pdsl_ckpt_survivor.bin";
  const auto params = random_vec(60, 16);
  save_params(good, params);
  EXPECT_THROW(save_fleet("/tmp/pdsl_ckpt_dir_missing/fleet.bin", {{1.0f}}),
               std::runtime_error);
  EXPECT_EQ(load_params(good), params);
}

TEST(Checkpoint, ShortHeaderDetected) {
  // A file shorter than even the header must fail on the truncated read, not
  // crash or return an empty model.
  const std::string path = "/tmp/pdsl_ckpt_short.bin";
  std::ofstream(path, std::ios::binary) << "PDSL";
  EXPECT_THROW(load_params(path), std::runtime_error);
  EXPECT_THROW(load_fleet(path), std::runtime_error);
}

TEST(Checkpoint, FleetRoundTrip) {
  const std::string path = "/tmp/pdsl_ckpt_fleet.bin";
  std::vector<std::vector<float>> fleet;
  for (std::uint64_t i = 0; i < 5; ++i) fleet.push_back(random_vec(321, 10 + i));
  save_fleet(path, fleet);
  EXPECT_EQ(load_fleet(path), fleet);
}

TEST(Checkpoint, FleetValidation) {
  EXPECT_THROW(save_fleet("/tmp/pdsl_ckpt_bad.bin", {}), std::invalid_argument);
  EXPECT_THROW(save_fleet("/tmp/pdsl_ckpt_bad.bin", {{1.0f}, {1.0f, 2.0f}}),
               std::invalid_argument);
}

TEST(Checkpoint, SingleAndFleetFormatsAreDistinct) {
  const std::string path = "/tmp/pdsl_ckpt_cross.bin";
  save_params(path, random_vec(10, 4));
  EXPECT_THROW(load_fleet(path), std::runtime_error);
}

TEST(Checkpoint, ModelWeightsSurviveRoundTrip) {
  Rng rng(5);
  nn::Model model = nn::make_mlp(16, 8, 4);
  model.init(rng);
  const std::string path = "/tmp/pdsl_ckpt_model.bin";
  save_params(path, model.flat_params());
  nn::Model restored = nn::make_mlp(16, 8, 4);
  restored.set_flat_params(load_params(path));
  EXPECT_EQ(restored.flat_params(), model.flat_params());
}

TEST(Checkpoint, WarmStartRestoresAlgorithmFleet) {
  // End-to-end: checkpoint a PDSL fleet, restore into a fresh instance.
  using namespace pdsl;
  Rng rng(7);
  auto pool = data::make_gaussian_mixture(300, 3, 4, 2.0, 0.5, 8);
  auto [train, validation] = data::split_off(pool, 60, rng);
  const auto topo = graph::Topology::make(graph::TopologyKind::kRing, 4);
  const auto mixing = graph::MixingMatrix::metropolis(topo);
  const nn::Model model = nn::make_logistic(4, 3);
  const auto partition = data::iid_partition(train, 4, rng);
  algos::Env env;
  env.topo = &topo;
  env.mixing = &mixing;
  env.train = &train;
  env.validation = &validation;
  env.model_template = &model;
  env.partition = &partition;
  env.hp.gamma = 0.05;
  env.hp.batch = 8;
  env.hp.shapley_permutations = 2;
  env.hp.validation_batch = 16;
  env.seed = 3;

  core::Pdsl a(env);
  for (std::size_t t = 1; t <= 3; ++t) a.run_round(t);
  const std::string path = "/tmp/pdsl_ckpt_warm.bin";
  save_fleet(path, a.models().dense());

  core::Pdsl b(env);
  b.set_models(load_fleet(path));
  EXPECT_EQ(b.models().dense(), a.models().dense());
  EXPECT_THROW(b.set_models({{1.0f}}), std::invalid_argument);
}

TEST(Checkpoint, Fnv1aIsStableAndSensitive) {
  const auto v = random_vec(64, 6);
  EXPECT_EQ(fnv1a(v), fnv1a(v));
  auto w = v;
  w[10] += 1.0f;
  EXPECT_NE(fnv1a(v), fnv1a(w));
}

// ---------------------------------------------------------------------------
// S-RECOV opaque-blob framing (run-state + per-agent snapshot files).
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint64_t kTestMagic = 0x5044534C54455354ULL;  // "PDSLTEST"

io::ByteBuffer sample_body() {
  io::ByteBuffer body;
  io::append_u64(body, 42);
  io::append_f64(body, 3.25);
  io::append_floats(body, {1.0f, -2.0f, 0.5f});
  return body;
}
}  // namespace

TEST(Blob, RoundTripsAnOpaqueBody) {
  const std::string path = "/tmp/pdsl_blob_roundtrip.bin";
  const auto body = sample_body();
  save_blob(path, kTestMagic, body, "blob-test");
  EXPECT_EQ(load_blob(path, kTestMagic, "blob-test"), body);
  // Empty bodies frame fine too.
  save_blob(path, kTestMagic, {}, "blob-test");
  EXPECT_TRUE(load_blob(path, kTestMagic, "blob-test").empty());
}

TEST(Blob, WrongMagicIsRefused) {
  const std::string path = "/tmp/pdsl_blob_magic.bin";
  save_blob(path, kTestMagic, sample_body(), "blob-test");
  EXPECT_THROW(load_blob(path, kTestMagic + 1, "blob-test"), std::runtime_error);
}

TEST(Blob, UnsupportedFormatVersionIsRefused) {
  const std::string path = "/tmp/pdsl_blob_version.bin";
  save_blob(path, kTestMagic, sample_body(), "blob-test");
  // Patch the version word (bytes 8..16) to a future version.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);
  const std::uint64_t bogus = kCheckpointVersion + 7;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  try {
    (void)load_blob(path, kTestMagic, "blob-test");
    FAIL() << "expected unsupported-version throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported checkpoint version"),
              std::string::npos);
  }
}

TEST(Blob, TruncationIsDetected) {
  const std::string path = "/tmp/pdsl_blob_trunc.bin";
  save_blob(path, kTestMagic, sample_body(), "blob-test");
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  EXPECT_THROW(load_blob(path, kTestMagic, "blob-test"), std::runtime_error);
}

TEST(Blob, BodyCorruptionIsCaughtByTheChecksum) {
  const std::string path = "/tmp/pdsl_blob_corrupt.bin";
  save_blob(path, kTestMagic, sample_body(), "blob-test");
  // Flip one bit in the body (past the 32-byte magic/version/size/checksum
  // header) — exactly the failure the unreliable-channel model injects.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(33);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x10);
  f.seekp(33);
  f.write(&c, 1);
  f.close();
  try {
    (void)load_blob(path, kTestMagic, "blob-test");
    FAIL() << "expected checksum throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos);
  }
}
