// PDSL integration tests: Algorithm 1 end to end on small problems, the
// Shapley observability hooks, the uniform-weights ablation and protocol
// robustness.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"

using namespace pdsl;
using namespace pdsl::algos;
using pdsl::core::Pdsl;

namespace {

struct Fixture {
  data::Dataset train;
  data::Dataset validation;
  data::Dataset test;
  graph::Topology topo;
  graph::MixingMatrix mixing;
  nn::Model model;
  std::vector<std::vector<std::size_t>> partition;

  static Fixture make(std::size_t agents, const std::string& topology, bool heterogeneous,
                      std::uint64_t seed = 31) {
    Rng rng(seed);
    auto pool = data::make_gaussian_mixture(800, 4, 6, 2.5, 0.5, seed);
    auto [rest, test] = data::split_off(pool, 120, rng);
    auto [train, validation] = data::split_off(rest, 120, rng);
    auto topo = graph::Topology::make(graph::topology_from_string(topology), agents, &rng);
    auto mixing = graph::MixingMatrix::metropolis(topo);
    nn::Model model = nn::make_mlp(6, 12, 4);
    std::vector<std::vector<std::size_t>> partition;
    if (heterogeneous) {
      data::PartitionOptions opts;
      opts.mu = 0.15;
      partition = data::dirichlet_partition(train, agents, opts, rng);
    } else {
      partition = data::iid_partition(train, agents, rng);
    }
    return Fixture{std::move(train), std::move(validation), std::move(test),
                   std::move(topo),  std::move(mixing),     std::move(model),
                   std::move(partition)};
  }

  Env env(double sigma = 0.0) const {
    Env e;
    e.topo = &topo;
    e.mixing = &mixing;
    e.train = &train;
    e.validation = &validation;
    e.model_template = &model;
    e.partition = &partition;
    e.hp.gamma = 0.05;
    e.hp.alpha = 0.5;
    e.hp.clip = 5.0;
    e.hp.sigma = sigma;
    e.hp.batch = 16;
    e.hp.shapley_permutations = 4;
    e.hp.validation_batch = 40;
    e.seed = 13;
    return e;
  }
};

}  // namespace

TEST(Pdsl, RequiresValidationSet) {
  const auto fx = Fixture::make(4, "ring", false);
  Env env = fx.env();
  env.validation = nullptr;
  EXPECT_THROW(Pdsl{env}, std::invalid_argument);
}

TEST(Pdsl, LearnsOnIidRing) {
  const auto fx = Fixture::make(4, "ring", false);
  Pdsl alg(fx.env(0.0));
  MetricsOptions mopts;
  mopts.test_subsample = 120;
  mopts.eval_every = 25;
  const auto series = run_with_metrics(alg, 25, fx.test, mopts);
  EXPECT_GT(series.back().test_accuracy, 0.6);
  EXPECT_LT(series.back().avg_loss, series.front().avg_loss);
}

TEST(Pdsl, LearnsUnderHeterogeneityAndNoise) {
  const auto fx = Fixture::make(5, "full", true);
  Pdsl alg(fx.env(0.05));
  MetricsOptions mopts;
  mopts.test_subsample = 120;
  mopts.eval_every = 30;
  const auto series = run_with_metrics(alg, 30, fx.test, mopts);
  EXPECT_GT(series.back().test_accuracy, 0.5);
}

TEST(Pdsl, ShapleyHooksArePopulatedAndEfficient) {
  const auto fx = Fixture::make(4, "full", true);
  Pdsl alg(fx.env(0.0));
  alg.run_round(1);
  ASSERT_EQ(alg.last_shapley().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    // Fully connected closed neighborhood of 4 agents.
    EXPECT_EQ(alg.last_shapley()[i].size(), 4u);
    EXPECT_EQ(alg.last_pi()[i].size(), 4u);
    for (double pi : alg.last_pi()[i]) {
      EXPECT_GE(pi, 0.0);
      EXPECT_TRUE(std::isfinite(pi));
    }
  }
  EXPECT_GT(alg.last_characteristic_evals(), 0u);
  EXPECT_GT(alg.observed_phi_hat_min(), 0.0);
  EXPECT_LE(alg.observed_phi_hat_min(), 1.0 + 1e-12);
}

TEST(Pdsl, ExactShapleyPathRuns) {
  const auto fx = Fixture::make(4, "ring", true);
  Env env = fx.env(0.0);
  env.hp.exact_shapley = true;
  Pdsl alg(env);
  alg.run_round(1);
  // Ring closed neighborhood = 3 players -> exact enumeration = 7 coalitions
  // per agent at most (cached), and Shapley efficiency must hold per agent:
  // sum phi = v(full) - v(empty) = validation accuracy of full average.
  for (std::size_t i = 0; i < 4; ++i) {
    double total = 0.0;
    for (double p : alg.last_shapley()[i]) total += p;
    EXPECT_GE(total, -1e-9);
    EXPECT_LE(total, 1.0 + 1e-9);  // accuracy-valued characteristic function
  }
}

TEST(Pdsl, UniformAblationRunsAndNames) {
  const auto fx = Fixture::make(4, "ring", true);
  Pdsl uniform(fx.env(0.0), Pdsl::Options{true});
  EXPECT_EQ(uniform.name(), "PDSL-uniform");
  uniform.run_round(1);
  // Uniform weights: pi_k = (1/n) / w_ik.
  const auto hood = fx.topo.closed_neighborhood(0);
  for (std::size_t k = 0; k < hood.size(); ++k) {
    const double expect = (1.0 / static_cast<double>(hood.size())) / fx.mixing(0, hood[k]);
    EXPECT_NEAR(uniform.last_pi()[0][k], expect, 1e-9);
  }
}

TEST(Pdsl, AlternativeShapleyEstimatorsRun) {
  const auto fx = Fixture::make(4, "full", true);
  for (const std::string method : {"mc", "tmc", "stratified", "exact"}) {
    Env env = fx.env(0.05);
    env.hp.shapley_method = method;
    Pdsl alg(env);
    alg.run_round(1);
    for (double pi : alg.last_pi()[0]) EXPECT_TRUE(std::isfinite(pi)) << method;
  }
}

TEST(Pdsl, RobustVariantSurvivesByzantineAgents) {
  // Gradient-poisoning adversaries: 1 of 4 agents flips+amplifies the
  // cross-gradients it sends. The robust variant (loss characteristic +
  // ReLU normalization) must keep learning; see bench_shapley (weighting
  // section) for the full comparison.
  const auto fx = Fixture::make(4, "full", false, 57);
  Pdsl::Options popts;
  popts.relu_normalization = true;
  popts.loss_characteristic = true;
  Env env = fx.env(0.02);
  env.adversary.roles.push_back(
      {0, pdsl::sim::ByzMode::kSignFlip, 3.0, 1, pdsl::sim::kNoRoundLimit});
  Pdsl robust(env, popts);
  MetricsOptions mopts;
  mopts.test_subsample = 120;
  mopts.eval_every = 25;
  const auto series = run_with_metrics(robust, 25, fx.test, mopts);
  EXPECT_GT(series.back().test_accuracy, 0.5);
  for (float v : robust.models()[1]) EXPECT_TRUE(std::isfinite(v));
}

TEST(Pdsl, DeterministicGivenSeed) {
  const auto fx = Fixture::make(4, "ring", true);
  Pdsl a(fx.env(0.1));
  Pdsl b(fx.env(0.1));
  for (std::size_t t = 1; t <= 3; ++t) {
    a.run_round(t);
    b.run_round(t);
  }
  EXPECT_EQ(a.models(), b.models());
}

TEST(Pdsl, SurvivesMessageLoss) {
  const auto fx = Fixture::make(5, "full", true);
  Env env = fx.env(0.05);
  env.drop_prob = 0.25;
  Pdsl alg(env);
  for (std::size_t t = 1; t <= 6; ++t) alg.run_round(t);
  for (const auto& m : alg.models()) {
    for (float v : m) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(alg.network().messages_dropped(), 0u);
}

TEST(Pdsl, NoUnreadMailAfterRound) {
  const auto fx = Fixture::make(4, "full", false);
  Pdsl alg(fx.env(0.0));
  alg.run_round(1);
  EXPECT_EQ(alg.network().clear(), 0u) << "protocol left unread messages";
}

TEST(Pdsl, ConsensusTightensOverRounds) {
  const auto fx = Fixture::make(6, "full", false);
  Pdsl alg(fx.env(0.0));
  alg.run_round(1);
  const double early = sim::consensus_distance(alg.models());
  for (std::size_t t = 2; t <= 10; ++t) alg.run_round(t);
  const double late = sim::consensus_distance(alg.models());
  // Fully-connected metropolis averages to exact consensus every round.
  EXPECT_LE(late, early + 1e-4);
  EXPECT_LT(late, 1e-3);
}

// ---------------------------------------------------------------------------
// S-SHAP: batched coalition evaluation + adaptive sampling inside PDSL
// ---------------------------------------------------------------------------

TEST(Pdsl, BatchedEvalBitIdenticalToSequential) {
  // --shapley-eval batched must reproduce the default path to the bit: the
  // stacked GEMM scores the same coalition averages to the same doubles, so
  // phi, pi and every model float agree exactly.
  const auto fx = Fixture::make(4, "full", true);
  Env bat_env = fx.env(0.1);
  bat_env.hp.shapley_eval = "batched";
  Env seq_env = fx.env(0.1);
  seq_env.hp.shapley_eval = "sequential";  // the default is linear now
  Pdsl seq(seq_env);
  Pdsl bat(bat_env);
  for (std::size_t t = 1; t <= 3; ++t) {
    seq.run_round(t);
    bat.run_round(t);
  }
  EXPECT_EQ(seq.models(), bat.models());
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(seq.last_shapley()[i].size(), bat.last_shapley()[i].size());
    for (std::size_t k = 0; k < seq.last_shapley()[i].size(); ++k) {
      EXPECT_EQ(seq.last_shapley()[i][k], bat.last_shapley()[i][k]);
      EXPECT_EQ(seq.last_pi()[i][k], bat.last_pi()[i][k]);
    }
  }
  const auto stats = bat.shapley_round_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->coalition_evals, 0u);
  EXPECT_EQ(stats->coalitions_batched, stats->coalition_evals);  // mc prefetches all
  EXPECT_GT(stats->cache_misses, 0u);
  const auto seq_stats = seq.shapley_round_stats();
  ASSERT_TRUE(seq_stats.has_value());
  EXPECT_EQ(seq_stats->coalitions_batched, 0u);
  EXPECT_EQ(seq_stats->coalition_evals, stats->coalition_evals);
}

TEST(Pdsl, BatchedEvalBitIdenticalOnRobustVariant) {
  // Loss-valued characteristic (pdsl_robust) exercises the batched losses()
  // path; same bit-identity contract.
  const auto fx = Fixture::make(4, "full", true);
  Pdsl::Options popts;
  popts.relu_normalization = true;
  popts.loss_characteristic = true;
  Env bat_env = fx.env(0.0);
  bat_env.hp.shapley_eval = "batched";
  Env seq_env = fx.env(0.0);
  seq_env.hp.shapley_eval = "sequential";
  Pdsl seq(seq_env, popts);
  Pdsl bat(bat_env, popts);
  for (std::size_t t = 1; t <= 2; ++t) {
    seq.run_round(t);
    bat.run_round(t);
  }
  EXPECT_EQ(seq.models(), bat.models());
}

TEST(Pdsl, LinearEvalTracksSequentialAndIsDeterministic) {
  // --shapley-eval linear scores coalitions via first-layer linearity —
  // mathematically the same characteristic with ulp-level float differences,
  // so we demand (a) bit-determinism between two linear runs and (b) pi/model
  // closeness to the sequential path, not bit-identity.
  const auto fx = Fixture::make(4, "full", true);
  Env lin_env = fx.env(0.1);
  lin_env.hp.shapley_eval = "linear";
  Env seq_env = fx.env(0.1);
  seq_env.hp.shapley_eval = "sequential";
  Pdsl seq(seq_env);
  Pdsl lin(lin_env);
  Pdsl lin2(lin_env);
  for (std::size_t t = 1; t <= 3; ++t) {
    seq.run_round(t);
    lin.run_round(t);
    lin2.run_round(t);
  }
  EXPECT_EQ(lin.models(), lin2.models());  // determinism
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t k = 0; k < seq.last_pi()[i].size(); ++k) {
      EXPECT_EQ(lin.last_pi()[i][k], lin2.last_pi()[i][k]);
      EXPECT_NEAR(lin.last_pi()[i][k], seq.last_pi()[i][k], 0.15)
          << "agent " << i << " member " << k;
    }
    for (std::size_t j = 0; j < seq.models()[i].size(); ++j) {
      EXPECT_NEAR(lin.models()[i][j], seq.models()[i][j], 1e-2) << "agent " << i;
    }
  }
  const auto stats = lin.shapley_round_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->coalitions_batched, 0u);  // linear rides the batched path
}

TEST(Pdsl, LinearEvalRunsOnRobustVariant) {
  // Loss-valued characteristic through coalition_losses(); finite weights,
  // deterministic across two runs.
  const auto fx = Fixture::make(4, "full", true);
  Pdsl::Options popts;
  popts.relu_normalization = true;
  popts.loss_characteristic = true;
  Env env = fx.env(0.0);
  env.hp.shapley_eval = "linear";
  Pdsl a(env, popts);
  Pdsl b(env, popts);
  for (std::size_t t = 1; t <= 2; ++t) {
    a.run_round(t);
    b.run_round(t);
  }
  EXPECT_EQ(a.models(), b.models());
  for (double pi : a.last_pi()[0]) EXPECT_TRUE(std::isfinite(pi));
}

TEST(Pdsl, AdaptiveMethodRunsAndRecordsBudget) {
  const auto fx = Fixture::make(4, "full", true);
  Env env = fx.env(0.0);
  env.hp.shapley_method = "adaptive";
  env.hp.shapley_permutations = 16;
  env.hp.shapley_min_permutations = 4;
  Pdsl alg(env);
  alg.run_round(1);
  const auto stats = alg.shapley_round_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->permutations_used, 4u * 4u);   // >= min floor per agent
  EXPECT_LE(stats->permutations_used, 4u * 16u);  // <= budget per agent
  for (double pi : alg.last_pi()[0]) EXPECT_TRUE(std::isfinite(pi));
}

TEST(Pdsl, ValidatesShapleyConfig) {
  const auto fx = Fixture::make(3, "ring", false);
  {
    Env env = fx.env();
    env.hp.shapley_eval = "bogus";
    EXPECT_THROW(Pdsl{env}, std::invalid_argument);
  }
  {
    Env env = fx.env();
    env.hp.shapley_method = "bogus";
    EXPECT_THROW(Pdsl{env}, std::invalid_argument);
  }
}

TEST(Pdsl, RefusesNeighborhoodsAbove63Players) {
  // 64 agents on a full graph: every closed neighborhood is a 64-player
  // Shapley game, over the uint64 coalition-mask cap. The constructor must
  // refuse loudly instead of overflowing masks mid-run.
  const auto fx = Fixture::make(64, "full", false);
  Env env = fx.env();
  EXPECT_THROW(Pdsl{env}, std::invalid_argument);
}
