// S-SCALE unit tests: sparse CSR topologies vs the dense graph/ classes,
// deterministic participation sampling, the wire codec, LazyMatrix COW
// semantics, and the end-to-end bit-identity contracts (dense vs sparse,
// eager vs lazy, wire on vs off, sampled reruns and thread widths).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/experiment.hpp"
#include "fleet/lazy_matrix.hpp"
#include "fleet/options.hpp"
#include "fleet/participation.hpp"
#include "fleet/sparse_graph.hpp"
#include "fleet/wire.hpp"
#include "graph/mixing.hpp"
#include "graph/topology.hpp"

namespace {

using pdsl::core::ExperimentConfig;
using pdsl::core::ExperimentResult;
using pdsl::fleet::FleetOptions;
using pdsl::fleet::LazyMatrix;
using pdsl::fleet::ParticipationMode;
using pdsl::fleet::ParticipationPlan;
using pdsl::fleet::SparseGraph;
using pdsl::fleet::SparseMetropolis;
using pdsl::fleet::WireMessage;
using pdsl::graph::MixingMatrix;
using pdsl::graph::Topology;
using pdsl::graph::TopologyKind;

void expect_same_graph(const pdsl::graph::TopologyView& a,
                       const pdsl::graph::TopologyView& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.degree(i), b.degree(i)) << "degree of " << i;
    EXPECT_EQ(a.neighbors(i), b.neighbors(i)) << "neighbors of " << i;
    EXPECT_EQ(a.closed_neighborhood(i), b.closed_neighborhood(i));
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a.has_edge(i, j), b.has_edge(i, j)) << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------------
// SparseGraph vs dense Topology
// ---------------------------------------------------------------------------

TEST(SparseGraph, FromTopologyMatchesDense) {
  for (const auto kind : {TopologyKind::kFullyConnected, TopologyKind::kRing,
                          TopologyKind::kBipartite, TopologyKind::kStar}) {
    const Topology dense = Topology::make(kind, 8);
    const SparseGraph sparse = SparseGraph::from_topology(dense);
    expect_same_graph(dense, sparse);
  }
}

TEST(SparseGraph, RingGeneratorMatchesDenseRing) {
  const Topology dense = Topology::make(TopologyKind::kRing, 12);
  const SparseGraph sparse = SparseGraph::ring(12);
  expect_same_graph(dense, sparse);
}

TEST(SparseGraph, RegularGeneratorProperties) {
  const SparseGraph g = SparseGraph::regular(12, 4);
  ASSERT_EQ(g.size(), 12u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.num_edges(), 12u * 4u / 2u);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.degree(i), 4u);
    for (const auto j : g.neighbors(i)) {
      EXPECT_TRUE(g.has_edge(j, i)) << "asymmetric edge " << i << "," << j;
    }
  }
  EXPECT_THROW(SparseGraph::regular(12, 3), std::invalid_argument);   // odd
  EXPECT_THROW(SparseGraph::regular(12, 0), std::invalid_argument);
  EXPECT_THROW(SparseGraph::regular(4, 4), std::invalid_argument);    // >= n
}

TEST(SparseGraph, GeometricGeneratorConnectedAndDeterministic) {
  const SparseGraph a = SparseGraph::random_geometric(32, 0.05, 7);
  const SparseGraph b = SparseGraph::random_geometric(32, 0.05, 7);
  EXPECT_TRUE(a.is_connected());  // radius auto-grows until connected
  expect_same_graph(a, b);
}

TEST(SparseGraph, CloneIsDeepAndEqual) {
  const SparseGraph g = SparseGraph::regular(8, 2);
  const auto copy = g.clone();
  expect_same_graph(g, *copy);
}

// ---------------------------------------------------------------------------
// SparseMetropolis vs MixingMatrix::metropolis — bitwise
// ---------------------------------------------------------------------------

TEST(SparseMetropolis, BitwiseEqualsDenseMetropolis) {
  for (const auto kind : {TopologyKind::kFullyConnected, TopologyKind::kRing,
                          TopologyKind::kBipartite, TopologyKind::kStar}) {
    const Topology dense = Topology::make(kind, 8);
    const MixingMatrix w = MixingMatrix::metropolis(dense);
    const SparseGraph sparse = SparseGraph::from_topology(dense);
    const SparseMetropolis sw(sparse);
    ASSERT_EQ(sw.size(), w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
      for (std::size_t j = 0; j < w.size(); ++j) {
        // EXPECT_EQ, not NEAR: the sparse view must replay the dense FP
        // accumulation order exactly (the golden-equivalence contract).
        EXPECT_EQ(sw.weight(i, j), w.weight(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(SparseMetropolis, RowsSumToOne) {
  const SparseGraph g = SparseGraph::regular(16, 4);
  const SparseMetropolis w(g);
  for (std::size_t i = 0; i < g.size(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < g.size(); ++j) row += w.weight(i, j);
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Participation sampling
// ---------------------------------------------------------------------------

TEST(Participation, FullModeIsAllOnes) {
  const SparseGraph g = SparseGraph::ring(8);
  ParticipationPlan plan;  // kFull
  const auto mask = pdsl::fleet::participation_mask(plan, g, 1, 42);
  ASSERT_EQ(mask.size(), 8u);
  for (const auto m : mask) EXPECT_EQ(m, 1);
}

TEST(Participation, SampledExactlyKDeterministicAndRoundVarying) {
  const SparseGraph g = SparseGraph::regular(64, 4);
  ParticipationPlan plan;
  plan.mode = ParticipationMode::kSampled;
  plan.active = 8;
  const std::uint64_t seed = pdsl::fleet::resolve_participation_seed(plan, 1);
  ASSERT_NE(seed, 0u);

  bool any_round_differs = false;
  std::vector<unsigned char> prev;
  for (std::size_t t = 1; t <= 6; ++t) {
    const auto mask = pdsl::fleet::participation_mask(plan, g, t, seed);
    const auto again = pdsl::fleet::participation_mask(plan, g, t, seed);
    EXPECT_EQ(mask, again) << "round " << t << " not deterministic";
    std::size_t count = 0;
    for (const auto m : mask) count += m;
    EXPECT_EQ(count, 8u) << "round " << t;
    if (!prev.empty() && mask != prev) any_round_differs = true;
    prev = mask;
  }
  EXPECT_TRUE(any_round_differs) << "active set frozen across rounds";
}

TEST(Participation, RateResolvesToCeil) {
  ParticipationPlan plan;
  plan.mode = ParticipationMode::kSampled;
  plan.rate = 0.1;
  EXPECT_EQ(plan.resolved_active(64), 7u);  // ceil(6.4)
  EXPECT_EQ(plan.resolved_active(4), 1u);
}

TEST(Participation, WalkIsAnEdgeHandoffChain) {
  const SparseGraph g = SparseGraph::ring(9);
  ParticipationPlan plan;
  plan.mode = ParticipationMode::kWalk;
  const std::uint64_t seed = 99;
  for (std::size_t t = 2; t <= 8; ++t) {
    const auto now = pdsl::fleet::walk_position(g, t, seed);
    const auto prev = pdsl::fleet::walk_position(g, t - 1, seed);
    EXPECT_TRUE(now == prev || g.has_edge(prev, now))
        << "round " << t << ": " << prev << " -> " << now << " is not an edge";
    const auto mask = pdsl::fleet::participation_mask(plan, g, t, seed);
    std::size_t count = 0;
    for (const auto m : mask) count += m;
    EXPECT_GE(count, 1u);
    EXPECT_LE(count, 2u);
    EXPECT_EQ(mask[now], 1);
    EXPECT_EQ(mask[prev], 1);
  }
}

TEST(Participation, ValidationThrowsWithFieldNames) {
  FleetOptions f;
  f.participation.mode = ParticipationMode::kSampled;
  // Neither active nor rate set.
  EXPECT_THROW(f.validate(8), std::invalid_argument);
  f.participation.active = 9;
  EXPECT_THROW(f.validate(8), std::invalid_argument);  // k > N
  f.participation.active = 0;
  f.participation.rate = 1.5;
  EXPECT_THROW(f.validate(8), std::invalid_argument);  // rate out of (0,1]
  f.participation.rate = 0.5;
  EXPECT_NO_THROW(f.validate(8));

  FleetOptions s;
  s.sparse = true;
  s.degree = 0;
  EXPECT_THROW(s.validate(8), std::invalid_argument);  // degree must be > 0
  s.degree = 4;
  s.radius = 0.0;
  EXPECT_THROW(s.validate(8), std::invalid_argument);  // radius <= 0
}

TEST(Participation, OptionsJsonRoundTrip) {
  FleetOptions f;
  f.participation.mode = ParticipationMode::kSampled;
  f.participation.active = 8;
  f.lazy_state = true;
  f.wire_roundtrip = true;
  f.sparse = true;
  f.degree = 6;
  const auto j = pdsl::fleet::fleet_options_to_json(f);
  const FleetOptions g = pdsl::fleet::fleet_options_from_json(j);
  EXPECT_EQ(g.participation.mode, ParticipationMode::kSampled);
  EXPECT_EQ(g.participation.active, 8u);
  EXPECT_TRUE(g.lazy_state);
  EXPECT_TRUE(g.wire_roundtrip);
  EXPECT_TRUE(g.sparse);
  EXPECT_EQ(g.degree, 6u);
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

WireMessage sample_message() {
  WireMessage m;
  m.src = 3;
  m.dst = 7;
  m.round = 42;
  m.channel = 1;
  m.tag = "xgrad:3";
  m.payload = {1.5f, -2.25f, 0.0f, 3.0e-38f};
  return m;
}

TEST(Wire, RoundTripIsExact) {
  const WireMessage m = sample_message();
  const WireMessage back = pdsl::fleet::wire_decode(pdsl::fleet::wire_encode(m));
  EXPECT_TRUE(pdsl::fleet::wire_equal(m, back));
  EXPECT_EQ(back.tag, "xgrad:3");
  EXPECT_EQ(back.payload, m.payload);
}

TEST(Wire, NanAndInfBitPatternsSurvive) {
  WireMessage m = sample_message();
  m.payload = {std::numeric_limits<float>::quiet_NaN(),
               std::numeric_limits<float>::infinity(),
               -std::numeric_limits<float>::infinity(), -0.0f};
  const WireMessage back = pdsl::fleet::wire_decode(pdsl::fleet::wire_encode(m));
  ASSERT_EQ(back.payload.size(), m.payload.size());
  for (std::size_t i = 0; i < m.payload.size(); ++i) {
    std::uint32_t a = 0, b = 0;
    std::memcpy(&a, &m.payload[i], 4);
    std::memcpy(&b, &back.payload[i], 4);
    EXPECT_EQ(a, b) << "payload bit pattern " << i;
  }
  EXPECT_TRUE(pdsl::fleet::wire_equal(m, back));  // NaN-safe equality
}

TEST(Wire, EmptyPayloadAndTag) {
  WireMessage m;
  const WireMessage back = pdsl::fleet::wire_decode(pdsl::fleet::wire_encode(m));
  EXPECT_TRUE(pdsl::fleet::wire_equal(m, back));
}

TEST(Wire, CorruptionTruncationAndBadHeaderThrow) {
  const auto buf = pdsl::fleet::wire_encode(sample_message());

  auto corrupted = buf;
  corrupted[corrupted.size() / 2] ^= 0x40;  // flip a payload bit
  EXPECT_THROW((void)pdsl::fleet::wire_decode(corrupted), std::runtime_error);

  auto truncated = buf;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW((void)pdsl::fleet::wire_decode(truncated), std::runtime_error);

  auto bad_magic = buf;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW((void)pdsl::fleet::wire_decode(bad_magic), std::runtime_error);

  auto bad_version = buf;
  bad_version[8] ^= 0xFF;  // version field follows the u64 magic
  EXPECT_THROW((void)pdsl::fleet::wire_decode(bad_version), std::runtime_error);
}

// ---------------------------------------------------------------------------
// LazyMatrix
// ---------------------------------------------------------------------------

TEST(LazyMatrix, SharesDefaultUntilWritten) {
  LazyMatrix m(4, {1.0f, 2.0f});
  EXPECT_EQ(m.size(), 4u);
  EXPECT_EQ(m.dim(), 2u);
  EXPECT_EQ(m.materialized_count(), 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m[i], (std::vector<float>{1.0f, 2.0f}));
    EXPECT_FALSE(m.materialized(i));
  }
}

TEST(LazyMatrix, MutCopiesDefaultOnFirstTouch) {
  LazyMatrix m(4, {1.0f, 2.0f});
  m.mut(2)[0] = 9.0f;
  EXPECT_EQ(m.materialized_count(), 1u);
  EXPECT_EQ(m[2], (std::vector<float>{9.0f, 2.0f}));
  EXPECT_EQ(m[0], (std::vector<float>{1.0f, 2.0f}));  // others untouched
}

TEST(LazyMatrix, SetReplacesRowAndChecksDim) {
  LazyMatrix m(3, {0.0f, 0.0f});
  m.set(1, {5.0f, 6.0f});
  EXPECT_EQ(m[1], (std::vector<float>{5.0f, 6.0f}));
  EXPECT_THROW(m.set(0, {1.0f}), std::invalid_argument);
}

TEST(LazyMatrix, DenseAssignAndEquality) {
  LazyMatrix a(2, {1.0f});
  LazyMatrix b(2, {1.0f});
  EXPECT_TRUE(a == b);
  b.set(0, {2.0f});
  EXPECT_TRUE(a != b);
  a.assign(b.dense());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.materialized_count(), 2u);  // assign materializes everything
}

// ---------------------------------------------------------------------------
// End-to-end bit-identity contracts
// ---------------------------------------------------------------------------

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "mnist_like";
  cfg.model = "logistic";
  cfg.image = 8;
  cfg.topology = "ring";
  cfg.partition = "iid";
  cfg.agents = 8;
  cfg.rounds = 3;
  cfg.train_samples = 256;
  cfg.test_samples = 64;
  cfg.validation_samples = 64;
  cfg.hp.batch = 8;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.sigma_mode = "none";
  cfg.seed = 5;
  cfg.metrics.eval_every = 0;
  cfg.metrics.test_subsample = 32;
  return cfg;
}

TEST(FleetContract, SparseRingBitIdenticalToDense) {
  ExperimentConfig dense = tiny_config();
  ExperimentConfig sparse = tiny_config();
  sparse.fleet.sparse = true;
  const ExperimentResult a = pdsl::core::run_experiment(dense);
  const ExperimentResult b = pdsl::core::run_experiment(sparse);
  EXPECT_EQ(a.average_model, b.average_model);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(FleetContract, WireRoundTripDoesNotChangeResults) {
  ExperimentConfig plain = tiny_config();
  ExperimentConfig wired = tiny_config();
  wired.fleet.wire_roundtrip = true;
  const ExperimentResult a = pdsl::core::run_experiment(plain);
  const ExperimentResult b = pdsl::core::run_experiment(wired);
  EXPECT_EQ(a.average_model, b.average_model);
  EXPECT_GT(b.wire_messages, 0u);
  EXPECT_GT(b.wire_bytes, 0u);
  EXPECT_EQ(a.wire_messages, 0u);
}

TEST(FleetContract, LazyStateBitIdenticalToEagerUnderSampling) {
  // Both sides sample (so both use stateless batch draws); only the worker
  // materialization policy differs. Eviction must not change the math.
  ExperimentConfig eager = tiny_config();
  eager.fleet.participation.mode = ParticipationMode::kSampled;
  eager.fleet.participation.active = 3;
  eager.metrics.metric_agents = 2;  // metric eval materializes workers too
  ExperimentConfig lazy = eager;
  lazy.fleet.lazy_state = true;
  lazy.fleet.worker_cache = 4;
  const ExperimentResult a = pdsl::core::run_experiment(eager);
  const ExperimentResult b = pdsl::core::run_experiment(lazy);
  EXPECT_EQ(a.average_model, b.average_model);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.workers_peak, 8u);  // eager materializes the whole fleet
  // Lazy transient bound: prepare() materializes this round's actives first
  // and then evicts down to the cap, so peak <= cache_cap + active (4 + 3).
  EXPECT_LE(b.workers_peak, 7u);
  EXPECT_LT(b.workers_peak, a.workers_peak);
  EXPECT_EQ(a.participants, 3u);
  EXPECT_EQ(b.participants, 3u);
}

TEST(FleetContract, WorkerCacheSizeDoesNotChangeResults) {
  ExperimentConfig small = tiny_config();
  small.fleet.participation.mode = ParticipationMode::kSampled;
  small.fleet.participation.active = 3;
  small.fleet.lazy_state = true;
  small.fleet.worker_cache = 4;
  ExperimentConfig big = small;
  big.fleet.worker_cache = 64;
  const ExperimentResult a = pdsl::core::run_experiment(small);
  const ExperimentResult b = pdsl::core::run_experiment(big);
  EXPECT_EQ(a.average_model, b.average_model);
}

TEST(FleetContract, SampledRerunAndThreadWidthBitIdentical) {
  ExperimentConfig cfg = tiny_config();
  cfg.fleet.participation.mode = ParticipationMode::kSampled;
  cfg.fleet.participation.active = 4;
  cfg.fleet.sparse = true;
  cfg.fleet.wire_roundtrip = true;
  const ExperimentResult a = pdsl::core::run_experiment(cfg);
  const ExperimentResult b = pdsl::core::run_experiment(cfg);
  cfg.threads = 4;
  const ExperimentResult c = pdsl::core::run_experiment(cfg);
  EXPECT_EQ(a.average_model, b.average_model);
  EXPECT_EQ(a.average_model, c.average_model);
}

TEST(FleetContract, WalkModeRunsWithTinyActiveSet) {
  ExperimentConfig cfg = tiny_config();
  cfg.fleet.participation.mode = ParticipationMode::kWalk;
  cfg.fleet.lazy_state = true;
  const ExperimentResult res = pdsl::core::run_experiment(cfg);
  EXPECT_LE(res.participants, 2u);
  EXPECT_GE(res.participants, 1u);
  const ExperimentResult again = pdsl::core::run_experiment(cfg);
  EXPECT_EQ(res.average_model, again.average_model);
}

TEST(FleetContract, SparseOnlyTopologyRequiresSparseFlag) {
  ExperimentConfig cfg = tiny_config();
  cfg.topology = "regular";  // sparse-only generator without fleet.sparse
  EXPECT_THROW((void)pdsl::core::run_experiment(cfg), std::invalid_argument);
  cfg.fleet.sparse = true;
  EXPECT_NO_THROW((void)pdsl::core::run_experiment(cfg));
}

TEST(FleetContract, Theorem1SigmaRejectedOnSparseRuns) {
  ExperimentConfig cfg = tiny_config();
  cfg.fleet.sparse = true;
  cfg.sigma_mode = "theorem1";
  EXPECT_THROW((void)pdsl::core::run_experiment(cfg), std::invalid_argument);
}

}  // namespace

TEST(FleetContract, WireCorruptionIsDetectedRetransmittedAndDeterministic) {
  // The S-SCALE wire format carries the S-RECOV checksum: with an unreliable
  // channel underneath, every hash-driven bit flip is detected (exactly one
  // counter each), repaired by a retransmission, and the run stays
  // bit-identical across reruns — corruption never silently changes math.
  ExperimentConfig cfg = tiny_config();
  cfg.fleet.wire_roundtrip = true;
  cfg.channel.corrupt_prob = 0.15;
  cfg.channel.max_retries = 16;
  const ExperimentResult a = pdsl::core::run_experiment(cfg);
  EXPECT_GT(a.corruptions_detected, 0u);
  EXPECT_EQ(a.corruptions_detected, a.retransmits + a.retry_exhausted);
  EXPECT_EQ(a.retry_exhausted, 0u);  // the budget covers 0.15^17 comfortably
  EXPECT_GT(a.wire_messages, 0u);
  EXPECT_TRUE(std::isfinite(a.final_loss));
  const ExperimentResult b = pdsl::core::run_experiment(cfg);
  EXPECT_EQ(a.average_model, b.average_model);
  EXPECT_EQ(a.corruptions_detected, b.corruptions_detected);
  EXPECT_EQ(a.retransmits, b.retransmits);
}
