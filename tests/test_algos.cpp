// Baseline algorithms: each must run its protocol over the network, keep
// models finite, and actually learn on an easy (IID, separable, no-noise)
// problem. Relative behaviours under heterogeneity are covered by the
// integration tests in test_pdsl.cpp / test_experiment.cpp.

#include <gtest/gtest.h>

#include <cmath>

#include "algos/dp_cga.hpp"
#include "algos/dp_dpsgd.hpp"
#include "algos/dp_netfleet.hpp"
#include "algos/async_gossip.hpp"
#include "algos/dpsgd.hpp"
#include "algos/muffliato.hpp"
#include "algos/qgm.hpp"
#include "common/vec_math.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"

using namespace pdsl;
using namespace pdsl::algos;

namespace {

/// A reusable bundle of everything an Env points to.
struct Fixture {
  data::Dataset train;
  data::Dataset test;
  graph::Topology topo;
  graph::MixingMatrix mixing;
  nn::Model model;
  std::vector<std::vector<std::size_t>> partition;
  data::Dataset validation;

  static Fixture make(std::size_t agents, double sigma, bool iid = true,
                      const std::string& topology = "full") {
    Rng rng(99);
    auto pool = data::make_gaussian_mixture(700, 4, 6, 2.5, 0.5, 21);
    auto [rest, test] = data::split_off(pool, 100, rng);
    auto [train, validation] = data::split_off(rest, 100, rng);
    auto topo = graph::Topology::make(graph::topology_from_string(topology), agents, &rng);
    auto mixing = graph::MixingMatrix::metropolis(topo);
    nn::Model model = nn::make_mlp(6, 12, 4);
    std::vector<std::vector<std::size_t>> partition;
    if (iid) {
      partition = data::iid_partition(train, agents, rng);
    } else {
      data::PartitionOptions opts;
      opts.mu = 0.2;
      partition = data::dirichlet_partition(train, agents, opts, rng);
    }
    (void)sigma;
    return Fixture{std::move(train), std::move(test),     std::move(topo), std::move(mixing),
                   std::move(model), std::move(partition), std::move(validation)};
  }

  Env env(double sigma, double gamma = 0.05) const {
    Env e;
    e.topo = &topo;
    e.mixing = &mixing;
    e.train = &train;
    e.validation = &validation;
    e.model_template = &model;
    e.partition = &partition;
    e.hp.gamma = gamma;
    e.hp.alpha = 0.5;
    e.hp.clip = 5.0;
    e.hp.sigma = sigma;
    e.hp.batch = 16;
    e.seed = 7;
    return e;
  }
};

double chance_level() { return 1.0 / 4.0; }

template <typename Alg>
double final_accuracy(const Fixture& fx, const Env& env, std::size_t rounds) {
  Alg alg(env);
  MetricsOptions mopts;
  mopts.test_subsample = 100;
  mopts.eval_every = rounds;  // only at the end
  const auto series = run_with_metrics(alg, rounds, fx.test, mopts);
  return series.back().test_accuracy;
}

}  // namespace

TEST(Baselines, DpsgdLearnsIidWithoutNoise) {
  const auto fx = Fixture::make(5, 0.0);
  EXPECT_GT(final_accuracy<DPSGD>(fx, fx.env(0.0), 40), 0.6);
}

TEST(Baselines, DmsgdLearnsIidWithoutNoise) {
  const auto fx = Fixture::make(5, 0.0);
  EXPECT_GT(final_accuracy<DMSGD>(fx, fx.env(0.0), 40), 0.6);
}

TEST(Baselines, DpDpsgdLearnsWithModerateNoise) {
  const auto fx = Fixture::make(5, 0.0);
  EXPECT_GT(final_accuracy<DpDpsgd>(fx, fx.env(0.05), 40), 0.5);
}

TEST(Baselines, MuffliatoLearns) {
  const auto fx = Fixture::make(5, 0.0);
  EXPECT_GT(final_accuracy<Muffliato>(fx, fx.env(0.05), 40), 0.5);
}

TEST(Baselines, DpCgaLearns) {
  const auto fx = Fixture::make(5, 0.0);
  EXPECT_GT(final_accuracy<DpCga>(fx, fx.env(0.05), 30), 0.5);
}

TEST(Baselines, DpNetFleetLearns) {
  const auto fx = Fixture::make(5, 0.0);
  EXPECT_GT(final_accuracy<DpNetFleet>(fx, fx.env(0.05, 0.02), 30), 0.5);
}

TEST(Baselines, AsyncDpGossipLearns) {
  const auto fx = Fixture::make(5, 0.0);
  EXPECT_GT(final_accuracy<AsyncDpGossip>(fx, fx.env(0.05), 60), 0.5);
}

TEST(Baselines, AsyncEventsAreCounted) {
  const auto fx = Fixture::make(5, 0.0);
  AsyncDpGossip alg(fx.env(0.0));
  alg.run_round(1);
  EXPECT_EQ(alg.events(), 5u);
  alg.run_round(2);
  EXPECT_EQ(alg.events(), 10u);
}

TEST(Baselines, DpQgmLearns) {
  const auto fx = Fixture::make(5, 0.0);
  EXPECT_GT(final_accuracy<DpQgm>(fx, fx.env(0.05), 40), 0.5);
}

TEST(Baselines, NoiseHurtsDpDpsgd) {
  const auto fx = Fixture::make(5, 0.0);
  const double clean = final_accuracy<DpDpsgd>(fx, fx.env(0.0), 30);
  const double noisy = final_accuracy<DpDpsgd>(fx, fx.env(3.0), 30);
  EXPECT_GT(clean, noisy);
}

TEST(Baselines, ModelsStayFiniteUnderHeavyNoise) {
  const auto fx = Fixture::make(4, 0.0);
  DpDpsgd alg(fx.env(10.0));
  for (std::size_t t = 1; t <= 10; ++t) alg.run_round(t);
  for (const auto& m : alg.models()) {
    for (float v : m) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Baselines, MessageAccountingIsPlausible) {
  const auto fx = Fixture::make(6, 0.0);
  DPSGD alg(fx.env(0.0));
  alg.run_round(1);
  // Fully connected M=6: model mixing sends 6*5 messages per round.
  EXPECT_EQ(alg.network().messages_sent(), 30u);
  DpCga cga(fx.env(0.0));
  cga.run_round(1);
  // CGA additionally exchanges models and returns cross-gradients: 3 * 30.
  EXPECT_EQ(cga.network().messages_sent(), 90u);
}

TEST(Baselines, GossipAveragingConvergesToConsensus) {
  // With gamma tiny and zero noise, repeated DPSGD rounds must contract the
  // consensus distance on a ring (spectral gap argument).
  const auto fx = Fixture::make(6, 0.0, true, "ring");
  auto env = fx.env(0.0, 1e-6);
  DPSGD alg(env);
  alg.run_round(1);
  // Force disagreement by measuring after first round, then mix more.
  const double before = sim::consensus_distance(alg.models());
  for (std::size_t t = 2; t <= 12; ++t) alg.run_round(t);
  const double after = sim::consensus_distance(alg.models());
  EXPECT_LE(after, before + 1e-6);
}

TEST(Baselines, DropoutLinksDoNotCrash) {
  const auto fx = Fixture::make(5, 0.0);
  Env env = fx.env(0.1);
  env.drop_prob = 0.3;
  DpCga alg(env);
  for (std::size_t t = 1; t <= 5; ++t) alg.run_round(t);
  for (const auto& m : alg.models()) {
    for (float v : m) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(alg.network().messages_dropped(), 0u);
}

TEST(Baselines, EnvValidation) {
  const auto fx = Fixture::make(4, 0.0);
  Env env = fx.env(0.0);
  env.train = nullptr;
  EXPECT_THROW(DPSGD{env}, std::invalid_argument);
  env = fx.env(0.0);
  env.hp.alpha = 1.0;
  EXPECT_THROW(DMSGD{env}, std::invalid_argument);
  env = fx.env(0.0);
  env.hp.gamma = 0.0;
  EXPECT_THROW(DPSGD{env}, std::invalid_argument);
}
