// Topologies, mixing matrices (Assumption 3) and spectral analysis.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/mixing.hpp"
#include "graph/spectral.hpp"
#include "graph/topology.hpp"

using namespace pdsl;
using namespace pdsl::graph;

TEST(Topology, FullyConnectedStructure) {
  const auto t = Topology::make(TopologyKind::kFullyConnected, 6);
  EXPECT_EQ(t.num_edges(), 15u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(t.degree(i), 5u);
  EXPECT_EQ(t.closed_neighborhood(2).size(), 6u);
}

TEST(Topology, RingStructure) {
  const auto t = Topology::make(TopologyKind::kRing, 8);
  EXPECT_EQ(t.num_edges(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(t.degree(i), 2u);
  EXPECT_TRUE(t.has_edge(0, 7));
  EXPECT_FALSE(t.has_edge(0, 4));
}

TEST(Topology, BipartiteStructure) {
  const auto t = Topology::make(TopologyKind::kBipartite, 10);
  // K_{5,5}: within-side no edges, across-side all edges.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i != j) EXPECT_FALSE(t.has_edge(i, j));
      EXPECT_TRUE(t.has_edge(i, 5 + j));
    }
  }
}

TEST(Topology, StarAndTorus) {
  const auto star = Topology::make(TopologyKind::kStar, 7);
  EXPECT_EQ(star.degree(0), 6u);
  EXPECT_EQ(star.degree(3), 1u);
  const auto torus = Topology::make(TopologyKind::kTorus, 9);  // 3x3
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(torus.degree(i), 4u);
}

TEST(Topology, ErdosRenyiIsConnected) {
  Rng rng(3);
  const auto t = Topology::make(TopologyKind::kErdosRenyi, 12, &rng, 0.3);
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, FromAdjacencyValidates) {
  std::vector<std::vector<bool>> self = {{true, false}, {false, false}};
  EXPECT_THROW(Topology::from_adjacency(self), std::invalid_argument);
  std::vector<std::vector<bool>> asym = {{false, true}, {false, false}};
  EXPECT_THROW(Topology::from_adjacency(asym), std::invalid_argument);
}

TEST(Topology, NameParsing) {
  EXPECT_EQ(topology_from_string("full"), TopologyKind::kFullyConnected);
  EXPECT_EQ(topology_from_string("ring"), TopologyKind::kRing);
  EXPECT_EQ(topology_from_string("bipartite"), TopologyKind::kBipartite);
  EXPECT_THROW(topology_from_string("hypercube"), std::invalid_argument);
}

// ---- Property sweep: every (topology, size) yields a symmetric doubly
// stochastic Metropolis matrix with spectral gap (Assumption 3). ----

class MixingProperty
    : public ::testing::TestWithParam<std::tuple<TopologyKind, std::size_t>> {};

TEST_P(MixingProperty, MetropolisSatisfiesAssumption3) {
  const auto [kind, m] = GetParam();
  Rng rng(42);
  const auto topo = Topology::make(kind, m, &rng);
  const auto w = MixingMatrix::metropolis(topo);
  EXPECT_TRUE(w.is_symmetric());
  EXPECT_TRUE(w.is_doubly_stochastic());
  EXPECT_GT(w.min_positive_weight(), 0.0);

  const auto info = analyze(w);
  EXPECT_NEAR(info.lambda1, 1.0, 1e-8);
  EXPECT_LT(info.sqrt_rho, 1.0) << "connected graph must mix";
  EXPECT_GE(info.rho, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, MixingProperty,
    ::testing::Combine(::testing::Values(TopologyKind::kFullyConnected, TopologyKind::kRing,
                                         TopologyKind::kBipartite, TopologyKind::kStar),
                       ::testing::Values(std::size_t{4}, std::size_t{6}, std::size_t{10},
                                         std::size_t{15}, std::size_t{20})));

TEST(Mixing, FullyConnectedMetropolisIsUniform) {
  const auto topo = Topology::make(TopologyKind::kFullyConnected, 10);
  const auto w = MixingMatrix::metropolis(topo);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) EXPECT_NEAR(w(i, j), 0.1, 1e-12);
  }
}

TEST(Mixing, UniformNeighborhoodRequiresRegularity) {
  const auto ring = Topology::make(TopologyKind::kRing, 6);
  EXPECT_NO_THROW(MixingMatrix::uniform_neighborhood(ring));
  const auto star = Topology::make(TopologyKind::kStar, 6);
  EXPECT_THROW(MixingMatrix::uniform_neighborhood(star), std::invalid_argument);
}

TEST(Mixing, FromDenseValidates) {
  EXPECT_NO_THROW(MixingMatrix::from_dense({{0.5, 0.5}, {0.5, 0.5}}));
  EXPECT_THROW(MixingMatrix::from_dense({{0.9, 0.2}, {0.2, 0.9}}), std::invalid_argument);
  EXPECT_THROW(MixingMatrix::from_dense({{1.5, -0.5}, {-0.5, 1.5}}), std::invalid_argument);
}

TEST(Mixing, ApplyPreservesMeanAndContracts) {
  const auto topo = Topology::make(TopologyKind::kRing, 8);
  const auto w = MixingMatrix::metropolis(topo);
  std::vector<double> x = {8, -3, 2, 7, -1, 0, 4, -5};
  const double mean0 = 1.5;  // sum = 12, /8
  auto spread = [&](const std::vector<double>& v) {
    double s = 0.0;
    for (double u : v) s += (u - mean0) * (u - mean0);
    return s;
  };
  const double before = spread(x);
  auto y = w.apply(x);
  double mean1 = 0.0;
  for (double u : y) mean1 += u;
  mean1 /= 8.0;
  EXPECT_NEAR(mean1, mean0, 1e-9);
  EXPECT_LT(spread(y), before);
}

TEST(Spectral, JacobiAgreesWithKnownEigenvalues) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const auto eig = symmetric_eigenvalues({{2, 1}, {1, 2}});
  EXPECT_NEAR(eig[0], 3.0, 1e-9);
  EXPECT_NEAR(eig[1], 1.0, 1e-9);
}

TEST(Spectral, FullyConnectedHasRhoZero) {
  const auto topo = Topology::make(TopologyKind::kFullyConnected, 12);
  const auto info = analyze(MixingMatrix::metropolis(topo));
  EXPECT_NEAR(info.rho, 0.0, 1e-9);
  EXPECT_NEAR(info.spectral_gap, 1.0, 1e-6);
}

TEST(Spectral, RingMixesSlowerThanFull) {
  const auto full = analyze(MixingMatrix::metropolis(Topology::make(TopologyKind::kFullyConnected, 10)));
  const auto ring = analyze(MixingMatrix::metropolis(Topology::make(TopologyKind::kRing, 10)));
  const auto bip = analyze(MixingMatrix::metropolis(Topology::make(TopologyKind::kBipartite, 10)));
  EXPECT_GT(ring.rho, bip.rho);
  EXPECT_GT(bip.rho, full.rho - 1e-12);
}

TEST(Spectral, LargerRingsMixSlower) {
  double prev = 0.0;
  for (std::size_t n : {6, 10, 16, 24}) {
    const auto info = analyze(MixingMatrix::metropolis(Topology::make(TopologyKind::kRing, n)));
    EXPECT_GT(info.rho, prev);
    prev = info.rho;
  }
}
