// Properties the theory section (Theorems 1-2, Corollary 1) predicts, checked
// empirically on convex problems where Assumption 1 holds globally:
//   - PDSL's averaged-model gradient norm decreases over rounds;
//   - stronger noise slows convergence (Corollary 1's sigma^2 d term);
//   - the step-size bound of Theorem 2 is computable and positive;
//   - gossip contraction follows the spectral gap of W.

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "graph/spectral.hpp"
#include "nn/model_zoo.hpp"

using namespace pdsl;
using namespace pdsl::core;

namespace {
ExperimentConfig convex_cfg(const std::string& alg, double sigma) {
  ExperimentConfig cfg;
  cfg.algorithm = alg;
  cfg.dataset = "gaussian";
  cfg.model = "logistic";  // convex objective: L-smooth everywhere
  cfg.topology = "full";
  cfg.agents = 5;
  cfg.rounds = 30;
  cfg.train_samples = 500;
  cfg.test_samples = 100;
  cfg.validation_samples = 60;
  cfg.image = 3;
  cfg.mu = 0.3;
  cfg.hp.batch = 16;
  cfg.hp.gamma = 0.05;
  cfg.hp.alpha = 0.5;
  cfg.hp.clip = 5.0;
  cfg.hp.shapley_permutations = 3;
  cfg.hp.validation_batch = 24;
  cfg.sigma_mode = sigma > 0.0 ? "fixed" : "none";
  cfg.hp.sigma = sigma;
  cfg.metrics.test_subsample = 60;
  cfg.metrics.eval_every = 30;
  return cfg;
}
}  // namespace

TEST(Convergence, PdslLossDecreasesOnConvexProblem) {
  const auto res = run_experiment(convex_cfg("pdsl", 0.0));
  const double first = res.series.front().avg_loss;
  const double last = res.series.back().avg_loss;
  EXPECT_LT(last, first * 0.8);
}

TEST(Convergence, StrongerNoiseSlowsConvergence) {
  // Corollary 1: the bound scales with sigma^2 d. Average the tail loss.
  auto tail_loss = [](const ExperimentResult& r) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = r.series.size() - 5; i < r.series.size(); ++i, ++n) {
      acc += r.series[i].avg_loss;
    }
    return acc / static_cast<double>(n);
  };
  const auto clean = run_experiment(convex_cfg("pdsl", 0.0));
  const auto noisy = run_experiment(convex_cfg("pdsl", 1.0));
  EXPECT_LT(tail_loss(clean), tail_loss(noisy));
}

TEST(Convergence, LinearSpeedupProxy_MoreRoundsLowerLoss) {
  auto cfg = convex_cfg("pdsl", 0.05);
  cfg.rounds = 8;
  const auto short_run = run_experiment(cfg);
  cfg.rounds = 40;
  const auto long_run = run_experiment(cfg);
  EXPECT_LT(long_run.series.back().avg_loss, short_run.series.back().avg_loss);
}

TEST(Convergence, Theorem2StepSizeWindowIsComputable) {
  // Eq. 31: the admissible (lower, upper) window for gamma. With alpha close
  // to 1 the lower bound (1-alpha)^2/alpha shrinks and a valid gamma exists.
  const double L = 1.0;
  for (double rho : {0.0, 0.25, 0.81}) {
    const double alpha = 0.9;
    const double sqrt_rho = std::sqrt(rho);
    const double lower = (1 - alpha) * (1 - alpha) / alpha;
    const double upper1 = (1 - alpha) * (1 - sqrt_rho) / (2.0 * std::sqrt(26.0) * L);
    const double term = std::sqrt(52.0 * L * L * (1 - alpha) * (1 - alpha) /
                                      (alpha * alpha * (1 - sqrt_rho) * (1 - sqrt_rho)) +
                                  1.0);
    const double upper2 = alpha * (1 - sqrt_rho) * (1 - sqrt_rho) /
                          (4.0 * 13.0 * L * L) * (-1.0 + term);
    EXPECT_GT(upper1, 0.0);
    EXPECT_GT(upper2, 0.0);
    EXPECT_GE(lower, 0.0);
  }
}

TEST(Convergence, GossipContractionMatchesSpectralGap) {
  // Pure averaging: disagreement norm shrinks by at most sqrt(rho) per round.
  for (auto kind : {graph::TopologyKind::kRing, graph::TopologyKind::kBipartite}) {
    const auto topo = graph::Topology::make(kind, 8);
    const auto w = graph::MixingMatrix::metropolis(topo);
    const auto info = graph::analyze(w);

    Rng rng(3);
    std::vector<double> x(8);
    for (auto& v : x) v = rng.normal(0.0, 1.0);
    double mean = 0.0;
    for (double v : x) mean += v;
    mean /= 8.0;
    auto disagreement = [&](const std::vector<double>& v) {
      double s = 0.0;
      for (double u : v) s += (u - mean) * (u - mean);
      return std::sqrt(s);
    };
    double prev = disagreement(x);
    for (int round = 0; round < 5; ++round) {
      x = w.apply(x);
      const double cur = disagreement(x);
      EXPECT_LE(cur, info.sqrt_rho * prev + 1e-9);
      prev = cur;
    }
  }
}

TEST(Convergence, PdslCompetitiveUnderHeterogeneityAndNoise) {
  // The paper's headline claim, in miniature: on heterogeneous data with DP
  // noise, PDSL's final loss is competitive with (not much worse than, and
  // typically better than) the heterogeneity-oblivious DP-DPSGD. Averaged
  // over seeds to damp mini-batch noise at this tiny scale.
  auto loss_for = [&](const std::string& alg) {
    double acc = 0.0;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      auto cfg = convex_cfg(alg, 0.2);
      cfg.rounds = 25;
      cfg.mu = 0.1;
      cfg.seed = seed;
      acc += run_experiment(cfg).series.back().avg_loss;
    }
    return acc / 3.0;
  };
  const double pdsl_loss = loss_for("pdsl");
  const double dpsgd_loss = loss_for("dp_dpsgd");
  EXPECT_LT(pdsl_loss, dpsgd_loss * 1.25 + 0.05);
}
