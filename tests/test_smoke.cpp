// Build-level smoke test: the full stack links and a tiny PDSL experiment
// runs end to end.

#include <gtest/gtest.h>

#include "core/experiment.hpp"

TEST(Smoke, TinyPdslExperimentRuns) {
  pdsl::core::ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "gaussian";
  cfg.model = "logistic";
  cfg.topology = "ring";
  cfg.agents = 4;
  cfg.rounds = 2;
  cfg.train_samples = 200;
  cfg.test_samples = 60;
  cfg.validation_samples = 40;
  cfg.image = 4;  // gaussian: dim = image^2 = 16
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.1;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 20;
  cfg.sigma_mode = "none";

  const auto res = pdsl::core::run_experiment(cfg);
  EXPECT_EQ(res.series.size(), 2u);
  EXPECT_GT(res.model_dim, 0u);
  EXPECT_GT(res.messages, 0u);
}
