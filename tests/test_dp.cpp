// Differential privacy: clipping, Gaussian mechanism, Theorem-1 calibration,
// composition accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "common/vec_math.hpp"
#include "dp/accountant.hpp"
#include "dp/calibration.hpp"
#include "dp/mechanism.hpp"
#include "graph/mixing.hpp"
#include "graph/spectral.hpp"

using namespace pdsl;
using namespace pdsl::dp;

TEST(Clip, NormAboveThresholdIsScaledOntoSphere) {
  std::vector<float> g = {3.0f, 4.0f};  // norm 5
  const double pre = clip_l2(g, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(l2_norm(g), 1.0, 1e-6);
  EXPECT_NEAR(g[0] / g[1], 0.75, 1e-6);  // direction preserved
}

TEST(Clip, NormBelowThresholdUntouched) {
  std::vector<float> g = {0.3f, 0.4f};  // norm 0.5
  clip_l2(g, 1.0);
  EXPECT_FLOAT_EQ(g[0], 0.3f);
  EXPECT_FLOAT_EQ(g[1], 0.4f);
}

TEST(Clip, RejectsNonPositiveThreshold) {
  std::vector<float> g = {1.0f};
  EXPECT_THROW(clip_l2(g, 0.0), std::invalid_argument);
}

class ClipProperty : public ::testing::TestWithParam<double> {};

TEST_P(ClipProperty, OutputNormNeverExceedsThreshold) {
  const double c = GetParam();
  Rng rng(17);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<float> g(37);
    rng.fill_normal(g, 0.0, 10.0);
    clip_l2(g, c);
    EXPECT_LE(l2_norm(g), c * (1.0 + 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ClipProperty, ::testing::Values(0.1, 0.5, 1.0, 5.0, 50.0));

TEST(Gaussian, NoiseHasRequestedMoments) {
  Rng rng(18);
  const std::size_t d = 20000;
  std::vector<float> g(d, 0.0f);
  add_gaussian_noise(g, 2.0, rng);
  double sum = 0.0, sq = 0.0;
  for (float v : g) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / d, 0.0, 0.08);
  EXPECT_NEAR(sq / d, 4.0, 0.3);
}

TEST(Gaussian, ZeroSigmaIsIdentity) {
  Rng rng(19);
  std::vector<float> g = {1.0f, -2.0f};
  add_gaussian_noise(g, 0.0, rng);
  EXPECT_FLOAT_EQ(g[0], 1.0f);
  EXPECT_FLOAT_EQ(g[1], -2.0f);
}

TEST(Gaussian, SigmaFormulaMatchesDworkRoth) {
  // sigma = sqrt(2 ln(1.25/delta)) * sens / eps
  const double sigma = gaussian_sigma(2.0, 0.5, 1e-3);
  EXPECT_NEAR(sigma, std::sqrt(2.0 * std::log(1250.0)) * 2.0 / 0.5, 1e-9);
}

TEST(Gaussian, SigmaMonotonicity) {
  // More privacy (smaller eps, smaller delta) or more sensitivity -> more noise.
  EXPECT_GT(gaussian_sigma(1.0, 0.1, 1e-3), gaussian_sigma(1.0, 0.3, 1e-3));
  EXPECT_GT(gaussian_sigma(1.0, 0.1, 1e-5), gaussian_sigma(1.0, 0.1, 1e-3));
  EXPECT_GT(gaussian_sigma(2.0, 0.1, 1e-3), gaussian_sigma(1.0, 0.1, 1e-3));
}

TEST(Gaussian, SigmaRejectsBadBudgets) {
  EXPECT_THROW(gaussian_sigma(1.0, 0.0, 1e-3), std::invalid_argument);
  EXPECT_THROW(gaussian_sigma(1.0, 0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(gaussian_sigma(1.0, 0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(gaussian_sigma(-1.0, 0.1, 1e-3), std::invalid_argument);
}

TEST(Privatize, ClipsThenPerturbs) {
  Rng rng(20);
  std::vector<float> g(1000, 10.0f);  // enormous norm
  const auto out = privatize(g, 1.0, 0.01, rng);
  // After clipping to norm 1 and adding tiny noise, norm must be ~1.
  EXPECT_NEAR(l2_norm(out), 1.0, 0.5);
}

namespace {
graph::MixingMatrix full_w(std::size_t m) {
  return graph::MixingMatrix::metropolis(
      graph::Topology::make(graph::TopologyKind::kFullyConnected, m));
}
graph::MixingMatrix ring_w(std::size_t m) {
  return graph::MixingMatrix::metropolis(graph::Topology::make(graph::TopologyKind::kRing, m));
}
}  // namespace

TEST(Theorem1, SigmaMatchesClosedFormOnFullGraph) {
  // Fully connected M=4: w_ij = 1/4 everywhere, closed neighborhood = 4.
  const auto w = full_w(4);
  Theorem1Params p;
  p.epsilon = 0.1;
  p.delta = 1e-3;
  p.clip = 1.0;
  p.phi_hat_min = 0.2;
  // numerator: 2C(1/w_min + sum 1/w) sqrt(2 ln(1.25/delta)) = 2*(4 + 16)*sqrt(...)
  // denominator: phi * eps * sqrt(sum w^-2) = 0.2*0.1*sqrt(4*16)
  const double expected =
      2.0 * (4.0 + 16.0) * std::sqrt(2.0 * std::log(1.25 / 1e-3)) / (0.2 * 0.1 * 8.0);
  EXPECT_NEAR(theorem1_sigma(w, p), expected, 1e-9);
}

TEST(Theorem1, MonotoneInBudgetAndClip) {
  const auto w = full_w(6);
  Theorem1Params base;
  auto sigma_with = [&](auto mod) {
    Theorem1Params p = base;
    mod(p);
    return theorem1_sigma(w, p);
  };
  const double s0 = theorem1_sigma(w, base);
  EXPECT_GT(sigma_with([](auto& p) { p.epsilon = 0.05; }), s0);
  EXPECT_GT(sigma_with([](auto& p) { p.delta = 1e-6; }), s0);
  EXPECT_GT(sigma_with([](auto& p) { p.clip = 2.0; }), s0);
  EXPECT_GT(sigma_with([](auto& p) { p.phi_hat_min = 0.01; }), s0);
}

TEST(Theorem1, SparserGraphsNeedMoreNoise) {
  // Ring weights are 1/3 but the closed neighborhood is small; the dominant
  // term is 1/w_min. Compare ring vs full at equal M.
  Theorem1Params p;
  const double ring_sigma = theorem1_sigma(ring_w(12), p);
  const double full_sigma = theorem1_sigma(full_w(12), p);
  // Full graph: weights 1/12 -> 1/w_min = 12, sum = 12*12; ring: 3 + 9.
  // The full graph actually requires MORE noise under Theorem 1 because its
  // weights are smaller — verify the directional claim computed from the bound.
  EXPECT_GT(full_sigma, ring_sigma);
}

TEST(Theorem1, SensitivityBound) {
  const auto w = full_w(4);
  // 2C/w_min + sum 2C/w_ij = 2*4 + 2*16 = 40 with C=1... (8 + 32)
  EXPECT_NEAR(theorem1_sensitivity(w, 1.0), 8.0 + 32.0, 1e-9);
  EXPECT_THROW(theorem1_sensitivity(w, 0.0), std::invalid_argument);
}

TEST(Theorem1, ParameterValidation) {
  const auto w = full_w(4);
  Theorem1Params p;
  p.epsilon = -1;
  EXPECT_THROW(theorem1_sigma(w, p), std::invalid_argument);
  p = {};
  p.phi_hat_min = 0.0;
  EXPECT_THROW(theorem1_sigma(w, p), std::invalid_argument);
  p = {};
  p.delta = 1.0;
  EXPECT_THROW(theorem1_sigma(w, p), std::invalid_argument);
}

TEST(Accountant, BasicComposition) {
  PrivacyAccountant acc;
  acc.record_rounds(0.1, 1e-5, 10);
  EXPECT_EQ(acc.num_rounds(), 10u);
  EXPECT_NEAR(acc.basic_epsilon(), 1.0, 1e-12);
  EXPECT_NEAR(acc.basic_delta(), 1e-4, 1e-15);
}

TEST(Accountant, AdvancedBeatsBasicForManyRounds) {
  PrivacyAccountant acc;
  acc.record_rounds(0.01, 1e-6, 1000);
  const double adv = acc.advanced_epsilon(1e-5);
  EXPECT_LT(adv, acc.basic_epsilon());
  EXPECT_NEAR(acc.best_epsilon(1e-5), adv, 1e-12);
  EXPECT_NEAR(acc.advanced_delta(1e-5), 1000 * 1e-6 + 1e-5, 1e-12);
}

TEST(Accountant, HeterogeneousRoundsFallBackToBasic) {
  PrivacyAccountant acc;
  acc.record(0.1, 1e-5);
  acc.record(0.2, 1e-5);
  EXPECT_THROW(acc.advanced_epsilon(1e-5), std::logic_error);
  EXPECT_NEAR(acc.best_epsilon(1e-5), 0.3, 1e-12);
}

TEST(Accountant, RejectsBadBudgets) {
  PrivacyAccountant acc;
  EXPECT_THROW(acc.record(0.0, 1e-5), std::invalid_argument);
  EXPECT_THROW(acc.record(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(acc.advanced_epsilon(0.0), std::invalid_argument);
}
