// Optimizers, the min-norm QP solver (DP-CGA's projection) and LR schedules.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/vec_math.hpp"
#include "optim/adam.hpp"
#include "optim/qp.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"

using namespace pdsl;
using namespace pdsl::optim;

TEST(Sgd, PlainStep) {
  std::vector<float> x = {1.0f, 2.0f};
  sgd_step(x, {0.5f, -0.5f}, 0.1);
  EXPECT_FLOAT_EQ(x[0], 0.95f);
  EXPECT_FLOAT_EQ(x[1], 2.05f);
}

TEST(Sgd, MomentumAccumulates) {
  std::vector<float> x = {0.0f};
  std::vector<float> u = {0.0f};
  momentum_step(x, u, {1.0f}, 1.0, 0.5);
  EXPECT_FLOAT_EQ(u[0], 1.0f);
  EXPECT_FLOAT_EQ(x[0], -1.0f);
  momentum_step(x, u, {1.0f}, 1.0, 0.5);
  EXPECT_FLOAT_EQ(u[0], 1.5f);
  EXPECT_FLOAT_EQ(x[0], -2.5f);
}

TEST(Sgd, WeightDecayShrinksParams) {
  std::vector<float> x = {10.0f};
  sgd_step_weight_decay(x, {0.0f}, 0.1, 0.5);
  EXPECT_FLOAT_EQ(x[0], 9.5f);
}

TEST(SimplexProjection, AlreadyOnSimplexIsFixed) {
  const auto p = project_to_simplex({0.2, 0.3, 0.5});
  EXPECT_NEAR(p[0], 0.2, 1e-12);
  EXPECT_NEAR(p[1], 0.3, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

TEST(SimplexProjection, ProjectsOntoSimplex) {
  Rng rng(1);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> v(7);
    for (auto& x : v) x = rng.normal(0.0, 3.0);
    const auto p = project_to_simplex(v);
    double total = 0.0;
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SimplexProjection, DominantCoordinateWins) {
  const auto p = project_to_simplex({10.0, 0.0, 0.0});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(MinNorm, SingleGradientIsItself) {
  MinNormSolver solver;
  const std::vector<std::vector<float>> g = {{3.0f, 4.0f}};
  const auto res = solver.solve(g);
  EXPECT_NEAR(res.lambda[0], 1.0, 1e-9);
  EXPECT_NEAR(res.norm_sq, 25.0, 1e-6);
}

TEST(MinNorm, OpposingGradientsCancel) {
  MinNormSolver solver;
  const std::vector<std::vector<float>> g = {{1.0f, 0.0f}, {-1.0f, 0.0f}};
  const auto res = solver.solve(g);
  EXPECT_NEAR(res.lambda[0], 0.5, 1e-3);
  EXPECT_NEAR(res.norm_sq, 0.0, 1e-6);
}

TEST(MinNorm, AsymmetricOpposition) {
  // g1 = (2,0), g2 = (-1,0): min-norm point of the hull is 0 at lambda=(1/3,2/3).
  MinNormSolver solver;
  const auto res = solver.solve({{2.0f, 0.0f}, {-1.0f, 0.0f}});
  EXPECT_NEAR(res.lambda[0], 1.0 / 3.0, 1e-3);
  EXPECT_NEAR(res.norm_sq, 0.0, 1e-6);
}

TEST(MinNorm, OrthogonalGradients) {
  // Hull of (1,0) and (0,1): min-norm at (0.5, 0.5), norm^2 = 0.5.
  MinNormSolver solver;
  const auto res = solver.solve({{1.0f, 0.0f}, {0.0f, 1.0f}});
  EXPECT_NEAR(res.lambda[0], 0.5, 1e-3);
  EXPECT_NEAR(res.norm_sq, 0.5, 1e-4);
  EXPECT_TRUE(res.converged);
}

TEST(MinNorm, AlignedGradientsPickShortest) {
  // Both point the same way; hull minimum is the shorter vector.
  MinNormSolver solver;
  const auto res = solver.solve({{4.0f, 0.0f}, {1.0f, 0.0f}});
  EXPECT_NEAR(res.lambda[1], 1.0, 1e-2);
  EXPECT_NEAR(res.norm_sq, 1.0, 1e-2);
}

TEST(MinNorm, CombineMatchesLambda) {
  const std::vector<std::vector<float>> g = {{2.0f, 0.0f}, {0.0f, 2.0f}};
  const auto out = combine(g, {0.25, 0.75});
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_FLOAT_EQ(out[1], 1.5f);
  EXPECT_THROW(combine(g, {1.0}), std::invalid_argument);
}

TEST(MinNorm, GramValidation) {
  MinNormSolver solver;
  EXPECT_THROW(solver.solve({}), std::invalid_argument);
  EXPECT_THROW(solver.solve_gram({{1.0, 0.0}}), std::invalid_argument);
}

TEST(AdamW, ConvergesOnQuadratic) {
  // Minimize f(x) = 0.5 ||x - target||^2.
  const std::vector<float> target = {1.0f, -2.0f, 3.0f};
  std::vector<float> x = {0.0f, 0.0f, 0.0f};
  AdamW::Config cfg;
  cfg.lr = 0.05;
  AdamW opt(3, cfg);
  for (int it = 0; it < 500; ++it) {
    std::vector<float> g(3);
    for (std::size_t i = 0; i < 3; ++i) g[i] = x[i] - target[i];
    opt.step(x, g);
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], target[i], 0.05);
  EXPECT_EQ(opt.steps_taken(), 500u);
}

TEST(AdamW, DecoupledWeightDecayShrinks) {
  std::vector<float> x = {10.0f};
  AdamW::Config cfg;
  cfg.lr = 0.1;
  cfg.weight_decay = 0.1;
  AdamW opt(1, cfg);
  for (int it = 0; it < 100; ++it) opt.step(x, {0.0f});
  EXPECT_LT(std::abs(x[0]), 5.0f);  // decays toward 0 with zero gradient
}

TEST(AdamW, ResetAndValidation) {
  AdamW opt(2);
  std::vector<float> x = {1.0f, 1.0f};
  opt.step(x, {1.0f, 1.0f});
  opt.reset();
  EXPECT_EQ(opt.steps_taken(), 0u);
  std::vector<float> bad = {1.0f};
  EXPECT_THROW(opt.step(bad, {1.0f}), std::invalid_argument);
  AdamW::Config cfg;
  cfg.lr = 0.0;
  EXPECT_THROW(AdamW(2, cfg), std::invalid_argument);
  cfg = {};
  cfg.beta1 = 1.0;
  EXPECT_THROW(AdamW(2, cfg), std::invalid_argument);
}

TEST(Schedule, ConstantAndInverseSqrt) {
  ConstantLr c(0.1);
  EXPECT_DOUBLE_EQ(c.at(0), 0.1);
  EXPECT_DOUBLE_EQ(c.at(1000), 0.1);
  InverseSqrtLr inv(1.0);
  EXPECT_DOUBLE_EQ(inv.at(0), 1.0);
  EXPECT_NEAR(inv.at(3), 0.5, 1e-12);
  EXPECT_GT(inv.at(10), inv.at(20));
}

TEST(Schedule, StepDecay) {
  StepDecayLr s(1.0, 10, 0.5);
  EXPECT_DOUBLE_EQ(s.at(9), 1.0);
  EXPECT_DOUBLE_EQ(s.at(10), 0.5);
  EXPECT_DOUBLE_EQ(s.at(25), 0.25);
}

TEST(Schedule, CosineEndpoints) {
  CosineLr c(1.0, 0.1, 100);
  EXPECT_NEAR(c.at(0), 1.0, 1e-12);
  EXPECT_NEAR(c.at(100), 0.1, 1e-12);
  EXPECT_GT(c.at(25), c.at(75));
}

TEST(Schedule, FactoryAndValidation) {
  EXPECT_NO_THROW(make_schedule("constant", 0.1, 100));
  EXPECT_NO_THROW(make_schedule("inv_sqrt", 0.1, 100));
  EXPECT_NO_THROW(make_schedule("step", 0.1, 100));
  EXPECT_NO_THROW(make_schedule("cosine", 0.1, 100));
  EXPECT_THROW(make_schedule("warmup", 0.1, 100), std::invalid_argument);
  EXPECT_THROW(ConstantLr(0.0), std::invalid_argument);
  EXPECT_THROW(StepDecayLr(1.0, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(CosineLr(1.0, 2.0, 10), std::invalid_argument);
}
