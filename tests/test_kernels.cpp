// S-KER differential tests: blocked-vs-naive agreement for the GEMM family
// (bit-identical — the blocked kernels preserve the naive accumulation order)
// and the im2col convolution (tight tolerance — the reduction associates
// differently), NaN/Inf propagation regressions for the removed zero-skip
// shortcuts, and the intra-op determinism contract (bit-identical results at
// any --threads width, including a full PDSL round loop on the blocked
// backend with a CNN model).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "kernels/backend.hpp"
#include "kernels/gemm.hpp"
#include "kernels/im2col.hpp"
#include "nn/conv2d.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

using namespace pdsl;

namespace {

/// Restores the process-wide backend and width the test mutated.
class KernelEnvGuard {
 public:
  KernelEnvGuard() : prev_(kernels::backend()) {}
  ~KernelEnvGuard() {
    kernels::set_backend(prev_);
    runtime::set_global_threads(1);
  }

 private:
  kernels::Backend prev_;
};

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  rng.fill_normal(v, 0.0, 1.0);
  return v;
}

struct GemmShape {
  std::size_t m, k, n;
};

// Odd shapes on purpose: unit dims hit the register-tile remainders, 17/13/19
// straddle the blocking, 0 exercises the empty range, 64s hit full tiles.
const std::vector<GemmShape> kShapes = {
    {1, 1, 1}, {1, 7, 3}, {5, 1, 4}, {4, 6, 1}, {2, 3, 2},
    {17, 13, 19}, {32, 64, 32}, {64, 64, 64}, {0, 5, 7}, {5, 0, 7}, {5, 7, 0},
};

using RawGemm = void (*)(std::size_t, std::size_t, std::size_t, const float*, const float*,
                         float*, bool);

void expect_backends_bit_identical(RawGemm fn, std::size_t m, std::size_t k, std::size_t n,
                                   std::size_t a_elems, std::size_t b_elems,
                                   std::size_t c_elems, bool accumulate) {
  const auto a = random_vec(a_elems, 11);
  const auto b = random_vec(b_elems, 23);
  const auto seed_c = random_vec(c_elems, 37);
  std::vector<float> c_naive = accumulate ? seed_c : std::vector<float>(c_elems, -7.0f);
  std::vector<float> c_blocked = c_naive;
  kernels::set_backend(kernels::Backend::kNaive);
  fn(m, k, n, a.data(), b.data(), c_naive.data(), accumulate);
  kernels::set_backend(kernels::Backend::kBlocked);
  fn(m, k, n, a.data(), b.data(), c_blocked.data(), accumulate);
  EXPECT_EQ(c_naive, c_blocked) << "m=" << m << " k=" << k << " n=" << n
                                << " accumulate=" << accumulate;
}

}  // namespace

TEST(Kernels, BackendRegistry) {
  KernelEnvGuard guard;
  EXPECT_EQ(kernels::backend_from_string("naive"), kernels::Backend::kNaive);
  EXPECT_EQ(kernels::backend_from_string("blocked"), kernels::Backend::kBlocked);
  EXPECT_THROW(static_cast<void>(kernels::backend_from_string("fast")), std::invalid_argument);
  kernels::set_backend(kernels::Backend::kNaive);
  EXPECT_STREQ(kernels::backend_name(kernels::backend()), "naive");
  kernels::set_backend(kernels::Backend::kBlocked);
  EXPECT_STREQ(kernels::backend_name(kernels::backend()), "blocked");
}

TEST(Kernels, SgemmBlockedBitIdenticalToNaive) {
  KernelEnvGuard guard;
  for (const auto& s : kShapes) {
    for (const bool acc : {false, true}) {
      expect_backends_bit_identical(kernels::sgemm, s.m, s.k, s.n, s.m * s.k, s.k * s.n,
                                    s.m * s.n, acc);
    }
  }
}

TEST(Kernels, SgemmTransposeABlockedBitIdenticalToNaive) {
  KernelEnvGuard guard;
  for (const auto& s : kShapes) {
    for (const bool acc : {false, true}) {
      expect_backends_bit_identical(kernels::sgemm_transpose_a, s.m, s.k, s.n, s.m * s.k,
                                    s.m * s.n, s.k * s.n, acc);
    }
  }
}

TEST(Kernels, SgemmTransposeBBlockedBitIdenticalToNaive) {
  KernelEnvGuard guard;
  for (const auto& s : kShapes) {
    for (const bool acc : {false, true}) {
      // sgemm_transpose_b(m, n, k): A(m,n), B(k,n), C(m,k).
      expect_backends_bit_identical(kernels::sgemm_transpose_b, s.m, s.k, s.n, s.m * s.k,
                                    s.n * s.k, s.m * s.n, acc);
    }
  }
}

// The old in-place matmuls skipped the inner loop when an A element was
// exactly 0, silently dropping NaN/Inf propagation from B. Both backends must
// propagate.
TEST(Kernels, MatmulPropagatesNanThroughZeroOperand) {
  KernelEnvGuard guard;
  const float nan = std::nanf("");
  Tensor a(Shape{2, 2});  // all zeros
  Tensor b(Shape{2, 2});
  b.at2(0, 0) = nan;
  for (const auto be : {kernels::Backend::kNaive, kernels::Backend::kBlocked}) {
    kernels::set_backend(be);
    const Tensor c = matmul(a, b);
    EXPECT_TRUE(std::isnan(c.at2(0, 0))) << kernels::backend_name(be);
    EXPECT_TRUE(std::isnan(c.at2(1, 0))) << kernels::backend_name(be);
    const Tensor ct = matmul_transpose_a(a, b);
    EXPECT_TRUE(std::isnan(ct.at2(0, 0))) << kernels::backend_name(be);
    const Tensor inf_b = Tensor(Shape{2, 2}, std::vector<float>(4, HUGE_VALF));
    const Tensor ci = matmul(a, inf_b);
    EXPECT_TRUE(std::isnan(ci.at2(0, 0))) << "0 * inf must be NaN, "
                                          << kernels::backend_name(be);
  }
}

TEST(Kernels, ConvBackwardPropagatesNanThroughZeroGrad) {
  KernelEnvGuard guard;
  for (const auto be : {kernels::Backend::kNaive, kernels::Backend::kBlocked}) {
    kernels::set_backend(be);
    nn::Conv2D conv(1, 1, 1, 0);
    Rng rng(3);
    conv.init(rng);
    conv.params()[0]->value.fill(std::nanf(""));  // weight = NaN
    Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
    (void)conv.forward(x);
    const Tensor zero_grad(Shape{1, 1, 2, 2});
    const Tensor gx = conv.backward(zero_grad);
    // gx += g * w with g == 0, w == NaN: the old skip returned zeros here.
    for (std::size_t i = 0; i < gx.numel(); ++i) {
      EXPECT_TRUE(std::isnan(gx[i])) << kernels::backend_name(be) << " index " << i;
    }
  }
}

TEST(Kernels, Im2colLaysOutPatchesRowMajor) {
  const std::vector<float> x = {1, 2, 3, 4};  // 1 channel, 2x2
  std::vector<float> col(4, -1.0f);
  kernels::im2col(x.data(), 1, 2, 2, 2, 0, col.data());  // k=2, pad=0 -> 1 pixel
  EXPECT_EQ(col, (std::vector<float>{1, 2, 3, 4}));
  // With pad=1 the corner patch sees zeros outside the image.
  std::vector<float> col_pad(4 * 9);
  kernels::im2col(x.data(), 1, 2, 2, 2, 1, col_pad.data());  // oh=ow=3
  // Tap (kr=0,kc=0) row: x[r-1][c-1] over the 3x3 output grid.
  EXPECT_EQ(std::vector<float>(col_pad.begin(), col_pad.begin() + 9),
            (std::vector<float>{0, 0, 0, 0, 1, 2, 0, 3, 4}));
}

TEST(Kernels, Col2imIsAdjointOfIm2col) {
  // <im2col(x), c> == <x, col2im(c)> for random x, c — the standard adjoint
  // identity; validates the scatter against the gather including padding.
  const std::size_t in_ch = 2, ih = 5, iw = 4, k = 3, pad = 1;
  const std::size_t oh = ih + 2 * pad - k + 1, ow = iw + 2 * pad - k + 1;
  const std::size_t cols = in_ch * k * k * oh * ow;
  const auto x = random_vec(in_ch * ih * iw, 5);
  const auto c = random_vec(cols, 7);
  std::vector<float> gathered(cols);
  kernels::im2col(x.data(), in_ch, ih, iw, k, pad, gathered.data());
  std::vector<float> scattered(x.size(), 0.0f);
  kernels::col2im(c.data(), in_ch, ih, iw, k, pad, scattered.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols; ++i) lhs += static_cast<double>(gathered[i]) * c[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * scattered[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-6);
}

namespace {

struct ConvCase {
  std::size_t batch, in_ch, out_ch, k, pad, ih, iw;
};

// k=1, pad>0, non-square, single-row output, empty batch.
const std::vector<ConvCase> kConvCases = {
    {2, 2, 3, 1, 0, 5, 7},   // 1x1 kernel
    {3, 1, 8, 3, 1, 9, 9},   // MNIST-style "same" conv
    {2, 3, 4, 5, 2, 8, 6},   // CIFAR-style, non-square
    {1, 2, 2, 3, 0, 3, 11},  // oh == 1: single output row
    {2, 1, 2, 3, 2, 1, 1},   // pad > spatial extent
    {0, 1, 2, 3, 1, 4, 4},   // empty batch
};

void run_conv_both_backends(const ConvCase& cc, Tensor* fwd_out, Tensor* gx_out,
                            std::vector<std::vector<float>>* grads,
                            kernels::Backend backend) {
  kernels::set_backend(backend);
  nn::Conv2D conv(cc.in_ch, cc.out_ch, cc.k, cc.pad);
  Rng rng(17);
  conv.init(rng);
  Tensor x(Shape{cc.batch, cc.in_ch, cc.ih, cc.iw},
           random_vec(cc.batch * cc.in_ch * cc.ih * cc.iw, 29));
  const Tensor y = conv.forward(x);
  Tensor gy(y.shape(), random_vec(y.numel(), 31));
  const Tensor gx = conv.backward(gy);
  *fwd_out = y;
  *gx_out = gx;
  grads->clear();
  for (nn::Param* p : conv.params()) grads->push_back(p->grad.vec());
}

}  // namespace

TEST(Kernels, ConvIm2colAgreesWithDirectAcrossShapes) {
  KernelEnvGuard guard;
  for (const auto& cc : kConvCases) {
    Tensor y_naive, gx_naive, y_blocked, gx_blocked;
    std::vector<std::vector<float>> g_naive, g_blocked;
    run_conv_both_backends(cc, &y_naive, &gx_naive, &g_naive, kernels::Backend::kNaive);
    run_conv_both_backends(cc, &y_blocked, &gx_blocked, &g_blocked,
                           kernels::Backend::kBlocked);
    ASSERT_EQ(y_naive.shape(), y_blocked.shape());
    const double tol = 1e-4;
    for (std::size_t i = 0; i < y_naive.numel(); ++i) {
      ASSERT_NEAR(y_naive[i], y_blocked[i], tol) << "forward, k=" << cc.k;
    }
    for (std::size_t i = 0; i < gx_naive.numel(); ++i) {
      ASSERT_NEAR(gx_naive[i], gx_blocked[i], tol) << "grad_input, k=" << cc.k;
    }
    ASSERT_EQ(g_naive.size(), g_blocked.size());
    for (std::size_t p = 0; p < g_naive.size(); ++p) {
      ASSERT_EQ(g_naive[p].size(), g_blocked[p].size());
      for (std::size_t i = 0; i < g_naive[p].size(); ++i) {
        ASSERT_NEAR(g_naive[p][i], g_blocked[p][i], tol) << "param " << p << ", k=" << cc.k;
      }
    }
  }
}

TEST(Kernels, ArenaReusesBuffersAcrossBatches) {
  KernelEnvGuard guard;
  kernels::set_backend(kernels::Backend::kBlocked);
  nn::Conv2D conv(2, 4, 3, 1);
  Rng rng(9);
  conv.init(rng);
  Tensor x(Shape{4, 2, 8, 8}, random_vec(4 * 2 * 8 * 8, 41));
  const Tensor y = conv.forward(x);
  Tensor gy(y.shape(), random_vec(y.numel(), 43));
  (void)conv.backward(gy);
  // Arena test via behavior: repeated forward/backward must not change
  // results (scratch reuse is invisible) — run twice and compare.
  nn::Conv2D conv2(2, 4, 3, 1);
  Rng rng2(9);
  conv2.init(rng2);
  const Tensor y1 = conv2.forward(x);
  const Tensor y2 = conv2.forward(x);
  EXPECT_EQ(y1.vec(), y2.vec());
  EXPECT_EQ(y1.vec(), y.vec());
}

TEST(Kernels, IntraOpGemmBitIdenticalAcrossWidths) {
  KernelEnvGuard guard;
  kernels::set_backend(kernels::Backend::kBlocked);
  const std::size_t m = 37, k = 53, n = 41;
  const auto a = random_vec(m * k, 51);
  const auto b = random_vec(k * n, 53);
  std::vector<std::vector<float>> results;
  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    runtime::set_global_threads(width);
    std::vector<float> c(m * n);
    kernels::sgemm(m, k, n, a.data(), b.data(), c.data());
    std::vector<float> ct(k * n);
    kernels::sgemm_transpose_a(m, k, n, a.data(), b.data(), ct.data());
    std::vector<float> cb(m * m);
    kernels::sgemm_transpose_b(m, k, m, a.data(), a.data(), cb.data());
    c.insert(c.end(), ct.begin(), ct.end());
    c.insert(c.end(), cb.begin(), cb.end());
    results.push_back(std::move(c));
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(Kernels, KernelsInsideParallelForDegradeToSequential) {
  KernelEnvGuard guard;
  kernels::set_backend(kernels::Backend::kBlocked);
  runtime::set_global_threads(4);
  const std::size_t m = 16, k = 8, n = 8;
  const auto a = random_vec(m * k, 61);
  const auto b = random_vec(k * n, 67);
  std::vector<float> reference(m * n);
  kernels::sgemm(m, k, n, a.data(), b.data(), reference.data());
  // From inside a parallel_for body the kernel must not attempt nested
  // parallelism (which throws) and must produce the same bits.
  std::vector<std::vector<float>> per_slot(4, std::vector<float>(m * n));
  runtime::parallel_for(0, 4, 1, [&](std::size_t i) {
    kernels::sgemm(m, k, n, a.data(), b.data(), per_slot[i].data());
  });
  for (const auto& c : per_slot) EXPECT_EQ(c, reference);
}

TEST(Kernels, PdslRoundLoopBitIdenticalAcrossWidthsOnBlockedBackend) {
  KernelEnvGuard guard;
  core::ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "mnist_like";
  cfg.model = "mnist_cnn";
  cfg.backend = "blocked";
  cfg.agents = 4;
  cfg.rounds = 2;
  cfg.train_samples = 160;
  cfg.test_samples = 60;
  cfg.validation_samples = 40;
  cfg.image = 10;
  cfg.hp.batch = 8;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.metrics.eval_every = 0;
  cfg.seed = 7;
  cfg.threads = 1;
  const auto seq = core::run_experiment(cfg);
  cfg.threads = 4;
  const auto par = core::run_experiment(cfg);
  ASSERT_EQ(seq.average_model.size(), par.average_model.size());
  EXPECT_EQ(seq.average_model, par.average_model);
  ASSERT_EQ(seq.series.size(), par.series.size());
  for (std::size_t i = 0; i < seq.series.size(); ++i) {
    EXPECT_EQ(seq.series[i].avg_loss, par.series[i].avg_loss);
  }
}
