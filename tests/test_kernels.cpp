// S-KER differential tests: blocked-vs-naive agreement for the GEMM family
// (bit-identical — the blocked kernels preserve the naive accumulation order)
// and the im2col convolution (tight tolerance — the reduction associates
// differently), NaN/Inf propagation regressions for the removed zero-skip
// shortcuts, and the intra-op determinism contract (bit-identical results at
// any --threads width, including a full PDSL round loop on the blocked
// backend with a CNN model).
//
// S-VEC additions: randomized-shape fuzz of the vectorized tier against naive
// within the documented tolerance band (plus ragged tails, unit/empty dims,
// NaN/Inf propagation), bit-stability of the vectorized tier across --threads
// widths and across reruns, and table-driven unit tests pinning the
// resolve_backend() auto-dispatch thresholds.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "kernels/backend.hpp"
#include "kernels/gemm.hpp"
#include "kernels/im2col.hpp"
#include "nn/conv2d.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

using namespace pdsl;

namespace {

/// Restores the process-wide backend and width the test mutated.
class KernelEnvGuard {
 public:
  KernelEnvGuard() : prev_(kernels::backend()) {}
  ~KernelEnvGuard() {
    kernels::set_backend(prev_);
    runtime::set_global_threads(1);
  }

 private:
  kernels::Backend prev_;
};

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  rng.fill_normal(v, 0.0, 1.0);
  return v;
}

struct GemmShape {
  std::size_t m, k, n;
};

// Odd shapes on purpose: unit dims hit the register-tile remainders, 17/13/19
// straddle the blocking, 0 exercises the empty range, 64s hit full tiles.
const std::vector<GemmShape> kShapes = {
    {1, 1, 1}, {1, 7, 3}, {5, 1, 4}, {4, 6, 1}, {2, 3, 2},
    {17, 13, 19}, {32, 64, 32}, {64, 64, 64}, {0, 5, 7}, {5, 0, 7}, {5, 7, 0},
};

using RawGemm = void (*)(std::size_t, std::size_t, std::size_t, const float*, const float*,
                         float*, bool);

void expect_backends_bit_identical(RawGemm fn, std::size_t m, std::size_t k, std::size_t n,
                                   std::size_t a_elems, std::size_t b_elems,
                                   std::size_t c_elems, bool accumulate) {
  const auto a = random_vec(a_elems, 11);
  const auto b = random_vec(b_elems, 23);
  const auto seed_c = random_vec(c_elems, 37);
  std::vector<float> c_naive = accumulate ? seed_c : std::vector<float>(c_elems, -7.0f);
  std::vector<float> c_blocked = c_naive;
  kernels::set_backend(kernels::Backend::kNaive);
  fn(m, k, n, a.data(), b.data(), c_naive.data(), accumulate);
  kernels::set_backend(kernels::Backend::kBlocked);
  fn(m, k, n, a.data(), b.data(), c_blocked.data(), accumulate);
  EXPECT_EQ(c_naive, c_blocked) << "m=" << m << " k=" << k << " n=" << n
                                << " accumulate=" << accumulate;
}

}  // namespace

TEST(Kernels, BackendRegistry) {
  KernelEnvGuard guard;
  EXPECT_EQ(kernels::backend_from_string("naive"), kernels::Backend::kNaive);
  EXPECT_EQ(kernels::backend_from_string("blocked"), kernels::Backend::kBlocked);
  EXPECT_EQ(kernels::backend_from_string("vectorized"), kernels::Backend::kVectorized);
  EXPECT_EQ(kernels::backend_from_string("auto"), kernels::Backend::kAuto);
  EXPECT_THROW(static_cast<void>(kernels::backend_from_string("fast")), std::invalid_argument);
  for (const auto be : {kernels::Backend::kNaive, kernels::Backend::kBlocked,
                        kernels::Backend::kVectorized, kernels::Backend::kAuto}) {
    kernels::set_backend(be);
    EXPECT_EQ(kernels::backend_from_string(kernels::backend_name(kernels::backend())), be);
  }
}

TEST(Kernels, SgemmBlockedBitIdenticalToNaive) {
  KernelEnvGuard guard;
  for (const auto& s : kShapes) {
    for (const bool acc : {false, true}) {
      expect_backends_bit_identical(kernels::sgemm, s.m, s.k, s.n, s.m * s.k, s.k * s.n,
                                    s.m * s.n, acc);
    }
  }
}

TEST(Kernels, SgemmTransposeABlockedBitIdenticalToNaive) {
  KernelEnvGuard guard;
  for (const auto& s : kShapes) {
    for (const bool acc : {false, true}) {
      expect_backends_bit_identical(kernels::sgemm_transpose_a, s.m, s.k, s.n, s.m * s.k,
                                    s.m * s.n, s.k * s.n, acc);
    }
  }
}

TEST(Kernels, SgemmTransposeBBlockedBitIdenticalToNaive) {
  KernelEnvGuard guard;
  for (const auto& s : kShapes) {
    for (const bool acc : {false, true}) {
      // sgemm_transpose_b(m, n, k): A(m,n), B(k,n), C(m,k).
      expect_backends_bit_identical(kernels::sgemm_transpose_b, s.m, s.k, s.n, s.m * s.k,
                                    s.n * s.k, s.m * s.n, acc);
    }
  }
}

// The old in-place matmuls skipped the inner loop when an A element was
// exactly 0, silently dropping NaN/Inf propagation from B. Both backends must
// propagate.
TEST(Kernels, MatmulPropagatesNanThroughZeroOperand) {
  KernelEnvGuard guard;
  const float nan = std::nanf("");
  Tensor a(Shape{2, 2});  // all zeros
  Tensor b(Shape{2, 2});
  b.at2(0, 0) = nan;
  for (const auto be : {kernels::Backend::kNaive, kernels::Backend::kBlocked,
                        kernels::Backend::kVectorized}) {
    kernels::set_backend(be);
    const Tensor c = matmul(a, b);
    EXPECT_TRUE(std::isnan(c.at2(0, 0))) << kernels::backend_name(be);
    EXPECT_TRUE(std::isnan(c.at2(1, 0))) << kernels::backend_name(be);
    const Tensor ct = matmul_transpose_a(a, b);
    EXPECT_TRUE(std::isnan(ct.at2(0, 0))) << kernels::backend_name(be);
    const Tensor inf_b = Tensor(Shape{2, 2}, std::vector<float>(4, HUGE_VALF));
    const Tensor ci = matmul(a, inf_b);
    EXPECT_TRUE(std::isnan(ci.at2(0, 0))) << "0 * inf must be NaN, "
                                          << kernels::backend_name(be);
  }
}

TEST(Kernels, ConvBackwardPropagatesNanThroughZeroGrad) {
  KernelEnvGuard guard;
  for (const auto be : {kernels::Backend::kNaive, kernels::Backend::kBlocked,
                        kernels::Backend::kVectorized}) {
    kernels::set_backend(be);
    nn::Conv2D conv(1, 1, 1, 0);
    Rng rng(3);
    conv.init(rng);
    conv.params()[0]->value.fill(std::nanf(""));  // weight = NaN
    Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
    (void)conv.forward(x);
    const Tensor zero_grad(Shape{1, 1, 2, 2});
    const Tensor gx = conv.backward(zero_grad);
    // gx += g * w with g == 0, w == NaN: the old skip returned zeros here.
    for (std::size_t i = 0; i < gx.numel(); ++i) {
      EXPECT_TRUE(std::isnan(gx[i])) << kernels::backend_name(be) << " index " << i;
    }
  }
}

TEST(Kernels, Im2colLaysOutPatchesRowMajor) {
  const std::vector<float> x = {1, 2, 3, 4};  // 1 channel, 2x2
  std::vector<float> col(4, -1.0f);
  kernels::im2col(x.data(), 1, 2, 2, 2, 0, col.data());  // k=2, pad=0 -> 1 pixel
  EXPECT_EQ(col, (std::vector<float>{1, 2, 3, 4}));
  // With pad=1 the corner patch sees zeros outside the image.
  std::vector<float> col_pad(4 * 9);
  kernels::im2col(x.data(), 1, 2, 2, 2, 1, col_pad.data());  // oh=ow=3
  // Tap (kr=0,kc=0) row: x[r-1][c-1] over the 3x3 output grid.
  EXPECT_EQ(std::vector<float>(col_pad.begin(), col_pad.begin() + 9),
            (std::vector<float>{0, 0, 0, 0, 1, 2, 0, 3, 4}));
}

TEST(Kernels, Col2imIsAdjointOfIm2col) {
  // <im2col(x), c> == <x, col2im(c)> for random x, c — the standard adjoint
  // identity; validates the scatter against the gather including padding.
  const std::size_t in_ch = 2, ih = 5, iw = 4, k = 3, pad = 1;
  const std::size_t oh = ih + 2 * pad - k + 1, ow = iw + 2 * pad - k + 1;
  const std::size_t cols = in_ch * k * k * oh * ow;
  const auto x = random_vec(in_ch * ih * iw, 5);
  const auto c = random_vec(cols, 7);
  std::vector<float> gathered(cols);
  kernels::im2col(x.data(), in_ch, ih, iw, k, pad, gathered.data());
  std::vector<float> scattered(x.size(), 0.0f);
  kernels::col2im(c.data(), in_ch, ih, iw, k, pad, scattered.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols; ++i) lhs += static_cast<double>(gathered[i]) * c[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * scattered[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-6);
}

namespace {

struct ConvCase {
  std::size_t batch, in_ch, out_ch, k, pad, ih, iw;
};

// k=1, pad>0, non-square, single-row output, empty batch.
const std::vector<ConvCase> kConvCases = {
    {2, 2, 3, 1, 0, 5, 7},   // 1x1 kernel
    {3, 1, 8, 3, 1, 9, 9},   // MNIST-style "same" conv
    {2, 3, 4, 5, 2, 8, 6},   // CIFAR-style, non-square
    {1, 2, 2, 3, 0, 3, 11},  // oh == 1: single output row
    {2, 1, 2, 3, 2, 1, 1},   // pad > spatial extent
    {0, 1, 2, 3, 1, 4, 4},   // empty batch
};

void run_conv_both_backends(const ConvCase& cc, Tensor* fwd_out, Tensor* gx_out,
                            std::vector<std::vector<float>>* grads,
                            kernels::Backend backend) {
  kernels::set_backend(backend);
  nn::Conv2D conv(cc.in_ch, cc.out_ch, cc.k, cc.pad);
  Rng rng(17);
  conv.init(rng);
  Tensor x(Shape{cc.batch, cc.in_ch, cc.ih, cc.iw},
           random_vec(cc.batch * cc.in_ch * cc.ih * cc.iw, 29));
  const Tensor y = conv.forward(x);
  Tensor gy(y.shape(), random_vec(y.numel(), 31));
  const Tensor gx = conv.backward(gy);
  *fwd_out = y;
  *gx_out = gx;
  grads->clear();
  for (nn::Param* p : conv.params()) grads->push_back(p->grad.vec());
}

}  // namespace

TEST(Kernels, ConvIm2colAgreesWithDirectAcrossShapes) {
  KernelEnvGuard guard;
  for (const auto& cc : kConvCases) {
    Tensor y_naive, gx_naive, y_blocked, gx_blocked;
    std::vector<std::vector<float>> g_naive, g_blocked;
    run_conv_both_backends(cc, &y_naive, &gx_naive, &g_naive, kernels::Backend::kNaive);
    run_conv_both_backends(cc, &y_blocked, &gx_blocked, &g_blocked,
                           kernels::Backend::kBlocked);
    ASSERT_EQ(y_naive.shape(), y_blocked.shape());
    const double tol = 1e-4;
    for (std::size_t i = 0; i < y_naive.numel(); ++i) {
      ASSERT_NEAR(y_naive[i], y_blocked[i], tol) << "forward, k=" << cc.k;
    }
    for (std::size_t i = 0; i < gx_naive.numel(); ++i) {
      ASSERT_NEAR(gx_naive[i], gx_blocked[i], tol) << "grad_input, k=" << cc.k;
    }
    ASSERT_EQ(g_naive.size(), g_blocked.size());
    for (std::size_t p = 0; p < g_naive.size(); ++p) {
      ASSERT_EQ(g_naive[p].size(), g_blocked[p].size());
      for (std::size_t i = 0; i < g_naive[p].size(); ++i) {
        ASSERT_NEAR(g_naive[p][i], g_blocked[p][i], tol) << "param " << p << ", k=" << cc.k;
      }
    }
  }
}

TEST(Kernels, ArenaReusesBuffersAcrossBatches) {
  KernelEnvGuard guard;
  kernels::set_backend(kernels::Backend::kBlocked);
  nn::Conv2D conv(2, 4, 3, 1);
  Rng rng(9);
  conv.init(rng);
  Tensor x(Shape{4, 2, 8, 8}, random_vec(4 * 2 * 8 * 8, 41));
  const Tensor y = conv.forward(x);
  Tensor gy(y.shape(), random_vec(y.numel(), 43));
  (void)conv.backward(gy);
  // Arena test via behavior: repeated forward/backward must not change
  // results (scratch reuse is invisible) — run twice and compare.
  nn::Conv2D conv2(2, 4, 3, 1);
  Rng rng2(9);
  conv2.init(rng2);
  const Tensor y1 = conv2.forward(x);
  const Tensor y2 = conv2.forward(x);
  EXPECT_EQ(y1.vec(), y2.vec());
  EXPECT_EQ(y1.vec(), y.vec());
}

TEST(Kernels, IntraOpGemmBitIdenticalAcrossWidths) {
  KernelEnvGuard guard;
  kernels::set_backend(kernels::Backend::kBlocked);
  const std::size_t m = 37, k = 53, n = 41;
  const auto a = random_vec(m * k, 51);
  const auto b = random_vec(k * n, 53);
  std::vector<std::vector<float>> results;
  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    runtime::set_global_threads(width);
    std::vector<float> c(m * n);
    kernels::sgemm(m, k, n, a.data(), b.data(), c.data());
    std::vector<float> ct(k * n);
    kernels::sgemm_transpose_a(m, k, n, a.data(), b.data(), ct.data());
    std::vector<float> cb(m * m);
    kernels::sgemm_transpose_b(m, k, m, a.data(), a.data(), cb.data());
    c.insert(c.end(), ct.begin(), ct.end());
    c.insert(c.end(), cb.begin(), cb.end());
    results.push_back(std::move(c));
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(Kernels, KernelsInsideParallelForDegradeToSequential) {
  KernelEnvGuard guard;
  kernels::set_backend(kernels::Backend::kBlocked);
  runtime::set_global_threads(4);
  const std::size_t m = 16, k = 8, n = 8;
  const auto a = random_vec(m * k, 61);
  const auto b = random_vec(k * n, 67);
  std::vector<float> reference(m * n);
  kernels::sgemm(m, k, n, a.data(), b.data(), reference.data());
  // From inside a parallel_for body the kernel must not attempt nested
  // parallelism (which throws) and must produce the same bits.
  std::vector<std::vector<float>> per_slot(4, std::vector<float>(m * n));
  runtime::parallel_for(0, 4, 1, [&](std::size_t i) {
    kernels::sgemm(m, k, n, a.data(), b.data(), per_slot[i].data());
  });
  for (const auto& c : per_slot) EXPECT_EQ(c, reference);
}

TEST(Kernels, PdslRoundLoopBitIdenticalAcrossWidthsOnBlockedBackend) {
  KernelEnvGuard guard;
  core::ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "mnist_like";
  cfg.model = "mnist_cnn";
  cfg.backend = "blocked";
  cfg.agents = 4;
  cfg.rounds = 2;
  cfg.train_samples = 160;
  cfg.test_samples = 60;
  cfg.validation_samples = 40;
  cfg.image = 10;
  cfg.hp.batch = 8;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.metrics.eval_every = 0;
  cfg.seed = 7;
  cfg.threads = 1;
  const auto seq = core::run_experiment(cfg);
  cfg.threads = 4;
  const auto par = core::run_experiment(cfg);
  ASSERT_EQ(seq.average_model.size(), par.average_model.size());
  EXPECT_EQ(seq.average_model, par.average_model);
  ASSERT_EQ(seq.series.size(), par.series.size());
  for (std::size_t i = 0; i < seq.series.size(); ++i) {
    EXPECT_EQ(seq.series[i].avg_loss, par.series[i].avg_loss);
  }
}

// ---------------------------------------------------------------------------
// S-VEC: the vectorized fast-math tier. Not bit-identical to naive/blocked —
// it reassociates reductions (fixed lanes + fixed fold) and compiles with FMA
// contraction — so the differential contract is a tolerance band:
//   |got - want| <= abs + rel * |want|
// with abs scaled by the reduction depth (absolute error of a reassociated
// float sum grows with the number of terms, and cancellation makes a purely
// relative band meaningless near zero).
// ---------------------------------------------------------------------------

namespace {

void expect_within_band(const std::vector<float>& got, const std::vector<float>& want,
                        std::size_t depth, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  const float abs_tol = 1e-5f + 1e-6f * static_cast<float>(depth);
  const float rel_tol = 2e-4f;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float band = abs_tol + rel_tol * std::abs(want[i]);
    ASSERT_NEAR(got[i], want[i], band) << what << " element " << i << " depth " << depth;
  }
}

/// Run `fn` under `be` on fresh copies of the inputs and return C.
std::vector<float> run_gemm(RawGemm fn, kernels::Backend be, std::size_t m, std::size_t k,
                            std::size_t n, const std::vector<float>& a,
                            const std::vector<float>& b, const std::vector<float>& c_seed,
                            bool accumulate) {
  std::vector<float> c = c_seed;
  kernels::set_backend(be);
  fn(m, k, n, a.data(), b.data(), c.data(), accumulate);
  return c;
}

struct VecCase {
  const char* name;
  RawGemm fn;
  // (a, b, c) element counts and the reduction depth as functions of (m,k,n).
  std::size_t a_elems, b_elems, c_elems, depth;
};

std::vector<VecCase> vec_cases(std::size_t m, std::size_t k, std::size_t n) {
  return {
      {"sgemm", kernels::sgemm, m * k, k * n, m * n, k},
      {"sgemm_transpose_a", kernels::sgemm_transpose_a, m * k, m * n, k * n, m},
      // sgemm_transpose_b(m, n, k): A(m,n), B(k,n), C(m,k), reduces over n.
      {"sgemm_transpose_b", kernels::sgemm_transpose_b, m * k, n * k, m * n, k},
  };
}

}  // namespace

// Deterministic pseudo-random shape fuzz: every GEMM layout, both accumulate
// modes, shapes drawn to cover full tiles, ragged row/column tails, unit and
// zero dims. The vectorized result must sit inside the band around naive.
TEST(KernelsVec, FuzzRandomShapesWithinBandOfNaive) {
  KernelEnvGuard guard;
  Rng shape_rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    // Bias toward small shapes but include tile-straddling ones; every 8th
    // trial pins a dimension to 0 or 1 to hit the degenerate paths.
    auto dim = [&](int salt) {
      const auto r = shape_rng.uniform_int(0, 96);
      if (trial % 8 == salt) return static_cast<std::size_t>(trial % 16 == salt ? 0 : 1);
      return static_cast<std::size_t>(r);
    };
    const std::size_t m = dim(0), k = dim(1), n = dim(2);
    for (const auto& vc : vec_cases(m, k, n)) {
      for (const bool acc : {false, true}) {
        const auto a = random_vec(vc.a_elems, 101 + trial);
        const auto b = random_vec(vc.b_elems, 203 + trial);
        const auto c_seed = acc ? random_vec(vc.c_elems, 307 + trial)
                                : std::vector<float>(vc.c_elems, -7.0f);
        const auto want =
            run_gemm(vc.fn, kernels::Backend::kNaive, m, k, n, a, b, c_seed, acc);
        const auto got =
            run_gemm(vc.fn, kernels::Backend::kVectorized, m, k, n, a, b, c_seed, acc);
        expect_within_band(got, want, vc.depth, vc.name);
      }
    }
  }
}

// The fixed shape table (unit dims, tile-straddling 17/13/19, zero dims)
// through the vectorized tier: same band contract, plus the empty-range
// behavior (k == 0 with accumulate=false must still zero C).
TEST(KernelsVec, FixedShapeTableWithinBandOfNaive) {
  KernelEnvGuard guard;
  for (const auto& s : kShapes) {
    for (const auto& vc : vec_cases(s.m, s.k, s.n)) {
      for (const bool acc : {false, true}) {
        const auto a = random_vec(vc.a_elems, 11);
        const auto b = random_vec(vc.b_elems, 23);
        const auto c_seed =
            acc ? random_vec(vc.c_elems, 37) : std::vector<float>(vc.c_elems, -7.0f);
        const auto want =
            run_gemm(vc.fn, kernels::Backend::kNaive, s.m, s.k, s.n, a, b, c_seed, acc);
        const auto got = run_gemm(vc.fn, kernels::Backend::kVectorized, s.m, s.k, s.n, a,
                                  b, c_seed, acc);
        expect_within_band(got, want, vc.depth, vc.name);
      }
    }
  }
}

// Determinism contract of the fast-math tier: banded against the reference,
// but bit-identical to ITSELF across reruns and across --threads widths (the
// lane split and reduction tree depend only on the reduction length, and the
// intra-op partition hands out complete output rows).
TEST(KernelsVec, VectorizedBitIdenticalAcrossWidthsAndReruns) {
  KernelEnvGuard guard;
  kernels::set_backend(kernels::Backend::kVectorized);
  const std::size_t m = 37, k = 53, n = 41;
  const auto a = random_vec(m * k, 71);
  const auto b = random_vec(k * n, 73);
  std::vector<std::vector<float>> results;
  for (const std::size_t width : {std::size_t{1}, std::size_t{1}, std::size_t{4}}) {
    runtime::set_global_threads(width);
    std::vector<float> c(m * n);
    kernels::sgemm(m, k, n, a.data(), b.data(), c.data());
    std::vector<float> ct(k * n);
    kernels::sgemm_transpose_a(m, k, n, a.data(), b.data(), ct.data());
    std::vector<float> cb(m * m);
    kernels::sgemm_transpose_b(m, k, m, a.data(), a.data(), cb.data());
    c.insert(c.end(), ct.begin(), ct.end());
    c.insert(c.end(), cb.begin(), cb.end());
    results.push_back(std::move(c));
  }
  EXPECT_EQ(results[0], results[1]) << "rerun at width 1";
  EXPECT_EQ(results[0], results[2]) << "width 1 vs width 4";
}

// Inf * 0 and NaN must survive the lane fold and the register tiles: seed a
// single pathological element at every alignment class within the first
// kVecColTile columns and check it lands in (exactly) the affected outputs.
TEST(KernelsVec, VectorizedPropagatesNanAndInfAtEveryLaneOffset) {
  KernelEnvGuard guard;
  kernels::set_backend(kernels::Backend::kVectorized);
  const std::size_t m = 5, k = 9, n = 11;
  for (std::size_t poison_col = 0; poison_col < n; ++poison_col) {
    auto a = random_vec(m * k, 81);
    auto b = random_vec(k * n, 83);
    b[3 * n + poison_col] = std::nanf("");
    std::vector<float> c(m * n);
    kernels::sgemm(m, k, n, a.data(), b.data(), c.data());
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(std::isnan(c[i * n + j]), j == poison_col)
            << "i=" << i << " j=" << j << " poison_col=" << poison_col;
      }
    }
  }
  // 0 * inf -> NaN through the dot-product kernel (no zero-skip shortcuts).
  std::vector<float> az(4 * 8, 0.0f);
  std::vector<float> binf(4 * 8, HUGE_VALF);
  std::vector<float> cd(4 * 4);
  kernels::sgemm_transpose_b(4, 8, 4, az.data(), binf.data(), cd.data(), false);
  for (const float v : cd) EXPECT_TRUE(std::isnan(v));
}

// Conv2D on the vectorized backend follows the im2col path; agreement with
// the naive direct convolution is banded like the underlying GEMMs.
TEST(KernelsVec, ConvVectorizedAgreesWithDirectWithinBand) {
  KernelEnvGuard guard;
  for (const auto& cc : kConvCases) {
    Tensor y_naive, gx_naive, y_vec, gx_vec;
    std::vector<std::vector<float>> g_naive, g_vec;
    run_conv_both_backends(cc, &y_naive, &gx_naive, &g_naive, kernels::Backend::kNaive);
    run_conv_both_backends(cc, &y_vec, &gx_vec, &g_vec, kernels::Backend::kVectorized);
    ASSERT_EQ(y_naive.shape(), y_vec.shape());
    const std::size_t depth = cc.in_ch * cc.k * cc.k;
    expect_within_band(y_vec.vec(), y_naive.vec(), depth, "conv forward");
    expect_within_band(gx_vec.vec(), gx_naive.vec(), depth, "conv grad_input");
    ASSERT_EQ(g_naive.size(), g_vec.size());
    for (std::size_t p = 0; p < g_naive.size(); ++p) {
      expect_within_band(g_vec[p], g_naive[p], cc.batch * cc.ih * cc.iw, "conv param grad");
    }
  }
}

// ---------------------------------------------------------------------------
// resolve_backend() auto-dispatch: table-driven boundary pins. The thresholds
// are part of the public contract (backend.hpp documents them); moving one is
// an intentional change that must edit this table.
// ---------------------------------------------------------------------------

TEST(KernelsVec, ResolveBackendPinnedBackendsPassThrough) {
  for (const auto be : {kernels::Backend::kNaive, kernels::Backend::kBlocked,
                        kernels::Backend::kVectorized}) {
    // Pinning wins regardless of shape, including degenerate ones.
    EXPECT_EQ(kernels::resolve_backend(be, 0, 0, 0), be);
    EXPECT_EQ(kernels::resolve_backend(be, 1, 1, 1), be);
    EXPECT_EQ(kernels::resolve_backend(be, 1000, 1000, 1000), be);
  }
}

TEST(KernelsVec, ResolveBackendAutoThresholdTable) {
  using kernels::Backend;
  const auto resolve = [](std::size_t rows, std::size_t depth, std::size_t cols) {
    return kernels::resolve_backend(Backend::kAuto, rows, depth, cols);
  };
  struct Row {
    std::size_t rows, depth, cols;
    Backend want;
    const char* why;
  };
  static_assert(kernels::kAutoNaiveMaxFlops == 4096, "update the table below");
  static_assert(kernels::kAutoVecMinDepth == 16, "update the table below");
  static_assert(kernels::kAutoVecMinCols == 8, "update the table below");
  const Row table[] = {
      // Tiny-flops boundary: <= 4096 multiply-adds goes naive.
      {16, 16, 16, Backend::kNaive, "16*16*16 == 4096: at the boundary, naive"},
      {16, 16, 17, Backend::kVectorized, "4352 flops, deep+wide enough for vec"},
      {1, 4096, 1, Backend::kNaive, "flops == threshold regardless of aspect"},
      {0, 100, 100, Backend::kNaive, "zero rows: empty call, naive"},
      {100, 0, 100, Backend::kNaive, "zero depth: zero-fill only, naive"},
      {100, 100, 0, Backend::kNaive, "zero cols: empty call, naive"},
      // Depth boundary at kAutoVecMinDepth = 16.
      {100, 15, 100, Backend::kBlocked, "depth 15: one short of the vec floor"},
      {100, 16, 100, Backend::kVectorized, "depth 16: at the vec floor"},
      // Cols boundary at kAutoVecMinCols = 8.
      {100, 100, 7, Backend::kBlocked, "cols 7: one short of the vec floor"},
      {100, 100, 8, Backend::kVectorized, "cols 8: at the vec floor"},
      // Big-but-shallow and big-but-narrow stay blocked (bit-identical tier).
      {4096, 8, 512, Backend::kBlocked, "shallow reduction"},
      {4096, 512, 4, Backend::kBlocked, "narrow output"},
      // The canonical model shapes all go vectorized.
      {32, 144, 10, Backend::kVectorized, "MNIST FC batch GEMM"},
      {32, 256, 64, Backend::kVectorized, "CIFAR FC1 batch GEMM"},
      {256, 256, 256, Backend::kVectorized, "square GEMM"},
  };
  for (const auto& row : table) {
    EXPECT_EQ(resolve(row.rows, row.depth, row.cols), row.want)
        << row.why << " (rows=" << row.rows << " depth=" << row.depth
        << " cols=" << row.cols << ")";
  }
}

// Auto must produce the same bits as whatever backend it resolves to — the
// dispatcher adds no numeric behavior of its own.
TEST(KernelsVec, AutoMatchesResolvedBackendBitwise) {
  KernelEnvGuard guard;
  struct Shape {
    std::size_t m, k, n;
  };
  for (const auto& s : {Shape{8, 8, 8}, Shape{40, 15, 40}, Shape{40, 32, 40}}) {
    const auto a = random_vec(s.m * s.k, 91);
    const auto b = random_vec(s.k * s.n, 93);
    const std::vector<float> c_seed(s.m * s.n, 0.0f);
    const auto resolved =
        kernels::resolve_backend(kernels::Backend::kAuto, s.m, s.k, s.n);
    const auto want =
        run_gemm(kernels::sgemm, resolved, s.m, s.k, s.n, a, b, c_seed, false);
    const auto got = run_gemm(kernels::sgemm, kernels::Backend::kAuto, s.m, s.k, s.n, a,
                              b, c_seed, false);
    EXPECT_EQ(got, want) << "m=" << s.m << " k=" << s.k << " n=" << s.n << " resolved to "
                         << kernels::backend_name(resolved);
  }
}
