// S-SCALE acceptance (ctest -L chaos): a 1024-agent PDSL fleet on a sparse
// regular-4 graph with sampled participation, lazy worker state and wire
// round-trip verification, under chaos (drop + delay + churn) plus sign-flip
// Byzantine agents, must be bit-identical across a rerun and across
// --threads 1 vs 4 — the fleet-scale version of the determinism contract.

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace {

using pdsl::core::ExperimentConfig;
using pdsl::core::ExperimentResult;

ExperimentConfig chaos_config() {
  ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "mnist_like";
  cfg.model = "logistic";
  cfg.image = 8;
  cfg.partition = "iid";  // 2 samples per agent at this scale
  cfg.agents = 1024;
  cfg.rounds = 2;
  cfg.train_samples = 2048;
  cfg.test_samples = 64;
  cfg.validation_samples = 64;
  cfg.hp.batch = 2;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.sigma_mode = "none";
  cfg.seed = 11;
  cfg.metrics.eval_every = 0;
  cfg.metrics.test_subsample = 32;
  cfg.metrics.metric_agents = 8;

  cfg.topology = "regular";
  cfg.fleet.sparse = true;
  cfg.fleet.degree = 4;
  cfg.fleet.lazy_state = true;
  cfg.fleet.wire_roundtrip = true;
  // 64 participants: enough that some sampled agents are graph-adjacent and
  // traffic actually flows (8-of-1024 on a degree-4 graph is almost always
  // an independent set — agents would only do local steps).
  cfg.fleet.participation.mode = pdsl::fleet::ParticipationMode::kSampled;
  cfg.fleet.participation.active = 64;

  cfg.faults.drop_prob = 0.05;
  cfg.faults.delay_prob = 0.10;
  cfg.faults.delay_rounds = 2;
  cfg.faults.churn_prob = 0.05;
  cfg.faults.churn_interval = 2;
  cfg.adversary.frac = 0.1;  // lowest 102 ids sign-flip at the default scale
  return cfg;
}

TEST(FleetChaos, ThousandAgentChaosByzantineIsDeterministic) {
  ExperimentConfig cfg = chaos_config();
  const ExperimentResult a = pdsl::core::run_experiment(cfg);
  const ExperimentResult b = pdsl::core::run_experiment(cfg);
  cfg.threads = 4;
  const ExperimentResult c = pdsl::core::run_experiment(cfg);

  ASSERT_FALSE(a.average_model.empty());
  EXPECT_EQ(a.average_model, b.average_model) << "rerun diverged";
  EXPECT_EQ(a.average_model, c.average_model) << "threads 1 vs 4 diverged";
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.final_loss, c.final_loss);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.corrupted, b.corrupted);

  // Fleet accounting: memory-side state tracked the active set, not N.
  EXPECT_EQ(a.participants, 64u);
  EXPECT_LT(a.workers_peak, 1024u);
  EXPECT_GT(a.messages, 0u);
  EXPECT_GT(a.wire_messages, 0u);
}

}  // namespace
