// JSON parser/writer and the ExperimentConfig/Result (de)serialization.

#include <gtest/gtest.h>

#include <fstream>

#include "common/json.hpp"
#include "core/config_io.hpp"

using namespace pdsl;
using namespace pdsl::json;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parse("-2e3").as_number(), -2000.0);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesContainers) {
  const auto v = parse(R"({"a": [1, 2, 3], "b": {"c": true}, "d": null})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_TRUE(v.at("d").is_null());
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("z"));
  EXPECT_THROW(v.at("z"), std::out_of_range);
}

TEST(Json, StringEscapes) {
  const auto v = parse(R"("line\nbreak \"quoted\" tab\t back\\slash A")");
  EXPECT_EQ(v.as_string(), "line\nbreak \"quoted\" tab\t back\\slash A");
}

TEST(Json, RoundTripsThroughDump) {
  const auto v = parse(R"({"name":"pdsl","nums":[1,2.5,-3],"flag":false,"nested":{"x":1}})");
  const auto again = parse(v.dump());
  EXPECT_EQ(again.at("name").as_string(), "pdsl");
  EXPECT_DOUBLE_EQ(again.at("nums").as_array()[1].as_number(), 2.5);
  EXPECT_FALSE(again.at("flag").as_bool());
  EXPECT_EQ(again.at("nested").at("x").as_int(), 1);
}

TEST(Json, PrettyPrintParses) {
  Object o;
  o["k"] = Value(Array{Value(1), Value("two")});
  const std::string pretty = Value(std::move(o)).dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty).at("k").as_array()[1].as_string(), "two");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse("tru"), std::runtime_error);
  EXPECT_THROW(parse("1 2"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse("1.2.3"), std::runtime_error);
}

TEST(Json, TypeMismatchesThrow) {
  const auto v = parse("[1]");
  EXPECT_THROW((void)v.as_object(), std::logic_error);
  EXPECT_THROW((void)v.as_string(), std::logic_error);
  EXPECT_THROW((void)parse("1.5").as_int(), std::logic_error);
}

TEST(ConfigIo, RoundTripPreservesEveryField) {
  core::ExperimentConfig cfg;
  cfg.algorithm = "dp_cga";
  cfg.dataset = "cifar_like";
  cfg.model = "cifar_cnn";
  cfg.topology = "bipartite";
  cfg.agents = 12;
  cfg.rounds = 77;
  cfg.mu = 0.66;
  cfg.partition = "shards";
  cfg.shards_per_agent = 3;
  cfg.corrupt_agents = 2;
  cfg.hp.gamma = 0.123;
  cfg.hp.alpha = 0.77;
  cfg.hp.batch = 99;
  cfg.hp.shapley_method = "tmc";
  cfg.sigma_mode = "fixed";
  cfg.hp.sigma = 0.42;
  cfg.noise_scale = 0.5;
  cfg.epsilon = 0.07;
  cfg.seed = 1234;
  cfg.compression = "quant:8";

  const auto restored = core::config_from_json(core::config_to_json(cfg));
  EXPECT_EQ(restored.algorithm, cfg.algorithm);
  EXPECT_EQ(restored.dataset, cfg.dataset);
  EXPECT_EQ(restored.model, cfg.model);
  EXPECT_EQ(restored.topology, cfg.topology);
  EXPECT_EQ(restored.agents, cfg.agents);
  EXPECT_EQ(restored.rounds, cfg.rounds);
  EXPECT_DOUBLE_EQ(restored.mu, cfg.mu);
  EXPECT_EQ(restored.partition, cfg.partition);
  EXPECT_EQ(restored.shards_per_agent, cfg.shards_per_agent);
  EXPECT_EQ(restored.corrupt_agents, cfg.corrupt_agents);
  EXPECT_DOUBLE_EQ(restored.hp.gamma, cfg.hp.gamma);
  EXPECT_DOUBLE_EQ(restored.hp.alpha, cfg.hp.alpha);
  EXPECT_EQ(restored.hp.batch, cfg.hp.batch);
  EXPECT_EQ(restored.hp.shapley_method, cfg.hp.shapley_method);
  EXPECT_EQ(restored.sigma_mode, cfg.sigma_mode);
  EXPECT_DOUBLE_EQ(restored.hp.sigma, cfg.hp.sigma);
  EXPECT_DOUBLE_EQ(restored.noise_scale, cfg.noise_scale);
  EXPECT_DOUBLE_EQ(restored.epsilon, cfg.epsilon);
  EXPECT_EQ(restored.seed, cfg.seed);
  EXPECT_EQ(restored.compression, cfg.compression);
}

TEST(ConfigIo, PartialConfigKeepsDefaults) {
  const auto cfg = core::config_from_json(parse(R"({"algorithm": "muffliato", "agents": 9})"));
  EXPECT_EQ(cfg.algorithm, "muffliato");
  EXPECT_EQ(cfg.agents, 9u);
  EXPECT_EQ(cfg.dataset, "mnist_like");  // default preserved
  EXPECT_DOUBLE_EQ(cfg.mu, 0.25);
}

TEST(ConfigIo, UnknownKeysAreRejected) {
  EXPECT_THROW(core::config_from_json(parse(R"({"agentz": 9})")), std::invalid_argument);
}

TEST(ConfigIo, LoadFromFile) {
  const std::string path = "/tmp/pdsl_config_test.json";
  std::ofstream(path) << R"({"algorithm": "pdsl", "rounds": 4, "epsilon": 0.2})";
  const auto cfg = core::load_config(path);
  EXPECT_EQ(cfg.algorithm, "pdsl");
  EXPECT_EQ(cfg.rounds, 4u);
  EXPECT_DOUBLE_EQ(cfg.epsilon, 0.2);
  EXPECT_THROW(core::load_config("/tmp/missing_pdsl_cfg.json"), std::runtime_error);
}

TEST(ConfigIo, ResultSerialization) {
  core::ExperimentResult res;
  res.algorithm = "PDSL";
  res.final_loss = 0.5;
  res.final_accuracy = 0.9;
  res.series.resize(2);
  res.series[0].round = 1;
  res.series[0].avg_loss = 1.0;
  res.series[1].round = 2;
  res.series[1].avg_loss = 0.5;
  const auto v = core::result_to_json(res);
  EXPECT_EQ(v.at("algorithm").as_string(), "PDSL");
  EXPECT_DOUBLE_EQ(v.at("final_accuracy").as_number(), 0.9);
  EXPECT_EQ(v.at("series").as_array().size(), 2u);
  EXPECT_EQ(v.at("series").as_array()[1].at("round").as_int(), 2);
  // And it survives a text round trip.
  EXPECT_DOUBLE_EQ(parse(v.dump()).at("final_loss").as_number(), 0.5);
}
