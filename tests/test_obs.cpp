// Observability subsystem (S-OBS): trace recorder + scoped spans, metrics
// registry instruments, phase timing accumulators and their renderings.
//
// The recorder and registry are process-global singletons, so every test
// that touches them clears/reset()s first; tests in this binary run
// sequentially (gtest default), so that is race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"

using namespace pdsl;
using namespace pdsl::obs;

namespace {

/// Fresh global recorder state for a test; disables tracing on scope exit.
struct TraceFixture {
  TraceFixture() {
    TraceRecorder::global().clear();
    TraceRecorder::global().enable(true);
  }
  ~TraceFixture() {
    TraceRecorder::global().enable(false);
    TraceRecorder::global().clear();
  }
};

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceRecorder / ScopedSpan

TEST(Trace, DisabledSpanRecordsNothing) {
  TraceRecorder::global().clear();
  TraceRecorder::global().enable(false);
  {
    PDSL_SPAN("outer");
    PDSL_SPAN("inner", std::int64_t{3});
  }
  EXPECT_EQ(TraceRecorder::global().size(), 0u);
}

TEST(Trace, SpanNestingRecordsContainedIntervals) {
  TraceFixture fx;
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner", std::int64_t{7});
    }
  }
  auto v = TraceRecorder::global().to_json();
  const auto& events = v.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first, so the inner event lands before the outer one.
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_EQ(inner.at("name").as_string(), "inner");
  EXPECT_EQ(outer.at("name").as_string(), "outer");
  EXPECT_EQ(inner.at("ph").as_string(), "X");
  // Temporal containment: outer starts no later and ends no earlier.
  const double i0 = inner.at("ts").as_number();
  const double i1 = i0 + inner.at("dur").as_number();
  const double o0 = outer.at("ts").as_number();
  const double o1 = o0 + outer.at("dur").as_number();
  EXPECT_LE(o0, i0);
  EXPECT_GE(o1, i1);
  EXPECT_EQ(inner.at("args").at("id").as_int(), 7);
}

TEST(Trace, MidScopeEnableDoesNotAffectLiveSpans) {
  TraceRecorder::global().clear();
  TraceRecorder::global().enable(false);
  {
    ScopedSpan s("late");  // inert: tracing was off at construction
    TraceRecorder::global().enable(true);
  }
  EXPECT_EQ(TraceRecorder::global().size(), 0u);
  TraceRecorder::global().enable(false);
}

TEST(Trace, WrittenFileIsValidChromeTraceJson) {
  TraceFixture fx;
  { PDSL_SPAN("shapley_eval", std::int64_t{2}, "shapley"); }
  { PDSL_SPAN("gossip"); }
  const std::string path = temp_path("pdsl_test_trace.json");
  TraceRecorder::global().write(path);
  const auto v = json::parse_file(path);
  ASSERT_TRUE(v.contains("traceEvents"));
  EXPECT_EQ(v.at("displayTimeUnit").as_string(), "ms");
  const auto& events = v.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_GE(ev.at("dur").as_number(), 0.0);
    EXPECT_TRUE(ev.contains("pid"));
    EXPECT_TRUE(ev.contains("tid"));
  }
  EXPECT_EQ(events[0].at("cat").as_string(), "shapley");
  std::remove(path.c_str());
}

TEST(Trace, ThreadIdsAreStablePerThread) {
  const auto here = TraceRecorder::thread_id();
  EXPECT_EQ(TraceRecorder::thread_id(), here);
  std::uint32_t other = here;
  std::thread([&] { other = TraceRecorder::thread_id(); }).join();
  EXPECT_NE(other, here);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry reg;
  reg.counter("c").add();
  reg.counter("c").add(4);
  EXPECT_EQ(reg.counter("c").value(), 5u);
  reg.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);
  EXPECT_EQ(reg.size(), 2u);
  reg.reset();
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.size(), 2u);  // registrations survive reset
}

TEST(Metrics, HistogramBucketing) {
  Histogram h({1.0, 2.0, 4.0});
  // One observation per region: <=1, <=2, <=4, overflow. Edges are inclusive.
  h.observe(0.5);
  h.observe(1.0);   // exactly on the first edge -> first bucket
  h.observe(3.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 0u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);  // overflow
}

TEST(Metrics, HistogramBoundsFixedAtCreation) {
  MetricsRegistry reg;
  reg.histogram("h", {1.0, 2.0}).observe(0.5);
  // Second lookup with different bounds returns the existing instrument.
  auto& same = reg.histogram("h", {10.0});
  EXPECT_EQ(same.bounds().size(), 2u);
  EXPECT_EQ(same.count(), 1u);
}

TEST(Metrics, RegistryIsThreadSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("shared").add();
        reg.histogram("lat", {0.5, 1.0}).observe(0.25);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("lat", {}).count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Metrics, JsonAndCsvSnapshots) {
  MetricsRegistry reg;
  reg.counter("net.msgs").add(3);
  reg.gauge("dp.sigma").set(0.7);
  reg.histogram("grad.l2", {1.0}).observe(0.5);
  const auto v = reg.to_json();
  EXPECT_EQ(v.at("counters").at("net.msgs").as_int(), 3);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("dp.sigma").as_number(), 0.7);
  EXPECT_EQ(v.at("histograms").at("grad.l2").at("count").as_int(), 1);

  const std::string path = temp_path("pdsl_test_metrics.csv");
  reg.write_csv(path);
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "kind,name,value,count,sum");
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 3u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// PhaseTimings / PhaseScope

TEST(Phase, NamesAndAccessorsAgree) {
  EXPECT_STREQ(phase_name(Phase::kLocalGrad), "local_grad");
  EXPECT_STREQ(phase_name(Phase::kCrossGrad), "crossgrad");
  EXPECT_STREQ(phase_name(Phase::kShapley), "shapley");
  EXPECT_STREQ(phase_name(Phase::kAggregate), "aggregate");
  EXPECT_STREQ(phase_name(Phase::kGossip), "gossip");
  PhaseTimings t;
  t.at(Phase::kShapley) = 2.0;
  t.at(Phase::kGossip) = 1.0;
  EXPECT_DOUBLE_EQ(t.shapley_s, 2.0);
  EXPECT_DOUBLE_EQ(t.total(), 3.0);
  PhaseTimings u;
  u.at(Phase::kShapley) = 0.5;
  t += u;
  EXPECT_DOUBLE_EQ(t.shapley_s, 2.5);
}

TEST(Phase, ScopeAccumulatesEvenWithTracingDisabled) {
  TraceRecorder::global().enable(false);
  PhaseTimings t;
  {
    PhaseScope scope(t, Phase::kAggregate);
    std::atomic<int> sink{0};
    for (int i = 0; i < 1000; ++i) sink.fetch_add(i);
  }
  EXPECT_GT(t.aggregate_s, 0.0);
  EXPECT_DOUBLE_EQ(t.total(), t.aggregate_s);
}

TEST(Phase, FormatTableListsEveryPhaseAndTotal) {
  PhaseTimings t;
  t.local_grad_s = 0.5;
  t.shapley_s = 1.5;
  const std::string table = format_phase_table(t, 10);
  for (const char* name : {"local_grad", "crossgrad", "shapley", "aggregate", "gossip"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
  EXPECT_NE(table.find("total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logging helpers (monotonic stamp + span helper)

TEST(Logging, UptimeIsMonotonic) {
  const double a = log_uptime_seconds();
  const double b = log_uptime_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Logging, ScopedLogSpanDoesNotThrow) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  {
    ScopedLogSpan span("unit_test_span");
    log_span("direct", 0.001);
  }
  set_log_level(prev);
}

// ---------------------------------------------------------------------------
// RunLedger (S-BENCH360 run-ledger export)

#include "core/experiment.hpp"
#include "obs/ledger.hpp"

namespace {

/// Read a JSONL file into one parsed value per line (skipping none; a blank
/// trailing line would be a format bug and fails the parse).
std::vector<json::Value> read_ledger(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<json::Value> events;
  std::string line;
  while (std::getline(in, line)) events.push_back(json::parse(line));
  return events;
}

/// Ledger file contents with the volatile event lines removed — the part of
/// the ledger covered by the bit-identity contract.
std::string stable_ledger_text(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    // json::Object dumps compactly ("key":value), so match without spaces.
    if (line.find("\"type\":\"phase_timing\"") != std::string::npos) continue;
    if (line.find("\"type\":\"run_env\"") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

core::ExperimentConfig ledger_config(const std::string& path, std::size_t threads) {
  core::ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "gaussian";
  cfg.model = "logistic";
  cfg.topology = "ring";
  cfg.agents = 4;
  cfg.rounds = 3;
  cfg.train_samples = 240;
  cfg.test_samples = 60;
  cfg.validation_samples = 40;
  cfg.image = 3;
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.05;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.sigma_mode = "fixed";
  cfg.hp.sigma = 0.05;
  cfg.metrics.test_subsample = 40;
  cfg.metrics.eval_every = 3;
  cfg.threads = threads;
  cfg.ledger_out = path;
  return cfg;
}

}  // namespace

TEST(RunLedger, DisabledLedgerIsANoOp) {
  RunLedger ledger;
  EXPECT_FALSE(ledger.enabled());
  json::Object fields;
  fields["x"] = 1;
  ledger.event("anything", std::move(fields));  // must not throw or write
  EXPECT_EQ(ledger.events_written(), 0u);
  ledger.close();
}

TEST(RunLedger, WritesValidJsonlWithStrictSeqOrdering) {
  const std::string path = temp_path("pdsl_ledger_unit.jsonl");
  {
    RunLedger ledger;
    ledger.open(path);
    ASSERT_TRUE(ledger.enabled());
    for (int i = 0; i < 5; ++i) {
      json::Object fields;
      fields["round"] = i;
      ledger.event(i == 0 ? "run_start" : "round", std::move(fields));
    }
    EXPECT_EQ(ledger.events_written(), 5u);
    ledger.close();
    EXPECT_FALSE(ledger.enabled());
  }
  const auto events = read_ledger(path);
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_TRUE(events[i].is_object());
    EXPECT_EQ(events[i].at("seq").as_int(), static_cast<std::int64_t>(i));
    ASSERT_TRUE(events[i].contains("type"));
  }
  EXPECT_EQ(events.front().at("type").as_string(), "run_start");
  std::remove(path.c_str());
}

TEST(RunLedger, EmptyRunProducesAnEmptyFileNotAMissingOne) {
  const std::string path = temp_path("pdsl_ledger_empty.jsonl");
  {
    RunLedger ledger;
    ledger.open(path);
    ledger.close();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  EXPECT_FALSE(std::getline(in, line)) << "expected zero events, got: " << line;
  std::remove(path.c_str());
}

TEST(RunLedger, ExperimentLedgerHasTheContractedEventSequence) {
  const std::string path = temp_path("pdsl_ledger_run.jsonl");
  const auto res = core::run_experiment(ledger_config(path, 1));
  const auto events = read_ledger(path);
  ASSERT_GE(events.size(), 4u);

  // Bookends: run_start first (after which run_env), run_end last.
  EXPECT_EQ(events.front().at("type").as_string(), "run_start");
  EXPECT_EQ(events[1].at("type").as_string(), RunLedger::kEnvEvent);
  EXPECT_EQ(events.back().at("type").as_string(), "run_end");

  // Per-round events carry the DP spend, Shapley vectors and phase timings.
  std::size_t rounds = 0, shapley = 0, timing = 0;
  double prev_eps = 0.0;
  for (const auto& ev : events) {
    const std::string type = ev.at("type").as_string();
    if (type == "round") {
      ++rounds;
      const double eps = ev.at("epsilon_spent").as_number();
      EXPECT_GE(eps, prev_eps) << "epsilon_spent must be non-decreasing";
      prev_eps = eps;
    } else if (type == "shapley") {
      ++shapley;
      EXPECT_TRUE(ev.contains("pi"));
      EXPECT_TRUE(ev.contains("phi"));
    } else if (type == RunLedger::kTimingEvent) {
      ++timing;
    }
  }
  EXPECT_EQ(rounds, 3u);
  EXPECT_EQ(shapley, 3u);
  EXPECT_EQ(timing, 3u);
  EXPECT_GT(prev_eps, 0.0);
  EXPECT_DOUBLE_EQ(events.back().at("epsilon_spent").as_number(), res.epsilon_spent);
  std::remove(path.c_str());
}

TEST(RunLedger, BitIdenticalAcrossThreadWidthsModuloVolatileEvents) {
  const std::string p1 = temp_path("pdsl_ledger_t1.jsonl");
  const std::string p4 = temp_path("pdsl_ledger_t4.jsonl");
  core::run_experiment(ledger_config(p1, 1));
  core::run_experiment(ledger_config(p4, 4));
  const std::string a = stable_ledger_text(p1);
  const std::string b = stable_ledger_text(p4);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "ledger must be bit-identical across --threads widths "
                     "once phase_timing/run_env lines are stripped";
  std::remove(p1.c_str());
  std::remove(p4.c_str());
}
