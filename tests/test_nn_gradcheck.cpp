// Finite-difference gradient checks for every layer through the full
// model/loss pipeline — the strongest correctness guarantee the NN substrate
// has, since every algorithm in the paper consumes these gradients.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/model.hpp"
#include "nn/pooling.hpp"
#include "tensor/ops.hpp"

using namespace pdsl;
using namespace pdsl::nn;

namespace {

/// Compare analytic flat gradient of mean loss against central differences.
/// Checks a strided subset of coordinates (full check is O(d) forwards).
void gradcheck(Model& model, const Tensor& x, const std::vector<int>& y, double eps = 1e-2,
               double rel_tol = 8e-2, std::size_t stride = 7) {
  model.loss_and_backward(x, y);
  const auto analytic = model.flat_grad();
  auto params = model.flat_params();

  double max_rel = 0.0;
  std::size_t checked = 0;
  for (std::size_t k = 0; k < params.size(); k += stride) {
    const float orig = params[k];
    params[k] = orig + static_cast<float>(eps);
    model.set_flat_params(params);
    const double up = model.loss(x, y);
    params[k] = orig - static_cast<float>(eps);
    model.set_flat_params(params);
    const double down = model.loss(x, y);
    params[k] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    const double denom = std::max({std::abs(numeric), std::abs(double(analytic[k])), 1e-3});
    max_rel = std::max(max_rel, std::abs(numeric - analytic[k]) / denom);
    ++checked;
  }
  model.set_flat_params(params);
  EXPECT_GE(checked, 4u);
  EXPECT_LT(max_rel, rel_tol) << "max relative gradient error too large";
}

Tensor random_input(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  rng.fill_normal(t.vec(), 0.0, 1.0);
  return t;
}

}  // namespace

TEST(GradCheck, LinearSoftmax) {
  Rng rng(1);
  Model m;
  m.emplace<Linear>(6, 4);
  m.init(rng);
  const Tensor x = random_input(Shape{5, 6}, rng);
  gradcheck(m, x, {0, 1, 2, 3, 0});
}

TEST(GradCheck, TwoLayerTanhMlp) {
  // Tanh is smooth, so FD agrees tightly.
  Rng rng(2);
  Model m;
  m.emplace<Linear>(5, 8);
  m.emplace<Tanh>();
  m.emplace<Linear>(8, 3);
  m.init(rng);
  const Tensor x = random_input(Shape{4, 5}, rng);
  gradcheck(m, x, {0, 1, 2, 1});
}

TEST(GradCheck, ReluMlp) {
  // ReLU kinks can upset FD at exactly-zero activations; with random floats
  // the probability is negligible and tolerance absorbs the rest.
  Rng rng(3);
  Model m;
  m.emplace<Linear>(6, 10);
  m.emplace<ReLU>();
  m.emplace<Linear>(10, 4);
  m.init(rng);
  const Tensor x = random_input(Shape{6, 6}, rng);
  gradcheck(m, x, {3, 2, 1, 0, 1, 2});
}

TEST(GradCheck, ConvPoolStack) {
  Rng rng(4);
  Model m;
  m.emplace<Conv2D>(1, 3, 3, 1);
  m.emplace<Tanh>();
  m.emplace<MaxPool2D>(2);
  m.emplace<Flatten>();
  m.emplace<Linear>(3 * 4 * 4, 3);
  m.init(rng);
  const Tensor x = random_input(Shape{2, 1, 8, 8}, rng);
  gradcheck(m, x, {0, 2}, 1e-2, 1e-1, 11);
}

TEST(GradCheck, PaperMnistCnnShape) {
  Rng rng(5);
  Model m;
  m.emplace<Conv2D>(1, 4, 3, 1);
  m.emplace<ReLU>();
  m.emplace<MaxPool2D>(2);
  m.emplace<Conv2D>(4, 6, 3, 1);
  m.emplace<ReLU>();
  m.emplace<MaxPool2D>(2);
  m.emplace<Flatten>();
  m.emplace<Linear>(6 * 3 * 3, 5);
  m.init(rng);
  const Tensor x = random_input(Shape{2, 1, 12, 12}, rng);
  gradcheck(m, x, {1, 4}, 1e-2, 1.5e-1, 29);
}

TEST(GradCheck, LayerNormMlp) {
  Rng rng(7);
  Model m;
  m.emplace<Linear>(5, 8);
  m.emplace<LayerNorm>(8);
  m.emplace<Tanh>();
  m.emplace<Linear>(8, 3);
  m.init(rng);
  const Tensor x = random_input(Shape{4, 5}, rng);
  gradcheck(m, x, {0, 2, 1, 0}, 1e-2, 1e-1, 5);
}

TEST(GradCheck, InputGradientOfLinearLayer) {
  // backward() must also produce correct input gradients (cross-gradients in
  // the paper differentiate w.r.t. received models, so input grads flow
  // through every layer).
  Rng rng(6);
  Linear lin(4, 3);
  lin.init(rng);
  Tensor x = random_input(Shape{2, 4}, rng);
  Tensor out = lin.forward(x);
  Tensor gout(Shape{2, 3}, 1.0f);
  const Tensor gin = lin.backward(gout);

  // FD on a scalar function s(x) = sum(forward(x)).
  const double eps = 1e-3;
  for (std::size_t k = 0; k < x.numel(); k += 3) {
    const float orig = x[k];
    x[k] = orig + static_cast<float>(eps);
    const double up = pdsl::sum(lin.forward(x));
    x[k] = orig - static_cast<float>(eps);
    const double down = pdsl::sum(lin.forward(x));
    x[k] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(numeric, gin[k], 1e-2);
  }
}
