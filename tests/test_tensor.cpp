// Unit tests for the Tensor substrate and numeric kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

using namespace pdsl;

TEST(Tensor, ShapeAndNumel) {
  Tensor t(Shape{2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_THROW(t.dim(3), std::out_of_range);
}

TEST(Tensor, ConstructionValidatesDataSize) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, FillAndZero) {
  Tensor t(Shape{5}, 2.5f);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(t[i], 2.5f);
  t.zero();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, At2RowMajor) {
  Tensor t(Shape{2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t[5], 7.0f);
  EXPECT_THROW(t.at2(2, 0), std::out_of_range);
}

TEST(Tensor, At4Indexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
  EXPECT_THROW(t.at4(0, 3, 0, 0), std::out_of_range);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape{2, 3});
  EXPECT_FLOAT_EQ(r.at2(1, 0), 4.0f);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  a += b;
  EXPECT_FLOAT_EQ(a[2], 9.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  Tensor c(Shape{4});
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(Ops, MatmulKnownValues) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Ops, MatmulShapeChecks) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{2, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Ops, TransposedMatmulsAgreeWithExplicit) {
  // A: 3x2, B: 3x4 -> A^T B : 2x4
  Tensor a(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 4}, {1, 0, 2, 1, 0, 1, 1, 2, 3, 1, 0, 1});
  const Tensor c = matmul_transpose_a(a, b);
  // Explicit transpose.
  Tensor at(Shape{2, 3}, {1, 3, 5, 2, 4, 6});
  const Tensor expect = matmul(at, b);
  ASSERT_EQ(c.shape(), expect.shape());
  for (std::size_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c[i], expect[i]);

  // D: 2x3, E: 4x3 -> D E^T : 2x4
  Tensor d(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor e(Shape{4, 3}, {1, 0, 1, 2, 1, 0, 0, 1, 1, 1, 1, 1});
  const Tensor f = matmul_transpose_b(d, e);
  Tensor et(Shape{3, 4}, {1, 2, 0, 1, 0, 1, 1, 1, 1, 0, 1, 1});
  const Tensor expect2 = matmul(d, et);
  for (std::size_t i = 0; i < f.numel(); ++i) EXPECT_FLOAT_EQ(f[i], expect2[i]);
}

TEST(Ops, SoftmaxRowsIsNormalizedAndStable) {
  Tensor logits(Shape{2, 3}, {1000.0f, 1000.0f, 1000.0f, 1.0f, 2.0f, 3.0f});
  const Tensor p = softmax_rows(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < 3; ++c) total += p.at2(r, c);
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
  EXPECT_NEAR(p.at2(0, 0), 1.0 / 3.0, 1e-5);  // large but equal logits
  EXPECT_GT(p.at2(1, 2), p.at2(1, 1));
}

TEST(Ops, SumArgmaxNorm) {
  Tensor t(Shape{2, 3}, {1, 5, 2, 0, -1, 4});
  EXPECT_DOUBLE_EQ(sum(t), 11.0);
  EXPECT_EQ(argmax_row(t, 0), 1u);
  EXPECT_EQ(argmax_row(t, 1), 2u);
  Tensor v = Tensor::from({3, 4});
  EXPECT_DOUBLE_EQ(frobenius_norm(v), 5.0);
}

TEST(Ops, AddAndScaled) {
  Tensor a = Tensor::from({1, 2});
  Tensor b = Tensor::from({3, 4});
  const Tensor c = add(a, b);
  EXPECT_FLOAT_EQ(c[1], 6.0f);
  const Tensor s = scaled(a, 3.0f);
  EXPECT_FLOAT_EQ(s[0], 3.0f);
}
