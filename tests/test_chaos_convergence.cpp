// S-FAULT chaos suite (ctest -L chaos): end-to-end mnist_like runs under
// fault injection. Convergence must survive moderate chaos (10% drop +
// 1-round delay), stay finite under heavy chaos (30% drop + delay + churn),
// degrade gracefully relative to the fault-free run, hold the S-RT
// bit-identity contract across thread widths, and every baseline algorithm
// must complete a faulted run without NaN/Inf. All runs are seeded, so every
// assertion here is a fixed fact of the seed, not a statistical claim.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/experiment.hpp"

using pdsl::core::ExperimentConfig;
using pdsl::core::ExperimentResult;
using pdsl::core::run_experiment;

namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "mnist_like";
  cfg.model = "mlp";
  cfg.topology = "full";
  cfg.agents = 5;
  cfg.rounds = 10;
  cfg.train_samples = 500;
  cfg.test_samples = 150;
  cfg.validation_samples = 120;
  cfg.image = 8;
  cfg.hidden = 16;
  cfg.hp.batch = 12;
  cfg.hp.gamma = 0.05;
  cfg.hp.alpha = 0.5;
  cfg.hp.clip = 5.0;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 32;
  cfg.sigma_mode = "none";
  cfg.seed = 9;
  cfg.metrics.eval_every = cfg.rounds;  // evaluate accuracy once, at the end
  cfg.metrics.test_subsample = 150;
  return cfg;
}

void expect_finite(const ExperimentResult& res) {
  for (const auto& m : res.series) {
    EXPECT_TRUE(std::isfinite(m.avg_loss)) << "round " << m.round;
  }
  for (float v : res.average_model) ASSERT_TRUE(std::isfinite(v));
  EXPECT_TRUE(std::isfinite(res.final_loss));
  EXPECT_TRUE(std::isfinite(res.final_accuracy));
}

}  // namespace

TEST(ChaosConvergence, PdslLearnsUnderModerateChaos) {
  ExperimentConfig cfg = base_config();
  cfg.faults.drop_prob = 0.1;
  cfg.faults.delay_prob = 0.25;
  cfg.faults.delay_rounds = 1;
  cfg.faults.staleness_rounds = 2;
  const ExperimentResult res = run_experiment(cfg);

  expect_finite(res);
  EXPECT_GT(res.dropped, 0u);
  EXPECT_GT(res.delayed, 0u);
  EXPECT_LT(res.series.back().avg_loss, res.series.front().avg_loss);
  EXPECT_LT(res.final_loss, 1.2);  // below ln(4) ~ 1.386 (chance on 4 classes)
  EXPECT_GT(res.final_accuracy, 0.6);
}

TEST(ChaosConvergence, PdslStaysFiniteUnderHeavyChaos) {
  ExperimentConfig cfg = base_config();
  cfg.faults.drop_prob = 0.3;
  cfg.faults.delay_prob = 0.25;
  cfg.faults.delay_rounds = 1;
  cfg.faults.churn_prob = 0.2;
  cfg.faults.churn_interval = 3;
  cfg.faults.staleness_rounds = 2;
  const ExperimentResult res = run_experiment(cfg);

  expect_finite(res);
  EXPECT_GT(res.dropped, 0u);
  EXPECT_LT(res.series.back().avg_loss, res.series.front().avg_loss);
}

TEST(ChaosConvergence, DegradationIsGraceful) {
  // 30% drop should cost accuracy, not collapse it: the faulted run must
  // land within 0.25 of the fault-free accuracy and stay well above chance.
  ExperimentConfig clean = base_config();
  const ExperimentResult clean_res = run_experiment(clean);

  ExperimentConfig chaos = base_config();
  chaos.faults.drop_prob = 0.3;
  chaos.faults.delay_prob = 0.25;
  chaos.faults.delay_rounds = 1;
  chaos.faults.staleness_rounds = 2;
  const ExperimentResult chaos_res = run_experiment(chaos);

  expect_finite(chaos_res);
  EXPECT_GT(clean_res.final_accuracy, 0.6);
  EXPECT_GE(chaos_res.final_accuracy, clean_res.final_accuracy - 0.25);
  EXPECT_GT(chaos_res.final_accuracy, 0.4);
}

TEST(ChaosConvergence, BitIdenticalAcrossThreadWidthsUnderChaos) {
  ExperimentConfig cfg = base_config();
  cfg.rounds = 5;
  cfg.faults.drop_prob = 0.2;
  cfg.faults.delay_prob = 0.3;
  cfg.faults.delay_rounds = 2;
  cfg.faults.churn_prob = 0.2;
  cfg.faults.churn_interval = 2;
  cfg.faults.staleness_rounds = 2;

  cfg.threads = 1;
  const ExperimentResult seq = run_experiment(cfg);
  cfg.threads = 4;
  const ExperimentResult par = run_experiment(cfg);

  EXPECT_EQ(seq.average_model, par.average_model);
  EXPECT_EQ(seq.dropped, par.dropped);
  EXPECT_EQ(seq.delayed, par.delayed);
  ASSERT_EQ(seq.series.size(), par.series.size());
  for (std::size_t r = 0; r < seq.series.size(); ++r) {
    EXPECT_EQ(seq.series[r].avg_loss, par.series[r].avg_loss) << "round " << r + 1;
  }
  EXPECT_GT(seq.dropped, 0u);
}

TEST(ChaosConvergence, SameSeedRerunIsBitIdentical) {
  ExperimentConfig cfg = base_config();
  cfg.rounds = 5;
  cfg.faults.drop_prob = 0.2;
  cfg.faults.delay_prob = 0.3;
  cfg.faults.delay_rounds = 1;
  cfg.faults.churn_prob = 0.2;
  cfg.faults.churn_interval = 2;

  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.average_model, b.average_model);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.delayed, b.delayed);
}

TEST(ChaosConvergence, EveryBaselineSurvivesChaos) {
  // Fault handling lives in algos::common, so every algorithm — not just
  // PDSL — must finish a faulted run finite and with mailboxes fully read.
  const std::vector<std::string> algos = {
      "pdsl",      "pdsl_uniform", "dp_dpsgd", "muffliato", "dp_cga",
      "dp_netfleet", "async_dp_gossip", "dp_qgm", "fedavg", "dpsgd", "dmsgd"};
  for (const auto& name : algos) {
    ExperimentConfig cfg = base_config();
    cfg.algorithm = name;
    cfg.rounds = 3;
    cfg.metrics.eval_every = 0;
    cfg.faults.drop_prob = 0.25;
    cfg.faults.delay_prob = 0.2;
    cfg.faults.delay_rounds = 1;
    cfg.faults.churn_prob = 0.2;
    cfg.faults.churn_interval = 2;
    const ExperimentResult res = run_experiment(cfg);
    for (const auto& m : res.series) {
      EXPECT_TRUE(std::isfinite(m.avg_loss)) << name << " round " << m.round;
    }
    for (float v : res.average_model) ASSERT_TRUE(std::isfinite(v)) << name;
    // fedavg's server phase is abstract (no Network traffic), so it only
    // feels churn; every decentralized baseline must show real drops.
    if (name != "fedavg") EXPECT_GT(res.dropped, 0u) << name;
  }
}
