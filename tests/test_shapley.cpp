// Shapley values: the classical axioms on the exact solver, Monte Carlo
// convergence (Algorithm 2), and the normalization/weighting pipeline
// (Eqs. 19-20).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "shapley/game.hpp"
#include "shapley/shapley.hpp"
#include "shapley/weighting.hpp"

using namespace pdsl;
using namespace pdsl::shapley;

namespace {

/// Additive game: v(S) = sum of per-player worths -> phi_i = worth_i.
CharacteristicFn additive_game(std::vector<double> worth) {
  return [worth = std::move(worth)](const std::vector<std::size_t>& coalition) {
    double v = 0.0;
    for (std::size_t p : coalition) v += worth[p];
    return v;
  };
}

/// Symmetric "majority" game: v(S) = 1 if |S| >= quota else 0.
CharacteristicFn majority_game(std::size_t quota) {
  return [quota](const std::vector<std::size_t>& coalition) {
    return coalition.size() >= quota ? 1.0 : 0.0;
  };
}

}  // namespace

TEST(CachedGame, MemoizesAndCounts) {
  std::size_t calls = 0;
  CachedGame game(3, [&](const std::vector<std::size_t>& c) {
    ++calls;
    return static_cast<double>(c.size());
  });
  EXPECT_DOUBLE_EQ(game.value(0b101), 2.0);
  EXPECT_DOUBLE_EQ(game.value(0b101), 2.0);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(game.evaluations(), 1u);
  EXPECT_DOUBLE_EQ(game.value(0), 0.0);  // empty coalition is free
  EXPECT_EQ(calls, 1u);
}

TEST(CachedGame, MembersRoundTrip) {
  EXPECT_EQ(CachedGame::members(0b1011), (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_TRUE(CachedGame::members(0).empty());
}

TEST(CachedGame, Validation) {
  EXPECT_THROW(CachedGame(0, additive_game({})), std::invalid_argument);
  EXPECT_THROW(CachedGame(64, additive_game(std::vector<double>(64, 1.0))),
               std::invalid_argument);
  CachedGame g(2, additive_game({1, 2}));
  EXPECT_THROW(g.value(0b100), std::out_of_range);
}

TEST(ExactShapley, AdditivityAxiom) {
  // For additive games the Shapley value is each player's own worth.
  CachedGame game(4, additive_game({1.0, -2.0, 0.5, 3.0}));
  const auto phi = exact_shapley(game);
  EXPECT_NEAR(phi[0], 1.0, 1e-12);
  EXPECT_NEAR(phi[1], -2.0, 1e-12);
  EXPECT_NEAR(phi[2], 0.5, 1e-12);
  EXPECT_NEAR(phi[3], 3.0, 1e-12);
}

TEST(ExactShapley, EfficiencyAxiom) {
  // Balance: payoffs sum to v(grand coalition).
  CachedGame game(5, majority_game(3));
  const auto phi = exact_shapley(game);
  const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ExactShapley, SymmetryAxiom) {
  CachedGame game(5, majority_game(3));
  const auto phi = exact_shapley(game);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_NEAR(phi[i], phi[0], 1e-12);
}

TEST(ExactShapley, NullPlayerAxiom) {
  // Player 2 contributes nothing to any coalition.
  CachedGame game(3, [](const std::vector<std::size_t>& c) {
    double v = 0.0;
    for (std::size_t p : c) {
      if (p != 2) v += 1.0;
    }
    return v;
  });
  const auto phi = exact_shapley(game);
  EXPECT_NEAR(phi[2], 0.0, 1e-12);
  EXPECT_NEAR(phi[0], 1.0, 1e-12);
}

TEST(ExactShapley, GloveGameKnownValues) {
  // Classic 3-player glove game: players {0,1} hold left gloves, {2} right.
  // v(S) = 1 iff S contains player 2 and at least one of {0,1}.
  CachedGame game(3, [](const std::vector<std::size_t>& c) {
    bool right = false, left = false;
    for (std::size_t p : c) {
      if (p == 2) right = true;
      else left = true;
    }
    return (right && left) ? 1.0 : 0.0;
  });
  const auto phi = exact_shapley(game);
  EXPECT_NEAR(phi[0], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(phi[1], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(phi[2], 4.0 / 6.0, 1e-12);
}

TEST(ExactShapley, RefusesLargeGames) {
  CachedGame game(21, majority_game(5));
  EXPECT_THROW(exact_shapley(game), std::invalid_argument);
}

TEST(MonteCarloShapley, EfficiencyHoldsPerEstimate) {
  // Every permutation telescopes to v(full) - v(empty), so even the MC
  // estimate is exactly efficient.
  CachedGame game(6, majority_game(4));
  Rng rng(1);
  const auto phi = monte_carlo_shapley(game, 20, rng);
  EXPECT_NEAR(std::accumulate(phi.begin(), phi.end(), 0.0), 1.0, 1e-9);
}

TEST(MonteCarloShapley, ConvergesToExact) {
  CachedGame game_a(6, additive_game({0.1, 0.9, 0.3, 0.5, 0.7, 0.2}));
  const auto exact = exact_shapley(game_a);
  CachedGame game_b(6, additive_game({0.1, 0.9, 0.3, 0.5, 0.7, 0.2}));
  Rng rng(2);
  const auto mc = monte_carlo_shapley(game_b, 3000, rng);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(mc[i], exact[i], 0.05);
}

class McAccuracy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(McAccuracy, ErrorShrinksWithMorePermutations) {
  const std::size_t R = GetParam();
  auto fn = [](const std::vector<std::size_t>& c) {
    // Superadditive game with asymmetric players.
    double v = 0.0;
    for (std::size_t p : c) v += static_cast<double>(p + 1);
    return v * v / 100.0;
  };
  CachedGame exact_game(5, fn);
  const auto exact = exact_shapley(exact_game);
  double err = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    CachedGame g(5, fn);
    Rng rng(100 + s);
    const auto mc = monte_carlo_shapley(g, R, rng);
    for (std::size_t i = 0; i < 5; ++i) err += std::abs(mc[i] - exact[i]);
  }
  // Calibrated loose bound ~ c/sqrt(R): at R=4 allow much more error than R=256.
  EXPECT_LT(err / 25.0, 1.2 / std::sqrt(static_cast<double>(R)) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(PermutationSweep, McAccuracy,
                         ::testing::Values(std::size_t{4}, std::size_t{16}, std::size_t{64},
                                           std::size_t{256}));

TEST(ShapleyAuto, PicksExactForTinyGames) {
  CachedGame g(3, majority_game(2));
  Rng rng(3);
  const auto phi = shapley_auto(g, 1000, rng);
  CachedGame g2(3, majority_game(2));
  const auto exact = exact_shapley(g2);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(phi[i], exact[i], 1e-12);
}

TEST(TruncatedMc, MatchesMcWhenNothingTruncates) {
  // With tolerance 0 (and a strictly increasing game) no truncation happens,
  // so TMC equals plain MC on the same rng stream.
  auto fn = additive_game({0.3, 0.1, 0.4, 0.2});
  CachedGame a(4, fn), b(4, fn);
  Rng r1(5), r2(5);
  const auto mc = monte_carlo_shapley(a, 50, r1);
  TruncatedMcOptions opts;
  opts.num_permutations = 50;
  opts.tolerance = 0.0;
  const auto tmc = truncated_monte_carlo_shapley(b, opts, r2);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(tmc[i], mc[i], 1e-12);
}

TEST(TruncatedMc, SavesEvaluationsOnSaturatingGames) {
  // v saturates at 1 once any two players join: deep prefixes are skipped.
  auto fn = majority_game(2);
  CachedGame full_game(10, fn);
  Rng r1(6);
  (void)monte_carlo_shapley(full_game, 30, r1);
  CachedGame trunc_game(10, fn);
  Rng r2(6);
  TruncatedMcOptions opts;
  opts.num_permutations = 30;
  opts.tolerance = 0.001;
  const auto phi = truncated_monte_carlo_shapley(trunc_game, opts, r2);
  EXPECT_LT(trunc_game.evaluations(), full_game.evaluations());
  // Still roughly symmetric and efficient-ish.
  double total = std::accumulate(phi.begin(), phi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(TruncatedMc, Validation) {
  CachedGame g(3, majority_game(2));
  Rng rng(7);
  TruncatedMcOptions opts;
  opts.num_permutations = 0;
  EXPECT_THROW(truncated_monte_carlo_shapley(g, opts, rng), std::invalid_argument);
  opts.num_permutations = 2;
  opts.tolerance = -1.0;
  EXPECT_THROW(truncated_monte_carlo_shapley(g, opts, rng), std::invalid_argument);
}

TEST(Stratified, ConvergesToExactOnAdditiveGame) {
  auto fn = additive_game({0.5, -0.2, 0.8, 0.1, 0.3});
  CachedGame g(5, fn);
  Rng rng(8);
  const auto phi = stratified_shapley(g, 40, rng);
  // Additive games: stratified estimator is unbiased with zero variance in
  // the marginal (marginal of i is worth_i regardless of coalition).
  EXPECT_NEAR(phi[0], 0.5, 1e-9);
  EXPECT_NEAR(phi[2], 0.8, 1e-9);
}

TEST(Stratified, ApproximatesExactOnInteractionGame) {
  auto fn = [](const std::vector<std::size_t>& c) {
    double v = 0.0;
    for (std::size_t p : c) v += static_cast<double>(p + 1);
    return v * v / 50.0;
  };
  CachedGame exact_g(5, fn);
  const auto exact = exact_shapley(exact_g);
  CachedGame strat_g(5, fn);
  Rng rng(9);
  const auto strat = stratified_shapley(strat_g, 200, rng);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(strat[i], exact[i], 0.08);
}

TEST(Stratified, Validation) {
  CachedGame g(3, majority_game(2));
  Rng rng(10);
  EXPECT_THROW(stratified_shapley(g, 0, rng), std::invalid_argument);
}

TEST(Weighting, MinMaxNormalization) {
  const auto out = minmax_normalize({2.0, 4.0, 3.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(Weighting, DegenerateNormalizationFallsBackToOnes) {
  const auto out = minmax_normalize({0.7, 0.7, 0.7});
  for (double v : out) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_THROW(minmax_normalize({}), std::invalid_argument);
}

TEST(Weighting, AggregationWeightsMatchEq20) {
  // pi_j = phî_j / (w_j * sum_k phî_k)
  const std::vector<double> phi_hat = {0.0, 1.0, 0.5};
  const std::vector<double> w_row = {0.25, 0.25, 0.5};
  const auto pi = aggregation_weights(phi_hat, w_row);
  EXPECT_NEAR(pi[0], 0.0, 1e-12);
  EXPECT_NEAR(pi[1], (1.0 / 1.5) / 0.25, 1e-12);
  EXPECT_NEAR(pi[2], (0.5 / 1.5) / 0.5, 1e-12);
}

TEST(Weighting, AggregationWeightsGuards) {
  EXPECT_THROW(aggregation_weights({1.0}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(aggregation_weights({-1.0, 1.0}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(aggregation_weights({1.0, 1.0}, {0.0, 0.5}), std::invalid_argument);
  // All-zero phi_hat degrades to uniform shares.
  const auto pi = aggregation_weights({0.0, 0.0}, {0.5, 0.5});
  EXPECT_NEAR(pi[0], 1.0, 1e-12);
  EXPECT_NEAR(pi[1], 1.0, 1e-12);
}

TEST(Weighting, ReluNormalization) {
  const auto out = relu_normalize({-0.5, 1.0, 0.25, -0.1});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.25);
  EXPECT_DOUBLE_EQ(out[3], 0.0);
  // All non-positive: fall back to all-ones (uniform prior).
  const auto flat = relu_normalize({-1.0, -2.0, 0.0});
  for (double v : flat) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_THROW(relu_normalize({}), std::invalid_argument);
}

TEST(Weighting, NormalizedShares) {
  const auto s = normalized_shares({1.0, 3.0});
  EXPECT_NEAR(s[0], 0.25, 1e-12);
  EXPECT_NEAR(s[1], 0.75, 1e-12);
  const auto uniform = normalized_shares({0.0, 0.0, 0.0});
  for (double v : uniform) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}
