// Shapley values: the classical axioms on the exact solver, Monte Carlo
// convergence (Algorithm 2), the normalization/weighting pipeline
// (Eqs. 19-20), and the S-SHAP hot path (BatchedGame, the cross-round
// ValueCache, adaptive antithetic Monte Carlo, CoalitionBatchEvaluator).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"
#include "shapley/game.hpp"
#include "shapley/shapley.hpp"
#include "shapley/value_cache.hpp"
#include "shapley/weighting.hpp"
#include "sim/evaluate.hpp"

using namespace pdsl;
using namespace pdsl::shapley;

namespace {

/// Additive game: v(S) = sum of per-player worths -> phi_i = worth_i.
CharacteristicFn additive_game(std::vector<double> worth) {
  return [worth = std::move(worth)](const std::vector<std::size_t>& coalition) {
    double v = 0.0;
    for (std::size_t p : coalition) v += worth[p];
    return v;
  };
}

/// Symmetric "majority" game: v(S) = 1 if |S| >= quota else 0.
CharacteristicFn majority_game(std::size_t quota) {
  return [quota](const std::vector<std::size_t>& coalition) {
    return coalition.size() >= quota ? 1.0 : 0.0;
  };
}

}  // namespace

TEST(CachedGame, MemoizesAndCounts) {
  std::size_t calls = 0;
  CachedGame game(3, [&](const std::vector<std::size_t>& c) {
    ++calls;
    return static_cast<double>(c.size());
  });
  EXPECT_DOUBLE_EQ(game.value(0b101), 2.0);
  EXPECT_DOUBLE_EQ(game.value(0b101), 2.0);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(game.evaluations(), 1u);
  EXPECT_DOUBLE_EQ(game.value(0), 0.0);  // empty coalition is free
  EXPECT_EQ(calls, 1u);
}

TEST(CachedGame, MembersRoundTrip) {
  EXPECT_EQ(CachedGame::members(0b1011), (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_TRUE(CachedGame::members(0).empty());
}

TEST(CachedGame, Validation) {
  EXPECT_THROW(CachedGame(0, additive_game({})), std::invalid_argument);
  EXPECT_THROW(CachedGame(64, additive_game(std::vector<double>(64, 1.0))),
               std::invalid_argument);
  CachedGame g(2, additive_game({1, 2}));
  EXPECT_THROW(g.value(0b100), std::out_of_range);
}

TEST(ExactShapley, AdditivityAxiom) {
  // For additive games the Shapley value is each player's own worth.
  CachedGame game(4, additive_game({1.0, -2.0, 0.5, 3.0}));
  const auto phi = exact_shapley(game);
  EXPECT_NEAR(phi[0], 1.0, 1e-12);
  EXPECT_NEAR(phi[1], -2.0, 1e-12);
  EXPECT_NEAR(phi[2], 0.5, 1e-12);
  EXPECT_NEAR(phi[3], 3.0, 1e-12);
}

TEST(ExactShapley, EfficiencyAxiom) {
  // Balance: payoffs sum to v(grand coalition).
  CachedGame game(5, majority_game(3));
  const auto phi = exact_shapley(game);
  const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ExactShapley, SymmetryAxiom) {
  CachedGame game(5, majority_game(3));
  const auto phi = exact_shapley(game);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_NEAR(phi[i], phi[0], 1e-12);
}

TEST(ExactShapley, NullPlayerAxiom) {
  // Player 2 contributes nothing to any coalition.
  CachedGame game(3, [](const std::vector<std::size_t>& c) {
    double v = 0.0;
    for (std::size_t p : c) {
      if (p != 2) v += 1.0;
    }
    return v;
  });
  const auto phi = exact_shapley(game);
  EXPECT_NEAR(phi[2], 0.0, 1e-12);
  EXPECT_NEAR(phi[0], 1.0, 1e-12);
}

TEST(ExactShapley, GloveGameKnownValues) {
  // Classic 3-player glove game: players {0,1} hold left gloves, {2} right.
  // v(S) = 1 iff S contains player 2 and at least one of {0,1}.
  CachedGame game(3, [](const std::vector<std::size_t>& c) {
    bool right = false, left = false;
    for (std::size_t p : c) {
      if (p == 2) right = true;
      else left = true;
    }
    return (right && left) ? 1.0 : 0.0;
  });
  const auto phi = exact_shapley(game);
  EXPECT_NEAR(phi[0], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(phi[1], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(phi[2], 4.0 / 6.0, 1e-12);
}

TEST(ExactShapley, RefusesLargeGames) {
  CachedGame game(21, majority_game(5));
  EXPECT_THROW(exact_shapley(game), std::invalid_argument);
}

TEST(MonteCarloShapley, EfficiencyHoldsPerEstimate) {
  // Every permutation telescopes to v(full) - v(empty), so even the MC
  // estimate is exactly efficient.
  CachedGame game(6, majority_game(4));
  Rng rng(1);
  const auto phi = monte_carlo_shapley(game, 20, rng);
  EXPECT_NEAR(std::accumulate(phi.begin(), phi.end(), 0.0), 1.0, 1e-9);
}

TEST(MonteCarloShapley, ConvergesToExact) {
  CachedGame game_a(6, additive_game({0.1, 0.9, 0.3, 0.5, 0.7, 0.2}));
  const auto exact = exact_shapley(game_a);
  CachedGame game_b(6, additive_game({0.1, 0.9, 0.3, 0.5, 0.7, 0.2}));
  Rng rng(2);
  const auto mc = monte_carlo_shapley(game_b, 3000, rng);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(mc[i], exact[i], 0.05);
}

class McAccuracy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(McAccuracy, ErrorShrinksWithMorePermutations) {
  const std::size_t R = GetParam();
  auto fn = [](const std::vector<std::size_t>& c) {
    // Superadditive game with asymmetric players.
    double v = 0.0;
    for (std::size_t p : c) v += static_cast<double>(p + 1);
    return v * v / 100.0;
  };
  CachedGame exact_game(5, fn);
  const auto exact = exact_shapley(exact_game);
  double err = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    CachedGame g(5, fn);
    Rng rng(100 + s);
    const auto mc = monte_carlo_shapley(g, R, rng);
    for (std::size_t i = 0; i < 5; ++i) err += std::abs(mc[i] - exact[i]);
  }
  // Calibrated loose bound ~ c/sqrt(R): at R=4 allow much more error than R=256.
  EXPECT_LT(err / 25.0, 1.2 / std::sqrt(static_cast<double>(R)) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(PermutationSweep, McAccuracy,
                         ::testing::Values(std::size_t{4}, std::size_t{16}, std::size_t{64},
                                           std::size_t{256}));

TEST(ShapleyAuto, PicksExactForTinyGames) {
  CachedGame g(3, majority_game(2));
  Rng rng(3);
  const auto phi = shapley_auto(g, 1000, rng);
  CachedGame g2(3, majority_game(2));
  const auto exact = exact_shapley(g2);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(phi[i], exact[i], 1e-12);
}

TEST(TruncatedMc, MatchesMcWhenNothingTruncates) {
  // With tolerance 0 (and a strictly increasing game) no truncation happens,
  // so TMC equals plain MC on the same rng stream.
  auto fn = additive_game({0.3, 0.1, 0.4, 0.2});
  CachedGame a(4, fn), b(4, fn);
  Rng r1(5), r2(5);
  const auto mc = monte_carlo_shapley(a, 50, r1);
  TruncatedMcOptions opts;
  opts.num_permutations = 50;
  opts.tolerance = 0.0;
  const auto tmc = truncated_monte_carlo_shapley(b, opts, r2);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(tmc[i], mc[i], 1e-12);
}

TEST(TruncatedMc, SavesEvaluationsOnSaturatingGames) {
  // v saturates at 1 once any two players join: deep prefixes are skipped.
  auto fn = majority_game(2);
  CachedGame full_game(10, fn);
  Rng r1(6);
  (void)monte_carlo_shapley(full_game, 30, r1);
  CachedGame trunc_game(10, fn);
  Rng r2(6);
  TruncatedMcOptions opts;
  opts.num_permutations = 30;
  opts.tolerance = 0.001;
  const auto phi = truncated_monte_carlo_shapley(trunc_game, opts, r2);
  EXPECT_LT(trunc_game.evaluations(), full_game.evaluations());
  // Still roughly symmetric and efficient-ish.
  double total = std::accumulate(phi.begin(), phi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(TruncatedMc, Validation) {
  CachedGame g(3, majority_game(2));
  Rng rng(7);
  TruncatedMcOptions opts;
  opts.num_permutations = 0;
  EXPECT_THROW(truncated_monte_carlo_shapley(g, opts, rng), std::invalid_argument);
  opts.num_permutations = 2;
  opts.tolerance = -1.0;
  EXPECT_THROW(truncated_monte_carlo_shapley(g, opts, rng), std::invalid_argument);
}

TEST(Stratified, ConvergesToExactOnAdditiveGame) {
  auto fn = additive_game({0.5, -0.2, 0.8, 0.1, 0.3});
  CachedGame g(5, fn);
  Rng rng(8);
  const auto phi = stratified_shapley(g, 40, rng);
  // Additive games: stratified estimator is unbiased with zero variance in
  // the marginal (marginal of i is worth_i regardless of coalition).
  EXPECT_NEAR(phi[0], 0.5, 1e-9);
  EXPECT_NEAR(phi[2], 0.8, 1e-9);
}

TEST(Stratified, ApproximatesExactOnInteractionGame) {
  auto fn = [](const std::vector<std::size_t>& c) {
    double v = 0.0;
    for (std::size_t p : c) v += static_cast<double>(p + 1);
    return v * v / 50.0;
  };
  CachedGame exact_g(5, fn);
  const auto exact = exact_shapley(exact_g);
  CachedGame strat_g(5, fn);
  Rng rng(9);
  const auto strat = stratified_shapley(strat_g, 200, rng);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(strat[i], exact[i], 0.08);
}

TEST(Stratified, Validation) {
  CachedGame g(3, majority_game(2));
  Rng rng(10);
  EXPECT_THROW(stratified_shapley(g, 0, rng), std::invalid_argument);
}

TEST(Weighting, MinMaxNormalization) {
  const auto out = minmax_normalize({2.0, 4.0, 3.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(Weighting, DegenerateNormalizationFallsBackToOnes) {
  const auto out = minmax_normalize({0.7, 0.7, 0.7});
  for (double v : out) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_THROW(minmax_normalize({}), std::invalid_argument);
}

TEST(Weighting, AggregationWeightsMatchEq20) {
  // pi_j = phî_j / (w_j * sum_k phî_k)
  const std::vector<double> phi_hat = {0.0, 1.0, 0.5};
  const std::vector<double> w_row = {0.25, 0.25, 0.5};
  const auto pi = aggregation_weights(phi_hat, w_row);
  EXPECT_NEAR(pi[0], 0.0, 1e-12);
  EXPECT_NEAR(pi[1], (1.0 / 1.5) / 0.25, 1e-12);
  EXPECT_NEAR(pi[2], (0.5 / 1.5) / 0.5, 1e-12);
}

TEST(Weighting, AggregationWeightsGuards) {
  EXPECT_THROW(aggregation_weights({1.0}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(aggregation_weights({-1.0, 1.0}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(aggregation_weights({1.0, 1.0}, {0.0, 0.5}), std::invalid_argument);
  // All-zero phi_hat degrades to uniform shares.
  const auto pi = aggregation_weights({0.0, 0.0}, {0.5, 0.5});
  EXPECT_NEAR(pi[0], 1.0, 1e-12);
  EXPECT_NEAR(pi[1], 1.0, 1e-12);
}

TEST(Weighting, ReluNormalization) {
  const auto out = relu_normalize({-0.5, 1.0, 0.25, -0.1});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.25);
  EXPECT_DOUBLE_EQ(out[3], 0.0);
  // All non-positive: fall back to all-ones (uniform prior).
  const auto flat = relu_normalize({-1.0, -2.0, 0.0});
  for (double v : flat) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_THROW(relu_normalize({}), std::invalid_argument);
}

TEST(Weighting, NormalizedShares) {
  const auto s = normalized_shares({1.0, 3.0});
  EXPECT_NEAR(s[0], 0.25, 1e-12);
  EXPECT_NEAR(s[1], 0.75, 1e-12);
  const auto uniform = normalized_shares({0.0, 0.0, 0.0});
  for (double v : uniform) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------------------
// S-SHAP: BatchedGame
// ---------------------------------------------------------------------------

namespace {

/// Wrap a sequential characteristic as a batch fn (loop over masks), counting
/// how many batch calls were made.
BatchCharacteristicFn batch_of(CharacteristicFn fn, std::size_t* batch_calls = nullptr) {
  return [fn = std::move(fn), batch_calls](const std::vector<std::uint64_t>& masks) {
    if (batch_calls != nullptr) ++*batch_calls;
    std::vector<double> out;
    out.reserve(masks.size());
    for (const auto m : masks) out.push_back(fn(Game::members(m)));
    return out;
  };
}

/// Quadratic game v(S) = (sum of member worths)^2. Player i's marginal to a
/// prefix with mass W is w_i^2 + 2 w_i W; over an antithetic pair (a
/// permutation and its reversal) the prefix masses sum to W_total - w_i, so
/// the pair-averaged marginal is CONSTANT — antithetic sampling is exact here
/// while independent sampling is not.
CharacteristicFn quadratic_game(std::vector<double> worth) {
  return [worth = std::move(worth)](const std::vector<std::size_t>& c) {
    double v = 0.0;
    for (std::size_t p : c) v += worth[p];
    return v * v;
  };
}

}  // namespace

TEST(BatchedGame, MatchesCachedGameBitIdentical) {
  // Same estimator + same RNG stream on CachedGame vs BatchedGame must give
  // bit-identical phi: the game layer only changes WHEN values are computed,
  // never what is computed or in which order it is accumulated.
  auto fn = [](const std::vector<std::size_t>& c) {
    double v = 0.0;
    for (std::size_t p : c) v += static_cast<double>(p + 1);
    return v * v / 50.0;
  };
  {
    CachedGame seq(5, fn);
    BatchedGame bat(5, batch_of(fn));
    const auto a = exact_shapley(seq);
    const auto b = exact_shapley(bat);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(a[i], b[i]);
    EXPECT_EQ(seq.evaluations(), bat.evaluations());
  }
  {
    CachedGame seq(6, fn);
    BatchedGame bat(6, batch_of(fn));
    Rng r1(42), r2(42);
    const auto a = monte_carlo_shapley(seq, 12, r1);
    const auto b = monte_carlo_shapley(bat, 12, r2);
    for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(a[i], b[i]);
  }
  {
    CachedGame seq(5, fn);
    BatchedGame bat(5, batch_of(fn));
    Rng r1(43), r2(43);
    const auto a = stratified_shapley(seq, 10, r1);
    const auto b = stratified_shapley(bat, 10, r2);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(a[i], b[i]);
  }
  {
    CachedGame seq(6, fn);
    BatchedGame bat(6, batch_of(fn));
    Rng r1(44), r2(44);
    AdaptiveMcOptions opts;
    const auto a = adaptive_monte_carlo_shapley(seq, opts, r1);
    const auto b = adaptive_monte_carlo_shapley(bat, opts, r2);
    EXPECT_EQ(a.permutations_used, b.permutations_used);
    EXPECT_EQ(a.early_stopped, b.early_stopped);
    for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(a.phi[i], b.phi[i]);
  }
}

TEST(BatchedGame, PrefetchBatchesAndDedupes) {
  std::size_t batch_calls = 0;
  BatchedGame game(4, batch_of(additive_game({1, 2, 3, 4}), &batch_calls));
  game.prefetch({0b0011, 0b0101, 0b0011, 0});  // dup + empty are dropped
  EXPECT_EQ(batch_calls, 1u);
  EXPECT_EQ(game.evaluations(), 2u);
  EXPECT_EQ(game.stats().coalitions_batched, 2u);
  // Prefetched values come from the memo; no further batch calls.
  EXPECT_DOUBLE_EQ(game.value(0b0011), 3.0);
  EXPECT_DOUBLE_EQ(game.value(0b0101), 4.0);
  EXPECT_EQ(batch_calls, 1u);
  // A mask that was never announced falls back to a singleton batch.
  EXPECT_DOUBLE_EQ(game.value(0b1000), 4.0);
  EXPECT_EQ(batch_calls, 2u);
  EXPECT_EQ(game.evaluations(), 3u);
  EXPECT_EQ(game.stats().coalitions_batched, 2u);  // the fallback was not batched
  // Re-announcing known masks is a no-op.
  game.prefetch({0b0011, 0b1000});
  EXPECT_EQ(batch_calls, 2u);
}

TEST(BatchedGame, Validation) {
  BatchedGame game(3, batch_of(additive_game({1, 2, 3})));
  EXPECT_DOUBLE_EQ(game.value(0), 0.0);
  EXPECT_THROW(game.value(0b1000), std::out_of_range);
  EXPECT_THROW(game.prefetch({0b1000}), std::out_of_range);
  EXPECT_THROW(BatchedGame(3, nullptr), std::invalid_argument);
  EXPECT_THROW(BatchedGame(64, batch_of(additive_game(std::vector<double>(64, 1.0)))),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// S-SHAP: cross-round ValueCache
// ---------------------------------------------------------------------------

TEST(ValueCache, HitsOnUnchangedContentAcrossRounds) {
  ValueCache cache;
  cache.begin_round(0, /*context=*/7, {11, 22, 33});
  double v = 0.0;
  EXPECT_FALSE(cache.lookup(0b011, v));
  cache.store(0b011, 1.25);
  EXPECT_TRUE(cache.lookup(0b011, v));
  EXPECT_EQ(v, 1.25);
  // Next round, same content hashes: still a hit (this is the cross-round
  // case — e.g. both members' virtual models were frozen/stale).
  cache.begin_round(1, 7, {11, 22, 33});
  v = 0.0;
  EXPECT_TRUE(cache.lookup(0b011, v));
  EXPECT_EQ(v, 1.25);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ValueCache, MemberContentChangeInvalidates) {
  ValueCache cache;
  cache.begin_round(0, 7, {11, 22, 33});
  cache.store(0b011, 1.25);
  cache.store(0b100, 2.5);
  // Player 0's virtual model changed: coalitions containing it miss, the
  // coalition without it still hits.
  cache.begin_round(1, 7, {99, 22, 33});
  double v = 0.0;
  EXPECT_FALSE(cache.lookup(0b011, v));
  EXPECT_TRUE(cache.lookup(0b100, v));
  EXPECT_EQ(v, 2.5);
}

TEST(ValueCache, ContextChangeInvalidates) {
  ValueCache cache;
  cache.begin_round(0, 7, {11, 22});
  cache.store(0b01, 0.5);
  // New validation batch (different context hash): everything misses.
  cache.begin_round(1, 8, {11, 22});
  double v = 0.0;
  EXPECT_FALSE(cache.lookup(0b01, v));
}

TEST(ValueCache, AgeEviction) {
  ValueCache cache(/*max_age_rounds=*/2);
  cache.begin_round(0, 7, {11, 22});
  cache.store(0b01, 0.5);
  cache.begin_round(1, 7, {11, 22});
  cache.begin_round(2, 7, {11, 22});
  EXPECT_EQ(cache.size(), 1u);  // age 2 == max_age: still alive
  cache.begin_round(3, 7, {11, 22});
  EXPECT_EQ(cache.size(), 0u);  // age 3 > max_age: evicted
  EXPECT_EQ(cache.stats().evictions, 1u);
  double v = 0.0;
  EXPECT_FALSE(cache.lookup(0b01, v));
}

TEST(ValueCache, LookupRefreshesAge) {
  ValueCache cache(/*max_age_rounds=*/2);
  cache.begin_round(0, 7, {11, 22});
  cache.store(0b01, 0.5);
  double v = 0.0;
  cache.begin_round(2, 7, {11, 22});
  EXPECT_TRUE(cache.lookup(0b01, v));  // touched at round 2
  cache.begin_round(4, 7, {11, 22});
  EXPECT_TRUE(cache.lookup(0b01, v));  // age 2 from the touch, still alive
}

TEST(ValueCache, Validation) {
  EXPECT_THROW(ValueCache(0), std::invalid_argument);
  ValueCache cache;
  cache.begin_round(0, 7, {11, 22});
  double v = 0.0;
  EXPECT_THROW(cache.lookup(0, v), std::out_of_range);
  EXPECT_THROW(cache.lookup(0b100, v), std::out_of_range);
  EXPECT_THROW(cache.store(0b100, 1.0), std::out_of_range);
}

TEST(ValueCache, ServesBatchedGameAcrossRounds) {
  auto fn = additive_game({1.0, 2.0, 3.0});
  ValueCache cache;
  cache.begin_round(0, 7, {11, 22, 33});
  double first_val = 0.0;
  {
    std::size_t calls = 0;
    BatchedGame game(3, batch_of(fn, &calls), &cache);
    game.prefetch({0b011, 0b111});
    first_val = game.value(0b011);
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(game.stats().cache_misses, 2u);
    EXPECT_EQ(game.stats().cache_hits, 0u);
  }
  // Next round, unchanged member contents: a fresh game resolves both
  // coalitions from the cache and never calls the evaluator.
  cache.begin_round(1, 7, {11, 22, 33});
  {
    std::size_t calls = 0;
    BatchedGame game(3, batch_of(fn, &calls), &cache);
    game.prefetch({0b011, 0b111});
    EXPECT_EQ(calls, 0u);
    EXPECT_EQ(game.evaluations(), 0u);
    EXPECT_EQ(game.stats().cache_hits, 2u);
    EXPECT_EQ(game.value(0b011), first_val);  // the stored double, verbatim
  }
}

// ---------------------------------------------------------------------------
// S-SHAP: variance-adaptive Monte Carlo
// ---------------------------------------------------------------------------

TEST(AdaptiveMc, EfficiencyHoldsPerEstimate) {
  // Pair-averaged permutation walks still telescope to v(full) - v(empty).
  CachedGame game(6, majority_game(4));
  Rng rng(21);
  AdaptiveMcOptions opts;
  const auto res = adaptive_monte_carlo_shapley(game, opts, rng);
  EXPECT_NEAR(std::accumulate(res.phi.begin(), res.phi.end(), 0.0), 1.0, 1e-9);
  EXPECT_GE(res.permutations_used, opts.min_permutations);
  EXPECT_LE(res.permutations_used, opts.max_permutations);
}

TEST(AdaptiveMc, AntitheticIsExactOnQuadraticGames) {
  // See quadratic_game: the antithetic pair average has zero variance, so the
  // adaptive estimator lands on the exact Shapley value; plain MC at the same
  // budget does not. This is the variance-reduction property in its sharpest
  // form.
  const std::vector<double> worth = {0.4, 1.1, 0.25, 0.8, 0.6};
  auto fn = quadratic_game(worth);
  CachedGame exact_g(5, fn);
  const auto exact = exact_shapley(exact_g);

  CachedGame anti_g(5, fn);
  Rng r1(77);
  AdaptiveMcOptions opts;
  opts.min_permutations = 4;
  opts.max_permutations = 8;
  const auto anti = adaptive_monte_carlo_shapley(anti_g, opts, r1);
  double anti_err = 0.0, plain_err = 0.0;
  for (std::size_t i = 0; i < 5; ++i) anti_err += std::abs(anti.phi[i] - exact[i]);
  EXPECT_LT(anti_err, 1e-9);

  CachedGame plain_g(5, fn);
  Rng r2(77);
  const auto plain = monte_carlo_shapley(plain_g, 8, r2);
  for (std::size_t i = 0; i < 5; ++i) plain_err += std::abs(plain[i] - exact[i]);
  EXPECT_GT(plain_err, 1e-6);
}

TEST(AdaptiveMc, AntitheticReducesErrorAtFixedBudget) {
  // Statistical version across seeds on an interaction game: mean absolute
  // error with antithetic pairs <= without, at the same permutation budget.
  auto fn = quadratic_game({0.3, 0.9, 0.5, 0.7, 0.2, 0.6});
  CachedGame exact_g(6, fn);
  const auto exact = exact_shapley(exact_g);
  AdaptiveMcOptions anti_opts;
  anti_opts.min_permutations = anti_opts.max_permutations = 16;  // no early stop
  AdaptiveMcOptions plain_opts = anti_opts;
  plain_opts.antithetic = false;
  double anti_err = 0.0, plain_err = 0.0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    CachedGame ga(6, fn), gp(6, fn);
    Rng ra(300 + s), rp(300 + s);
    const auto a = adaptive_monte_carlo_shapley(ga, anti_opts, ra);
    const auto p = adaptive_monte_carlo_shapley(gp, plain_opts, rp);
    EXPECT_EQ(a.permutations_used, 16u);
    EXPECT_EQ(p.permutations_used, 16u);
    for (std::size_t i = 0; i < 6; ++i) {
      anti_err += std::abs(a.phi[i] - exact[i]);
      plain_err += std::abs(p.phi[i] - exact[i]);
    }
  }
  EXPECT_LT(anti_err, plain_err);
}

TEST(AdaptiveMc, EarlyStopsAndPreservesTopPlayer) {
  // One dominant player: the CI gap opens quickly, sampling stops early, and
  // the argmax matches both the exact value and a full-budget run.
  auto fn = quadratic_game({0.1, 0.15, 2.0, 0.12, 0.08});
  CachedGame exact_g(5, fn);
  const auto exact = exact_shapley(exact_g);
  const auto top_exact = static_cast<std::size_t>(
      std::max_element(exact.begin(), exact.end()) - exact.begin());

  CachedGame g(5, fn);
  Rng rng(55);
  AdaptiveMcOptions opts;
  opts.min_permutations = 4;
  opts.max_permutations = 64;
  const auto res = adaptive_monte_carlo_shapley(g, opts, rng);
  EXPECT_TRUE(res.early_stopped);
  EXPECT_LT(res.permutations_used, opts.max_permutations);
  const auto top_adaptive = static_cast<std::size_t>(
      std::max_element(res.phi.begin(), res.phi.end()) - res.phi.begin());
  EXPECT_EQ(top_adaptive, top_exact);

  CachedGame g_full(5, fn);
  Rng rng_full(55);
  AdaptiveMcOptions full_opts = opts;
  full_opts.min_permutations = full_opts.max_permutations;  // disable the stop
  const auto full = adaptive_monte_carlo_shapley(g_full, full_opts, rng_full);
  EXPECT_FALSE(full.early_stopped);
  const auto top_full = static_cast<std::size_t>(
      std::max_element(full.phi.begin(), full.phi.end()) - full.phi.begin());
  EXPECT_EQ(top_adaptive, top_full);
}

TEST(AdaptiveMc, Validation) {
  CachedGame g(3, majority_game(2));
  Rng rng(1);
  AdaptiveMcOptions opts;
  opts.max_permutations = 0;
  EXPECT_THROW(adaptive_monte_carlo_shapley(g, opts, rng), std::invalid_argument);
  opts.max_permutations = 4;
  opts.ci_z = -1.0;
  EXPECT_THROW(adaptive_monte_carlo_shapley(g, opts, rng), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// S-SHAP: CoalitionBatchEvaluator
// ---------------------------------------------------------------------------

TEST(CoalitionBatchEvaluator, BatchableRecognizesLayerChains) {
  EXPECT_TRUE(sim::CoalitionBatchEvaluator::batchable(nn::make_mlp(16, 8, 4)));
  EXPECT_TRUE(sim::CoalitionBatchEvaluator::batchable(nn::make_logistic(16, 4)));
  EXPECT_FALSE(sim::CoalitionBatchEvaluator::batchable(nn::make_mnist_cnn(10, 1, 4)));
}

TEST(CoalitionBatchEvaluator, BitIdenticalToSequentialScoring) {
  // The whole S-SHAP contract: stacked-GEMM scores must EQUAL the sequential
  // accuracy_on/loss_on doubles, not approximate them.
  const auto ds = data::make_gaussian_mixture(80, 4, 6, 2.5, 0.5, 9);
  std::vector<std::size_t> idx(40);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const auto batch = sim::FixedBatch::from(ds, idx);

  nn::Model model = nn::make_mlp(6, 12, 4);
  Rng rng(17);
  model.init(rng);
  const auto base = model.flat_params();
  std::vector<std::vector<float>> candidates;
  for (std::uint64_t s = 0; s < 5; ++s) {
    auto p = base;
    Rng prng(100 + s);
    for (auto& v : p) v += 0.2f * static_cast<float>(prng.normal());
    candidates.push_back(std::move(p));
  }

  std::vector<const std::vector<float>*> ptrs;
  for (const auto& c : candidates) ptrs.push_back(&c);
  sim::CoalitionBatchEvaluator eval(model, batch);
  const auto accs = eval.accuracies(ptrs);
  const auto losses = eval.losses(ptrs);
  ASSERT_EQ(accs.size(), candidates.size());
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    EXPECT_EQ(accs[k], sim::accuracy_on(model, candidates[k], batch)) << "model " << k;
    EXPECT_EQ(losses[k], sim::loss_on(model, candidates[k], batch)) << "model " << k;
  }
}

TEST(CoalitionBatchEvaluator, ChunkedStackBitIdenticalToUnchunked) {
  // Oversized batches are split into cache-budgeted chunks along the model
  // axis. A one-model-per-GEMM budget must give byte-for-byte the same scores
  // as one giant stack (and as the sequential path) — chunking only splits
  // the independent output columns, never a reduction.
  const auto ds = data::make_gaussian_mixture(80, 4, 6, 2.5, 0.5, 9);
  std::vector<std::size_t> idx(40);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const auto batch = sim::FixedBatch::from(ds, idx);

  nn::Model model = nn::make_mlp(6, 12, 4);
  Rng rng(17);
  model.init(rng);
  const auto base = model.flat_params();
  std::vector<std::vector<float>> candidates;
  for (std::uint64_t s = 0; s < 9; ++s) {
    auto p = base;
    Rng prng(200 + s);
    for (auto& v : p) v += 0.2f * static_cast<float>(prng.normal());
    candidates.push_back(std::move(p));
  }
  std::vector<const std::vector<float>*> ptrs;
  for (const auto& c : candidates) ptrs.push_back(&c);

  sim::CoalitionBatchEvaluator one_stack(model, batch);  // default budget: 1 chunk
  sim::CoalitionBatchEvaluator tiny(model, batch, /*weight_budget_bytes=*/1);  // 1 model/chunk
  EXPECT_EQ(one_stack.accuracies(ptrs), tiny.accuracies(ptrs));
  EXPECT_EQ(one_stack.losses(ptrs), tiny.losses(ptrs));
  const auto accs = tiny.accuracies(ptrs);
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    EXPECT_EQ(accs[k], sim::accuracy_on(model, candidates[k], batch)) << "model " << k;
  }
  EXPECT_THROW(sim::CoalitionBatchEvaluator(model, batch, 0), std::invalid_argument);
}

TEST(CoalitionBatchEvaluator, RejectsWrongParamCount) {
  const auto ds = data::make_gaussian_mixture(40, 3, 6, 2.5, 0.5, 9);
  std::vector<std::size_t> idx = {0, 1, 2, 3};
  const auto batch = sim::FixedBatch::from(ds, idx);
  nn::Model model = nn::make_mlp(6, 8, 3);
  sim::CoalitionBatchEvaluator eval(model, batch);
  std::vector<float> wrong(model.num_params() + 1, 0.0f);
  std::vector<const std::vector<float>*> ptrs = {&wrong};
  EXPECT_THROW(eval.accuracies(ptrs), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// S-SHAP: linear coalition mode (set_members / coalition_*)
// ---------------------------------------------------------------------------

namespace {

/// Members + validation batch shared by the linear-mode tests.
struct LinearBed {
  nn::Model model = nn::make_mlp(6, 12, 4);
  sim::FixedBatch batch;
  std::vector<std::vector<float>> members;
  std::vector<const std::vector<float>*> ptrs;

  LinearBed() {
    const auto ds = data::make_gaussian_mixture(80, 4, 6, 2.5, 0.5, 9);
    std::vector<std::size_t> idx(40);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    batch = sim::FixedBatch::from(ds, idx);
    Rng rng(11);
    model.init(rng);
    const auto base = model.flat_params();
    for (std::size_t s = 0; s < 6; ++s) {
      auto p = base;
      Rng prng(200 + s);
      for (auto& v : p) v += 0.2f * static_cast<float>(prng.normal());
      members.push_back(std::move(p));
    }
    for (const auto& m : members) ptrs.push_back(&m);
  }

  /// Sequential reference: average member params (ascending order, like
  /// common::mean_of) and score with accuracy_on/loss_on.
  std::vector<float> coalition_mean(std::uint64_t mask) const {
    std::vector<const std::vector<float>*> in;
    for (std::size_t k = 0; k < members.size(); ++k) {
      if (mask & (std::uint64_t{1} << k)) in.push_back(&members[k]);
    }
    std::vector<float> out(members[0].size(), 0.0f);
    const float w = 1.0f / static_cast<float>(in.size());
    for (const auto* m : in) {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += w * (*m)[i];
    }
    return out;
  }
};

}  // namespace

TEST(CoalitionBatchEvaluator, LinearModeMatchesSequentialWithinTolerance) {
  // Linear mode averages first-layer PRE-ACTIVATIONS instead of weights.
  // Mathematically identical; float addition does not distribute, so we
  // demand closeness, not bit-identity (that contract stays with batched).
  LinearBed bed;
  sim::CoalitionBatchEvaluator eval(bed.model, bed.batch);
  eval.set_members(bed.ptrs);

  std::vector<std::uint64_t> masks;
  for (std::uint64_t m = 1; m < (std::uint64_t{1} << bed.members.size()); ++m) {
    masks.push_back(m);
  }
  const auto accs = eval.coalition_accuracies(masks);
  const auto losses = eval.coalition_losses(masks);
  ASSERT_EQ(accs.size(), masks.size());
  const double acc_slack = 2.0 / static_cast<double>(bed.batch.y.size());
  for (std::size_t q = 0; q < masks.size(); ++q) {
    const auto avg = bed.coalition_mean(masks[q]);
    EXPECT_NEAR(losses[q], sim::loss_on(bed.model, avg, bed.batch), 1e-4)
        << "mask " << masks[q];
    // Accuracy is a step function of the logits; an ulp flip near an argmax
    // tie can move it by one sample, so allow a couple of samples of slack.
    EXPECT_NEAR(accs[q], sim::accuracy_on(bed.model, avg, bed.batch), acc_slack)
        << "mask " << masks[q];
  }
  // Singleton coalitions involve no averaging at all and the same layer
  // arithmetic as the stacked path, so they must match exactly.
  for (std::size_t k = 0; k < bed.members.size(); ++k) {
    const auto one = eval.coalition_accuracies({std::uint64_t{1} << k});
    EXPECT_EQ(one[0], sim::accuracy_on(bed.model, bed.members[k], bed.batch)) << "member " << k;
  }
}

TEST(CoalitionBatchEvaluator, LinearModeDeterministicAcrossInstances) {
  LinearBed bed;
  std::vector<std::uint64_t> masks = {0b1, 0b11, 0b10110, 0b111111, 0b101};
  sim::CoalitionBatchEvaluator a(bed.model, bed.batch);
  sim::CoalitionBatchEvaluator b(bed.model, bed.batch, /*weight_budget_bytes=*/1);
  a.set_members(bed.ptrs);
  b.set_members(bed.ptrs);
  // Chunking the member-stage GEMM must not change anything downstream,
  // and two evaluators must agree bit-for-bit (determinism contract).
  EXPECT_EQ(a.coalition_accuracies(masks), b.coalition_accuracies(masks));
  EXPECT_EQ(a.coalition_losses(masks), b.coalition_losses(masks));
  EXPECT_EQ(a.coalition_losses(masks), a.coalition_losses(masks));
}

TEST(CoalitionBatchEvaluator, LinearModeValidatesInputs) {
  LinearBed bed;
  sim::CoalitionBatchEvaluator eval(bed.model, bed.batch);
  // Scoring before set_members is a logic error.
  EXPECT_THROW(eval.coalition_accuracies({1}), std::logic_error);
  eval.set_members(bed.ptrs);
  // Empty coalitions and bits beyond the member count are rejected.
  EXPECT_THROW(eval.coalition_accuracies({0}), std::out_of_range);
  EXPECT_THROW(eval.coalition_accuracies({std::uint64_t{1} << bed.members.size()}),
               std::out_of_range);
  // >63 members cannot be expressed as a mask.
  std::vector<const std::vector<float>*> many(64, bed.ptrs[0]);
  EXPECT_THROW(eval.set_members(many), std::invalid_argument);
  EXPECT_THROW(eval.set_members({}), std::invalid_argument);
}
