// CSV writer/reader, CLI parser and flat-vector math helpers.

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/vec_math.hpp"

using namespace pdsl;

TEST(Csv, WriteReadRoundTrip) {
  const std::string path = "/tmp/pdsl_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b", "c"});
    w.row(1, 2.5, "x");
    w.row(4, 5.0, "y");
    w.flush();
    EXPECT_EQ(w.rows_written(), 2u);
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1][0], "1");
  EXPECT_EQ(rows[2][2], "y");
}

TEST(Csv, ArityIsEnforced) {
  CsvWriter w("/tmp/pdsl_csv_test2.csv", {"a", "b"});
  EXPECT_THROW(w.row(1), std::invalid_argument);
  EXPECT_THROW(w.row(1, 2, 3), std::invalid_argument);
}

TEST(Csv, SplitLine) {
  EXPECT_EQ(split_csv_line("a,b,,c"), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split_csv_line(""), (std::vector<std::string>{""}));
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/tmp/definitely_missing_pdsl.csv"), std::runtime_error);
}

namespace {
CliArgs parse(std::vector<const char*> argv, std::vector<std::string> allowed) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data(), allowed);
}
}  // namespace

TEST(Cli, ParsesSpaceAndEqualsForms) {
  const auto args = parse({"--rounds", "50", "--gamma=0.01"}, {"rounds", "gamma"});
  EXPECT_EQ(args.get_int("rounds", 0), 50);
  EXPECT_DOUBLE_EQ(args.get_double("gamma", 0.0), 0.01);
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  const auto args = parse({}, {"rounds"});
  EXPECT_EQ(args.get_int("rounds", 7), 7);
  EXPECT_EQ(args.get_string("rounds", "z"), "z");
  EXPECT_FALSE(args.has("rounds"));
}

TEST(Cli, BareFlagIsTrue) {
  const auto args = parse({"--verbose"}, {"verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Cli, Lists) {
  const auto args = parse({"--eps", "0.08,0.1,0.3", "--agents=10,20"}, {"eps", "agents"});
  EXPECT_EQ(args.get_double_list("eps", {}), (std::vector<double>{0.08, 0.1, 0.3}));
  EXPECT_EQ(args.get_int_list("agents", {}), (std::vector<std::int64_t>{10, 20}));
  EXPECT_EQ(args.get_int_list("missing", {5}), (std::vector<std::int64_t>{5}));
}

TEST(Cli, UnknownFlagThrows) {
  EXPECT_THROW(parse({"--bogus", "1"}, {"rounds"}), std::invalid_argument);
  EXPECT_THROW(parse({"positional"}, {"rounds"}), std::invalid_argument);
}

TEST(VecMath, AxpyDotNorm) {
  std::vector<float> a = {1.0f, 2.0f};
  axpy(a, {1.0f, 1.0f}, 2.0f);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  EXPECT_FLOAT_EQ(a[1], 4.0f);
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(l2_distance(a, {3.0f, 0.0f}), 4.0);
  std::vector<float> bad = {1.0f};
  EXPECT_THROW(axpy(a, bad, 1.0f), std::invalid_argument);
}

TEST(VecMath, WeightedSumAndMean) {
  const std::vector<float> a = {1.0f, 0.0f};
  const std::vector<float> b = {0.0f, 2.0f};
  const auto ws = weighted_sum({&a, &b}, {2.0, 0.5});
  EXPECT_FLOAT_EQ(ws[0], 2.0f);
  EXPECT_FLOAT_EQ(ws[1], 1.0f);
  const auto m = mean_of({&a, &b});
  EXPECT_FLOAT_EQ(m[0], 0.5f);
  EXPECT_FLOAT_EQ(m[1], 1.0f);
  EXPECT_THROW(weighted_sum({&a}, {1.0, 2.0}), std::invalid_argument);
}
