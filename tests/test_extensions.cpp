// Extension modules: FedAvg reference, Dropout layer (training-mode
// semantics), and the communication cost model.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "algos/fedavg.hpp"
#include "core/experiment.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/model.hpp"
#include "sim/comm_cost.hpp"

using namespace pdsl;

TEST(FedAvg, LearnsAndReachesConsensusEveryRound) {
  core::ExperimentConfig cfg;
  cfg.algorithm = "fedavg";
  cfg.dataset = "gaussian";
  cfg.model = "logistic";
  cfg.topology = "ring";  // ignored by FedAvg but required by the Env
  cfg.agents = 5;
  cfg.rounds = 40;
  cfg.train_samples = 400;
  cfg.test_samples = 80;
  cfg.validation_samples = 40;
  cfg.image = 3;
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.1;
  cfg.hp.local_steps = 3;
  cfg.sigma_mode = "none";
  cfg.metrics.eval_every = 20;
  const auto res = core::run_experiment(cfg);
  EXPECT_EQ(res.algorithm, "FEDAVG");
  EXPECT_GT(res.final_accuracy, 0.5);
  // The server redistributes one global model: consensus distance is 0.
  EXPECT_NEAR(res.series.back().consensus, 0.0, 1e-6);
}

TEST(FedAvg, DpVariantIsNamedAndNoisier) {
  core::ExperimentConfig cfg;
  cfg.algorithm = "dp_fedavg";
  cfg.dataset = "gaussian";
  cfg.model = "logistic";
  cfg.topology = "ring";
  cfg.agents = 4;
  cfg.rounds = 10;
  cfg.train_samples = 300;
  cfg.test_samples = 60;
  cfg.validation_samples = 40;
  cfg.image = 3;
  cfg.hp.batch = 8;
  cfg.hp.gamma = 0.1;
  cfg.sigma_mode = "fixed";
  cfg.hp.sigma = 0.3;
  cfg.metrics.eval_every = 10;
  const auto noisy = core::run_experiment(cfg);
  EXPECT_EQ(noisy.algorithm, "DP-FEDAVG");
  cfg.sigma_mode = "none";
  const auto clean = core::run_experiment(cfg);
  EXPECT_LE(clean.final_loss, noisy.final_loss + 0.2);
}

TEST(Dropout, IdentityInEvalMode) {
  nn::Dropout drop(0.5);
  Tensor x(Shape{2, 4}, 1.0f);
  const Tensor out = drop.forward(x);  // default: eval mode
  for (std::size_t i = 0; i < out.numel(); ++i) EXPECT_FLOAT_EQ(out[i], 1.0f);
  // Backward in eval mode is identity too.
  const Tensor g = drop.backward(x);
  for (std::size_t i = 0; i < g.numel(); ++i) EXPECT_FLOAT_EQ(g[i], 1.0f);
}

TEST(Dropout, TrainingModeZeroesAndRescales) {
  nn::Dropout drop(0.5, 42);
  drop.set_training(true);
  Tensor x(Shape{1, 2000}, 1.0f);
  const Tensor out = drop.forward(x);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(out[i], 2.0f);  // inverted dropout scale 1/(1-0.5)
      sum += out[i];
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / out.numel(), 0.5, 0.05);
  EXPECT_NEAR(sum / out.numel(), 1.0, 0.1);  // expectation preserved
}

TEST(Dropout, BackwardMatchesMask) {
  nn::Dropout drop(0.3, 7);
  drop.set_training(true);
  Tensor x(Shape{1, 100}, 1.0f);
  const Tensor out = drop.forward(x);
  Tensor gout(Shape{1, 100}, 1.0f);
  const Tensor gin = drop.backward(gout);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FLOAT_EQ(gin[i], out[i]);
}

TEST(Dropout, ModelTogglesTrainingAutomatically) {
  Rng rng(1);
  nn::Model m;
  m.emplace<nn::Linear>(4, 8);
  m.emplace<nn::Dropout>(0.5, 3);
  m.emplace<nn::Linear>(8, 2);
  m.init(rng);
  Tensor x(Shape{4, 4}, 0.5f);
  const std::vector<int> y = {0, 1, 0, 1};
  // Evaluation is deterministic (dropout off).
  EXPECT_DOUBLE_EQ(m.loss(x, y), m.loss(x, y));
  // Training passes differ across calls (dropout masks differ).
  const double a = m.loss_and_backward(x, y);
  const double b = m.loss_and_backward(x, y);
  EXPECT_NE(a, b);
  // And the model is back in eval mode after loss_and_backward.
  EXPECT_DOUBLE_EQ(m.loss(x, y), m.loss(x, y));
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(nn::Dropout(1.0), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(-0.1), std::invalid_argument);
}

class CompressionSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(CompressionSweep, AlgorithmsRunOverLossyChannels) {
  const auto [algo, channel] = GetParam();
  core::ExperimentConfig cfg;
  cfg.algorithm = algo;
  cfg.dataset = "gaussian";
  cfg.model = "logistic";
  cfg.topology = "ring";
  cfg.agents = 4;
  cfg.rounds = 3;
  cfg.train_samples = 240;
  cfg.test_samples = 60;
  cfg.validation_samples = 40;
  cfg.image = 3;
  cfg.hp.batch = 8;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.sigma_mode = "fixed";
  cfg.hp.sigma = 0.05;
  cfg.compression = channel;
  cfg.metrics.eval_every = 3;
  const auto res = core::run_experiment(cfg);
  for (const auto& m : res.series) EXPECT_TRUE(std::isfinite(m.avg_loss)) << algo << channel;
  // Compressed channels must report fewer wire bytes than dense.
  if (channel != "none") {
    cfg.compression = "none";
    const auto dense = core::run_experiment(cfg);
    EXPECT_LT(res.bytes, dense.bytes) << algo << channel;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Channels, CompressionSweep,
    ::testing::Combine(::testing::Values("pdsl", "dp_dpsgd", "dp_netfleet"),
                       ::testing::Values("none", "topk:0.25", "quant:8")),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (auto& c : name) {
        if (c == ':' || c == '.') c = '_';
      }
      return name;
    });

TEST(PaperScaleModels, MnistCnn28x28RunsThroughTheFullStack) {
  // One round at the paper's input geometry (28x28 MNIST CNN) through the
  // experiment driver — guards the --scale paper path.
  core::ExperimentConfig cfg;
  cfg.algorithm = "dp_dpsgd";
  cfg.dataset = "mnist_like";
  cfg.model = "mnist_cnn";
  cfg.topology = "ring";
  cfg.agents = 3;
  cfg.rounds = 1;
  cfg.train_samples = 120;
  cfg.test_samples = 30;
  cfg.validation_samples = 30;
  cfg.image = 28;
  cfg.hp.batch = 8;
  cfg.sigma_mode = "none";
  cfg.metrics.eval_every = 1;
  cfg.metrics.test_subsample = 30;
  const auto res = core::run_experiment(cfg);
  EXPECT_GT(res.model_dim, 1000u);
  EXPECT_TRUE(std::isfinite(res.final_loss));
}

TEST(PaperScaleModels, CifarCnn32x32RunsThroughTheFullStack) {
  core::ExperimentConfig cfg;
  cfg.algorithm = "dpsgd";
  cfg.dataset = "cifar_like";
  cfg.model = "cifar_cnn";
  cfg.topology = "ring";
  cfg.agents = 3;
  cfg.rounds = 1;
  cfg.train_samples = 120;
  cfg.test_samples = 30;
  cfg.validation_samples = 30;
  cfg.image = 32;
  cfg.hp.batch = 8;
  cfg.sigma_mode = "none";
  cfg.metrics.eval_every = 1;
  cfg.metrics.test_subsample = 30;
  const auto res = core::run_experiment(cfg);
  EXPECT_GT(res.model_dim, 10000u);
  EXPECT_TRUE(std::isfinite(res.final_loss));
}

TEST(CommCost, TransferTimeFormula) {
  sim::CommCostModel model{0.01, 1e6, 1};  // 10ms latency, 1 Mbps
  // 10 messages, 1e6 bytes: 10*0.01 + 8e6/1e6 = 0.1 + 8 = 8.1 s
  EXPECT_NEAR(model.transfer_time(10, 1000000), 8.1, 1e-9);
  // Two parallel links halve both terms.
  model.parallel_links = 2;
  EXPECT_NEAR(model.transfer_time(10, 1000000), 4.05, 1e-9);
  model.bandwidth_bps = 0.0;
  EXPECT_THROW(model.transfer_time(1, 1), std::invalid_argument);
}

TEST(CommCost, PresetsAreOrdered) {
  const auto dc = sim::datacenter_network(1);
  const auto wan = sim::wan_network(1);
  const auto lora = sim::lorawan_like(1);
  const std::size_t msgs = 100, bytes = 1 << 20;
  EXPECT_LT(dc.transfer_time(msgs, bytes), wan.transfer_time(msgs, bytes));
  EXPECT_LT(wan.transfer_time(msgs, bytes), lora.transfer_time(msgs, bytes));
}

TEST(CommCost, SparserGraphsTradeTimeForRounds) {
  // Fully-connected PDSL sends ~M/2x the ring's traffic per round; under a
  // WAN model that is the dominant cost. Sanity-check with real counters.
  core::ExperimentConfig cfg;
  cfg.algorithm = "pdsl";
  cfg.dataset = "gaussian";
  cfg.model = "logistic";
  cfg.agents = 8;
  cfg.rounds = 2;
  cfg.train_samples = 300;
  cfg.test_samples = 60;
  cfg.validation_samples = 40;
  cfg.image = 3;
  cfg.hp.batch = 8;
  cfg.hp.shapley_permutations = 2;
  cfg.hp.validation_batch = 16;
  cfg.sigma_mode = "none";
  cfg.metrics.eval_every = 2;
  cfg.topology = "full";
  const auto full = core::run_experiment(cfg);
  cfg.topology = "ring";
  const auto ring = core::run_experiment(cfg);
  const auto wan = sim::wan_network(4);
  EXPECT_GT(wan.transfer_time(full.messages, full.bytes),
            wan.transfer_time(ring.messages, ring.bytes));
}
