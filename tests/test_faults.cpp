// S-FAULT unit tests: FaultPlan hash determinism (drop/delay/churn decisions
// identical at any thread width), delayed-delivery maturation order through
// Network::begin_round, churn round-interval semantics, Network::clear()
// accounting with in-flight delayed messages, and the graceful-degradation
// paths in PDSL (pi renormalization over survivors, bounded-staleness reuse,
// self-gradient fallback) plus the unread-mailbox protocol-bug detector.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/model_zoo.hpp"
#include "runtime/parallel_for.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

using namespace pdsl;
using namespace pdsl::algos;
using pdsl::core::Pdsl;
using pdsl::sim::EdgeFaultRule;
using pdsl::sim::FaultPlan;
using pdsl::sim::LateMessage;
using pdsl::sim::Network;
using pdsl::sim::NetworkOptions;

namespace {

struct Fixture {
  data::Dataset train;
  data::Dataset validation;
  data::Dataset test;
  graph::Topology topo;
  graph::MixingMatrix mixing;
  nn::Model model;
  std::vector<std::vector<std::size_t>> partition;

  static Fixture make(std::size_t agents, const std::string& topology,
                      std::uint64_t seed = 31) {
    Rng rng(seed);
    auto pool = data::make_gaussian_mixture(600, 4, 6, 2.5, 0.5, seed);
    auto [rest, test] = data::split_off(pool, 100, rng);
    auto [train, validation] = data::split_off(rest, 100, rng);
    auto topo = graph::Topology::make(graph::topology_from_string(topology), agents, &rng);
    auto mixing = graph::MixingMatrix::metropolis(topo);
    nn::Model model = nn::make_mlp(6, 10, 4);
    auto partition = data::iid_partition(train, agents, rng);
    return Fixture{std::move(train), std::move(validation), std::move(test),
                   std::move(topo),  std::move(mixing),     std::move(model),
                   std::move(partition)};
  }

  Env env() const {
    Env e;
    e.topo = &topo;
    e.mixing = &mixing;
    e.train = &train;
    e.validation = &validation;
    e.model_template = &model;
    e.partition = &partition;
    e.hp.gamma = 0.05;
    e.hp.alpha = 0.5;
    e.hp.clip = 5.0;
    e.hp.batch = 16;
    e.hp.shapley_permutations = 4;
    e.hp.validation_batch = 32;
    e.seed = 13;
    return e;
  }

  /// One EdgeFaultRule per directed inter-agent pair.
  std::vector<EdgeFaultRule> all_edges_rule(double p, std::size_t from_round = 0,
                                            std::size_t until = sim::kNoRoundLimit) const {
    std::vector<EdgeFaultRule> rules;
    const std::size_t m = topo.size();
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        if (i != j) rules.push_back(EdgeFaultRule{i, j, p, from_round, until});
      }
    }
    return rules;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// FaultPlan: validation + JSON
// ---------------------------------------------------------------------------

TEST(FaultPlan, ValidateRejectsOutOfRangeKnobs) {
  {
    FaultPlan p;
    p.drop_prob = 1.0;  // global probabilities live in [0, 1)
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.delay_prob = -0.1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.churn_prob = 0.2;
    p.churn_interval = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.edge_rules.push_back(EdgeFaultRule{0, 1, 0.5, 5, 5});  // empty window
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    FaultPlan p;  // edge rules may pin drop_prob to exactly 1.0
    p.edge_rules.push_back(EdgeFaultRule{0, 1, 1.0, 1, 4});
    EXPECT_NO_THROW(p.validate());
  }
}

TEST(FaultPlan, JsonRoundTripPreservesEveryKnob) {
  FaultPlan p;
  p.drop_prob = 0.1;
  p.delay_prob = 0.25;
  p.delay_rounds = 2;
  p.churn_prob = 0.3;
  p.churn_interval = 4;
  p.staleness_rounds = 3;
  p.seed = 99;
  p.edge_rules.push_back(EdgeFaultRule{1, 2, 0.75, 3, 8});

  const FaultPlan q = sim::fault_plan_from_json(sim::fault_plan_to_json(p));
  EXPECT_DOUBLE_EQ(q.drop_prob, p.drop_prob);
  EXPECT_DOUBLE_EQ(q.delay_prob, p.delay_prob);
  EXPECT_EQ(q.delay_rounds, p.delay_rounds);
  EXPECT_DOUBLE_EQ(q.churn_prob, p.churn_prob);
  EXPECT_EQ(q.churn_interval, p.churn_interval);
  EXPECT_EQ(q.staleness_rounds, p.staleness_rounds);
  EXPECT_EQ(q.seed, p.seed);
  ASSERT_EQ(q.edge_rules.size(), 1u);
  EXPECT_EQ(q.edge_rules[0].src, 1u);
  EXPECT_EQ(q.edge_rules[0].dst, 2u);
  EXPECT_DOUBLE_EQ(q.edge_rules[0].drop_prob, 0.75);
  EXPECT_EQ(q.edge_rules[0].from_round, 3u);
  EXPECT_EQ(q.edge_rules[0].until_round, 8u);
}

TEST(FaultPlan, JsonRejectsUnknownKeys) {
  const auto v = json::parse(R"({"drop_prob": 0.1, "not_a_knob": 1})");
  EXPECT_THROW(sim::fault_plan_from_json(v), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FaultPlan: hash determinism
// ---------------------------------------------------------------------------

TEST(FaultPlan, DecisionsArePureFunctionsOfIdentity) {
  FaultPlan p;
  p.drop_prob = 0.3;
  p.delay_prob = 0.3;
  p.delay_rounds = 3;
  p.churn_prob = 0.3;
  p.churn_interval = 2;
  p.seed = 7;

  // Record a batch of decisions, then re-query in reverse order: identical.
  std::vector<int> first;
  for (std::size_t src = 0; src < 4; ++src)
    for (std::size_t dst = 0; dst < 4; ++dst)
      for (std::uint64_t idx = 0; idx < 16; ++idx) {
        first.push_back(p.drop(src, dst, idx, 1) ? 1 : 0);
        first.push_back(static_cast<int>(p.delay(src, dst, idx)));
        first.push_back(p.offline(src, idx + 1) ? 1 : 0);
      }
  // Re-query from a copied plan (after the full first sweep): a pure function
  // of (seed, identity, index) gives the same answers regardless of what was
  // asked before.
  std::vector<int> second;
  FaultPlan copy = p;
  for (std::size_t src = 0; src < 4; ++src)
    for (std::size_t dst = 0; dst < 4; ++dst)
      for (std::uint64_t idx = 0; idx < 16; ++idx) {
        second.push_back(copy.drop(src, dst, idx, 1) ? 1 : 0);
        second.push_back(static_cast<int>(copy.delay(src, dst, idx)));
        second.push_back(copy.offline(src, idx + 1) ? 1 : 0);
      }
  EXPECT_EQ(first, second);

  // Delay is bounded: 0 or in [1, delay_rounds].
  for (std::uint64_t idx = 0; idx < 200; ++idx) {
    const std::size_t d = p.delay(0, 1, idx);
    EXPECT_LE(d, p.delay_rounds);
  }
}

TEST(FaultPlan, LegacyDropKnobReproducesHistoricDropStream) {
  // NetworkOptions{drop_prob, seed} predates FaultPlan; the constructor folds
  // it into faults.drop_prob/faults.seed and must reproduce the same drop set
  // as a FaultPlan configured directly.
  Rng rng(3);
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 4, &rng);

  NetworkOptions legacy;
  legacy.drop_prob = 0.4;
  legacy.seed = 21;
  Network a(topo, legacy);

  NetworkOptions modern;
  modern.faults.drop_prob = 0.4;
  modern.faults.seed = 21;
  Network b(topo, modern);

  std::vector<int> fates_a, fates_b;
  for (std::size_t t = 1; t <= 3; ++t) {
    a.begin_round(t);
    b.begin_round(t);
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j) {
        if (i == j) continue;
        fates_a.push_back(a.send(i, j, "x", {1.0f}) ? 1 : 0);
        fates_b.push_back(b.send(i, j, "x", {1.0f}) ? 1 : 0);
      }
    a.clear();
    b.clear();
  }
  EXPECT_EQ(fates_a, fates_b);
  EXPECT_GT(a.messages_dropped(), 0u);
  EXPECT_LT(a.messages_dropped(), a.messages_sent());
}

TEST(FaultPlan, ChurnIsConstantWithinAnIntervalAndRehashedAcross) {
  FaultPlan p;
  p.churn_prob = 0.5;
  p.churn_interval = 3;
  p.seed = 11;

  bool saw_offline = false, saw_online = false, saw_flip = false;
  for (std::size_t agent = 0; agent < 16; ++agent) {
    std::vector<bool> per_interval;
    for (std::size_t k = 0; k < 6; ++k) {
      const std::size_t lo = 1 + k * p.churn_interval;
      const bool off = p.offline(agent, lo);
      // Every round of interval k agrees with its first round.
      for (std::size_t r = lo; r < lo + p.churn_interval; ++r) {
        EXPECT_EQ(p.offline(agent, r), off) << "agent " << agent << " round " << r;
      }
      per_interval.push_back(off);
      (off ? saw_offline : saw_online) = true;
    }
    for (std::size_t k = 1; k < per_interval.size(); ++k) {
      if (per_interval[k] != per_interval[k - 1]) saw_flip = true;
    }
  }
  // With churn_prob=0.5 over 16 agents x 6 intervals the hash must produce
  // both outcomes and at least one cross-interval flip (deterministic: these
  // are fixed facts of seed 11, not a statistical claim).
  EXPECT_TRUE(saw_offline);
  EXPECT_TRUE(saw_online);
  EXPECT_TRUE(saw_flip);

  FaultPlan off;  // churn disabled => nobody is ever offline
  off.churn_prob = 0.0;
  off.seed = 11;
  for (std::size_t agent = 0; agent < 8; ++agent)
    for (std::size_t r = 1; r <= 10; ++r) EXPECT_FALSE(off.offline(agent, r));
}

// ---------------------------------------------------------------------------
// Network: delayed delivery + clear() accounting
// ---------------------------------------------------------------------------

TEST(NetworkFaults, DelayedMessagesMatureInDeterministicOrder) {
  Rng rng(5);
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 3, &rng);
  NetworkOptions opts;
  opts.faults.delay_prob = 0.9;
  opts.faults.delay_rounds = 2;
  opts.faults.seed = 17;
  Network net(topo, opts);

  EXPECT_TRUE(net.begin_round(1).empty());
  std::size_t immediate = 0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      ASSERT_TRUE(net.send(i, j, "m", {static_cast<float>(10 * i + j)}));
      if (net.receive(j, i, "m")) ++immediate;
    }
  EXPECT_GT(net.messages_delayed(), 0u);
  EXPECT_EQ(net.in_flight(), net.messages_delayed());
  // In-flight delayed messages are legitimately in transit: clear() must not
  // count or discard them.
  EXPECT_EQ(net.clear(), 0u);
  EXPECT_EQ(net.in_flight(), net.messages_delayed());

  std::size_t matured = 0;
  for (std::size_t t = 2; t <= 1 + opts.faults.delay_rounds; ++t) {
    const auto late = net.begin_round(t);
    for (std::size_t k = 1; k < late.size(); ++k) {
      const auto& a = late[k - 1];
      const auto& b = late[k];
      const auto ka = std::make_tuple(a.src, a.dst, a.tag);
      const auto kb = std::make_tuple(b.src, b.dst, b.tag);
      EXPECT_LE(ka, kb) << "matured messages not sorted by (src, dst, tag)";
    }
    for (const auto& msg : late) {
      EXPECT_EQ(msg.sent_round, 1u);
      ASSERT_EQ(msg.payload.size(), 1u);
      EXPECT_FLOAT_EQ(msg.payload[0], static_cast<float>(10 * msg.src + msg.dst));
    }
    matured += late.size();
  }
  // Delay is bounded: everything sent in round 1 surfaced by round 1+max.
  EXPECT_EQ(immediate + matured, net.messages_sent());
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(net.messages_dropped(), 0u);
}

TEST(NetworkFaults, ChurnDropsTrafficToAndFromOfflineAgents) {
  Rng rng(5);
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 6, &rng);
  NetworkOptions opts;
  opts.faults.churn_prob = 0.4;
  opts.faults.churn_interval = 2;
  // Pick the first seed whose round-1 interval has both offline and online
  // agents (a fixed, deterministic choice — just made without hardcoding a
  // magic hash preimage).
  for (std::uint64_t seed = 1;; ++seed) {
    opts.faults.seed = seed;
    std::size_t off = 0;
    for (std::size_t a = 0; a < 6; ++a)
      if (opts.faults.offline(a, 1)) ++off;
    if (off > 0 && off < 6) break;
    ASSERT_LT(seed, 1000u) << "no seed churns anyone out?";
  }
  Network net(topo, opts);

  net.begin_round(1);
  const auto& plan = net.faults();
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) {
      if (i == j) continue;
      const bool delivered = net.send(i, j, "x", {1.0f});
      const bool endpoint_offline = plan.offline(i, 1) || plan.offline(j, 1);
      EXPECT_EQ(delivered, !endpoint_offline) << i << "->" << j;
    }
  EXPECT_GT(net.messages_dropped(), 0u);
  net.clear();
}

// ---------------------------------------------------------------------------
// PDSL graceful degradation
// ---------------------------------------------------------------------------

TEST(PdslFaults, PiRenormalizesToUnityOverSurvivors) {
  const auto fx = Fixture::make(5, "full");
  Env env = fx.env();
  env.faults.drop_prob = 0.3;
  env.faults.seed = 41;
  Pdsl alg(env);

  bool saw_renormalized_row = false;
  for (std::size_t t = 1; t <= 3; ++t) {
    alg.run_round(t);
    for (std::size_t i = 0; i < alg.num_agents(); ++i) {
      const auto hood = fx.topo.closed_neighborhood(i);
      const auto& pi = alg.last_pi()[i];
      ASSERT_EQ(pi.size(), hood.size());
      std::size_t survivors = 0;
      double sum = 0.0;
      for (std::size_t k = 0; k < hood.size(); ++k) {
        if (pi[k] != 0.0) ++survivors;
        sum += pi[k] * fx.mixing(i, hood[k]);
      }
      if (survivors >= 2) {
        // Eq. 20 renormalized over the present subset: sum_k pi_k w_ik = 1.
        EXPECT_NEAR(sum, 1.0, 1e-9) << "agent " << i << " round " << t;
        if (survivors < hood.size()) saw_renormalized_row = true;
      }
    }
  }
  EXPECT_GT(alg.network().messages_dropped(), 0u);
  EXPECT_TRUE(saw_renormalized_row)
      << "drop_prob=0.3 over 3 rounds never produced a partial neighborhood";
}

TEST(PdslFaults, SelfFallbackWhenEveryNeighborFails) {
  const auto fx = Fixture::make(4, "full");
  Env env = fx.env();
  env.faults.edge_rules = fx.all_edges_rule(1.0);  // sever every link
  env.faults.seed = 41;
  Pdsl alg(env);

  alg.run_round(1);
  EXPECT_EQ(alg.fault_stats().self_fallbacks, 4u);
  EXPECT_EQ(alg.fault_stats().stale_reused, 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto hood = fx.topo.closed_neighborhood(i);
    const auto& pi = alg.last_pi()[i];
    for (std::size_t k = 0; k < hood.size(); ++k) {
      EXPECT_DOUBLE_EQ(pi[k], hood[k] == i ? 1.0 : 0.0) << "agent " << i;
    }
    for (float v : alg.models()[i]) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(PdslFaults, StaleCrossGradientsReusedThenExpired) {
  const auto fx = Fixture::make(4, "full");
  Env env = fx.env();
  // Round 1 is clean (caches fill); every link is severed from round 2 on.
  env.faults.edge_rules = fx.all_edges_rule(1.0, /*from_round=*/2);
  env.faults.staleness_rounds = 1;
  env.faults.seed = 41;
  Pdsl alg(env);

  alg.run_round(1);
  EXPECT_EQ(alg.fault_stats().stale_reused, 0u);
  EXPECT_EQ(alg.fault_stats().self_fallbacks, 0u);

  // Round 2: fresh cross-gradients are gone, but every cache entry is exactly
  // 1 round old (= the staleness bound), so all 4 agents x 3 neighbors reuse.
  alg.run_round(2);
  EXPECT_EQ(alg.fault_stats().stale_reused, 12u);
  EXPECT_EQ(alg.fault_stats().self_fallbacks, 0u);

  // Round 3: the cached gradients are now 2 rounds old -> expired; with no
  // fresh arrivals either, every agent falls back to its own gradient.
  alg.run_round(3);
  EXPECT_EQ(alg.fault_stats().stale_reused, 0u);
  EXPECT_EQ(alg.fault_stats().self_fallbacks, 4u);
  for (const auto& m : alg.models())
    for (float v : m) ASSERT_TRUE(std::isfinite(v));
}

TEST(PdslFaults, BitIdenticalAcrossThreadWidths) {
  // The S-RT determinism contract must survive every fault axis at once:
  // the fault set is a pure hash, so threads=4 replays threads=1 exactly.
  const auto fx = Fixture::make(5, "full");
  Env env = fx.env();
  env.faults.drop_prob = 0.2;
  env.faults.delay_prob = 0.3;
  env.faults.delay_rounds = 2;
  env.faults.churn_prob = 0.2;
  env.faults.churn_interval = 2;
  env.faults.staleness_rounds = 2;
  env.faults.seed = 41;

  const std::size_t before = runtime::global_threads();
  runtime::set_global_threads(1);
  Pdsl seq(env);
  for (std::size_t t = 1; t <= 4; ++t) seq.run_round(t);

  runtime::set_global_threads(4);
  Pdsl par(env);
  for (std::size_t t = 1; t <= 4; ++t) par.run_round(t);
  runtime::set_global_threads(before);

  EXPECT_EQ(seq.models(), par.models());
  EXPECT_EQ(seq.network().messages_dropped(), par.network().messages_dropped());
  EXPECT_EQ(seq.network().messages_delayed(), par.network().messages_delayed());
  EXPECT_GT(seq.network().messages_dropped(), 0u);
}

TEST(PdslFaults, ZeroFaultPlanMatchesLegacyCleanRun) {
  // All knobs at zero must be byte-identical to a default-constructed run —
  // the degradation machinery may not perturb the fault-free path.
  const auto fx = Fixture::make(4, "ring");
  Pdsl clean(fx.env());
  Env env = fx.env();
  env.faults = sim::FaultPlan{};  // explicit all-zero plan
  Pdsl planned(env);
  for (std::size_t t = 1; t <= 3; ++t) {
    clean.run_round(t);
    planned.run_round(t);
  }
  EXPECT_EQ(clean.models(), planned.models());
  EXPECT_EQ(clean.network().messages_dropped(), 0u);
  EXPECT_EQ(planned.network().messages_delayed(), 0u);
}

// ---------------------------------------------------------------------------
// Unread-mailbox protocol-bug detector
// ---------------------------------------------------------------------------

namespace {

/// Deliberately buggy protocol: sends a message every round and never reads
/// it, which run_round() must catch when it clears the mailboxes.
class LeakyAlgorithm final : public Algorithm {
 public:
  explicit LeakyAlgorithm(const Env& env) : Algorithm(env) {}
  [[nodiscard]] std::string name() const override { return "leaky"; }

 protected:
  void round_impl(std::size_t) override {
    const auto hood = neighbors(0);
    ASSERT_FALSE(hood.empty());
    network().send(0, hood.front(), "leak", {1.0f, 2.0f});
  }
};

}  // namespace

TEST(ProtocolBugDetector, UnreadMailboxIsCaught) {
  const auto fx = Fixture::make(4, "ring");
  const Env env = fx.env();
#ifdef NDEBUG
  // Release builds count the leak (and keep running) instead of asserting.
  LeakyAlgorithm alg(env);
  alg.run_round(1);
  EXPECT_EQ(alg.unread_cleared(), 1u);
  alg.run_round(2);
  EXPECT_EQ(alg.unread_cleared(), 2u);
  // run_round already cleared the mailboxes, so the leak never accumulates.
  EXPECT_EQ(alg.network().clear(), 0u);
#else
  EXPECT_DEATH(
      {
        LeakyAlgorithm alg(env);
        alg.run_round(1);
      },
      "unread");
#endif
}

TEST(ProtocolBugDetector, CleanProtocolReportsZero) {
  const auto fx = Fixture::make(4, "full");
  Env env = fx.env();
  env.faults.drop_prob = 0.25;  // faults must not trip the detector either
  env.faults.seed = 41;
  Pdsl alg(env);
  for (std::size_t t = 1; t <= 3; ++t) alg.run_round(t);
  EXPECT_EQ(alg.unread_cleared(), 0u);
}

// ---------------------------------------------------------------------------
// S-RECOV: channel impairments compose with benign faults
// ---------------------------------------------------------------------------

TEST(NetworkFaults, ChannelCorruptionCountsExactlyOnceAndNeverLeaks) {
  // Drops (S-FAULT) and checksum-caught corruption (S-RECOV) are different
  // failures with different counters: every send is classified exactly once
  // as delivered, in flight, faulted away, or lost to retry exhaustion, and
  // a detected corruption is answered by exactly one retransmission or one
  // exhaustion — a corrupted frame never reaches a mailbox.
  Rng rng(4);
  const auto topo = graph::Topology::make(graph::TopologyKind::kFullyConnected, 2, &rng);
  NetworkOptions opts;
  opts.seed = 13;
  opts.faults.drop_prob = 0.2;
  opts.channel.corrupt_prob = 0.4;
  opts.channel.max_retries = 1;  // tight budget: exhaustion is reachable
  Network net(topo, opts);
  net.begin_round(1);
  const std::vector<float> payload{5.0f, 6.0f, 7.0f};
  const std::size_t kMsgs = 120;
  for (std::size_t k = 0; k < kMsgs; ++k) {
    net.send(0, 1, "c@" + std::to_string(k), payload);
  }
  std::size_t delivered = 0;
  for (std::size_t k = 0; k < kMsgs; ++k) {
    const std::string tag = "c@" + std::to_string(k);
    if (const auto got = net.receive(1, 0, tag)) {
      EXPECT_EQ(*got, payload) << tag;  // survivors are bit-intact
      ++delivered;
    }
  }
  EXPECT_GT(net.corruptions_detected(), 0u);
  EXPECT_GT(net.retransmits(), 0u);
  EXPECT_GT(net.retry_exhausted(), 0u);
  // Exactly-one-counter: each detection is either retransmitted or terminal.
  EXPECT_EQ(net.corruptions_detected(), net.retransmits() + net.retry_exhausted());
  // Exactly-one-outcome: dropped counts both fault drops and exhausted
  // messages; everything else was delivered now or is maturing via backoff.
  EXPECT_EQ(delivered + net.in_flight() + net.messages_dropped(), kMsgs);
  EXPECT_GE(net.messages_dropped(), net.retry_exhausted());
}
