#include "compress/compressor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdsl::compress {

TopKCompressor::TopKCompressor(double fraction) : fraction_(fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("TopKCompressor: fraction in (0,1]");
  }
}

std::size_t TopKCompressor::keep_count(std::size_t dim) const {
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(fraction_ * dim)));
}

std::vector<float> TopKCompressor::apply(const std::vector<float>& payload) const {
  const std::size_t k = keep_count(payload.size());
  if (k >= payload.size()) return payload;
  // nth_element on magnitudes to find the cut.
  std::vector<float> mags(payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) mags[i] = std::abs(payload[i]);
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1), mags.end(),
                   std::greater<float>());
  const float cut = mags[k - 1];
  std::vector<float> out(payload.size(), 0.0f);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < payload.size() && kept < k; ++i) {
    if (std::abs(payload[i]) >= cut) {
      out[i] = payload[i];
      ++kept;
    }
  }
  return out;
}

std::size_t TopKCompressor::wire_bytes(const std::vector<float>& payload) const {
  return keep_count(payload.size()) * (sizeof(std::uint32_t) + sizeof(float));
}

std::string TopKCompressor::name() const {
  return "topk:" + std::to_string(fraction_);
}

QuantizeCompressor::QuantizeCompressor(unsigned bits) : bits_(bits) {
  if (bits == 0 || bits > 16) throw std::invalid_argument("QuantizeCompressor: bits in [1,16]");
}

std::vector<float> QuantizeCompressor::apply(const std::vector<float>& payload) const {
  if (payload.empty()) return payload;
  float mx = 0.0f;
  for (float v : payload) mx = std::max(mx, std::abs(v));
  if (mx == 0.0f) return payload;
  const double levels = static_cast<double>((1u << (bits_ - 1)) - 1) + 0.5;
  const double step = static_cast<double>(mx) / levels;
  std::vector<float> out(payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    const double q = std::round(payload[i] / step);
    out[i] = static_cast<float>(q * step);
  }
  return out;
}

std::size_t QuantizeCompressor::wire_bytes(const std::vector<float>& payload) const {
  return (payload.size() * bits_ + 7) / 8 + sizeof(float);  // + scale
}

std::string QuantizeCompressor::name() const { return "quant:" + std::to_string(bits_); }

std::unique_ptr<Compressor> make_compressor(const std::string& spec) {
  if (spec.empty() || spec == "none" || spec == "identity") {
    return std::make_unique<IdentityCompressor>();
  }
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (kind == "topk") {
    if (arg.empty()) throw std::invalid_argument("make_compressor: topk needs a fraction");
    return std::make_unique<TopKCompressor>(std::stod(arg));
  }
  if (kind == "quant") {
    if (arg.empty()) throw std::invalid_argument("make_compressor: quant needs a bit count");
    return std::make_unique<QuantizeCompressor>(static_cast<unsigned>(std::stoul(arg)));
  }
  throw std::invalid_argument("make_compressor: unknown spec '" + spec + "'");
}

}  // namespace pdsl::compress
