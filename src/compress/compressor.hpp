#pragma once
// Lossy communication compression — an extension beyond the paper (its
// related work motivates communication efficiency; Soft-DSGD [24] targets
// unreliable/lightweight links). A Compressor is a channel transform applied
// by the network simulator to every payload: the receiver sees
// apply(payload) and the byte counter advances by wire_bytes(payload)
// instead of the dense size. Provided schemes:
//   - TopK sparsification: keep the k largest-magnitude coordinates;
//   - uniform quantization: b-bit stochastic-free midrise quantizer;
//   - identity (dense baseline).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pdsl::compress {

class Compressor {
 public:
  virtual ~Compressor() = default;

  /// The lossy round-trip the receiver observes.
  [[nodiscard]] virtual std::vector<float> apply(const std::vector<float>& payload) const = 0;

  /// Bytes this payload would occupy on the wire under the scheme.
  [[nodiscard]] virtual std::size_t wire_bytes(const std::vector<float>& payload) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Keep the `fraction` (0,1] largest-magnitude coordinates; zero the rest.
/// Wire format: (index:u32, value:f32) pairs.
class TopKCompressor final : public Compressor {
 public:
  explicit TopKCompressor(double fraction);
  [[nodiscard]] std::vector<float> apply(const std::vector<float>& payload) const override;
  [[nodiscard]] std::size_t wire_bytes(const std::vector<float>& payload) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t keep_count(std::size_t dim) const;

 private:
  double fraction_;
};

/// Uniform symmetric quantization to `bits` per coordinate (plus one f32
/// scale per message). Deterministic midrise rounding.
class QuantizeCompressor final : public Compressor {
 public:
  explicit QuantizeCompressor(unsigned bits);
  [[nodiscard]] std::vector<float> apply(const std::vector<float>& payload) const override;
  [[nodiscard]] std::size_t wire_bytes(const std::vector<float>& payload) const override;
  [[nodiscard]] std::string name() const override;

 private:
  unsigned bits_;
};

class IdentityCompressor final : public Compressor {
 public:
  [[nodiscard]] std::vector<float> apply(const std::vector<float>& payload) const override {
    return payload;
  }
  [[nodiscard]] std::size_t wire_bytes(const std::vector<float>& payload) const override {
    return payload.size() * sizeof(float);
  }
  [[nodiscard]] std::string name() const override { return "identity"; }
};

/// Factory: "none"/"identity", "topk:<fraction>", "quant:<bits>".
std::unique_ptr<Compressor> make_compressor(const std::string& spec);

}  // namespace pdsl::compress
