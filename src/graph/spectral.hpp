#pragma once
// Spectral analysis of mixing matrices. Assumption 3 of the paper requires
// max(|lambda_2|, |lambda_M|) <= sqrt(rho) < 1; rho drives both the step-size
// bound (Theorem 2, Eq. 31) and consensus speed. Eigenvalues are computed
// with the cyclic Jacobi method — exact enough at experiment sizes (M <= ~64).

#include <vector>

#include "graph/mixing.hpp"

namespace pdsl::graph {

/// All eigenvalues of a symmetric matrix, sorted descending.
std::vector<double> symmetric_eigenvalues(const std::vector<std::vector<double>>& a,
                                          std::size_t max_sweeps = 64, double tol = 1e-12);

struct SpectralInfo {
  double lambda1 = 0.0;       ///< largest eigenvalue (should be 1)
  double lambda2 = 0.0;       ///< second largest
  double lambda_min = 0.0;    ///< smallest
  double sqrt_rho = 0.0;      ///< max(|lambda2|, |lambda_min|)
  double rho = 0.0;           ///< sqrt_rho^2, the paper's rho
  double spectral_gap = 0.0;  ///< 1 - sqrt_rho
};

SpectralInfo analyze(const MixingMatrix& w);

}  // namespace pdsl::graph
