#pragma once
// Abstract read-only views over a communication graph and its mixing weights
// (S-SCALE). The dense graph/ classes (Topology, MixingMatrix) and the sparse
// fleet/ classes (SparseGraph, SparseMetropolis) both implement these, so the
// algorithm layer can run over either representation without caring whether
// an N x N matrix was ever materialized. The dense path remains the default
// and is bit-identical to its pre-view behavior: the views only add virtual
// dispatch, never different arithmetic.

#include <cstddef>
#include <memory>
#include <vector>

namespace pdsl::graph {

/// Read-only undirected-graph interface: everything the algorithms and the
/// simulated network need from a topology. Implementations must return
/// neighbor lists in ascending order (the mixing accumulation order depends
/// on it for bit-exact reproducibility).
class TopologyView {
 public:
  virtual ~TopologyView() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual bool has_edge(std::size_t i, std::size_t j) const = 0;
  [[nodiscard]] virtual std::size_t degree(std::size_t i) const = 0;

  /// Neighbors of i *excluding* i itself, ascending.
  [[nodiscard]] virtual std::vector<std::size_t> neighbors(std::size_t i) const = 0;

  /// Neighbors of i *including* i (the paper's M_i), ascending.
  [[nodiscard]] virtual std::vector<std::size_t> closed_neighborhood(std::size_t i) const = 0;

  [[nodiscard]] virtual std::size_t num_edges() const = 0;

  /// Deep copy with the same dynamic type (sim::Network stores a clone so
  /// callers may pass temporaries).
  [[nodiscard]] virtual std::unique_ptr<TopologyView> clone() const = 0;
};

/// Read-only mixing-weight interface: w(i, j) lookups only. Dense
/// MixingMatrix stores the full matrix; sparse implementations compute
/// weights on demand from degrees.
class MixingView {
 public:
  virtual ~MixingView() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual double weight(std::size_t i, std::size_t j) const = 0;

  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const { return weight(i, j); }
};

}  // namespace pdsl::graph
