#pragma once
// Symmetric doubly stochastic mixing matrices W over a Topology, satisfying
// the paper's Assumption 3. Metropolis–Hastings weights are the default:
//   w_ij = 1 / (1 + max(deg_i, deg_j))    for edges (i,j)
//   w_ii = 1 - sum_{j != i} w_ij
// For the fully connected graph this reduces to w_ij = 1/M, matching the
// uniform averaging the paper implies.

#include <cstddef>
#include <vector>

#include "graph/topology.hpp"
#include "graph/view.hpp"

namespace pdsl::graph {

class MixingMatrix final : public MixingView {
 public:
  /// Metropolis–Hastings weights on `topo`.
  static MixingMatrix metropolis(const Topology& topo);

  /// Uniform weights 1/|M_i| on the closed neighborhood — only doubly
  /// stochastic for regular graphs; the constructor validates and throws
  /// otherwise. Provided because several baselines assume regular rings.
  static MixingMatrix uniform_neighborhood(const Topology& topo);

  /// From an explicit matrix (validated: symmetric, doubly stochastic,
  /// non-negative, zero where topo has no edge).
  static MixingMatrix from_dense(std::vector<std::vector<double>> w);

  [[nodiscard]] std::size_t size() const override { return w_.size(); }
  [[nodiscard]] double weight(std::size_t i, std::size_t j) const override { return w_[i][j]; }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const { return w_[i][j]; }
  [[nodiscard]] const std::vector<std::vector<double>>& dense() const { return w_; }

  /// Smallest positive weight (the paper's omega_min, over j in M_i).
  [[nodiscard]] double min_positive_weight() const;

  /// Closed neighborhood under W: {j : w_ij > 0} (includes i when w_ii > 0).
  [[nodiscard]] std::vector<std::size_t> support(std::size_t i) const;

  /// y = W x for a vector of per-agent scalars (used in tests).
  [[nodiscard]] std::vector<double> apply(const std::vector<double>& x) const;

  /// Validation helpers (also used by the property tests).
  [[nodiscard]] bool is_symmetric(double tol = 1e-9) const;
  [[nodiscard]] bool is_doubly_stochastic(double tol = 1e-9) const;

 private:
  explicit MixingMatrix(std::vector<std::vector<double>> w) : w_(std::move(w)) {}
  std::vector<std::vector<double>> w_;
};

}  // namespace pdsl::graph
