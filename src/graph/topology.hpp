#pragma once
// Communication topologies (S4). A Topology is an undirected graph over M
// agents; the paper evaluates fully-connected, bipartite and ring graphs, and
// we add a few extras (star, torus, Erdős–Rényi) for ablations.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/view.hpp"

namespace pdsl::graph {

enum class TopologyKind {
  kFullyConnected,
  kRing,
  kBipartite,   ///< complete bipartite between two halves
  kStar,
  kTorus,       ///< 2-D grid with wraparound (requires M = a*b)
  kErdosRenyi,  ///< random graph, regenerated until connected
};

TopologyKind topology_from_string(const std::string& name);
std::string to_string(TopologyKind kind);

class Topology final : public TopologyView {
 public:
  /// Build a named topology over `num_agents` nodes. `rng` is only used by
  /// kErdosRenyi (edge probability `er_prob`).
  static Topology make(TopologyKind kind, std::size_t num_agents, Rng* rng = nullptr,
                       double er_prob = 0.4);

  /// Build from an explicit symmetric adjacency (no self loops).
  static Topology from_adjacency(std::vector<std::vector<bool>> adj);

  [[nodiscard]] std::size_t size() const override { return adj_.size(); }
  [[nodiscard]] bool has_edge(std::size_t i, std::size_t j) const override { return adj_[i][j]; }
  [[nodiscard]] std::size_t degree(std::size_t i) const override;

  /// Neighbors of i *excluding* i itself.
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t i) const override;

  /// Neighbors of i *including* i (the paper's M_i).
  [[nodiscard]] std::vector<std::size_t> closed_neighborhood(std::size_t i) const override;

  [[nodiscard]] bool is_connected() const;
  [[nodiscard]] std::size_t num_edges() const override;

  [[nodiscard]] std::unique_ptr<TopologyView> clone() const override {
    return std::unique_ptr<TopologyView>(new Topology(*this));
  }

 private:
  explicit Topology(std::vector<std::vector<bool>> adj) : adj_(std::move(adj)) {}
  std::vector<std::vector<bool>> adj_;
};

}  // namespace pdsl::graph
