#include "graph/mixing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdsl::graph {

MixingMatrix MixingMatrix::metropolis(const Topology& topo) {
  const std::size_t n = topo.size();
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!topo.has_edge(i, j)) continue;
      w[i][j] = 1.0 / (1.0 + static_cast<double>(std::max(topo.degree(i), topo.degree(j))));
      off += w[i][j];
    }
    w[i][i] = 1.0 - off;
  }
  return MixingMatrix(std::move(w));
}

MixingMatrix MixingMatrix::uniform_neighborhood(const Topology& topo) {
  const std::size_t n = topo.size();
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double share = 1.0 / static_cast<double>(topo.degree(i) + 1);
    w[i][i] = share;
    for (std::size_t j : topo.neighbors(i)) w[i][j] = share;
  }
  MixingMatrix m(std::move(w));
  if (!m.is_doubly_stochastic(1e-9)) {
    throw std::invalid_argument("uniform_neighborhood: graph is not regular");
  }
  return m;
}

MixingMatrix MixingMatrix::from_dense(std::vector<std::vector<double>> w) {
  MixingMatrix m(std::move(w));
  const std::size_t n = m.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (m.w_[i].size() != n) throw std::invalid_argument("from_dense: non-square");
    for (std::size_t j = 0; j < n; ++j) {
      if (m.w_[i][j] < -1e-12) throw std::invalid_argument("from_dense: negative weight");
    }
  }
  if (!m.is_symmetric()) throw std::invalid_argument("from_dense: not symmetric");
  if (!m.is_doubly_stochastic()) throw std::invalid_argument("from_dense: not doubly stochastic");
  return m;
}

double MixingMatrix::min_positive_weight() const {
  double mn = 1.0;
  for (const auto& row : w_) {
    for (double v : row) {
      if (v > 1e-12) mn = std::min(mn, v);
    }
  }
  return mn;
}

std::vector<std::size_t> MixingMatrix::support(std::size_t i) const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < w_.size(); ++j) {
    if (w_[i][j] > 1e-12) out.push_back(j);
  }
  return out;
}

std::vector<double> MixingMatrix::apply(const std::vector<double>& x) const {
  if (x.size() != size()) throw std::invalid_argument("MixingMatrix::apply: size mismatch");
  std::vector<double> y(size(), 0.0);
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = 0; j < size(); ++j) y[i] += w_[i][j] * x[j];
  }
  return y;
}

bool MixingMatrix::is_symmetric(double tol) const {
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = i + 1; j < size(); ++j) {
      if (std::abs(w_[i][j] - w_[j][i]) > tol) return false;
    }
  }
  return true;
}

bool MixingMatrix::is_doubly_stochastic(double tol) const {
  for (std::size_t i = 0; i < size(); ++i) {
    double row = 0.0, col = 0.0;
    for (std::size_t j = 0; j < size(); ++j) {
      row += w_[i][j];
      col += w_[j][i];
      if (w_[i][j] < -tol) return false;
    }
    if (std::abs(row - 1.0) > tol || std::abs(col - 1.0) > tol) return false;
  }
  return true;
}

}  // namespace pdsl::graph
