#include "graph/topology.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

namespace pdsl::graph {

TopologyKind topology_from_string(const std::string& name) {
  if (name == "full" || name == "fully_connected" || name == "complete") {
    return TopologyKind::kFullyConnected;
  }
  if (name == "ring") return TopologyKind::kRing;
  if (name == "bipartite") return TopologyKind::kBipartite;
  if (name == "star") return TopologyKind::kStar;
  if (name == "torus") return TopologyKind::kTorus;
  if (name == "er" || name == "erdos_renyi") return TopologyKind::kErdosRenyi;
  throw std::invalid_argument("topology_from_string: unknown topology '" + name + "'");
}

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFullyConnected: return "fully_connected";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kBipartite: return "bipartite";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kErdosRenyi: return "erdos_renyi";
  }
  return "?";
}

namespace {

std::vector<std::vector<bool>> empty_adj(std::size_t n) {
  return std::vector<std::vector<bool>>(n, std::vector<bool>(n, false));
}

void add_edge(std::vector<std::vector<bool>>& adj, std::size_t i, std::size_t j) {
  if (i == j) return;
  adj[i][j] = adj[j][i] = true;
}

std::pair<std::size_t, std::size_t> torus_dims(std::size_t n) {
  // Most square factorization a*b = n with a <= b.
  for (std::size_t a = static_cast<std::size_t>(std::sqrt(static_cast<double>(n))); a >= 1; --a) {
    if (n % a == 0) return {a, n / a};
  }
  return {1, n};
}

}  // namespace

Topology Topology::make(TopologyKind kind, std::size_t n, Rng* rng, double er_prob) {
  if (n < 2) throw std::invalid_argument("Topology::make: need at least 2 agents");
  auto adj = empty_adj(n);
  switch (kind) {
    case TopologyKind::kFullyConnected:
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) add_edge(adj, i, j);
      }
      break;
    case TopologyKind::kRing:
      for (std::size_t i = 0; i < n; ++i) add_edge(adj, i, (i + 1) % n);
      break;
    case TopologyKind::kBipartite: {
      const std::size_t half = n / 2;
      if (half == 0 || half == n) throw std::invalid_argument("bipartite: need n >= 2");
      for (std::size_t i = 0; i < half; ++i) {
        for (std::size_t j = half; j < n; ++j) add_edge(adj, i, j);
      }
      break;
    }
    case TopologyKind::kStar:
      for (std::size_t i = 1; i < n; ++i) add_edge(adj, 0, i);
      break;
    case TopologyKind::kTorus: {
      const auto [a, b] = torus_dims(n);
      if (a < 2) throw std::invalid_argument("torus: M must factor into a grid (a >= 2)");
      for (std::size_t r = 0; r < a; ++r) {
        for (std::size_t c = 0; c < b; ++c) {
          const std::size_t u = r * b + c;
          add_edge(adj, u, r * b + (c + 1) % b);
          add_edge(adj, u, ((r + 1) % a) * b + c);
        }
      }
      break;
    }
    case TopologyKind::kErdosRenyi: {
      if (rng == nullptr) throw std::invalid_argument("erdos_renyi: rng required");
      for (int attempt = 0; attempt < 1000; ++attempt) {
        adj = empty_adj(n);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = i + 1; j < n; ++j) {
            if (rng->bernoulli(er_prob)) add_edge(adj, i, j);
          }
        }
        Topology candidate(adj);
        if (candidate.is_connected()) return candidate;
      }
      throw std::runtime_error("erdos_renyi: failed to sample a connected graph");
    }
  }
  Topology t(std::move(adj));
  if (!t.is_connected()) throw std::logic_error("Topology::make produced a disconnected graph");
  return t;
}

Topology Topology::from_adjacency(std::vector<std::vector<bool>> adj) {
  const std::size_t n = adj.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (adj[i].size() != n) throw std::invalid_argument("from_adjacency: non-square");
    if (adj[i][i]) throw std::invalid_argument("from_adjacency: self loop");
    for (std::size_t j = 0; j < n; ++j) {
      if (adj[i][j] != adj[j][i]) throw std::invalid_argument("from_adjacency: not symmetric");
    }
  }
  return Topology(std::move(adj));
}

std::size_t Topology::degree(std::size_t i) const {
  std::size_t d = 0;
  for (bool e : adj_[i]) d += e ? 1 : 0;
  return d;
}

std::vector<std::size_t> Topology::neighbors(std::size_t i) const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < adj_.size(); ++j) {
    if (adj_[i][j]) out.push_back(j);
  }
  return out;
}

std::vector<std::size_t> Topology::closed_neighborhood(std::size_t i) const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < adj_.size(); ++j) {
    if (j == i || adj_[i][j]) out.push_back(j);
  }
  return out;
}

bool Topology::is_connected() const {
  const std::size_t n = adj_.size();
  std::vector<bool> seen(n, false);
  std::queue<std::size_t> q;
  q.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (std::size_t v = 0; v < n; ++v) {
      if (adj_[u][v] && !seen[v]) {
        seen[v] = true;
        ++visited;
        q.push(v);
      }
    }
  }
  return visited == n;
}

std::size_t Topology::num_edges() const {
  std::size_t e = 0;
  for (std::size_t i = 0; i < adj_.size(); ++i) e += degree(i);
  return e / 2;
}

}  // namespace pdsl::graph
