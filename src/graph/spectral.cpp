#include "graph/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdsl::graph {

std::vector<double> symmetric_eigenvalues(const std::vector<std::vector<double>>& input,
                                          std::size_t max_sweeps, double tol) {
  const std::size_t n = input.size();
  for (const auto& row : input) {
    if (row.size() != n) throw std::invalid_argument("symmetric_eigenvalues: non-square");
  }
  auto a = input;  // working copy; Jacobi rotations drive off-diagonals to 0

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a[i][j] * a[i][j];
    }
    if (off < tol * tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a[p][q]) < tol) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k][p], akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p][k], aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
      }
    }
  }

  std::vector<double> eig(n);
  for (std::size_t i = 0; i < n; ++i) eig[i] = a[i][i];
  std::sort(eig.rbegin(), eig.rend());
  return eig;
}

SpectralInfo analyze(const MixingMatrix& w) {
  const auto eig = symmetric_eigenvalues(w.dense());
  SpectralInfo info;
  info.lambda1 = eig.front();
  info.lambda2 = eig.size() > 1 ? eig[1] : eig[0];
  info.lambda_min = eig.back();
  info.sqrt_rho = std::max(std::abs(info.lambda2), std::abs(info.lambda_min));
  info.rho = info.sqrt_rho * info.sqrt_rho;
  info.spectral_gap = 1.0 - info.sqrt_rho;
  return info;
}

}  // namespace pdsl::graph
