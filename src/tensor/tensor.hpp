#pragma once
// Dense row-major float tensor. This is the numeric substrate for the neural
// network library (S1 in DESIGN.md). It intentionally stays small: shape
// bookkeeping, element access, and a handful of structural operations. The
// heavier kernels (matmul, conv) live in ops.hpp.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace pdsl {

/// Shape of a tensor; up to 4 dimensions (N, C, H, W) are used by the NN code.
using Shape = std::vector<std::size_t>;

[[nodiscard]] std::size_t shape_numel(const Shape& shape);
[[nodiscard]] std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  /// 1-D tensor from values.
  static Tensor from(std::initializer_list<float> values);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const;

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::vector<float>& vec() { return data_; }
  [[nodiscard]] const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  const float& operator[](std::size_t i) const { return data_[i]; }

  /// 2-D access (rows x cols).
  float& at2(std::size_t r, std::size_t c);
  [[nodiscard]] const float& at2(std::size_t r, std::size_t c) const;

  /// 4-D access (n, c, h, w).
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  [[nodiscard]] const float& at4(std::size_t n, std::size_t c, std::size_t h,
                                 std::size_t w) const;

  /// Reinterpret with a new shape of equal numel.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Elementwise in-place updates.
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float s);

  [[nodiscard]] bool same_shape(const Tensor& rhs) const { return shape_ == rhs.shape_; }

 private:
  void check_index_2d(std::size_t r, std::size_t c) const;
  void check_index_4d(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace pdsl
