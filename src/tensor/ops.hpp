#pragma once
// Numeric kernels on Tensors: matmul (plus transposed variants used by the
// Linear layer backward pass), reductions, and softmax. The matmul family is
// a shape-checked facade over the S-KER layer (src/kernels/gemm.hpp), which
// owns the naive/blocked backend split and intra-op parallelism. Convolution
// kernels live inside the Conv2D layer because they need its geometry
// bookkeeping; its blocked path is im2col + these GEMMs.

#include "tensor/tensor.hpp"

namespace pdsl {

/// C = A(MxK) * B(KxN)
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T(MxK->KxM... ) i.e. C(KxN) = A(MxK)^T * B(MxN)
Tensor matmul_transpose_a(const Tensor& a, const Tensor& b);

/// C(MxK) = A(MxN) * B(KxN)^T
Tensor matmul_transpose_b(const Tensor& a, const Tensor& b);

/// Row-wise softmax of a 2-D tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Sum over all elements.
double sum(const Tensor& t);

/// Index of the max element in row r of a 2-D tensor.
std::size_t argmax_row(const Tensor& t, std::size_t r);

/// Frobenius norm.
double frobenius_norm(const Tensor& t);

/// out = a + b (elementwise, same shape).
Tensor add(const Tensor& a, const Tensor& b);

/// out = a * s
Tensor scaled(const Tensor& a, float s);

}  // namespace pdsl
