#include "tensor/tensor.hpp"

#include <numeric>
#include <stdexcept>

namespace pdsl {

std::size_t shape_numel(const Shape& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         [](std::size_t a, std::size_t b) { return a * b; });
}

std::string shape_to_string(const Shape& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_to_string(shape_));
  }
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor(Shape{values.size()}, std::vector<float>(values));
}

std::size_t Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) throw std::out_of_range("Tensor::dim: axis out of range");
  return shape_[i];
}

void Tensor::check_index_2d(std::size_t r, std::size_t c) const {
  if (rank() != 2 || r >= shape_[0] || c >= shape_[1]) {
    throw std::out_of_range("Tensor::at2: bad index for shape " + shape_to_string(shape_));
  }
}

void Tensor::check_index_4d(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  if (rank() != 4 || n >= shape_[0] || c >= shape_[1] || h >= shape_[2] || w >= shape_[3]) {
    throw std::out_of_range("Tensor::at4: bad index for shape " + shape_to_string(shape_));
  }
}

float& Tensor::at2(std::size_t r, std::size_t c) {
  check_index_2d(r, c);
  return data_[r * shape_[1] + c];
}

const float& Tensor::at2(std::size_t r, std::size_t c) const {
  check_index_2d(r, c);
  return data_[r * shape_[1] + c];
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  check_index_4d(n, c, h, w);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

const float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  check_index_4d(n, c, h, w);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " + shape_to_string(shape_) +
                                " -> " + shape_to_string(new_shape));
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor& Tensor::operator+=(const Tensor& rhs) {
  if (!same_shape(rhs)) throw std::invalid_argument("Tensor+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  if (!same_shape(rhs)) throw std::invalid_argument("Tensor-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

}  // namespace pdsl
