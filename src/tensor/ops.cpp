#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/gemm.hpp"

namespace pdsl {

namespace {
void require_2d(const Tensor& t, const char* what) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(what) + ": tensor must be 2-D");
}
}  // namespace

// The matmul family validates shapes here and delegates the math to the
// S-KER layer (src/kernels/), which dispatches on the selected backend. The
// former in-place loops had `av == 0.0f` skip shortcuts that silently dropped
// NaN/Inf propagation from the other operand; the kernel paths have no such
// shortcut on either backend.

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul");
  require_2d(b, "matmul");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dimension mismatch");
  Tensor c(Shape{m, n});
  kernels::sgemm(m, k, n, a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul_transpose_a");
  require_2d(b, "matmul_transpose_a");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != m) throw std::invalid_argument("matmul_transpose_a: dimension mismatch");
  Tensor c(Shape{k, n});
  kernels::sgemm_transpose_a(m, k, n, a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul_transpose_b");
  require_2d(b, "matmul_transpose_b");
  const std::size_t m = a.dim(0), n = a.dim(1), k = b.dim(0);
  if (b.dim(1) != n) throw std::invalid_argument("matmul_transpose_b: dimension mismatch");
  Tensor c(Shape{m, k});
  kernels::sgemm_transpose_b(m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor softmax_rows(const Tensor& logits) {
  require_2d(logits, "softmax_rows");
  const std::size_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out(Shape{rows, cols});
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    const float mx = *std::max_element(in, in + cols);
    double total = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      total += o[c];
    }
    const auto inv = static_cast<float>(1.0 / total);
    for (std::size_t c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

double sum(const Tensor& t) {
  double acc = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) acc += t[i];
  return acc;
}

std::size_t argmax_row(const Tensor& t, std::size_t r) {
  require_2d(t, "argmax_row");
  const std::size_t cols = t.dim(1);
  const float* row = t.data() + r * cols;
  return static_cast<std::size_t>(std::max_element(row, row + cols) - row);
}

double frobenius_norm(const Tensor& t) {
  double acc = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) acc += static_cast<double>(t[i]) * t[i];
  return std::sqrt(acc);
}

Tensor add(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("add: shape mismatch");
  Tensor out = a;
  out += b;
  return out;
}

Tensor scaled(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

}  // namespace pdsl
