#pragma once
// Sparse topology views (S-SCALE pillar 2). SparseGraph stores a CSR
// adjacency (two flat arrays) so a 1024+-node fleet never materializes an
// N x N matrix; SparseMetropolis computes the Metropolis-Hastings mixing
// weights on demand from degrees, storing only the N diagonal entries. Both
// are bit-identical to the dense graph/ classes on the same adjacency — the
// diagonal accumulation replays the dense loop's exact FP order (ascending
// neighbor ids) and the off-diagonal expression is the same arithmetic.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/view.hpp"

namespace pdsl::fleet {

class SparseGraph final : public graph::TopologyView {
 public:
  /// Cycle over n nodes (degree 2; n >= 3).
  static SparseGraph ring(std::size_t n);

  /// Circulant k-regular graph: node i connects to i +- 1 .. i +- k/2 mod n.
  /// `degree` must be even, positive, and below n.
  static SparseGraph regular(std::size_t n, std::size_t degree);

  /// Random geometric graph: nodes at hash-derived positions in the unit
  /// square, edges between pairs within `radius`. The radius is grown by 25%
  /// until the graph is connected (deterministic in (n, radius, seed)).
  static SparseGraph random_geometric(std::size_t n, double radius, std::uint64_t seed);

  /// Snapshot any TopologyView (e.g. a dense Topology) into CSR form —
  /// the golden-equivalence path.
  static SparseGraph from_topology(const graph::TopologyView& topo);

  /// Build from an explicit edge list (undirected, validated).
  static SparseGraph from_edges(std::size_t n, std::vector<std::pair<std::size_t, std::size_t>> edges);

  [[nodiscard]] std::size_t size() const override { return offsets_.size() - 1; }
  [[nodiscard]] bool has_edge(std::size_t i, std::size_t j) const override;
  [[nodiscard]] std::size_t degree(std::size_t i) const override {
    return offsets_[i + 1] - offsets_[i];
  }
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t i) const override;
  [[nodiscard]] std::vector<std::size_t> closed_neighborhood(std::size_t i) const override;
  [[nodiscard]] std::size_t num_edges() const override { return cols_.size() / 2; }
  [[nodiscard]] std::unique_ptr<graph::TopologyView> clone() const override {
    return std::unique_ptr<graph::TopologyView>(new SparseGraph(*this));
  }

  [[nodiscard]] bool is_connected() const;

 private:
  SparseGraph(std::vector<std::size_t> offsets, std::vector<std::size_t> cols)
      : offsets_(std::move(offsets)), cols_(std::move(cols)) {}

  std::vector<std::size_t> offsets_;  ///< size n+1; row i spans [offsets_[i], offsets_[i+1])
  std::vector<std::size_t> cols_;     ///< ascending neighbor ids per row
};

/// Metropolis-Hastings mixing weights over a SparseGraph, O(N + E) storage.
/// w(i,j) = 1/(1 + max(deg_i, deg_j)) on edges, the precomputed complement on
/// the diagonal, 0 elsewhere — bitwise equal to MixingMatrix::metropolis.
class SparseMetropolis final : public graph::MixingView {
 public:
  /// Borrows `g`; the graph must outlive this view.
  explicit SparseMetropolis(const SparseGraph& g);

  [[nodiscard]] std::size_t size() const override { return graph_->size(); }
  [[nodiscard]] double weight(std::size_t i, std::size_t j) const override;

 private:
  const SparseGraph* graph_;
  std::vector<double> diag_;
};

}  // namespace pdsl::fleet
