#include "fleet/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace pdsl::fleet {

io::ByteBuffer wire_encode(const WireMessage& msg) {
  io::ByteBuffer buf;
  buf.reserve(64 + msg.tag.size() + msg.payload.size() * sizeof(float));
  io::append_u64(buf, kWireMagic);
  io::append_u32(buf, kWireVersion);
  io::append_u32(buf, msg.src);
  io::append_u32(buf, msg.dst);
  io::append_u32(buf, msg.round);
  io::append_u8(buf, msg.channel);
  io::append_string(buf, msg.tag);
  io::append_floats(buf, msg.payload);
  io::append_u64(buf, io::fnv1a_bytes(buf.data(), buf.size()));
  return buf;
}

WireMessage wire_decode(const io::ByteBuffer& buf) {
  io::ByteReader r(buf, "wire_decode");
  if (r.read_u64("magic") != kWireMagic) {
    throw std::runtime_error("wire_decode: bad magic");
  }
  const auto version = r.read_u32("version");
  if (version != kWireVersion) {
    throw std::runtime_error("wire_decode: unsupported version " + std::to_string(version));
  }
  WireMessage msg;
  msg.src = r.read_u32("src");
  msg.dst = r.read_u32("dst");
  msg.round = r.read_u32("round");
  msg.channel = r.read_u8("channel");
  msg.tag = r.read_string("tag");
  msg.payload = r.read_floats("payload");
  const std::size_t body = r.position();
  const auto checksum = r.read_u64("checksum");
  if (!r.exhausted()) throw std::runtime_error("wire_decode: trailing bytes");
  if (io::fnv1a_bytes(buf.data(), body) != checksum) {
    throw std::runtime_error("wire_decode: checksum mismatch");
  }
  return msg;
}

std::optional<WireMessage> wire_try_decode(const io::ByteBuffer& buf) {
  try {
    return wire_decode(buf);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool wire_equal(const WireMessage& a, const WireMessage& b) {
  if (a.src != b.src || a.dst != b.dst || a.round != b.round || a.channel != b.channel ||
      a.tag != b.tag || a.payload.size() != b.payload.size()) {
    return false;
  }
  return a.payload.empty() ||
         std::memcmp(a.payload.data(), b.payload.data(),
                     a.payload.size() * sizeof(float)) == 0;
}

}  // namespace pdsl::fleet
