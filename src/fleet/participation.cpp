#include "fleet/participation.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"

namespace pdsl::fleet {

namespace {

std::uint64_t score(std::uint64_t seed, std::size_t agent, std::size_t round) {
  return splitmix64(seed ^ splitmix64(0x5CA1EDB0ULL ^ round) ^
                    splitmix64(0xA6E2717BULL ^ agent));
}

}  // namespace

std::uint64_t resolve_participation_seed(const ParticipationPlan& plan,
                                         std::uint64_t experiment_seed) {
  return plan.seed != 0 ? plan.seed : splitmix64(experiment_seed ^ 0xF1EE7A6EULL);
}

std::size_t walk_position(const graph::TopologyView& topo, std::size_t round,
                          std::uint64_t seed) {
  if (round == 0) throw std::invalid_argument("walk_position: rounds are 1-based");
  std::size_t pos = static_cast<std::size_t>(splitmix64(seed ^ 0x57A2757EULL) % topo.size());
  for (std::size_t r = 2; r <= round; ++r) {
    const auto nbrs = topo.neighbors(pos);
    if (nbrs.empty()) break;  // isolated node: walker stays put
    pos = nbrs[static_cast<std::size_t>(splitmix64(seed ^ splitmix64(0x57E90B1DULL ^ r)) %
                                        nbrs.size())];
  }
  return pos;
}

std::vector<unsigned char> participation_mask(const ParticipationPlan& plan,
                                              const graph::TopologyView& topo,
                                              std::size_t round, std::uint64_t seed) {
  const std::size_t n = topo.size();
  switch (plan.mode) {
    case ParticipationMode::kFull:
      return std::vector<unsigned char>(n, 1);
    case ParticipationMode::kSampled: {
      const std::size_t k = plan.resolved_active(n);
      std::vector<std::pair<std::uint64_t, std::size_t>> ranked(n);
      for (std::size_t i = 0; i < n; ++i) ranked[i] = {score(seed, i, round), i};
      std::nth_element(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       ranked.end());
      std::vector<unsigned char> mask(n, 0);
      for (std::size_t r = 0; r < k; ++r) mask[ranked[r].second] = 1;
      return mask;
    }
    case ParticipationMode::kWalk: {
      std::vector<unsigned char> mask(n, 0);
      const std::size_t now = walk_position(topo, round, seed);
      const std::size_t prev = round > 1 ? walk_position(topo, round - 1, seed) : now;
      mask[now] = 1;
      mask[prev] = 1;
      return mask;
    }
  }
  return std::vector<unsigned char>(n, 1);
}

}  // namespace pdsl::fleet
