#include "fleet/sparse_graph.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.hpp"

namespace pdsl::fleet {

SparseGraph SparseGraph::from_edges(std::size_t n,
                                    std::vector<std::pair<std::size_t, std::size_t>> edges) {
  if (n == 0) throw std::invalid_argument("SparseGraph: zero nodes");
  std::vector<std::set<std::size_t>> adj(n);
  for (const auto& [a, b] : edges) {
    if (a >= n || b >= n) throw std::invalid_argument("SparseGraph: edge endpoint out of range");
    if (a == b) throw std::invalid_argument("SparseGraph: self loop");
    adj[a].insert(b);
    adj[b].insert(a);
  }
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + adj[i].size();
  std::vector<std::size_t> cols;
  cols.reserve(offsets[n]);
  for (std::size_t i = 0; i < n; ++i) cols.insert(cols.end(), adj[i].begin(), adj[i].end());
  return SparseGraph(std::move(offsets), std::move(cols));
}

SparseGraph SparseGraph::ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("SparseGraph::ring: need at least 3 nodes");
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  edges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return from_edges(n, std::move(edges));
}

SparseGraph SparseGraph::regular(std::size_t n, std::size_t degree) {
  if (degree == 0 || degree % 2 != 0) {
    throw std::invalid_argument("SparseGraph::regular: degree must be even and positive, got " +
                                std::to_string(degree));
  }
  if (degree >= n) {
    throw std::invalid_argument("SparseGraph::regular: degree " + std::to_string(degree) +
                                " must be below the number of nodes " + std::to_string(n));
  }
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  edges.reserve(n * degree / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= degree / 2; ++d) edges.emplace_back(i, (i + d) % n);
  }
  return from_edges(n, std::move(edges));
}

SparseGraph SparseGraph::random_geometric(std::size_t n, double radius, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("SparseGraph::random_geometric: need at least 2 nodes");
  if (!(radius > 0.0)) {
    throw std::invalid_argument("SparseGraph::random_geometric: radius must be positive");
  }
  constexpr double kInv = 1.0 / 18446744073709551616.0;  // 2^-64
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<double>(splitmix64(seed ^ splitmix64(0x6E0D0A11ULL ^ i))) * kInv;
    ys[i] = static_cast<double>(splitmix64(seed ^ splitmix64(0xBEE5BEE5ULL ^ i))) * kInv;
  }
  double r = radius;
  for (int attempt = 0; attempt < 32; ++attempt) {
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    const double r2 = r * r;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dx = xs[i] - xs[j];
        const double dy = ys[i] - ys[j];
        if (dx * dx + dy * dy <= r2) edges.emplace_back(i, j);
      }
    }
    auto g = from_edges(n, std::move(edges));
    if (g.is_connected()) return g;
    r *= 1.25;
  }
  throw std::runtime_error("SparseGraph::random_geometric: failed to connect after 32 growths");
}

SparseGraph SparseGraph::from_topology(const graph::TopologyView& topo) {
  const std::size_t n = topo.size();
  std::vector<std::size_t> offsets(n + 1, 0);
  std::vector<std::size_t> cols;
  for (std::size_t i = 0; i < n; ++i) {
    const auto nbrs = topo.neighbors(i);  // ascending by contract
    offsets[i + 1] = offsets[i] + nbrs.size();
    cols.insert(cols.end(), nbrs.begin(), nbrs.end());
  }
  return SparseGraph(std::move(offsets), std::move(cols));
}

bool SparseGraph::has_edge(std::size_t i, std::size_t j) const {
  const auto first = cols_.begin() + static_cast<std::ptrdiff_t>(offsets_[i]);
  const auto last = cols_.begin() + static_cast<std::ptrdiff_t>(offsets_[i + 1]);
  return std::binary_search(first, last, j);
}

std::vector<std::size_t> SparseGraph::neighbors(std::size_t i) const {
  return {cols_.begin() + static_cast<std::ptrdiff_t>(offsets_[i]),
          cols_.begin() + static_cast<std::ptrdiff_t>(offsets_[i + 1])};
}

std::vector<std::size_t> SparseGraph::closed_neighborhood(std::size_t i) const {
  std::vector<std::size_t> out;
  out.reserve(degree(i) + 1);
  bool placed = false;
  for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
    if (!placed && cols_[k] > i) {
      out.push_back(i);
      placed = true;
    }
    out.push_back(cols_[k]);
  }
  if (!placed) out.push_back(i);
  return out;
}

bool SparseGraph::is_connected() const {
  const std::size_t n = size();
  std::vector<unsigned char> seen(n, 0);
  std::queue<std::size_t> q;
  q.push(0);
  seen[0] = 1;
  std::size_t count = 1;
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (std::size_t k = offsets_[u]; k < offsets_[u + 1]; ++k) {
      const std::size_t v = cols_[k];
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        q.push(v);
      }
    }
  }
  return count == n;
}

SparseMetropolis::SparseMetropolis(const SparseGraph& g) : graph_(&g) {
  const std::size_t n = g.size();
  diag_.resize(n);
  // Exact FP replay of MixingMatrix::metropolis: accumulate off-diagonal
  // weights in ascending-neighbor order, then complement.
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j : g.neighbors(i)) {
      off += 1.0 / (1.0 + static_cast<double>(std::max(g.degree(i), g.degree(j))));
    }
    diag_[i] = 1.0 - off;
  }
}

double SparseMetropolis::weight(std::size_t i, std::size_t j) const {
  if (i == j) return diag_[i];
  if (!graph_->has_edge(i, j)) return 0.0;
  return 1.0 / (1.0 + static_cast<double>(std::max(graph_->degree(i), graph_->degree(j))));
}

}  // namespace pdsl::fleet
