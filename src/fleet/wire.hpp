#pragma once
// Versioned binary wire format for sim::Network messages (S-SCALE pillar 4) —
// the stepping stone to multi-process sharding. A frame is:
//
//   u64 magic   "PDSLWIR1"
//   u32 version (kWireVersion)
//   u32 src, u32 dst, u32 round
//   u8  channel
//   u32 tag length + tag bytes
//   u64 payload length + raw float bytes (memcpy: NaN/Inf bit patterns survive)
//   u64 FNV-1a checksum over everything before it
//
// built from the same io/ codec primitives as the checkpoint files. decode()
// fails loudly on bad magic, unknown version, truncation or checksum
// mismatch. Network's wire_roundtrip mode encodes + decodes + verifies every
// message at the send boundary, proving bit-identical serialization.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/codec.hpp"

namespace pdsl::fleet {

constexpr std::uint64_t kWireMagic = 0x5044534C'57495231ULL;  // "PDSLWIR1"
constexpr std::uint32_t kWireVersion = 1;

struct WireMessage {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t round = 0;
  std::uint8_t channel = 0;  ///< sim::Channel as a stable integer
  std::string tag;
  std::vector<float> payload;
};

[[nodiscard]] io::ByteBuffer wire_encode(const WireMessage& msg);

/// Throws std::runtime_error on bad magic / version / truncation / checksum.
[[nodiscard]] WireMessage wire_decode(const io::ByteBuffer& buf);

/// S-RECOV detect-don't-assert decode: nullopt on any malformed frame (bad
/// magic / version / truncation / checksum / trailing bytes) instead of a
/// throw. The transport's NACK/retransmit loop keys off this.
[[nodiscard]] std::optional<WireMessage> wire_try_decode(const io::ByteBuffer& buf);

/// Exact equality including payload bit patterns (NaN-safe).
[[nodiscard]] bool wire_equal(const WireMessage& a, const WireMessage& b);

}  // namespace pdsl::fleet
