#pragma once
// Copy-on-write per-agent parameter storage (S-SCALE pillar 3). A LazyMatrix
// behaves like a vector of N row vectors, but rows that were never written
// all alias one shared default row (the common init model x0, or zeros for
// momentum buffers). With sampled participation only the agents that were
// ever active own a private row, so model-state memory is linear in *active*
// agents rather than fleet size.
//
// Concurrency contract: distinct rows may be written concurrently from the
// per-agent parallel loops (each agent touches only its own slot, same
// discipline as the rest of the codebase); structural operations (reset,
// assign, dense, materialized_count, operator==) are driver-thread only.

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pdsl::fleet {

class LazyMatrix {
 public:
  LazyMatrix() = default;
  LazyMatrix(std::size_t n, std::vector<float> default_row) { reset(n, std::move(default_row)); }

  /// Re-initialize: n rows, all aliasing `default_row`, none materialized.
  void reset(std::size_t n, std::vector<float> default_row) {
    default_ = std::make_shared<const std::vector<float>>(std::move(default_row));
    rows_.clear();
    rows_.resize(n);
  }

  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] std::size_t dim() const { return default_ ? default_->size() : 0; }
  [[nodiscard]] bool empty() const { return rows_.empty(); }

  /// Read access; never materializes.
  [[nodiscard]] const std::vector<float>& operator[](std::size_t i) const {
    return rows_[i] ? *rows_[i] : *default_;
  }

  /// Write access; materializes row i (copying the default) on first touch.
  std::vector<float>& mut(std::size_t i) {
    if (!rows_[i]) rows_[i] = std::make_unique<std::vector<float>>(*default_);
    return *rows_[i];
  }

  /// Replace row i wholesale (no default copy on first touch).
  void set(std::size_t i, std::vector<float> v) {
    if (v.size() != dim()) throw std::invalid_argument("LazyMatrix::set: dim mismatch");
    if (rows_[i]) {
      *rows_[i] = std::move(v);
    } else {
      rows_[i] = std::make_unique<std::vector<float>>(std::move(v));
    }
  }

  [[nodiscard]] bool materialized(std::size_t i) const { return rows_[i] != nullptr; }

  [[nodiscard]] std::size_t materialized_count() const {
    std::size_t n = 0;
    for (const auto& r : rows_) n += (r != nullptr);
    return n;
  }

  /// Fully materialized copy (checkpointing, tests).
  [[nodiscard]] std::vector<std::vector<float>> dense() const {
    std::vector<std::vector<float>> out;
    out.reserve(rows_.size());
    for (std::size_t i = 0; i < rows_.size(); ++i) out.push_back((*this)[i]);
    return out;
  }

  /// Replace contents with explicit rows (all become materialized; the first
  /// row doubles as the default for rows added later — there are none).
  void assign(std::vector<std::vector<float>> rows) {
    const std::size_t d = rows.empty() ? 0 : rows.front().size();
    for (const auto& r : rows) {
      if (r.size() != d) throw std::invalid_argument("LazyMatrix::assign: ragged rows");
    }
    default_ = std::make_shared<const std::vector<float>>(std::vector<float>(d, 0.0f));
    rows_.clear();
    rows_.reserve(rows.size());
    for (auto& r : rows) rows_.push_back(std::make_unique<std::vector<float>>(std::move(r)));
  }

  /// Value equality (row by row, exact).
  friend bool operator==(const LazyMatrix& a, const LazyMatrix& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const LazyMatrix& a, const LazyMatrix& b) { return !(a == b); }

  /// Read-only iteration (metrics, protocol-invariant tests).
  class const_iterator {
   public:
    const_iterator(const LazyMatrix* m, std::size_t i) : m_(m), i_(i) {}
    const std::vector<float>& operator*() const { return (*m_)[i_]; }
    const_iterator& operator++() { ++i_; return *this; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
   private:
    const LazyMatrix* m_;
    std::size_t i_;
  };
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, rows_.size()}; }

 private:
  std::shared_ptr<const std::vector<float>> default_;
  std::vector<std::unique_ptr<std::vector<float>>> rows_;
};

}  // namespace pdsl::fleet
