#pragma once
// S-SCALE fleet configuration: sampled/random-walk participation, lazy agent
// state, sparse topologies and the wire-format round-trip mode. All defaults
// are "off", in which case every algorithm behaves bit-identically to the
// pre-fleet code paths (the golden fixtures enforce this).

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/json.hpp"

namespace pdsl::fleet {

enum class ParticipationMode {
  kFull,     ///< every agent active every round (historical behavior)
  kSampled,  ///< exactly k of N active, deterministic hash of (seed, agent, round)
  kWalk,     ///< random-walk: one walker; the walker and its previous position
             ///< are active so the model hands off along graph edges
};

ParticipationMode participation_mode_from_string(const std::string& name);
std::string to_string(ParticipationMode mode);

struct ParticipationPlan {
  ParticipationMode mode = ParticipationMode::kFull;
  /// Sampled mode: number of active agents per round. 0 = derive from rate.
  std::size_t active = 0;
  /// Sampled mode alternative: fraction of agents active per round, in (0, 1].
  /// Used only when `active` is 0; k = ceil(rate * N), at least 1.
  double rate = 0.0;
  /// Hash seed for participation decisions; 0 = derive from the experiment
  /// seed (splitmix64(seed ^ 0xF1EE7A6E)).
  std::uint64_t seed = 0;

  [[nodiscard]] bool enabled() const { return mode != ParticipationMode::kFull; }
  /// Resolve k for a fleet of n agents (sampled mode). Throws on invalid.
  [[nodiscard]] std::size_t resolved_active(std::size_t n) const;
};

struct FleetOptions {
  ParticipationPlan participation;
  /// Materialize per-agent workers (model workspace + eval cache) only for
  /// active agents, with LRU eviction of dormant ones.
  bool lazy_state = false;
  /// Max simultaneously materialized workers in lazy mode. 0 = auto
  /// (4x the active set, floor 32).
  std::size_t worker_cache = 0;
  /// Encode + decode + verify every sim::Network message through the
  /// versioned wire format (proves bit-identical serialization on every send).
  bool wire_roundtrip = false;
  /// Route the topology through fleet::SparseGraph / SparseMetropolis (CSR
  /// neighbor views, no N x N matrix). Bit-identical to the dense path.
  bool sparse = false;
  /// Degree for the sparse "regular" (circulant) topology generator.
  std::size_t degree = 4;
  /// Connection radius for the sparse "geometric" topology generator.
  double radius = 0.25;

  /// Any fleet machinery engaged at all?
  [[nodiscard]] bool enabled() const {
    return participation.enabled() || lazy_state || wire_roundtrip || sparse;
  }
  /// Stateless (round-keyed) mini-batch draws are required whenever workers
  /// can be evicted or skipped, so a re-materialized worker draws exactly the
  /// batches it would have drawn had it stayed resident. Sparse-only runs
  /// keep the historical stateful sampler (golden equivalence).
  [[nodiscard]] bool stateless_batches() const {
    return participation.enabled() || lazy_state;
  }

  /// Range-check against a fleet of `agents`; throws std::invalid_argument
  /// naming the offending field.
  void validate(std::size_t agents) const;
};

/// Strict JSON round-trip (mirrors config_io conventions; unknown keys throw).
json::Value fleet_options_to_json(const FleetOptions& f);
FleetOptions fleet_options_from_json(const json::Value& v);

}  // namespace pdsl::fleet
