#pragma once
// Deterministic per-round participation sampling (S-SCALE pillar 1). The
// active set for round t is a pure function of (seed, round) — the same
// stateless-hash discipline as the S-FAULT plans — so reruns and different
// --threads widths see identical participation, and a schedule can be
// queried for any round without stepping through earlier ones (walk mode
// replays its hash chain from round 1, which is O(t) and trivially cheap).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fleet/options.hpp"
#include "graph/view.hpp"

namespace pdsl::fleet {

/// Active-agent mask for round `round` (1-based, matching run_round).
/// - kFull: all ones.
/// - kSampled: exactly k agents — the k smallest (hash, id) pairs where
///   hash = splitmix64 of (seed, agent, round).
/// - kWalk: the walker position p_t and its previous position p_{t-1}
///   (p_0 := p_1), so each step is a handoff along a graph edge.
/// `seed` must already be resolved (non-zero); use resolve_participation_seed.
std::vector<unsigned char> participation_mask(const ParticipationPlan& plan,
                                              const graph::TopologyView& topo,
                                              std::size_t round, std::uint64_t seed);

/// Resolve the plan's hash seed: plan.seed when non-zero, else derived from
/// the experiment seed.
[[nodiscard]] std::uint64_t resolve_participation_seed(const ParticipationPlan& plan,
                                                       std::uint64_t experiment_seed);

/// Walker position at round t (exposed for tests; round >= 1).
[[nodiscard]] std::size_t walk_position(const graph::TopologyView& topo, std::size_t round,
                                        std::uint64_t seed);

}  // namespace pdsl::fleet
