#include "fleet/options.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

namespace pdsl::fleet {

ParticipationMode participation_mode_from_string(const std::string& name) {
  if (name == "full") return ParticipationMode::kFull;
  if (name == "sampled") return ParticipationMode::kSampled;
  if (name == "walk") return ParticipationMode::kWalk;
  throw std::invalid_argument("unknown participation mode: " + name +
                              " (expected full|sampled|walk)");
}

std::string to_string(ParticipationMode mode) {
  switch (mode) {
    case ParticipationMode::kFull: return "full";
    case ParticipationMode::kSampled: return "sampled";
    case ParticipationMode::kWalk: return "walk";
  }
  return "full";
}

std::size_t ParticipationPlan::resolved_active(std::size_t n) const {
  if (active > 0) {
    if (active > n) {
      throw std::invalid_argument("participation.active (" + std::to_string(active) +
                                  ") exceeds the number of agents (" + std::to_string(n) + ")");
    }
    return active;
  }
  if (rate <= 0.0 || rate > 1.0) {
    throw std::invalid_argument("participation.rate must be in (0,1] when active is 0, got " +
                                std::to_string(rate));
  }
  const auto k = static_cast<std::size_t>(std::ceil(rate * static_cast<double>(n)));
  return k == 0 ? 1 : (k > n ? n : k);
}

void FleetOptions::validate(std::size_t agents) const {
  if (agents == 0) throw std::invalid_argument("fleet: zero-agent configs are invalid");
  if (participation.mode == ParticipationMode::kSampled) {
    (void)participation.resolved_active(agents);  // throws with the field name
  }
  if (participation.mode == ParticipationMode::kWalk && agents < 2) {
    throw std::invalid_argument("participation mode 'walk' needs at least 2 agents");
  }
  // degree/radius are only consumed by the sparse-only "regular"/"geometric"
  // generators, which range-check against the fleet size themselves; here we
  // only reject values that are invalid for every topology.
  if (sparse && degree == 0) {
    throw std::invalid_argument("fleet.degree must be positive for sparse topologies");
  }
  if (sparse && !(radius > 0.0)) {
    throw std::invalid_argument("fleet.radius must be positive, got " + std::to_string(radius));
  }
}

json::Value fleet_options_to_json(const FleetOptions& f) {
  json::Object p;
  p["mode"] = to_string(f.participation.mode);
  p["active"] = f.participation.active;
  p["rate"] = f.participation.rate;
  p["seed"] = static_cast<double>(f.participation.seed);
  json::Object o;
  o["participation"] = json::Value(std::move(p));
  o["lazy_state"] = f.lazy_state;
  o["worker_cache"] = f.worker_cache;
  o["wire_roundtrip"] = f.wire_roundtrip;
  o["sparse"] = f.sparse;
  o["degree"] = f.degree;
  o["radius"] = f.radius;
  return json::Value(std::move(o));
}

FleetOptions fleet_options_from_json(const json::Value& v) {
  static const std::set<std::string> known = {"participation", "lazy_state", "worker_cache",
                                             "wire_roundtrip", "sparse", "degree", "radius"};
  static const std::set<std::string> known_part = {"mode", "active", "rate", "seed"};
  for (const auto& [key, _] : v.as_object()) {
    if (known.find(key) == known.end()) {
      throw std::invalid_argument("fleet config: unknown key \"" + key + "\"");
    }
  }
  FleetOptions f;
  if (v.contains("participation")) {
    const auto& p = v.at("participation");
    for (const auto& [key, _] : p.as_object()) {
      if (known_part.find(key) == known_part.end()) {
        throw std::invalid_argument("fleet.participation: unknown key \"" + key + "\"");
      }
    }
    f.participation.mode = participation_mode_from_string(p.string_or("mode", "full"));
    f.participation.active = static_cast<std::size_t>(p.number_or("active", 0));
    f.participation.rate = p.number_or("rate", 0.0);
    f.participation.seed = static_cast<std::uint64_t>(p.number_or("seed", 0));
  }
  f.lazy_state = v.bool_or("lazy_state", false);
  f.worker_cache = static_cast<std::size_t>(v.number_or("worker_cache", 0));
  f.wire_roundtrip = v.bool_or("wire_roundtrip", false);
  f.sparse = v.bool_or("sparse", false);
  f.degree = static_cast<std::size_t>(v.number_or("degree", 4));
  f.radius = v.number_or("radius", 0.25);
  return f;
}

}  // namespace pdsl::fleet
