#include "recovery/run_state.hpp"

#include <stdexcept>

#include "io/checkpoint.hpp"

namespace pdsl::recovery {

namespace {

// Every RoundMetrics field travels, wall-clock ones included: a resumed run
// re-emits the prior rows verbatim, so its CSV is byte-identical to the
// uninterrupted run's in all deterministic columns and carries the original
// timings in the volatile "_s" ones.
void append_round(io::ByteBuffer& buf, const sim::RoundMetrics& m) {
  io::append_u64(buf, m.round);
  io::append_f64(buf, m.avg_loss);
  io::append_f64(buf, m.test_accuracy);
  io::append_f64(buf, m.consensus);
  io::append_f64(buf, m.grad_norm);
  io::append_u64(buf, m.messages);
  io::append_u64(buf, m.bytes);
  io::append_f64(buf, m.elapsed_s);
  io::append_f64(buf, m.round_s);
  io::append_f64(buf, m.phases.local_grad_s);
  io::append_f64(buf, m.phases.crossgrad_s);
  io::append_f64(buf, m.phases.shapley_s);
  io::append_f64(buf, m.phases.aggregate_s);
  io::append_f64(buf, m.phases.gossip_s);
  io::append_u64(buf, m.dropped);
  io::append_u64(buf, m.delayed);
  io::append_u64(buf, m.offline);
  io::append_u64(buf, m.stale_reused);
  io::append_u64(buf, m.fallbacks);
  io::append_u64(buf, m.byz_active);
  io::append_u64(buf, m.corrupted);
  io::append_u64(buf, m.rejected);
  io::append_u64(buf, m.reclipped);
  io::append_f64(buf, m.pi_attacker);
  io::append_f64(buf, m.pi_honest);
  io::append_f64(buf, m.epsilon_spent);
  io::append_u64(buf, m.shapley_evals);
  io::append_u64(buf, m.shapley_batched);
  io::append_u64(buf, m.shapley_cache_hits);
  io::append_u64(buf, m.shapley_cache_misses);
  io::append_u64(buf, m.shapley_early_stops);
  io::append_u64(buf, m.retransmits);
  io::append_u64(buf, m.corrupt_detected);
  io::append_u64(buf, m.dup_dropped);
  io::append_u64(buf, m.reordered);
  io::append_u64(buf, m.crashes);
  io::append_u64(buf, m.resyncs);
}

sim::RoundMetrics read_round(io::ByteReader& r) {
  sim::RoundMetrics m;
  m.round = static_cast<std::size_t>(r.read_u64("round"));
  m.avg_loss = r.read_f64("avg_loss");
  m.test_accuracy = r.read_f64("test_accuracy");
  m.consensus = r.read_f64("consensus");
  m.grad_norm = r.read_f64("grad_norm");
  m.messages = static_cast<std::size_t>(r.read_u64("messages"));
  m.bytes = static_cast<std::size_t>(r.read_u64("bytes"));
  m.elapsed_s = r.read_f64("elapsed_s");
  m.round_s = r.read_f64("round_s");
  m.phases.local_grad_s = r.read_f64("local_grad_s");
  m.phases.crossgrad_s = r.read_f64("crossgrad_s");
  m.phases.shapley_s = r.read_f64("shapley_s");
  m.phases.aggregate_s = r.read_f64("aggregate_s");
  m.phases.gossip_s = r.read_f64("gossip_s");
  m.dropped = static_cast<std::size_t>(r.read_u64("dropped"));
  m.delayed = static_cast<std::size_t>(r.read_u64("delayed"));
  m.offline = static_cast<std::size_t>(r.read_u64("offline"));
  m.stale_reused = static_cast<std::size_t>(r.read_u64("stale_reused"));
  m.fallbacks = static_cast<std::size_t>(r.read_u64("fallbacks"));
  m.byz_active = static_cast<std::size_t>(r.read_u64("byz_active"));
  m.corrupted = static_cast<std::size_t>(r.read_u64("corrupted"));
  m.rejected = static_cast<std::size_t>(r.read_u64("rejected"));
  m.reclipped = static_cast<std::size_t>(r.read_u64("reclipped"));
  m.pi_attacker = r.read_f64("pi_attacker");
  m.pi_honest = r.read_f64("pi_honest");
  m.epsilon_spent = r.read_f64("epsilon_spent");
  m.shapley_evals = static_cast<std::size_t>(r.read_u64("shapley_evals"));
  m.shapley_batched = static_cast<std::size_t>(r.read_u64("shapley_batched"));
  m.shapley_cache_hits = static_cast<std::size_t>(r.read_u64("shapley_cache_hits"));
  m.shapley_cache_misses = static_cast<std::size_t>(r.read_u64("shapley_cache_misses"));
  m.shapley_early_stops = static_cast<std::size_t>(r.read_u64("shapley_early_stops"));
  m.retransmits = static_cast<std::size_t>(r.read_u64("retransmits"));
  m.corrupt_detected = static_cast<std::size_t>(r.read_u64("corrupt_detected"));
  m.dup_dropped = static_cast<std::size_t>(r.read_u64("dup_dropped"));
  m.reordered = static_cast<std::size_t>(r.read_u64("reordered"));
  m.crashes = static_cast<std::size_t>(r.read_u64("crashes"));
  m.resyncs = static_cast<std::size_t>(r.read_u64("resyncs"));
  return m;
}

}  // namespace

void save_run_state(const std::string& path, const RunState& st) {
  io::ByteBuffer body;
  io::append_u64(body, st.config_hash);
  io::append_u64(body, st.resume.completed_rounds);
  io::append_f64(body, st.resume.last_acc);
  io::append_u64(body, st.resume.accountant_rdp.size());
  for (const double v : st.resume.accountant_rdp) io::append_f64(body, v);
  io::append_u64(body, st.resume.accountant_invocations);
  io::append_u64(body, st.resume.prior_series.size());
  for (const auto& m : st.resume.prior_series) append_round(body, m);
  io::append_u64(body, st.algo_state.size());
  io::append_raw(body, st.algo_state.data(), st.algo_state.size());
  io::save_blob(path, kRunStateMagic, body, "run-state save");
}

RunState load_run_state(const std::string& path, std::uint64_t expected_config_hash) {
  const io::ByteBuffer body = io::load_blob(path, kRunStateMagic, "run-state load");
  io::ByteReader r(body, "run-state load");
  RunState st;
  st.config_hash = r.read_u64("config hash");
  if (expected_config_hash != 0 && st.config_hash != expected_config_hash) {
    throw std::runtime_error(
        "run-state load: " + path +
        " was checkpointed under a different experiment configuration; refusing to "
        "resume (a silent mismatch would diverge, not recover)");
  }
  st.resume.completed_rounds = static_cast<std::size_t>(r.read_u64("completed rounds"));
  st.resume.last_acc = r.read_f64("last accuracy");
  const auto n_rdp = static_cast<std::size_t>(r.read_u64("rdp order count"));
  st.resume.accountant_rdp.reserve(n_rdp);
  for (std::size_t i = 0; i < n_rdp; ++i) {
    st.resume.accountant_rdp.push_back(r.read_f64("rdp accumulator"));
  }
  st.resume.accountant_invocations =
      static_cast<std::size_t>(r.read_u64("accountant invocations"));
  const auto n_rounds = static_cast<std::size_t>(r.read_u64("series length"));
  st.resume.prior_series.reserve(n_rounds);
  for (std::size_t i = 0; i < n_rounds; ++i) st.resume.prior_series.push_back(read_round(r));
  const auto blob_size = static_cast<std::size_t>(r.read_u64("algorithm blob size"));
  st.algo_state.resize(blob_size);
  r.read_raw(st.algo_state.data(), blob_size, "algorithm blob");
  if (!r.exhausted()) {
    throw std::runtime_error("run-state load: trailing bytes after the algorithm blob in " +
                             path);
  }
  return st;
}

}  // namespace pdsl::recovery
