#include "recovery/recovery.hpp"

#include <stdexcept>
#include <utility>

#include "io/checkpoint.hpp"
#include "recovery/run_state.hpp"

namespace pdsl::recovery {

RecoveryManager::RecoveryManager(sim::CrashPlan plan, RecoveryOptions opts)
    : plan_(std::move(plan)), opts_(std::move(opts)) {
  plan_.validate();
}

void RecoveryManager::take_snapshots(algos::Algorithm& alg, std::size_t round) {
  const std::size_t m = alg.num_agents();
  snaps_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    snaps_[i].round = round;
    snaps_[i].model = alg.models()[i];
    snaps_[i].extra = alg.crash_snapshot_extra(i);
  }
  ++snapshot_epochs_;
  if (!opts_.snapshot_dir.empty()) {
    for (std::size_t i = 0; i < m; ++i) {
      io::ByteBuffer body;
      io::append_u64(body, snaps_[i].round);
      io::append_floats(body, snaps_[i].model);
      io::append_floats(body, snaps_[i].extra);
      io::save_blob(opts_.snapshot_dir + "/agent_" + std::to_string(i) + ".snap",
                    kSnapshotMagic, body, "recovery snapshot");
    }
  }
}

void RecoveryManager::on_round_begin(algos::Algorithm& alg, std::size_t t) {
  if (!plan_.any()) return;
  // First call: capture the state *entering* this round (round t-1's post
  // state), which under resume is the checkpointed state, not initialization.
  if (snaps_.empty()) take_snapshots(alg, t == 0 ? 0 : t - 1);

  const std::size_t m = alg.num_agents();
  std::vector<std::size_t> crashed;
  for (std::size_t i = 0; i < m; ++i) {
    if (plan_.crashes(i, t)) crashed.push_back(i);
  }
  if (crashed.empty()) return;

  // Pass 1: every crashed agent loses its warm caches and restarts from its
  // latest snapshot. All restores complete before any resync traffic so the
  // outcome cannot depend on the order crashed agents are processed in.
  for (const std::size_t i : crashed) {
    alg.crash_wipe_caches(i);
    alg.restore_agent_model(i, snaps_[i].model);
    if (!snaps_[i].extra.empty()) alg.crash_restore_extra(i, snaps_[i].extra);
  }

  // Pass 2: online neighbors gossip their current models to each restarted
  // agent, through the real (droppable, delayable, corruptible) network.
  const std::string tag = "rs@" + std::to_string(t);
  auto& net = alg.network();
  const auto& topo = *alg.env().topo;
  for (const std::size_t i : crashed) {
    for (const std::size_t j : topo.neighbors(i)) {
      if (j == i || !alg.agent_active(j)) continue;
      net.send(j, i, tag, alg.models()[j], sim::Channel::kState);
    }
  }

  // Pass 3: each restarted agent re-enters the consensus at the W-weighted
  // average of its restored snapshot and whichever neighbor models arrived,
  // renormalized over the arrivals (the PR-4 degradation idiom). Accumulate
  // in double for a threads-invariant, order-fixed reduction.
  const auto& mix = *alg.env().mixing;
  for (const std::size_t i : crashed) {
    const std::vector<float>& restored = alg.models()[i];
    const std::size_t dim = restored.size();
    std::vector<double> acc(dim, 0.0);
    double wsum = mix(i, i);
    for (std::size_t d = 0; d < dim; ++d) acc[d] = wsum * static_cast<double>(restored[d]);
    bool resynced = false;
    for (const std::size_t j : topo.neighbors(i)) {
      if (j == i) continue;
      auto row = net.receive(i, j, tag);
      if (!row.has_value()) continue;
      if (row->size() != dim) {
        throw std::runtime_error("RecoveryManager: resync payload dimension mismatch");
      }
      const double wij = mix(i, j);
      for (std::size_t d = 0; d < dim; ++d) {
        acc[d] += wij * static_cast<double>((*row)[d]);
      }
      wsum += wij;
      resynced = true;
    }
    if (resynced && wsum > 0.0) {
      std::vector<float> blended(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        blended[d] = static_cast<float>(acc[d] / wsum);
      }
      alg.restore_agent_model(i, std::move(blended));
    }
    const std::size_t lag = (t > 0 ? t - 1 : 0) - snaps_[i].round;
    alg.note_crash_recovery(resynced, lag);
    ++crashes_;
    if (resynced) ++resyncs_;
  }
}

void RecoveryManager::on_round_end(algos::Algorithm& alg, std::size_t t) {
  if (!plan_.any()) return;
  if (plan_.snapshot_every > 0 && t % plan_.snapshot_every == 0) {
    take_snapshots(alg, t);
  }
}

}  // namespace pdsl::recovery
