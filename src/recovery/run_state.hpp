#pragma once
// S-RECOV resumable run-state file ("PDSLRUN1" blob): everything needed to
// kill a run after round r and continue it bit-identically — the driver-side
// cursor/series/accountant (algos::ResumeState) plus the algorithm's opaque
// save_state blob, guarded by a config-identity hash so a resume against a
// different experiment configuration fails loudly instead of silently
// diverging. Written with the io/checkpoint tmp+rename discipline: a crash
// mid-checkpoint never clobbers the previous resumable state.

#include <cstdint>
#include <string>

#include "algos/common.hpp"
#include "io/codec.hpp"

namespace pdsl::recovery {

/// "PDSLRUN1" — resumable run-state blob magic.
constexpr std::uint64_t kRunStateMagic = 0x5044534C52554E31ULL;
/// "PDSLSNP1" — per-agent recovery snapshot blob magic.
constexpr std::uint64_t kSnapshotMagic = 0x5044534C534E5031ULL;

struct RunState {
  /// FNV-1a over the canonical JSON of the experiment config with volatile,
  /// resume-irrelevant knobs scrubbed (threads, output paths, checkpoint
  /// cadence). load_run_state refuses a mismatch.
  std::uint64_t config_hash = 0;
  algos::ResumeState resume;
  io::ByteBuffer algo_state;  ///< Algorithm::save_state payload, opaque here
};

/// Persist `st` crash-safely at `path`.
void save_run_state(const std::string& path, const RunState& st);

/// Load and validate a run-state file. Throws std::runtime_error on a
/// missing/truncated/corrupted file, and — when `expected_config_hash` is
/// non-zero — on a config-identity mismatch.
[[nodiscard]] RunState load_run_state(const std::string& path,
                                      std::uint64_t expected_config_hash);

/// FNV-1a over a string (the config-identity hash primitive).
[[nodiscard]] inline std::uint64_t fnv1a_str(const std::string& s) {
  return io::fnv1a_bytes(s.data(), s.size());
}

}  // namespace pdsl::recovery
