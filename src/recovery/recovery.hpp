#pragma once
// S-RECOV crash/restart recovery (fail-stop model). A crashed agent loses
// everything in its process memory — model, momentum-like auxiliary state,
// staleness-cached cross-gradients, Shapley score caches — and restarts from
// its latest periodic snapshot plus a neighbor state-resync: online neighbors
// gossip their current models over the (faulty!) network and the restarted
// agent re-enters the consensus at the W-renormalized average instead of a
// snapshot_every-rounds-stale point.
//
// Determinism contract (S-RT): crash decisions are a pure hash of
// (seed, agent, round) via sim::CrashPlan — never a shared RNG draw — and
// both hooks run sequentially on the driver thread between parallel phases,
// so a run with crashes is bit-identical at any --threads width and across
// reruns. Resync traffic goes through sim::Network::send and is therefore
// charged, droppable, delayable and corruptible like any protocol message.

#include <cstdint>
#include <string>
#include <vector>

#include "algos/common.hpp"
#include "sim/faults.hpp"

namespace pdsl::recovery {

struct RecoveryOptions {
  /// When non-empty, every snapshot epoch also persists one crash-safe
  /// `agent_<i>.snap` blob per agent into this directory (io::AtomicFile
  /// tmp+rename discipline), so an operator can inspect or restore the
  /// fleet's last good state out-of-process.
  std::string snapshot_dir;
};

/// Drives crash injection + recovery from inside Algorithm::run_round via the
/// RecoveryHook seam. Install with alg.set_recovery(&mgr); the manager is
/// borrowed and must outlive the run.
class RecoveryManager final : public algos::RecoveryHook {
 public:
  explicit RecoveryManager(sim::CrashPlan plan, RecoveryOptions opts = {});

  /// Crash injection: fires after the churn/participation refresh, before any
  /// round-t compute. Lazily snapshots the entering state on the first call
  /// (so a resume-from-checkpoint run recovers toward resumed state, not
  /// initialization), then wipes + restores every agent the plan crashes at
  /// round t and runs the neighbor resync.
  void on_round_begin(algos::Algorithm& alg, std::size_t t) override;

  /// Periodic snapshot: every plan.snapshot_every rounds, capture each
  /// agent's post-round model row + crash_snapshot_extra.
  void on_round_end(algos::Algorithm& alg, std::size_t t) override;

  [[nodiscard]] std::size_t crashes() const { return crashes_; }
  [[nodiscard]] std::size_t resyncs() const { return resyncs_; }
  [[nodiscard]] std::size_t snapshot_epochs() const { return snapshot_epochs_; }
  [[nodiscard]] const sim::CrashPlan& plan() const { return plan_; }

 private:
  struct Snapshot {
    std::size_t round = 0;  ///< round whose post-state this captures (0 = init)
    std::vector<float> model;
    std::vector<float> extra;  ///< Algorithm::crash_snapshot_extra payload
  };

  void take_snapshots(algos::Algorithm& alg, std::size_t round);

  sim::CrashPlan plan_;
  RecoveryOptions opts_;
  std::vector<Snapshot> snaps_;  ///< empty until the first hook call
  std::size_t crashes_ = 0;
  std::size_t resyncs_ = 0;
  std::size_t snapshot_epochs_ = 0;
};

}  // namespace pdsl::recovery
