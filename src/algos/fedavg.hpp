#pragma once
// FedAvg (McMahan et al. [2]) — the *centralized* federated reference the
// paper's introduction contrasts decentralized learning against. A virtual
// server averages the agents' models (weighted by shard size) after K local
// epochs of privatized SGD. It deliberately bypasses the peer-to-peer
// network simulator: the star topology's server is exactly the bottleneck
// decentralized learning removes, so its traffic is tallied separately
// (server_messages/server_bytes) rather than through sim::Network.

#include "algos/common.hpp"

namespace pdsl::algos {

class FedAvg final : public Algorithm {
 public:
  explicit FedAvg(const Env& env);
  [[nodiscard]] std::string name() const override {
    return env_.hp.sigma > 0.0 ? "DP-FEDAVG" : "FEDAVG";
  }
  void round_impl(std::size_t t) override;

  [[nodiscard]] std::size_t server_messages() const { return server_messages_; }
  [[nodiscard]] std::size_t server_bytes() const { return server_bytes_; }

 private:
  std::vector<double> shard_weights_;  ///< |D_i| / |D|
  std::size_t server_messages_ = 0;
  std::size_t server_bytes_ = 0;
};

}  // namespace pdsl::algos
