#include "algos/async_gossip.hpp"

#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"

namespace pdsl::algos {

AsyncDpGossip::AsyncDpGossip(const Env& env)
    : Algorithm(env), clock_rng_(splitmix64(env.seed ^ 0xA57C)) {}

void AsyncDpGossip::wake(std::size_t i, std::size_t t) {
  ++events_;
  if (!active(i)) return;  // churned out: the wake event fires into the void
  // Local privatized step at whatever (possibly stale) model i currently has.
  {
    auto timer = phase(obs::Phase::kLocalGrad);
    workers_[i].draw_batch();
    const auto g = dp::privatize(workers_[i].gradient(models_[i]), env_.hp.clip, env_.hp.sigma,
                                 agent_rngs_[i]);
    axpy(models_.mut(i), g, static_cast<float>(-env_.hp.gamma));
  }
  auto timer = phase(obs::Phase::kGossip);

  // Randomized pairwise gossip with one uniform neighbor: both endpoints
  // move to the average. Models cross the network privatized so the exchange
  // leaks no more than the synchronous algorithms' model broadcasts; the
  // model has only ever been updated with privatized gradients, so the
  // additional noise here is a conservative hedge against direct inspection.
  const auto nbrs = neighbors(i);
  if (nbrs.empty()) return;
  const std::size_t j = nbrs[static_cast<std::size_t>(
      clock_rng_.uniform_int(0, static_cast<std::int64_t>(nbrs.size()) - 1))];
  const std::string tag = "pair@" + std::to_string(t) + "." + std::to_string(events_);
  // Send both halves and drain both mailboxes before deciding whether the
  // exchange happened: bailing after one successful send would leave its
  // payload unread, tripping the between-rounds leftover check. The model IS
  // the update carrier here, so both halves ride the contribution channel; a
  // half rejected by sanitization aborts the exchange like a dropped one.
  net_.send(i, j, tag, models_[i], sim::Channel::kContribution);
  net_.send(j, i, tag, models_[j], sim::Channel::kContribution);
  const auto from_j = receive_checked(i, j, tag, /*reclip=*/false);
  const auto from_i = receive_checked(j, i, tag, /*reclip=*/false);
  if (!from_j || !from_i) return;  // a dropped half aborts the pairwise average
  std::vector<float> avg = *from_j;
  axpy(avg, *from_i, 1.0f);
  scale_inplace(avg, 0.5f);
  models_.set(i, avg);
  models_.set(j, std::move(avg));
}

void AsyncDpGossip::round_impl(std::size_t t) {
  // M wake events per round, uniformly random agent each time — a discrete
  // simulation of independent Poisson clocks. Deliberately NOT converted to
  // runtime::parallel_for (S-RT): wake events are causally ordered (event e+1
  // reads models event e wrote, and the clock RNG is one serial stream), so
  // this baseline runs sequentially at every --threads setting.
  const std::size_t m = num_agents();
  for (std::size_t e = 0; e < m; ++e) {
    const auto i = static_cast<std::size_t>(
        clock_rng_.uniform_int(0, static_cast<std::int64_t>(m) - 1));
    wake(i, t);
  }
}

}  // namespace pdsl::algos
