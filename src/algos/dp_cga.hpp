#pragma once
// DP-CGA baseline: Cross-Gradient Aggregation (Esfandiari et al. [12]) with
// Gaussian-mechanism perturbation of the exchanged cross-gradients, exactly
// as the paper's Sec. VI-B constructs it. Each agent collects the derivatives
// of its model w.r.t. every neighbor's dataset (computed by the neighbors and
// sent back, privatized), projects the bundle to one direction via the
// min-norm-point quadratic program, and applies it with momentum on top of
// the gossip-averaged model.

#include "algos/common.hpp"
#include "optim/qp.hpp"

namespace pdsl::algos {

class DpCga final : public Algorithm {
 public:
  explicit DpCga(const Env& env);
  [[nodiscard]] std::string name() const override { return "DP-CGA"; }
  void round_impl(std::size_t t) override;

  /// Last round's QP iterations (observability hook for tests/benches).
  [[nodiscard]] std::size_t last_qp_iterations() const { return last_qp_iters_; }

 private:
  optim::MinNormSolver solver_;
  std::vector<std::vector<float>> momentum_;
  std::size_t last_qp_iters_ = 0;
};

}  // namespace pdsl::algos
