#pragma once
// Quasi-Global Momentum (Lin et al. [25]) with the Gaussian mechanism — an
// additional heterogeneity-aware baseline from the paper's related work.
// Instead of momentum over local gradients, QGM builds momentum from the
// *model displacement*, which approximates the global update direction:
//   m_i <- beta * m_i + (x_i^{t-1} - x_i^t) / gamma   (after mixing+step)
//   d_i  = ghat_i + mu_qgm * m_i
//   x_i <- sum_j w_ij x_j - gamma * d_i
// The exchanged quantity is the model (a function of privatized gradients).

#include "algos/common.hpp"

namespace pdsl::algos {

class DpQgm final : public Algorithm {
 public:
  explicit DpQgm(const Env& env);
  [[nodiscard]] std::string name() const override { return "DP-QGM"; }
  void round_impl(std::size_t t) override;

 private:
  std::vector<std::vector<float>> momentum_;    ///< m_i
  std::vector<std::vector<float>> prev_model_;  ///< x_i^{t-1}
};

}  // namespace pdsl::algos
