#include "algos/muffliato.hpp"

#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"
#include "runtime/parallel_for.hpp"

namespace pdsl::algos {

void Muffliato::round_impl(std::size_t t) {
  const std::size_t m = num_agents();
  // Local step with clipped gradient, then noise injection on the shared value.
  {
    auto timer = phase(obs::Phase::kLocalGrad);
    draw_all_batches();
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;  // churned out: no local step, no noise draw
      auto g = workers_[i].gradient(models_[i]);
      dp::clip_l2(g, env_.hp.clip);
      axpy(models_.mut(i), g, static_cast<float>(-env_.hp.gamma));
      // Perturb the *update scale* the agent exposes: noise with stddev
      // gamma*sigma on the model matches noising the gradient with sigma.
      dp::add_gaussian_noise(models_.mut(i), env_.hp.gamma * env_.hp.sigma, agent_rngs_[i]);
    });
  }
  // Gossip phase: K sweeps of x <- W x.
  for (std::size_t k = 0; k < std::max<std::size_t>(1, env_.hp.gossip_steps); ++k) {
    models_.assign(mix_vectors(models_, "gossip@" + std::to_string(t) + "." + std::to_string(k)));
  }
}

}  // namespace pdsl::algos
