#include "algos/fedavg.hpp"

#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"
#include "runtime/parallel_for.hpp"

namespace pdsl::algos {

FedAvg::FedAvg(const Env& env) : Algorithm(env) {
  double total = 0.0;
  shard_weights_.resize(num_agents());
  for (std::size_t i = 0; i < num_agents(); ++i) {
    shard_weights_[i] = static_cast<double>((*env.partition)[i].size());
    total += shard_weights_[i];
  }
  for (auto& w : shard_weights_) w /= total;
}

void FedAvg::round_impl(std::size_t /*t*/) {
  const std::size_t m = num_agents();
  const auto steps = std::max<std::size_t>(1, env_.hp.local_steps);

  // Local phase: K privatized SGD steps per agent from the shared model.
  {
    auto timer = phase(obs::Phase::kLocalGrad);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;  // churned out: no local steps this round
      for (std::size_t k = 0; k < steps; ++k) {
        workers_[i].draw_batch();
        const auto g = dp::privatize(workers_[i].gradient(models_[i]), env_.hp.clip,
                                     env_.hp.sigma, agent_rngs_[i]);
        axpy(models_.mut(i), g, static_cast<float>(-env_.hp.gamma));
      }
    });
  }

  // Server phase: shard-weighted average over participants, redistributed to
  // them. Full participation takes the exact historical path (no renormalizing
  // division), so zero-fault runs stay bit-identical.
  auto timer = phase(obs::Phase::kAggregate);
  std::vector<const std::vector<float>*> ptrs;
  std::vector<double> weights;
  ptrs.reserve(m);
  weights.reserve(m);
  double wsum = 0.0;
  bool all_active = true;
  for (std::size_t i = 0; i < m; ++i) {
    if (!active(i)) {
      all_active = false;
      continue;
    }
    ptrs.push_back(&models_[i]);
    weights.push_back(shard_weights_[i]);
    wsum += shard_weights_[i];
  }
  if (ptrs.empty()) return;  // everyone offline: nothing to average
  if (all_active) {
    weights = shard_weights_;
  } else {
    for (auto& w : weights) w /= wsum;  // renormalize over participants
  }
  const auto global = weighted_sum(ptrs, weights);
  const std::size_t payload = global.size() * sizeof(float);
  for (std::size_t i = 0; i < m; ++i) {
    if (!active(i)) continue;  // offline agents keep their stale model
    models_.set(i, global);
    server_messages_ += 2;           // upload + download
    server_bytes_ += 2 * payload;
  }
}

}  // namespace pdsl::algos
