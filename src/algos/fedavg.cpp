#include "algos/fedavg.hpp"

#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"
#include "runtime/parallel_for.hpp"

namespace pdsl::algos {

FedAvg::FedAvg(const Env& env) : Algorithm(env) {
  double total = 0.0;
  shard_weights_.resize(num_agents());
  for (std::size_t i = 0; i < num_agents(); ++i) {
    shard_weights_[i] = static_cast<double>(workers_[i].local_size());
    total += shard_weights_[i];
  }
  for (auto& w : shard_weights_) w /= total;
}

void FedAvg::run_round(std::size_t /*t*/) {
  const std::size_t m = num_agents();
  const auto steps = std::max<std::size_t>(1, env_.hp.local_steps);

  // Local phase: K privatized SGD steps per agent from the shared model.
  {
    auto timer = phase(obs::Phase::kLocalGrad);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      for (std::size_t k = 0; k < steps; ++k) {
        workers_[i].draw_batch();
        const auto g = dp::privatize(workers_[i].gradient(models_[i]), env_.hp.clip,
                                     env_.hp.sigma, agent_rngs_[i]);
        axpy(models_[i], g, static_cast<float>(-env_.hp.gamma));
      }
    });
  }

  // Server phase: shard-weighted average, redistributed to everyone.
  auto timer = phase(obs::Phase::kAggregate);
  std::vector<const std::vector<float>*> ptrs;
  ptrs.reserve(m);
  for (const auto& x : models_) ptrs.push_back(&x);
  const auto global = weighted_sum(ptrs, shard_weights_);
  const std::size_t payload = global.size() * sizeof(float);
  for (std::size_t i = 0; i < m; ++i) {
    models_[i] = global;
    server_messages_ += 2;           // upload + download
    server_bytes_ += 2 * payload;
  }
}

}  // namespace pdsl::algos
