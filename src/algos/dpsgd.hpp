#pragma once
// Non-private references: D-PSGD (Lian et al. [20]) and its momentum variant
// DMSGD (Yu et al. [23]). These anchor the "no DP" end of the ablations and
// sanity-check the substrate (they must learn well on IID data).

#include "algos/common.hpp"

namespace pdsl::algos {

/// D-PSGD round: x_i <- sum_j w_ij x_j - gamma * g_i(x_i).
class DPSGD final : public Algorithm {
 public:
  explicit DPSGD(const Env& env) : Algorithm(env) {}
  [[nodiscard]] std::string name() const override { return "DPSGD"; }
  void round_impl(std::size_t t) override;
};

/// DMSGD round: u_i <- alpha u_i + g_i; x_i <- sum_j w_ij x_j - gamma u_i.
class DMSGD final : public Algorithm {
 public:
  explicit DMSGD(const Env& env);
  [[nodiscard]] std::string name() const override { return "DMSGD"; }
  void round_impl(std::size_t t) override;

 private:
  std::vector<std::vector<float>> momentum_;
};

}  // namespace pdsl::algos
