#pragma once
// MUFFLIATO baseline (Cyffers et al. [19]): each agent takes a local
// (clipped) gradient step, injects Gaussian noise into the value it is about
// to share, then runs several gossip-averaging sweeps of the noisy models —
// the gossip phase is what amplifies privacy in the original analysis.

#include "algos/common.hpp"

namespace pdsl::algos {

class Muffliato final : public Algorithm {
 public:
  explicit Muffliato(const Env& env) : Algorithm(env) {}
  [[nodiscard]] std::string name() const override { return "MUFFLIATO"; }
  void round_impl(std::size_t t) override;
};

}  // namespace pdsl::algos
