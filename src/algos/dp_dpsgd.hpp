#pragma once
// DP-DPSGD baseline, the synchronous form of A(DP)^2SGD (Xu et al. [18]):
// each agent clips + perturbs its local stochastic gradient before applying
// it on top of the gossip-averaged model. Heterogeneity-oblivious.

#include "algos/common.hpp"

namespace pdsl::algos {

class DpDpsgd final : public Algorithm {
 public:
  explicit DpDpsgd(const Env& env) : Algorithm(env) {}
  [[nodiscard]] std::string name() const override { return "DP-DPSGD"; }
  void round_impl(std::size_t t) override;
};

}  // namespace pdsl::algos
