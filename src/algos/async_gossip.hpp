#pragma once
// Asynchronous DP gossip SGD — the event-driven regime of A(DP)^2SGD [18]
// and randomized gossip [21], provided as an extension to the synchronous
// baselines. Agents wake on independent random clocks; a woken agent takes a
// privatized local gradient step and then performs one randomized pairwise
// gossip exchange with a uniformly chosen neighbor (both ends move to the
// average of their privatized models). One run_round() executes M wake
// events in random order, so rounds remain comparable to the synchronous
// algorithms in expected gradient work.

#include "algos/common.hpp"

namespace pdsl::algos {

class AsyncDpGossip final : public Algorithm {
 public:
  explicit AsyncDpGossip(const Env& env);
  [[nodiscard]] std::string name() const override { return "ASYNC-DP-GOSSIP"; }
  void round_impl(std::size_t t) override;

  /// Wake events executed so far (M per round).
  [[nodiscard]] std::size_t events() const { return events_; }

 private:
  void wake(std::size_t agent, std::size_t t);

  Rng clock_rng_;  ///< wake order + partner choice
  std::size_t events_ = 0;
};

}  // namespace pdsl::algos
