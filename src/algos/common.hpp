#pragma once
// Shared machinery for decentralized learning algorithms (S8/S9): the
// hyper-parameter bundle, the experiment environment handed to every
// algorithm, and the Algorithm base class (per-agent workers + models +
// message-passing network + synchronized metric hooks).

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "compress/compressor.hpp"
#include "dp/rdp.hpp"
#include "fleet/lazy_matrix.hpp"
#include "fleet/options.hpp"
#include "io/codec.hpp"
#include "obs/ledger.hpp"
#include "obs/phase.hpp"
#include "data/dataset.hpp"
#include "graph/mixing.hpp"
#include "graph/topology.hpp"
#include "graph/view.hpp"
#include "nn/model.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/worker.hpp"
#include "sim/worker_pool.hpp"

namespace pdsl::algos {

struct HyperParams {
  double gamma = 0.01;   ///< learning rate (paper's gamma)
  double alpha = 0.5;    ///< momentum coefficient (paper's alpha)
  double clip = 1.0;     ///< gradient clipping threshold C
  double sigma = 0.0;    ///< Gaussian noise stddev; 0 disables DP
  std::size_t batch = 32;

  // PDSL
  std::size_t shapley_permutations = 8;  ///< R in Algorithm 2
  bool exact_shapley = false;            ///< use Eq. 18 enumeration instead
  /// Estimator: "mc" (Algorithm 2) | "exact" | "tmc" (truncated MC) |
  /// "stratified" (Castro et al. [37]) | "adaptive" (S-SHAP antithetic pairs
  /// + CI early stop). exact_shapley=true overrides to exact.
  std::string shapley_method = "mc";
  double tmc_tolerance = 0.01;           ///< truncation tolerance for "tmc"
  std::size_t validation_batch = 64;     ///< per-round subsample of Q for v(.)
  /// S-SHAP coalition scoring path: "sequential" (one forward pass per
  /// coalition — the bit-identical reference) | "batched" (stacked-GEMM
  /// evaluation + cross-round value cache; bit-identical on supported
  /// models, verified by tests/test_shapley.cpp) | "linear" (additionally
  /// reuses per-member first-layer pre-activations across coalitions —
  /// fastest, tolerance-banded against sequential, pinned by the banded
  /// golden fixture tests/golden/pdsl_linear.csv). Default: linear; models
  /// the batch evaluator cannot stack (CNNs) fall back to sequential
  /// scoring automatically.
  std::string shapley_eval = "linear";
  /// "adaptive" floor: permutations drawn before the CI stop may trigger.
  /// The budget ceiling is shapley_permutations.
  std::size_t shapley_min_permutations = 4;
  double shapley_ci_z = 2.0;             ///< "adaptive" CI half-width z-score

  // MUFFLIATO
  std::size_t gossip_steps = 2;  ///< gossip iterations after noise injection

  // DP-NET-FLEET
  std::size_t local_steps = 3;  ///< local updates between communication rounds
};

/// S-BYZ consumer-side defense screening: what every receiver does to
/// incoming payloads before trusting them. These are the generic defenses any
/// gossip protocol can run; PDSL's Shapley weighting is the *native* defense
/// layered on top (it needs no robust aggregation — poisoned cross-gradients
/// score at the bottom of every coalition and are zeroed by Eq. 19).
struct DefenseOptions {
  /// Incoming-message sanitization: reject non-finite payloads and re-clip
  /// received cross-gradients to the DP threshold C (models are only checked
  /// for finiteness — their norm is legitimately unbounded). kAuto turns it
  /// on exactly when an adversary or robust aggregation is configured, so
  /// clean runs stay bit-identical to pre-defense code.
  enum class Sanitize { kAuto, kOn, kOff };
  Sanitize sanitize = Sanitize::kAuto;

  /// Robust replacement for the W-weighted average in mix_vectors, applied
  /// coordinate-wise over {self} + arrived neighbors (W weights ignored):
  /// the screening defense for the mixing-matrix baselines.
  enum class RobustAgg { kNone, kTrimmedMean, kMedian };
  RobustAgg robust_agg = RobustAgg::kNone;
  double trim_frac = 0.25;  ///< per-side trim fraction for kTrimmedMean
};

[[nodiscard]] const char* robust_agg_to_string(DefenseOptions::RobustAgg agg);
/// Throws std::invalid_argument on an unknown name.
[[nodiscard]] DefenseOptions::RobustAgg robust_agg_from_string(const std::string& name);
[[nodiscard]] const char* sanitize_to_string(DefenseOptions::Sanitize s);
[[nodiscard]] DefenseOptions::Sanitize sanitize_from_string(const std::string& name);

/// Borrowed views of everything one experiment run shares across algorithms.
/// All pointers must outlive the Algorithm.
struct Env {
  const graph::TopologyView* topo = nullptr;
  const graph::MixingView* mixing = nullptr;
  const data::Dataset* train = nullptr;
  const data::Dataset* validation = nullptr;  ///< Q; required by PDSL only
  const nn::Model* model_template = nullptr;
  const std::vector<std::vector<std::size_t>>* partition = nullptr;
  HyperParams hp;
  std::uint64_t seed = 1;
  /// DP failure probability delta for the per-round privacy accounting
  /// (RoundMetrics::epsilon_spent). Only the report changes with it — the
  /// noise itself is hp.sigma, calibrated upstream.
  double dp_delta = 1e-3;
  double drop_prob = 0.0;  ///< legacy alias for faults.drop_prob
  const compress::Compressor* compressor = nullptr;  ///< optional lossy channel
  sim::FaultPlan faults;  ///< S-FAULT: drop/delay/churn/staleness injection
  sim::AdversaryPlan adversary;  ///< S-BYZ: Byzantine roles (empty = honest fleet)
  sim::ChannelPlan channel;      ///< S-RECOV: corruption/dup/reorder + retry budget
  sim::CrashPlan crash;          ///< S-RECOV: fail-stop crash schedule
  DefenseOptions defense;        ///< S-BYZ: consumer-side screening
  /// S-SCALE: sampled/walk participation, lazy agent state, wire round-trip.
  /// All-defaults = historical behavior, bit-identical.
  fleet::FleetOptions fleet;
};

/// S-SHAP per-round Shapley-phase accounting, snapshotted by
/// run_with_metrics into the CSV so the batched/cached/adaptive speedup is
/// attributable round by round.
struct ShapleyRoundStats {
  std::size_t coalition_evals = 0;      ///< characteristic evaluations run
  std::size_t coalitions_batched = 0;   ///< of those, scored via stacked GEMM
  std::size_t cache_hits = 0;           ///< served from the cross-round cache
  std::size_t cache_misses = 0;         ///< cache lookups that had to evaluate
  std::size_t permutations_used = 0;    ///< MC permutations consumed (all agents)
  std::size_t early_stopped = 0;        ///< agents whose sampler CI-stopped early
};

/// Per-round graceful-degradation accounting (S-FAULT), reset at the top of
/// every round and snapshotted by run_with_metrics into the CSV.
struct FaultRoundStats {
  std::size_t offline_agents = 0;   ///< agents churned out this round
  std::size_t mix_renormalized = 0; ///< mixing rows renormalized over arrivals
  std::size_t stale_reused = 0;     ///< cached cross-gradients substituted
  std::size_t self_fallbacks = 0;   ///< agents that fell back to self-gradient
  std::size_t msgs_rejected = 0;    ///< non-finite payloads refused (S-BYZ)
  std::size_t msgs_reclipped = 0;   ///< received gradients re-clipped to C (S-BYZ)
  std::size_t crashed_agents = 0;   ///< agents that crashed this round (S-RECOV)
  std::size_t resynced_agents = 0;  ///< crashed agents restored via snapshot+resync
  std::size_t recovery_lag = 0;     ///< summed rounds-since-snapshot over recoveries
};

class Algorithm;

/// S-RECOV driver-side hook on the run_round template method. The concrete
/// implementation (recovery::RecoveryManager) lives above the algos layer;
/// this interface breaks the dependency cycle. on_round_begin fires after the
/// churn/participation mask refresh and worker preparation but before late
/// messages are absorbed (a crashed agent loses state *before* it does any
/// round-t work); on_round_end fires after round_impl (snapshots capture the
/// post-round state the next round builds on).
class RecoveryHook {
 public:
  virtual ~RecoveryHook() = default;
  virtual void on_round_begin(Algorithm& alg, std::size_t t) = 0;
  virtual void on_round_end(Algorithm& alg, std::size_t t) = 0;
};

class Algorithm {
 public:
  explicit Algorithm(const Env& env);
  virtual ~Algorithm() = default;
  Algorithm(const Algorithm&) = delete;
  Algorithm& operator=(const Algorithm&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Execute one synchronous communication round (1-indexed t). Template
  /// method: advances the network round clock (maturing delayed messages into
  /// absorb_late), refreshes the churn activity mask, runs the algorithm's
  /// round_impl, then clears the mailboxes — a non-zero leftover is a
  /// protocol bug, counted in unread_cleared() and asserted in debug builds.
  void run_round(std::size_t t);

  [[nodiscard]] std::size_t num_agents() const { return models_.size(); }
  [[nodiscard]] const fleet::LazyMatrix& models() const { return models_; }

  /// Overwrite every agent's model (warm start / checkpoint restore).
  /// Momentum-like per-algorithm state is NOT restored; it restarts at its
  /// initial value, the standard warm-start tradeoff.
  void set_models(std::vector<std::vector<float>> models);
  [[nodiscard]] std::vector<float> average_model() const;
  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] sim::LocalWorker& worker(std::size_t i) { return workers_[i]; }
  [[nodiscard]] const Env& env() const { return env_; }

  /// Phase-time breakdown accumulated since the last reset (S-OBS). The
  /// metrics loop resets before each round and snapshots after, giving a
  /// per-round local_grad/crossgrad/shapley/aggregate/gossip split.
  [[nodiscard]] const obs::PhaseTimings& phase_timings() const { return phases_; }
  void reset_phase_timings() { phases_ = obs::PhaseTimings{}; }

  /// Is agent i online for the round most recently started? (Always true
  /// without churn.) Offline agents freeze: no compute, no traffic. With
  /// S-SCALE participation, active = participating AND not churned out.
  [[nodiscard]] bool agent_active(std::size_t i) const { return active_[i] != 0; }

  /// S-SCALE: was agent i sampled into the round most recently started?
  /// (Always true in full-participation mode.)
  [[nodiscard]] bool agent_participates(std::size_t i) const { return participates_[i] != 0; }

  /// S-SCALE fleet accounting: participants in the last round, peak resident
  /// workers, and materialized model rows (≈ agents ever active).
  [[nodiscard]] std::size_t participants() const { return participants_; }
  [[nodiscard]] std::size_t workers_peak() const { return workers_.peak_materialized(); }
  [[nodiscard]] std::size_t workers_resident() const { return workers_.materialized(); }
  [[nodiscard]] std::size_t models_materialized() const { return models_.materialized_count(); }

  /// Degradation accounting for the round most recently run.
  [[nodiscard]] const FaultRoundStats& fault_stats() const { return fault_stats_; }

  /// Total mailbox messages a round_impl left unread (protocol-bug detector;
  /// always 0 for a correct protocol, faulted or not).
  [[nodiscard]] std::size_t unread_cleared() const { return unread_cleared_; }

  /// S-BYZ: mean aggregation weight a defense assigns to attacker-origin vs
  /// honest-origin contributions, measured over honest receivers only, for
  /// the last round run. nullopt when the algorithm has no per-edge weights
  /// to report (the base default) or no adversary is configured; Pdsl
  /// overrides with its Shapley-derived pi split.
  [[nodiscard]] virtual std::optional<std::pair<double, double>>
  attacker_honest_weight_split() const {
    return std::nullopt;
  }

  /// S-SHAP: Shapley-phase accounting for the last round run. nullopt for
  /// algorithms without a Shapley phase (the base default); Pdsl overrides.
  [[nodiscard]] virtual std::optional<ShapleyRoundStats> shapley_round_stats() const {
    return std::nullopt;
  }

  /// Is incoming-payload sanitization in effect for this run?
  [[nodiscard]] bool sanitizing() const { return sanitize_; }

  // --- S-RECOV surface -----------------------------------------------------

  /// Install (or clear, with nullptr) the recovery hook run_round calls. The
  /// hook is borrowed and must outlive the algorithm's rounds.
  void set_recovery(RecoveryHook* hook) { recovery_ = hook; }

  /// Per-agent auxiliary state a crash wipes and a snapshot must carry beyond
  /// the model row (Pdsl: the momentum column u_i). Empty by default.
  [[nodiscard]] virtual std::vector<float> crash_snapshot_extra(std::size_t i) const {
    (void)i;
    return {};
  }

  /// Restore the auxiliary state captured by crash_snapshot_extra.
  virtual void crash_restore_extra(std::size_t i, const std::vector<float>& extra) {
    (void)i;
    (void)extra;
  }

  /// A crash loses everything in agent i's process memory that is NOT part of
  /// a snapshot: cross-gradient staleness cache, Shapley value cache, ...
  /// Called by the RecoveryManager on every crash (base: nothing to wipe).
  virtual void crash_wipe_caches(std::size_t i) { (void)i; }

  /// Overwrite one agent's model row (RecoveryManager snapshot restore).
  void restore_agent_model(std::size_t i, std::vector<float> row);

  /// Fold one crash recovery into the round's fault accounting.
  /// `lag` = rounds between the snapshot restored from and the crash round.
  void note_crash_recovery(bool resynced, std::size_t lag);

  /// Serialize the algorithm's full dynamic state for kill-and-resume
  /// (models, per-agent RNG cursors, network counters/in-flight messages,
  /// algorithm-specific members). The base implementation refuses loudly;
  /// algorithms opt in by overriding both (Pdsl does).
  virtual void save_state(io::ByteBuffer& buf) const;
  virtual void load_state(io::ByteReader& r);

  /// S-BENCH360: algorithm-specific run-ledger events for the round most
  /// recently run, emitted from the driver thread after round_impl. The base
  /// emits nothing; Pdsl overrides to record its Shapley phi/pi vectors.
  /// Implementations must only write deterministic fields (the ledger's
  /// bit-identity contract; wall-clock belongs in the "phase_timing" event).
  virtual void ledger_round(obs::RunLedger& ledger, std::size_t t) const {
    (void)ledger;
    (void)t;
  }

 protected:
  /// The algorithm-specific body of one round, called by run_round() after
  /// fault bookkeeping. Implementations should skip compute for agents where
  /// !active(i) (mix_vectors already freezes them).
  virtual void round_impl(std::size_t t) = 0;

  /// Hook for delayed messages that matured at the top of this round, in
  /// deterministic (src, dst, tag, edge index) order. Default: discard them
  /// (too late for protocols without a staleness story); Pdsl overrides to
  /// feed its cross-gradient staleness cache.
  virtual void absorb_late(std::vector<sim::LateMessage> late);

  [[nodiscard]] bool active(std::size_t i) const { return active_[i] != 0; }
  [[nodiscard]] bool participating(std::size_t i) const { return participates_[i] != 0; }

  [[nodiscard]] double w(std::size_t i, std::size_t j) const { return (*env_.mixing)(i, j); }
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t i) const {
    return env_.topo->neighbors(i);
  }
  [[nodiscard]] std::vector<std::size_t> closed_neighborhood(std::size_t i) const {
    return env_.topo->closed_neighborhood(i);
  }

  /// Gossip-average a per-agent family of vectors with W:
  /// out_i = sum_j w_ij in_j, exchanged through the network under `tag`.
  /// For the mixing-matrix baselines this traffic IS the update carrier, so
  /// it defaults to the adversary's contribution channel; PDSL passes kState
  /// for its momentum/model gossip (its contribution channel is the
  /// cross-gradient exchange). Incoming payloads are sanitized (finiteness
  /// only — no re-clip; see DefenseOptions), and when robust_agg is set the
  /// W-average is replaced by a coordinate-wise trimmed-mean/median over
  /// {self} + arrivals.
  std::vector<std::vector<float>> mix_vectors(
      const std::vector<std::vector<float>>& in, const std::string& tag,
      sim::Channel channel = sim::Channel::kContribution);
  std::vector<std::vector<float>> mix_vectors(
      const fleet::LazyMatrix& in, const std::string& tag,
      sim::Channel channel = sim::Channel::kContribution);

  /// S-SCALE in-place gossip: mix `contrib` (rows populated for active agents
  /// only) into `state`. Active rows receive the W-average over self +
  /// arrived participating neighbors (same FP order as mix_vectors); frozen
  /// rows are left untouched — no copy, so lazy state stays lazy.
  void mix_into(fleet::LazyMatrix& state, const std::vector<std::vector<float>>& contrib,
                const std::string& tag, sim::Channel channel = sim::Channel::kContribution);

  /// receive() + sanitization (S-BYZ): nullopt if nothing arrived or the
  /// payload was rejected as non-finite. `reclip` re-clips gradient-kind
  /// payloads to the DP threshold C. A no-op passthrough when sanitization
  /// is off, so clean runs stay bit-identical.
  std::optional<std::vector<float>> receive_checked(std::size_t dst, std::size_t src,
                                                    const std::string& tag, bool reclip);

  /// The sanitization half of receive_checked, for payloads that arrive by
  /// other paths (the staleness cache, absorb_late). Returns false (and
  /// counts a rejection) if the payload must be discarded.
  bool sanitize_payload(std::vector<float>& payload, bool reclip);

  /// Draw this round's mini-batch on every worker (fleet mode: round-keyed
  /// stateless draws on active workers only; see FleetOptions).
  void draw_all_batches();

  /// RAII timer crediting the enclosing scope to `p` (and emitting a trace
  /// span when tracing is on): `auto t = phase(obs::Phase::kLocalGrad);`.
  [[nodiscard]] obs::PhaseScope phase(obs::Phase p) { return {phases_, p}; }

  /// The shared slice of save_state/load_state: model rows, per-agent RNG
  /// cursors, stateful batch-sampler cursors (or the stateless draw epoch),
  /// the unread-mailbox tally and the network's dynamic state. Subclasses
  /// call these from their overrides, then append their own members.
  void save_base_state(io::ByteBuffer& buf) const;
  void load_base_state(io::ByteReader& r);

  Env env_;
  sim::Network net_;
  sim::WorkerPool workers_;                 ///< per-agent workers (lazy in fleet mode)
  fleet::LazyMatrix models_;                ///< x_i, flat (COW rows share x0)
  std::vector<Rng> agent_rngs_;             ///< per-agent noise streams
  obs::PhaseTimings phases_;                ///< since last reset_phase_timings()
  FaultRoundStats fault_stats_;             ///< reset at the top of each round
  std::vector<unsigned char> active_;       ///< participation && !churn, per round
  std::vector<unsigned char> participates_; ///< S-SCALE sampling mask, per round

 private:
  /// Shared gossip core: sends row(i) for active i to participating
  /// neighbors, receives + W-averages into out[i] for active i (untouched
  /// for inactive i). Exact historical FP accumulation order.
  void mix_exchange(const std::function<const std::vector<float>&(std::size_t)>& row,
                    const std::string& tag, sim::Channel channel,
                    std::vector<std::vector<float>>& out);

  void refresh_active(std::size_t t);

  std::uint64_t participation_seed_ = 0;    ///< resolved hash seed (S-SCALE)
  std::size_t participants_ = 0;            ///< participating agents, last round
  std::uint64_t draw_epoch_ = 0;            ///< stateless-draw salt counter
  bool stateless_draws_ = false;            ///< round-keyed batch draws (fleet)
  std::size_t unread_cleared_ = 0;
  RecoveryHook* recovery_ = nullptr;        ///< S-RECOV hook (borrowed; may be null)
  bool sanitize_ = false;  ///< resolved DefenseOptions::sanitize for this run
  /// Per-round sanitization counters; atomics because receive_checked runs
  /// inside parallel per-agent bodies. Reset with fault_stats_, folded into
  /// it after round_impl.
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> reclipped_{0};
};

struct MetricsOptions {
  std::size_t test_subsample = 256;  ///< samples of the test set per evaluation
  std::size_t eval_every = 1;        ///< test-accuracy cadence; 0 = never (loss is every round)
  /// S-SCALE: evaluate loss/accuracy over the first `metric_agents` agents
  /// only (0 = all). At fleet scale, touching every agent's worker each round
  /// would materialize the whole fleet; a fixed prefix keeps the metric
  /// deterministic and the resident set small.
  std::size_t metric_agents = 0;
};

/// S-RECOV: everything run_with_metrics needs to continue a checkpointed run
/// bit-identically — the completed-round cursor, the held test accuracy, the
/// raw RDP accumulators (persisted verbatim: re-deriving them changes the FP
/// accumulation order and breaks the epsilon_spent contract) and the already
/// recorded per-round series. The caller restores the *algorithm's* state
/// separately via Algorithm::load_state before driving.
struct ResumeState {
  std::size_t completed_rounds = 0;
  double last_acc = 0.0;
  std::vector<double> accountant_rdp;
  std::size_t accountant_invocations = 0;
  std::vector<sim::RoundMetrics> prior_series;
};

/// Called after round `t`'s metrics are recorded, with the accountant and the
/// full series so far; the CLI persists a resumable run-state file from it.
using CheckpointHook = std::function<void(std::size_t t, double last_acc,
                                          const dp::RdpAccountant& accountant,
                                          const std::vector<sim::RoundMetrics>& series)>;

/// Drive `alg` for `rounds` rounds, recording the per-round series the
/// paper's figures plot and the final accuracy its tables report. Each round
/// also feeds the per-phase obs::MetricsRegistry histograms ("phase.<name>_ms")
/// and, when `ledger` is non-null and open, appends "round", algorithm-specific
/// and "phase_timing" events to the run ledger (S-BENCH360). With `resume` the
/// loop continues from resume->completed_rounds + 1; with `checkpoint_every`
/// > 0 and a hook, the hook fires every that-many rounds (and never after the
/// final round — the run is complete then, not resumable).
std::vector<sim::RoundMetrics> run_with_metrics(Algorithm& alg, std::size_t rounds,
                                                const data::Dataset& test,
                                                const MetricsOptions& opts = {},
                                                obs::RunLedger* ledger = nullptr,
                                                const ResumeState* resume = nullptr,
                                                const CheckpointHook& checkpoint = nullptr,
                                                std::size_t checkpoint_every = 0);

}  // namespace pdsl::algos
