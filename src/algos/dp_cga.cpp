#include "algos/dp_cga.hpp"

#include <algorithm>

#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"
#include "runtime/parallel_for.hpp"

namespace pdsl::algos {

DpCga::DpCga(const Env& env) : Algorithm(env) {
  momentum_.assign(num_agents(), std::vector<float>(models_.dim(), 0.0f));
}

void DpCga::round_impl(std::size_t t) {
  draw_all_batches();
  const std::size_t m = num_agents();
  const std::string model_tag = "x@" + std::to_string(t);
  const std::string xgrad_tag = "xg@" + std::to_string(t);

  // Phase 1+2: broadcast current models, compute privatized cross-gradients
  // for every received model, and return them to the model's owner. The
  // broadcast completes (barrier) before anyone receives.
  {
    auto timer = phase(obs::Phase::kCrossGrad);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;  // churned out: no traffic
      for (std::size_t j : neighbors(i)) {
        if (participating(j)) net_.send(i, j, model_tag, models_[i]);
      }
    });
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;
      for (std::size_t j : neighbors(i)) {
        auto xj = receive_checked(i, j, model_tag, /*reclip=*/false);
        if (!xj) continue;  // dropped link: owner falls back to remaining grads
        auto g = dp::privatize(workers_[i].gradient(*xj), env_.hp.clip, env_.hp.sigma,
                               agent_rngs_[i]);
        // The returned cross-gradient steers j's update: contribution channel.
        // (j sent a model, so it participates — but keep the guard symmetric.)
        if (participating(j)) net_.send(i, j, xgrad_tag, std::move(g), sim::Channel::kContribution);
      }
    });
  }

  // Phase 3: each agent bundles its own privatized gradient with the received
  // cross-gradients and solves the min-norm QP for a common descent direction.
  std::vector<std::vector<float>> directions(m);
  std::vector<std::size_t> qp_iters(m, 0);
  {
    auto timer = phase(obs::Phase::kAggregate);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;  // directions[i] stays empty; update skipped below
      std::vector<std::vector<float>> bundle;
      bundle.push_back(dp::privatize(workers_[i].gradient(models_[i]), env_.hp.clip,
                                     env_.hp.sigma, agent_rngs_[i]));
      for (std::size_t j : neighbors(i)) {
        if (auto g = receive_checked(i, j, xgrad_tag, /*reclip=*/true)) {
          bundle.push_back(std::move(*g));
        }
      }
      const auto res = solver_.solve(bundle);
      qp_iters[i] = res.iterations;
      directions[i] = optim::combine(bundle, res.lambda);
    });
    last_qp_iters_ = *std::max_element(qp_iters.begin(), qp_iters.end());
  }

  // Phase 4: gossip-average models, then apply the momentum-smoothed direction.
  auto mixed = mix_vectors(models_, "mix@" + std::to_string(t));
  auto timer = phase(obs::Phase::kAggregate);
  const auto a = static_cast<float>(env_.hp.alpha);
  runtime::parallel_for(0, m, 1, [&](std::size_t i) {
    if (!active(i)) return;  // churned out: model and momentum frozen
    auto& u = momentum_[i];
    for (std::size_t k = 0; k < u.size(); ++k) u[k] = a * u[k] + directions[i][k];
    axpy(mixed[i], u, static_cast<float>(-env_.hp.gamma));
    models_.set(i, std::move(mixed[i]));
  });
}

}  // namespace pdsl::algos
