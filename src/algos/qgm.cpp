#include "algos/qgm.hpp"

#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"
#include "runtime/parallel_for.hpp"

namespace pdsl::algos {

DpQgm::DpQgm(const Env& env) : Algorithm(env) {
  momentum_.assign(num_agents(), std::vector<float>(models_.dim(), 0.0f));
  prev_model_ = models_.dense();
}

void DpQgm::round_impl(std::size_t t) {
  draw_all_batches();
  const std::size_t m = num_agents();
  const auto beta = static_cast<float>(env_.hp.alpha);  // reuse alpha as QGM's beta
  const auto gamma = static_cast<float>(env_.hp.gamma);

  std::vector<std::vector<float>> grads(m);
  {
    auto timer = phase(obs::Phase::kLocalGrad);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;
      grads[i] = dp::privatize(workers_[i].gradient(models_[i]), env_.hp.clip, env_.hp.sigma,
                               agent_rngs_[i]);
    });
  }
  auto mixed = mix_vectors(models_, "x@" + std::to_string(t));
  auto timer = phase(obs::Phase::kAggregate);
  runtime::parallel_for(0, m, 1, [&](std::size_t i) {
    if (!active(i)) return;  // churned out: model, momentum, prev model frozen
    // Quasi-global momentum from the displacement of the *previous* round.
    auto& mbuf = momentum_[i];
    for (std::size_t k = 0; k < mbuf.size(); ++k) {
      const float displacement = (prev_model_[i][k] - models_[i][k]) / gamma;
      mbuf[k] = beta * mbuf[k] + (1.0f - beta) * displacement;
    }
    prev_model_[i] = models_[i];

    // d_i = ghat_i + m_i applied on the mixed model.
    for (std::size_t k = 0; k < mixed[i].size(); ++k) {
      mixed[i][k] -= gamma * (grads[i][k] + mbuf[k]);
    }
    models_.set(i, std::move(mixed[i]));
  });
}

}  // namespace pdsl::algos
