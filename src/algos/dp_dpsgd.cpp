#include "algos/dp_dpsgd.hpp"

#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"
#include "runtime/parallel_for.hpp"

namespace pdsl::algos {

void DpDpsgd::round_impl(std::size_t t) {
  const std::size_t m = num_agents();
  std::vector<std::vector<float>> grads(m);
  {
    auto timer = phase(obs::Phase::kLocalGrad);
    draw_all_batches();
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;
      grads[i] = dp::privatize(workers_[i].gradient(models_[i]), env_.hp.clip, env_.hp.sigma,
                               agent_rngs_[i]);
    });
  }
  auto mixed = mix_vectors(models_, "x@" + std::to_string(t));
  auto timer = phase(obs::Phase::kAggregate);
  runtime::parallel_for(0, m, 1, [&](std::size_t i) {
    if (!active(i)) return;  // churned out: model frozen this round
    axpy(mixed[i], grads[i], static_cast<float>(-env_.hp.gamma));
    models_.set(i, std::move(mixed[i]));
  });
}

}  // namespace pdsl::algos
