#include "algos/dp_netfleet.hpp"

#include <cmath>

#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"
#include "runtime/parallel_for.hpp"

namespace pdsl::algos {

DpNetFleet::DpNetFleet(const Env& env) : Algorithm(env) {
  const std::size_t d = models_.dim();
  tracker_.assign(num_agents(), std::vector<float>(d, 0.0f));
  prev_grad_.assign(num_agents(), std::vector<float>(d, 0.0f));
}

void DpNetFleet::round_impl(std::size_t t) {
  const std::size_t m = num_agents();

  // Initialize the tracker with the first privatized local gradients: after
  // this, everything an agent transmits (tracker, model) is a function of
  // already-privatized gradients, so DP follows by post-processing — no
  // second noise injection that would compound over the tracking recursion.
  if (first_round_) {
    auto timer = phase(obs::Phase::kLocalGrad);
    draw_all_batches();
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;  // tracker stays 0 until the agent comes back
      prev_grad_[i] = dp::privatize(workers_[i].gradient(models_[i]), env_.hp.clip,
                                    env_.hp.sigma, agent_rngs_[i]);
      tracker_[i] = prev_grad_[i];
    });
    first_round_ = false;
  }

  // Local phase: K tracker-guided updates (no communication).
  {
    auto timer = phase(obs::Phase::kAggregate);
    const std::size_t steps = std::max<std::size_t>(1, env_.hp.local_steps);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;
      for (std::size_t k = 0; k + 1 < steps; ++k) {
        axpy(models_.mut(i), tracker_[i], static_cast<float>(-env_.hp.gamma));
      }
    });
  }

  // Communication phase: gossip the trackers and models (both are functions
  // of privatized gradients only).
  auto mixed_tracker = mix_vectors(tracker_, "y@" + std::to_string(t));
  auto mixed_model = mix_vectors(models_, "x@" + std::to_string(t));

  // Recursive gradient correction with a fresh privatized gradient at the
  // mixed model. The recursion telescopes, so tracker noise stays bounded
  // (~the noise of one privatized gradient); a generous clip only guards
  // against outright divergence without biasing the direction.
  auto timer = phase(obs::Phase::kLocalGrad);
  draw_all_batches();
  runtime::parallel_for(0, m, 1, [&](std::size_t i) {
    if (!active(i)) return;  // churned out: tracker, prev grad and model frozen
    auto g = dp::privatize(workers_[i].gradient(mixed_model[i]), env_.hp.clip, env_.hp.sigma,
                           agent_rngs_[i]);
    auto& y = mixed_tracker[i];
    for (std::size_t k = 0; k < y.size(); ++k) y[k] += g[k] - prev_grad_[i][k];
    const double noise_norm_bound =
        env_.hp.clip + 4.0 * env_.hp.sigma * std::sqrt(static_cast<double>(y.size()));
    dp::clip_l2(y, std::max(2.0 * env_.hp.clip, noise_norm_bound));
    prev_grad_[i] = std::move(g);

    // NET-FLEET model update: x_i <- sum_j w_ij x_j - gamma * y_i.
    axpy(mixed_model[i], y, static_cast<float>(-env_.hp.gamma));
    tracker_[i] = std::move(y);
    models_.set(i, std::move(mixed_model[i]));
  });
}

}  // namespace pdsl::algos
