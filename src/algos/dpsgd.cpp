#include "algos/dpsgd.hpp"

#include "common/vec_math.hpp"
#include "runtime/parallel_for.hpp"

namespace pdsl::algos {

void DPSGD::round_impl(std::size_t t) {
  const std::size_t m = num_agents();
  std::vector<std::vector<float>> grads(m);
  {
    auto timer = phase(obs::Phase::kLocalGrad);
    draw_all_batches();
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (active(i)) grads[i] = workers_[i].gradient(models_[i]);
    });
  }
  auto mixed = mix_vectors(models_, "x@" + std::to_string(t));
  auto timer = phase(obs::Phase::kAggregate);
  runtime::parallel_for(0, m, 1, [&](std::size_t i) {
    if (!active(i)) return;  // churned out: model frozen this round
    axpy(mixed[i], grads[i], static_cast<float>(-env_.hp.gamma));
    models_.set(i, std::move(mixed[i]));
  });
}

DMSGD::DMSGD(const Env& env) : Algorithm(env) {
  momentum_.assign(num_agents(), std::vector<float>(models_.dim(), 0.0f));
}

void DMSGD::round_impl(std::size_t t) {
  const std::size_t m = num_agents();
  const auto a = static_cast<float>(env_.hp.alpha);
  std::vector<std::vector<float>> grads(m);
  {
    auto timer = phase(obs::Phase::kLocalGrad);
    draw_all_batches();
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (active(i)) grads[i] = workers_[i].gradient(models_[i]);
    });
  }
  auto mixed = mix_vectors(models_, "x@" + std::to_string(t));
  auto timer = phase(obs::Phase::kAggregate);
  runtime::parallel_for(0, m, 1, [&](std::size_t i) {
    if (!active(i)) return;  // churned out: model and momentum frozen
    auto& u = momentum_[i];
    for (std::size_t k = 0; k < u.size(); ++k) u[k] = a * u[k] + grads[i][k];
    axpy(mixed[i], u, static_cast<float>(-env_.hp.gamma));
    models_.set(i, std::move(mixed[i]));
  });
}

}  // namespace pdsl::algos
