#pragma once
// DP-NET-FLEET baseline (Zhang et al. [14] + Gaussian mechanism, per the
// paper's Sec. VI-B). NET-FLEET handles heterogeneity with a recursive
// gradient-correction (gradient-tracking) variable y_i and runs several
// local updates between communication rounds:
//   local:  x_i <- x_i - gamma * y_i                    (K times, tracker-guided)
//   comm:   y_i <- sum_j w_ij yhat_j + g_i(x_i^{new}) - g_i(x_i^{old})
//           x_i <- sum_j w_ij xhat_j
// Privacy: the transmitted tracker yhat is built from clipped gradients and
// perturbed with the Gaussian mechanism before leaving the agent (the
// transmitted model is what the tracker already acted on, so the gradient
// path is the sensitive channel, mirroring the other DP baselines).

#include "algos/common.hpp"

namespace pdsl::algos {

class DpNetFleet final : public Algorithm {
 public:
  explicit DpNetFleet(const Env& env);
  [[nodiscard]] std::string name() const override { return "DP-NET-FLEET"; }
  void round_impl(std::size_t t) override;

 private:
  std::vector<std::vector<float>> tracker_;    ///< y_i
  std::vector<std::vector<float>> prev_grad_;  ///< g_i at the previous round's model
  bool first_round_ = true;
};

}  // namespace pdsl::algos
