#include "algos/common.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "common/stopwatch.hpp"
#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"
#include "fleet/participation.hpp"
#include "dp/rdp.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "sim/evaluate.hpp"

namespace pdsl::algos {

const char* robust_agg_to_string(DefenseOptions::RobustAgg agg) {
  switch (agg) {
    case DefenseOptions::RobustAgg::kNone: return "none";
    case DefenseOptions::RobustAgg::kTrimmedMean: return "trimmed_mean";
    case DefenseOptions::RobustAgg::kMedian: return "median";
  }
  return "none";
}

DefenseOptions::RobustAgg robust_agg_from_string(const std::string& name) {
  if (name == "none") return DefenseOptions::RobustAgg::kNone;
  if (name == "trimmed_mean") return DefenseOptions::RobustAgg::kTrimmedMean;
  if (name == "median") return DefenseOptions::RobustAgg::kMedian;
  throw std::invalid_argument("unknown robust aggregation mode: " + name);
}

const char* sanitize_to_string(DefenseOptions::Sanitize s) {
  switch (s) {
    case DefenseOptions::Sanitize::kAuto: return "auto";
    case DefenseOptions::Sanitize::kOn: return "on";
    case DefenseOptions::Sanitize::kOff: return "off";
  }
  return "auto";
}

DefenseOptions::Sanitize sanitize_from_string(const std::string& name) {
  if (name == "auto") return DefenseOptions::Sanitize::kAuto;
  if (name == "on") return DefenseOptions::Sanitize::kOn;
  if (name == "off") return DefenseOptions::Sanitize::kOff;
  throw std::invalid_argument("unknown sanitize mode: " + name);
}

namespace {
void validate_env(const Env& env) {
  if (env.topo == nullptr || env.mixing == nullptr || env.train == nullptr ||
      env.model_template == nullptr || env.partition == nullptr) {
    throw std::invalid_argument("Algorithm: incomplete Env");
  }
  if (env.topo->size() != env.mixing->size()) {
    throw std::invalid_argument("Algorithm: topology/mixing size mismatch");
  }
  if (env.partition->size() != env.topo->size()) {
    throw std::invalid_argument("Algorithm: partition size != agent count");
  }
  if (env.hp.gamma <= 0.0) throw std::invalid_argument("Algorithm: gamma must be positive");
  if (env.hp.alpha < 0.0 || env.hp.alpha >= 1.0) {
    throw std::invalid_argument("Algorithm: alpha must be in [0,1)");
  }
  if (env.defense.trim_frac < 0.0 || env.defense.trim_frac >= 0.5) {
    throw std::invalid_argument("Algorithm: defense.trim_frac must be in [0, 0.5)");
  }
  env.fleet.validate(env.topo->size());
}

/// Auto cache cap for the lazy worker pool: generous slack over the active
/// set so gossip-adjacent touches don't thrash, but still O(active).
std::size_t auto_cache_cap(const fleet::FleetOptions& fleet, std::size_t m) {
  if (fleet.worker_cache != 0) return fleet.worker_cache;
  if (!fleet.lazy_state) return 0;
  std::size_t k = m;
  if (fleet.participation.mode == fleet::ParticipationMode::kSampled) {
    k = fleet.participation.resolved_active(m);
  } else if (fleet.participation.mode == fleet::ParticipationMode::kWalk) {
    k = 2;
  }
  return std::max<std::size_t>(32, 4 * k);
}
}  // namespace

Algorithm::Algorithm(const Env& env)
    : env_(env),
      net_(*env.topo, sim::Network::Options{env.drop_prob, splitmix64(env.seed ^ 0xAEAE),
                                            true, env.compressor, env.faults, env.adversary,
                                            env.fleet.wire_roundtrip, env.channel}) {
  validate_env(env);
  // Sanitization defaults to "exactly when it could matter": an adversary in
  // play or robust aggregation requested. Clean kAuto runs take the untouched
  // receive path and stay bit-identical to pre-defense binaries.
  sanitize_ = env.defense.sanitize == DefenseOptions::Sanitize::kOn ||
              (env.defense.sanitize == DefenseOptions::Sanitize::kAuto &&
               (env.adversary.any() ||
                env.defense.robust_agg != DefenseOptions::RobustAgg::kNone));
  const std::size_t m = env.topo->size();
  active_.assign(m, 1);
  participates_.assign(m, 1);
  participants_ = m;
  participation_seed_ = fleet::resolve_participation_seed(env.fleet.participation, env.seed);
  // Round-keyed batch draws decouple a worker's samples from how often it was
  // touched, which is what makes sampling and lazy eviction deterministic.
  // Sparse-only fleet runs keep the historical stateful draws so the golden
  // fixtures replay bit-identical through SparseGraph.
  stateless_draws_ = env.fleet.stateless_batches();
  Rng root(env.seed);

  // One shared initialization: the analysis assumes all columns of X^[0]
  // are identical (Appendix B), so every agent starts from the same point.
  nn::Model init_model = *env.model_template;
  Rng init_rng = root.split(0x1217);
  init_model.init(init_rng);
  const std::vector<float> x0 = init_model.flat_params();

  workers_.init(init_model, *env.train, *env.partition, env.hp.batch, root,
                env.fleet.lazy_state, auto_cache_cap(env.fleet, m));
  models_.reset(m, x0);  // COW: one shared x0 row until an agent diverges
  agent_rngs_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    agent_rngs_.push_back(root.split(0xA900 + i));
  }
}

std::vector<float> Algorithm::average_model() const { return sim::average_model(models_); }

void Algorithm::run_round(std::size_t t) {
  // Advance the fault clock first: churn decisions for round t key on it, and
  // delayed messages that mature by t come back here rather than appearing in
  // mailboxes (so the leftover check below stays exact).
  std::vector<sim::LateMessage> late = net_.begin_round(t);
  fault_stats_ = FaultRoundStats{};
  rejected_.store(0, std::memory_order_relaxed);
  reclipped_.store(0, std::memory_order_relaxed);
  refresh_active(t);
  workers_.prepare(active_, t);
  // S-RECOV: crash injection + restore happens before any round-t work — a
  // crashed agent rejoins from snapshot + resync, then participates normally
  // (late messages addressed to it still arrive below, as they would to a
  // restarted process).
  if (recovery_ != nullptr) recovery_->on_round_begin(*this, t);
  if (!late.empty()) absorb_late(std::move(late));
  round_impl(t);
  // S-RECOV: snapshots capture the post-round state the next round builds on.
  if (recovery_ != nullptr) recovery_->on_round_end(*this, t);
  // Fold the atomic sanitization tallies into the plain per-round snapshot
  // (absorb_late runs after the reset, so late-payload screening is counted).
  fault_stats_.msgs_rejected = rejected_.load(std::memory_order_relaxed);
  fault_stats_.msgs_reclipped = reclipped_.load(std::memory_order_relaxed);
  // A correct synchronous protocol reads every message it was sent within the
  // round, faults or not (drops and delays never reach a mailbox). Leftovers
  // mean a protocol bug; keep the evidence visible in release builds too.
  const std::size_t leftover = net_.clear();
  if (leftover != 0) {
    unread_cleared_ += leftover;
    obs::MetricsRegistry::global().counter("net.unread_cleared").add(leftover);
  }
  assert(leftover == 0 && "protocol bug: round_impl left unread mailbox messages");
}

void Algorithm::refresh_active(std::size_t t) {
  const sim::FaultPlan& plan = net_.faults();
  const bool sampling = env_.fleet.participation.enabled();
  if (sampling) {
    participates_ =
        fleet::participation_mask(env_.fleet.participation, *env_.topo, t, participation_seed_);
    participants_ = 0;
    for (unsigned char p : participates_) participants_ += p;
  }
  if (!sampling && plan.churn_prob <= 0.0) return;  // mask stays all-online
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const bool off = plan.churn_prob > 0.0 && plan.offline(i, t);
    active_[i] = (!off && participates_[i] != 0) ? 1 : 0;
    if (off) ++fault_stats_.offline_agents;
  }
}

void Algorithm::absorb_late(std::vector<sim::LateMessage> late) {
  // Default: the payload arrived too late to be useful — count and discard.
  obs::MetricsRegistry::global().counter("net.late_discarded").add(late.size());
}

void Algorithm::set_models(std::vector<std::vector<float>> models) {
  if (models.size() != models_.size()) {
    throw std::invalid_argument("set_models: fleet size mismatch");
  }
  for (const auto& m : models) {
    if (m.size() != models_.dim()) {
      throw std::invalid_argument("set_models: model dimension mismatch");
    }
  }
  models_.assign(std::move(models));
}

void Algorithm::restore_agent_model(std::size_t i, std::vector<float> row) {
  if (i >= models_.size()) {
    throw std::out_of_range("restore_agent_model: agent id out of range");
  }
  if (row.size() != models_.dim()) {
    throw std::invalid_argument("restore_agent_model: model dimension mismatch");
  }
  models_.set(i, std::move(row));
}

void Algorithm::note_crash_recovery(bool resynced, std::size_t lag) {
  ++fault_stats_.crashed_agents;
  if (resynced) ++fault_stats_.resynced_agents;
  fault_stats_.recovery_lag += lag;
  static obs::Counter& crashes = obs::MetricsRegistry::global().counter("recov.crashes");
  crashes.add(1);
  if (resynced) {
    static obs::Counter& resyncs = obs::MetricsRegistry::global().counter("recov.resyncs");
    resyncs.add(1);
  }
}

void Algorithm::save_state(io::ByteBuffer& buf) const {
  (void)buf;
  throw std::runtime_error("checkpointing not supported for algorithm '" + name() + "'");
}

void Algorithm::load_state(io::ByteReader& r) {
  (void)r;
  throw std::runtime_error("checkpointing not supported for algorithm '" + name() + "'");
}

void Algorithm::save_base_state(io::ByteBuffer& buf) const {
  const std::size_t m = num_agents();
  io::append_u64(buf, m);
  io::append_u64(buf, models_.dim());
  for (std::size_t i = 0; i < m; ++i) io::append_floats(buf, models_[i]);
  for (std::size_t i = 0; i < m; ++i) io::append_string(buf, agent_rngs_[i].serialize());
  io::append_u64(buf, draw_epoch_);
  // Stateful (non-fleet) runs advance each worker's sampler stream once per
  // draw; the cursor must resume exactly. stateless_batches() guarantees the
  // pool is eager whenever draws are stateful, so touching every worker here
  // cannot materialize anything new.
  io::append_u8(buf, stateless_draws_ ? 1 : 0);
  if (!stateless_draws_) {
    auto& self = const_cast<Algorithm&>(*this);
    for (std::size_t i = 0; i < m; ++i) {
      io::append_string(buf, self.workers_.get(i).sampler().rng().serialize());
    }
  }
  io::append_u64(buf, unread_cleared_);
  net_.save_state(buf);
}

void Algorithm::load_base_state(io::ByteReader& r) {
  const auto m = static_cast<std::size_t>(r.read_u64("state agent count"));
  const auto dim = static_cast<std::size_t>(r.read_u64("state model dim"));
  if (m != num_agents() || dim != models_.dim()) {
    throw std::runtime_error("load_base_state: fleet shape mismatch (file " +
                             std::to_string(m) + "x" + std::to_string(dim) + ", run " +
                             std::to_string(num_agents()) + "x" +
                             std::to_string(models_.dim()) + ")");
  }
  std::vector<std::vector<float>> rows;
  rows.reserve(m);
  for (std::size_t i = 0; i < m; ++i) rows.push_back(r.read_floats("state model row"));
  models_.assign(std::move(rows));
  for (std::size_t i = 0; i < m; ++i) {
    agent_rngs_[i] = Rng::deserialize(r.read_string("state agent rng"));
  }
  draw_epoch_ = r.read_u64("state draw epoch");
  const bool file_stateless = r.read_u8("state draw mode") != 0;
  if (file_stateless != stateless_draws_) {
    throw std::runtime_error("load_base_state: batch-draw mode mismatch between the "
                             "checkpoint and this run's fleet options");
  }
  if (!stateless_draws_) {
    for (std::size_t i = 0; i < m; ++i) {
      workers_.get(i).sampler().rng() = Rng::deserialize(r.read_string("state sampler rng"));
    }
  }
  unread_cleared_ = static_cast<std::size_t>(r.read_u64("state unread_cleared"));
  net_.restore_state(r);
}

namespace {
/// Coordinate-wise robust center of `cols` (self + arrived neighbors). The
/// comparator orders non-finite values last so a NaN that slipped past
/// sanitization cannot make std::sort UB; with trimming it usually lands in
/// the discarded tail.
std::vector<float> robust_center(const std::vector<const std::vector<float>*>& cols,
                                 DefenseOptions::RobustAgg mode, double trim_frac) {
  const std::size_t dim = cols.front()->size();
  const std::size_t n = cols.size();
  std::vector<float> out(dim, 0.0f);
  std::vector<float> vals(n);
  const auto nan_last = [](float a, float b) {
    if (std::isnan(b)) return !std::isnan(a);
    if (std::isnan(a)) return false;
    return a < b;
  };
  const std::size_t k =
      std::min(static_cast<std::size_t>(trim_frac * static_cast<double>(n)), (n - 1) / 2);
  for (std::size_t d = 0; d < dim; ++d) {
    for (std::size_t c = 0; c < n; ++c) vals[c] = (*cols[c])[d];
    std::sort(vals.begin(), vals.end(), nan_last);
    if (mode == DefenseOptions::RobustAgg::kMedian) {
      out[d] = (n % 2 == 1) ? vals[n / 2] : 0.5f * (vals[n / 2 - 1] + vals[n / 2]);
    } else {  // trimmed mean over vals[k .. n-k)
      double acc = 0.0;
      for (std::size_t c = k; c < n - k; ++c) acc += vals[c];
      out[d] = static_cast<float>(acc / static_cast<double>(n - 2 * k));
    }
  }
  return out;
}
}  // namespace

bool Algorithm::sanitize_payload(std::vector<float>& payload, bool reclip) {
  if (!sanitize_) return true;
  for (float x : payload) {
    if (!std::isfinite(x)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& rej = obs::MetricsRegistry::global().counter("defense.rejected");
      rej.add(1);
      return false;
    }
  }
  if (reclip && env_.hp.clip > 0.0) {
    // Bounded-injection defense: whatever a sender claims, a received gradient
    // contributes at most norm C — the same bound DP clipping promised.
    if (dp::clip_l2(payload, env_.hp.clip) > env_.hp.clip) {
      reclipped_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& rc = obs::MetricsRegistry::global().counter("defense.reclipped");
      rc.add(1);
    }
  }
  return true;
}

std::optional<std::vector<float>> Algorithm::receive_checked(std::size_t dst, std::size_t src,
                                                             const std::string& tag,
                                                             bool reclip) {
  std::optional<std::vector<float>> payload = net_.receive(dst, src, tag);
  if (payload && !sanitize_payload(*payload, reclip)) return std::nullopt;
  return payload;
}

void Algorithm::mix_exchange(
    const std::function<const std::vector<float>&(std::size_t)>& row, const std::string& tag,
    sim::Channel channel, std::vector<std::vector<float>>& out) {
  // Every algorithm's mixing-matrix averaging flows through here, so this one
  // scope accounts the gossip phase for the whole family.
  auto timer = phase(obs::Phase::kGossip);
  const std::size_t m = num_agents();
  const bool robust = env_.defense.robust_agg != DefenseOptions::RobustAgg::kNone &&
                      channel == sim::Channel::kContribution;
  // Broadcast, then (phase barrier between the two parallel_fors) accumulate.
  // Each agent writes only its own mailbox edges / output slot, so any
  // execution width produces the same result.
  runtime::parallel_for(0, m, 1, [&](std::size_t i) {
    if (!active(i)) return;  // offline agents generate no traffic
    for (std::size_t j : neighbors(i)) {
      // Non-participating agents are outside the round entirely: no sends to
      // them (a churned-but-participating target still receives — Network
      // drops deliverless traffic, preserving the historical counters).
      if (!participating(j)) continue;
      net_.send(i, j, tag, row(i), channel);
    }
  });
  std::vector<unsigned char> renorm(m, 0);  // slot writes; folded after barrier
  runtime::parallel_for(0, m, 1, [&](std::size_t i) {
    if (!active(i)) return;  // inactive rows stay untouched in `out`
    const std::vector<float>& self = row(i);
    const std::vector<std::size_t> nbrs = neighbors(i);
    std::vector<std::optional<std::vector<float>>> got;
    got.reserve(nbrs.size());
    bool complete = true;
    for (std::size_t j : nbrs) {
      got.push_back(net_.receive(i, j, tag));
      // A rejected (non-finite) payload degrades exactly like a dropped one:
      // the row renormalizes over what survived screening.
      if (got.back() && !sanitize_payload(*got.back(), /*reclip=*/false)) {
        got.back().reset();
      }
      if (!got.back().has_value()) complete = false;
    }
    if (robust) {
      // Screening defense for the mixing-matrix baselines: W weights are
      // ignored and each coordinate takes a trimmed-mean/median over
      // {self} + arrivals, so a minority of outliers cannot steer the center.
      std::vector<const std::vector<float>*> cols;
      cols.reserve(nbrs.size() + 1);
      cols.push_back(&self);
      for (const auto& g : got) {
        if (g) cols.push_back(&*g);
      }
      out[i] = robust_center(cols, env_.defense.robust_agg, env_.defense.trim_frac);
      if (!complete) renorm[i] = 1;
      return;
    }
    std::vector<float> acc(self.size(), 0.0f);
    if (complete) {
      // Full participation: the exact historical accumulation order, so runs
      // with every fault knob at zero stay bit-identical to pre-fault code.
      axpy(acc, self, static_cast<float>(w(i, i)));
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        axpy(acc, *got[k], static_cast<float>(w(i, nbrs[k])));
      }
    } else {
      // Degrade: renormalize this row of W over self + reachable neighbors
      // (Eqs. 24-25 restricted to the surviving support), keeping the mixing
      // step an average — weights still sum to 1 — instead of silently
      // shrinking toward whatever arrived.
      double wsum = w(i, i);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        if (got[k]) wsum += w(i, nbrs[k]);
      }
      if (wsum <= 0.0) {
        acc = self;  // degenerate row: keep own value
      } else {
        axpy(acc, self, static_cast<float>(w(i, i) / wsum));
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          if (got[k]) axpy(acc, *got[k], static_cast<float>(w(i, nbrs[k]) / wsum));
        }
      }
      renorm[i] = 1;
    }
    out[i] = std::move(acc);
  });
  for (unsigned char r : renorm) fault_stats_.mix_renormalized += r;
}

std::vector<std::vector<float>> Algorithm::mix_vectors(const std::vector<std::vector<float>>& in,
                                                       const std::string& tag,
                                                       sim::Channel channel) {
  const std::size_t m = num_agents();
  if (in.size() != m) throw std::invalid_argument("mix_vectors: arity mismatch");
  std::vector<std::vector<float>> out(m);
  mix_exchange([&in](std::size_t i) -> const std::vector<float>& { return in[i]; }, tag, channel,
               out);
  for (std::size_t i = 0; i < m; ++i) {
    if (!active(i)) out[i] = in[i];  // offline agents freeze their value
  }
  return out;
}

std::vector<std::vector<float>> Algorithm::mix_vectors(const fleet::LazyMatrix& in,
                                                       const std::string& tag,
                                                       sim::Channel channel) {
  const std::size_t m = num_agents();
  if (in.size() != m) throw std::invalid_argument("mix_vectors: arity mismatch");
  std::vector<std::vector<float>> out(m);
  mix_exchange([&in](std::size_t i) -> const std::vector<float>& { return in[i]; }, tag, channel,
               out);
  for (std::size_t i = 0; i < m; ++i) {
    if (!active(i)) out[i] = in[i];
  }
  return out;
}

void Algorithm::mix_into(fleet::LazyMatrix& state, const std::vector<std::vector<float>>& contrib,
                         const std::string& tag, sim::Channel channel) {
  const std::size_t m = num_agents();
  if (state.size() != m || contrib.size() != m) {
    throw std::invalid_argument("mix_into: arity mismatch");
  }
  // `contrib` rows are only read for active agents, so callers may leave
  // inactive rows empty; frozen agents keep their (possibly still-shared)
  // state row without a copy.
  std::vector<std::vector<float>> out(m);
  mix_exchange([&contrib](std::size_t i) -> const std::vector<float>& { return contrib[i]; }, tag,
               channel, out);
  for (std::size_t i = 0; i < m; ++i) {
    if (active(i)) state.set(i, std::move(out[i]));
  }
}

void Algorithm::draw_all_batches() {
  if (stateless_draws_) {
    // Fleet mode: round-keyed draws on the active set only. The salt is a
    // per-call epoch (not the round number) so algorithms that draw more than
    // once per round get distinct batches each time, and a worker's samples
    // depend only on (its identity, the epoch) — never on how many times it
    // was previously touched or whether it was evicted in between.
    const std::uint64_t salt = ++draw_epoch_;
    runtime::parallel_for(0, workers_.size(), 1, [&](std::size_t i) {
      if (active(i)) workers_.get(i).draw_batch(salt);
    });
    return;
  }
  // Each worker samples from its own RNG stream (split at construction).
  runtime::parallel_for(0, workers_.size(), 1,
                        [&](std::size_t i) { workers_[i].draw_batch(); });
}

namespace {

/// Per-phase latency histograms in the process-global registry: one
/// observation per round per phase, in ms. The bench envelope snapshots these
/// so every BENCH_*.json carries the phase distribution of its whole sweep.
void observe_phase_histograms(const obs::PhaseTimings& p) {
  static const std::vector<double> kBoundsMs = {0.05, 0.1, 0.25, 0.5, 1.0,  2.5,  5.0,
                                                10.0, 25.0, 50.0, 100.0, 250.0, 1000.0};
  auto& reg = obs::MetricsRegistry::global();
  for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
    const auto phase = static_cast<obs::Phase>(i);
    reg.histogram(std::string("phase.") + obs::phase_name(phase) + "_ms", kBoundsMs)
        .observe(1e3 * p.at(phase));
  }
}

}  // namespace

std::vector<sim::RoundMetrics> run_with_metrics(Algorithm& alg, std::size_t rounds,
                                                const data::Dataset& test,
                                                const MetricsOptions& opts,
                                                obs::RunLedger* ledger,
                                                const ResumeState* resume,
                                                const CheckpointHook& checkpoint,
                                                std::size_t checkpoint_every) {
  std::vector<sim::RoundMetrics> series;
  series.reserve(rounds);
  Stopwatch watch;
  nn::Model eval_ws = *alg.env().model_template;
  double last_acc = 0.0;
  // S-RECOV resume: continue past the checkpointed cursor with the held
  // accuracy, the prior series and the accountant's raw accumulators restored
  // verbatim, so the continued run's CSV is bit-identical (modulo wall-clock
  // columns) to an uninterrupted one.
  std::size_t start = 1;
  if (resume != nullptr) {
    if (resume->completed_rounds >= rounds) {
      throw std::invalid_argument("run_with_metrics: resume cursor is at or past the "
                                  "requested round count");
    }
    start = resume->completed_rounds + 1;
    last_acc = resume->last_acc;
    series = resume->prior_series;
  }

  // S-BENCH360 privacy trajectory: the paper's analysis treats one round as
  // one Gaussian-mechanism release per agent (sensitivity 2C/B on the
  // mini-batch mean), so the accountant composes one invocation at noise
  // multiplier z = sigma / (2C/B) per round and epsilon_spent is its
  // (epsilon, delta)-DP conversion at the run's dp_delta.
  const auto& hp = alg.env().hp;
  const double sensitivity =
      hp.batch > 0 ? 2.0 * hp.clip / static_cast<double>(hp.batch) : 0.0;
  const double noise_multiplier =
      (hp.sigma > 0.0 && sensitivity > 0.0) ? hp.sigma / sensitivity : 0.0;
  dp::RdpAccountant accountant;
  if (resume != nullptr && !resume->accountant_rdp.empty()) {
    accountant.restore(resume->accountant_rdp, resume->accountant_invocations);
  }
  for (std::size_t t = start; t <= rounds; ++t) {
    alg.reset_phase_timings();
    Stopwatch round_watch;
    {
      PDSL_SPAN("round", static_cast<std::int64_t>(t), "round");
      alg.run_round(t);
    }

    sim::RoundMetrics m;
    m.round = t;
    m.round_s = round_watch.elapsed_seconds();
    m.phases = alg.phase_timings();
    // S-SCALE: loss/accuracy over a fixed agent prefix when metric_agents is
    // set — touching every worker would materialize the whole fleet.
    const std::size_t eval_agents =
        opts.metric_agents == 0 ? alg.num_agents() : std::min(alg.num_agents(), opts.metric_agents);
    double loss_acc = 0.0;
    for (std::size_t i = 0; i < eval_agents; ++i) {
      loss_acc += alg.worker(i).local_eval_loss(alg.models()[i]);
    }
    m.avg_loss = loss_acc / static_cast<double>(eval_agents);
    m.consensus = sim::consensus_distance(alg.models());

    const bool eval_now =
        opts.eval_every != 0 && (t % opts.eval_every == 0 || t == rounds);
    if (eval_now) {
      double acc = 0.0;
      for (std::size_t i = 0; i < eval_agents; ++i) {
        acc += sim::evaluate(eval_ws, alg.models()[i], test, opts.test_subsample).accuracy;
      }
      last_acc = acc / static_cast<double>(eval_agents);
    }
    m.test_accuracy = last_acc;
    m.messages = alg.network().messages_sent();
    m.bytes = alg.network().bytes_sent();
    m.dropped = alg.network().messages_dropped();
    m.delayed = alg.network().messages_delayed();
    m.offline = alg.fault_stats().offline_agents;
    m.stale_reused = alg.fault_stats().stale_reused;
    m.fallbacks = alg.fault_stats().self_fallbacks;
    m.byz_active = alg.network().adversary().active_count(alg.num_agents(), t);
    m.corrupted = alg.network().messages_corrupted();
    m.rejected = alg.fault_stats().msgs_rejected;
    m.reclipped = alg.fault_stats().msgs_reclipped;
    if (const auto split = alg.attacker_honest_weight_split()) {
      m.pi_attacker = split->first;
      m.pi_honest = split->second;
    }
    if (const auto sstats = alg.shapley_round_stats()) {
      m.shapley_evals = sstats->coalition_evals;
      m.shapley_batched = sstats->coalitions_batched;
      m.shapley_cache_hits = sstats->cache_hits;
      m.shapley_cache_misses = sstats->cache_misses;
      m.shapley_early_stops = sstats->early_stopped;
    }
    m.retransmits = alg.network().retransmits();
    m.corrupt_detected = alg.network().corruptions_detected();
    m.dup_dropped = alg.network().duplicates_dropped();
    m.reordered = alg.network().reorders();
    m.crashes = alg.fault_stats().crashed_agents;
    m.resyncs = alg.fault_stats().resynced_agents;
    if (noise_multiplier > 0.0) {
      accountant.add_gaussian(noise_multiplier, 1);
      m.epsilon_spent = accountant.epsilon(alg.env().dp_delta);
    }
    m.elapsed_s = watch.elapsed_seconds();
    observe_phase_histograms(m.phases);
    if (ledger != nullptr && ledger->enabled()) {
      json::Object ev;
      ev["round"] = m.round;
      ev["avg_loss"] = m.avg_loss;
      ev["test_accuracy"] = m.test_accuracy;
      ev["consensus"] = m.consensus;
      ev["messages"] = m.messages;
      ev["bytes"] = m.bytes;
      ev["dropped"] = m.dropped;
      ev["delayed"] = m.delayed;
      ev["offline"] = m.offline;
      ev["stale_reused"] = m.stale_reused;
      ev["fallbacks"] = m.fallbacks;
      ev["byz_active"] = m.byz_active;
      ev["corrupted"] = m.corrupted;
      ev["rejected"] = m.rejected;
      ev["reclipped"] = m.reclipped;
      ev["pi_attacker"] = m.pi_attacker;
      ev["pi_honest"] = m.pi_honest;
      ev["epsilon_spent"] = m.epsilon_spent;
      ev["retransmits"] = m.retransmits;
      ev["corrupt_detected"] = m.corrupt_detected;
      ev["dup_dropped"] = m.dup_dropped;
      ev["reordered"] = m.reordered;
      ev["crashes"] = m.crashes;
      ev["resyncs"] = m.resyncs;
      ledger->event("round", std::move(ev));
      alg.ledger_round(*ledger, t);
      json::Object timing;
      timing["round"] = m.round;
      timing["round_ms"] = 1e3 * m.round_s;
      timing["local_grad_ms"] = 1e3 * m.phases.local_grad_s;
      timing["crossgrad_ms"] = 1e3 * m.phases.crossgrad_s;
      timing["shapley_ms"] = 1e3 * m.phases.shapley_s;
      timing["aggregate_ms"] = 1e3 * m.phases.aggregate_s;
      timing["gossip_ms"] = 1e3 * m.phases.gossip_s;
      ledger->event(obs::RunLedger::kTimingEvent, std::move(timing));
    }
    series.push_back(m);
    // Never checkpoint after the final round: the run is complete, not
    // resumable, and the final state already lives in the metrics/model
    // outputs.
    if (checkpoint && checkpoint_every > 0 && t % checkpoint_every == 0 && t < rounds) {
      checkpoint(t, last_acc, accountant, series);
    }
  }
  return series;
}

}  // namespace pdsl::algos
