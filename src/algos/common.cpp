#include "algos/common.hpp"

#include <cassert>
#include <optional>
#include <stdexcept>

#include "common/stopwatch.hpp"
#include "common/vec_math.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "sim/evaluate.hpp"

namespace pdsl::algos {

namespace {
void validate_env(const Env& env) {
  if (env.topo == nullptr || env.mixing == nullptr || env.train == nullptr ||
      env.model_template == nullptr || env.partition == nullptr) {
    throw std::invalid_argument("Algorithm: incomplete Env");
  }
  if (env.topo->size() != env.mixing->size()) {
    throw std::invalid_argument("Algorithm: topology/mixing size mismatch");
  }
  if (env.partition->size() != env.topo->size()) {
    throw std::invalid_argument("Algorithm: partition size != agent count");
  }
  if (env.hp.gamma <= 0.0) throw std::invalid_argument("Algorithm: gamma must be positive");
  if (env.hp.alpha < 0.0 || env.hp.alpha >= 1.0) {
    throw std::invalid_argument("Algorithm: alpha must be in [0,1)");
  }
}
}  // namespace

Algorithm::Algorithm(const Env& env)
    : env_(env),
      net_(*env.topo, sim::Network::Options{env.drop_prob, splitmix64(env.seed ^ 0xAEAE),
                                            true, env.compressor, env.faults}) {
  validate_env(env);
  const std::size_t m = env.topo->size();
  active_.assign(m, 1);
  Rng root(env.seed);

  // One shared initialization: the analysis assumes all columns of X^[0]
  // are identical (Appendix B), so every agent starts from the same point.
  nn::Model init_model = *env.model_template;
  Rng init_rng = root.split(0x1217);
  init_model.init(init_rng);
  const std::vector<float> x0 = init_model.flat_params();

  workers_.reserve(m);
  models_.reserve(m);
  agent_rngs_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    workers_.emplace_back(init_model, *env.train, (*env.partition)[i], env.hp.batch,
                          root.split(0xD0 + i));
    models_.push_back(x0);
    agent_rngs_.push_back(root.split(0xA900 + i));
  }
}

std::vector<float> Algorithm::average_model() const { return sim::average_model(models_); }

void Algorithm::run_round(std::size_t t) {
  // Advance the fault clock first: churn decisions for round t key on it, and
  // delayed messages that mature by t come back here rather than appearing in
  // mailboxes (so the leftover check below stays exact).
  std::vector<sim::LateMessage> late = net_.begin_round(t);
  fault_stats_ = FaultRoundStats{};
  refresh_active(t);
  if (!late.empty()) absorb_late(std::move(late));
  round_impl(t);
  // A correct synchronous protocol reads every message it was sent within the
  // round, faults or not (drops and delays never reach a mailbox). Leftovers
  // mean a protocol bug; keep the evidence visible in release builds too.
  const std::size_t leftover = net_.clear();
  if (leftover != 0) {
    unread_cleared_ += leftover;
    obs::MetricsRegistry::global().counter("net.unread_cleared").add(leftover);
  }
  assert(leftover == 0 && "protocol bug: round_impl left unread mailbox messages");
}

void Algorithm::refresh_active(std::size_t t) {
  const sim::FaultPlan& plan = net_.faults();
  if (plan.churn_prob <= 0.0) return;  // mask stays all-online
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const bool off = plan.offline(i, t);
    active_[i] = off ? 0 : 1;
    if (off) ++fault_stats_.offline_agents;
  }
}

void Algorithm::absorb_late(std::vector<sim::LateMessage> late) {
  // Default: the payload arrived too late to be useful — count and discard.
  obs::MetricsRegistry::global().counter("net.late_discarded").add(late.size());
}

void Algorithm::set_models(std::vector<std::vector<float>> models) {
  if (models.size() != models_.size()) {
    throw std::invalid_argument("set_models: fleet size mismatch");
  }
  for (const auto& m : models) {
    if (m.size() != models_[0].size()) {
      throw std::invalid_argument("set_models: model dimension mismatch");
    }
  }
  models_ = std::move(models);
}

std::vector<std::vector<float>> Algorithm::mix_vectors(const std::vector<std::vector<float>>& in,
                                                       const std::string& tag) {
  // Every algorithm's mixing-matrix averaging flows through here, so this one
  // scope accounts the gossip phase for the whole family.
  auto timer = phase(obs::Phase::kGossip);
  const std::size_t m = num_agents();
  if (in.size() != m) throw std::invalid_argument("mix_vectors: arity mismatch");
  // Broadcast, then (phase barrier between the two parallel_fors) accumulate.
  // Each agent writes only its own mailbox edges / output slot, so any
  // execution width produces the same result.
  runtime::parallel_for(0, m, 1, [&](std::size_t i) {
    if (!active(i)) return;  // offline agents generate no traffic
    for (std::size_t j : neighbors(i)) {
      net_.send(i, j, tag, in[i]);
    }
  });
  std::vector<std::vector<float>> out(m);
  std::vector<unsigned char> renorm(m, 0);  // slot writes; folded after barrier
  runtime::parallel_for(0, m, 1, [&](std::size_t i) {
    if (!active(i)) {
      out[i] = in[i];  // offline agents freeze their value
      return;
    }
    const std::vector<std::size_t> nbrs = neighbors(i);
    std::vector<std::optional<std::vector<float>>> got;
    got.reserve(nbrs.size());
    bool complete = true;
    for (std::size_t j : nbrs) {
      got.push_back(net_.receive(i, j, tag));
      if (!got.back().has_value()) complete = false;
    }
    std::vector<float> acc(in[i].size(), 0.0f);
    if (complete) {
      // Full participation: the exact historical accumulation order, so runs
      // with every fault knob at zero stay bit-identical to pre-fault code.
      axpy(acc, in[i], static_cast<float>(w(i, i)));
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        axpy(acc, *got[k], static_cast<float>(w(i, nbrs[k])));
      }
    } else {
      // Degrade: renormalize this row of W over self + reachable neighbors
      // (Eqs. 24-25 restricted to the surviving support), keeping the mixing
      // step an average — weights still sum to 1 — instead of silently
      // shrinking toward whatever arrived.
      double wsum = w(i, i);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        if (got[k]) wsum += w(i, nbrs[k]);
      }
      if (wsum <= 0.0) {
        acc = in[i];  // degenerate row: keep own value
      } else {
        axpy(acc, in[i], static_cast<float>(w(i, i) / wsum));
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          if (got[k]) axpy(acc, *got[k], static_cast<float>(w(i, nbrs[k]) / wsum));
        }
      }
      renorm[i] = 1;
    }
    out[i] = std::move(acc);
  });
  for (unsigned char r : renorm) fault_stats_.mix_renormalized += r;
  return out;
}

void Algorithm::draw_all_batches() {
  // Each worker samples from its own RNG stream (split at construction).
  runtime::parallel_for(0, workers_.size(), 1,
                        [&](std::size_t i) { workers_[i].draw_batch(); });
}

std::vector<sim::RoundMetrics> run_with_metrics(Algorithm& alg, std::size_t rounds,
                                                const data::Dataset& test,
                                                const MetricsOptions& opts) {
  std::vector<sim::RoundMetrics> series;
  series.reserve(rounds);
  Stopwatch watch;
  nn::Model eval_ws = *alg.env().model_template;
  double last_acc = 0.0;
  for (std::size_t t = 1; t <= rounds; ++t) {
    alg.reset_phase_timings();
    Stopwatch round_watch;
    {
      PDSL_SPAN("round", static_cast<std::int64_t>(t), "round");
      alg.run_round(t);
    }

    sim::RoundMetrics m;
    m.round = t;
    m.round_s = round_watch.elapsed_seconds();
    m.phases = alg.phase_timings();
    double loss_acc = 0.0;
    for (std::size_t i = 0; i < alg.num_agents(); ++i) {
      loss_acc += alg.worker(i).local_eval_loss(alg.models()[i]);
    }
    m.avg_loss = loss_acc / static_cast<double>(alg.num_agents());
    m.consensus = sim::consensus_distance(alg.models());

    const bool eval_now =
        opts.eval_every != 0 && (t % opts.eval_every == 0 || t == rounds);
    if (eval_now) {
      double acc = 0.0;
      for (std::size_t i = 0; i < alg.num_agents(); ++i) {
        acc += sim::evaluate(eval_ws, alg.models()[i], test, opts.test_subsample).accuracy;
      }
      last_acc = acc / static_cast<double>(alg.num_agents());
    }
    m.test_accuracy = last_acc;
    m.messages = alg.network().messages_sent();
    m.bytes = alg.network().bytes_sent();
    m.dropped = alg.network().messages_dropped();
    m.delayed = alg.network().messages_delayed();
    m.offline = alg.fault_stats().offline_agents;
    m.stale_reused = alg.fault_stats().stale_reused;
    m.fallbacks = alg.fault_stats().self_fallbacks;
    m.elapsed_s = watch.elapsed_seconds();
    series.push_back(m);
  }
  return series;
}

}  // namespace pdsl::algos
