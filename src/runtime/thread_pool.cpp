#include "runtime/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>

namespace pdsl::runtime {

namespace detail {
// Guards against nested parallelism, which the engine does not support (and
// which would deadlock a fully-busy pool); exposed read-only through
// runtime::in_parallel_region() so kernels can degrade to sequential.
thread_local bool t_in_parallel_region = false;
}  // namespace detail
using detail::t_in_parallel_region;

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) throw std::invalid_argument("ThreadPool: at least one worker required");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) throw std::runtime_error("ThreadPool::submit: pool is shut down");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                              const std::function<void(std::size_t)>& body) {
  if (t_in_parallel_region) {
    throw std::logic_error("parallel_for: nested call from inside a parallel_for body");
  }
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunk = std::max<std::size_t>(1, grain);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;

  // Shared completion/error state for this one call. Chunks after the first
  // failure still "complete" (as no-ops would be wrong — they may be running
  // already), but their work is the caller's loss: the first exception wins.
  //
  // Join lives on the caller's stack: this frame outlives the barrier, and
  // workers only ever touch it under its mutex. The notify happens while the
  // lock is held so the last worker's final access to the condition variable
  // completes before the caller can re-acquire the lock, observe
  // remaining == 0 and unwind the frame. The closures queued on the pool
  // capture only a raw pointer, so their (post-barrier) destruction on a
  // worker thread frees nothing the caller still reads — in particular the
  // error exception object is owned solely by this frame.
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
    std::exception_ptr error;
  };
  Join join;
  join.remaining = num_chunks;

  auto run_chunk = [begin, end, chunk, &body, pjoin = &join](std::size_t c) {
    t_in_parallel_region = true;
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    try {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(pjoin->mu);
      if (!pjoin->error) pjoin->error = std::current_exception();
    }
    t_in_parallel_region = false;
    {
      std::lock_guard<std::mutex> lock(pjoin->mu);
      --pjoin->remaining;
      pjoin->cv.notify_one();
    }
  };

  // Enqueue every chunk and block: the configured width is exactly the
  // number of threads doing work (the caller sleeps, it doesn't compute).
  // The body reference stays valid because this frame outlives the barrier.
  for (std::size_t c = 0; c < num_chunks; ++c) {
    submit([run_chunk, c] { run_chunk(c); });
  }
  {
    std::unique_lock<std::mutex> lock(join.mu);
    join.cv.wait(lock, [&join] { return join.remaining == 0; });
    if (join.error) std::rethrow_exception(join.error);
  }
}

}  // namespace pdsl::runtime
