#include "runtime/parallel_for.hpp"

#include <memory>
#include <mutex>
#include <stdexcept>

namespace pdsl::runtime {

namespace {

struct GlobalRuntime {
  std::mutex mu;
  std::size_t threads = 1;
  std::unique_ptr<ThreadPool> pool;  ///< created lazily, only when threads > 1
};

GlobalRuntime& state() {
  static auto* s = new GlobalRuntime();  // leaky: outlives static dtors
  return *s;
}

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void set_global_threads(std::size_t threads) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::size_t resolved = resolve_threads(threads);
  if (resolved == s.threads) return;
  s.pool.reset();  // joins the old workers (all queued work done)
  s.threads = resolved;
}

std::size_t global_threads() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.threads;
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool* pool = nullptr;
  {
    auto& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.threads > 1) {
      if (!s.pool) s.pool = std::make_unique<ThreadPool>(s.threads);
      pool = s.pool.get();
    }
  }
  if (pool != nullptr) {
    pool->parallel_for(begin, end, grain, body);
    return;
  }
  // Sequential fallback, sharing the nesting-rejection flag with the pool
  // path so behavior (and in_parallel_region()) does not depend on width.
  if (detail::t_in_parallel_region) {
    throw std::logic_error("parallel_for: nested call from inside a parallel_for body");
  }
  detail::t_in_parallel_region = true;
  try {
    for (std::size_t i = begin; i < end; ++i) body(i);
  } catch (...) {
    detail::t_in_parallel_region = false;
    throw;
  }
  detail::t_in_parallel_region = false;
}

}  // namespace pdsl::runtime
