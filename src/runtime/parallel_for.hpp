#pragma once
// Process-wide runtime configuration and the parallel_for primitive the round
// loop is written against (S-RT). Algorithms never touch ThreadPool directly:
// they call runtime::parallel_for, which runs inline when the configured
// width is 1 (the default — exactly the pre-runtime sequential behavior) and
// fans out over the lazily-created global pool otherwise.
//
// Configuration is plumbed from `--threads N` (CLI, JSON configs, benches):
//   1 = sequential (default), 0 = auto-detect (hardware_concurrency),
//   N = fixed pool of N threads.
// set_global_threads is meant for startup / between runs; it must not race
// with an in-flight parallel_for.

#include <cstddef>
#include <functional>

#include "runtime/thread_pool.hpp"

namespace pdsl::runtime {

/// Execution-width knob carried by experiment configs.
struct RuntimeConfig {
  std::size_t threads = 1;  ///< 1 = sequential, 0 = hardware_concurrency
};

/// Resolve a requested width: 0 -> hardware_concurrency (at least 1),
/// anything else unchanged.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested);

/// Set the process-wide execution width (resolves 0 first). Tears down the
/// old pool (a barrier: all queued work finished) and builds the new one on
/// the next parallel call. Not safe to call concurrently with parallel_for.
void set_global_threads(std::size_t threads);

/// The currently configured (resolved) width.
[[nodiscard]] std::size_t global_threads();

/// Run body(i) for i in [begin, end) on the global pool, in chunks of at
/// least `grain` indices; blocks until the range completed (a barrier).
/// Width 1 runs inline on the caller, in order. Nested calls throw
/// std::logic_error at every width. Exceptions from the body propagate to the
/// caller (first one wins).
///
/// Determinism contract: a body that (a) writes only to slot i of pre-sized
/// containers, (b) draws randomness only from streams split per index up
/// front, and (c) routes cross-index data through thread-safe channels whose
/// observable state is order-independent (sim::Network), produces bit-equal
/// results at every width.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& body);

}  // namespace pdsl::runtime
