#pragma once
// Deterministic parallel agent-execution engine (S-RT). A fixed-size pool of
// worker threads drains a blocking task queue; ThreadPool::parallel_for cuts
// an index range into statically-sized chunks and blocks until every chunk
// ran. Determinism contract: the *assignment* of indices to threads is
// irrelevant to results as long as every index's work touches only its own
// pre-sized output slot and its own RNG stream — which is how every per-agent
// phase in this codebase is written — so `threads=N` is bit-identical to
// `threads=1`. Barriers live exactly where the sequential code had phase
// boundaries: parallel_for returns only after the whole range completed.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdsl::runtime {

namespace detail {
/// Set while the calling thread executes a parallel_for body — both the pool
/// worker chunks and the width-1 inline path in runtime::parallel_for flag
/// themselves through this. Not part of the public surface; use
/// in_parallel_region().
extern thread_local bool t_in_parallel_region;
}  // namespace detail

/// True while the calling thread is inside a parallel_for body (at any
/// configured width). Layers that offer optional intra-op parallelism — the
/// S-KER kernels — consult this to run sequentially instead of tripping the
/// nested-call rejection.
[[nodiscard]] inline bool in_parallel_region() noexcept {
  return detail::t_in_parallel_region;
}

/// Fixed-size worker pool over one blocking FIFO queue. Construction spawns
/// the workers; destruction drains nothing — it wakes everyone, joins, and
/// discards tasks still queued (submit after shutdown throws).
class ThreadPool {
 public:
  /// Spawn `threads` workers (must be >= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue one task. Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Run body(i) for every i in [begin, end), cut into chunks of at least
  /// `grain` consecutive indices (grain 0 counts as 1). Chunks are executed
  /// by the pool's workers; the caller blocks until every chunk ran — the
  /// call is a barrier, and pool size = number of threads doing work. The
  /// first exception any chunk throws is rethrown here after all chunks
  /// completed. Calling parallel_for from a task already inside a
  /// parallel_for body is rejected with std::logic_error.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pdsl::runtime
