#include "kernels/im2col.hpp"

#include <algorithm>
#include <cstring>

namespace pdsl::kernels {

// Both directions walk one (ic, kr, kc) tap at a time. For a fixed tap the
// source row index is xr = r + kr - pad, so the valid output rows are a
// contiguous band and, within a row, the valid output columns are a
// contiguous run — the interior copies are straight memcpy/axpy over `ow`
// floats with zero-fill (im2col) or skip (col2im) at the borders.

void im2col(const float* x, std::size_t in_ch, std::size_t ih, std::size_t iw, std::size_t k,
            std::size_t pad, float* col) {
  const std::size_t oh = ih + 2 * pad - k + 1;
  const std::size_t ow = iw + 2 * pad - k + 1;
  const std::ptrdiff_t ihs = static_cast<std::ptrdiff_t>(ih);
  const std::ptrdiff_t iws = static_cast<std::ptrdiff_t>(iw);
  float* out = col;
  for (std::size_t ic = 0; ic < in_ch; ++ic) {
    const float* plane = x + ic * ih * iw;
    for (std::size_t kr = 0; kr < k; ++kr) {
      for (std::size_t kc = 0; kc < k; ++kc) {
        const std::ptrdiff_t dr = static_cast<std::ptrdiff_t>(kr) - static_cast<std::ptrdiff_t>(pad);
        const std::ptrdiff_t dc = static_cast<std::ptrdiff_t>(kc) - static_cast<std::ptrdiff_t>(pad);
        for (std::size_t r = 0; r < oh; ++r, out += ow) {
          const std::ptrdiff_t xr = static_cast<std::ptrdiff_t>(r) + dr;
          if (xr < 0 || xr >= ihs) {
            std::memset(out, 0, ow * sizeof(float));
            continue;
          }
          // Valid c range: 0 <= c + dc < iw  =>  max(0,-dc) <= c < min(ow, iw-dc).
          const std::size_t c_lo = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, -dc));
          const std::size_t c_hi = static_cast<std::size_t>(
              std::clamp<std::ptrdiff_t>(iws - dc, 0, static_cast<std::ptrdiff_t>(ow)));
          if (c_lo > 0) std::memset(out, 0, c_lo * sizeof(float));
          if (c_hi > c_lo) {
            std::memcpy(out + c_lo, plane + xr * iws + (static_cast<std::ptrdiff_t>(c_lo) + dc),
                        (c_hi - c_lo) * sizeof(float));
          }
          if (c_hi < ow) std::memset(out + c_hi, 0, (ow - c_hi) * sizeof(float));
        }
      }
    }
  }
}

void col2im(const float* col, std::size_t in_ch, std::size_t ih, std::size_t iw, std::size_t k,
            std::size_t pad, float* x) {
  const std::size_t oh = ih + 2 * pad - k + 1;
  const std::size_t ow = iw + 2 * pad - k + 1;
  const std::ptrdiff_t ihs = static_cast<std::ptrdiff_t>(ih);
  const std::ptrdiff_t iws = static_cast<std::ptrdiff_t>(iw);
  const float* in = col;
  for (std::size_t ic = 0; ic < in_ch; ++ic) {
    float* plane = x + ic * ih * iw;
    for (std::size_t kr = 0; kr < k; ++kr) {
      for (std::size_t kc = 0; kc < k; ++kc) {
        const std::ptrdiff_t dr = static_cast<std::ptrdiff_t>(kr) - static_cast<std::ptrdiff_t>(pad);
        const std::ptrdiff_t dc = static_cast<std::ptrdiff_t>(kc) - static_cast<std::ptrdiff_t>(pad);
        for (std::size_t r = 0; r < oh; ++r, in += ow) {
          const std::ptrdiff_t xr = static_cast<std::ptrdiff_t>(r) + dr;
          if (xr < 0 || xr >= ihs) continue;
          const std::size_t c_lo = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, -dc));
          const std::size_t c_hi = static_cast<std::size_t>(
              std::clamp<std::ptrdiff_t>(iws - dc, 0, static_cast<std::ptrdiff_t>(ow)));
          float* dst = plane + xr * iws + dc;
          for (std::size_t c = c_lo; c < c_hi; ++c) dst[c] += in[c];
        }
      }
    }
  }
}

}  // namespace pdsl::kernels
