#include "kernels/backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pdsl::kernels {

namespace {

Backend initial_backend() noexcept {
  if (const char* env = std::getenv("PDSL_KERNEL_BACKEND")) {
    const std::string name(env);
    if (name == "naive") return Backend::kNaive;
    if (name == "vectorized") return Backend::kVectorized;
    if (name == "auto") return Backend::kAuto;
    if (!name.empty() && name != "blocked") {
      std::fprintf(stderr,
                   "PDSL_KERNEL_BACKEND='%s' not recognized, using 'blocked'\n",
                   env);
    }
  }
  return Backend::kBlocked;
}

std::atomic<Backend>& state() {
  static std::atomic<Backend> backend{initial_backend()};
  return backend;
}

}  // namespace

Backend backend() noexcept { return state().load(std::memory_order_relaxed); }

void set_backend(Backend b) noexcept { state().store(b, std::memory_order_relaxed); }

Backend resolve_backend(Backend pinned, std::size_t rows, std::size_t depth,
                        std::size_t cols) noexcept {
  if (pinned != Backend::kAuto) return pinned;
  // Widening before the product keeps 4Gi-element shapes from wrapping on
  // 32-bit size_t hosts; the thresholds themselves are tiny.
  const unsigned long long flops = static_cast<unsigned long long>(rows) *
                                   static_cast<unsigned long long>(depth) *
                                   static_cast<unsigned long long>(cols);
  if (flops <= kAutoNaiveMaxFlops) return Backend::kNaive;
  if (depth >= kAutoVecMinDepth && cols >= kAutoVecMinCols) return Backend::kVectorized;
  return Backend::kBlocked;
}

Backend backend_from_string(const std::string& name) {
  if (name == "naive") return Backend::kNaive;
  if (name == "blocked") return Backend::kBlocked;
  if (name == "vectorized") return Backend::kVectorized;
  if (name == "auto") return Backend::kAuto;
  throw std::invalid_argument("kernels: unknown backend '" + name +
                              "' (expected 'naive', 'blocked', 'vectorized' or 'auto')");
}

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::kNaive:
      return "naive";
    case Backend::kBlocked:
      return "blocked";
    case Backend::kVectorized:
      return "vectorized";
    case Backend::kAuto:
      return "auto";
  }
  return "blocked";
}

}  // namespace pdsl::kernels
