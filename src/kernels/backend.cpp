#include "kernels/backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pdsl::kernels {

namespace {

Backend initial_backend() noexcept {
  if (const char* env = std::getenv("PDSL_KERNEL_BACKEND")) {
    const std::string name(env);
    if (name == "naive") return Backend::kNaive;
    if (!name.empty() && name != "blocked") {
      std::fprintf(stderr,
                   "PDSL_KERNEL_BACKEND='%s' not recognized, using 'blocked'\n",
                   env);
    }
  }
  return Backend::kBlocked;
}

std::atomic<Backend>& state() {
  static std::atomic<Backend> backend{initial_backend()};
  return backend;
}

}  // namespace

Backend backend() noexcept { return state().load(std::memory_order_relaxed); }

void set_backend(Backend b) noexcept { state().store(b, std::memory_order_relaxed); }

Backend backend_from_string(const std::string& name) {
  if (name == "naive") return Backend::kNaive;
  if (name == "blocked") return Backend::kBlocked;
  throw std::invalid_argument("kernels: unknown backend '" + name +
                              "' (expected 'naive' or 'blocked')");
}

const char* backend_name(Backend b) noexcept {
  return b == Backend::kNaive ? "naive" : "blocked";
}

}  // namespace pdsl::kernels
