#pragma once
// S-KER im2col / col2im for stride-1 convolution with symmetric zero padding
// (the only geometry Conv2D supports). One image at a time:
//
//   im2col: x(in_ch, ih, iw)  ->  col(in_ch*k*k, oh*ow)
//     row ((ic*k + kr)*k + kc), column (r*ow + c) holds
//     x[ic][r + kr - pad][c + kc - pad], zero outside the image;
//   col2im: the adjoint scatter-add, col(in_ch*k*k, oh*ow) += into
//     x(in_ch, ih, iw) (entries that fell on padding are dropped).
//
// With this layout the convolution is a plain sgemm over the weight matrix
// (out_ch, in_ch*k*k) and the column matrix, writing output maps directly in
// their (oc, oh, ow) order. Buffers come from a caller-owned Arena so the
// per-batch allocation cost is paid once per layer, not once per call.

#include <cstddef>
#include <vector>

namespace pdsl::kernels {

/// Grow-only scratch buffers keyed by slot index. A layer owns one Arena and
/// reuses the same slots every forward/backward call; buffers only ever grow,
/// so steady-state training performs no per-batch allocation. Contents are
/// unspecified on entry — every kernel writing into a slot overwrites the
/// range it uses. Not thread-safe: an Arena belongs to one layer instance,
/// and layer instances are never shared across parallel_for slots.
class Arena {
 public:
  /// Buffer for `slot` with capacity >= count floats (uninitialized).
  float* buffer(std::size_t slot, std::size_t count) {
    if (slots_.size() <= slot) slots_.resize(slot + 1);
    if (slots_[slot].size() < count) slots_[slot].resize(count);
    return slots_[slot].data();
  }

  /// Total floats currently held (observability / tests).
  [[nodiscard]] std::size_t footprint() const {
    std::size_t total = 0;
    for (const auto& s : slots_) total += s.size();
    return total;
  }

 private:
  std::vector<std::vector<float>> slots_;
};

/// col(in_ch*k*k, oh*ow) <- patches of x(in_ch, ih, iw); oh = ih + 2*pad - k + 1.
void im2col(const float* x, std::size_t in_ch, std::size_t ih, std::size_t iw, std::size_t k,
            std::size_t pad, float* col);

/// x(in_ch, ih, iw) += scatter of col(in_ch*k*k, oh*ow) (adjoint of im2col).
void col2im(const float* col, std::size_t in_ch, std::size_t ih, std::size_t iw, std::size_t k,
            std::size_t pad, float* x);

}  // namespace pdsl::kernels
