#pragma once
// S-KER single-precision GEMM family on raw row-major buffers. Three layouts
// cover every matmul in the codebase (Linear forward/backward, the im2col
// convolution, attack models):
//
//   sgemm              C(m,n)  = A(m,k)   * B(k,n)
//   sgemm_transpose_a  C(k,n)  = A(m,k)^T * B(m,n)
//   sgemm_transpose_b  C(m,k)  = A(m,n)   * B(k,n)^T   (double accumulators)
//
// With `accumulate` the product is added to C instead of overwriting it.
//
// Each entry point dispatches on kernels::backend() (resolved per shape when
// the backend is kAuto — see backend.hpp): the naive path is the original
// triple loop (zero-skip shortcuts removed — they silently dropped NaN/Inf
// propagation from the other operand); the blocked path register-tiles output
// rows and blocks columns so the inner loops stream contiguously and
// vectorize. Naive and blocked accumulate every output element in the same
// reduction order, so their results are bit-identical. The vectorized path
// (microkernel.hpp) keeps accumulator tiles register-resident and reduces in
// fixed float lanes — deterministic but only tolerance-banded against the
// reference. Every path's optional intra-op parallelism partitions complete
// output rows, so results are bit-identical at every --threads width.
//
// Intra-op parallelism engages only when runtime::global_threads() > 1 and
// the caller is NOT already inside a runtime::parallel_for body (the round
// loop's per-agent phases); nested parallelism is rejected by the runtime, so
// the kernels degrade to sequential there.

#include <cstddef>

namespace pdsl::kernels {

void sgemm(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
           float* c, bool accumulate = false);

void sgemm_transpose_a(std::size_t m, std::size_t k, std::size_t n, const float* a,
                       const float* b, float* c, bool accumulate = false);

void sgemm_transpose_b(std::size_t m, std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate = false);

}  // namespace pdsl::kernels
