#pragma once
// S-VEC register-tiled vectorized GEMM microkernels — the fast-math tier.
//
// The blocked backend (gemm.cpp) is deliberately memory-shaped like the naive
// loops so it stays bit-identical to the reference: every output element is a
// single ascending-index accumulation chain that round-trips through the C
// row on each step of the reduction. That contract caps it at ~1.0x on
// flop-bound square GEMMs — the inner axpy pays two loads and a store of C
// per FMA. The vectorized tier drops the bit-identity contract (banded
// equivalence instead, see DESIGN.md "S-KER" band policy) and keeps the whole
// accumulator tile in registers across the reduction:
//
//   * sgemm / sgemm_transpose_a: a kVecRowTile x kVecColTile register tile of
//     C accumulates over the full reduction with zero loads/stores of C in
//     the inner loop; per reduction step the tile costs kVecRowTile broadcast
//     loads + kVecColTile/lane vector loads for kVecRowTile*kVecColTile FMAs.
//     Each element is still one ascending-index chain, but the tile is
//     accumulated locally and added to C once at the end, and the TU is
//     compiled with -ffp-contract=fast, so results agree with the reference
//     only to rounding (FMA contraction).
//   * sgemm_transpose_b: the dot-product layout. The reference accumulates in
//     scalar double; here each dot product runs in kVecLanes float partial
//     sums (lane l takes elements l, l+kVecLanes, l+2*kVecLanes, ... of the
//     reduction) folded by a fixed balanced reduction tree. The lane split
//     and the tree are pure functions of the reduction length — never of the
//     thread count, tile position or neighbours — so results are
//     deterministic and bit-stable across --threads widths, just not equal
//     to the double-accumulated reference.
//
// Every function below works on the same row-range contract as the blocked
// kernels in gemm.cpp: the caller zero-fills C rows when not accumulating
// (sgemm/transpose_a add into C unconditionally), and partitions complete
// output rows across threads, so any partition yields the same bits.
//
// These kernels are plain pragma-vectorized C++ (no intrinsics): the tile
// sizes are chosen so -O3 keeps the accumulators in vector registers at
// baseline x86-64, and -DPDSL_NATIVE=ON widens them to the host ISA
// (AVX2/AVX-512) without source changes.

#include <cstddef>

namespace pdsl::kernels {

/// Output rows per register tile (sgemm / sgemm_transpose_a).
inline constexpr std::size_t kVecRowTile = 4;
/// Output columns (floats) per register tile: the accumulator tile is
/// kVecRowTile x kVecColTile floats = 8 xmm at baseline SSE2, leaving half
/// the register file for the broadcast and B-row operands (a 4x16 tile
/// measured ~2x slower — it owns all 16 xmm and every operand load spills).
inline constexpr std::size_t kVecColTile = 8;
/// Fixed partial-sum lanes for the dot-product kernel (sgemm_transpose_b).
inline constexpr std::size_t kVecLanes = 8;

/// C(m,n) += A(m,k) * B(k,n) over output rows [i_begin, i_end).
void vec_sgemm_rows(std::size_t i_begin, std::size_t i_end, std::size_t k, std::size_t n,
                    const float* a, const float* b, float* c);

/// C(k,n) += A(m,k)^T * B(m,n) over output rows [p_begin, p_end).
void vec_sgemm_ta_rows(std::size_t p_begin, std::size_t p_end, std::size_t m, std::size_t k,
                       std::size_t n, const float* a, const float* b, float* c);

/// C(m,k) = (or +=) A(m,n) * B(k,n)^T over output rows [i_begin, i_end).
void vec_sgemm_tb_rows(std::size_t i_begin, std::size_t i_end, std::size_t n, std::size_t k,
                       const float* a, const float* b, float* c, bool accumulate);

}  // namespace pdsl::kernels
