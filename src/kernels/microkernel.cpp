#include "kernels/microkernel.hpp"

namespace pdsl::kernels {

namespace {

// ---------------------------------------------------------------------------
// The accumulators use GCC's portable vector extension at a fixed 4-float
// width (exactly one xmm at baseline x86-64). Vector-extension types are not
// intrinsics — the compiler lowers them to whatever the target has — but
// unlike relying on the loop auto-vectorizer they pin the code shape. Two
// hard-won lessons are baked into this file:
//   * A pragma-vectorized scalar version of tile4 was outer-loop-vectorized
//     by GCC 12 when the broadcast stride was the constant 1, turning every
//     B-row load into a stride-n shuffle gather — 4x SLOWER than naive.
//   * Target-wider generic vectors (32-byte) are lowered to stack slots, not
//     xmm pairs, when the target lacks AVX: every accumulator update became a
//     load-add-store round trip. 16-byte vectors are first-class registers
//     everywhere, so wider rows are spelled as explicit lo/hi halves.
// Keeping the vector width fixed (rather than ISA-dependent) also keeps the
// lane split of the dot-product kernels — and therefore the exact bits the
// vectorized tier produces — identical between the default and PDSL_NATIVE
// builds; the native build still gains FMA contraction and wider scheduling.
// Per-lane semantics are unchanged from the scalar loops this replaces: lane
// jj of a vector op is one ascending-index accumulation chain.
// ---------------------------------------------------------------------------

typedef float v4 __attribute__((vector_size(16)));

inline v4 load4(const float* p) {
  v4 v;
  __builtin_memcpy(&v, p, sizeof(v4));
  return v;
}

inline void store4(float* p, v4 v) { __builtin_memcpy(p, &v, sizeof(v4)); }

// ---------------------------------------------------------------------------
// Shared axpy-shaped tiles for sgemm and sgemm_transpose_a. Both kernels are
// "broadcast one A element per output row, multiply a contiguous B row
// segment" — they differ only in where the broadcast elements live: sgemm
// walks a row of A (stride 1), transpose_a walks a column (stride k). The
// tile keeps its accumulators register-local for the whole reduction and
// touches C exactly once, which is the entire point of the vectorized tier.
// ---------------------------------------------------------------------------

static_assert(kVecColTile == 8, "tile rows are spelled as two 4-float halves");

/// 4 x kVecColTile register tile. `pa0..pa3` point at the first broadcast
/// element of each output row and advance by `astep` per reduction step; `pb`
/// points at the B row segment and advances by `ldb`. Kept out-of-line: the
/// 8 accumulator halves only stay register-resident when the tile is a leaf
/// function (inlined into the row loop GCC spills them to the stack).
__attribute__((noinline)) void tile4_full(std::size_t depth, const float* pa0,
                                          const float* pa1, const float* pa2,
                                          const float* pa3, std::size_t astep,
                                          const float* pb, std::size_t ldb, float* c0,
                                          float* c1, float* c2, float* c3) {
  v4 a0l = {}, a0h = {}, a1l = {}, a1h = {}, a2l = {}, a2h = {}, a3l = {}, a3h = {};
  for (std::size_t t = 0; t < depth; ++t) {
    const v4 bl = load4(pb);
    const v4 bh = load4(pb + 4);
    const float v0 = *pa0, v1 = *pa1, v2 = *pa2, v3 = *pa3;
    a0l += v0 * bl;
    a0h += v0 * bh;
    a1l += v1 * bl;
    a1h += v1 * bh;
    a2l += v2 * bl;
    a2h += v2 * bh;
    a3l += v3 * bl;
    a3h += v3 * bh;
    pa0 += astep;
    pa1 += astep;
    pa2 += astep;
    pa3 += astep;
    pb += ldb;
  }
  store4(c0, load4(c0) + a0l);
  store4(c0 + 4, load4(c0 + 4) + a0h);
  store4(c1, load4(c1) + a1l);
  store4(c1 + 4, load4(c1 + 4) + a1h);
  store4(c2, load4(c2) + a2l);
  store4(c2 + 4, load4(c2 + 4) + a2h);
  store4(c3, load4(c3) + a3l);
  store4(c3 + 4, load4(c3 + 4) + a3h);
}

/// Ragged-width variant of tile4_full for the last w < kVecColTile columns
/// (scalar; at most kVecColTile-1 columns, off the hot path).
void tile4_tail(std::size_t depth, const float* pa0, const float* pa1, const float* pa2,
                const float* pa3, std::size_t astep, const float* pb, std::size_t ldb,
                float* c0, float* c1, float* c2, float* c3, std::size_t w) {
  float acc0[kVecColTile] = {}, acc1[kVecColTile] = {}, acc2[kVecColTile] = {},
        acc3[kVecColTile] = {};
  for (std::size_t t = 0; t < depth; ++t) {
    const float av0 = *pa0, av1 = *pa1, av2 = *pa2, av3 = *pa3;
    pa0 += astep;
    pa1 += astep;
    pa2 += astep;
    pa3 += astep;
    for (std::size_t jj = 0; jj < w; ++jj) {
      const float bv = pb[jj];
      acc0[jj] += av0 * bv;
      acc1[jj] += av1 * bv;
      acc2[jj] += av2 * bv;
      acc3[jj] += av3 * bv;
    }
    pb += ldb;
  }
  for (std::size_t jj = 0; jj < w; ++jj) {
    c0[jj] += acc0[jj];
    c1[jj] += acc1[jj];
    c2[jj] += acc2[jj];
    c3[jj] += acc3[jj];
  }
}

/// Single-row full-width tile for the ragged last rows.
__attribute__((noinline)) void tile1_full(std::size_t depth, const float* pa,
                                          std::size_t astep, const float* pb,
                                          std::size_t ldb, float* c0) {
  v4 al = {}, ah = {};
  for (std::size_t t = 0; t < depth; ++t) {
    const float av = *pa;
    al += av * load4(pb);
    ah += av * load4(pb + 4);
    pa += astep;
    pb += ldb;
  }
  store4(c0, load4(c0) + al);
  store4(c0 + 4, load4(c0 + 4) + ah);
}

/// Single-row ragged-width tile (bottom-right corner of the output).
void tile1_tail(std::size_t depth, const float* pa, std::size_t astep, const float* pb,
                std::size_t ldb, float* c0, std::size_t w) {
  float acc[kVecColTile] = {};
  for (std::size_t t = 0; t < depth; ++t) {
    const float av = *pa;
    pa += astep;
    for (std::size_t jj = 0; jj < w; ++jj) acc[jj] += av * pb[jj];
    pb += ldb;
  }
  for (std::size_t jj = 0; jj < w; ++jj) c0[jj] += acc[jj];
}

// ---------------------------------------------------------------------------
// Dot-product lanes for sgemm_transpose_b. Lane l owns reduction indices
// l, l + kVecLanes, l + 2*kVecLanes, ... of the stride-1 chunked prefix; the
// ragged tail continues into lanes 0..(tail-1). The assignment and the
// balanced fold below depend only on the reduction length, never on the tile
// position or thread partition — that is the fixed reduction tree of the
// fast-math tier's determinism contract.
// ---------------------------------------------------------------------------

float lane_fold(v4 lo, v4 hi) {
  static_assert(kVecLanes == 8, "lane_fold is written for 8 lanes");
  const float s01 = lo[0] + lo[1];
  const float s23 = lo[2] + lo[3];
  const float s45 = hi[0] + hi[1];
  const float s67 = hi[2] + hi[3];
  return (s01 + s23) + (s45 + s67);
}

/// Four dot products sharing one A row: out[q] = <arow, bq> over n elements.
__attribute__((noinline)) void dot4(const float* arow, const float* b0, const float* b1,
                                    const float* b2, const float* b3, std::size_t n,
                                    float out[4]) {
  v4 l0l = {}, l0h = {}, l1l = {}, l1h = {}, l2l = {}, l2h = {}, l3l = {}, l3h = {};
  const std::size_t n8 = n - n % kVecLanes;
  for (std::size_t p = 0; p < n8; p += kVecLanes) {
    const v4 al = load4(arow + p);
    const v4 ah = load4(arow + p + 4);
    l0l += al * load4(b0 + p);
    l0h += ah * load4(b0 + p + 4);
    l1l += al * load4(b1 + p);
    l1h += ah * load4(b1 + p + 4);
    l2l += al * load4(b2 + p);
    l2h += ah * load4(b2 + p + 4);
    l3l += al * load4(b3 + p);
    l3h += ah * load4(b3 + p + 4);
  }
  for (std::size_t p = n8; p < n; ++p) {
    const std::size_t l = p - n8;
    const float av = arow[p];
    if (l < 4) {
      l0l[l] += av * b0[p];
      l1l[l] += av * b1[p];
      l2l[l] += av * b2[p];
      l3l[l] += av * b3[p];
    } else {
      l0h[l - 4] += av * b0[p];
      l1h[l - 4] += av * b1[p];
      l2h[l - 4] += av * b2[p];
      l3h[l - 4] += av * b3[p];
    }
  }
  out[0] = lane_fold(l0l, l0h);
  out[1] = lane_fold(l1l, l1h);
  out[2] = lane_fold(l2l, l2h);
  out[3] = lane_fold(l3l, l3h);
}

float dot1(const float* arow, const float* brow, std::size_t n) {
  v4 lo = {}, hi = {};
  const std::size_t n8 = n - n % kVecLanes;
  for (std::size_t p = 0; p < n8; p += kVecLanes) {
    lo += load4(arow + p) * load4(brow + p);
    hi += load4(arow + p + 4) * load4(brow + p + 4);
  }
  for (std::size_t p = n8; p < n; ++p) {
    const std::size_t l = p - n8;
    if (l < 4) {
      lo[l] += arow[p] * brow[p];
    } else {
      hi[l - 4] += arow[p] * brow[p];
    }
  }
  return lane_fold(lo, hi);
}

}  // namespace

void vec_sgemm_rows(std::size_t i_begin, std::size_t i_end, std::size_t k, std::size_t n,
                    const float* a, const float* b, float* c) {
  std::size_t i = i_begin;
  for (; i + kVecRowTile <= i_end; i += kVecRowTile) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    float* c0 = c + (i + 0) * n;
    float* c1 = c + (i + 1) * n;
    float* c2 = c + (i + 2) * n;
    float* c3 = c + (i + 3) * n;
    std::size_t j0 = 0;
    for (; j0 + kVecColTile <= n; j0 += kVecColTile) {
      tile4_full(k, a0, a1, a2, a3, 1, b + j0, n, c0 + j0, c1 + j0, c2 + j0, c3 + j0);
    }
    if (j0 < n) {
      tile4_tail(k, a0, a1, a2, a3, 1, b + j0, n, c0 + j0, c1 + j0, c2 + j0, c3 + j0,
                 n - j0);
    }
  }
  for (; i < i_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::size_t j0 = 0;
    for (; j0 + kVecColTile <= n; j0 += kVecColTile) {
      tile1_full(k, arow, 1, b + j0, n, crow + j0);
    }
    if (j0 < n) tile1_tail(k, arow, 1, b + j0, n, crow + j0, n - j0);
  }
}

void vec_sgemm_ta_rows(std::size_t p_begin, std::size_t p_end, std::size_t m, std::size_t k,
                       std::size_t n, const float* a, const float* b, float* c) {
  std::size_t p = p_begin;
  for (; p + kVecRowTile <= p_end; p += kVecRowTile) {
    // Broadcast elements walk column p+r of A: start a[0*k + (p+r)], stride k.
    const float* a0 = a + (p + 0);
    const float* a1 = a + (p + 1);
    const float* a2 = a + (p + 2);
    const float* a3 = a + (p + 3);
    float* c0 = c + (p + 0) * n;
    float* c1 = c + (p + 1) * n;
    float* c2 = c + (p + 2) * n;
    float* c3 = c + (p + 3) * n;
    std::size_t j0 = 0;
    for (; j0 + kVecColTile <= n; j0 += kVecColTile) {
      tile4_full(m, a0, a1, a2, a3, k, b + j0, n, c0 + j0, c1 + j0, c2 + j0, c3 + j0);
    }
    if (j0 < n) {
      tile4_tail(m, a0, a1, a2, a3, k, b + j0, n, c0 + j0, c1 + j0, c2 + j0, c3 + j0,
                 n - j0);
    }
  }
  for (; p < p_end; ++p) {
    const float* acol = a + p;
    float* crow = c + p * n;
    std::size_t j0 = 0;
    for (; j0 + kVecColTile <= n; j0 += kVecColTile) {
      tile1_full(m, acol, k, b + j0, n, crow + j0);
    }
    if (j0 < n) tile1_tail(m, acol, k, b + j0, n, crow + j0, n - j0);
  }
}

void vec_sgemm_tb_rows(std::size_t i_begin, std::size_t i_end, std::size_t n, std::size_t k,
                       const float* a, const float* b, float* c, bool accumulate) {
  for (std::size_t i = i_begin; i < i_end; ++i) {
    const float* arow = a + i * n;
    float* crow = c + i * k;
    std::size_t j = 0;
    for (; j + 4 <= k; j += 4) {
      float out[4];
      dot4(arow, b + (j + 0) * n, b + (j + 1) * n, b + (j + 2) * n, b + (j + 3) * n, n,
           out);
      if (accumulate) {
        crow[j + 0] += out[0];
        crow[j + 1] += out[1];
        crow[j + 2] += out[2];
        crow[j + 3] += out[3];
      } else {
        crow[j + 0] = out[0];
        crow[j + 1] = out[1];
        crow[j + 2] = out[2];
        crow[j + 3] = out[3];
      }
    }
    for (; j < k; ++j) {
      const float v = dot1(arow, b + j * n, n);
      if (accumulate) {
        crow[j] += v;
      } else {
        crow[j] = v;
      }
    }
  }
}

}  // namespace pdsl::kernels
