#pragma once
// S-KER backend registry + S-VEC shape dispatch. The hot math (GEMM,
// convolution) exists in three implementations plus an automatic chooser:
//
//   - naive:      the original loops, kept as the bit-for-bit reference path
//                 for differential testing;
//   - blocked:    cache-blocked kernels with the SAME per-element accumulation
//                 order as naive — bit-identical, the default and the
//                 reference for the golden fixtures;
//   - vectorized: the S-VEC register-tiled microkernel (microkernel.hpp).
//                 Deterministic (fixed lane split + fixed reduction tree,
//                 independent of --threads), but NOT bit-identical to the
//                 reference: it reassociates reductions and is compiled with
//                 FMA contraction. It lives in the tolerance-banded fast-math
//                 tier (DESIGN.md "S-KER" band policy).
//   - auto:       per-call shape dispatch between the three, using the
//                 thresholds below. Because auto may pick vectorized, auto
//                 runs are banded too.
//
// The selection is process-wide:
//
//   - default: blocked;
//   - env var PDSL_KERNEL_BACKEND=naive|blocked|vectorized|auto overrides the
//     default at process start;
//   - set_backend() (plumbed from `--backend` on the CLI and the "backend"
//     JSON config key) overrides both, pinning a specific backend past the
//     dispatcher.
//
// Determinism: within one backend, results are bit-identical at every
// --threads width (the vectorized tier partitions output rows exactly like
// the blocked one). Across backends, naive == blocked bitwise for the GEMM
// family; vectorized agrees only within tolerance bands.

#include <cstddef>
#include <string>

namespace pdsl::kernels {

enum class Backend {
  kNaive,       ///< reference loops (former tensor/ops + direct convolution)
  kBlocked,     ///< register-tiled, cache-blocked, bit-identical to naive
  kVectorized,  ///< S-VEC microkernel: fast-math tier, tolerance-banded
  kAuto,        ///< per-shape dispatch between the three (banded)
};

// S-VEC auto-dispatch thresholds over (rows, depth, cols) of each GEMM call,
// where `rows` counts output rows, `depth` the reduction length and `cols`
// the contiguous inner dimension:
//   sgemm(m,k,n)             -> (m, k, n)
//   sgemm_transpose_a(m,k,n) -> (k, m, n)
//   sgemm_transpose_b(m,n,k) -> (m, n, k)
/// At or below this many multiply-adds the call is loop-overhead bound and
/// tile setup cannot pay for itself: dispatch to naive.
inline constexpr std::size_t kAutoNaiveMaxFlops = 4096;
/// Minimum reduction length for the vectorized tier — shorter reductions
/// cannot amortize the register-tile fill/drain and the lane fold.
inline constexpr std::size_t kAutoVecMinDepth = 16;
/// Minimum output columns for the vectorized tier — narrower outputs leave
/// the column tile mostly ragged.
inline constexpr std::size_t kAutoVecMinCols = 8;

/// Current process-wide backend (env-initialized on first use).
[[nodiscard]] Backend backend() noexcept;

/// Select the process-wide backend. Safe to call between runs; not meant to
/// be raced against in-flight kernels.
void set_backend(Backend b) noexcept;

/// The backend a GEMM call of shape (rows, depth, cols) actually runs on:
/// `pinned` itself unless it is kAuto, in which case the threshold table
/// above picks naive, blocked or vectorized. Pure function of its arguments —
/// the dispatch unit tests in tests/test_kernels.cpp pin its boundaries.
[[nodiscard]] Backend resolve_backend(Backend pinned, std::size_t rows, std::size_t depth,
                                      std::size_t cols) noexcept;

/// "naive" | "blocked" | "vectorized" | "auto" (throws std::invalid_argument
/// otherwise).
[[nodiscard]] Backend backend_from_string(const std::string& name);

/// Inverse of backend_from_string.
[[nodiscard]] const char* backend_name(Backend b) noexcept;

}  // namespace pdsl::kernels
