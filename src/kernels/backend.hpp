#pragma once
// S-KER backend registry. The hot math (GEMM, convolution) exists in two
// implementations: the original naive loops, kept as a bit-for-bit reference
// path for differential testing, and the cache-blocked/vectorizable kernels
// that production runs use. The selection is process-wide:
//
//   - default: blocked;
//   - env var PDSL_KERNEL_BACKEND=naive|blocked overrides the default at
//     process start;
//   - set_backend() (plumbed from `--backend` on the CLI and the "backend"
//     JSON config key) overrides both.
//
// Determinism: for the GEMM family the blocked kernels preserve the naive
// accumulation order per output element, so switching backends is
// bit-neutral there; the im2col convolution path associates the reduction
// differently from the direct loops and agrees only to rounding error (see
// DESIGN.md "S-KER"). Within one backend, results are bit-identical at every
// --threads width.

#include <string>

namespace pdsl::kernels {

enum class Backend {
  kNaive,    ///< reference loops (former tensor/ops + direct convolution)
  kBlocked,  ///< register-tiled, cache-blocked, optionally intra-op parallel
};

/// Current process-wide backend (env-initialized on first use).
[[nodiscard]] Backend backend() noexcept;

/// Select the process-wide backend. Safe to call between runs; not meant to
/// be raced against in-flight kernels.
void set_backend(Backend b) noexcept;

/// "naive" | "blocked" (throws std::invalid_argument otherwise).
[[nodiscard]] Backend backend_from_string(const std::string& name);

/// Inverse of backend_from_string.
[[nodiscard]] const char* backend_name(Backend b) noexcept;

}  // namespace pdsl::kernels
