#include "kernels/gemm.hpp"

#include <algorithm>
#include <functional>

#include "kernels/backend.hpp"
#include "kernels/microkernel.hpp"
#include "runtime/parallel_for.hpp"

namespace pdsl::kernels {

namespace {

// Output rows per register tile: small enough that the tile's accumulator
// rows stay in registers / L1 across the reduction, large enough to amortize
// each load of the shared operand row four ways.
constexpr std::size_t kRowTile = 4;
// Column block (floats) for the axpy-style kernels: one C-row segment plus
// one B-row segment per tile row stays L1-resident while the reduction runs.
constexpr std::size_t kColBlock = 256;

/// Run body(lo, hi) over a static partition of [0, rows). Sequential when the
/// configured width is 1, when there is nothing to split, or when the caller
/// already sits inside a parallel_for body (nested parallelism is rejected by
/// the runtime). The partition is a pure function of (rows, width) and every
/// output row is produced by exactly one chunk, so results are bit-identical
/// at every width.
void for_row_range(std::size_t rows, const std::function<void(std::size_t, std::size_t)>& body) {
  if (rows == 0) return;
  const std::size_t width = runtime::global_threads();
  const std::size_t chunks = std::min(width, rows);
  if (chunks <= 1 || runtime::in_parallel_region()) {
    body(0, rows);
    return;
  }
  const std::size_t grain = (rows + chunks - 1) / chunks;
  runtime::parallel_for(0, chunks, 1, [&](std::size_t c) {
    const std::size_t lo = c * grain;
    const std::size_t hi = std::min(rows, lo + grain);
    if (lo < hi) body(lo, hi);
  });
}

// ---------------------------------------------------------------------------
// C(m,n) = A(m,k) * B(k,n)
// ---------------------------------------------------------------------------

void naive_sgemm_rows(std::size_t i_begin, std::size_t i_end, std::size_t k, std::size_t n,
                      const float* a, const float* b, float* c) {
  for (std::size_t i = i_begin; i < i_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void blocked_sgemm_rows(std::size_t i_begin, std::size_t i_end, std::size_t k, std::size_t n,
                        const float* a, const float* b, float* c) {
  for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
    const std::size_t j1 = std::min(n, j0 + kColBlock);
    std::size_t i = i_begin;
    for (; i + kRowTile <= i_end; i += kRowTile) {
      const float* __restrict__ a0 = a + (i + 0) * k;
      const float* __restrict__ a1 = a + (i + 1) * k;
      const float* __restrict__ a2 = a + (i + 2) * k;
      const float* __restrict__ a3 = a + (i + 3) * k;
      float* __restrict__ c0 = c + (i + 0) * n;
      float* __restrict__ c1 = c + (i + 1) * n;
      float* __restrict__ c2 = c + (i + 2) * n;
      float* __restrict__ c3 = c + (i + 3) * n;
      for (std::size_t p = 0; p < k; ++p) {
        const float av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
        const float* __restrict__ brow = b + p * n;
        for (std::size_t j = j0; j < j1; ++j) {
          const float bv = brow[j];
          c0[j] += av0 * bv;
          c1[j] += av1 * bv;
          c2[j] += av2 * bv;
          c3[j] += av3 * bv;
        }
      }
    }
    for (; i < i_end; ++i) {
      const float* __restrict__ arow = a + i * k;
      float* __restrict__ crow = c + i * n;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* __restrict__ brow = b + p * n;
        for (std::size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C(k,n) = A(m,k)^T * B(m,n) — output row p of C gathers column p of A.
// ---------------------------------------------------------------------------

void naive_sgemm_ta_rows(std::size_t p_begin, std::size_t p_end, std::size_t m, std::size_t k,
                         std::size_t n, const float* a, const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (std::size_t p = p_begin; p < p_end; ++p) {
      const float av = arow[p];
      float* crow = c + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void blocked_sgemm_ta_rows(std::size_t p_begin, std::size_t p_end, std::size_t m, std::size_t k,
                           std::size_t n, const float* a, const float* b, float* c) {
  for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
    const std::size_t j1 = std::min(n, j0 + kColBlock);
    std::size_t p = p_begin;
    for (; p + kRowTile <= p_end; p += kRowTile) {
      float* __restrict__ c0 = c + (p + 0) * n;
      float* __restrict__ c1 = c + (p + 1) * n;
      float* __restrict__ c2 = c + (p + 2) * n;
      float* __restrict__ c3 = c + (p + 3) * n;
      for (std::size_t i = 0; i < m; ++i) {
        const float* acol = a + i * k + p;
        const float av0 = acol[0], av1 = acol[1], av2 = acol[2], av3 = acol[3];
        const float* __restrict__ brow = b + i * n;
        for (std::size_t j = j0; j < j1; ++j) {
          const float bv = brow[j];
          c0[j] += av0 * bv;
          c1[j] += av1 * bv;
          c2[j] += av2 * bv;
          c3[j] += av3 * bv;
        }
      }
    }
    for (; p < p_end; ++p) {
      float* __restrict__ crow = c + p * n;
      for (std::size_t i = 0; i < m; ++i) {
        const float av = a[i * k + p];
        const float* __restrict__ brow = b + i * n;
        for (std::size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C(m,k) = A(m,n) * B(k,n)^T — independent dot products, double accumulators
// (matches the original matmul_transpose_b numerics exactly).
// ---------------------------------------------------------------------------

void naive_sgemm_tb_block(std::size_t i_begin, std::size_t i_end, std::size_t j_begin,
                          std::size_t j_end, std::size_t n, std::size_t k, const float* a,
                          const float* b, float* c, bool accumulate) {
  for (std::size_t i = i_begin; i < i_end; ++i) {
    const float* arow = a + i * n;
    for (std::size_t j = j_begin; j < j_end; ++j) {
      const float* brow = b + j * n;
      double acc = 0.0;
      for (std::size_t p = 0; p < n; ++p) acc += static_cast<double>(arow[p]) * brow[p];
      if (accumulate) {
        c[i * k + j] += static_cast<float>(acc);
      } else {
        c[i * k + j] = static_cast<float>(acc);
      }
    }
  }
}

void naive_sgemm_tb_rows(std::size_t i_begin, std::size_t i_end, std::size_t n, std::size_t k,
                         const float* a, const float* b, float* c, bool accumulate) {
  naive_sgemm_tb_block(i_begin, i_end, 0, k, n, k, a, b, c, accumulate);
}

void blocked_sgemm_tb_rows(std::size_t i_begin, std::size_t i_end, std::size_t n, std::size_t k,
                           const float* a, const float* b, float* c, bool accumulate) {
  // 2x4 register tile of independent dot products: each accumulator still
  // runs over p in ascending order, so every element matches the naive path
  // bit-for-bit while the A/B rows are reused 4x/2x from registers.
  std::size_t i = i_begin;
  for (; i + 2 <= i_end; i += 2) {
    const float* __restrict__ a0 = a + (i + 0) * n;
    const float* __restrict__ a1 = a + (i + 1) * n;
    std::size_t j = 0;
    for (; j + 4 <= k; j += 4) {
      const float* __restrict__ b0 = b + (j + 0) * n;
      const float* __restrict__ b1 = b + (j + 1) * n;
      const float* __restrict__ b2 = b + (j + 2) * n;
      const float* __restrict__ b3 = b + (j + 3) * n;
      double d00 = 0.0, d01 = 0.0, d02 = 0.0, d03 = 0.0;
      double d10 = 0.0, d11 = 0.0, d12 = 0.0, d13 = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        const double av0 = a0[p], av1 = a1[p];
        d00 += av0 * b0[p];
        d01 += av0 * b1[p];
        d02 += av0 * b2[p];
        d03 += av0 * b3[p];
        d10 += av1 * b0[p];
        d11 += av1 * b1[p];
        d12 += av1 * b2[p];
        d13 += av1 * b3[p];
      }
      float* c0 = c + (i + 0) * k + j;
      float* c1 = c + (i + 1) * k + j;
      if (accumulate) {
        c0[0] += static_cast<float>(d00);
        c0[1] += static_cast<float>(d01);
        c0[2] += static_cast<float>(d02);
        c0[3] += static_cast<float>(d03);
        c1[0] += static_cast<float>(d10);
        c1[1] += static_cast<float>(d11);
        c1[2] += static_cast<float>(d12);
        c1[3] += static_cast<float>(d13);
      } else {
        c0[0] = static_cast<float>(d00);
        c0[1] = static_cast<float>(d01);
        c0[2] = static_cast<float>(d02);
        c0[3] = static_cast<float>(d03);
        c1[0] = static_cast<float>(d10);
        c1[1] = static_cast<float>(d11);
        c1[2] = static_cast<float>(d12);
        c1[3] = static_cast<float>(d13);
      }
    }
    if (j < k) naive_sgemm_tb_block(i, i + 2, j, k, n, k, a, b, c, accumulate);
  }
  if (i < i_end) naive_sgemm_tb_rows(i, i_end, n, k, a, b, c, accumulate);
}

}  // namespace

void sgemm(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
           float* c, bool accumulate) {
  const Backend be = resolve_backend(backend(), m, k, n);
  for_row_range(m, [&](std::size_t lo, std::size_t hi) {
    if (!accumulate) std::fill(c + lo * n, c + hi * n, 0.0f);
    if (be == Backend::kVectorized) {
      vec_sgemm_rows(lo, hi, k, n, a, b, c);
    } else if (be == Backend::kBlocked) {
      blocked_sgemm_rows(lo, hi, k, n, a, b, c);
    } else {
      naive_sgemm_rows(lo, hi, k, n, a, b, c);
    }
  });
}

void sgemm_transpose_a(std::size_t m, std::size_t k, std::size_t n, const float* a,
                       const float* b, float* c, bool accumulate) {
  const Backend be = resolve_backend(backend(), k, m, n);
  for_row_range(k, [&](std::size_t lo, std::size_t hi) {
    if (!accumulate) std::fill(c + lo * n, c + hi * n, 0.0f);
    if (be == Backend::kVectorized) {
      vec_sgemm_ta_rows(lo, hi, m, k, n, a, b, c);
    } else if (be == Backend::kBlocked) {
      blocked_sgemm_ta_rows(lo, hi, m, k, n, a, b, c);
    } else {
      naive_sgemm_ta_rows(lo, hi, m, k, n, a, b, c);
    }
  });
}

void sgemm_transpose_b(std::size_t m, std::size_t n, std::size_t k, const float* a,
                       const float* b, float* c, bool accumulate) {
  const Backend be = resolve_backend(backend(), m, n, k);
  for_row_range(m, [&](std::size_t lo, std::size_t hi) {
    if (be == Backend::kVectorized) {
      vec_sgemm_tb_rows(lo, hi, n, k, a, b, c, accumulate);
    } else if (be == Backend::kBlocked) {
      blocked_sgemm_tb_rows(lo, hi, n, k, a, b, c, accumulate);
    } else {
      naive_sgemm_tb_rows(lo, hi, n, k, a, b, c, accumulate);
    }
  });
}

}  // namespace pdsl::kernels
