#include "optim/qp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/vec_math.hpp"

namespace pdsl::optim {

std::vector<double> project_to_simplex(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("project_to_simplex: empty vector");
  // Held, Wolfe & Crowder / Duchi et al. sort-based projection.
  std::vector<double> u = v;
  std::sort(u.rbegin(), u.rend());
  double css = 0.0;
  double theta = 0.0;
  std::size_t rho = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    css += u[i];
    const double t = (css - 1.0) / static_cast<double>(i + 1);
    if (u[i] - t > 0.0) {
      rho = i + 1;
      theta = t;
    }
  }
  if (rho == 0) {
    // All mass below threshold (can only happen through NaN/degenerate input).
    return std::vector<double>(v.size(), 1.0 / static_cast<double>(v.size()));
  }
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::max(0.0, v[i] - theta);
  return out;
}

MinNormResult MinNormSolver::solve(const std::vector<std::vector<float>>& gradients,
                                   const Options& opts) const {
  const std::size_t n = gradients.size();
  if (n == 0) throw std::invalid_argument("MinNormSolver: no gradients");
  std::vector<std::vector<double>> gram(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      gram[i][j] = gram[j][i] = dot(gradients[i], gradients[j]);
    }
  }
  return solve_gram(gram, opts);
}

MinNormResult MinNormSolver::solve_gram(const std::vector<std::vector<double>>& gram,
                                        const Options& opts) const {
  const std::size_t n = gram.size();
  if (n == 0) throw std::invalid_argument("MinNormSolver: empty gram");
  for (const auto& row : gram) {
    if (row.size() != n) throw std::invalid_argument("MinNormSolver: non-square gram");
  }

  MinNormResult res;
  res.lambda.assign(n, 1.0 / static_cast<double>(n));

  // Objective f(l) = l^T G l; gradient 2 G l; Lipschitz constant <= 2*||G||.
  double lips = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += std::abs(gram[i][j]);
    lips = std::max(lips, row);
  }
  const double step = opts.step > 0.0 ? opts.step : (lips > 0.0 ? 1.0 / (2.0 * lips) : 1.0);

  auto objective = [&](const std::vector<double>& l) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) acc += l[i] * gram[i][j] * l[j];
    }
    return acc;
  };

  double prev = objective(res.lambda);
  for (std::size_t it = 0; it < opts.max_iters; ++it) {
    std::vector<double> grad(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) grad[i] += 2.0 * gram[i][j] * res.lambda[j];
    }
    std::vector<double> cand(n);
    for (std::size_t i = 0; i < n; ++i) cand[i] = res.lambda[i] - step * grad[i];
    cand = project_to_simplex(cand);
    const double cur = objective(cand);
    res.lambda = std::move(cand);
    res.iterations = it + 1;
    if (std::abs(prev - cur) < opts.tol) {
      res.converged = true;
      prev = cur;
      break;
    }
    prev = cur;
  }
  res.norm_sq = prev;
  return res;
}

std::vector<float> combine(const std::vector<std::vector<float>>& gradients,
                           const std::vector<double>& lambda) {
  if (gradients.size() != lambda.size() || gradients.empty()) {
    throw std::invalid_argument("combine: arity mismatch");
  }
  std::vector<const std::vector<float>*> ptrs;
  ptrs.reserve(gradients.size());
  for (const auto& g : gradients) ptrs.push_back(&g);
  return weighted_sum(ptrs, lambda);
}

}  // namespace pdsl::optim
