#pragma once
// Quadratic programming used by the DP-CGA baseline [12]: project the set of
// (cross-)gradients to a single descent direction by finding the minimum-norm
// point in their convex hull,
//     min_{lambda in simplex} || sum_j lambda_j g_j ||^2 ,
// solved by projected gradient descent on the simplex with an exact
// (sort-based) Euclidean simplex projection. n is tiny (the neighborhood
// size), so the O(n^2) Gram matrix is cheap; d never appears in the solve.

#include <cstddef>
#include <vector>

namespace pdsl::optim {

/// Euclidean projection of v onto the probability simplex {x >= 0, sum x = 1}.
std::vector<double> project_to_simplex(const std::vector<double>& v);

struct MinNormResult {
  std::vector<double> lambda;  ///< convex-combination weights
  double norm_sq = 0.0;        ///< value of the objective at lambda
  std::size_t iterations = 0;
  bool converged = false;
};

struct MinNormOptions {
  std::size_t max_iters = 500;
  double tol = 1e-9;   ///< stop when the objective decrease is below tol
  double step = 0.0;   ///< 0 = auto (1 / largest Gram diagonal sum)
};

class MinNormSolver {
 public:
  using Options = MinNormOptions;

  /// `gradients`: n vectors of equal dimension d.
  MinNormResult solve(const std::vector<std::vector<float>>& gradients,
                      const Options& opts = {}) const;

  /// Solve from a precomputed Gram matrix G[i][j] = <g_i, g_j>.
  MinNormResult solve_gram(const std::vector<std::vector<double>>& gram,
                           const Options& opts = {}) const;
};

/// Combine gradients with the produced weights: sum_j lambda_j g_j.
std::vector<float> combine(const std::vector<std::vector<float>>& gradients,
                           const std::vector<double>& lambda);

}  // namespace pdsl::optim
