#include "optim/sgd.hpp"

#include <stdexcept>

#include "common/vec_math.hpp"

namespace pdsl::optim {

void sgd_step(std::vector<float>& x, const std::vector<float>& g, double lr) {
  axpy(x, g, static_cast<float>(-lr));
}

void momentum_step(std::vector<float>& x, std::vector<float>& u, const std::vector<float>& g,
                   double lr, double alpha) {
  check_same_size(x, u, "momentum_step");
  check_same_size(x, g, "momentum_step");
  const auto a = static_cast<float>(alpha);
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = a * u[i] + g[i];
  axpy(x, u, static_cast<float>(-lr));
}

void sgd_step_weight_decay(std::vector<float>& x, const std::vector<float>& g, double lr,
                           double weight_decay) {
  check_same_size(x, g, "sgd_step_weight_decay");
  const auto neg_lr = static_cast<float>(-lr);
  const auto wd = static_cast<float>(weight_decay);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += neg_lr * (g[i] + wd * x[i]);
}

}  // namespace pdsl::optim
