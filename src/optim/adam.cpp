#include "optim/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace pdsl::optim {

AdamW::AdamW(std::size_t dim, Config cfg) : cfg_(cfg), m_(dim, 0.0), v_(dim, 0.0) {
  if (dim == 0) throw std::invalid_argument("AdamW: zero dimension");
  if (cfg.lr <= 0.0) throw std::invalid_argument("AdamW: lr must be positive");
  if (cfg.beta1 < 0.0 || cfg.beta1 >= 1.0 || cfg.beta2 < 0.0 || cfg.beta2 >= 1.0) {
    throw std::invalid_argument("AdamW: betas must be in [0,1)");
  }
  if (cfg.epsilon <= 0.0) throw std::invalid_argument("AdamW: epsilon must be positive");
  if (cfg.weight_decay < 0.0) throw std::invalid_argument("AdamW: negative weight decay");
}

void AdamW::step(std::vector<float>& x, const std::vector<float>& g) {
  if (x.size() != m_.size() || g.size() != m_.size()) {
    throw std::invalid_argument("AdamW::step: dimension mismatch");
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < x.size(); ++i) {
    m_[i] = cfg_.beta1 * m_[i] + (1.0 - cfg_.beta1) * g[i];
    v_[i] = cfg_.beta2 * v_[i] + (1.0 - cfg_.beta2) * static_cast<double>(g[i]) * g[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    x[i] -= static_cast<float>(
        cfg_.lr * (m_hat / (std::sqrt(v_hat) + cfg_.epsilon) + cfg_.weight_decay * x[i]));
  }
}

void AdamW::reset() {
  std::fill(m_.begin(), m_.end(), 0.0);
  std::fill(v_.begin(), v_.end(), 0.0);
  t_ = 0;
}

}  // namespace pdsl::optim
