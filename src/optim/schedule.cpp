#include "optim/schedule.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pdsl::optim {

namespace {
void require_positive(double v, const char* what) {
  if (v <= 0.0) throw std::invalid_argument(std::string(what) + " must be positive");
}
}  // namespace

ConstantLr::ConstantLr(double lr) : lr_(lr) { require_positive(lr, "ConstantLr: lr"); }

InverseSqrtLr::InverseSqrtLr(double base) : base_(base) {
  require_positive(base, "InverseSqrtLr: base");
}

double InverseSqrtLr::at(std::size_t t) const {
  return base_ / std::sqrt(static_cast<double>(t + 1));
}

StepDecayLr::StepDecayLr(double base, std::size_t period, double factor)
    : base_(base), period_(period), factor_(factor) {
  require_positive(base, "StepDecayLr: base");
  require_positive(factor, "StepDecayLr: factor");
  if (period == 0) throw std::invalid_argument("StepDecayLr: period must be positive");
}

double StepDecayLr::at(std::size_t t) const {
  return base_ * std::pow(factor_, static_cast<double>(t / period_));
}

CosineLr::CosineLr(double base, double floor, std::size_t horizon)
    : base_(base), floor_(floor), horizon_(horizon) {
  require_positive(base, "CosineLr: base");
  if (floor < 0.0 || floor > base) throw std::invalid_argument("CosineLr: bad floor");
  if (horizon == 0) throw std::invalid_argument("CosineLr: horizon must be positive");
}

double CosineLr::at(std::size_t t) const {
  const double progress =
      std::min(1.0, static_cast<double>(t) / static_cast<double>(horizon_));
  return floor_ + 0.5 * (base_ - floor_) * (1.0 + std::cos(std::numbers::pi * progress));
}

std::unique_ptr<LrSchedule> make_schedule(const std::string& name, double base,
                                          std::size_t horizon) {
  if (name == "constant") return std::make_unique<ConstantLr>(base);
  if (name == "inv_sqrt") return std::make_unique<InverseSqrtLr>(base);
  if (name == "step") return std::make_unique<StepDecayLr>(base, std::max<std::size_t>(1, horizon / 3), 0.5);
  if (name == "cosine") return std::make_unique<CosineLr>(base, base * 0.01, horizon);
  throw std::invalid_argument("make_schedule: unknown schedule '" + name + "'");
}

}  // namespace pdsl::optim
