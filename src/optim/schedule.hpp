#pragma once
// Learning-rate schedules. Corollary 1 analyzes gamma = O(1/sqrt(T)); the
// experiments use a constant rate. Both are provided, plus step decay and
// cosine annealing for the extension examples.

#include <cstddef>
#include <memory>
#include <string>

namespace pdsl::optim {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate to use at round t (0-indexed).
  [[nodiscard]] virtual double at(std::size_t t) const = 0;
};

class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(double lr);
  [[nodiscard]] double at(std::size_t) const override { return lr_; }

 private:
  double lr_;
};

/// gamma_t = base / sqrt(t + 1) — the Corollary-1 regime with T horizon folded
/// into `base`.
class InverseSqrtLr final : public LrSchedule {
 public:
  explicit InverseSqrtLr(double base);
  [[nodiscard]] double at(std::size_t t) const override;

 private:
  double base_;
};

class StepDecayLr final : public LrSchedule {
 public:
  StepDecayLr(double base, std::size_t period, double factor);
  [[nodiscard]] double at(std::size_t t) const override;

 private:
  double base_;
  std::size_t period_;
  double factor_;
};

class CosineLr final : public LrSchedule {
 public:
  CosineLr(double base, double floor, std::size_t horizon);
  [[nodiscard]] double at(std::size_t t) const override;

 private:
  double base_;
  double floor_;
  std::size_t horizon_;
};

/// Factory: "constant", "inv_sqrt", "step", "cosine".
std::unique_ptr<LrSchedule> make_schedule(const std::string& name, double base,
                                          std::size_t horizon);

}  // namespace pdsl::optim
