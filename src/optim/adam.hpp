#pragma once
// AdamW stepper on flat parameter vectors — an adaptive local optimizer for
// the examples and for local-update baselines. State (first/second moments,
// step count) is held by the object.

#include <cstddef>
#include <vector>

namespace pdsl::optim {

struct AdamWConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;  ///< decoupled (AdamW-style)
};

class AdamW {
 public:
  using Config = AdamWConfig;

  explicit AdamW(std::size_t dim, Config cfg = Config{});

  /// One update: x <- x - lr * (m_hat / (sqrt(v_hat) + eps) + wd * x).
  void step(std::vector<float>& x, const std::vector<float>& g);

  [[nodiscard]] std::size_t steps_taken() const { return t_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  void reset();

 private:
  Config cfg_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::size_t t_ = 0;
};

}  // namespace pdsl::optim
