#pragma once
// Flat-vector parameter steppers (S10). The decentralized algorithms mostly
// inline their updates (they are the point of the paper), but local-update
// baselines (DP-NET-FLEET's inner loop) and the examples use these.

#include <vector>

namespace pdsl::optim {

/// Plain SGD step: x <- x - lr * g.
void sgd_step(std::vector<float>& x, const std::vector<float>& g, double lr);

/// Heavy-ball momentum: u <- alpha*u + g; x <- x - lr*u. `u` is caller-owned
/// state sized like x (the paper's momentum buffer, Eqs. 22-23 in local form).
void momentum_step(std::vector<float>& x, std::vector<float>& u, const std::vector<float>& g,
                   double lr, double alpha);

/// SGD with L2 weight decay: x <- x - lr*(g + wd*x).
void sgd_step_weight_decay(std::vector<float>& x, const std::vector<float>& g, double lr,
                           double weight_decay);

}  // namespace pdsl::optim
