#include "io/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "io/codec.hpp"

namespace pdsl::io {

namespace {

/// Crash-safe writer: stream into a `.tmp` sibling, then std::rename over the
/// destination once the bytes are durably written. A crash mid-save leaves the
/// previous checkpoint intact (plus at worst a stale .tmp the next successful
/// save overwrites); a reader can never observe a half-written file.
class AtomicFile {
 public:
  AtomicFile(const std::string& path, const char* who)
      : path_(path), tmp_(path + ".tmp"), who_(who), out_(tmp_, std::ios::binary) {
    if (!out_) throw std::runtime_error(std::string(who_) + ": cannot open " + tmp_);
  }

  ~AtomicFile() {
    if (!committed_) {
      out_.close();
      std::remove(tmp_.c_str());  // failed save: don't leave the partial file
    }
  }

  std::ofstream& stream() { return out_; }

  /// Flush, verify the stream, and rename into place. Throws on any failure
  /// (the destructor then cleans up the tmp and the old checkpoint survives).
  void commit() {
    out_.flush();
    if (!out_) throw std::runtime_error(std::string(who_) + ": write failed for " + path_);
    out_.close();
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
      throw std::runtime_error(std::string(who_) + ": cannot rename " + tmp_ + " to " + path_);
    }
    committed_ = true;
  }

 private:
  std::string path_;
  std::string tmp_;
  const char* who_;
  std::ofstream out_;
  bool committed_ = false;
};

constexpr std::uint64_t kMagicSingle = 0x5044534C'4D4F4431ULL;  // "PDSLMOD1"
constexpr std::uint64_t kMagicFleet = 0x5044534C'464C5431ULL;   // "PDSLFLT1"

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in, const char* what) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error(std::string("checkpoint: truncated reading ") + what);
  return v;
}

void write_floats(std::ofstream& out, const std::vector<float>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> read_floats(std::ifstream& in, std::size_t n) {
  std::vector<float> v(n);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw std::runtime_error("checkpoint: truncated reading parameters");
  return v;
}

}  // namespace

std::uint64_t fnv1a(const std::vector<float>& data) {
  return fnv1a_bytes(data.data(), data.size() * sizeof(float));
}

void save_params(const std::string& path, const std::vector<float>& params) {
  AtomicFile file(path, "save_params");
  std::ofstream& out = file.stream();
  write_u64(out, kMagicSingle);
  write_u64(out, params.size());
  write_u64(out, fnv1a(params));
  write_floats(out, params);
  file.commit();
}

std::vector<float> load_params(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  if (read_u64(in, "magic") != kMagicSingle) {
    throw std::runtime_error("load_params: bad magic in " + path);
  }
  const auto dim = read_u64(in, "dimension");
  const auto checksum = read_u64(in, "checksum");
  auto params = read_floats(in, dim);
  if (fnv1a(params) != checksum) {
    throw std::runtime_error("load_params: checksum mismatch in " + path);
  }
  return params;
}

void save_fleet(const std::string& path, const std::vector<std::vector<float>>& models) {
  if (models.empty()) throw std::invalid_argument("save_fleet: empty fleet");
  const std::size_t dim = models[0].size();
  for (const auto& m : models) {
    if (m.size() != dim) throw std::invalid_argument("save_fleet: ragged fleet");
  }
  AtomicFile file(path, "save_fleet");
  std::ofstream& out = file.stream();
  write_u64(out, kMagicFleet);
  write_u64(out, models.size());
  write_u64(out, dim);
  for (const auto& m : models) {
    write_u64(out, fnv1a(m));
    write_floats(out, m);
  }
  file.commit();
}

std::vector<std::vector<float>> load_fleet(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_fleet: cannot open " + path);
  if (read_u64(in, "magic") != kMagicFleet) {
    throw std::runtime_error("load_fleet: bad magic in " + path);
  }
  const auto count = read_u64(in, "count");
  const auto dim = read_u64(in, "dimension");
  std::vector<std::vector<float>> models;
  models.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto checksum = read_u64(in, "checksum");
    auto m = read_floats(in, dim);
    if (fnv1a(m) != checksum) {
      throw std::runtime_error("load_fleet: checksum mismatch in agent " + std::to_string(i));
    }
    models.push_back(std::move(m));
  }
  return models;
}

}  // namespace pdsl::io
