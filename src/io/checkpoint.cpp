#include "io/checkpoint.hpp"

#include <cstring>

namespace pdsl::io {

namespace {

constexpr std::uint64_t kMagicSingle = 0x5044534C'4D4F4431ULL;  // "PDSLMOD1"
constexpr std::uint64_t kMagicFleet = 0x5044534C'464C5431ULL;   // "PDSLFLT1"

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in, const char* what) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error(std::string("checkpoint: truncated reading ") + what);
  return v;
}

void write_floats(std::ofstream& out, const std::vector<float>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> read_floats(std::ifstream& in, std::size_t n) {
  std::vector<float> v(n);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw std::runtime_error("checkpoint: truncated reading parameters");
  return v;
}

void check_version(std::ifstream& in, const char* who, const std::string& path) {
  const auto version = read_u64(in, "version");
  if (version != kCheckpointVersion) {
    throw std::runtime_error(std::string(who) + ": unsupported checkpoint version " +
                             std::to_string(version) + " in " + path + " (expected " +
                             std::to_string(kCheckpointVersion) + ")");
  }
}

}  // namespace

std::uint64_t fnv1a(const std::vector<float>& data) {
  return fnv1a_bytes(data.data(), data.size() * sizeof(float));
}

void save_params(const std::string& path, const std::vector<float>& params) {
  AtomicFile file(path, "save_params");
  std::ofstream& out = file.stream();
  write_u64(out, kMagicSingle);
  write_u64(out, kCheckpointVersion);
  write_u64(out, params.size());
  write_u64(out, fnv1a(params));
  write_floats(out, params);
  file.commit();
}

std::vector<float> load_params(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  if (read_u64(in, "magic") != kMagicSingle) {
    throw std::runtime_error("load_params: bad magic in " + path);
  }
  check_version(in, "load_params", path);
  const auto dim = read_u64(in, "dimension");
  const auto checksum = read_u64(in, "checksum");
  auto params = read_floats(in, dim);
  if (fnv1a(params) != checksum) {
    throw std::runtime_error("load_params: checksum mismatch in " + path);
  }
  return params;
}

void save_fleet(const std::string& path, const std::vector<std::vector<float>>& models) {
  if (models.empty()) throw std::invalid_argument("save_fleet: empty fleet");
  const std::size_t dim = models[0].size();
  for (const auto& m : models) {
    if (m.size() != dim) throw std::invalid_argument("save_fleet: ragged fleet");
  }
  AtomicFile file(path, "save_fleet");
  std::ofstream& out = file.stream();
  write_u64(out, kMagicFleet);
  write_u64(out, kCheckpointVersion);
  write_u64(out, models.size());
  write_u64(out, dim);
  for (const auto& m : models) {
    write_u64(out, fnv1a(m));
    write_floats(out, m);
  }
  file.commit();
}

std::vector<std::vector<float>> load_fleet(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_fleet: cannot open " + path);
  if (read_u64(in, "magic") != kMagicFleet) {
    throw std::runtime_error("load_fleet: bad magic in " + path);
  }
  check_version(in, "load_fleet", path);
  const auto count = read_u64(in, "count");
  const auto dim = read_u64(in, "dimension");
  std::vector<std::vector<float>> models;
  models.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto checksum = read_u64(in, "checksum");
    auto m = read_floats(in, dim);
    if (fnv1a(m) != checksum) {
      throw std::runtime_error("load_fleet: checksum mismatch in agent " + std::to_string(i));
    }
    models.push_back(std::move(m));
  }
  return models;
}

void save_blob(const std::string& path, std::uint64_t magic, const ByteBuffer& body,
               const char* who) {
  AtomicFile file(path, who);
  std::ofstream& out = file.stream();
  write_u64(out, magic);
  write_u64(out, kCheckpointVersion);
  write_u64(out, body.size());
  write_u64(out, fnv1a_bytes(body.data(), body.size()));
  out.write(reinterpret_cast<const char*>(body.data()),
            static_cast<std::streamsize>(body.size()));
  file.commit();
}

ByteBuffer load_blob(const std::string& path, std::uint64_t magic, const char* who) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(std::string(who) + ": cannot open " + path);
  if (read_u64(in, "magic") != magic) {
    throw std::runtime_error(std::string(who) + ": bad magic in " + path);
  }
  check_version(in, who, path);
  const auto size = read_u64(in, "size");
  const auto checksum = read_u64(in, "checksum");
  ByteBuffer body(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(body.data()), static_cast<std::streamsize>(body.size()));
  if (!in) {
    throw std::runtime_error(std::string(who) + ": truncated reading body of " + path);
  }
  if (fnv1a_bytes(body.data(), body.size()) != checksum) {
    throw std::runtime_error(std::string(who) + ": checksum mismatch in " + path);
  }
  return body;
}

}  // namespace pdsl::io
