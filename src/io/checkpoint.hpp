#pragma once
// Checkpointing: persist and restore flat parameter vectors (single models
// or a whole fleet of per-agent models mid-experiment). Binary format with a
// magic header, a format-version word, dimension metadata and a FNV-1a
// content checksum so that a truncated, corrupted or future-format file
// fails loudly instead of producing silently wrong models.
//
// Saves are crash-safe: bytes stream into a `<path>.tmp` sibling which is
// std::rename'd over the destination only after a verified flush, so a crash
// mid-save never clobbers the previous checkpoint and readers never see a
// half-written file. A failed save removes its own .tmp.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/codec.hpp"

namespace pdsl::io {

/// On-disk layout version shared by every io/ checkpoint family. Version 2
/// added the version word itself (version-1 files, which had the payload
/// metadata where the version now lives, are rejected loudly).
constexpr std::uint64_t kCheckpointVersion = 2;

/// Crash-safe writer: stream into a `.tmp` sibling, then std::rename over the
/// destination once the bytes are durably written. A crash mid-save leaves the
/// previous checkpoint intact (plus at worst a stale .tmp the next successful
/// save overwrites); a reader can never observe a half-written file. Exposed
/// for the S-RECOV recovery snapshots and run-state files.
class AtomicFile {
 public:
  AtomicFile(const std::string& path, const char* who)
      : path_(path), tmp_(path + ".tmp"), who_(who), out_(tmp_, std::ios::binary) {
    if (!out_) throw std::runtime_error(std::string(who_) + ": cannot open " + tmp_);
  }

  ~AtomicFile() {
    if (!committed_) {
      out_.close();
      std::remove(tmp_.c_str());  // failed save: don't leave the partial file
    }
  }

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  std::ofstream& stream() { return out_; }

  /// Flush, verify the stream, and rename into place. Throws on any failure
  /// (the destructor then cleans up the tmp and the old checkpoint survives).
  void commit() {
    out_.flush();
    if (!out_) throw std::runtime_error(std::string(who_) + ": write failed for " + path_);
    out_.close();
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
      throw std::runtime_error(std::string(who_) + ": cannot rename " + tmp_ + " to " + path_);
    }
    committed_ = true;
  }

 private:
  std::string path_;
  std::string tmp_;
  const char* who_;
  std::ofstream out_;
  bool committed_ = false;
};

/// Save one flat parameter vector.
void save_params(const std::string& path, const std::vector<float>& params);

/// Load one flat parameter vector; throws std::runtime_error on missing
/// file, bad magic, unsupported version, size mismatch or checksum failure.
[[nodiscard]] std::vector<float> load_params(const std::string& path);

/// Save a fleet (per-agent models, all the same dimension).
void save_fleet(const std::string& path, const std::vector<std::vector<float>>& models);

/// Load a fleet saved with save_fleet.
[[nodiscard]] std::vector<std::vector<float>> load_fleet(const std::string& path);

/// Crash-safe opaque-blob checkpoint: `magic`, the format version, the body
/// length and a FNV-1a checksum frame an arbitrary codec buffer. The S-RECOV
/// run-state and per-agent snapshot files are blobs with their own magics.
void save_blob(const std::string& path, std::uint64_t magic, const ByteBuffer& body,
               const char* who);

/// Load a blob saved with save_blob; throws std::runtime_error (prefixed
/// with `who`) on missing file, wrong magic, unsupported version, truncation
/// or checksum mismatch.
[[nodiscard]] ByteBuffer load_blob(const std::string& path, std::uint64_t magic,
                                   const char* who);

/// FNV-1a over the raw bytes of a float vector (exposed for tests).
[[nodiscard]] std::uint64_t fnv1a(const std::vector<float>& data);

}  // namespace pdsl::io
