#pragma once
// Checkpointing: persist and restore flat parameter vectors (single models
// or a whole fleet of per-agent models mid-experiment). Binary format with a
// magic header, dimension metadata and a FNV-1a content checksum so that a
// truncated or corrupted file fails loudly instead of producing silently
// wrong models.
//
// Saves are crash-safe: bytes stream into a `<path>.tmp` sibling which is
// std::rename'd over the destination only after a verified flush, so a crash
// mid-save never clobbers the previous checkpoint and readers never see a
// half-written file. A failed save removes its own .tmp.

#include <cstdint>
#include <string>
#include <vector>

namespace pdsl::io {

/// Save one flat parameter vector.
void save_params(const std::string& path, const std::vector<float>& params);

/// Load one flat parameter vector; throws std::runtime_error on missing
/// file, bad magic, size mismatch or checksum failure.
[[nodiscard]] std::vector<float> load_params(const std::string& path);

/// Save a fleet (per-agent models, all the same dimension).
void save_fleet(const std::string& path, const std::vector<std::vector<float>>& models);

/// Load a fleet saved with save_fleet.
[[nodiscard]] std::vector<std::vector<float>> load_fleet(const std::string& path);

/// FNV-1a over the raw bytes of a float vector (exposed for tests).
[[nodiscard]] std::uint64_t fnv1a(const std::vector<float>& data);

}  // namespace pdsl::io
