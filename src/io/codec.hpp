#pragma once
// Shared little-endian binary codec primitives for the io/ persistence layer
// and the fleet wire format: fixed-width integer and float-payload
// append/read over byte buffers, plus the FNV-1a checksum used by every
// on-disk and on-wire frame. Header-only so stream-based (checkpoint) and
// buffer-based (wire) users share one implementation.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdsl::io {

using ByteBuffer = std::vector<std::uint8_t>;

/// FNV-1a 64-bit over raw bytes.
[[nodiscard]] inline std::uint64_t fnv1a_bytes(const void* data, std::size_t n) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

inline void append_raw(ByteBuffer& buf, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buf.insert(buf.end(), bytes, bytes + n);
}

inline void append_u8(ByteBuffer& buf, std::uint8_t v) { buf.push_back(v); }

inline void append_u32(ByteBuffer& buf, std::uint32_t v) { append_raw(buf, &v, sizeof(v)); }

inline void append_u64(ByteBuffer& buf, std::uint64_t v) { append_raw(buf, &v, sizeof(v)); }

/// Doubles travel as their raw IEEE-754 bit pattern (bit-exact round-trip;
/// the recovery layer persists RDP accumulators and metric doubles this way).
inline void append_f64(ByteBuffer& buf, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(buf, bits);
}

inline void append_string(ByteBuffer& buf, const std::string& s) {
  append_u32(buf, static_cast<std::uint32_t>(s.size()));
  append_raw(buf, s.data(), s.size());
}

inline void append_floats(ByteBuffer& buf, const std::vector<float>& v) {
  append_u64(buf, v.size());
  append_raw(buf, v.data(), v.size() * sizeof(float));
}

/// Sequential reader over a byte buffer; every read throws std::runtime_error
/// naming `what` on truncation.
class ByteReader {
 public:
  ByteReader(const ByteBuffer& buf, const char* who) : buf_(&buf), who_(who) {}

  void read_raw(void* out, std::size_t n, const char* what) {
    if (pos_ + n > buf_->size()) {
      throw std::runtime_error(std::string(who_) + ": truncated reading " + what);
    }
    std::memcpy(out, buf_->data() + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::uint8_t read_u8(const char* what) {
    std::uint8_t v = 0;
    read_raw(&v, sizeof(v), what);
    return v;
  }

  [[nodiscard]] std::uint32_t read_u32(const char* what) {
    std::uint32_t v = 0;
    read_raw(&v, sizeof(v), what);
    return v;
  }

  [[nodiscard]] std::uint64_t read_u64(const char* what) {
    std::uint64_t v = 0;
    read_raw(&v, sizeof(v), what);
    return v;
  }

  [[nodiscard]] double read_f64(const char* what) {
    const std::uint64_t bits = read_u64(what);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string read_string(const char* what) {
    const auto n = read_u32(what);
    std::string s(n, '\0');
    read_raw(s.data(), n, what);
    return s;
  }

  [[nodiscard]] std::vector<float> read_floats(const char* what) {
    const auto n = read_u64(what);
    if (n > (buf_->size() - pos_) / sizeof(float)) {
      throw std::runtime_error(std::string(who_) + ": truncated reading " + what);
    }
    std::vector<float> v(static_cast<std::size_t>(n));
    read_raw(v.data(), v.size() * sizeof(float), what);
    return v;
  }

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == buf_->size(); }

 private:
  const ByteBuffer* buf_;
  const char* who_;
  std::size_t pos_ = 0;
};

}  // namespace pdsl::io
