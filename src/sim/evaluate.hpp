#pragma once
// Shared evaluation helpers: accuracy/loss of a flat parameter vector on a
// dataset (optionally subsampled), used for test metrics and for the Shapley
// characteristic function's validation scoring.

#include <vector>

#include "data/dataset.hpp"
#include "nn/model.hpp"

namespace pdsl::sim {

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
  std::size_t samples = 0;
};

/// Evaluate `params` (loaded into `workspace`) on up to `max_samples` of `ds`
/// (0 = all), in batches of `batch`.
EvalResult evaluate(nn::Model& workspace, const std::vector<float>& params,
                    const data::Dataset& ds, std::size_t max_samples = 0,
                    std::size_t batch = 128);

/// A fixed evaluation batch: materialized once, reused many times. This is
/// what PDSL's per-round characteristic function evaluates coalitions on.
struct FixedBatch {
  Tensor x;
  std::vector<int> y;

  static FixedBatch from(const data::Dataset& ds, const std::vector<std::size_t>& idx);
};

/// Accuracy of `params` on a fixed batch.
double accuracy_on(nn::Model& workspace, const std::vector<float>& params, const FixedBatch& b);

/// Loss of `params` on a fixed batch.
double loss_on(nn::Model& workspace, const std::vector<float>& params, const FixedBatch& b);

/// S-SHAP batched coalition scorer. Scores K flat parameter vectors (the
/// coalition-average virtual models of one agent) on a FixedBatch in one
/// pass: the dominant first Linear layer runs as a SINGLE blocked GEMM over
/// the K models' vertically stacked weight matrices — C(N, K·out) =
/// X(N, in) · Wcat(K·out, in)^T — and later (small) layers run per-model with
/// weights read in place from each flat vector. Because every output element
/// of kernels::sgemm_transpose_b is an independent double-accumulated dot
/// product, the stacked call is bit-identical to K separate Linear::forward
/// calls; activations and the loss replicate the nn:: implementations
/// elementwise, so accuracies()/losses() equal accuracy_on()/loss_on()
/// exactly, not approximately.
///
/// Supports models that are a chain of {Flatten, Linear, ReLU, Tanh}
/// (the zoo's mlp and logistic). For anything else — the CNNs —
/// batchable() is false and callers fall back to sequential scoring.
class CoalitionBatchEvaluator {
 public:
  /// True iff `model` is a layer chain this evaluator can replicate.
  [[nodiscard]] static bool batchable(const nn::Model& model);

  /// `model` provides the layer plan (architecture only; its parameter
  /// values are never read). `val` must outlive the evaluator.
  /// `weight_budget_bytes` caps the stacked first-layer weight block per GEMM
  /// call: oversized batches are split into cache-resident chunks (splitting
  /// along the model axis touches no reduction, so results are unchanged).
  CoalitionBatchEvaluator(const nn::Model& model, const FixedBatch& val,
                          std::size_t weight_budget_bytes = 256 * 1024);

  /// Validation accuracy of each flat parameter vector, in order.
  std::vector<double> accuracies(const std::vector<const std::vector<float>*>& params);

  /// Mean validation loss of each flat parameter vector, in order.
  std::vector<double> losses(const std::vector<const std::vector<float>*>& params);

  /// S-SHAP "linear" mode. The first Linear layer is linear in its weights,
  /// so a coalition-average model's first-layer pre-activation equals the
  /// mean of the members' pre-activations: X·mean(W_j)^T + mean(b_j) =
  /// mean(X·W_j^T + b_j). set_members() runs the first layer ONCE per member
  /// (p stacked GEMMs); coalition_accuracies()/losses() then score each
  /// coalition mask with a cheap (N, out) average + the small later layers,
  /// skipping the dominant first-layer GEMM and the full-parameter mean_of
  /// per coalition entirely. Mathematically identical to averaging weights
  /// first, but float addition does not distribute, so scores differ from
  /// accuracies()/losses() at ulp level — callers opt in via
  /// --shapley-eval linear, and the bit-identity contract stays with the
  /// "batched" mode. Deterministic: members fold in ascending index order.
  /// `members` must outlive the scoring calls; masks are bitmasks over the
  /// member indices (bit k = members[k]).
  void set_members(const std::vector<const std::vector<float>*>& members);
  std::vector<double> coalition_accuracies(const std::vector<std::uint64_t>& masks);
  std::vector<double> coalition_losses(const std::vector<std::uint64_t>& masks);

 private:
  enum class Op { kLinear, kRelu, kTanh };
  struct Step {
    Op op;
    std::size_t linear = 0;  ///< index into linears_ when op == kLinear
  };
  struct Lin {
    std::size_t in = 0, out = 0;
    std::size_t w_off = 0, b_off = 0;  ///< offsets into the flat param vector
  };

  std::vector<double> scores(const std::vector<const std::vector<float>*>& params,
                             bool want_loss);
  std::vector<double> coalition_scores(const std::vector<std::uint64_t>& masks,
                                       bool want_loss);
  /// First Linear over all of `params` via cache-budgeted stacked GEMMs,
  /// leaving per-model contiguous (K, N, out) pre-activations in `dst`.
  void first_layer_into(const std::vector<const std::vector<float>*>& params,
                        std::vector<float>& dst);
  /// Run the post-first-Linear layer chain on the single model whose
  /// activations start in buf_a_ (rows_, first-out) and whose later-layer
  /// parameters come from `flat` (offset-addressed like a full flat vector).
  double score_single(const float* flat, bool want_loss);

  const FixedBatch* val_;
  std::size_t rows_ = 0;         ///< validation samples N
  std::size_t in_features_ = 0;  ///< features per sample
  std::size_t num_params_ = 0;   ///< expected flat vector length
  std::size_t classes_ = 0;      ///< width of the final activations
  std::vector<Step> steps_;
  std::vector<Lin> linears_;
  std::size_t weight_budget_bytes_ = 0;

  // Scratch reused across calls: stacked first-layer weights, the mixed
  // (N, K·out) GEMM output, and per-model ping-pong activation buffers.
  std::vector<float> wcat_, mixed_, buf_a_, buf_b_;
  // Linear mode: member pointers, their precomputed first-layer
  // pre-activations (p, N, out), and the coalition-mean tail parameters.
  std::vector<const std::vector<float>*> members_;
  std::vector<float> member_z_, tail_buf_;
  Tensor logits_;
  nn::SoftmaxCrossEntropy loss_;
};

}  // namespace pdsl::sim
