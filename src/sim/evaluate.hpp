#pragma once
// Shared evaluation helpers: accuracy/loss of a flat parameter vector on a
// dataset (optionally subsampled), used for test metrics and for the Shapley
// characteristic function's validation scoring.

#include <vector>

#include "data/dataset.hpp"
#include "nn/model.hpp"

namespace pdsl::sim {

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
  std::size_t samples = 0;
};

/// Evaluate `params` (loaded into `workspace`) on up to `max_samples` of `ds`
/// (0 = all), in batches of `batch`.
EvalResult evaluate(nn::Model& workspace, const std::vector<float>& params,
                    const data::Dataset& ds, std::size_t max_samples = 0,
                    std::size_t batch = 128);

/// A fixed evaluation batch: materialized once, reused many times. This is
/// what PDSL's per-round characteristic function evaluates coalitions on.
struct FixedBatch {
  Tensor x;
  std::vector<int> y;

  static FixedBatch from(const data::Dataset& ds, const std::vector<std::size_t>& idx);
};

/// Accuracy of `params` on a fixed batch.
double accuracy_on(nn::Model& workspace, const std::vector<float>& params, const FixedBatch& b);

/// Loss of `params` on a fixed batch.
double loss_on(nn::Model& workspace, const std::vector<float>& params, const FixedBatch& b);

}  // namespace pdsl::sim
