#include "sim/evaluate.hpp"

#include <algorithm>

namespace pdsl::sim {

EvalResult evaluate(nn::Model& workspace, const std::vector<float>& params,
                    const data::Dataset& ds, std::size_t max_samples, std::size_t batch) {
  workspace.set_flat_params(params);
  const std::size_t n = max_samples == 0 ? ds.size() : std::min(max_samples, ds.size());
  EvalResult res;
  res.samples = n;
  if (n == 0) return res;
  double loss_acc = 0.0;
  double hits = 0.0;
  for (std::size_t off = 0; off < n; off += batch) {
    const std::size_t take = std::min(batch, n - off);
    std::vector<std::size_t> idx(take);
    for (std::size_t k = 0; k < take; ++k) idx[k] = off + k;
    const Tensor x = ds.batch_features(idx);
    const auto y = ds.batch_labels(idx);
    loss_acc += workspace.loss(x, y) * static_cast<double>(take);
    hits += workspace.accuracy(x, y) * static_cast<double>(take);
  }
  res.loss = loss_acc / static_cast<double>(n);
  res.accuracy = hits / static_cast<double>(n);
  return res;
}

FixedBatch FixedBatch::from(const data::Dataset& ds, const std::vector<std::size_t>& idx) {
  return FixedBatch{ds.batch_features(idx), ds.batch_labels(idx)};
}

double accuracy_on(nn::Model& workspace, const std::vector<float>& params, const FixedBatch& b) {
  workspace.set_flat_params(params);
  return workspace.accuracy(b.x, b.y);
}

double loss_on(nn::Model& workspace, const std::vector<float>& params, const FixedBatch& b) {
  workspace.set_flat_params(params);
  return workspace.loss(b.x, b.y);
}

}  // namespace pdsl::sim
