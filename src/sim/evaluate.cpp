#include "sim/evaluate.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "kernels/gemm.hpp"
#include "nn/linear.hpp"

namespace pdsl::sim {

EvalResult evaluate(nn::Model& workspace, const std::vector<float>& params,
                    const data::Dataset& ds, std::size_t max_samples, std::size_t batch) {
  workspace.set_flat_params(params);
  const std::size_t n = max_samples == 0 ? ds.size() : std::min(max_samples, ds.size());
  EvalResult res;
  res.samples = n;
  if (n == 0) return res;
  double loss_acc = 0.0;
  double hits = 0.0;
  for (std::size_t off = 0; off < n; off += batch) {
    const std::size_t take = std::min(batch, n - off);
    std::vector<std::size_t> idx(take);
    for (std::size_t k = 0; k < take; ++k) idx[k] = off + k;
    const Tensor x = ds.batch_features(idx);
    const auto y = ds.batch_labels(idx);
    loss_acc += workspace.loss(x, y) * static_cast<double>(take);
    hits += workspace.accuracy(x, y) * static_cast<double>(take);
  }
  res.loss = loss_acc / static_cast<double>(n);
  res.accuracy = hits / static_cast<double>(n);
  return res;
}

FixedBatch FixedBatch::from(const data::Dataset& ds, const std::vector<std::size_t>& idx) {
  return FixedBatch{ds.batch_features(idx), ds.batch_labels(idx)};
}

double accuracy_on(nn::Model& workspace, const std::vector<float>& params, const FixedBatch& b) {
  workspace.set_flat_params(params);
  return workspace.accuracy(b.x, b.y);
}

double loss_on(nn::Model& workspace, const std::vector<float>& params, const FixedBatch& b) {
  workspace.set_flat_params(params);
  return workspace.loss(b.x, b.y);
}

namespace {

/// Lane-parallel float GEMM for the linear coalition path's small later
/// layers: out(rows, n) = a(rows, k) * b(n, k)^T + bias(n). Eight fixed
/// partial-sum lanes with a fixed-order final reduction — deterministic
/// (identical result every run), auto-vectorizable by the compiler, and
/// ~an order of magnitude faster here than the double-accumulated kernel,
/// which serializes the reduction. Only the tolerance-banded linear mode
/// uses this; the bit-identity contract paths keep kernels::.
void tail_linear_lanes(std::size_t rows, std::size_t k, std::size_t n, const float* a,
                       const float* b, const float* bias, float* out) {
  constexpr std::size_t kLanes = 8;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* ar = a + r * k;
    float* or_ = out + r * n;
    for (std::size_t o = 0; o < n; ++o) {
      const float* br = b + o * k;
      float acc[kLanes] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
      const std::size_t whole = k - k % kLanes;
      for (std::size_t c = 0; c < whole; c += kLanes) {
        for (std::size_t l = 0; l < kLanes; ++l) acc[l] += ar[c + l] * br[c + l];
      }
      for (std::size_t c = whole; c < k; ++c) acc[c - whole] += ar[c] * br[c];
      // Fixed pairwise reduction tree: ((0+4)+(2+6)) + ((1+5)+(3+7)).
      for (std::size_t l = 0; l < kLanes / 2; ++l) acc[l] += acc[l + kLanes / 2];
      acc[0] += acc[2];
      acc[1] += acc[3];
      or_[o] = bias[o] + (acc[0] + acc[1]);
    }
  }
}

}  // namespace

bool CoalitionBatchEvaluator::batchable(const nn::Model& model) {
  bool has_linear = false;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const std::string name = model.layer(i).name();
    if (name == "Linear") {
      has_linear = true;
    } else if (name == "ReLU" || name == "Tanh") {
      // The stacked-GEMM plan applies the first Linear directly to the raw
      // input, so an activation BEFORE the first Linear is unsupported.
      if (!has_linear) return false;
    } else if (name != "Flatten") {
      return false;  // Conv2D / MaxPool2D / Dropout: sequential fallback
    }
  }
  return has_linear;
}

CoalitionBatchEvaluator::CoalitionBatchEvaluator(const nn::Model& model, const FixedBatch& val,
                                                 std::size_t weight_budget_bytes)
    : val_(&val), weight_budget_bytes_(weight_budget_bytes) {
  if (weight_budget_bytes == 0) {
    throw std::invalid_argument("CoalitionBatchEvaluator: zero weight budget");
  }
  if (!batchable(model)) {
    throw std::invalid_argument(
        "CoalitionBatchEvaluator: model has layers outside {Flatten, Linear, ReLU, Tanh}");
  }
  if (val.x.rank() == 0 || val.x.dim(0) == 0) {
    throw std::invalid_argument("CoalitionBatchEvaluator: empty validation batch");
  }
  rows_ = val.x.dim(0);
  in_features_ = val.x.numel() / rows_;
  // Build the layer plan. Flatten is a pure reshape of contiguous row-major
  // data, invisible at the raw-buffer level, so it is dropped from the plan.
  std::size_t width = in_features_;
  std::size_t off = 0;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const std::string name = model.layer(i).name();
    if (name == "Flatten") continue;
    if (name == "Linear") {
      const auto* lin = dynamic_cast<const nn::Linear*>(&model.layer(i));
      if (lin == nullptr) throw std::logic_error("CoalitionBatchEvaluator: Linear cast failed");
      if (lin->in_features() != width) {
        throw std::invalid_argument("CoalitionBatchEvaluator: layer width mismatch");
      }
      Lin l;
      l.in = lin->in_features();
      l.out = lin->out_features();
      l.w_off = off;
      l.b_off = off + l.out * l.in;
      off += l.out * l.in + l.out;  // flat layout: weight then bias (all_params order)
      steps_.push_back(Step{Op::kLinear, linears_.size()});
      linears_.push_back(l);
      width = l.out;
    } else if (name == "ReLU") {
      steps_.push_back(Step{Op::kRelu, 0});
    } else {  // Tanh
      steps_.push_back(Step{Op::kTanh, 0});
    }
  }
  num_params_ = off;
  classes_ = width;
  logits_ = Tensor(Shape{rows_, classes_});
}

std::vector<double> CoalitionBatchEvaluator::accuracies(
    const std::vector<const std::vector<float>*>& params) {
  return scores(params, /*want_loss=*/false);
}

std::vector<double> CoalitionBatchEvaluator::losses(
    const std::vector<const std::vector<float>*>& params) {
  return scores(params, /*want_loss=*/true);
}

std::vector<double> CoalitionBatchEvaluator::scores(
    const std::vector<const std::vector<float>*>& params, bool want_loss) {
  const std::size_t count = params.size();
  if (count == 0) return {};
  for (const auto* p : params) {
    if (p == nullptr || p->size() != num_params_) {
      throw std::invalid_argument("CoalitionBatchEvaluator: bad flat param vector");
    }
  }

  first_layer_into(params, buf_a_);

  std::vector<float>* cur = &buf_a_;
  std::vector<float>* nxt = &buf_b_;
  bool first_linear_seen = false;
  for (const Step& step : steps_) {
    if (step.op == Op::kLinear && !first_linear_seen) {
      first_linear_seen = true;  // already applied above
      continue;
    }
    switch (step.op) {
      case Op::kRelu:
        // nn::ReLU::forward zeroes every element with out[i] <= 0.
        for (float& v : *cur) {
          if (!(v > 0.0f)) v = 0.0f;
        }
        break;
      case Op::kTanh:
        for (float& v : *cur) v = std::tanh(v);
        break;
      case Op::kLinear: {
        const Lin& l = linears_[step.linear];
        nxt->resize(count * rows_ * l.out);
        for (std::size_t k = 0; k < count; ++k) {
          float* out = nxt->data() + k * rows_ * l.out;
          for (std::size_t r = 0; r < rows_; ++r) {
            std::memcpy(out + r * l.out, params[k]->data() + l.b_off, l.out * sizeof(float));
          }
          kernels::sgemm_transpose_b(rows_, l.in, l.out, cur->data() + k * rows_ * l.in,
                                     params[k]->data() + l.w_off, out, /*accumulate=*/true);
        }
        std::swap(cur, nxt);
        break;
      }
    }
  }

  // Per-model logits -> the same SoftmaxCrossEntropy the sequential path runs.
  std::vector<double> out(count, 0.0);
  for (std::size_t k = 0; k < count; ++k) {
    const float* src = cur->data() + k * rows_ * classes_;
    std::copy(src, src + rows_ * classes_, logits_.vec().begin());
    const double loss_value = loss_.forward(logits_, val_->y);
    out[k] = want_loss ? loss_value : loss_.accuracy();
  }
  return out;
}

void CoalitionBatchEvaluator::first_layer_into(
    const std::vector<const std::vector<float>*>& params, std::vector<float>& dst) {
  // First Linear: stacked GEMMs. Stack (out, in) weight matrices vertically
  // into Wcat(C·out, in); every element of the (N, C·out) product is an
  // independent double-accumulated dot, so this is bit-identical to separate
  // per-model GEMMs. The stack is chunked so Wcat stays within the cache
  // budget: an unchunked stack of hundreds of models is streamed from memory
  // once per output-row tile, which is SLOWER than the sequential path whose
  // single weight block is L1-resident.
  const std::size_t count = params.size();
  const Lin& l0 = linears_[0];
  const std::size_t weight_bytes = l0.out * l0.in * sizeof(float);
  const std::size_t chunk_models =
      std::max<std::size_t>(1, weight_budget_bytes_ / weight_bytes);
  const std::size_t width = l0.out;
  dst.resize(count * rows_ * width);
  for (std::size_t base = 0; base < count; base += chunk_models) {
    const std::size_t cnt = std::min(chunk_models, count - base);
    wcat_.resize(cnt * l0.out * l0.in);
    for (std::size_t k = 0; k < cnt; ++k) {
      std::memcpy(wcat_.data() + k * l0.out * l0.in, params[base + k]->data() + l0.w_off,
                  l0.out * l0.in * sizeof(float));
    }
    mixed_.resize(rows_ * cnt * l0.out);
    for (std::size_t r = 0; r < rows_; ++r) {
      float* row = mixed_.data() + r * cnt * l0.out;
      for (std::size_t k = 0; k < cnt; ++k) {
        std::memcpy(row + k * l0.out, params[base + k]->data() + l0.b_off,
                    l0.out * sizeof(float));
      }
    }
    kernels::sgemm_transpose_b(rows_, in_features_, cnt * l0.out, val_->x.data(),
                               wcat_.data(), mixed_.data(), /*accumulate=*/true);

    // De-interleave (N, C·out) into per-model contiguous (K, N, out) blocks
    // so later layers can run plain per-model GEMMs.
    for (std::size_t r = 0; r < rows_; ++r) {
      const float* row = mixed_.data() + r * cnt * width;
      for (std::size_t k = 0; k < cnt; ++k) {
        std::memcpy(dst.data() + ((base + k) * rows_ + r) * width, row + k * width,
                    width * sizeof(float));
      }
    }
  }
}

void CoalitionBatchEvaluator::set_members(
    const std::vector<const std::vector<float>*>& members) {
  if (members.empty() || members.size() > 63) {
    throw std::invalid_argument("CoalitionBatchEvaluator: need 1..63 members");
  }
  for (const auto* p : members) {
    if (p == nullptr || p->size() != num_params_) {
      throw std::invalid_argument("CoalitionBatchEvaluator: bad member param vector");
    }
  }
  members_ = members;
  first_layer_into(members_, member_z_);
}

std::vector<double> CoalitionBatchEvaluator::coalition_accuracies(
    const std::vector<std::uint64_t>& masks) {
  return coalition_scores(masks, /*want_loss=*/false);
}

std::vector<double> CoalitionBatchEvaluator::coalition_losses(
    const std::vector<std::uint64_t>& masks) {
  return coalition_scores(masks, /*want_loss=*/true);
}

std::vector<double> CoalitionBatchEvaluator::coalition_scores(
    const std::vector<std::uint64_t>& masks, bool want_loss) {
  if (members_.empty()) {
    throw std::logic_error("CoalitionBatchEvaluator: set_members() before coalition scoring");
  }
  const std::size_t p = members_.size();
  const Lin& l0 = linears_[0];
  const std::size_t z_stride = rows_ * l0.out;
  const std::size_t tail_off = l0.b_off + l0.out;  // everything after layer 0
  tail_buf_.resize(num_params_);
  std::vector<double> out(masks.size(), 0.0);
  for (std::size_t q = 0; q < masks.size(); ++q) {
    const std::uint64_t mask = masks[q];
    if (mask == 0 || (p < 64 && (mask >> p) != 0)) {
      throw std::out_of_range("CoalitionBatchEvaluator: coalition mask out of range");
    }
    const auto size = static_cast<std::size_t>(__builtin_popcountll(mask));
    // Mirror mean_of/weighted_sum: zero-init, then += (1/|S|) * member, in
    // ascending member order, so the fold order matches the batched path's
    // parameter averaging exactly (the only numeric delta is first-layer
    // distribution, documented in the header).
    const auto wf = static_cast<float>(1.0 / static_cast<double>(size));
    buf_a_.assign(z_stride, 0.0f);
    std::fill(tail_buf_.begin() + static_cast<std::ptrdiff_t>(tail_off), tail_buf_.end(),
              0.0f);
    for (std::size_t k = 0; k < p; ++k) {
      if (!(mask & (1ULL << k))) continue;
      const float* z = member_z_.data() + k * z_stride;
      for (std::size_t i = 0; i < z_stride; ++i) buf_a_[i] += wf * z[i];
      const float* flat = members_[k]->data();
      for (std::size_t i = tail_off; i < num_params_; ++i) tail_buf_[i] += wf * flat[i];
    }
    out[q] = score_single(tail_buf_.data(), want_loss);
  }
  return out;
}

double CoalitionBatchEvaluator::score_single(const float* flat, bool want_loss) {
  std::vector<float>* cur = &buf_a_;
  std::vector<float>* nxt = &buf_b_;
  bool first_linear_seen = false;
  for (const Step& step : steps_) {
    if (step.op == Op::kLinear && !first_linear_seen) {
      first_linear_seen = true;  // pre-activations already in buf_a_
      continue;
    }
    switch (step.op) {
      case Op::kRelu:
        for (float& v : *cur) v = std::max(v, 0.0f);
        break;
      case Op::kTanh:
        for (float& v : *cur) v = std::tanh(v);
        break;
      case Op::kLinear: {
        const Lin& l = linears_[step.linear];
        nxt->resize(rows_ * l.out);
        tail_linear_lanes(rows_, l.in, l.out, cur->data(), flat + l.w_off, flat + l.b_off,
                          nxt->data());
        std::swap(cur, nxt);
        break;
      }
    }
  }
  // Lean scoring straight off the logits buffer — this runs once per
  // coalition, so the full SoftmaxCrossEntropy machinery (tensor allocation,
  // per-sample vectors, 320 exp calls for a 32x10 batch) would dominate the
  // whole evaluation. Accuracy needs only the argmax (softmax is monotonic);
  // loss is the standard stabilized log-sum-exp, algebraically equal to
  // -log(softmax_y) and within float rounding of SoftmaxCrossEntropy.
  const float* logits = cur->data();
  const std::vector<int>& y = val_->y;
  if (!want_loss) {
    std::size_t hits = 0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const float* row = logits + r * classes_;
      const std::size_t pred = static_cast<std::size_t>(
          std::max_element(row, row + classes_) - row);
      hits += pred == static_cast<std::size_t>(y[r]) ? 1 : 0;
    }
    return static_cast<double>(hits) / static_cast<double>(rows_);
  }
  double loss = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const float* row = logits + r * classes_;
    const float mx = *std::max_element(row, row + classes_);
    double total = 0.0;
    for (std::size_t c = 0; c < classes_; ++c) total += std::exp(row[c] - mx);
    loss += std::log(total) - static_cast<double>(row[static_cast<std::size_t>(y[r])] - mx);
  }
  return loss / static_cast<double>(rows_);
}

}  // namespace pdsl::sim
