#include "sim/comm_cost.hpp"

#include <stdexcept>

namespace pdsl::sim {

double CommCostModel::transfer_time(std::size_t messages, std::size_t bytes) const {
  if (latency_s < 0.0 || bandwidth_bps <= 0.0 || parallel_links == 0) {
    throw std::invalid_argument("CommCostModel: bad parameters");
  }
  const double per_link_messages =
      static_cast<double>(messages) / static_cast<double>(parallel_links);
  const double per_link_bits =
      static_cast<double>(bytes) * 8.0 / static_cast<double>(parallel_links);
  return per_link_messages * latency_s + per_link_bits / bandwidth_bps;
}

CommCostModel datacenter_network(std::size_t parallel_links) {
  return CommCostModel{1e-4, 1e9, parallel_links};
}

CommCostModel wan_network(std::size_t parallel_links) {
  return CommCostModel{2e-2, 1e8, parallel_links};
}

CommCostModel lorawan_like(std::size_t parallel_links) {
  return CommCostModel{0.5, 5e4, parallel_links};
}

}  // namespace pdsl::sim
