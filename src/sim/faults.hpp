#pragma once
// Deterministic fault injection (S-FAULT). A FaultPlan describes every fault
// axis an experiment can turn on — link loss (global probability plus
// per-edge scheduled rules), bounded message delay measured in rounds, and
// agent churn (agents offline for whole round intervals) — together with the
// consumer-side staleness bound that governs how long a cached cross-gradient
// may substitute for a missing fresh one.
//
// Determinism contract (S-RT): every decision is a pure hash of
// (seed, identity, index) — drop/delay hash (seed, src, dst, per-edge message
// index), churn hashes (seed, agent, round-interval index). No shared RNG
// stream is ever advanced, so the injected fault set is bit-identical at any
// --threads width, across reruns with the same seed, and independent of the
// order in which decisions are queried. The drop hash is exactly the one
// sim::Network historically used for NetworkOptions::drop_prob, so legacy
// drop-only configurations reproduce the same drop sets.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/json.hpp"

namespace pdsl::sim {

/// Sentinel for "rule never expires".
inline constexpr std::size_t kNoRoundLimit = static_cast<std::size_t>(-1);

/// Per-edge drop override: directed edge src->dst drops with `drop_prob`
/// during rounds [from_round, until_round) (1-indexed, until exclusive).
/// Where a rule applies, the *larger* of rule and global probability wins.
struct EdgeFaultRule {
  std::size_t src = 0;
  std::size_t dst = 0;
  double drop_prob = 1.0;
  std::size_t from_round = 0;
  std::size_t until_round = kNoRoundLimit;

  [[nodiscard]] bool applies(std::size_t src_, std::size_t dst_, std::size_t round) const {
    return src == src_ && dst == dst_ && round >= from_round && round < until_round;
  }
};

struct FaultPlan {
  /// Probability an inter-agent message is silently lost (self-sends are
  /// never faulted).
  double drop_prob = 0.0;
  /// Per-edge scheduled overrides on top of drop_prob.
  std::vector<EdgeFaultRule> edge_rules;

  /// Probability a surviving inter-agent message is delayed; a delayed
  /// payload surfaces on a later round, uniformly 1..delay_rounds late.
  /// Both knobs must be set for delay to be active.
  double delay_prob = 0.0;
  std::size_t delay_rounds = 0;

  /// Agent churn: per (agent, interval) the agent is offline with
  /// churn_prob, where interval k covers rounds [1+k*churn_interval,
  /// 1+(k+1)*churn_interval). Offline agents freeze (no compute, no traffic);
  /// messages to/from them count as dropped.
  double churn_prob = 0.0;
  std::size_t churn_interval = 5;

  /// Consumer-side degradation: a receiver may reuse the last cross-gradient
  /// it got from a neighbor if it is at most this many rounds old (0 = never
  /// reuse; fall straight through to renormalization / self-fallback).
  std::size_t staleness_rounds = 0;

  /// Seed for every hash decision; 0 = derive from the experiment seed
  /// (Algorithm fills it in, preserving the legacy Network drop stream).
  std::uint64_t seed = 0;

  /// True if any *network-level* fault can fire (drop, delay, churn or an
  /// edge rule). staleness_rounds alone injects nothing.
  [[nodiscard]] bool any() const;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;

  /// Effective drop probability on directed edge src->dst at `round`.
  [[nodiscard]] double effective_drop_prob(std::size_t src, std::size_t dst,
                                           std::size_t round) const;

  /// Should the edge_index-th message ever sent on src->dst be dropped?
  [[nodiscard]] bool drop(std::size_t src, std::size_t dst, std::uint64_t edge_index,
                          std::size_t round) const;

  /// Rounds of delay for the edge_index-th message on src->dst: 0 = deliver
  /// within the sending round, d >= 1 = surface d rounds later.
  [[nodiscard]] std::size_t delay(std::size_t src, std::size_t dst,
                                  std::uint64_t edge_index) const;

  /// Is `agent` offline for the interval containing `round`?
  [[nodiscard]] bool offline(std::size_t agent, std::size_t round) const;
};

/// Serialize every field (including defaults); `edges` only when non-empty.
json::Value fault_plan_to_json(const FaultPlan& plan);

/// Strict parse: unknown keys throw std::invalid_argument, as config_io does.
FaultPlan fault_plan_from_json(const json::Value& v);

}  // namespace pdsl::sim
