#pragma once
// Deterministic fault injection (S-FAULT). A FaultPlan describes every fault
// axis an experiment can turn on — link loss (global probability plus
// per-edge scheduled rules), bounded message delay measured in rounds, and
// agent churn (agents offline for whole round intervals) — together with the
// consumer-side staleness bound that governs how long a cached cross-gradient
// may substitute for a missing fresh one.
//
// Determinism contract (S-RT): every decision is a pure hash of
// (seed, identity, index) — drop/delay hash (seed, src, dst, per-edge message
// index), churn hashes (seed, agent, round-interval index). No shared RNG
// stream is ever advanced, so the injected fault set is bit-identical at any
// --threads width, across reruns with the same seed, and independent of the
// order in which decisions are queried. The drop hash is exactly the one
// sim::Network historically used for NetworkOptions::drop_prob, so legacy
// drop-only configurations reproduce the same drop sets.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/json.hpp"

namespace pdsl::sim {

/// Sentinel for "rule never expires".
inline constexpr std::size_t kNoRoundLimit = static_cast<std::size_t>(-1);

/// Per-edge drop override: directed edge src->dst drops with `drop_prob`
/// during rounds [from_round, until_round) (1-indexed, until exclusive).
/// Where a rule applies, the *larger* of rule and global probability wins.
struct EdgeFaultRule {
  std::size_t src = 0;
  std::size_t dst = 0;
  double drop_prob = 1.0;
  std::size_t from_round = 0;
  std::size_t until_round = kNoRoundLimit;

  [[nodiscard]] bool applies(std::size_t src_, std::size_t dst_, std::size_t round) const {
    return src == src_ && dst == dst_ && round >= from_round && round < until_round;
  }
};

struct FaultPlan {
  /// Probability an inter-agent message is silently lost (self-sends are
  /// never faulted).
  double drop_prob = 0.0;
  /// Per-edge scheduled overrides on top of drop_prob.
  std::vector<EdgeFaultRule> edge_rules;

  /// Probability a surviving inter-agent message is delayed; a delayed
  /// payload surfaces on a later round, uniformly 1..delay_rounds late.
  /// Both knobs must be set for delay to be active.
  double delay_prob = 0.0;
  std::size_t delay_rounds = 0;

  /// Agent churn: per (agent, interval) the agent is offline with
  /// churn_prob, where interval k covers rounds [1+k*churn_interval,
  /// 1+(k+1)*churn_interval). Offline agents freeze (no compute, no traffic);
  /// messages to/from them count as dropped.
  double churn_prob = 0.0;
  std::size_t churn_interval = 5;

  /// Consumer-side degradation: a receiver may reuse the last cross-gradient
  /// it got from a neighbor if it is at most this many rounds old (0 = never
  /// reuse; fall straight through to renormalization / self-fallback).
  std::size_t staleness_rounds = 0;

  /// Seed for every hash decision; 0 = derive from the experiment seed
  /// (Algorithm fills it in, preserving the legacy Network drop stream).
  std::uint64_t seed = 0;

  /// True if any *network-level* fault can fire (drop, delay, churn or an
  /// edge rule). staleness_rounds alone injects nothing.
  [[nodiscard]] bool any() const;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;

  /// Effective drop probability on directed edge src->dst at `round`.
  [[nodiscard]] double effective_drop_prob(std::size_t src, std::size_t dst,
                                           std::size_t round) const;

  /// Should the edge_index-th message ever sent on src->dst be dropped?
  [[nodiscard]] bool drop(std::size_t src, std::size_t dst, std::uint64_t edge_index,
                          std::size_t round) const;

  /// Rounds of delay for the edge_index-th message on src->dst: 0 = deliver
  /// within the sending round, d >= 1 = surface d rounds later.
  [[nodiscard]] std::size_t delay(std::size_t src, std::size_t dst,
                                  std::uint64_t edge_index) const;

  /// Is `agent` offline for the interval containing `round`?
  [[nodiscard]] bool offline(std::size_t agent, std::size_t round) const;
};

/// Serialize every field (including defaults); `edges` only when non-empty.
json::Value fault_plan_to_json(const FaultPlan& plan);

/// Strict parse: unknown keys throw std::invalid_argument, as config_io does.
FaultPlan fault_plan_from_json(const json::Value& v);

// ---------------------------------------------------------------------------
// S-BYZ: Byzantine adversary injection. Where FaultPlan models *benign*
// failures (lost/slow links, churn), an AdversaryPlan assigns some agents an
// adversarial role: they follow the protocol but corrupt the payloads they
// send on the contribution channel (see sim::Channel). Like every fault axis,
// who attacks and with what is a pure function of (seed, agent, round) plus
// the message identity, so attack traces are bit-identical at any --threads.
// ---------------------------------------------------------------------------

/// What a Byzantine sender does to an outgoing contribution payload.
enum class ByzMode {
  kNone = 0,     ///< honest (the resolved role of a non-attacker)
  kSignFlip,     ///< g -> -scale * g (gradient poisoning; legacy PDSL attack)
  kScale,        ///< g -> +scale * g (boosted/inflated contribution)
  kNoise,        ///< g += N(0, scale^2) per coordinate (large-Gaussian attack)
  kNanBomb,      ///< payload replaced by alternating NaN / +-Inf
  kStaleReplay,  ///< resend the first payload ever sent on this (edge, tag kind)
};

[[nodiscard]] const char* byz_mode_to_string(ByzMode mode);
/// Throws std::invalid_argument on an unknown name.
[[nodiscard]] ByzMode byz_mode_from_string(const std::string& name);

/// One agent's adversarial assignment, active during [from_round, until_round).
struct ByzRole {
  std::size_t agent = 0;
  ByzMode mode = ByzMode::kSignFlip;
  double scale = 3.0;  ///< amplification / noise stddev (ignored by nan_bomb/replay)
  std::size_t from_round = 1;
  std::size_t until_round = kNoRoundLimit;
};

/// Who attacks, how, and when. Two layers: a global default (the first
/// round(frac * m) agents run `mode` from `onset`) plus explicit per-agent
/// `roles` overrides. An agent with any explicit role entry is governed by
/// those entries alone (honest outside their windows), so a plan can schedule
/// onset/offset attacks or mix modes across agents.
struct AdversaryPlan {
  double frac = 0.0;  ///< fraction of agents (lowest ids) attacking by default
  ByzMode mode = ByzMode::kSignFlip;
  double scale = 3.0;
  std::size_t onset = 1;  ///< first attacked round (1-indexed)
  std::size_t until_round = kNoRoundLimit;
  std::vector<ByzRole> roles;  ///< explicit per-agent overrides
  /// Seed for the noise-mode streams; 0 = derive from the merged FaultPlan
  /// seed (Network fills it in, salting internally).
  std::uint64_t seed = 0;

  /// True if any agent can ever attack (frac > 0 or explicit roles).
  [[nodiscard]] bool any() const;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;

  /// How many agents the frac default covers in an m-agent fleet.
  [[nodiscard]] std::size_t num_default_attackers(std::size_t m) const;

  /// Is `agent` ever Byzantine (in any round) under this plan?
  [[nodiscard]] bool is_byzantine(std::size_t agent, std::size_t m) const;

  /// The role `agent` plays at `round` (mode == kNone when honest then).
  [[nodiscard]] ByzRole role(std::size_t agent, std::size_t m, std::size_t round) const;

  /// Number of agents attacking at `round`.
  [[nodiscard]] std::size_t active_count(std::size_t m, std::size_t round) const;
};

// ---------------------------------------------------------------------------
// S-RECOV: unreliable-channel + crash axes. ChannelPlan models a *benign*
// lossy medium underneath the wire codec: bit-flip corruption (caught by the
// "PDSLWIR1" checksum, answered with bounded retransmission), frame
// duplication (deduplicated at the transport), and mailbox reordering.
// CrashPlan models fail-stop agents: a crashed agent loses its in-memory
// round state and is restored by recovery::RecoveryManager from periodic
// snapshots plus a neighbor resync. Both follow the S-FAULT determinism
// contract — every decision is a pure hash of (seed, identity, index).
// ---------------------------------------------------------------------------

/// Unreliable-channel model for inter-agent sends. Corruption applies per
/// *attempt* (so a retransmission re-rolls the dice with the attempt number
/// mixed into the hash); duplication/reorder apply per delivered message.
struct ChannelPlan {
  /// Probability a transmitted frame arrives with a flipped bit. The wire
  /// checksum detects the flip and the transport retransmits (NACK model).
  double corrupt_prob = 0.0;
  /// Probability a successfully delivered frame is also duplicated; the
  /// transport drops the duplicate copy (exactly-once mailbox delivery) but
  /// charges its bytes.
  double duplicate_prob = 0.0;
  /// Probability a delivered payload is enqueued at the *front* of the
  /// destination mailbox instead of the back.
  double reorder_prob = 0.0;
  /// Retransmission budget per message beyond the first attempt. When all
  /// 1 + max_retries attempts are corrupted the message is dropped and the
  /// receiver degrades through the PR-4 renormalization path.
  std::size_t max_retries = 3;
  /// Round-granular exponential backoff: attempt a (0-indexed) is delivered
  /// backoff_for(a) rounds late (0, 0, 1, 2, 4, ... capped at 8).
  [[nodiscard]] static std::size_t backoff_for(std::size_t attempt);
  /// Seed for every hash decision; 0 = derive from the merged FaultPlan seed
  /// (Network fills it in).
  std::uint64_t seed = 0;

  /// True if any channel impairment can fire.
  [[nodiscard]] bool any() const;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;

  /// Is attempt `attempt` of the edge_index-th message on src->dst corrupted?
  [[nodiscard]] bool corrupt(std::size_t src, std::size_t dst, std::uint64_t edge_index,
                             std::size_t attempt) const;

  /// Which bit of an n_bytes-long frame does that corruption flip?
  [[nodiscard]] std::size_t corrupt_bit(std::size_t src, std::size_t dst,
                                        std::uint64_t edge_index, std::size_t attempt,
                                        std::size_t n_bytes) const;

  /// Is the edge_index-th delivered message on src->dst duplicated in flight?
  [[nodiscard]] bool duplicate(std::size_t src, std::size_t dst,
                               std::uint64_t edge_index) const;

  /// Does the edge_index-th delivered message on src->dst jump the queue?
  [[nodiscard]] bool reorder(std::size_t src, std::size_t dst,
                             std::uint64_t edge_index) const;
};

/// Serialize every field (including defaults).
json::Value channel_plan_to_json(const ChannelPlan& plan);

/// Strict parse: unknown keys throw std::invalid_argument, as config_io does.
ChannelPlan channel_plan_from_json(const json::Value& v);

/// Fail-stop crash schedule. A crashed agent loses model / momentum /
/// cross-gradient cache / Shapley cache state at the top of the round and is
/// restored from its latest snapshot plus a neighbor resync.
struct CrashPlan {
  /// Per (agent, round) probability the agent's process dies and restarts.
  double crash_prob = 0.0;
  /// RecoveryManager snapshots every agent every this many rounds.
  std::size_t snapshot_every = 5;
  /// Seed for the crash hash; 0 = derive from the merged FaultPlan seed.
  std::uint64_t seed = 0;

  [[nodiscard]] bool any() const;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;

  /// Does `agent` crash at the top of `round`? Pure hash of
  /// (seed, agent, round), independent of query order and --threads.
  [[nodiscard]] bool crashes(std::size_t agent, std::size_t round) const;
};

/// Serialize every field (including defaults).
json::Value crash_plan_to_json(const CrashPlan& plan);

/// Strict parse: unknown keys throw std::invalid_argument, as config_io does.
CrashPlan crash_plan_from_json(const json::Value& v);

/// FNV-1a over the tag bytes: the per-message identity word for corruption
/// decisions. Tags embed the round (and sweep/event indices where a protocol
/// sends repeatedly), so (src, dst, tag) names each message uniquely without
/// any shared mutable state.
[[nodiscard]] std::uint64_t hash_tag(const std::string& tag);

/// Apply `role`'s corruption to `payload` in place (kStaleReplay and kNone
/// are no-ops here; replay needs the Network's payload history). The noise
/// mode draws from an Rng seeded by a pure hash of (seed, src, dst,
/// hash_tag(tag)), so corruption is independent of send interleaving.
void corrupt_payload(const ByzRole& role, std::uint64_t seed, std::size_t src,
                     std::size_t dst, std::uint64_t tag_hash, std::vector<float>& payload);

/// Serialize every scalar field; `roles` only when non-empty.
json::Value adversary_plan_to_json(const AdversaryPlan& plan);

/// Strict parse: unknown keys throw std::invalid_argument, as config_io does.
AdversaryPlan adversary_plan_from_json(const json::Value& v);

}  // namespace pdsl::sim
