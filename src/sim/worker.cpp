#include "sim/worker.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdsl::sim {

namespace {
constexpr std::size_t kEvalSubset = 96;  // fixed local subset for stable metrics
}

LocalWorker::LocalWorker(const nn::Model& model, const data::Dataset& ds,
                         std::vector<std::size_t> indices, std::size_t batch_size, Rng rng)
    : model_(model),
      ds_(&ds),
      sampler_(ds, indices, batch_size, rng.split(0xBA7C)),
      stateless_seed_(splitmix64(rng.seed() ^ 0x57A7E1E5ULL)),
      dim_(model.num_params()) {
  // Deterministic eval subset: first min(kEvalSubset, n) indices of the
  // agent's shard (shard order is already randomized by the partitioner).
  const std::size_t n = std::min(kEvalSubset, indices.size());
  std::vector<std::size_t> eval_idx(indices.begin(),
                                    indices.begin() + static_cast<std::ptrdiff_t>(n));
  eval_x_ = ds.batch_features(eval_idx);
  eval_y_ = ds.batch_labels(eval_idx);
}

void LocalWorker::draw_batch() {
  auto [x, y] = sampler_.sample();
  batch_x_ = std::move(x);
  batch_y_ = std::move(y);
  has_batch_ = true;
}

void LocalWorker::draw_batch(std::uint64_t salt) {
  Rng rng(splitmix64(stateless_seed_ ^ splitmix64(salt)));
  auto [x, y] = sampler_.sample_with(rng);
  batch_x_ = std::move(x);
  batch_y_ = std::move(y);
  has_batch_ = true;
}

void LocalWorker::ensure_batch() const {
  if (!has_batch_) throw std::logic_error("LocalWorker: draw_batch() before gradient/loss");
}

std::vector<float> LocalWorker::gradient(const std::vector<float>& params) {
  ensure_batch();
  model_.set_flat_params(params);
  model_.loss_and_backward(batch_x_, batch_y_);
  return model_.flat_grad();
}

double LocalWorker::batch_loss(const std::vector<float>& params) {
  ensure_batch();
  model_.set_flat_params(params);
  return model_.loss(batch_x_, batch_y_);
}

double LocalWorker::local_eval_loss(const std::vector<float>& params) {
  model_.set_flat_params(params);
  return model_.loss(eval_x_, eval_y_);
}

double LocalWorker::local_eval_accuracy(const std::vector<float>& params) {
  model_.set_flat_params(params);
  return model_.accuracy(eval_x_, eval_y_);
}

}  // namespace pdsl::sim
