#include "sim/worker_pool.hpp"

#include <algorithm>
#include <utility>

namespace pdsl::sim {

WorkerPool::WorkerPool(const nn::Model& init_model, const data::Dataset& train,
                       const std::vector<std::vector<std::size_t>>& partition, std::size_t batch,
                       Rng root, bool lazy, std::size_t cache_cap)
    : init_model_(init_model),
      train_(&train),
      partition_(&partition),
      batch_(batch),
      root_(root),
      lazy_(lazy),
      cache_cap_(cache_cap),
      slots_(partition.size()),
      last_used_(partition.size(), 0) {
  if (!lazy_) {
    for (std::size_t i = 0; i < slots_.size(); ++i) materialize(i);
  }
}

void WorkerPool::init(const nn::Model& init_model, const data::Dataset& train,
                      const std::vector<std::vector<std::size_t>>& partition, std::size_t batch,
                      Rng root, bool lazy, std::size_t cache_cap) {
  init_model_ = init_model;
  train_ = &train;
  partition_ = &partition;
  batch_ = batch;
  root_ = root;
  lazy_ = lazy;
  cache_cap_ = cache_cap;
  slots_.clear();
  slots_.resize(partition.size());
  last_used_.assign(partition.size(), 0);
  round_ = 0;
  resident_.store(0);
  peak_.store(0);
  if (!lazy_) {
    for (std::size_t i = 0; i < slots_.size(); ++i) materialize(i);
  }
}

LocalWorker& WorkerPool::materialize(std::size_t i) {
  // split() is const and pure in (seed, salt): re-materialization hands the
  // worker the exact RNG stream it got the first time.
  slots_[i] = std::make_unique<LocalWorker>(init_model_, *train_, (*partition_)[i], batch_,
                                            root_.split(0xD0 + i));
  const std::size_t now = resident_.fetch_add(1) + 1;
  std::size_t peak = peak_.load();
  while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
  }
  return *slots_[i];
}

LocalWorker& WorkerPool::get(std::size_t i) {
  if (slots_[i]) {
    last_used_[i] = round_;
    return *slots_[i];
  }
  LocalWorker& w = materialize(i);
  last_used_[i] = round_;
  return w;
}

void WorkerPool::prepare(const std::vector<unsigned char>& need, std::size_t round) {
  round_ = round;
  if (!lazy_) return;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (need.size() > i && need[i]) {
      if (!slots_[i]) materialize(i);
      last_used_[i] = round;
    }
  }
  if (cache_cap_ == 0) return;
  std::size_t resident = resident_.load();
  if (resident <= cache_cap_) return;
  // Evict dormant workers, oldest stamp first (ties by id for determinism).
  std::vector<std::pair<std::size_t, std::size_t>> dormant;  // (stamp, id)
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] && !(need.size() > i && need[i])) dormant.emplace_back(last_used_[i], i);
  }
  std::sort(dormant.begin(), dormant.end());
  for (const auto& [stamp, i] : dormant) {
    if (resident <= cache_cap_) break;
    slots_[i].reset();
    resident_.fetch_sub(1);
    --resident;
  }
}

std::size_t WorkerPool::materialized() const { return resident_.load(); }

}  // namespace pdsl::sim
