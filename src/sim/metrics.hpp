#pragma once
// Per-round experiment metrics: the quantities the paper's figures and tables
// report (average training loss, test accuracy) plus diagnostics (consensus
// distance, communication volume).

#include <cstddef>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "fleet/lazy_matrix.hpp"
#include "obs/phase.hpp"

namespace pdsl::sim {

struct RoundMetrics {
  std::size_t round = 0;
  double avg_loss = 0.0;        ///< mean over agents of F_i(x_i) on local eval data
  double test_accuracy = 0.0;   ///< mean over agents of accuracy(x_i) on the test set
  double consensus = 0.0;       ///< mean over agents of ||x_i - x_bar||_2
  double grad_norm = 0.0;       ///< ||grad of F at x_bar|| proxy if recorded (else 0)
  std::size_t messages = 0;     ///< cumulative network messages so far
  std::size_t bytes = 0;        ///< cumulative network bytes so far
  double elapsed_s = 0.0;       ///< cumulative run wall time after this round
  double round_s = 0.0;         ///< wall time of this round's run_round alone
  obs::PhaseTimings phases;     ///< where round_s went (S-OBS breakdown)
  // S-FAULT: dropped/delayed are cumulative network totals (like
  // messages/bytes); the rest are this round's degradation events.
  std::size_t dropped = 0;      ///< cumulative messages lost (drops + churn)
  std::size_t delayed = 0;      ///< cumulative messages delayed in flight
  std::size_t offline = 0;      ///< agents churned out this round
  std::size_t stale_reused = 0; ///< cached cross-gradients substituted this round
  std::size_t fallbacks = 0;    ///< self-gradient fallbacks this round
  // S-BYZ: adversary activity + defense screening.
  std::size_t byz_active = 0;   ///< agents with an active Byzantine role this round
  std::size_t corrupted = 0;    ///< cumulative payloads corrupted on the wire
  std::size_t rejected = 0;     ///< non-finite payloads refused this round
  std::size_t reclipped = 0;    ///< received gradients re-clipped to C this round
  double pi_attacker = 0.0;     ///< mean defense weight on attacker-origin edges
  double pi_honest = 0.0;       ///< mean defense weight on honest-origin edges
  // S-BENCH360: cumulative privacy budget spent through this round — the RDP
  // accountant's (epsilon, delta)-DP conversion at the run's delta after
  // composing one Gaussian-mechanism release per agent per round. 0 when the
  // run is non-private (sigma = 0). Monotonically non-decreasing.
  double epsilon_spent = 0.0;
  // S-SHAP: where this round's coalition scores came from (all agents). Zero
  // for algorithms without a Shapley phase; batched/cached/early-stop fields
  // are zero on the sequential reference path.
  std::size_t shapley_evals = 0;        ///< characteristic evaluations run
  std::size_t shapley_batched = 0;      ///< coalitions scored via stacked GEMM
  std::size_t shapley_cache_hits = 0;   ///< coalitions served by the cross-round cache
  std::size_t shapley_cache_misses = 0; ///< cache lookups that had to evaluate
  std::size_t shapley_early_stops = 0;  ///< agents whose MC sampler CI-stopped early
  // S-RECOV: unreliable-channel transport + crash/recovery activity.
  // Transport counters are cumulative network totals (like messages/bytes);
  // crashes/resyncs are this round's events.
  std::size_t retransmits = 0;      ///< cumulative frames resent after a NACK
  std::size_t corrupt_detected = 0; ///< cumulative checksum-caught bit flips
  std::size_t dup_dropped = 0;      ///< cumulative duplicate copies deduped
  std::size_t reordered = 0;        ///< cumulative front-of-queue deliveries
  std::size_t crashes = 0;          ///< agents crashed and restarted this round
  std::size_t resyncs = 0;          ///< crashed agents that got a neighbor resync
};

/// Mean over agents of ||x_i - mean_j x_j||.
double consensus_distance(const std::vector<std::vector<float>>& models);
double consensus_distance(const fleet::LazyMatrix& models);

/// Average of per-agent flat models.
std::vector<float> average_model(const std::vector<std::vector<float>>& models);
std::vector<float> average_model(const fleet::LazyMatrix& models);

/// Write a metrics series to CSV (columns: round, avg_loss, test_accuracy,
/// consensus, grad_norm, messages, bytes, dropped, delayed, offline,
/// stale_reused, fallbacks, byz_active, corrupted, rejected, reclipped,
/// pi_attacker, pi_honest, epsilon_spent, shapley_evals, shapley_batched,
/// shapley_cache_hits, shapley_cache_misses, shapley_early_stops, retransmits,
/// corrupt_detected, dup_dropped, reordered, crashes, resyncs, elapsed_s,
/// round_s, then one <phase>_s column per obs::Phase).
void write_metrics_csv(const std::string& path, const std::string& run_label,
                       const std::vector<RoundMetrics>& series);

}  // namespace pdsl::sim
