#pragma once
// Communication cost model: converts the network simulator's message/byte
// counters into estimated wall-clock time under a simple latency + bandwidth
// link model. The paper's motivation (the central-server bottleneck, sparse
// vs dense graphs) is about exactly this quantity; the simulator runs
// in-process, so time must be modeled rather than measured.

#include <cstddef>

namespace pdsl::sim {

struct CommCostModel {
  double latency_s = 1e-3;        ///< fixed per-message cost (propagation + handshake)
  double bandwidth_bps = 1e9;     ///< link throughput in bits/second
  std::size_t parallel_links = 1; ///< links that can transfer simultaneously

  /// Time to deliver `messages` totaling `bytes`, spread over the parallel
  /// links (per-link serialization, perfectly balanced).
  [[nodiscard]] double transfer_time(std::size_t messages, std::size_t bytes) const;

  /// Convenience: time per round given per-round traffic.
  [[nodiscard]] double round_time(std::size_t messages_per_round,
                                  std::size_t bytes_per_round) const {
    return transfer_time(messages_per_round, bytes_per_round);
  }
};

/// Presets.
CommCostModel datacenter_network(std::size_t parallel_links);  ///< 1 Gbps, 0.1 ms
CommCostModel wan_network(std::size_t parallel_links);         ///< 100 Mbps, 20 ms
CommCostModel lorawan_like(std::size_t parallel_links);        ///< 50 kbps, 500 ms

}  // namespace pdsl::sim
