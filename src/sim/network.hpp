#pragma once
// In-process message-passing network (S7). Algorithms may only move data
// between agents through send/receive on an edge of the topology — this keeps
// implementations honest about what is communicated (and lets us count
// messages/bytes, the "cost" axis of decentralized learning) even though
// everything runs in one process. Fault injection (S-FAULT) models unreliable
// links (drops, per-edge schedules), slow links (bounded delay in rounds) and
// agent churn, all driven by a deterministic FaultPlan.
//
// Thread-safety (S-RT): every public member is safe to call concurrently —
// one mutex guards the mailboxes and all counters, so parallel per-agent
// phases can send/receive without external locking. Determinism holds at any
// execution width: each directed edge is written by exactly one agent per
// phase (so per-mailbox FIFO order is fixed by that agent's own loop), and
// drop/delay/churn decisions are a pure hash of (seed, identity, index)
// rather than draws from a shared sequential RNG stream, so the set of
// faulted messages does not depend on the interleaving of senders.
// begin_round() sorts matured delayed messages by (src, dst, tag, per-edge
// index), erasing any trace of concurrent insertion order.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "compress/compressor.hpp"
#include "graph/topology.hpp"
#include "graph/view.hpp"
#include "io/codec.hpp"
#include "sim/faults.hpp"

namespace pdsl::sim {

/// S-BYZ: what a payload carries, from the adversary's point of view. A
/// Byzantine sender corrupts only kContribution traffic — the messages that
/// directly steer a receiver's update (cross-gradients for the PDSL/CGA
/// family, the gossiped model/tracker for plain mixing-matrix baselines) —
/// and follows the protocol on kState traffic (model broadcasts made so
/// neighbors can *compute* for it, PDSL's momentum/model gossip). This is the
/// stealthy gradient-poisoning threat model: visible state stays plausible,
/// the poison rides the update channel.
enum class Channel {
  kState,         ///< protocol bookkeeping; never corrupted
  kContribution,  ///< update-carrying payload; corrupted by an active attacker
};

struct NetworkOptions {
  /// Legacy alias for faults.drop_prob (kept so existing call sites and
  /// configs keep working); merged into `faults` by the constructor when
  /// faults.drop_prob is unset.
  double drop_prob = 0.0;
  std::uint64_t seed = 7;  ///< fault decision seed (faults.seed = 0 uses this)
  bool allow_self_send = true;
  /// Optional lossy channel compression (borrowed; must outlive the
  /// Network). Applied to every inter-agent payload; bytes_sent() then
  /// counts wire bytes under the scheme instead of dense floats.
  const compress::Compressor* compressor = nullptr;
  /// S-FAULT: deterministic drop/delay/churn injection.
  FaultPlan faults;
  /// S-BYZ: Byzantine roles; adversary.seed = 0 uses the merged faults.seed.
  AdversaryPlan adversary;
  /// S-SCALE: encode + decode + verify every send through the fleet wire
  /// format (fleet/wire.hpp); the delivered payload is the decoded copy, so
  /// any serialization defect fails the run loudly instead of silently.
  bool wire_roundtrip = false;
  /// S-RECOV: unreliable-channel model. When any() the inter-agent transport
  /// always wire-encodes, the checksum *detects* hash-driven bit flips
  /// instead of asserting, and a NACK/retransmit loop with bounded retries
  /// plus round-granular exponential backoff recovers; duplication and
  /// reorder impairments ride on top. channel.seed = 0 uses the merged
  /// faults.seed.
  ChannelPlan channel;
};

/// A delayed payload that matured: begin_round() hands these back to the
/// caller instead of injecting them into mailboxes, so mailboxes stay a
/// strictly intra-round structure and clear() keeps catching protocol bugs.
struct LateMessage {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::string tag;
  std::vector<float> payload;
  std::size_t sent_round = 0;
};

class Network {
 public:
  using Options = NetworkOptions;

  /// Accepts any topology view (dense graph::Topology or fleet::SparseGraph)
  /// and stores a clone, so callers may pass temporaries.
  explicit Network(const graph::TopologyView& topo, Options opts = {});

  /// Advance the round clock to `t` (1-indexed) and collect every delayed
  /// message that matures by round t, in deterministic (src, dst, tag,
  /// per-edge index) order. Churn decisions for sends during round t are
  /// evaluated against this clock.
  std::vector<LateMessage> begin_round(std::size_t t);

  /// Enqueue a payload from src to dst under `tag`. Throws if (src,dst) is
  /// not an edge (or self without allow_self_send). Returns false if the
  /// message was lost to fault injection (drop or an offline endpoint);
  /// returns true for delayed messages — they were sent, they just surface
  /// via a later begin_round(). When `channel` is kContribution and src has
  /// an active Byzantine role this round, the payload is corrupted at this
  /// boundary (after the drop decision, before any delay), deterministically
  /// in (seed, src, dst, tag).
  bool send(std::size_t src, std::size_t dst, const std::string& tag,
            std::vector<float> payload, Channel channel = Channel::kState);

  /// Dequeue the oldest message from src to dst under `tag`; nullopt if none
  /// arrived this round (never sent, dropped, or still in flight).
  std::optional<std::vector<float>> receive(std::size_t dst, std::size_t src,
                                            const std::string& tag);

  /// True if a message is waiting.
  [[nodiscard]] bool has_message(std::size_t dst, std::size_t src, const std::string& tag) const;

  /// Drop any undelivered mailbox messages (call between rounds to catch
  /// protocol bugs where a round leaves mail unread). Returns the number
  /// discarded. In-flight *delayed* messages are legitimately in transit:
  /// they are neither counted nor discarded (see in_flight()).
  std::size_t clear();

  [[nodiscard]] std::size_t messages_sent() const;
  [[nodiscard]] std::size_t messages_dropped() const;
  [[nodiscard]] std::size_t messages_delayed() const;
  /// S-BYZ: delivered (or in-flight) payloads corrupted by a Byzantine
  /// sender, cumulative.
  [[nodiscard]] std::size_t messages_corrupted() const;
  /// Delayed messages not yet matured by the last begin_round().
  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] std::size_t bytes_sent() const;
  /// S-SCALE wire-roundtrip counters (0 unless opts.wire_roundtrip or the
  /// channel transport is active).
  [[nodiscard]] std::size_t wire_messages() const;
  [[nodiscard]] std::size_t wire_bytes() const;
  /// S-RECOV transport counters (0 unless opts.channel.any()).
  [[nodiscard]] std::size_t retransmits() const;          ///< frames resent after a NACK
  [[nodiscard]] std::size_t corruptions_detected() const; ///< checksum-caught bit flips
  [[nodiscard]] std::size_t retry_exhausted() const;      ///< messages lost after all retries
  [[nodiscard]] std::size_t duplicates_dropped() const;   ///< in-flight dup copies deduped
  [[nodiscard]] std::size_t reorders() const;             ///< deliveries that jumped the queue
  [[nodiscard]] const graph::TopologyView& topology() const { return *topo_; }
  /// The merged fault plan actually in effect (legacy drop_prob folded in).
  [[nodiscard]] const FaultPlan& faults() const { return opts_.faults; }
  /// The adversary plan actually in effect (seed fallback folded in).
  [[nodiscard]] const AdversaryPlan& adversary() const { return opts_.adversary; }
  /// The channel plan actually in effect (seed fallback folded in).
  [[nodiscard]] const ChannelPlan& channel() const { return opts_.channel; }
  /// Round clock as of the last begin_round() (0 before the first round).
  [[nodiscard]] std::size_t round() const;

  /// S-RECOV checkpoint: append the network's dynamic state — round clock,
  /// every counter, per-edge message indices (they key drop/delay/corrupt
  /// decisions), in-flight delayed messages and the stale-replay history —
  /// to `buf`. Mailboxes must be empty (call between rounds); throws
  /// std::runtime_error otherwise.
  void save_state(io::ByteBuffer& buf) const;

  /// Restore state captured by save_state(); throws std::runtime_error on a
  /// malformed blob.
  void restore_state(io::ByteReader& r);

  /// Per-edge traffic totals (S-OBS): every (src,dst) pair that ever sent,
  /// including dropped messages (they consumed the wire).
  struct EdgeTraffic {
    std::size_t src = 0;
    std::size_t dst = 0;
    std::size_t messages = 0;
    std::size_t bytes = 0;
  };

  /// All edges with traffic, ordered by (src, dst).
  [[nodiscard]] std::vector<EdgeTraffic> edge_traffic() const;

  /// Wire bytes sent on the directed edge src->dst (0 if never used).
  [[nodiscard]] std::size_t bytes_between(std::size_t src, std::size_t dst) const;

  /// Fold per-edge byte totals into `obs::MetricsRegistry::global()` as
  /// counters named `net.bytes{edge=src->dst}` (plus `net.msgs{edge=...}`).
  void publish_edge_metrics(const std::string& prefix = "net") const;

 private:
  struct Key {
    std::size_t src;
    std::size_t dst;
    std::string tag;
    bool operator<(const Key& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return tag < o.tag;
    }
  };

  struct Pending {
    LateMessage msg;
    std::size_t mature_round = 0;  ///< first round the payload is visible
    std::uint64_t edge_index = 0;  ///< deterministic tiebreak for sorting
  };

  /// S-BYZ stale-replay history: the first payload a replaying attacker sent
  /// on (src, dst, tag kind), where "kind" is the tag up to its '@' (tags
  /// embed round indices, so the raw tag never repeats). Once an entry from
  /// an earlier round exists, every later send on the key resends it.
  struct ReplayKey {
    std::size_t src;
    std::size_t dst;
    std::string kind;
    bool operator<(const ReplayKey& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return kind < o.kind;
    }
  };
  struct ReplayEntry {
    std::vector<float> payload;
    std::size_t round = 0;  ///< the round the recorded payload was sent in
  };

  std::unique_ptr<const graph::TopologyView> topo_;  ///< owned clone
  Options opts_;
  mutable std::mutex mu_;  ///< guards boxes_, pending_ and every counter below
  // Mailboxes are deques (not queues) so the S-RECOV reorder impairment can
  // push a delivery at the *front*; normal deliveries stay strictly FIFO.
  std::map<Key, std::deque<std::vector<float>>> boxes_;
  std::vector<Pending> pending_;  ///< delayed, not yet matured
  std::map<ReplayKey, ReplayEntry> replay_;  ///< stale-replay payload history
  std::size_t clock_ = 0;         ///< current round (set by begin_round)
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
  std::size_t delayed_ = 0;
  std::size_t corrupted_ = 0;
  std::size_t bytes_ = 0;
  std::size_t wire_messages_ = 0;  ///< sends round-tripped through the wire format
  std::size_t wire_bytes_ = 0;     ///< encoded frame bytes (header + payload + checksum)
  std::size_t retransmits_ = 0;          ///< S-RECOV: frames resent after a NACK
  std::size_t corruptions_detected_ = 0; ///< S-RECOV: checksum-caught bit flips
  std::size_t retry_exhausted_ = 0;      ///< S-RECOV: messages lost after all retries
  std::size_t duplicates_dropped_ = 0;   ///< S-RECOV: duplicate copies deduped
  std::size_t reorders_ = 0;             ///< S-RECOV: front-of-queue deliveries
  struct EdgeCount {
    std::size_t messages = 0;
    std::size_t bytes = 0;
  };
  std::map<std::pair<std::size_t, std::size_t>, EdgeCount> edge_counts_;
};

}  // namespace pdsl::sim
