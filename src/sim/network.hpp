#pragma once
// In-process message-passing network (S7). Algorithms may only move data
// between agents through send/receive on an edge of the topology — this keeps
// implementations honest about what is communicated (and lets us count
// messages/bytes, the "cost" axis of decentralized learning) even though
// everything runs in one process. Optional loss injection models unreliable
// links for the fault-tolerance tests.
//
// Thread-safety (S-RT): every public member is safe to call concurrently —
// one mutex guards the mailboxes and all counters, so parallel per-agent
// phases can send/receive without external locking. Determinism holds at any
// execution width: each directed edge is written by exactly one agent per
// phase (so per-mailbox FIFO order is fixed by that agent's own loop), and
// drop decisions are a pure hash of (seed, src, dst, per-edge message index)
// rather than draws from a shared sequential RNG stream, so the set of
// dropped messages does not depend on the interleaving of senders.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "compress/compressor.hpp"
#include "graph/topology.hpp"

namespace pdsl::sim {

struct NetworkOptions {
  double drop_prob = 0.0;     ///< probability a message is silently lost
  std::uint64_t seed = 7;     ///< for drop decisions
  bool allow_self_send = true;
  /// Optional lossy channel compression (borrowed; must outlive the
  /// Network). Applied to every inter-agent payload; bytes_sent() then
  /// counts wire bytes under the scheme instead of dense floats.
  const compress::Compressor* compressor = nullptr;
};

class Network {
 public:
  using Options = NetworkOptions;

  explicit Network(const graph::Topology& topo, Options opts = {});

  /// Enqueue a payload from src to dst under `tag`. Throws if (src,dst) is
  /// not an edge (or self without allow_self_send). Returns false if the
  /// message was dropped by fault injection.
  bool send(std::size_t src, std::size_t dst, const std::string& tag,
            std::vector<float> payload);

  /// Dequeue the oldest message from src to dst under `tag`; nullopt if none
  /// arrived (never sent, or dropped).
  std::optional<std::vector<float>> receive(std::size_t dst, std::size_t src,
                                            const std::string& tag);

  /// True if a message is waiting.
  [[nodiscard]] bool has_message(std::size_t dst, std::size_t src, const std::string& tag) const;

  /// Drop any undelivered messages (call between rounds to catch protocol
  /// bugs where a round leaves mail unread). Returns the number discarded.
  std::size_t clear();

  [[nodiscard]] std::size_t messages_sent() const;
  [[nodiscard]] std::size_t messages_dropped() const;
  [[nodiscard]] std::size_t bytes_sent() const;
  [[nodiscard]] const graph::Topology& topology() const { return topo_; }

  /// Per-edge traffic totals (S-OBS): every (src,dst) pair that ever sent,
  /// including dropped messages (they consumed the wire).
  struct EdgeTraffic {
    std::size_t src = 0;
    std::size_t dst = 0;
    std::size_t messages = 0;
    std::size_t bytes = 0;
  };

  /// All edges with traffic, ordered by (src, dst).
  [[nodiscard]] std::vector<EdgeTraffic> edge_traffic() const;

  /// Wire bytes sent on the directed edge src->dst (0 if never used).
  [[nodiscard]] std::size_t bytes_between(std::size_t src, std::size_t dst) const;

  /// Fold per-edge byte totals into `obs::MetricsRegistry::global()` as
  /// counters named `net.bytes{edge=src->dst}` (plus `net.msgs{edge=...}`).
  void publish_edge_metrics(const std::string& prefix = "net") const;

 private:
  struct Key {
    std::size_t src;
    std::size_t dst;
    std::string tag;
    bool operator<(const Key& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return tag < o.tag;
    }
  };

  graph::Topology topo_;  ///< owned copy: callers may pass temporaries
  Options opts_;
  mutable std::mutex mu_;  ///< guards boxes_ and every counter below
  std::map<Key, std::queue<std::vector<float>>> boxes_;
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
  std::size_t bytes_ = 0;
  struct EdgeCount {
    std::size_t messages = 0;
    std::size_t bytes = 0;
  };
  std::map<std::pair<std::size_t, std::size_t>, EdgeCount> edge_counts_;
};

}  // namespace pdsl::sim
