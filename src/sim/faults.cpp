#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"

namespace pdsl::sim {

namespace {

/// Uniform [0,1) from the top 53 bits of a splitmix64-mixed word.
double hash_uniform(std::uint64_t x) {
  return static_cast<double>(splitmix64(x) >> 11) * 0x1.0p-53;
}

/// Per-message word for directed edge (src,dst) and per-edge index. This is
/// byte-for-byte the hash sim::Network always used for drop decisions; the
/// delay/churn streams salt the seed so the three decision families are
/// independent.
std::uint64_t edge_message_hash(std::uint64_t seed, std::size_t src, std::size_t dst,
                                std::uint64_t edge_index) {
  return splitmix64(splitmix64(seed ^ (src + 1)) ^ ((dst + 1) * 0x9E3779B97F4A7C15ULL)) ^
         edge_index;
}

constexpr std::uint64_t kDelaySalt = 0xDE1A7ED0C0FFEEULL;
constexpr std::uint64_t kChurnSalt = 0xC4012ACE5ULL;
constexpr std::uint64_t kByzSalt = 0xB12A47EF00DULL;
constexpr std::uint64_t kCorruptSalt = 0xC022BADB17ULL;
constexpr std::uint64_t kDupSalt = 0xD0B1E7F2A3ULL;
constexpr std::uint64_t kReorderSalt = 0x2E02DE2EDULL;
constexpr std::uint64_t kCrashSalt = 0xC2A54FA11ULL;

void check_prob(double p, const char* name) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument(std::string("FaultPlan: ") + name + " must be in [0,1)");
  }
}

}  // namespace

bool FaultPlan::any() const {
  return drop_prob > 0.0 || !edge_rules.empty() || (delay_prob > 0.0 && delay_rounds > 0) ||
         churn_prob > 0.0;
}

void FaultPlan::validate() const {
  check_prob(drop_prob, "drop_prob");
  check_prob(delay_prob, "delay_prob");
  check_prob(churn_prob, "churn_prob");
  if (churn_prob > 0.0 && churn_interval == 0) {
    throw std::invalid_argument("FaultPlan: churn_interval must be >= 1");
  }
  for (const auto& r : edge_rules) {
    if (r.drop_prob < 0.0 || r.drop_prob > 1.0) {
      throw std::invalid_argument("FaultPlan: edge rule drop_prob must be in [0,1]");
    }
    if (r.until_round <= r.from_round) {
      throw std::invalid_argument("FaultPlan: edge rule until_round must exceed from_round");
    }
  }
}

double FaultPlan::effective_drop_prob(std::size_t src, std::size_t dst,
                                      std::size_t round) const {
  double p = drop_prob;
  for (const auto& r : edge_rules) {
    if (r.applies(src, dst, round)) p = std::max(p, r.drop_prob);
  }
  return p;
}

bool FaultPlan::drop(std::size_t src, std::size_t dst, std::uint64_t edge_index,
                     std::size_t round) const {
  const double p = effective_drop_prob(src, dst, round);
  if (p <= 0.0) return false;
  return hash_uniform(edge_message_hash(seed, src, dst, edge_index)) < p;
}

std::size_t FaultPlan::delay(std::size_t src, std::size_t dst,
                             std::uint64_t edge_index) const {
  if (delay_prob <= 0.0 || delay_rounds == 0) return 0;
  const std::uint64_t h =
      splitmix64(edge_message_hash(seed ^ kDelaySalt, src, dst, edge_index));
  if (hash_uniform(h) >= delay_prob) return 0;
  // Second mix for the amount, so "is delayed" and "by how much" decorrelate.
  return 1 + static_cast<std::size_t>(splitmix64(h ^ kDelaySalt) % delay_rounds);
}

bool FaultPlan::offline(std::size_t agent, std::size_t round) const {
  if (churn_prob <= 0.0 || round == 0) return false;
  const std::size_t interval = (round - 1) / std::max<std::size_t>(1, churn_interval);
  const std::uint64_t h =
      splitmix64(splitmix64(seed ^ kChurnSalt ^ (agent + 1)) ^
                 (static_cast<std::uint64_t>(interval) + 1) * 0x9E3779B97F4A7C15ULL);
  return hash_uniform(h) < churn_prob;
}

json::Value fault_plan_to_json(const FaultPlan& plan) {
  json::Object o;
  o["drop_prob"] = plan.drop_prob;
  o["delay_prob"] = plan.delay_prob;
  o["delay_rounds"] = plan.delay_rounds;
  o["churn_prob"] = plan.churn_prob;
  o["churn_interval"] = plan.churn_interval;
  o["staleness_rounds"] = plan.staleness_rounds;
  o["seed"] = static_cast<std::int64_t>(plan.seed);
  if (!plan.edge_rules.empty()) {
    json::Array edges;
    for (const auto& r : plan.edge_rules) {
      json::Object e;
      e["src"] = r.src;
      e["dst"] = r.dst;
      e["drop_prob"] = r.drop_prob;
      e["from_round"] = r.from_round;
      if (r.until_round != kNoRoundLimit) e["until_round"] = r.until_round;
      edges.push_back(json::Value(std::move(e)));
    }
    o["edges"] = json::Value(std::move(edges));
  }
  return json::Value(std::move(o));
}

FaultPlan fault_plan_from_json(const json::Value& v) {
  static const std::set<std::string> known = {"drop_prob",     "delay_prob",
                                              "delay_rounds",  "churn_prob",
                                              "churn_interval", "staleness_rounds",
                                              "seed",          "edges"};
  static const std::set<std::string> edge_known = {"src", "dst", "drop_prob", "from_round",
                                                   "until_round"};
  for (const auto& [key, value] : v.as_object()) {
    if (known.find(key) == known.end()) {
      throw std::invalid_argument("fault_plan_from_json: unknown key '" + key + "'");
    }
  }
  FaultPlan plan;
  auto num = [&](const char* k, double& dst) {
    if (v.contains(k)) dst = v.at(k).as_number();
  };
  auto idx = [&](const char* k, std::size_t& dst) {
    if (v.contains(k)) dst = static_cast<std::size_t>(v.at(k).as_int());
  };
  num("drop_prob", plan.drop_prob);
  num("delay_prob", plan.delay_prob);
  idx("delay_rounds", plan.delay_rounds);
  num("churn_prob", plan.churn_prob);
  idx("churn_interval", plan.churn_interval);
  idx("staleness_rounds", plan.staleness_rounds);
  if (v.contains("seed")) plan.seed = static_cast<std::uint64_t>(v.at("seed").as_int());
  if (v.contains("edges")) {
    for (const auto& ev : v.at("edges").as_array()) {
      for (const auto& [key, value] : ev.as_object()) {
        if (edge_known.find(key) == edge_known.end()) {
          throw std::invalid_argument("fault_plan_from_json: unknown edge key '" + key + "'");
        }
      }
      EdgeFaultRule r;
      r.src = static_cast<std::size_t>(ev.at("src").as_int());
      r.dst = static_cast<std::size_t>(ev.at("dst").as_int());
      if (ev.contains("drop_prob")) r.drop_prob = ev.at("drop_prob").as_number();
      if (ev.contains("from_round")) {
        r.from_round = static_cast<std::size_t>(ev.at("from_round").as_int());
      }
      if (ev.contains("until_round")) {
        r.until_round = static_cast<std::size_t>(ev.at("until_round").as_int());
      }
      plan.edge_rules.push_back(r);
    }
  }
  plan.validate();
  return plan;
}

// ---------------------------------------------------------------------------
// S-RECOV: ChannelPlan + CrashPlan
// ---------------------------------------------------------------------------

std::size_t ChannelPlan::backoff_for(std::size_t attempt) {
  if (attempt <= 1) return 0;
  const std::size_t shift = std::min<std::size_t>(attempt - 2, 3);
  return static_cast<std::size_t>(1) << shift;
}

bool ChannelPlan::any() const {
  return corrupt_prob > 0.0 || duplicate_prob > 0.0 || reorder_prob > 0.0;
}

void ChannelPlan::validate() const {
  check_prob(corrupt_prob, "corrupt_prob");
  check_prob(duplicate_prob, "duplicate_prob");
  check_prob(reorder_prob, "reorder_prob");
  if (max_retries > 16) {
    throw std::invalid_argument("ChannelPlan: max_retries must be <= 16");
  }
}

bool ChannelPlan::corrupt(std::size_t src, std::size_t dst, std::uint64_t edge_index,
                          std::size_t attempt) const {
  if (corrupt_prob <= 0.0) return false;
  // The attempt number is mixed into the message word so each retransmission
  // re-rolls independently — exactly how a real channel treats a resend.
  const std::uint64_t h = edge_message_hash(
      seed ^ kCorruptSalt, src, dst,
      splitmix64(edge_index ^ (static_cast<std::uint64_t>(attempt) + 1) * 0x9E3779B97F4A7C15ULL));
  return hash_uniform(h) < corrupt_prob;
}

std::size_t ChannelPlan::corrupt_bit(std::size_t src, std::size_t dst,
                                     std::uint64_t edge_index, std::size_t attempt,
                                     std::size_t n_bytes) const {
  const std::uint64_t h = edge_message_hash(
      seed ^ kCorruptSalt, src, dst,
      splitmix64(edge_index ^ (static_cast<std::uint64_t>(attempt) + 1) * 0x9E3779B97F4A7C15ULL));
  // Second mix so "is corrupted" and "which bit" decorrelate (delay() idiom).
  return static_cast<std::size_t>(splitmix64(h ^ kCorruptSalt) %
                                  (std::max<std::size_t>(1, n_bytes) * 8));
}

bool ChannelPlan::duplicate(std::size_t src, std::size_t dst,
                            std::uint64_t edge_index) const {
  if (duplicate_prob <= 0.0) return false;
  return hash_uniform(edge_message_hash(seed ^ kDupSalt, src, dst, edge_index)) <
         duplicate_prob;
}

bool ChannelPlan::reorder(std::size_t src, std::size_t dst,
                          std::uint64_t edge_index) const {
  if (reorder_prob <= 0.0) return false;
  return hash_uniform(edge_message_hash(seed ^ kReorderSalt, src, dst, edge_index)) <
         reorder_prob;
}

json::Value channel_plan_to_json(const ChannelPlan& plan) {
  json::Object o;
  o["corrupt_prob"] = plan.corrupt_prob;
  o["duplicate_prob"] = plan.duplicate_prob;
  o["reorder_prob"] = plan.reorder_prob;
  o["max_retries"] = plan.max_retries;
  o["seed"] = static_cast<std::int64_t>(plan.seed);
  return json::Value(std::move(o));
}

ChannelPlan channel_plan_from_json(const json::Value& v) {
  static const std::set<std::string> known = {"corrupt_prob", "duplicate_prob",
                                              "reorder_prob", "max_retries", "seed"};
  for (const auto& [key, value] : v.as_object()) {
    if (known.find(key) == known.end()) {
      throw std::invalid_argument("channel_plan_from_json: unknown key '" + key + "'");
    }
  }
  ChannelPlan plan;
  if (v.contains("corrupt_prob")) plan.corrupt_prob = v.at("corrupt_prob").as_number();
  if (v.contains("duplicate_prob")) plan.duplicate_prob = v.at("duplicate_prob").as_number();
  if (v.contains("reorder_prob")) plan.reorder_prob = v.at("reorder_prob").as_number();
  if (v.contains("max_retries")) {
    plan.max_retries = static_cast<std::size_t>(v.at("max_retries").as_int());
  }
  if (v.contains("seed")) plan.seed = static_cast<std::uint64_t>(v.at("seed").as_int());
  plan.validate();
  return plan;
}

bool CrashPlan::any() const { return crash_prob > 0.0; }

void CrashPlan::validate() const {
  check_prob(crash_prob, "crash_prob");
  if (crash_prob > 0.0 && snapshot_every == 0) {
    throw std::invalid_argument("CrashPlan: snapshot_every must be >= 1");
  }
}

bool CrashPlan::crashes(std::size_t agent, std::size_t round) const {
  if (crash_prob <= 0.0 || round == 0) return false;
  const std::uint64_t h =
      splitmix64(splitmix64(seed ^ kCrashSalt ^ (agent + 1)) ^
                 (static_cast<std::uint64_t>(round) + 1) * 0x9E3779B97F4A7C15ULL);
  return hash_uniform(h) < crash_prob;
}

json::Value crash_plan_to_json(const CrashPlan& plan) {
  json::Object o;
  o["crash_prob"] = plan.crash_prob;
  o["snapshot_every"] = plan.snapshot_every;
  o["seed"] = static_cast<std::int64_t>(plan.seed);
  return json::Value(std::move(o));
}

CrashPlan crash_plan_from_json(const json::Value& v) {
  static const std::set<std::string> known = {"crash_prob", "snapshot_every", "seed"};
  for (const auto& [key, value] : v.as_object()) {
    if (known.find(key) == known.end()) {
      throw std::invalid_argument("crash_plan_from_json: unknown key '" + key + "'");
    }
  }
  CrashPlan plan;
  if (v.contains("crash_prob")) plan.crash_prob = v.at("crash_prob").as_number();
  if (v.contains("snapshot_every")) {
    plan.snapshot_every = static_cast<std::size_t>(v.at("snapshot_every").as_int());
  }
  if (v.contains("seed")) plan.seed = static_cast<std::uint64_t>(v.at("seed").as_int());
  plan.validate();
  return plan;
}

// ---------------------------------------------------------------------------
// S-BYZ: AdversaryPlan
// ---------------------------------------------------------------------------

const char* byz_mode_to_string(ByzMode mode) {
  switch (mode) {
    case ByzMode::kNone: return "none";
    case ByzMode::kSignFlip: return "sign_flip";
    case ByzMode::kScale: return "scale";
    case ByzMode::kNoise: return "noise";
    case ByzMode::kNanBomb: return "nan_bomb";
    case ByzMode::kStaleReplay: return "stale_replay";
  }
  return "none";
}

ByzMode byz_mode_from_string(const std::string& name) {
  if (name == "none") return ByzMode::kNone;
  if (name == "sign_flip") return ByzMode::kSignFlip;
  if (name == "scale") return ByzMode::kScale;
  if (name == "noise") return ByzMode::kNoise;
  if (name == "nan_bomb") return ByzMode::kNanBomb;
  if (name == "stale_replay") return ByzMode::kStaleReplay;
  throw std::invalid_argument(
      "byz_mode_from_string: unknown mode '" + name +
      "' (none|sign_flip|scale|noise|nan_bomb|stale_replay)");
}

bool AdversaryPlan::any() const {
  return (frac > 0.0 && mode != ByzMode::kNone) || !roles.empty();
}

void AdversaryPlan::validate() const {
  if (frac < 0.0 || frac >= 1.0) {
    throw std::invalid_argument("AdversaryPlan: frac must be in [0,1)");
  }
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    throw std::invalid_argument("AdversaryPlan: scale must be positive and finite");
  }
  if (onset == 0) {
    throw std::invalid_argument("AdversaryPlan: onset must be >= 1 (rounds are 1-indexed)");
  }
  if (until_round <= onset) {
    throw std::invalid_argument("AdversaryPlan: until_round must exceed onset");
  }
  for (const auto& r : roles) {
    if (!(r.scale > 0.0) || !std::isfinite(r.scale)) {
      throw std::invalid_argument("AdversaryPlan: role scale must be positive and finite");
    }
    if (r.from_round == 0) {
      throw std::invalid_argument("AdversaryPlan: role from_round must be >= 1");
    }
    if (r.until_round <= r.from_round) {
      throw std::invalid_argument("AdversaryPlan: role until_round must exceed from_round");
    }
  }
}

std::size_t AdversaryPlan::num_default_attackers(std::size_t m) const {
  if (frac <= 0.0 || mode == ByzMode::kNone) return 0;
  // Round half-up, but always leave at least one honest agent.
  const auto n = static_cast<std::size_t>(frac * static_cast<double>(m) + 0.5);
  return m == 0 ? 0 : std::min(n, m - 1);
}

bool AdversaryPlan::is_byzantine(std::size_t agent, std::size_t m) const {
  for (const auto& r : roles) {
    if (r.agent == agent) return r.mode != ByzMode::kNone;
  }
  return agent < num_default_attackers(m);
}

ByzRole AdversaryPlan::role(std::size_t agent, std::size_t m, std::size_t round) const {
  bool has_explicit = false;
  for (const auto& r : roles) {
    if (r.agent != agent) continue;
    has_explicit = true;
    if (round >= r.from_round && round < r.until_round) return r;
  }
  ByzRole honest;
  honest.agent = agent;
  honest.mode = ByzMode::kNone;
  // An explicitly scheduled agent is honest outside its windows; the frac
  // default never applies to it.
  if (has_explicit) return honest;
  if (agent < num_default_attackers(m) && round >= onset && round < until_round) {
    ByzRole r;
    r.agent = agent;
    r.mode = mode;
    r.scale = scale;
    r.from_round = onset;
    r.until_round = until_round;
    return r;
  }
  return honest;
}

std::size_t AdversaryPlan::active_count(std::size_t m, std::size_t round) const {
  if (!any()) return 0;
  std::size_t n = 0;
  for (std::size_t a = 0; a < m; ++a) {
    if (role(a, m, round).mode != ByzMode::kNone) ++n;
  }
  return n;
}

std::uint64_t hash_tag(const std::string& tag) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : tag) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

void corrupt_payload(const ByzRole& role, std::uint64_t seed, std::size_t src,
                     std::size_t dst, std::uint64_t tag_hash, std::vector<float>& payload) {
  switch (role.mode) {
    case ByzMode::kNone:
    case ByzMode::kStaleReplay:  // handled by the Network's replay history
      return;
    case ByzMode::kSignFlip: {
      const auto s = static_cast<float>(-role.scale);
      for (auto& x : payload) x *= s;
      return;
    }
    case ByzMode::kScale: {
      const auto s = static_cast<float>(role.scale);
      for (auto& x : payload) x *= s;
      return;
    }
    case ByzMode::kNoise: {
      // Same hash family as drop/delay/churn, salted: the stream is a pure
      // function of (seed, src, dst, tag), never a shared sequential RNG.
      Rng rng(edge_message_hash(seed ^ kByzSalt, src, dst, tag_hash));
      for (auto& x : payload) {
        x += static_cast<float>(role.scale * rng.normal());
      }
      return;
    }
    case ByzMode::kNanBomb: {
      for (std::size_t k = 0; k < payload.size(); ++k) {
        payload[k] = (k % 3 == 0) ? std::numeric_limits<float>::quiet_NaN()
                                  : (k % 3 == 1 ? std::numeric_limits<float>::infinity()
                                                : -std::numeric_limits<float>::infinity());
      }
      return;
    }
  }
}

json::Value adversary_plan_to_json(const AdversaryPlan& plan) {
  json::Object o;
  o["frac"] = plan.frac;
  o["mode"] = std::string(byz_mode_to_string(plan.mode));
  o["scale"] = plan.scale;
  o["onset"] = plan.onset;
  if (plan.until_round != kNoRoundLimit) o["until_round"] = plan.until_round;
  o["seed"] = static_cast<std::int64_t>(plan.seed);
  if (!plan.roles.empty()) {
    json::Array roles;
    for (const auto& r : plan.roles) {
      json::Object e;
      e["agent"] = r.agent;
      e["mode"] = std::string(byz_mode_to_string(r.mode));
      e["scale"] = r.scale;
      e["from_round"] = r.from_round;
      if (r.until_round != kNoRoundLimit) e["until_round"] = r.until_round;
      roles.push_back(json::Value(std::move(e)));
    }
    o["roles"] = json::Value(std::move(roles));
  }
  return json::Value(std::move(o));
}

AdversaryPlan adversary_plan_from_json(const json::Value& v) {
  static const std::set<std::string> known = {"frac",        "mode",  "scale", "onset",
                                              "until_round", "roles", "seed"};
  static const std::set<std::string> role_known = {"agent", "mode", "scale", "from_round",
                                                   "until_round"};
  for (const auto& [key, value] : v.as_object()) {
    if (known.find(key) == known.end()) {
      throw std::invalid_argument("adversary_plan_from_json: unknown key '" + key + "'");
    }
  }
  AdversaryPlan plan;
  if (v.contains("frac")) plan.frac = v.at("frac").as_number();
  if (v.contains("mode")) plan.mode = byz_mode_from_string(v.at("mode").as_string());
  if (v.contains("scale")) plan.scale = v.at("scale").as_number();
  if (v.contains("onset")) plan.onset = static_cast<std::size_t>(v.at("onset").as_int());
  if (v.contains("until_round")) {
    plan.until_round = static_cast<std::size_t>(v.at("until_round").as_int());
  }
  if (v.contains("seed")) plan.seed = static_cast<std::uint64_t>(v.at("seed").as_int());
  if (v.contains("roles")) {
    for (const auto& rv : v.at("roles").as_array()) {
      for (const auto& [key, value] : rv.as_object()) {
        if (role_known.find(key) == role_known.end()) {
          throw std::invalid_argument("adversary_plan_from_json: unknown role key '" + key +
                                      "'");
        }
      }
      ByzRole r;
      r.agent = static_cast<std::size_t>(rv.at("agent").as_int());
      if (rv.contains("mode")) r.mode = byz_mode_from_string(rv.at("mode").as_string());
      if (rv.contains("scale")) r.scale = rv.at("scale").as_number();
      if (rv.contains("from_round")) {
        r.from_round = static_cast<std::size_t>(rv.at("from_round").as_int());
      }
      if (rv.contains("until_round")) {
        r.until_round = static_cast<std::size_t>(rv.at("until_round").as_int());
      }
      plan.roles.push_back(r);
    }
  }
  plan.validate();
  return plan;
}

}  // namespace pdsl::sim
