#include "sim/faults.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"

namespace pdsl::sim {

namespace {

/// Uniform [0,1) from the top 53 bits of a splitmix64-mixed word.
double hash_uniform(std::uint64_t x) {
  return static_cast<double>(splitmix64(x) >> 11) * 0x1.0p-53;
}

/// Per-message word for directed edge (src,dst) and per-edge index. This is
/// byte-for-byte the hash sim::Network always used for drop decisions; the
/// delay/churn streams salt the seed so the three decision families are
/// independent.
std::uint64_t edge_message_hash(std::uint64_t seed, std::size_t src, std::size_t dst,
                                std::uint64_t edge_index) {
  return splitmix64(splitmix64(seed ^ (src + 1)) ^ ((dst + 1) * 0x9E3779B97F4A7C15ULL)) ^
         edge_index;
}

constexpr std::uint64_t kDelaySalt = 0xDE1A7ED0C0FFEEULL;
constexpr std::uint64_t kChurnSalt = 0xC4012ACE5ULL;

void check_prob(double p, const char* name) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument(std::string("FaultPlan: ") + name + " must be in [0,1)");
  }
}

}  // namespace

bool FaultPlan::any() const {
  return drop_prob > 0.0 || !edge_rules.empty() || (delay_prob > 0.0 && delay_rounds > 0) ||
         churn_prob > 0.0;
}

void FaultPlan::validate() const {
  check_prob(drop_prob, "drop_prob");
  check_prob(delay_prob, "delay_prob");
  check_prob(churn_prob, "churn_prob");
  if (churn_prob > 0.0 && churn_interval == 0) {
    throw std::invalid_argument("FaultPlan: churn_interval must be >= 1");
  }
  for (const auto& r : edge_rules) {
    if (r.drop_prob < 0.0 || r.drop_prob > 1.0) {
      throw std::invalid_argument("FaultPlan: edge rule drop_prob must be in [0,1]");
    }
    if (r.until_round <= r.from_round) {
      throw std::invalid_argument("FaultPlan: edge rule until_round must exceed from_round");
    }
  }
}

double FaultPlan::effective_drop_prob(std::size_t src, std::size_t dst,
                                      std::size_t round) const {
  double p = drop_prob;
  for (const auto& r : edge_rules) {
    if (r.applies(src, dst, round)) p = std::max(p, r.drop_prob);
  }
  return p;
}

bool FaultPlan::drop(std::size_t src, std::size_t dst, std::uint64_t edge_index,
                     std::size_t round) const {
  const double p = effective_drop_prob(src, dst, round);
  if (p <= 0.0) return false;
  return hash_uniform(edge_message_hash(seed, src, dst, edge_index)) < p;
}

std::size_t FaultPlan::delay(std::size_t src, std::size_t dst,
                             std::uint64_t edge_index) const {
  if (delay_prob <= 0.0 || delay_rounds == 0) return 0;
  const std::uint64_t h =
      splitmix64(edge_message_hash(seed ^ kDelaySalt, src, dst, edge_index));
  if (hash_uniform(h) >= delay_prob) return 0;
  // Second mix for the amount, so "is delayed" and "by how much" decorrelate.
  return 1 + static_cast<std::size_t>(splitmix64(h ^ kDelaySalt) % delay_rounds);
}

bool FaultPlan::offline(std::size_t agent, std::size_t round) const {
  if (churn_prob <= 0.0 || round == 0) return false;
  const std::size_t interval = (round - 1) / std::max<std::size_t>(1, churn_interval);
  const std::uint64_t h =
      splitmix64(splitmix64(seed ^ kChurnSalt ^ (agent + 1)) ^
                 (static_cast<std::uint64_t>(interval) + 1) * 0x9E3779B97F4A7C15ULL);
  return hash_uniform(h) < churn_prob;
}

json::Value fault_plan_to_json(const FaultPlan& plan) {
  json::Object o;
  o["drop_prob"] = plan.drop_prob;
  o["delay_prob"] = plan.delay_prob;
  o["delay_rounds"] = plan.delay_rounds;
  o["churn_prob"] = plan.churn_prob;
  o["churn_interval"] = plan.churn_interval;
  o["staleness_rounds"] = plan.staleness_rounds;
  o["seed"] = static_cast<std::int64_t>(plan.seed);
  if (!plan.edge_rules.empty()) {
    json::Array edges;
    for (const auto& r : plan.edge_rules) {
      json::Object e;
      e["src"] = r.src;
      e["dst"] = r.dst;
      e["drop_prob"] = r.drop_prob;
      e["from_round"] = r.from_round;
      if (r.until_round != kNoRoundLimit) e["until_round"] = r.until_round;
      edges.push_back(json::Value(std::move(e)));
    }
    o["edges"] = json::Value(std::move(edges));
  }
  return json::Value(std::move(o));
}

FaultPlan fault_plan_from_json(const json::Value& v) {
  static const std::set<std::string> known = {"drop_prob",     "delay_prob",
                                              "delay_rounds",  "churn_prob",
                                              "churn_interval", "staleness_rounds",
                                              "seed",          "edges"};
  static const std::set<std::string> edge_known = {"src", "dst", "drop_prob", "from_round",
                                                   "until_round"};
  for (const auto& [key, value] : v.as_object()) {
    if (known.find(key) == known.end()) {
      throw std::invalid_argument("fault_plan_from_json: unknown key '" + key + "'");
    }
  }
  FaultPlan plan;
  auto num = [&](const char* k, double& dst) {
    if (v.contains(k)) dst = v.at(k).as_number();
  };
  auto idx = [&](const char* k, std::size_t& dst) {
    if (v.contains(k)) dst = static_cast<std::size_t>(v.at(k).as_int());
  };
  num("drop_prob", plan.drop_prob);
  num("delay_prob", plan.delay_prob);
  idx("delay_rounds", plan.delay_rounds);
  num("churn_prob", plan.churn_prob);
  idx("churn_interval", plan.churn_interval);
  idx("staleness_rounds", plan.staleness_rounds);
  if (v.contains("seed")) plan.seed = static_cast<std::uint64_t>(v.at("seed").as_int());
  if (v.contains("edges")) {
    for (const auto& ev : v.at("edges").as_array()) {
      for (const auto& [key, value] : ev.as_object()) {
        if (edge_known.find(key) == edge_known.end()) {
          throw std::invalid_argument("fault_plan_from_json: unknown edge key '" + key + "'");
        }
      }
      EdgeFaultRule r;
      r.src = static_cast<std::size_t>(ev.at("src").as_int());
      r.dst = static_cast<std::size_t>(ev.at("dst").as_int());
      if (ev.contains("drop_prob")) r.drop_prob = ev.at("drop_prob").as_number();
      if (ev.contains("from_round")) {
        r.from_round = static_cast<std::size_t>(ev.at("from_round").as_int());
      }
      if (ev.contains("until_round")) {
        r.until_round = static_cast<std::size_t>(ev.at("until_round").as_int());
      }
      plan.edge_rules.push_back(r);
    }
  }
  plan.validate();
  return plan;
}

}  // namespace pdsl::sim
