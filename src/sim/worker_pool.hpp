#pragma once
// Lazy per-agent worker storage (S-SCALE pillar 3). In eager mode (default)
// every LocalWorker is constructed up front — byte-identical behavior to the
// historical std::vector<LocalWorker>. In lazy mode a worker is materialized
// only when touched, and prepare() evicts the least-recently-used dormant
// workers above the cache cap, keeping resident state linear in the active
// set. Re-materialization is exact: worker i is always built from the same
// (init model, shard, batch, root.split(0xD0 + i)) tuple, and fleet-mode
// batch draws are stateless (round-keyed), so an evicted worker loses no
// observable state.
//
// Concurrency: operator[]/get(i) may be called from parallel per-agent loops
// under the usual slot discipline (each agent touches only its own index);
// materialization mutates only slot i plus atomic counters. prepare() and
// the stat accessors are driver-thread only.

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "sim/worker.hpp"

namespace pdsl::sim {

class WorkerPool {
 public:
  /// `train` and `partition` are borrowed and must outlive the pool; the init
  /// model is copied so workers can be re-materialized later. `cache_cap` is
  /// the max resident workers in lazy mode (0 = auto: 4x the fleet's active
  /// set is chosen by the caller; here 0 simply means "unbounded").
  WorkerPool(const nn::Model& init_model, const data::Dataset& train,
             const std::vector<std::vector<std::size_t>>& partition, std::size_t batch,
             Rng root, bool lazy, std::size_t cache_cap);

  /// Two-phase construction for owners whose init model is computed in the
  /// constructor body (the pool's atomics make it non-movable). init() must
  /// be called exactly once before any other member.
  WorkerPool() = default;
  void init(const nn::Model& init_model, const data::Dataset& train,
            const std::vector<std::vector<std::size_t>>& partition, std::size_t batch,
            Rng root, bool lazy, std::size_t cache_cap);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Access worker i, materializing it in lazy mode.
  LocalWorker& get(std::size_t i);
  LocalWorker& operator[](std::size_t i) { return get(i); }

  /// Driver-thread round prologue: materialize every worker named by `need`,
  /// stamp their last-use round, and evict LRU dormant workers above the cap.
  void prepare(const std::vector<unsigned char>& need, std::size_t round);

  [[nodiscard]] bool lazy() const { return lazy_; }
  [[nodiscard]] std::size_t materialized() const;
  /// High-water mark of simultaneously resident workers.
  [[nodiscard]] std::size_t peak_materialized() const { return peak_.load(); }

 private:
  LocalWorker& materialize(std::size_t i);

  nn::Model init_model_;
  const data::Dataset* train_ = nullptr;
  const std::vector<std::vector<std::size_t>>* partition_ = nullptr;
  std::size_t batch_ = 0;
  Rng root_{0};
  bool lazy_ = false;
  std::size_t cache_cap_ = 0;

  std::vector<std::unique_ptr<LocalWorker>> slots_;
  std::vector<std::size_t> last_used_;  ///< round stamp per slot (LRU key)
  std::size_t round_ = 0;
  std::atomic<std::size_t> resident_{0};
  std::atomic<std::size_t> peak_{0};
};

}  // namespace pdsl::sim
