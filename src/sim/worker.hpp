#pragma once
// Per-agent local computation: holds the agent's slice of the data and a
// model workspace, and answers "gradient of my loss F_i at parameters x on
// my current mini-batch" — the primitive every algorithm in the paper is
// built from (local gradients, Eq. 9, and cross-gradients, Eq. 12, are the
// same call at different parameter vectors).

#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/sampler.hpp"
#include "nn/model.hpp"

namespace pdsl::sim {

class LocalWorker {
 public:
  /// `model` is cloned as this worker's workspace. `indices` are the sample
  /// indices of D_i within `ds` (which must outlive the worker).
  LocalWorker(const nn::Model& model, const data::Dataset& ds, std::vector<std::size_t> indices,
              std::size_t batch_size, Rng rng);

  /// Draw the round's mini-batch xi_{i,t} (uniform with replacement).
  void draw_batch();

  /// S-SCALE stateless draw: the mini-batch is a pure function of the
  /// worker's construction seed and `salt` (the algorithm's draw counter),
  /// so an evicted-and-rematerialized worker draws identical batches.
  void draw_batch(std::uint64_t salt);

  /// grad F_i(x; xi_{i,t}) on the batch drawn by the last draw_batch().
  std::vector<float> gradient(const std::vector<float>& params);

  /// Loss F_i(x; xi_{i,t}) on the current batch (no gradient).
  double batch_loss(const std::vector<float>& params);

  /// Loss of x on a fixed, deterministic subset of the local data (for the
  /// per-round "average loss" metric; stable across rounds).
  double local_eval_loss(const std::vector<float>& params);

  /// Accuracy of x on the same fixed local subset.
  double local_eval_accuracy(const std::vector<float>& params);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t local_size() const { return sampler_.local_size(); }
  [[nodiscard]] nn::Model& workspace() { return model_; }
  /// Sampler access for S-RECOV checkpoint/resume of the stateful draw stream.
  [[nodiscard]] data::BatchSampler& sampler() { return sampler_; }

 private:
  void ensure_batch() const;

  nn::Model model_;
  const data::Dataset* ds_;
  data::BatchSampler sampler_;
  std::uint64_t stateless_seed_;  ///< base for round-keyed draw_batch(salt)
  std::size_t dim_;
  Tensor batch_x_;
  std::vector<int> batch_y_;
  bool has_batch_ = false;
  Tensor eval_x_;
  std::vector<int> eval_y_;
};

}  // namespace pdsl::sim
