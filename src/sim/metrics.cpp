#include "sim/metrics.hpp"

#include <stdexcept>

#include "common/vec_math.hpp"

namespace pdsl::sim {

double consensus_distance(const std::vector<std::vector<float>>& models) {
  if (models.empty()) return 0.0;
  const auto avg = average_model(models);
  double acc = 0.0;
  for (const auto& m : models) acc += l2_distance(m, avg);
  return acc / static_cast<double>(models.size());
}

std::vector<float> average_model(const std::vector<std::vector<float>>& models) {
  if (models.empty()) throw std::invalid_argument("average_model: no models");
  std::vector<const std::vector<float>*> ptrs;
  ptrs.reserve(models.size());
  for (const auto& m : models) ptrs.push_back(&m);
  return mean_of(ptrs);
}

double consensus_distance(const fleet::LazyMatrix& models) {
  if (models.empty()) return 0.0;
  const auto avg = average_model(models);
  double acc = 0.0;
  for (std::size_t i = 0; i < models.size(); ++i) acc += l2_distance(models[i], avg);
  return acc / static_cast<double>(models.size());
}

std::vector<float> average_model(const fleet::LazyMatrix& models) {
  if (models.empty()) throw std::invalid_argument("average_model: no models");
  std::vector<const std::vector<float>*> ptrs;
  ptrs.reserve(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) ptrs.push_back(&models[i]);
  return mean_of(ptrs);
}

void write_metrics_csv(const std::string& path, const std::string& run_label,
                       const std::vector<RoundMetrics>& series) {
  CsvWriter csv(path, {"run", "round", "avg_loss", "test_accuracy", "consensus", "grad_norm",
                       "messages", "bytes", "dropped", "delayed", "offline", "stale_reused",
                       "fallbacks", "byz_active", "corrupted", "rejected", "reclipped",
                       "pi_attacker", "pi_honest", "epsilon_spent", "shapley_evals",
                       "shapley_batched", "shapley_cache_hits", "shapley_cache_misses",
                       "shapley_early_stops", "retransmits", "corrupt_detected", "dup_dropped",
                       "reordered", "crashes", "resyncs", "elapsed_s", "round_s", "local_grad_s",
                       "crossgrad_s", "shapley_s", "aggregate_s", "gossip_s"});
  for (const auto& m : series) {
    csv.row(run_label, m.round, m.avg_loss, m.test_accuracy, m.consensus, m.grad_norm,
            m.messages, m.bytes, m.dropped, m.delayed, m.offline, m.stale_reused, m.fallbacks,
            m.byz_active, m.corrupted, m.rejected, m.reclipped, m.pi_attacker, m.pi_honest,
            m.epsilon_spent, m.shapley_evals, m.shapley_batched, m.shapley_cache_hits,
            m.shapley_cache_misses, m.shapley_early_stops, m.retransmits, m.corrupt_detected,
            m.dup_dropped, m.reordered, m.crashes, m.resyncs, m.elapsed_s, m.round_s,
            m.phases.local_grad_s, m.phases.crossgrad_s, m.phases.shapley_s,
            m.phases.aggregate_s, m.phases.gossip_s);
  }
  csv.flush();
}

}  // namespace pdsl::sim
