#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "fleet/wire.hpp"
#include "obs/metrics.hpp"

namespace pdsl::sim {

Network::Network(const graph::TopologyView& topo, Options opts)
    : topo_(topo.clone()), opts_(std::move(opts)) {
  if (opts_.drop_prob < 0.0 || opts_.drop_prob >= 1.0) {
    throw std::invalid_argument("Network: drop_prob must be in [0,1)");
  }
  // Fold the legacy scalar knobs into the plan so there is exactly one source
  // of truth for fault decisions. Plan fields win when set; the fallback to
  // opts_.seed keeps the historical drop stream for drop_prob-only configs.
  if (opts_.faults.drop_prob == 0.0) opts_.faults.drop_prob = opts_.drop_prob;
  if (opts_.faults.seed == 0) opts_.faults.seed = opts_.seed;
  opts_.faults.validate();
  // S-BYZ: the adversary's noise streams default to the same seed family as
  // the benign faults (corrupt_payload salts internally to decorrelate).
  if (opts_.adversary.seed == 0) opts_.adversary.seed = opts_.faults.seed;
  opts_.adversary.validate();
  // S-RECOV: the channel impairment hashes likewise derive from the merged
  // fault seed (each decision family salts internally).
  if (opts_.channel.seed == 0) opts_.channel.seed = opts_.faults.seed;
  opts_.channel.validate();
}

std::vector<LateMessage> Network::begin_round(std::size_t t) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = t;
  std::vector<LateMessage> matured;
  std::vector<Pending> still_pending;
  std::vector<Pending> ready;
  for (auto& p : pending_) {
    (p.mature_round <= t ? ready : still_pending).push_back(std::move(p));
  }
  pending_ = std::move(still_pending);
  // Concurrent senders insert into pending_ in schedule-dependent order; a
  // total order over (src, dst, tag, per-edge index) restores determinism.
  std::sort(ready.begin(), ready.end(), [](const Pending& a, const Pending& b) {
    if (a.msg.src != b.msg.src) return a.msg.src < b.msg.src;
    if (a.msg.dst != b.msg.dst) return a.msg.dst < b.msg.dst;
    if (a.msg.tag != b.msg.tag) return a.msg.tag < b.msg.tag;
    return a.edge_index < b.edge_index;
  });
  matured.reserve(ready.size());
  for (auto& p : ready) matured.push_back(std::move(p.msg));
  return matured;
}

bool Network::send(std::size_t src, std::size_t dst, const std::string& tag,
                   std::vector<float> payload, Channel channel) {
  if (src >= topo_->size() || dst >= topo_->size()) {
    throw std::out_of_range("Network::send: agent id out of range");
  }
  if (src == dst) {
    if (!opts_.allow_self_send) throw std::invalid_argument("Network::send: self send disabled");
  } else if (!topo_->has_edge(src, dst)) {
    throw std::invalid_argument("Network::send: (" + std::to_string(src) + "," +
                                std::to_string(dst) + ") is not an edge");
  }
  const bool lossy_channel = (src != dst) && opts_.compressor != nullptr;
  // Compress outside the lock: apply() is const/stateless and can be the
  // expensive part of a send under top-k or quantization.
  const std::size_t wire_bytes = lossy_channel ? opts_.compressor->wire_bytes(payload)
                                               : payload.size() * sizeof(float);
  if (lossy_channel) payload = opts_.compressor->apply(payload);

  // S-RECOV: the unreliable-channel transport supersedes the strict
  // round-trip assert on inter-agent traffic — the same encode/decode runs,
  // but a checksum failure is *detected* and answered with a retransmission
  // instead of tearing the process down.
  const bool transport = opts_.channel.any() && src != dst;

  std::unique_lock<std::mutex> lock(mu_);
  if (opts_.wire_roundtrip && !transport) {
    // S-SCALE: prove the message survives serialization bit-identically and
    // deliver the decoded copy — exactly what a multi-process shard would see.
    fleet::WireMessage msg{static_cast<std::uint32_t>(src), static_cast<std::uint32_t>(dst),
                          static_cast<std::uint32_t>(clock_),
                          static_cast<std::uint8_t>(channel == Channel::kContribution ? 1 : 0),
                          tag, std::move(payload)};
    const io::ByteBuffer frame = fleet::wire_encode(msg);
    fleet::WireMessage decoded = fleet::wire_decode(frame);
    if (!fleet::wire_equal(msg, decoded)) {
      throw std::runtime_error("Network::send: wire round-trip mismatch on (" +
                               std::to_string(src) + "->" + std::to_string(dst) + ", " + tag +
                               ")");
    }
    ++wire_messages_;
    wire_bytes_ += frame.size();
    payload = std::move(decoded.payload);
  }
  ++sent_;
  bytes_ += wire_bytes;
  auto& edge = edge_counts_[{src, dst}];
  const std::size_t edge_index = edge.messages;  // nth message on this edge
  ++edge.messages;
  edge.bytes += wire_bytes;
  {
    // Process-wide totals; handles cached so the per-send cost is two
    // relaxed fetch_adds. Safe: registry instruments are atomic and the
    // magic-static initialization is thread-safe.
    static obs::Counter& msgs = obs::MetricsRegistry::global().counter("net.msgs");
    static obs::Counter& bytes = obs::MetricsRegistry::global().counter("net.bytes");
    msgs.add(1);
    bytes.add(wire_bytes);
  }
  if (src != dst) {
    const FaultPlan& plan = opts_.faults;
    // Churn: traffic to or from an offline agent is lost on the wire. The
    // decision keys on the round clock, so algorithms that never call
    // begin_round() (clock 0) see no churn.
    if (plan.offline(src, clock_) || plan.offline(dst, clock_)) {
      ++dropped_;
      static obs::Counter& off = obs::MetricsRegistry::global().counter("net.offline_drops");
      off.add(1);
      return false;
    }
    // Drop decision as a pure function of (seed, edge, per-edge index): the
    // same messages drop no matter how concurrent senders interleave, which
    // is what makes fault injection reproducible across --threads settings.
    if (plan.drop(src, dst, edge_index, clock_)) {
      ++dropped_;
      static obs::Counter& drops = obs::MetricsRegistry::global().counter("net.dropped");
      drops.add(1);
      return false;
    }
    // S-BYZ: an active Byzantine sender corrupts its contribution payload at
    // this boundary — after the drop decision (corrupting a lost message is
    // moot) and before any delay (the attacker sent it corrupted, so that is
    // what matures later). Every decision is a pure function of the plan and
    // the message identity, so attack traces are interleaving-independent.
    if (channel == Channel::kContribution && opts_.adversary.any()) {
      const ByzRole role = opts_.adversary.role(src, topo_->size(), clock_);
      bool hit = false;
      if (role.mode == ByzMode::kStaleReplay) {
        const auto at = tag.find('@');
        const ReplayKey key{src, dst, at == std::string::npos ? tag : tag.substr(0, at)};
        const auto it = replay_.find(key);
        if (it == replay_.end()) {
          // First send on this key: record it (and let it through honest) so
          // there is something old to replay from the next round on.
          replay_.emplace(key, ReplayEntry{payload, clock_});
        } else if (it->second.round < clock_) {
          payload = it->second.payload;
          hit = true;
        }
      } else if (role.mode != ByzMode::kNone) {
        corrupt_payload(role, opts_.adversary.seed, src, dst, hash_tag(tag), payload);
        hit = true;
      }
      if (hit) {
        ++corrupted_;
        static obs::Counter& byz =
            obs::MetricsRegistry::global().counter("net.byz_corrupted");
        byz.add(1);
      }
    }
    // S-RECOV ReliableChannel: wire-encode every attempt; a hash-driven bit
    // flip is caught by the frame checksum (wire_try_decode -> nullopt), the
    // receiver NACKs and the sender retransmits, up to channel.max_retries
    // extra attempts with round-granular exponential backoff. Exhausting the
    // budget loses the message like a drop — the receiver degrades through
    // the PR-4 renormalization path. Every decision hashes (seed, edge,
    // per-edge index, attempt), so retransmission traces are bit-identical
    // at any --threads width.
    std::size_t backoff = 0;
    std::size_t frame_bytes = 0;
    if (transport) {
      const ChannelPlan& ch = opts_.channel;
      fleet::WireMessage msg{static_cast<std::uint32_t>(src), static_cast<std::uint32_t>(dst),
                            static_cast<std::uint32_t>(clock_),
                            static_cast<std::uint8_t>(channel == Channel::kContribution ? 1 : 0),
                            tag, std::move(payload)};
      bool delivered = false;
      for (std::size_t attempt = 0; attempt <= ch.max_retries; ++attempt) {
        io::ByteBuffer frame = fleet::wire_encode(msg);
        frame_bytes = frame.size();
        ++wire_messages_;
        wire_bytes_ += frame.size();
        if (attempt > 0) {
          ++retransmits_;
          static obs::Counter& rtx = obs::MetricsRegistry::global().counter("net.retransmits");
          rtx.add(1);
        }
        if (ch.corrupt(src, dst, edge_index, attempt)) {
          const std::size_t bit = ch.corrupt_bit(src, dst, edge_index, attempt, frame.size());
          frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          auto decoded = fleet::wire_try_decode(frame);
          if (!decoded) {
            ++corruptions_detected_;
            static obs::Counter& cd =
                obs::MetricsRegistry::global().counter("net.corruptions_detected");
            cd.add(1);
            continue;  // NACK: the corrupted frame never reaches a mailbox
          }
          // The flip survived the checksum (a 2^-64-grade collision, but
          // deterministic if it ever fires): a real receiver would accept the
          // frame, so deliver the decoded payload as-is.
          msg.payload = std::move(decoded->payload);
          delivered = true;
          backoff = ChannelPlan::backoff_for(attempt);
          break;
        }
        fleet::WireMessage decoded = fleet::wire_decode(frame);  // clean frame
        msg.payload = std::move(decoded.payload);
        delivered = true;
        backoff = ChannelPlan::backoff_for(attempt);
        break;
      }
      if (!delivered) {
        ++retry_exhausted_;
        ++dropped_;
        static obs::Counter& ex =
            obs::MetricsRegistry::global().counter("net.retry_exhausted");
        ex.add(1);
        return false;
      }
      payload = std::move(msg.payload);
      // In-flight duplication: the second copy arrives too, but the
      // transport's per-edge sequence numbers dedup it — exactly-once
      // mailbox delivery, while the wire still paid for the extra frame.
      if (ch.duplicate(src, dst, edge_index)) {
        ++wire_messages_;
        wire_bytes_ += frame_bytes;
        ++duplicates_dropped_;
        static obs::Counter& dup =
            obs::MetricsRegistry::global().counter("net.dup_dropped");
        dup.add(1);
      }
    }
    const std::size_t d = plan.delay(src, dst, edge_index) + backoff;
    if (d > 0) {
      ++delayed_;
      static obs::Counter& late = obs::MetricsRegistry::global().counter("net.delayed");
      late.add(1);
      pending_.push_back(Pending{LateMessage{src, dst, tag, std::move(payload), clock_},
                                 clock_ + d, edge_index});
      return true;  // sent, just slow — it surfaces via a later begin_round()
    }
    // Reordering: the impairment hash promotes this delivery to the front of
    // the destination mailbox (older mail is read after it).
    if (transport && opts_.channel.reorder(src, dst, edge_index)) {
      ++reorders_;
      static obs::Counter& ro = obs::MetricsRegistry::global().counter("net.reordered");
      ro.add(1);
      boxes_[Key{src, dst, tag}].push_front(std::move(payload));
      return true;
    }
  }
  boxes_[Key{src, dst, tag}].push_back(std::move(payload));
  return true;
}

std::optional<std::vector<float>> Network::receive(std::size_t dst, std::size_t src,
                                                   const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = boxes_.find(Key{src, dst, tag});
  if (it == boxes_.end() || it->second.empty()) return std::nullopt;
  std::vector<float> payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) boxes_.erase(it);
  return payload;
}

bool Network::has_message(std::size_t dst, std::size_t src, const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = boxes_.find(Key{src, dst, tag});
  return it != boxes_.end() && !it->second.empty();
}

std::size_t Network::messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sent_;
}

std::size_t Network::messages_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t Network::messages_delayed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delayed_;
}

std::size_t Network::messages_corrupted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupted_;
}

std::size_t Network::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::size_t Network::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t Network::wire_messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wire_messages_;
}

std::size_t Network::wire_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wire_bytes_;
}

std::size_t Network::retransmits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retransmits_;
}

std::size_t Network::corruptions_detected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corruptions_detected_;
}

std::size_t Network::retry_exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retry_exhausted_;
}

std::size_t Network::duplicates_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_dropped_;
}

std::size_t Network::reorders() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reorders_;
}

std::size_t Network::round() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

std::vector<Network::EdgeTraffic> Network::edge_traffic() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EdgeTraffic> out;
  out.reserve(edge_counts_.size());
  for (const auto& [edge, count] : edge_counts_) {
    out.push_back({edge.first, edge.second, count.messages, count.bytes});
  }
  return out;
}

std::size_t Network::bytes_between(std::size_t src, std::size_t dst) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = edge_counts_.find({src, dst});
  return it == edge_counts_.end() ? 0 : it->second.bytes;
}

void Network::publish_edge_metrics(const std::string& prefix) const {
  const auto edges = edge_traffic();  // snapshot under the lock, publish outside
  auto& reg = obs::MetricsRegistry::global();
  for (const auto& e : edges) {
    const std::string suffix =
        "{edge=" + std::to_string(e.src) + "->" + std::to_string(e.dst) + "}";
    reg.counter(prefix + ".bytes" + suffix).add(e.bytes);
    reg.counter(prefix + ".msgs" + suffix).add(e.messages);
  }
}

std::size_t Network::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (auto& [key, q] : boxes_) n += q.size();
  boxes_.clear();
  return n;
}

void Network::save_state(io::ByteBuffer& buf) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, q] : boxes_) {
    if (!q.empty()) {
      throw std::runtime_error("Network::save_state: mailboxes not empty (checkpoint "
                               "between rounds, after clear())");
    }
  }
  io::append_u64(buf, clock_);
  io::append_u64(buf, sent_);
  io::append_u64(buf, dropped_);
  io::append_u64(buf, delayed_);
  io::append_u64(buf, corrupted_);
  io::append_u64(buf, bytes_);
  io::append_u64(buf, wire_messages_);
  io::append_u64(buf, wire_bytes_);
  io::append_u64(buf, retransmits_);
  io::append_u64(buf, corruptions_detected_);
  io::append_u64(buf, retry_exhausted_);
  io::append_u64(buf, duplicates_dropped_);
  io::append_u64(buf, reorders_);
  // Per-edge message indices: they key every drop/delay/corrupt decision, so
  // a resumed run must continue the sequence exactly. std::map iterates in
  // sorted order — the blob is deterministic.
  io::append_u64(buf, edge_counts_.size());
  for (const auto& [edge, count] : edge_counts_) {
    io::append_u64(buf, edge.first);
    io::append_u64(buf, edge.second);
    io::append_u64(buf, count.messages);
    io::append_u64(buf, count.bytes);
  }
  // In-flight delayed messages (sorted for determinism; begin_round sorts the
  // matured batch anyway, but identical state must serialize identically).
  std::vector<const Pending*> pending;
  pending.reserve(pending_.size());
  for (const auto& p : pending_) pending.push_back(&p);
  std::sort(pending.begin(), pending.end(), [](const Pending* a, const Pending* b) {
    if (a->msg.src != b->msg.src) return a->msg.src < b->msg.src;
    if (a->msg.dst != b->msg.dst) return a->msg.dst < b->msg.dst;
    if (a->msg.tag != b->msg.tag) return a->msg.tag < b->msg.tag;
    return a->edge_index < b->edge_index;
  });
  io::append_u64(buf, pending.size());
  for (const Pending* p : pending) {
    io::append_u64(buf, p->msg.src);
    io::append_u64(buf, p->msg.dst);
    io::append_string(buf, p->msg.tag);
    io::append_floats(buf, p->msg.payload);
    io::append_u64(buf, p->msg.sent_round);
    io::append_u64(buf, p->mature_round);
    io::append_u64(buf, p->edge_index);
  }
  io::append_u64(buf, replay_.size());
  for (const auto& [key, entry] : replay_) {
    io::append_u64(buf, key.src);
    io::append_u64(buf, key.dst);
    io::append_string(buf, key.kind);
    io::append_floats(buf, entry.payload);
    io::append_u64(buf, entry.round);
  }
}

void Network::restore_state(io::ByteReader& r) {
  std::lock_guard<std::mutex> lock(mu_);
  boxes_.clear();
  clock_ = static_cast<std::size_t>(r.read_u64("net clock"));
  sent_ = static_cast<std::size_t>(r.read_u64("net sent"));
  dropped_ = static_cast<std::size_t>(r.read_u64("net dropped"));
  delayed_ = static_cast<std::size_t>(r.read_u64("net delayed"));
  corrupted_ = static_cast<std::size_t>(r.read_u64("net corrupted"));
  bytes_ = static_cast<std::size_t>(r.read_u64("net bytes"));
  wire_messages_ = static_cast<std::size_t>(r.read_u64("net wire_messages"));
  wire_bytes_ = static_cast<std::size_t>(r.read_u64("net wire_bytes"));
  retransmits_ = static_cast<std::size_t>(r.read_u64("net retransmits"));
  corruptions_detected_ = static_cast<std::size_t>(r.read_u64("net corruptions_detected"));
  retry_exhausted_ = static_cast<std::size_t>(r.read_u64("net retry_exhausted"));
  duplicates_dropped_ = static_cast<std::size_t>(r.read_u64("net duplicates_dropped"));
  reorders_ = static_cast<std::size_t>(r.read_u64("net reorders"));
  edge_counts_.clear();
  const auto n_edges = r.read_u64("net edge count");
  for (std::uint64_t i = 0; i < n_edges; ++i) {
    const auto src = static_cast<std::size_t>(r.read_u64("net edge src"));
    const auto dst = static_cast<std::size_t>(r.read_u64("net edge dst"));
    EdgeCount count;
    count.messages = static_cast<std::size_t>(r.read_u64("net edge messages"));
    count.bytes = static_cast<std::size_t>(r.read_u64("net edge bytes"));
    edge_counts_[{src, dst}] = count;
  }
  pending_.clear();
  const auto n_pending = r.read_u64("net pending count");
  for (std::uint64_t i = 0; i < n_pending; ++i) {
    Pending p;
    p.msg.src = static_cast<std::size_t>(r.read_u64("net pending src"));
    p.msg.dst = static_cast<std::size_t>(r.read_u64("net pending dst"));
    p.msg.tag = r.read_string("net pending tag");
    p.msg.payload = r.read_floats("net pending payload");
    p.msg.sent_round = static_cast<std::size_t>(r.read_u64("net pending sent_round"));
    p.mature_round = static_cast<std::size_t>(r.read_u64("net pending mature_round"));
    p.edge_index = r.read_u64("net pending edge_index");
    pending_.push_back(std::move(p));
  }
  replay_.clear();
  const auto n_replay = r.read_u64("net replay count");
  for (std::uint64_t i = 0; i < n_replay; ++i) {
    ReplayKey key;
    key.src = static_cast<std::size_t>(r.read_u64("net replay src"));
    key.dst = static_cast<std::size_t>(r.read_u64("net replay dst"));
    key.kind = r.read_string("net replay kind");
    ReplayEntry entry;
    entry.payload = r.read_floats("net replay payload");
    entry.round = static_cast<std::size_t>(r.read_u64("net replay round"));
    replay_.emplace(std::move(key), std::move(entry));
  }
}

}  // namespace pdsl::sim
