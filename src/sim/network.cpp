#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "fleet/wire.hpp"
#include "obs/metrics.hpp"

namespace pdsl::sim {

Network::Network(const graph::TopologyView& topo, Options opts)
    : topo_(topo.clone()), opts_(std::move(opts)) {
  if (opts_.drop_prob < 0.0 || opts_.drop_prob >= 1.0) {
    throw std::invalid_argument("Network: drop_prob must be in [0,1)");
  }
  // Fold the legacy scalar knobs into the plan so there is exactly one source
  // of truth for fault decisions. Plan fields win when set; the fallback to
  // opts_.seed keeps the historical drop stream for drop_prob-only configs.
  if (opts_.faults.drop_prob == 0.0) opts_.faults.drop_prob = opts_.drop_prob;
  if (opts_.faults.seed == 0) opts_.faults.seed = opts_.seed;
  opts_.faults.validate();
  // S-BYZ: the adversary's noise streams default to the same seed family as
  // the benign faults (corrupt_payload salts internally to decorrelate).
  if (opts_.adversary.seed == 0) opts_.adversary.seed = opts_.faults.seed;
  opts_.adversary.validate();
}

std::vector<LateMessage> Network::begin_round(std::size_t t) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = t;
  std::vector<LateMessage> matured;
  std::vector<Pending> still_pending;
  std::vector<Pending> ready;
  for (auto& p : pending_) {
    (p.mature_round <= t ? ready : still_pending).push_back(std::move(p));
  }
  pending_ = std::move(still_pending);
  // Concurrent senders insert into pending_ in schedule-dependent order; a
  // total order over (src, dst, tag, per-edge index) restores determinism.
  std::sort(ready.begin(), ready.end(), [](const Pending& a, const Pending& b) {
    if (a.msg.src != b.msg.src) return a.msg.src < b.msg.src;
    if (a.msg.dst != b.msg.dst) return a.msg.dst < b.msg.dst;
    if (a.msg.tag != b.msg.tag) return a.msg.tag < b.msg.tag;
    return a.edge_index < b.edge_index;
  });
  matured.reserve(ready.size());
  for (auto& p : ready) matured.push_back(std::move(p.msg));
  return matured;
}

bool Network::send(std::size_t src, std::size_t dst, const std::string& tag,
                   std::vector<float> payload, Channel channel) {
  if (src >= topo_->size() || dst >= topo_->size()) {
    throw std::out_of_range("Network::send: agent id out of range");
  }
  if (src == dst) {
    if (!opts_.allow_self_send) throw std::invalid_argument("Network::send: self send disabled");
  } else if (!topo_->has_edge(src, dst)) {
    throw std::invalid_argument("Network::send: (" + std::to_string(src) + "," +
                                std::to_string(dst) + ") is not an edge");
  }
  const bool lossy_channel = (src != dst) && opts_.compressor != nullptr;
  // Compress outside the lock: apply() is const/stateless and can be the
  // expensive part of a send under top-k or quantization.
  const std::size_t wire_bytes = lossy_channel ? opts_.compressor->wire_bytes(payload)
                                               : payload.size() * sizeof(float);
  if (lossy_channel) payload = opts_.compressor->apply(payload);

  std::unique_lock<std::mutex> lock(mu_);
  if (opts_.wire_roundtrip) {
    // S-SCALE: prove the message survives serialization bit-identically and
    // deliver the decoded copy — exactly what a multi-process shard would see.
    fleet::WireMessage msg{static_cast<std::uint32_t>(src), static_cast<std::uint32_t>(dst),
                          static_cast<std::uint32_t>(clock_),
                          static_cast<std::uint8_t>(channel == Channel::kContribution ? 1 : 0),
                          tag, std::move(payload)};
    const io::ByteBuffer frame = fleet::wire_encode(msg);
    fleet::WireMessage decoded = fleet::wire_decode(frame);
    if (!fleet::wire_equal(msg, decoded)) {
      throw std::runtime_error("Network::send: wire round-trip mismatch on (" +
                               std::to_string(src) + "->" + std::to_string(dst) + ", " + tag +
                               ")");
    }
    ++wire_messages_;
    wire_bytes_ += frame.size();
    payload = std::move(decoded.payload);
  }
  ++sent_;
  bytes_ += wire_bytes;
  auto& edge = edge_counts_[{src, dst}];
  const std::size_t edge_index = edge.messages;  // nth message on this edge
  ++edge.messages;
  edge.bytes += wire_bytes;
  {
    // Process-wide totals; handles cached so the per-send cost is two
    // relaxed fetch_adds. Safe: registry instruments are atomic and the
    // magic-static initialization is thread-safe.
    static obs::Counter& msgs = obs::MetricsRegistry::global().counter("net.msgs");
    static obs::Counter& bytes = obs::MetricsRegistry::global().counter("net.bytes");
    msgs.add(1);
    bytes.add(wire_bytes);
  }
  if (src != dst) {
    const FaultPlan& plan = opts_.faults;
    // Churn: traffic to or from an offline agent is lost on the wire. The
    // decision keys on the round clock, so algorithms that never call
    // begin_round() (clock 0) see no churn.
    if (plan.offline(src, clock_) || plan.offline(dst, clock_)) {
      ++dropped_;
      static obs::Counter& off = obs::MetricsRegistry::global().counter("net.offline_drops");
      off.add(1);
      return false;
    }
    // Drop decision as a pure function of (seed, edge, per-edge index): the
    // same messages drop no matter how concurrent senders interleave, which
    // is what makes fault injection reproducible across --threads settings.
    if (plan.drop(src, dst, edge_index, clock_)) {
      ++dropped_;
      static obs::Counter& drops = obs::MetricsRegistry::global().counter("net.dropped");
      drops.add(1);
      return false;
    }
    // S-BYZ: an active Byzantine sender corrupts its contribution payload at
    // this boundary — after the drop decision (corrupting a lost message is
    // moot) and before any delay (the attacker sent it corrupted, so that is
    // what matures later). Every decision is a pure function of the plan and
    // the message identity, so attack traces are interleaving-independent.
    if (channel == Channel::kContribution && opts_.adversary.any()) {
      const ByzRole role = opts_.adversary.role(src, topo_->size(), clock_);
      bool hit = false;
      if (role.mode == ByzMode::kStaleReplay) {
        const auto at = tag.find('@');
        const ReplayKey key{src, dst, at == std::string::npos ? tag : tag.substr(0, at)};
        const auto it = replay_.find(key);
        if (it == replay_.end()) {
          // First send on this key: record it (and let it through honest) so
          // there is something old to replay from the next round on.
          replay_.emplace(key, ReplayEntry{payload, clock_});
        } else if (it->second.round < clock_) {
          payload = it->second.payload;
          hit = true;
        }
      } else if (role.mode != ByzMode::kNone) {
        corrupt_payload(role, opts_.adversary.seed, src, dst, hash_tag(tag), payload);
        hit = true;
      }
      if (hit) {
        ++corrupted_;
        static obs::Counter& byz =
            obs::MetricsRegistry::global().counter("net.byz_corrupted");
        byz.add(1);
      }
    }
    if (const std::size_t d = plan.delay(src, dst, edge_index); d > 0) {
      ++delayed_;
      static obs::Counter& late = obs::MetricsRegistry::global().counter("net.delayed");
      late.add(1);
      pending_.push_back(Pending{LateMessage{src, dst, tag, std::move(payload), clock_},
                                 clock_ + d, edge_index});
      return true;  // sent, just slow — it surfaces via a later begin_round()
    }
  }
  boxes_[Key{src, dst, tag}].push(std::move(payload));
  return true;
}

std::optional<std::vector<float>> Network::receive(std::size_t dst, std::size_t src,
                                                   const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = boxes_.find(Key{src, dst, tag});
  if (it == boxes_.end() || it->second.empty()) return std::nullopt;
  std::vector<float> payload = std::move(it->second.front());
  it->second.pop();
  if (it->second.empty()) boxes_.erase(it);
  return payload;
}

bool Network::has_message(std::size_t dst, std::size_t src, const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = boxes_.find(Key{src, dst, tag});
  return it != boxes_.end() && !it->second.empty();
}

std::size_t Network::messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sent_;
}

std::size_t Network::messages_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t Network::messages_delayed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delayed_;
}

std::size_t Network::messages_corrupted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupted_;
}

std::size_t Network::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::size_t Network::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t Network::wire_messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wire_messages_;
}

std::size_t Network::wire_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wire_bytes_;
}

std::size_t Network::round() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

std::vector<Network::EdgeTraffic> Network::edge_traffic() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EdgeTraffic> out;
  out.reserve(edge_counts_.size());
  for (const auto& [edge, count] : edge_counts_) {
    out.push_back({edge.first, edge.second, count.messages, count.bytes});
  }
  return out;
}

std::size_t Network::bytes_between(std::size_t src, std::size_t dst) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = edge_counts_.find({src, dst});
  return it == edge_counts_.end() ? 0 : it->second.bytes;
}

void Network::publish_edge_metrics(const std::string& prefix) const {
  const auto edges = edge_traffic();  // snapshot under the lock, publish outside
  auto& reg = obs::MetricsRegistry::global();
  for (const auto& e : edges) {
    const std::string suffix =
        "{edge=" + std::to_string(e.src) + "->" + std::to_string(e.dst) + "}";
    reg.counter(prefix + ".bytes" + suffix).add(e.bytes);
    reg.counter(prefix + ".msgs" + suffix).add(e.messages);
  }
}

std::size_t Network::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (auto& [key, q] : boxes_) n += q.size();
  boxes_.clear();
  return n;
}

}  // namespace pdsl::sim
