#include "sim/network.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace pdsl::sim {

Network::Network(const graph::Topology& topo, Options opts)
    : topo_(topo), opts_(opts), rng_(opts.seed) {
  if (opts.drop_prob < 0.0 || opts.drop_prob >= 1.0) {
    throw std::invalid_argument("Network: drop_prob must be in [0,1)");
  }
}

bool Network::send(std::size_t src, std::size_t dst, const std::string& tag,
                   std::vector<float> payload) {
  if (src >= topo_.size() || dst >= topo_.size()) {
    throw std::out_of_range("Network::send: agent id out of range");
  }
  if (src == dst) {
    if (!opts_.allow_self_send) throw std::invalid_argument("Network::send: self send disabled");
  } else if (!topo_.has_edge(src, dst)) {
    throw std::invalid_argument("Network::send: (" + std::to_string(src) + "," +
                                std::to_string(dst) + ") is not an edge");
  }
  ++sent_;
  const bool lossy_channel = (src != dst) && opts_.compressor != nullptr;
  const std::size_t wire_bytes = lossy_channel ? opts_.compressor->wire_bytes(payload)
                                               : payload.size() * sizeof(float);
  bytes_ += wire_bytes;
  auto& edge = edge_counts_[{src, dst}];
  ++edge.messages;
  edge.bytes += wire_bytes;
  {
    // Process-wide totals; handles cached so the per-send cost is two
    // relaxed fetch_adds.
    static obs::Counter& msgs = obs::MetricsRegistry::global().counter("net.msgs");
    static obs::Counter& bytes = obs::MetricsRegistry::global().counter("net.bytes");
    msgs.add(1);
    bytes.add(wire_bytes);
  }
  if (src != dst && opts_.drop_prob > 0.0 && rng_.bernoulli(opts_.drop_prob)) {
    ++dropped_;
    return false;
  }
  if (lossy_channel) payload = opts_.compressor->apply(payload);
  boxes_[Key{src, dst, tag}].push(std::move(payload));
  return true;
}

std::optional<std::vector<float>> Network::receive(std::size_t dst, std::size_t src,
                                                   const std::string& tag) {
  const auto it = boxes_.find(Key{src, dst, tag});
  if (it == boxes_.end() || it->second.empty()) return std::nullopt;
  std::vector<float> payload = std::move(it->second.front());
  it->second.pop();
  if (it->second.empty()) boxes_.erase(it);
  return payload;
}

bool Network::has_message(std::size_t dst, std::size_t src, const std::string& tag) const {
  const auto it = boxes_.find(Key{src, dst, tag});
  return it != boxes_.end() && !it->second.empty();
}

std::vector<Network::EdgeTraffic> Network::edge_traffic() const {
  std::vector<EdgeTraffic> out;
  out.reserve(edge_counts_.size());
  for (const auto& [edge, count] : edge_counts_) {
    out.push_back({edge.first, edge.second, count.messages, count.bytes});
  }
  return out;
}

std::size_t Network::bytes_between(std::size_t src, std::size_t dst) const {
  const auto it = edge_counts_.find({src, dst});
  return it == edge_counts_.end() ? 0 : it->second.bytes;
}

void Network::publish_edge_metrics(const std::string& prefix) const {
  auto& reg = obs::MetricsRegistry::global();
  for (const auto& [edge, count] : edge_counts_) {
    const std::string suffix =
        "{edge=" + std::to_string(edge.first) + "->" + std::to_string(edge.second) + "}";
    reg.counter(prefix + ".bytes" + suffix).add(count.bytes);
    reg.counter(prefix + ".msgs" + suffix).add(count.messages);
  }
}

std::size_t Network::clear() {
  std::size_t n = 0;
  for (auto& [key, q] : boxes_) n += q.size();
  boxes_.clear();
  return n;
}

}  // namespace pdsl::sim
