#include "sim/network.hpp"

#include <stdexcept>

namespace pdsl::sim {

Network::Network(const graph::Topology& topo, Options opts)
    : topo_(topo), opts_(opts), rng_(opts.seed) {
  if (opts.drop_prob < 0.0 || opts.drop_prob >= 1.0) {
    throw std::invalid_argument("Network: drop_prob must be in [0,1)");
  }
}

bool Network::send(std::size_t src, std::size_t dst, const std::string& tag,
                   std::vector<float> payload) {
  if (src >= topo_.size() || dst >= topo_.size()) {
    throw std::out_of_range("Network::send: agent id out of range");
  }
  if (src == dst) {
    if (!opts_.allow_self_send) throw std::invalid_argument("Network::send: self send disabled");
  } else if (!topo_.has_edge(src, dst)) {
    throw std::invalid_argument("Network::send: (" + std::to_string(src) + "," +
                                std::to_string(dst) + ") is not an edge");
  }
  ++sent_;
  const bool lossy_channel = (src != dst) && opts_.compressor != nullptr;
  bytes_ += lossy_channel ? opts_.compressor->wire_bytes(payload)
                          : payload.size() * sizeof(float);
  if (src != dst && opts_.drop_prob > 0.0 && rng_.bernoulli(opts_.drop_prob)) {
    ++dropped_;
    return false;
  }
  if (lossy_channel) payload = opts_.compressor->apply(payload);
  boxes_[Key{src, dst, tag}].push(std::move(payload));
  return true;
}

std::optional<std::vector<float>> Network::receive(std::size_t dst, std::size_t src,
                                                   const std::string& tag) {
  const auto it = boxes_.find(Key{src, dst, tag});
  if (it == boxes_.end() || it->second.empty()) return std::nullopt;
  std::vector<float> payload = std::move(it->second.front());
  it->second.pop();
  if (it->second.empty()) boxes_.erase(it);
  return payload;
}

bool Network::has_message(std::size_t dst, std::size_t src, const std::string& tag) const {
  const auto it = boxes_.find(Key{src, dst, tag});
  return it != boxes_.end() && !it->second.empty();
}

std::size_t Network::clear() {
  std::size_t n = 0;
  for (auto& [key, q] : boxes_) n += q.size();
  boxes_.clear();
  return n;
}

}  // namespace pdsl::sim
