#pragma once
// 2x2 (configurable) max pooling with stride equal to the window size, as in
// the paper's CNNs. Stores argmax indices for the backward pass.

#include "nn/layer.hpp"

namespace pdsl::nn {

class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(std::size_t window = 2);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "MaxPool2D"; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;

 private:
  std::size_t win_;
  Shape cached_in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

}  // namespace pdsl::nn
