#pragma once
// Layer normalization over the feature dimension of a 2-D (N, F) input, with
// learnable gain/bias. Unlike batch norm it has no running statistics, so it
// is exactly compatible with the flat-parameter view the decentralized
// algorithms rely on (every learnable state travels with the model vector).

#include "nn/layer.hpp"

namespace pdsl::nn {

class LayerNorm final : public Layer {
 public:
  explicit LayerNorm(std::size_t features, double epsilon = 1e-5);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gain_, &bias_}; }
  void init(Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "LayerNorm"; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;

 private:
  std::size_t features_;
  double eps_;
  Param gain_;  // gamma
  Param bias_;  // beta
  Tensor cached_norm_;          ///< normalized input (pre gain/bias)
  std::vector<double> inv_std_; ///< per-row 1/std
};

}  // namespace pdsl::nn
