#pragma once
// Flatten (N, C, H, W) -> (N, C*H*W), the glue between conv stacks and FC heads.

#include "nn/layer.hpp"

namespace pdsl::nn {

class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;

 private:
  Shape cached_in_shape_;
};

}  // namespace pdsl::nn
