#include "nn/model.hpp"

#include <stdexcept>

namespace pdsl::nn {

Model::Model(const Model& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Model& Model::operator=(const Model& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  return *this;
}

Model& Model::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::init(Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

Tensor Model::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x);
  return x;
}

void Model::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
}

void Model::zero_grad() {
  for (auto* p : all_params()) p->grad.zero();
}

void Model::set_training(bool training) {
  for (auto& l : layers_) l->set_training(training);
}

std::vector<Param*> Model::all_params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (auto* p : l->params()) out.push_back(p);
  }
  return out;
}

std::vector<const Param*> Model::all_params() const {
  std::vector<const Param*> out;
  for (const auto& l : layers_) {
    for (auto* p : const_cast<Layer&>(*l).params()) out.push_back(p);
  }
  return out;
}

std::size_t Model::num_params() const {
  std::size_t n = 0;
  for (const auto* p : all_params()) n += p->value.numel();
  return n;
}

std::vector<float> Model::flat_params() const {
  std::vector<float> flat;
  flat.reserve(num_params());
  for (const auto* p : all_params()) {
    flat.insert(flat.end(), p->value.vec().begin(), p->value.vec().end());
  }
  return flat;
}

void Model::set_flat_params(const std::vector<float>& flat) {
  if (flat.size() != num_params()) {
    throw std::invalid_argument("Model::set_flat_params: expected " +
                                std::to_string(num_params()) + " values, got " +
                                std::to_string(flat.size()));
  }
  std::size_t off = 0;
  for (auto* p : all_params()) {
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + p->value.numel()),
              p->value.vec().begin());
    off += p->value.numel();
  }
}

std::vector<float> Model::flat_grad() const {
  std::vector<float> flat;
  flat.reserve(num_params());
  for (const auto* p : all_params()) {
    flat.insert(flat.end(), p->grad.vec().begin(), p->grad.vec().end());
  }
  return flat;
}

double Model::loss_and_backward(const Tensor& batch_x, const std::vector<int>& batch_y) {
  zero_grad();
  set_training(true);
  const Tensor logits = forward(batch_x);
  const double value = loss_.forward(logits, batch_y);
  backward(loss_.backward());
  set_training(false);
  return value;
}

double Model::loss(const Tensor& batch_x, const std::vector<int>& batch_y) {
  const Tensor logits = forward(batch_x);
  return loss_.forward(logits, batch_y);
}

double Model::accuracy(const Tensor& batch_x, const std::vector<int>& batch_y) {
  const Tensor logits = forward(batch_x);
  loss_.forward(logits, batch_y);
  return loss_.accuracy();
}

std::vector<bool> Model::per_sample_correct(const Tensor& batch_x,
                                            const std::vector<int>& batch_y) {
  const Tensor logits = forward(batch_x);
  loss_.forward(logits, batch_y);
  return loss_.correct();
}

std::vector<double> Model::per_sample_losses(const Tensor& batch_x,
                                             const std::vector<int>& batch_y) {
  const Tensor logits = forward(batch_x);
  loss_.forward(logits, batch_y);
  return loss_.per_sample_losses();
}

}  // namespace pdsl::nn
