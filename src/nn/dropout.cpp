#include "nn/dropout.hpp"

#include <stdexcept>

namespace pdsl::nn {

Dropout::Dropout(double rate, std::uint64_t seed)
    : rate_(rate), seed_(seed), rng_(seed) {
  if (rate < 0.0 || rate >= 1.0) throw std::invalid_argument("Dropout: rate in [0,1)");
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || rate_ == 0.0) {
    mask_.clear();
    return input;
  }
  Tensor out = input;
  mask_.assign(input.numel(), 0.0f);
  const auto keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (rng_.bernoulli(1.0 - rate_)) {
      mask_[i] = keep_scale;
      out[i] *= keep_scale;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;  // eval-mode forward: identity
  if (grad_output.numel() != mask_.size()) {
    throw std::invalid_argument("Dropout::backward: grad does not match last forward");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= mask_[i];
  return grad;
}

std::unique_ptr<Layer> Dropout::clone() const { return std::make_unique<Dropout>(rate_, seed_); }

}  // namespace pdsl::nn
