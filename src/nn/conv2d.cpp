#include "nn/conv2d.hpp"

#include <cmath>
#include <stdexcept>

#include "kernels/backend.hpp"
#include "kernels/gemm.hpp"

namespace pdsl::nn {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t pad)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      pad_(pad),
      weight_(Shape{out_channels, in_channels, kernel, kernel}),
      bias_(Shape{out_channels}) {
  if (kernel == 0) throw std::invalid_argument("Conv2D: kernel must be positive");
}

void Conv2D::init(Rng& rng) {
  const double fan_in = static_cast<double>(in_ch_ * k_ * k_);
  rng.fill_normal(weight_.value.vec(), 0.0, std::sqrt(2.0 / fan_in));
  bias_.value.zero();
}

Shape Conv2D::output_shape(const Shape& input) const {
  if (input.size() != 4 || input[1] != in_ch_) {
    throw std::invalid_argument("Conv2D: expected (N, " + std::to_string(in_ch_) +
                                ", H, W), got " + shape_to_string(input));
  }
  const std::size_t h = input[2] + 2 * pad_;
  const std::size_t w = input[3] + 2 * pad_;
  if (h < k_ || w < k_) throw std::invalid_argument("Conv2D: input smaller than kernel");
  return Shape{input[0], out_ch_, h - k_ + 1, w - k_ + 1};
}

Tensor Conv2D::forward(const Tensor& input) {
  const Shape out_shape = output_shape(input.shape());
  cached_input_ = input;
  // Every non-naive backend (blocked, vectorized, auto) lowers to im2col —
  // the inner GEMMs then dispatch per shape as usual.
  if (kernels::backend() != kernels::Backend::kNaive) {
    return forward_im2col(input, out_shape);
  }
  return forward_direct(input, out_shape);
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const Shape out_shape = output_shape(cached_input_.shape());
  if (grad_output.shape() != out_shape) {
    throw std::invalid_argument("Conv2D::backward: bad grad shape");
  }
  if (kernels::backend() != kernels::Backend::kNaive) {
    return backward_im2col(grad_output, out_shape);
  }
  return backward_direct(grad_output, out_shape);
}

// ---------------------------------------------------------------------------
// Blocked path: per image, lower to a column matrix and run GEMMs.
//   forward:  Y_b(out_ch, oh*ow)  = W(out_ch, ickk) * col_b  (rows seeded
//             with the bias, GEMM accumulates on top)
//   backward: dW += dY_b * col_b^T ; dcol = W^T * dY_b ; dX_b = col2im(dcol)
// ---------------------------------------------------------------------------

Tensor Conv2D::forward_im2col(const Tensor& input, const Shape& out_shape) {
  Tensor out(out_shape);
  const std::size_t n = input.dim(0), ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = out_shape[2], ow = out_shape[3];
  const std::size_t npix = oh * ow;
  const std::size_t ickk = in_ch_ * k_ * k_;
  float* col = scratch_.buffer(0, ickk * npix);
  const float* w = weight_.value.data();
  for (std::size_t b = 0; b < n; ++b) {
    kernels::im2col(input.data() + b * in_ch_ * ih * iw, in_ch_, ih, iw, k_, pad_, col);
    float* y = out.data() + b * out_ch_ * npix;
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float bias = bias_.value[oc];
      float* row = y + oc * npix;
      for (std::size_t i = 0; i < npix; ++i) row[i] = bias;
    }
    kernels::sgemm(out_ch_, ickk, npix, w, col, y, /*accumulate=*/true);
  }
  return out;
}

Tensor Conv2D::backward_im2col(const Tensor& grad_output, const Shape& out_shape) {
  const Shape in_shape = cached_input_.shape();
  const std::size_t n = in_shape[0], ih = in_shape[2], iw = in_shape[3];
  const std::size_t oh = out_shape[2], ow = out_shape[3];
  const std::size_t npix = oh * ow;
  const std::size_t ickk = in_ch_ * k_ * k_;
  Tensor grad_input(in_shape);
  float* col = scratch_.buffer(0, ickk * npix);
  float* dcol = scratch_.buffer(1, ickk * npix);
  const float* x = cached_input_.data();
  const float* w = weight_.value.data();
  const float* gy = grad_output.data();
  float* gx = grad_input.data();
  float* gw = weight_.grad.data();

  for (std::size_t b = 0; b < n; ++b) {
    const float* gy_b = gy + b * out_ch_ * npix;
    // Bias gradient: double-accumulated per map, like the direct path.
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float* gymap = gy_b + oc * npix;
      double bias_acc = 0.0;
      for (std::size_t i = 0; i < npix; ++i) bias_acc += gymap[i];
      bias_.grad[oc] += static_cast<float>(bias_acc);
    }
    // Recompute the column matrix (cheaper than caching one per batch image).
    kernels::im2col(x + b * in_ch_ * ih * iw, in_ch_, ih, iw, k_, pad_, col);
    // dW(out_ch, ickk) += dY_b(out_ch, npix) * col(ickk, npix)^T.
    kernels::sgemm_transpose_b(out_ch_, npix, ickk, gy_b, col, gw, /*accumulate=*/true);
    // dcol(ickk, npix) = W(out_ch, ickk)^T * dY_b(out_ch, npix).
    kernels::sgemm_transpose_a(out_ch_, ickk, npix, w, gy_b, dcol);
    kernels::col2im(dcol, in_ch_, ih, iw, k_, pad_, gx + b * in_ch_ * ih * iw);
  }
  return grad_input;
}

// ---------------------------------------------------------------------------
// Naive path: the original direct loops, kept as the reference backend. The
// former `g == 0.0f` skip in backward is gone — it silently dropped NaN/Inf
// propagation from weights and activations.
// ---------------------------------------------------------------------------

Tensor Conv2D::forward_direct(const Tensor& input, const Shape& out_shape) {
  Tensor out(out_shape);
  const std::size_t n = input.dim(0), ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = out_shape[2], ow = out_shape[3];
  const float* x = input.data();
  const float* w = weight_.value.data();
  float* y = out.data();

  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      float* ymap = y + ((b * out_ch_ + oc) * oh) * ow;
      const float bias = bias_.value[oc];
      for (std::size_t i = 0; i < oh * ow; ++i) ymap[i] = bias;
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        const float* xmap = x + ((b * in_ch_ + ic) * ih) * iw;
        const float* wmap = w + ((oc * in_ch_ + ic) * k_) * k_;
        for (std::size_t r = 0; r < oh; ++r) {
          for (std::size_t c = 0; c < ow; ++c) {
            float acc = 0.0f;
            for (std::size_t kr = 0; kr < k_; ++kr) {
              const std::ptrdiff_t xr = static_cast<std::ptrdiff_t>(r + kr) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (xr < 0 || xr >= static_cast<std::ptrdiff_t>(ih)) continue;
              for (std::size_t kc = 0; kc < k_; ++kc) {
                const std::ptrdiff_t xc = static_cast<std::ptrdiff_t>(c + kc) -
                                          static_cast<std::ptrdiff_t>(pad_);
                if (xc < 0 || xc >= static_cast<std::ptrdiff_t>(iw)) continue;
                acc += xmap[xr * static_cast<std::ptrdiff_t>(iw) + xc] * wmap[kr * k_ + kc];
              }
            }
            ymap[r * ow + c] += acc;
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv2D::backward_direct(const Tensor& grad_output, const Shape& out_shape) {
  const Shape in_shape = cached_input_.shape();
  const std::size_t n = in_shape[0], ih = in_shape[2], iw = in_shape[3];
  const std::size_t oh = out_shape[2], ow = out_shape[3];
  Tensor grad_input(in_shape);
  const float* x = cached_input_.data();
  const float* w = weight_.value.data();
  const float* gy = grad_output.data();
  float* gx = grad_input.data();
  float* gw = weight_.grad.data();

  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float* gymap = gy + ((b * out_ch_ + oc) * oh) * ow;
      double bias_acc = 0.0;
      for (std::size_t i = 0; i < oh * ow; ++i) bias_acc += gymap[i];
      bias_.grad[oc] += static_cast<float>(bias_acc);
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        const float* xmap = x + ((b * in_ch_ + ic) * ih) * iw;
        const float* wmap = w + ((oc * in_ch_ + ic) * k_) * k_;
        float* gxmap = gx + ((b * in_ch_ + ic) * ih) * iw;
        float* gwmap = gw + ((oc * in_ch_ + ic) * k_) * k_;
        for (std::size_t r = 0; r < oh; ++r) {
          for (std::size_t c = 0; c < ow; ++c) {
            const float g = gymap[r * ow + c];
            for (std::size_t kr = 0; kr < k_; ++kr) {
              const std::ptrdiff_t xr = static_cast<std::ptrdiff_t>(r + kr) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (xr < 0 || xr >= static_cast<std::ptrdiff_t>(ih)) continue;
              for (std::size_t kc = 0; kc < k_; ++kc) {
                const std::ptrdiff_t xc = static_cast<std::ptrdiff_t>(c + kc) -
                                          static_cast<std::ptrdiff_t>(pad_);
                if (xc < 0 || xc >= static_cast<std::ptrdiff_t>(iw)) continue;
                const std::size_t xi = static_cast<std::size_t>(xr) * iw +
                                       static_cast<std::size_t>(xc);
                gwmap[kr * k_ + kc] += g * xmap[xi];
                gxmap[xi] += g * wmap[kr * k_ + kc];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::unique_ptr<Layer> Conv2D::clone() const {
  auto copy = std::make_unique<Conv2D>(in_ch_, out_ch_, k_, pad_);
  copy->weight_.value = weight_.value;
  copy->bias_.value = bias_.value;
  return copy;
}

}  // namespace pdsl::nn
