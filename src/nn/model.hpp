#pragma once
// Sequential model over Layers plus the flat-parameter view that the
// decentralized algorithms use: a model is, to an algorithm, the vector
// x in R^d from the paper; set_flat_params/flat_grad convert between views.

#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "nn/loss.hpp"

namespace pdsl::nn {

class Model {
 public:
  Model() = default;
  Model(const Model& other);
  Model& operator=(const Model& other);
  Model(Model&&) noexcept = default;
  Model& operator=(Model&&) noexcept = default;

  /// Append a layer; returns *this for chaining.
  Model& add(std::unique_ptr<Layer> layer);

  template <typename L, typename... Args>
  Model& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// Initialize every layer's parameters.
  void init(Rng& rng);

  /// Forward pass through all layers.
  Tensor forward(const Tensor& input);

  /// Backward pass; accumulates parameter gradients.
  void backward(const Tensor& grad_output);

  void zero_grad();

  /// Toggle training mode on every layer (dropout etc.). loss_and_backward
  /// enables it around its forward/backward pair automatically; evaluation
  /// entry points run in eval mode.
  void set_training(bool training);

  /// ----- flat parameter view -----
  [[nodiscard]] std::size_t num_params() const;
  [[nodiscard]] std::vector<float> flat_params() const;
  void set_flat_params(const std::vector<float>& flat);
  [[nodiscard]] std::vector<float> flat_grad() const;

  /// ----- convenience training/eval entry points -----

  /// Zeroes grads, runs forward + loss + backward; returns the mean loss.
  double loss_and_backward(const Tensor& batch_x, const std::vector<int>& batch_y);

  /// Mean loss without touching gradients.
  double loss(const Tensor& batch_x, const std::vector<int>& batch_y);

  /// Classification accuracy on a batch.
  double accuracy(const Tensor& batch_x, const std::vector<int>& batch_y);

  /// Per-sample correctness on a batch (Shapley's characteristic function
  /// needs per-sample accuracy J(ξ; x), Eq. 16).
  std::vector<bool> per_sample_correct(const Tensor& batch_x, const std::vector<int>& batch_y);

  /// Per-sample losses on a batch (for membership-inference evaluation).
  std::vector<double> per_sample_losses(const Tensor& batch_x, const std::vector<int>& batch_y);

  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_[i]; }

 private:
  std::vector<Param*> all_params();
  [[nodiscard]] std::vector<const Param*> all_params() const;

  std::vector<std::unique_ptr<Layer>> layers_;
  SoftmaxCrossEntropy loss_;
};

}  // namespace pdsl::nn
