#pragma once
// Inverted dropout. Active only in training mode (Model::loss_and_backward
// flips training on for the forward/backward pair); evaluation passes are
// deterministic identity.

#include "nn/layer.hpp"

namespace pdsl::nn {

class Dropout final : public Layer {
 public:
  /// `rate` in [0, 1): probability of zeroing an activation.
  explicit Dropout(double rate, std::uint64_t seed = 0x0D0D);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void set_training(bool training) override { training_ = training; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override { return input; }

  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
  std::uint64_t seed_;
  Rng rng_;
  bool training_ = false;
  std::vector<float> mask_;  ///< scale per element of the last training forward
};

}  // namespace pdsl::nn
