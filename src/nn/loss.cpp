#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace pdsl::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits, const std::vector<int>& labels) {
  if (logits.rank() != 2) throw std::invalid_argument("SoftmaxCrossEntropy: logits must be 2-D");
  const std::size_t n = logits.dim(0), classes = logits.dim(1);
  if (labels.size() != n) throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  probs_ = softmax_rows(logits);
  labels_ = labels;
  correct_.assign(n, false);
  sample_losses_.assign(n, 0.0);
  double loss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const int y = labels[r];
    if (y < 0 || static_cast<std::size_t>(y) >= classes) {
      throw std::out_of_range("SoftmaxCrossEntropy: label out of range");
    }
    const float p = probs_.at2(r, static_cast<std::size_t>(y));
    sample_losses_[r] = -std::log(std::max(p, 1e-12f));
    loss += sample_losses_[r];
    correct_[r] = (argmax_row(probs_, r) == static_cast<std::size_t>(y));
  }
  return loss / static_cast<double>(n);
}

Tensor SoftmaxCrossEntropy::backward() const {
  if (labels_.empty()) throw std::logic_error("SoftmaxCrossEntropy::backward before forward");
  Tensor grad = probs_;
  const std::size_t n = grad.dim(0);
  const auto inv_n = static_cast<float>(1.0 / static_cast<double>(n));
  for (std::size_t r = 0; r < n; ++r) {
    grad.at2(r, static_cast<std::size_t>(labels_[r])) -= 1.0f;
  }
  grad *= inv_n;
  return grad;
}

double SoftmaxCrossEntropy::accuracy() const {
  if (correct_.empty()) return 0.0;
  std::size_t hits = 0;
  for (bool c : correct_) hits += c ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(correct_.size());
}

}  // namespace pdsl::nn
