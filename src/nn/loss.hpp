#pragma once
// Softmax cross-entropy loss over integer class labels. Fused: backward
// computes (softmax - onehot)/N directly, which is both faster and more
// numerically stable than chaining separate softmax and NLL layers.

#include <vector>

#include "tensor/tensor.hpp"

namespace pdsl::nn {

class SoftmaxCrossEntropy {
 public:
  /// Mean cross-entropy of logits (N, classes) against labels (N).
  double forward(const Tensor& logits, const std::vector<int>& labels);

  /// Gradient of the mean loss w.r.t. the logits of the last forward().
  [[nodiscard]] Tensor backward() const;

  /// Fraction of rows whose argmax equals the label (uses last forward()).
  [[nodiscard]] double accuracy() const;

  /// Per-sample correctness of the last forward() (for Shapley's per-sample J).
  [[nodiscard]] const std::vector<bool>& correct() const { return correct_; }

  /// Per-sample cross-entropy of the last forward() (membership-inference
  /// attacks threshold these).
  [[nodiscard]] const std::vector<double>& per_sample_losses() const { return sample_losses_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
  std::vector<bool> correct_;
  std::vector<double> sample_losses_;
};

}  // namespace pdsl::nn
