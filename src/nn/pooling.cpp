#include "nn/pooling.hpp"

#include <stdexcept>

namespace pdsl::nn {

MaxPool2D::MaxPool2D(std::size_t window) : win_(window) {
  if (window == 0) throw std::invalid_argument("MaxPool2D: window must be positive");
}

Shape MaxPool2D::output_shape(const Shape& input) const {
  if (input.size() != 4) {
    throw std::invalid_argument("MaxPool2D: expected 4-D input, got " + shape_to_string(input));
  }
  if (input[2] < win_ || input[3] < win_) {
    throw std::invalid_argument("MaxPool2D: input smaller than window");
  }
  return Shape{input[0], input[1], input[2] / win_, input[3] / win_};
}

Tensor MaxPool2D::forward(const Tensor& input) {
  const Shape out_shape = output_shape(input.shape());
  cached_in_shape_ = input.shape();
  Tensor out(out_shape);
  argmax_.assign(out.numel(), 0);
  const std::size_t n = input.dim(0), ch = input.dim(1), ih = input.dim(2), iw = input.dim(3);
  const std::size_t oh = out_shape[2], ow = out_shape[3];
  const float* x = input.data();
  float* y = out.data();
  std::size_t oi = 0;
  if (win_ == 2) {
    // Fast path for the 2x2 window every model in the zoo uses: the four
    // candidates are compared in the same (dr, dc) order as the generic loop
    // with the same strict `>`, so results and argmax ties are bit-identical.
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t c = 0; c < ch; ++c) {
        const std::size_t plane = (b * ch + c) * ih * iw;
        for (std::size_t r = 0; r < oh; ++r) {
          const float* row0 = x + plane + (2 * r) * iw;
          const float* row1 = row0 + iw;
          const std::size_t base = plane + (2 * r) * iw;
          for (std::size_t col = 0; col < ow; ++col, ++oi) {
            const std::size_t c0 = 2 * col;
            float best = -1e30f;
            std::size_t best_idx = base + c0;
            if (row0[c0] > best) {
              best = row0[c0];
            }
            if (row0[c0 + 1] > best) {
              best = row0[c0 + 1];
              best_idx = base + c0 + 1;
            }
            if (row1[c0] > best) {
              best = row1[c0];
              best_idx = base + iw + c0;
            }
            if (row1[c0 + 1] > best) {
              best = row1[c0 + 1];
              best_idx = base + iw + c0 + 1;
            }
            y[oi] = best;
            argmax_[oi] = best_idx;
          }
        }
      }
    }
    return out;
  }
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      const std::size_t plane = (b * ch + c) * ih * iw;
      for (std::size_t r = 0; r < oh; ++r) {
        for (std::size_t col = 0; col < ow; ++col, ++oi) {
          float best = -1e30f;
          std::size_t best_idx = plane + (r * win_) * iw + col * win_;
          for (std::size_t dr = 0; dr < win_; ++dr) {
            for (std::size_t dc = 0; dc < win_; ++dc) {
              const std::size_t idx = plane + (r * win_ + dr) * iw + (col * win_ + dc);
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          y[oi] = best;
          argmax_[oi] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (grad_output.numel() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2D::backward: grad does not match last forward");
  }
  Tensor grad_input(cached_in_shape_);
  float* gx = grad_input.data();
  const float* gy = grad_output.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gx[argmax_[i]] += gy[i];
  return grad_input;
}

std::unique_ptr<Layer> MaxPool2D::clone() const { return std::make_unique<MaxPool2D>(win_); }

}  // namespace pdsl::nn
