#include "nn/flatten.hpp"

#include <stdexcept>

namespace pdsl::nn {

Shape Flatten::output_shape(const Shape& input) const {
  if (input.empty()) throw std::invalid_argument("Flatten: empty shape");
  std::size_t rest = 1;
  for (std::size_t i = 1; i < input.size(); ++i) rest *= input[i];
  return Shape{input[0], rest};
}

Tensor Flatten::forward(const Tensor& input) {
  cached_in_shape_ = input.shape();
  return input.reshaped(output_shape(input.shape()));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_in_shape_);
}

std::unique_ptr<Layer> Flatten::clone() const { return std::make_unique<Flatten>(); }

}  // namespace pdsl::nn
