#pragma once
// Fully connected layer: y = x W^T + b, x is (N, in), W is (out, in).

#include "nn/layer.hpp"

namespace pdsl::nn {

class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void init(Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Linear"; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace pdsl::nn
