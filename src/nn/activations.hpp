#pragma once
// Stateless activation layers. ReLU is what the paper's CNNs use; Tanh is
// provided for the smooth-objective convergence tests (Assumption 1 requires
// L-smoothness, which ReLU networks only satisfy piecewise).

#include "nn/layer.hpp"

namespace pdsl::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override { return input; }

 private:
  std::vector<bool> mask_;
};

class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override { return input; }

 private:
  Tensor cached_output_;
};

}  // namespace pdsl::nn
