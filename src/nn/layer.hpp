#pragma once
// Layer abstraction for the NN substrate (S2). Layers cache whatever they
// need in forward() and consume it in backward(); a Model drives them in
// sequence. Parameters are exposed as (value, grad) tensor pairs so that the
// decentralized algorithms can flatten a model into a single vector — the
// representation every algorithm in the paper works with.

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace pdsl::nn {

/// A trainable parameter: value and the gradient accumulated by backward().
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Shape shape) : value(shape), grad(std::move(shape)) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute the layer output; caches activations needed by backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Propagate the loss gradient; accumulates into parameter grads and
  /// returns the gradient w.r.t. the layer input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Initialize parameters (no-op for stateless layers).
  virtual void init(Rng& /*rng*/) {}

  /// Toggle training-mode behaviour (dropout etc.); default no-op.
  virtual void set_training(bool /*training*/) {}

  /// Deep copy, including current parameter values.
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Shape of the output given an input shape (batch dim included).
  [[nodiscard]] virtual Shape output_shape(const Shape& input) const = 0;
};

/// Sum of parameter element counts.
std::size_t param_count(const std::vector<Param*>& params);

}  // namespace pdsl::nn
