#include "nn/layernorm.hpp"

#include <cmath>
#include <stdexcept>

namespace pdsl::nn {

LayerNorm::LayerNorm(std::size_t features, double epsilon)
    : features_(features), eps_(epsilon), gain_(Shape{features}), bias_(Shape{features}) {
  if (features == 0) throw std::invalid_argument("LayerNorm: zero features");
  if (epsilon <= 0.0) throw std::invalid_argument("LayerNorm: epsilon must be positive");
}

void LayerNorm::init(Rng& /*rng*/) {
  gain_.value.fill(1.0f);
  bias_.value.zero();
}

Shape LayerNorm::output_shape(const Shape& input) const {
  if (input.size() != 2 || input[1] != features_) {
    throw std::invalid_argument("LayerNorm: expected (N, " + std::to_string(features_) +
                                "), got " + shape_to_string(input));
  }
  return input;
}

Tensor LayerNorm::forward(const Tensor& input) {
  (void)output_shape(input.shape());
  const std::size_t n = input.dim(0), f = features_;
  Tensor out(input.shape());
  cached_norm_ = Tensor(input.shape());
  inv_std_.assign(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const float* x = input.data() + r * f;
    double mean = 0.0;
    for (std::size_t c = 0; c < f; ++c) mean += x[c];
    mean /= static_cast<double>(f);
    double var = 0.0;
    for (std::size_t c = 0; c < f; ++c) var += (x[c] - mean) * (x[c] - mean);
    var /= static_cast<double>(f);
    const double inv = 1.0 / std::sqrt(var + eps_);
    inv_std_[r] = inv;
    float* nrm = cached_norm_.data() + r * f;
    float* y = out.data() + r * f;
    for (std::size_t c = 0; c < f; ++c) {
      nrm[c] = static_cast<float>((x[c] - mean) * inv);
      y[c] = gain_.value[c] * nrm[c] + bias_.value[c];
    }
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_output) {
  if (!grad_output.same_shape(cached_norm_)) {
    throw std::invalid_argument("LayerNorm::backward: grad does not match last forward");
  }
  const std::size_t n = grad_output.dim(0), f = features_;
  Tensor grad_input(grad_output.shape());
  for (std::size_t r = 0; r < n; ++r) {
    const float* gy = grad_output.data() + r * f;
    const float* nrm = cached_norm_.data() + r * f;
    float* gx = grad_input.data() + r * f;
    // dL/dgamma_c += gy_c * nrm_c ; dL/dbeta_c += gy_c.
    // dL/dnrm_c = gy_c * gamma_c; standard layernorm input gradient:
    // gx = inv_std * (dnrm - mean(dnrm) - nrm * mean(dnrm * nrm)).
    double mean_dn = 0.0, mean_dn_nrm = 0.0;
    for (std::size_t c = 0; c < f; ++c) {
      const double dn = static_cast<double>(gy[c]) * gain_.value[c];
      mean_dn += dn;
      mean_dn_nrm += dn * nrm[c];
      gain_.grad[c] += gy[c] * nrm[c];
      bias_.grad[c] += gy[c];
    }
    mean_dn /= static_cast<double>(f);
    mean_dn_nrm /= static_cast<double>(f);
    for (std::size_t c = 0; c < f; ++c) {
      const double dn = static_cast<double>(gy[c]) * gain_.value[c];
      gx[c] = static_cast<float>(inv_std_[r] * (dn - mean_dn - nrm[c] * mean_dn_nrm));
    }
  }
  return grad_input;
}

std::unique_ptr<Layer> LayerNorm::clone() const {
  auto copy = std::make_unique<LayerNorm>(features_, eps_);
  copy->gain_.value = gain_.value;
  copy->bias_.value = bias_.value;
  return copy;
}

}  // namespace pdsl::nn
