#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace pdsl::nn {

Tensor ReLU::forward(const Tensor& input) {
  Tensor out = input;
  mask_.assign(input.numel(), false);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.0f) {
      mask_[i] = true;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (grad_output.numel() != mask_.size()) {
    throw std::invalid_argument("ReLU::backward: grad does not match last forward");
  }
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.numel(); ++i) {
    if (!mask_[i]) grad_input[i] = 0.0f;
  }
  return grad_input;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] = std::tanh(out[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (!grad_output.same_shape(cached_output_)) {
    throw std::invalid_argument("Tanh::backward: grad does not match last forward");
  }
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.numel(); ++i) {
    const float y = cached_output_[i];
    grad_input[i] *= (1.0f - y * y);
  }
  return grad_input;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

}  // namespace pdsl::nn
