#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "kernels/gemm.hpp"
#include "tensor/ops.hpp"

namespace pdsl::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}) {}

void Linear::init(Rng& rng) {
  // He initialization: appropriate for the ReLU networks used throughout.
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_));
  rng.fill_normal(weight_.value.vec(), 0.0, stddev);
  bias_.value.zero();
}

Shape Linear::output_shape(const Shape& input) const {
  if (input.size() != 2 || input[1] != in_) {
    throw std::invalid_argument("Linear: expected (N, " + std::to_string(in_) + "), got " +
                                shape_to_string(input));
  }
  return Shape{input[0], out_};
}

Tensor Linear::forward(const Tensor& input) {
  (void)output_shape(input.shape());  // validates
  cached_input_ = input;
  // Seed every output row with the bias, then let the GEMM accumulate
  // X(N,in) * W(out,in)^T on top — one pass over the output instead of two.
  const std::size_t n = input.dim(0);
  Tensor out(Shape{n, out_});
  for (std::size_t r = 0; r < n; ++r) {
    float* row = out.data() + r * out_;
    for (std::size_t c = 0; c < out_; ++c) row[c] = bias_.value[c];
  }
  kernels::sgemm_transpose_b(n, in_, out_, input.data(), weight_.value.data(), out.data(),
                             /*accumulate=*/true);
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_) {
    throw std::invalid_argument("Linear::backward: bad grad shape");
  }
  // dW += dY^T X ; db += column sums of dY ; dX = dY W. The weight gradient
  // accumulates straight into the param buffer — no (out,in) temporary.
  const std::size_t n = grad_output.dim(0);
  kernels::sgemm_transpose_a(n, out_, in_, grad_output.data(), cached_input_.data(),
                             weight_.grad.data(), /*accumulate=*/true);
  for (std::size_t r = 0; r < n; ++r) {
    const float* row = grad_output.data() + r * out_;
    for (std::size_t c = 0; c < out_; ++c) bias_.grad[c] += row[c];
  }
  return matmul(grad_output, weight_.value);
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(in_, out_);
  copy->weight_.value = weight_.value;
  copy->bias_.value = bias_.value;
  return copy;
}

}  // namespace pdsl::nn
