#include "nn/model_zoo.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace pdsl::nn {

namespace {
std::size_t conv_out(std::size_t in, std::size_t kernel, std::size_t pad) {
  return in + 2 * pad - kernel + 1;
}
}  // namespace

Model make_mnist_cnn(std::size_t image, std::size_t channels, std::size_t classes) {
  // conv3x3(pad 1, "same") -> relu -> pool2 -> conv3x3(pad 1) -> relu -> pool2 -> fc
  Model m;
  m.emplace<Conv2D>(channels, 8, 3, 1);
  m.emplace<ReLU>();
  m.emplace<MaxPool2D>(2);
  const std::size_t s1 = conv_out(image, 3, 1) / 2;
  m.emplace<Conv2D>(8, 16, 3, 1);
  m.emplace<ReLU>();
  m.emplace<MaxPool2D>(2);
  const std::size_t s2 = conv_out(s1, 3, 1) / 2;
  m.emplace<Flatten>();
  m.emplace<Linear>(16 * s2 * s2, classes);
  return m;
}

Model make_cifar_cnn(std::size_t image, std::size_t channels, std::size_t classes) {
  // conv5x5(pad 2) -> relu -> pool2 -> conv5x5(pad 2) -> relu -> pool2 -> fc -> relu -> fc
  Model m;
  m.emplace<Conv2D>(channels, 8, 5, 2);
  m.emplace<ReLU>();
  m.emplace<MaxPool2D>(2);
  const std::size_t s1 = conv_out(image, 5, 2) / 2;
  m.emplace<Conv2D>(8, 16, 5, 2);
  m.emplace<ReLU>();
  m.emplace<MaxPool2D>(2);
  const std::size_t s2 = conv_out(s1, 5, 2) / 2;
  m.emplace<Flatten>();
  m.emplace<Linear>(16 * s2 * s2, 64);
  m.emplace<ReLU>();
  m.emplace<Linear>(64, classes);
  return m;
}

Model make_mlp(std::size_t input_dim, std::size_t hidden, std::size_t classes) {
  Model m;
  m.emplace<Flatten>();
  m.emplace<Linear>(input_dim, hidden);
  m.emplace<ReLU>();
  m.emplace<Linear>(hidden, classes);
  return m;
}

Model make_logistic(std::size_t input_dim, std::size_t classes) {
  Model m;
  m.emplace<Flatten>();
  m.emplace<Linear>(input_dim, classes);
  return m;
}

Model make_model(const std::string& name, std::size_t image, std::size_t channels,
                 std::size_t classes, std::size_t hidden) {
  const std::size_t input_dim = image * image * channels;
  if (name == "mnist_cnn") return make_mnist_cnn(image, channels, classes);
  if (name == "cifar_cnn") return make_cifar_cnn(image, channels, classes);
  if (name == "mlp") return make_mlp(input_dim, hidden, classes);
  if (name == "logistic") return make_logistic(input_dim, classes);
  throw std::invalid_argument("make_model: unknown model '" + name + "'");
}

}  // namespace pdsl::nn
