#include "nn/layer.hpp"

namespace pdsl::nn {

std::size_t param_count(const std::vector<Param*>& params) {
  std::size_t n = 0;
  for (const auto* p : params) n += p->value.numel();
  return n;
}

}  // namespace pdsl::nn
