#pragma once
// 2-D convolution (stride 1, symmetric zero padding). Two implementations,
// selected by kernels::backend(): the blocked path lowers each image to an
// im2col column matrix held in a per-layer scratch arena and runs the S-KER
// GEMMs (forward, weight gradient, input gradient via col2im); the naive path
// keeps the original direct six-loop form as a differential-testing
// reference. Both paths agree to rounding error (the reductions associate
// differently); each path is deterministic at every --threads width.

#include "kernels/im2col.hpp"
#include "nn/layer.hpp"

namespace pdsl::nn {

class Conv2D final : public Layer {
 public:
  /// kernel: square kernel size; pad: zero padding on each side.
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t pad = 0);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void init(Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Conv2D"; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;

 private:
  Tensor forward_direct(const Tensor& input, const Shape& out_shape);
  Tensor forward_im2col(const Tensor& input, const Shape& out_shape);
  Tensor backward_direct(const Tensor& grad_output, const Shape& out_shape);
  Tensor backward_im2col(const Tensor& grad_output, const Shape& out_shape);

  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t k_;
  std::size_t pad_;
  Param weight_;  // (out_ch, in_ch, k, k)
  Param bias_;    // (out_ch)
  Tensor cached_input_;
  // Scratch for the im2col path (slot 0: column matrix, slot 1: column
  // gradient). Grow-only and reused across batches; never cloned — a fresh
  // layer starts with an empty arena and grows it on first use.
  kernels::Arena scratch_;
};

}  // namespace pdsl::nn
