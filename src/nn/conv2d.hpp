#pragma once
// 2-D convolution (stride 1, symmetric zero padding). Direct (non-im2col)
// implementation: at reproduction scale the models are small and the direct
// loops are cache-friendly enough; clarity wins.

#include "nn/layer.hpp"

namespace pdsl::nn {

class Conv2D final : public Layer {
 public:
  /// kernel: square kernel size; pad: zero padding on each side.
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t pad = 0);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void init(Rng& rng) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Conv2D"; }
  [[nodiscard]] Shape output_shape(const Shape& input) const override;

 private:
  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t k_;
  std::size_t pad_;
  Param weight_;  // (out_ch, in_ch, k, k)
  Param bias_;    // (out_ch)
  Tensor cached_input_;
};

}  // namespace pdsl::nn
