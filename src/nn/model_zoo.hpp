#pragma once
// Model factories mirroring the paper's Sec. VI-A architectures, plus small
// models for fast tests and reduced-scale benches.

#include "nn/model.hpp"

namespace pdsl::nn {

/// Paper's MNIST CNN: two 3x3 convs, each followed by 2x2 max pooling, then
/// one fully connected layer to `classes` logits. `image` is the square input
/// side (paper: 28), `channels` the input channel count (paper: 1).
Model make_mnist_cnn(std::size_t image = 28, std::size_t channels = 1, std::size_t classes = 10);

/// Paper's CIFAR-10 CNN: two 5x5 convs + 2x2 pooling each, then two FC layers.
Model make_cifar_cnn(std::size_t image = 32, std::size_t channels = 3, std::size_t classes = 10);

/// One-hidden-layer ReLU MLP on flattened input; the default model at reduced
/// bench scale (this host has a single core).
Model make_mlp(std::size_t input_dim, std::size_t hidden, std::size_t classes = 10);

/// Multinomial logistic regression (convex); used by convergence tests where
/// Assumption 1 holds globally.
Model make_logistic(std::size_t input_dim, std::size_t classes = 10);

/// Build by name: "mnist_cnn", "cifar_cnn", "mlp", "logistic".
/// `image`/`channels` describe the input; `hidden` only applies to "mlp".
Model make_model(const std::string& name, std::size_t image, std::size_t channels,
                 std::size_t classes = 10, std::size_t hidden = 64);

}  // namespace pdsl::nn
