#include "core/pdsl.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "shapley/game.hpp"
#include "shapley/shapley.hpp"
#include "shapley/weighting.hpp"

namespace pdsl::core {

Pdsl::Pdsl(const algos::Env& env, Options options)
    : Algorithm(env),
      options_(options),
      val_rng_(splitmix64(env.seed ^ 0x5A11DA7E)) {
  if (env.validation == nullptr || env.validation->empty()) {
    throw std::invalid_argument("Pdsl: a non-empty validation dataset Q is required");
  }
  if (env.hp.shapley_eval != "sequential" && env.hp.shapley_eval != "batched" &&
      env.hp.shapley_eval != "linear") {
    throw std::invalid_argument("Pdsl: unknown shapley_eval '" + env.hp.shapley_eval +
                                "' (expected sequential | batched | linear)");
  }
  if (env.hp.shapley_method != "mc" && env.hp.shapley_method != "exact" &&
      env.hp.shapley_method != "tmc" && env.hp.shapley_method != "stratified" &&
      env.hp.shapley_method != "adaptive") {
    throw std::invalid_argument(
        "Pdsl: unknown shapley_method '" + env.hp.shapley_method +
        "' (expected mc | exact | tmc | stratified | adaptive)");
  }
  // Coalitions are uint64_t bitmasks, so the Shapley game is capped at 63
  // players. The fleet layer allows 1024+ agents; fail loudly HERE — before
  // any round runs — instead of overflowing a mask mid-round.
  std::size_t max_hood = 0;
  for (std::size_t i = 0; i < num_agents(); ++i) {
    max_hood = std::max(max_hood, env.topo->closed_neighborhood(i).size());
  }
  if (max_hood > 63) {
    throw std::invalid_argument(
        "Pdsl: a closed neighborhood has " + std::to_string(max_hood) +
        " members, but Shapley coalitions are uint64_t bitmasks (<= 63 players). "
        "With " + std::to_string(num_agents()) +
        " agents, use a sparse topology with bounded degree "
        "(--sparse --degree <= 62) so every closed neighborhood fits.");
  }
  use_batched_ = env.hp.shapley_eval != "sequential";
  use_linear_ = env.hp.shapley_eval == "linear";
  if (use_batched_) {
    batch_supported_ = sim::CoalitionBatchEvaluator::batchable(*env.model_template);
    value_caches_.assign(num_agents(), shapley::ValueCache());
  }
  momentum_.reset(num_agents(), std::vector<float>(models_.dim(), 0.0f));
  Rng shapley_root(splitmix64(env.seed ^ 0x5876BE7));
  shapley_rngs_.reserve(num_agents());
  for (std::size_t i = 0; i < num_agents(); ++i) shapley_rngs_.push_back(shapley_root.split(i));
  last_phi_.assign(num_agents(), {});
  last_pi_.assign(num_agents(), {});
  xgrad_cache_.resize(num_agents());
}

void Pdsl::absorb_late(std::vector<sim::LateMessage> late) {
  // Runs sequentially at the top of a round (before any parallel phase), so
  // plain writes into the per-agent caches are safe. Only cross-gradients are
  // worth keeping — a stale model/momentum/x-hat payload has no consumer —
  // and only when the staleness bound allows reuse at all. Late payloads get
  // the same screening as fresh ones (a delayed NaN bomb is still a NaN bomb).
  const std::size_t bound = net_.faults().staleness_rounds;
  std::size_t discarded = 0;
  for (auto& msg : late) {
    if (bound == 0 || msg.tag.rfind("xg@", 0) != 0 ||
        !sanitize_payload(msg.payload, /*reclip=*/true)) {
      ++discarded;
      continue;
    }
    CachedXGrad& slot = xgrad_cache_[msg.dst][msg.src];
    if (slot.grad.empty() || slot.round <= msg.sent_round) {
      slot.grad = std::move(msg.payload);
      slot.round = msg.sent_round;
    }
  }
  if (discarded != 0) {
    obs::MetricsRegistry::global().counter("net.late_discarded").add(discarded);
  }
}

void Pdsl::save_state(io::ByteBuffer& buf) const {
  save_base_state(buf);
  const std::size_t m = num_agents();
  for (std::size_t i = 0; i < m; ++i) io::append_floats(buf, momentum_[i]);
  io::append_string(buf, val_rng_.serialize());
  for (std::size_t i = 0; i < m; ++i) io::append_string(buf, shapley_rngs_[i].serialize());
  io::append_f64(buf, observed_phi_hat_min_);
  for (std::size_t i = 0; i < m; ++i) {
    io::append_u64(buf, xgrad_cache_[i].size());
    for (const auto& [j, cached] : xgrad_cache_[i]) {  // std::map: key-sorted, deterministic
      io::append_u64(buf, j);
      io::append_u64(buf, cached.round);
      io::append_floats(buf, cached.grad);
    }
  }
  io::append_u8(buf, use_batched_ ? 1 : 0);
  if (use_batched_) {
    for (std::size_t i = 0; i < m; ++i) value_caches_[i].serialize(buf);
  }
}

void Pdsl::load_state(io::ByteReader& r) {
  load_base_state(r);
  const std::size_t m = num_agents();
  for (std::size_t i = 0; i < m; ++i) {
    auto row = r.read_floats("pdsl momentum row");
    if (row.size() != models_.dim()) {
      throw std::runtime_error("Pdsl::load_state: momentum dimension mismatch");
    }
    momentum_.set(i, std::move(row));
  }
  val_rng_ = Rng::deserialize(r.read_string("pdsl val rng"));
  for (std::size_t i = 0; i < m; ++i) {
    shapley_rngs_[i] = Rng::deserialize(r.read_string("pdsl shapley rng"));
  }
  observed_phi_hat_min_ = r.read_f64("pdsl phi_hat_min");
  for (std::size_t i = 0; i < m; ++i) {
    xgrad_cache_[i].clear();
    const auto count = static_cast<std::size_t>(r.read_u64("pdsl xgrad count"));
    for (std::size_t k = 0; k < count; ++k) {
      const auto j = static_cast<std::size_t>(r.read_u64("pdsl xgrad neighbor"));
      CachedXGrad cached;
      cached.round = static_cast<std::size_t>(r.read_u64("pdsl xgrad round"));
      cached.grad = r.read_floats("pdsl xgrad payload");
      xgrad_cache_[i].emplace(j, std::move(cached));
    }
  }
  const bool file_batched = r.read_u8("pdsl batched flag") != 0;
  if (file_batched != use_batched_) {
    throw std::runtime_error("Pdsl::load_state: shapley_eval mode mismatch between the "
                             "checkpoint and this run");
  }
  if (use_batched_) {
    for (std::size_t i = 0; i < m; ++i) value_caches_[i].deserialize(r);
  }
}

std::vector<float> Pdsl::crash_snapshot_extra(std::size_t i) const {
  return momentum_[i];
}

void Pdsl::crash_restore_extra(std::size_t i, const std::vector<float>& extra) {
  if (extra.size() != models_.dim()) {
    throw std::invalid_argument("Pdsl::crash_restore_extra: momentum dimension mismatch");
  }
  momentum_.set(i, extra);
}

void Pdsl::crash_wipe_caches(std::size_t i) {
  xgrad_cache_[i].clear();
  if (use_batched_) value_caches_[i] = shapley::ValueCache();
}

sim::FixedBatch Pdsl::draw_validation_batch() {
  const auto& q = *env_.validation;
  const std::size_t want = std::min(env_.hp.validation_batch, q.size());
  std::vector<std::size_t> idx(want);
  if (want == q.size()) {
    for (std::size_t k = 0; k < want; ++k) idx[k] = k;
  } else {
    // Same subsample for every agent this round: Q is globally shared.
    for (auto& v : idx) {
      v = static_cast<std::size_t>(
          val_rng_.uniform_int(0, static_cast<std::int64_t>(q.size()) - 1));
    }
  }
  return sim::FixedBatch::from(q, idx);
}

// Every phase below is a runtime::parallel_for over agents between the same
// barriers the sequential loops had. Determinism at any width: each agent
// draws only from its own pre-split RNG streams (agent_rngs_[i],
// shapley_rngs_[i]), writes only slot i of pre-sized outputs, and moves data
// exclusively through the thread-safe sim::Network. Scalar round reductions
// (coalition-eval counts, the phi_hat minimum) go through per-agent slots and
// are folded sequentially after the barrier so no float/int accumulation
// order depends on scheduling.
void Pdsl::round_impl(std::size_t t) {
  const std::size_t m = num_agents();
  const sim::FaultPlan& plan = net_.faults();
  const std::string model_tag = "x@" + std::to_string(t);
  const std::string xgrad_tag = "xg@" + std::to_string(t);
  const std::string uhat_tag = "u@" + std::to_string(t);
  const std::string xhat_tag = "xh@" + std::to_string(t);

  // ---- Lines 2-5: local gradient, clip, perturb; broadcast model ----
  std::vector<std::vector<float>> own_grad(m);  // \hat g_{i,i}
  {
    auto timer = phase(obs::Phase::kLocalGrad);
    draw_all_batches();
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;  // churned out: frozen, silent
      own_grad[i] =
          dp::privatize(workers_[i].gradient(models_[i]), env_.hp.clip, env_.hp.sigma,
                        agent_rngs_[i]);
      for (std::size_t j : neighbors(i)) {
        // S-SCALE: non-participating neighbors are outside the round — no
        // model broadcast to them (no-op in full-participation mode).
        if (participating(j)) net_.send(i, j, model_tag, models_[i]);
      }
    });
  }

  // ---- Lines 6-12: cross-gradients on received models, perturbed, returned ----
  // The returned cross-gradient is the payload that steers neighbor j's
  // update, so it rides the adversary's contribution channel; the model
  // broadcast above is protocol state a stealthy attacker keeps honest.
  {
    auto timer = phase(obs::Phase::kCrossGrad);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;
      for (std::size_t j : neighbors(i)) {
        auto xj = receive_checked(i, j, model_tag, /*reclip=*/false);
        if (!xj) continue;  // dropped link; j degrades (renormalize/stale/self)
        auto g = dp::privatize(workers_[i].gradient(*xj), env_.hp.clip, env_.hp.sigma,
                               agent_rngs_[i]);
        if (participating(j)) net_.send(i, j, xgrad_tag, std::move(g), sim::Channel::kContribution);
      }
    });
  }

  // Shared validation batch for this round's characteristic function.
  const sim::FixedBatch val = draw_validation_batch();

  // S-SHAP: the cross-round cache context — everything shared by all of this
  // round's coalition scores except the member models themselves.
  std::uint64_t val_ctx = 0;
  if (use_batched_) {
    val_ctx = shapley::hash_bytes(val.x.data(), val.x.numel() * sizeof(float));
    val_ctx = shapley::hash_bytes(val.y.data(), val.y.size() * sizeof(int), val_ctx);
    val_ctx = shapley::hash_mix(val_ctx, options_.loss_characteristic ? 1 : 0);
  }

  // ---- Lines 13-20: virtual models, Shapley weights ----
  // Under faults each agent plays the Shapley game over the *present* subset
  // of its closed neighborhood: members whose perturbed cross-gradient is
  // available fresh, from the bounded-staleness cache, or (always) itself.
  // With every neighbor present this is exactly the historical full-hood
  // computation, so zero-fault runs stay bit-identical.
  std::vector<std::vector<std::vector<float>>> ghat(m);  // \hat g_{j,i}, present-aligned
  std::vector<std::vector<double>> pi(m);                // present-aligned
  std::vector<std::size_t> agent_evals(m, 0);
  std::vector<double> agent_phi_min(m, 1.0);
  std::vector<std::size_t> agent_stale(m, 0);      // slot-written, folded below
  std::vector<unsigned char> agent_fallback(m, 0);
  std::vector<std::size_t> agent_batched(m, 0);    // S-SHAP slots
  std::vector<std::size_t> agent_hits(m, 0);
  std::vector<std::size_t> agent_misses(m, 0);
  std::vector<std::size_t> agent_perms(m, 0);
  std::vector<unsigned char> agent_early(m, 0);
  {
    auto timer = phase(obs::Phase::kShapley);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      if (!active(i)) return;  // churned out: no update this round
      PDSL_SPAN("shapley_eval", i, "shapley");
      const auto hood = closed_neighborhood(i);  // M_i, ascending, includes i
      const std::size_t n = hood.size();
      auto& cache = xgrad_cache_[i];

      // Gather \hat g_{j,i} for every reachable member, remembering which
      // hood positions made it.
      std::vector<std::size_t> present;  // indices into hood, ascending
      present.reserve(n);
      ghat[i].reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t j = hood[k];
        if (j == i) {
          present.push_back(k);
          ghat[i].push_back(own_grad[i]);
          continue;
        }
        if (auto g = receive_checked(i, j, xgrad_tag, /*reclip=*/true)) {
          if (plan.staleness_rounds > 0) {
            cache[j] = CachedXGrad{*g, t};  // refresh the staleness cache
          }
          present.push_back(k);
          ghat[i].push_back(std::move(*g));
          continue;
        }
        if (plan.staleness_rounds > 0) {
          const auto it = cache.find(j);
          if (it != cache.end()) {
            if (t - it->second.round <= plan.staleness_rounds) {
              present.push_back(k);
              ghat[i].push_back(it->second.grad);
              ++agent_stale[i];
              continue;
            }
            cache.erase(it);  // expired: prune so the cache stays bounded
          }
        }
        // Absent: excluded from this round's game and aggregation.
      }

      last_phi_[i].assign(n, 0.0);
      last_pi_[i].assign(n, 0.0);

      if (present.size() == 1) {
        // Every neighbor failed: fall back to the pure self-gradient step
        // (g_bar = own gradient, no 1/w amplification).
        pi[i] = {1.0};
        last_phi_[i][present[0]] = 1.0;
        last_pi_[i][present[0]] = 1.0;
        agent_fallback[i] = 1;
        return;
      }
      const std::size_t p = present.size();

      // Eq. 15: one-step virtual models x_{i,j} = x_i - gamma * ghat_{j,i}.
      std::vector<std::vector<float>> virtual_models(p);
      for (std::size_t k = 0; k < p; ++k) {
        virtual_models[k] = models_[i];
        axpy(virtual_models[k], ghat[i][k], static_cast<float>(-env_.hp.gamma));
      }

      // Eqs. 16-17: v(M') = validation accuracy of the coalition-average model
      // (or negative validation loss under Options::loss_characteristic).
      // Agent i scores coalitions in its own worker's model workspace — idle
      // between the gradient phases — so no two agents share a forward buffer.
      nn::Model& ws = workers_[i].workspace();
      // Line 15 / Algorithm 2 (or an alternative estimator when requested).
      std::vector<double> phi;
      const std::string& method =
          env_.hp.exact_shapley ? std::string("exact") : env_.hp.shapley_method;
      if (options_.uniform_weights) {
        phi.assign(p, 1.0);
      } else {
        const auto score_members = [&](const std::vector<const std::vector<float>*>& mem) {
          const auto avg = mean_of(mem);
          return options_.loss_characteristic ? -sim::loss_on(ws, avg, val)
                                              : sim::accuracy_on(ws, avg, val);
        };
        // Either the reference one-at-a-time game, or the S-SHAP batched game
        // (stacked-GEMM scoring + per-agent cross-round value cache). Both
        // score coalition averages over the SAME virtual-model pointers via
        // the same mean_of fold, so values are bit-identical by construction.
        std::unique_ptr<shapley::Game> game;
        std::optional<sim::CoalitionBatchEvaluator> batch_eval;
        if (use_batched_) {
          if (batch_supported_) {
            batch_eval.emplace(*env_.model_template, val);
            if (use_linear_) {
              std::vector<const std::vector<float>*> member_ptrs(p);
              for (std::size_t k = 0; k < p; ++k) member_ptrs[k] = &virtual_models[k];
              batch_eval->set_members(member_ptrs);
            }
          }
          std::vector<std::uint64_t> member_hashes(p);
          for (std::size_t k = 0; k < p; ++k) {
            member_hashes[k] = shapley::hash_bytes(
                virtual_models[k].data(), virtual_models[k].size() * sizeof(float));
          }
          value_caches_[i].begin_round(t, val_ctx, std::move(member_hashes));
          game = std::make_unique<shapley::BatchedGame>(
              p,
              [&](const std::vector<std::uint64_t>& masks) {
                if (use_linear_ && batch_eval) {
                  // First-layer linearity: member pre-activations were scored
                  // once in set_members(); each coalition is a cheap average
                  // + the small later layers. No mean_of, no big GEMM.
                  auto out = options_.loss_characteristic
                                 ? batch_eval->coalition_losses(masks)
                                 : batch_eval->coalition_accuracies(masks);
                  if (options_.loss_characteristic) {
                    for (double& v : out) v = -v;
                  }
                  return out;
                }
                std::vector<std::vector<float>> avgs(masks.size());
                std::vector<const std::vector<float>*> mem;
                for (std::size_t q = 0; q < masks.size(); ++q) {
                  mem.clear();
                  for (std::size_t k : shapley::Game::members(masks[q])) {
                    mem.push_back(&virtual_models[k]);
                  }
                  avgs[q] = mean_of(mem);
                }
                std::vector<double> out;
                if (batch_eval) {
                  std::vector<const std::vector<float>*> ptrs(avgs.size());
                  for (std::size_t q = 0; q < avgs.size(); ++q) ptrs[q] = &avgs[q];
                  out = options_.loss_characteristic ? batch_eval->losses(ptrs)
                                                     : batch_eval->accuracies(ptrs);
                  if (options_.loss_characteristic) {
                    for (double& v : out) v = -v;
                  }
                } else {
                  out.reserve(avgs.size());
                  for (const auto& avg : avgs) {
                    out.push_back(options_.loss_characteristic
                                      ? -sim::loss_on(ws, avg, val)
                                      : sim::accuracy_on(ws, avg, val));
                  }
                }
                return out;
              },
              &value_caches_[i]);
        } else {
          game = std::make_unique<shapley::CachedGame>(
              p, [&](const std::vector<std::size_t>& coalition) {
                std::vector<const std::vector<float>*> mem;
                mem.reserve(coalition.size());
                for (std::size_t k : coalition) mem.push_back(&virtual_models[k]);
                return score_members(mem);
              });
        }

        if (method == "exact" && p <= 20) {
          phi = shapley::exact_shapley(*game);
        } else if (method == "tmc") {
          shapley::TruncatedMcOptions topts;
          topts.num_permutations = env_.hp.shapley_permutations;
          topts.tolerance = env_.hp.tmc_tolerance;
          phi = shapley::truncated_monte_carlo_shapley(*game, topts, shapley_rngs_[i]);
          agent_perms[i] = topts.num_permutations;
        } else if (method == "stratified") {
          const std::size_t per_stratum =
              std::max<std::size_t>(1, env_.hp.shapley_permutations / 2);
          phi = shapley::stratified_shapley(*game, per_stratum, shapley_rngs_[i]);
        } else if (method == "adaptive") {
          shapley::AdaptiveMcOptions aopts;
          aopts.min_permutations = env_.hp.shapley_min_permutations;
          aopts.max_permutations = env_.hp.shapley_permutations;
          aopts.ci_z = env_.hp.shapley_ci_z;
          auto res = shapley::adaptive_monte_carlo_shapley(*game, aopts, shapley_rngs_[i]);
          phi = std::move(res.phi);
          agent_perms[i] = res.permutations_used;
          agent_early[i] = res.early_stopped ? 1 : 0;
        } else {  // "mc" and the exact fallback for oversized neighborhoods
          phi = shapley::monte_carlo_shapley(*game, env_.hp.shapley_permutations,
                                             shapley_rngs_[i]);
          agent_perms[i] = env_.hp.shapley_permutations;
        }
        agent_evals[i] = game->evaluations();
        if (use_batched_) {
          const auto& st = static_cast<shapley::BatchedGame&>(*game).stats();
          agent_batched[i] = st.coalitions_batched;
          agent_hits[i] = st.cache_hits;
          agent_misses[i] = st.cache_misses;
        }
      }

      // Eq. 19 normalization (or the robust ReLU variant), Eq. 20 weights.
      // Restricting to `present` renormalizes pi over the survivors: the
      // shares already sum to 1 over the members that arrived.
      const std::vector<double> phi_hat =
          options_.uniform_weights
              ? phi
              : (options_.relu_normalization ? shapley::relu_normalize(phi)
                                             : shapley::minmax_normalize(phi));
      std::vector<double> w_row(p);
      for (std::size_t k = 0; k < p; ++k) w_row[k] = w(i, hood[present[k]]);
      pi[i] = shapley::aggregation_weights(phi_hat, w_row);
      for (double share : shapley::normalized_shares(phi_hat)) {
        if (share > 0.0) agent_phi_min[i] = std::min(agent_phi_min[i], share);
      }
      for (std::size_t k = 0; k < p; ++k) {
        last_phi_[i][present[k]] = phi[k];
        last_pi_[i][present[k]] = pi[i][k];
      }
    });

    // Sequential fold of the per-agent reductions (scheduling-independent).
    algos::ShapleyRoundStats sstats;
    std::size_t stale = 0;
    std::size_t fallbacks = 0;
    for (std::size_t i = 0; i < m; ++i) {
      sstats.coalition_evals += agent_evals[i];
      sstats.coalitions_batched += agent_batched[i];
      sstats.cache_hits += agent_hits[i];
      sstats.cache_misses += agent_misses[i];
      sstats.permutations_used += agent_perms[i];
      sstats.early_stopped += agent_early[i];
      observed_phi_hat_min_ = std::min(observed_phi_hat_min_, agent_phi_min[i]);
      stale += agent_stale[i];
      fallbacks += agent_fallback[i];
    }
    last_shapley_stats_ = sstats;
    last_evals_ = sstats.coalition_evals;
    static obs::Counter& evals =
        obs::MetricsRegistry::global().counter("shapley.coalition_evals");
    evals.add(last_evals_);
    static obs::Counter& batched_c =
        obs::MetricsRegistry::global().counter("shapley.coalitions_batched");
    static obs::Counter& hits_c =
        obs::MetricsRegistry::global().counter("shapley.cache_hits");
    static obs::Counter& misses_c =
        obs::MetricsRegistry::global().counter("shapley.cache_misses");
    static obs::Counter& early_c =
        obs::MetricsRegistry::global().counter("shapley.permutations_early_stopped");
    batched_c.add(sstats.coalitions_batched);
    hits_c.add(sstats.cache_hits);
    misses_c.add(sstats.cache_misses);
    early_c.add(sstats.early_stopped);
    if (stale != 0) {
      fault_stats_.stale_reused += stale;
      obs::MetricsRegistry::global().counter("pdsl.stale_reused").add(stale);
    }
    if (fallbacks != 0) {
      fault_stats_.self_fallbacks += fallbacks;
      obs::MetricsRegistry::global().counter("pdsl.self_fallbacks").add(fallbacks);
    }
  }

  // ---- Eqs. 21-23: aggregation, momentum step ----
  std::vector<std::vector<float>> u_hat(m);
  std::vector<std::vector<float>> x_hat(m);
  {
    auto timer = phase(obs::Phase::kAggregate);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      // Frozen agents contribute nothing: mix_into leaves their momentum and
      // model rows untouched (no copy — lazy rows stay shared).
      if (!active(i)) return;
      // Eq. 21: weighted aggregate of the perturbed gradients.
      std::vector<const std::vector<float>*> gptrs;
      gptrs.reserve(ghat[i].size());
      for (const auto& g : ghat[i]) gptrs.push_back(&g);
      const auto g_bar = weighted_sum(gptrs, pi[i]);

      // Eqs. 22-23 + Line 21 broadcast.
      u_hat[i] = momentum_[i];
      scale_inplace(u_hat[i], static_cast<float>(env_.hp.alpha));
      axpy(u_hat[i], g_bar, 1.0f);
      x_hat[i] = models_[i];
      axpy(x_hat[i], u_hat[i], static_cast<float>(-env_.hp.gamma));
    });
  }

  // ---- Lines 21-24: gossip-average momentum and model with W ----
  // State channel: PDSL's contribution channel is the cross-gradient exchange
  // above; the momentum/model gossip is bookkeeping the attacker keeps honest.
  mix_into(momentum_, u_hat, uhat_tag, sim::Channel::kState);
  mix_into(models_, x_hat, xhat_tag, sim::Channel::kState);
}

std::optional<std::pair<double, double>> Pdsl::attacker_honest_weight_split() const {
  const sim::AdversaryPlan& plan = net_.adversary();
  const std::size_t m = num_agents();
  if (!plan.any()) return std::nullopt;
  double att_sum = 0.0, hon_sum = 0.0;
  std::size_t att_n = 0, hon_n = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (plan.is_byzantine(i, m)) continue;  // measure honest receivers only
    const auto hood = closed_neighborhood(i);
    if (last_pi_[i].size() != hood.size()) continue;  // agent never ran a round
    for (std::size_t k = 0; k < hood.size(); ++k) {
      const std::size_t j = hood[k];
      if (j == i) continue;  // self edge says nothing about the defense
      if (plan.is_byzantine(j, m)) {
        att_sum += last_pi_[i][k];
        ++att_n;
      } else {
        hon_sum += last_pi_[i][k];
        ++hon_n;
      }
    }
  }
  if (att_n == 0 || hon_n == 0) return std::nullopt;
  return std::make_pair(att_sum / static_cast<double>(att_n),
                        hon_sum / static_cast<double>(hon_n));
}

void Pdsl::ledger_round(obs::RunLedger& ledger, std::size_t t) const {
  json::Object ev;
  ev["round"] = t;
  json::Array phi, pi;
  for (std::size_t i = 0; i < num_agents(); ++i) {
    json::Array phi_i, pi_i;
    for (const double v : last_phi_[i]) phi_i.push_back(json::Value(v));
    for (const double v : last_pi_[i]) pi_i.push_back(json::Value(v));
    phi.push_back(json::Value(std::move(phi_i)));
    pi.push_back(json::Value(std::move(pi_i)));
  }
  ev["phi"] = json::Value(std::move(phi));
  ev["pi"] = json::Value(std::move(pi));
  ev["characteristic_evals"] = last_evals_;
  // S-SHAP evaluation budget: where the round's coalition scores came from
  // (stacked-GEMM batches vs cross-round cache) and how many permutations
  // the sampler actually consumed. Deterministic, so it stays inside the
  // ledger's bit-identity contract.
  ev["coalitions_batched"] = last_shapley_stats_.coalitions_batched;
  ev["cache_hits"] = last_shapley_stats_.cache_hits;
  ev["cache_misses"] = last_shapley_stats_.cache_misses;
  ev["permutations_used"] = last_shapley_stats_.permutations_used;
  ev["early_stopped"] = last_shapley_stats_.early_stopped;
  ledger.event("shapley", std::move(ev));
}

}  // namespace pdsl::core
