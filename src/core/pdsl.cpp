#include "core/pdsl.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/vec_math.hpp"
#include "dp/mechanism.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "shapley/game.hpp"
#include "shapley/shapley.hpp"
#include "shapley/weighting.hpp"

namespace pdsl::core {

Pdsl::Pdsl(const algos::Env& env, Options options)
    : Algorithm(env),
      options_(options),
      val_rng_(splitmix64(env.seed ^ 0x5A11DA7E)) {
  if (env.validation == nullptr || env.validation->empty()) {
    throw std::invalid_argument("Pdsl: a non-empty validation dataset Q is required");
  }
  momentum_.assign(num_agents(), std::vector<float>(models_[0].size(), 0.0f));
  Rng shapley_root(splitmix64(env.seed ^ 0x5876BE7));
  shapley_rngs_.reserve(num_agents());
  for (std::size_t i = 0; i < num_agents(); ++i) shapley_rngs_.push_back(shapley_root.split(i));
  last_phi_.assign(num_agents(), {});
  last_pi_.assign(num_agents(), {});
}

sim::FixedBatch Pdsl::draw_validation_batch() {
  const auto& q = *env_.validation;
  const std::size_t want = std::min(env_.hp.validation_batch, q.size());
  std::vector<std::size_t> idx(want);
  if (want == q.size()) {
    for (std::size_t k = 0; k < want; ++k) idx[k] = k;
  } else {
    // Same subsample for every agent this round: Q is globally shared.
    for (auto& v : idx) {
      v = static_cast<std::size_t>(
          val_rng_.uniform_int(0, static_cast<std::int64_t>(q.size()) - 1));
    }
  }
  return sim::FixedBatch::from(q, idx);
}

// Every phase below is a runtime::parallel_for over agents between the same
// barriers the sequential loops had. Determinism at any width: each agent
// draws only from its own pre-split RNG streams (agent_rngs_[i],
// shapley_rngs_[i]), writes only slot i of pre-sized outputs, and moves data
// exclusively through the thread-safe sim::Network. Scalar round reductions
// (coalition-eval counts, the phi_hat minimum) go through per-agent slots and
// are folded sequentially after the barrier so no float/int accumulation
// order depends on scheduling.
void Pdsl::run_round(std::size_t t) {
  const std::size_t m = num_agents();
  const std::string model_tag = "x@" + std::to_string(t);
  const std::string xgrad_tag = "xg@" + std::to_string(t);
  const std::string uhat_tag = "u@" + std::to_string(t);
  const std::string xhat_tag = "xh@" + std::to_string(t);

  // ---- Lines 2-5: local gradient, clip, perturb; broadcast model ----
  std::vector<std::vector<float>> own_grad(m);  // \hat g_{i,i}
  {
    auto timer = phase(obs::Phase::kLocalGrad);
    draw_all_batches();
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      own_grad[i] =
          dp::privatize(workers_[i].gradient(models_[i]), env_.hp.clip, env_.hp.sigma,
                        agent_rngs_[i]);
      for (std::size_t j : neighbors(i)) net_.send(i, j, model_tag, models_[i]);
    });
  }

  // ---- Lines 6-12: cross-gradients on received models, perturbed, returned ----
  {
    auto timer = phase(obs::Phase::kCrossGrad);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      const bool byzantine = i < options_.byzantine_agents;
      for (std::size_t j : neighbors(i)) {
        auto xj = net_.receive(i, j, model_tag);
        if (!xj) continue;  // dropped link; j falls back to its local gradient
        auto g = dp::privatize(workers_[i].gradient(*xj), env_.hp.clip, env_.hp.sigma,
                               agent_rngs_[i]);
        if (byzantine) {
          // Gradient-poisoning adversary: flip and amplify what it sends out.
          scale_inplace(g, static_cast<float>(-options_.byzantine_scale));
        }
        net_.send(i, j, xgrad_tag, std::move(g));
      }
    });
  }

  // Shared validation batch for this round's characteristic function.
  const sim::FixedBatch val = draw_validation_batch();

  // ---- Lines 13-20: virtual models, Shapley weights ----
  std::vector<std::vector<std::vector<float>>> ghat(m);  // \hat g_{j,i} per agent
  std::vector<std::vector<double>> pi(m);
  std::vector<std::size_t> agent_evals(m, 0);
  std::vector<double> agent_phi_min(m, 1.0);
  {
    auto timer = phase(obs::Phase::kShapley);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      PDSL_SPAN("shapley_eval", i, "shapley");
      const auto hood = closed_neighborhood(i);  // M_i, ascending, includes i
      const std::size_t n = hood.size();

      // Received perturbed gradients \hat g_{j,i}, aligned with `hood`.
      ghat[i].resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t j = hood[k];
        if (j == i) {
          ghat[i][k] = own_grad[i];
        } else if (auto g = net_.receive(i, j, xgrad_tag)) {
          ghat[i][k] = std::move(*g);
        } else {
          ghat[i][k] = own_grad[i];  // self-substitution under message loss
        }
      }

      // Eq. 15: one-step virtual models x_{i,j} = x_i - gamma * ghat_{j,i}.
      std::vector<std::vector<float>> virtual_models(n);
      for (std::size_t k = 0; k < n; ++k) {
        virtual_models[k] = models_[i];
        axpy(virtual_models[k], ghat[i][k], static_cast<float>(-env_.hp.gamma));
      }

      // Eqs. 16-17: v(M') = validation accuracy of the coalition-average model
      // (or negative validation loss under Options::loss_characteristic).
      // Agent i scores coalitions in its own worker's model workspace — idle
      // between the gradient phases — so no two agents share a forward buffer.
      nn::Model& ws = workers_[i].workspace();
      shapley::CachedGame game(n, [&](const std::vector<std::size_t>& coalition) {
        std::vector<const std::vector<float>*> members;
        members.reserve(coalition.size());
        for (std::size_t k : coalition) members.push_back(&virtual_models[k]);
        const auto avg = mean_of(members);
        return options_.loss_characteristic ? -sim::loss_on(ws, avg, val)
                                            : sim::accuracy_on(ws, avg, val);
      });

      // Line 15 / Algorithm 2 (or an alternative estimator when requested).
      std::vector<double> phi;
      const std::string& method =
          env_.hp.exact_shapley ? std::string("exact") : env_.hp.shapley_method;
      if (options_.uniform_weights) {
        phi.assign(n, 1.0);
      } else if (method == "exact" && n <= 20) {
        phi = shapley::exact_shapley(game);
      } else if (method == "tmc") {
        shapley::TruncatedMcOptions topts;
        topts.num_permutations = env_.hp.shapley_permutations;
        topts.tolerance = env_.hp.tmc_tolerance;
        phi = shapley::truncated_monte_carlo_shapley(game, topts, shapley_rngs_[i]);
      } else if (method == "stratified") {
        const std::size_t per_stratum =
            std::max<std::size_t>(1, env_.hp.shapley_permutations / 2);
        phi = shapley::stratified_shapley(game, per_stratum, shapley_rngs_[i]);
      } else {  // "mc" and the exact fallback for oversized neighborhoods
        phi = shapley::monte_carlo_shapley(game, env_.hp.shapley_permutations,
                                           shapley_rngs_[i]);
      }
      agent_evals[i] = game.evaluations();

      // Eq. 19 normalization (or the robust ReLU variant), Eq. 20 weights.
      const std::vector<double> phi_hat =
          options_.uniform_weights
              ? phi
              : (options_.relu_normalization ? shapley::relu_normalize(phi)
                                             : shapley::minmax_normalize(phi));
      std::vector<double> w_row(n);
      for (std::size_t k = 0; k < n; ++k) w_row[k] = w(i, hood[k]);
      pi[i] = shapley::aggregation_weights(phi_hat, w_row);
      for (double share : shapley::normalized_shares(phi_hat)) {
        if (share > 0.0) agent_phi_min[i] = std::min(agent_phi_min[i], share);
      }
      last_phi_[i] = std::move(phi);
      last_pi_[i] = pi[i];
    });

    // Sequential fold of the per-agent reductions (scheduling-independent).
    last_evals_ = 0;
    for (std::size_t i = 0; i < m; ++i) {
      last_evals_ += agent_evals[i];
      observed_phi_hat_min_ = std::min(observed_phi_hat_min_, agent_phi_min[i]);
    }
    static obs::Counter& evals =
        obs::MetricsRegistry::global().counter("shapley.coalition_evals");
    evals.add(last_evals_);
  }

  // ---- Eqs. 21-23: aggregation, momentum step ----
  std::vector<std::vector<float>> u_hat(m);
  std::vector<std::vector<float>> x_hat(m);
  {
    auto timer = phase(obs::Phase::kAggregate);
    runtime::parallel_for(0, m, 1, [&](std::size_t i) {
      // Eq. 21: weighted aggregate of the perturbed gradients.
      std::vector<const std::vector<float>*> gptrs;
      gptrs.reserve(ghat[i].size());
      for (const auto& g : ghat[i]) gptrs.push_back(&g);
      const auto g_bar = weighted_sum(gptrs, pi[i]);

      // Eqs. 22-23 + Line 21 broadcast.
      u_hat[i] = momentum_[i];
      scale_inplace(u_hat[i], static_cast<float>(env_.hp.alpha));
      axpy(u_hat[i], g_bar, 1.0f);
      x_hat[i] = models_[i];
      axpy(x_hat[i], u_hat[i], static_cast<float>(-env_.hp.gamma));
    });
  }

  // ---- Lines 21-24: gossip-average momentum and model with W ----
  momentum_ = mix_vectors(u_hat, uhat_tag);
  models_ = mix_vectors(x_hat, xhat_tag);
}

}  // namespace pdsl::core
