#pragma once
// PDSL — the paper's Algorithm 1. Per round, each agent:
//   1. computes, clips and perturbs its local stochastic gradient (Eqs. 9-11);
//   2. broadcasts its model; computes privatized cross-gradients for every
//      neighbor's model on its own data and returns them (Eqs. 12-14);
//   3. forms one-step virtual models from the returned gradients (Eq. 15),
//      scores coalitions of them on the shared validation set Q (Eqs. 16-17)
//      and computes Shapley values exactly (Eq. 18) or via the Monte Carlo
//      sampler (Algorithm 2);
//   4. normalizes them (Eq. 19), derives aggregation weights (Eq. 20),
//      aggregates the perturbed gradients (Eq. 21), takes a momentum step
//      (Eqs. 22-23) and gossip-averages momentum and model (Eqs. 24-25).

#include <map>

#include "algos/common.hpp"
#include "shapley/value_cache.hpp"
#include "sim/evaluate.hpp"

namespace pdsl::core {

struct PdslOptions {
  /// Ablation switch: replace the Shapley-derived phi_hat with all-ones
  /// (plain W-weighted averaging of the perturbed gradients).
  bool uniform_weights = false;

  // Byzantine injection moved to sim::AdversaryPlan (Env::adversary): the
  // network corrupts outgoing contribution payloads, so every algorithm faces
  // the same attacker. The Shapley weighting is PDSL's built-in defense:
  // poisoned contributions score at the bottom of every coalition and are
  // zeroed by the min-max normalization.

  /// Extension: replace Eq. 19's min-max normalization with ReLU
  /// normalization (shapley::relu_normalize), which zeroes *every*
  /// negative-marginal contributor instead of only the single worst one.
  /// Strictly more robust under multiple Byzantine/poisoned neighbors.
  bool relu_normalization = false;

  /// Extension: use negative validation *loss* as the characteristic
  /// function instead of the paper's accuracy (Eq. 16). Accuracy is flat
  /// around a random initialization (~chance for every coalition), so in the
  /// first rounds Eq. 19 degenerates to uniform weights and a gradient
  /// attacker gets full weight exactly when the model is most fragile; loss
  /// separates coalitions immediately.
  bool loss_characteristic = false;
};

class Pdsl final : public algos::Algorithm {
 public:
  using Options = PdslOptions;

  explicit Pdsl(const algos::Env& env, Options options = {});

  [[nodiscard]] std::string name() const override {
    return options_.uniform_weights ? "PDSL-uniform" : "PDSL";
  }
  /// ---- observability hooks (tests, ablation benches) ----

  /// Raw Shapley values from the last round; [agent][k] aligned with
  /// closed_neighborhood(agent). Under faults, neighbors whose
  /// cross-gradient never arrived hold 0 (they were excluded from the game).
  [[nodiscard]] const std::vector<std::vector<double>>& last_shapley() const {
    return last_phi_;
  }
  /// Aggregation weights pi from the last round (same alignment).
  [[nodiscard]] const std::vector<std::vector<double>>& last_pi() const { return last_pi_; }
  /// Distinct coalition evaluations performed last round (all agents).
  [[nodiscard]] std::size_t last_characteristic_evals() const { return last_evals_; }

  /// S-SHAP: batching/caching/early-stop accounting for the last round.
  [[nodiscard]] std::optional<algos::ShapleyRoundStats> shapley_round_stats() const override {
    return last_shapley_stats_;
  }
  /// Smallest normalized Shapley share observed so far (empirical
  /// counterpart of Theorem 1's phi_hat_min).
  [[nodiscard]] double observed_phi_hat_min() const { return observed_phi_hat_min_; }

  /// S-BYZ: mean pi an *honest* receiver assigned to attacker-origin vs
  /// honest-origin hood members (self edges excluded) in the last round.
  /// nullopt when no adversary is configured or either class is empty.
  [[nodiscard]] std::optional<std::pair<double, double>>
  attacker_honest_weight_split() const override;

  /// S-BENCH360: one "shapley" ledger event per round carrying the raw phi
  /// and normalized pi vectors, [agent][k] aligned with
  /// closed_neighborhood(agent) — the numbers behind the attacker-pi-collapse
  /// finding, replayable without rerunning.
  void ledger_round(obs::RunLedger& ledger, std::size_t t) const override;

  /// ---- S-RECOV checkpoint/restore + crash-recovery hooks ----

  /// Full algorithm state for kill-and-resume: base state (models, RNG
  /// streams, network) plus momentum, the validation/Shapley RNG cursors, the
  /// staleness cache, the coalition score caches and the phi_hat_min floor.
  void save_state(io::ByteBuffer& buf) const override;
  void load_state(io::ByteReader& r) override;

  /// Per-agent crash snapshot payload: the momentum row u_i (the model row is
  /// snapshotted by the RecoveryManager itself).
  [[nodiscard]] std::vector<float> crash_snapshot_extra(std::size_t i) const override;
  void crash_restore_extra(std::size_t i, const std::vector<float>& extra) override;
  /// A crashed agent loses its warm state: staleness-cached cross-gradients
  /// and coalition score cache (they lived in the dead process's memory).
  void crash_wipe_caches(std::size_t i) override;

 protected:
  void round_impl(std::size_t t) override;

  /// S-FAULT: matured delayed cross-gradients feed the staleness cache
  /// (stamped with the round they were computed in); everything else is too
  /// late to use and is discarded.
  void absorb_late(std::vector<sim::LateMessage> late) override;

 private:
  /// Round-shared validation batch (same subsample of Q on every agent).
  sim::FixedBatch draw_validation_batch();

  /// A neighbor's last successfully received cross-gradient, kept so a
  /// missing fresh one can be substituted for up to
  /// FaultPlan::staleness_rounds rounds (Eq. 21 with a bounded-staleness
  /// relaxation). `round` is when the gradient was computed.
  struct CachedXGrad {
    std::vector<float> grad;
    std::size_t round = 0;
  };

  Options options_;
  fleet::LazyMatrix momentum_;                ///< u_i (COW rows share the zero vector)
  Rng val_rng_;                               ///< shared validation subsampling
  std::vector<Rng> shapley_rngs_;             ///< per-agent MC permutation streams,
                                              ///< separate from the DP noise streams so
                                              ///< exact-vs-MC ablations share noise draws
  std::vector<std::vector<double>> last_phi_;
  std::vector<std::vector<double>> last_pi_;
  std::size_t last_evals_ = 0;
  double observed_phi_hat_min_ = 1.0;
  algos::ShapleyRoundStats last_shapley_stats_;

  /// S-SHAP: hp.shapley_eval == "batched" or "linear" (validated in the
  /// ctor). Both share the BatchedGame dedup/cache machinery.
  bool use_batched_ = false;
  /// S-SHAP: hp.shapley_eval == "linear" — score coalitions via first-layer
  /// linearity (member pre-activations averaged instead of re-running the
  /// dominant GEMM per coalition). Mathematically the same characteristic,
  /// ulp-level numeric differences; NOT bit-identical to sequential.
  bool use_linear_ = false;
  /// Is the model a chain CoalitionBatchEvaluator can stack? When false the
  /// batched path still deduplicates and caches via BatchedGame, but scores
  /// each coalition with a sequential forward pass.
  bool batch_supported_ = false;
  /// Per-agent cross-round coalition score caches (slot discipline: agent i's
  /// phase body is the only writer of value_caches_[i]). Empty unless batched.
  std::vector<shapley::ValueCache> value_caches_;
  /// xgrad_cache_[i][j]: agent i's cached cross-gradient from neighbor j.
  /// Written only by agent i's phase body (slot discipline) or the sequential
  /// absorb_late hook, so no synchronization is needed.
  std::vector<std::map<std::size_t, CachedXGrad>> xgrad_cache_;
};

}  // namespace pdsl::core
