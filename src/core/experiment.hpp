#pragma once
// One-stop experiment driver: builds data, partition, topology, model and the
// requested algorithm from a declarative config, runs it, and returns the
// per-round series plus summary numbers. Every bench and example is a thin
// wrapper over run_experiment().

#include <memory>
#include <string>
#include <vector>

#include "algos/common.hpp"
#include "graph/spectral.hpp"
#include "sim/metrics.hpp"

namespace pdsl::core {

struct ExperimentConfig {
  std::string algorithm = "pdsl";  ///< pdsl | pdsl_uniform | dp_dpsgd | muffliato |
                                   ///< dp_cga | dp_netfleet | dpsgd | dmsgd
  std::string dataset = "mnist_like";  ///< mnist_like | cifar_like | gaussian
  std::string model = "mlp";           ///< mlp | mnist_cnn | cifar_cnn | logistic
  std::string topology = "full";       ///< full | ring | bipartite | star | torus | er
                                       ///< + sparse-only (fleet.sparse): regular | geometric

  std::size_t agents = 10;
  std::size_t rounds = 50;
  std::size_t train_samples = 2000;
  std::size_t test_samples = 400;
  std::size_t validation_samples = 200;  ///< size of the global validation set Q
  std::size_t image = 14;                ///< square image side (synthetic sets)
  std::size_t hidden = 32;               ///< MLP hidden width
  double mu = 0.25;                      ///< Dirichlet heterogeneity (paper: 0.25)
  bool iid = false;                      ///< override: homogeneous split
  /// "dirichlet" (paper) | "iid" | "shards" (pathological McMahan split).
  std::string partition = "dirichlet";
  std::size_t shards_per_agent = 2;      ///< only for partition = "shards"
  /// Poison the first `corrupt_agents` agents with uniformly random labels
  /// (extension experiment: Shapley weighting should suppress their
  /// cross-gradient contributions; uniform averaging cannot).
  std::size_t corrupt_agents = 0;
  /// Legacy alias for the S-BYZ adversary: the first `byzantine_agents` run a
  /// sign_flip role at the historical x3 amplification. Folded into
  /// `adversary` by run_experiment when the plan is otherwise empty (now
  /// applies to every algorithm, not only the PDSL variants).
  std::size_t byzantine_agents = 0;

  algos::HyperParams hp;

  /// Privacy calibration:
  ///  - "none": sigma = 0 (no DP);
  ///  - "fixed": use hp.sigma verbatim;
  ///  - "dpsgd": per-round Gaussian mechanism on the mini-batch mean gradient,
  ///    sensitivity 2C/B -> sigma = sqrt(2 ln(1.25/delta)) * 2C / (B*epsilon);
  ///  - "theorem1": the paper's Theorem-1 bound (very conservative).
  std::string sigma_mode = "dpsgd";
  /// Multiplier applied to the calibrated sigma (all modes except "none").
  /// Reduced-scale benches use < 1: with tiny batches and few rounds the
  /// per-round Gaussian-mechanism sigma would drown learning entirely, so we
  /// rescale the noise while preserving its 1/epsilon ordering across
  /// budgets and keeping all algorithms at identical sigma. Documented in
  /// DESIGN.md ("Substitutions") and EXPERIMENTS.md.
  double noise_scale = 1.0;
  double epsilon = 0.1;
  double delta = 1e-3;
  double phi_hat_min = 0.1;  ///< Theorem-1 parameter

  /// S-RT execution width for the per-agent phases: 1 = sequential (default),
  /// 0 = auto-detect (hardware_concurrency), N = fixed pool of N threads.
  /// Results are bit-identical at every setting; this is wall-clock only.
  std::size_t threads = 1;

  /// S-KER math backend: "" = keep the process default (PDSL_KERNEL_BACKEND
  /// env var, else blocked), "blocked" | "naive" | "vectorized" | "auto"
  /// force one. The naive path is the differential-testing reference;
  /// "vectorized" (and "auto", which may dispatch to it per shape) is the
  /// S-VEC fast-math tier — deterministic but only tolerance-banded against
  /// the reference. See DESIGN.md "S-KER" for the cross-backend numerics
  /// contract and band policy.
  std::string backend;

  std::uint64_t seed = 1;
  double drop_prob = 0.0;  ///< legacy alias for faults.drop_prob
  /// S-FAULT: deterministic drop/delay/churn injection plus the staleness
  /// bound. drop_prob above is folded in when faults.drop_prob is 0.
  sim::FaultPlan faults;
  /// S-RECOV: unreliable-channel transport — deterministic bit-flip
  /// corruption, duplication and reordering, recovered by the checksum-NACK/
  /// retransmit loop with bounded retries and round-granular backoff.
  sim::ChannelPlan channel;
  /// S-RECOV: fail-stop crash schedule + periodic snapshot cadence.
  sim::CrashPlan crash;
  /// S-RECOV: directory for per-agent recovery snapshot files ("" = snapshots
  /// stay in memory only).
  std::string recovery_dir;
  /// S-RECOV kill-and-resume: persist a resumable run-state file every N
  /// rounds (0 = off; requires checkpoint_path). Never fires after the final
  /// round.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Resume a previous run from this run-state file ("" = fresh run). The
  /// file's config-identity hash must match this config.
  std::string resume_from;
  /// S-BYZ: Byzantine roles (who attacks, how, when) + defense screening.
  sim::AdversaryPlan adversary;
  algos::DefenseOptions defense;
  /// Lossy channel compression spec: "none", "topk:<fraction>", "quant:<bits>"
  /// (extension experiment; see src/compress/).
  std::string compression = "none";
  algos::MetricsOptions metrics;
  /// S-SCALE fleet knobs: sampled/walk participation, sparse topologies,
  /// lazy agent state, wire round-trip verification. All-defaults =
  /// historical behavior.
  fleet::FleetOptions fleet;

  /// S-OBS: collect a per-phase wall-time breakdown and have the CLI/bench
  /// front-ends print it (phase timings are recorded regardless; this flag
  /// only controls reporting).
  bool profile = false;
  /// S-OBS: enable span tracing for this run and write Chrome trace-event
  /// JSON (chrome://tracing / Perfetto loadable) to this path; empty = off.
  std::string trace_out;
  /// S-BENCH360: write a structured JSONL run ledger (round-level events:
  /// per-round epsilon spent, Shapley pi/phi vectors, fault/Byzantine
  /// counters, per-phase wall time) to this path; empty = off. Stripping the
  /// volatile "phase_timing" and "run_env" lines, the ledger is
  /// bit-identical at any --threads (see obs/ledger.hpp).
  std::string ledger_out;
};

struct ExperimentResult {
  std::string algorithm;
  std::vector<sim::RoundMetrics> series;
  double final_loss = 0.0;
  double final_accuracy = 0.0;
  double sigma = 0.0;                ///< noise actually used
  double heterogeneity = 0.0;        ///< mean pairwise TV distance of label dists
  graph::SpectralInfo spectral;      ///< of the mixing matrix
  std::size_t model_dim = 0;
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::size_t dropped = 0;           ///< messages lost to faults (drops + churn)
  std::size_t delayed = 0;           ///< messages that arrived late
  std::size_t corrupted = 0;         ///< payloads corrupted by Byzantine senders
  std::size_t rejected = 0;          ///< payloads refused by sanitization (total)
  std::size_t reclipped = 0;         ///< received gradients re-clipped to C (total)
  std::vector<float> average_model;  ///< consensus model after the last round
  obs::PhaseTimings phase_totals;    ///< per-phase seconds summed over rounds
  /// Total privacy budget spent by the run: the RDP accountant's epsilon at
  /// cfg.delta after the final round (0 for non-private runs). The per-round
  /// trajectory is series[t].epsilon_spent.
  double epsilon_spent = 0.0;
  // S-SCALE fleet accounting (0 unless the corresponding knob is on).
  std::size_t wire_messages = 0;       ///< messages round-tripped through the wire codec
  std::size_t wire_bytes = 0;          ///< encoded frame bytes across those messages
  std::size_t workers_peak = 0;        ///< high-water mark of resident LocalWorkers
  std::size_t models_materialized = 0; ///< model rows diverged from the shared x0
  std::size_t participants = 0;        ///< sampled participants in the final round
  // S-RECOV transport + recovery accounting (0 unless channel/crash are on).
  std::size_t retransmits = 0;           ///< frames resent after a NACK
  std::size_t corruptions_detected = 0;  ///< checksum-caught bit flips
  std::size_t retry_exhausted = 0;       ///< messages lost after all retries
  std::size_t duplicates_dropped = 0;    ///< duplicate copies deduped
  std::size_t reordered = 0;             ///< deliveries that jumped the queue
  std::size_t crashes = 0;               ///< agent crash/restart events (total)
  std::size_t resyncs = 0;               ///< crashes recovered with a neighbor resync
  std::size_t resumed_from_round = 0;    ///< 0 = fresh run; else the resume cursor
};

/// Resolve the noise level for a config (exposed for the sigma ablation).
/// The "theorem1" mode needs the dense mixing matrix; sparse fleet runs use
/// the other modes (run_experiment throws loudly on the combination).
double calibrate_sigma(const ExperimentConfig& cfg, const graph::MixingMatrix& w);

/// Build the algorithm by name over a prepared Env (PDSL lives here; baselines
/// come from pdsl_algos). Adversary/defense wiring rides in env.
std::unique_ptr<algos::Algorithm> make_algorithm(const std::string& name,
                                                 const algos::Env& env);

/// S-RECOV: FNV-1a over the canonical JSON of `cfg` with the volatile,
/// resume-irrelevant knobs scrubbed (threads, profiling/output paths, the
/// checkpoint/resume knobs themselves). Two configs that must produce the
/// same learning trajectory hash equal; a checkpoint resumes only against a
/// matching hash.
std::uint64_t config_identity_hash(const ExperimentConfig& cfg);

/// End-to-end: build everything from the config, run, summarize.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// The five algorithms of the paper's evaluation, in its plotting order.
const std::vector<std::string>& paper_algorithms();

}  // namespace pdsl::core
