#pragma once
// Multi-seed replication: run the same experiment config across seeds and
// aggregate (mean, stddev, min, max) of the summary metrics. Benches use it
// for error bars; single-seed runs jitter noticeably at reduced scale.

#include <vector>

#include "core/experiment.hpp"

namespace pdsl::core {

struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  static Aggregate of(const std::vector<double>& xs);
};

struct ReplicatedResult {
  Aggregate final_loss;
  Aggregate final_accuracy;
  std::vector<ExperimentResult> runs;  ///< one per seed, in seed order
};

/// Run `cfg` once per seed (cfg.seed is overwritten per run).
ReplicatedResult run_replicated(ExperimentConfig cfg, const std::vector<std::uint64_t>& seeds);

}  // namespace pdsl::core
