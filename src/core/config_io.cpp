#include "core/config_io.hpp"

#include <set>
#include <stdexcept>

#include "fleet/options.hpp"
#include "sim/faults.hpp"

namespace pdsl::core {

namespace {

json::Value defense_to_json(const algos::DefenseOptions& d) {
  json::Object o;
  o["sanitize"] = std::string(algos::sanitize_to_string(d.sanitize));
  o["robust_agg"] = std::string(algos::robust_agg_to_string(d.robust_agg));
  o["trim_frac"] = d.trim_frac;
  return json::Value(std::move(o));
}

algos::DefenseOptions defense_from_json(const json::Value& v) {
  const auto& obj = v.as_object();
  static const std::set<std::string> known = {"sanitize", "robust_agg", "trim_frac"};
  for (const auto& [key, value] : obj) {
    if (known.find(key) == known.end()) {
      throw std::invalid_argument("defense_from_json: unknown key '" + key + "'");
    }
  }
  algos::DefenseOptions d;
  if (v.contains("sanitize")) d.sanitize = algos::sanitize_from_string(v.at("sanitize").as_string());
  if (v.contains("robust_agg")) {
    d.robust_agg = algos::robust_agg_from_string(v.at("robust_agg").as_string());
  }
  if (v.contains("trim_frac")) d.trim_frac = v.at("trim_frac").as_number();
  return d;
}

}  // namespace

json::Value config_to_json(const ExperimentConfig& cfg) {
  json::Object o;
  o["algorithm"] = cfg.algorithm;
  o["dataset"] = cfg.dataset;
  o["model"] = cfg.model;
  o["topology"] = cfg.topology;
  o["agents"] = cfg.agents;
  o["rounds"] = cfg.rounds;
  o["train_samples"] = cfg.train_samples;
  o["test_samples"] = cfg.test_samples;
  o["validation_samples"] = cfg.validation_samples;
  o["image"] = cfg.image;
  o["hidden"] = cfg.hidden;
  o["mu"] = cfg.mu;
  o["iid"] = cfg.iid;
  o["partition"] = cfg.partition;
  o["shards_per_agent"] = cfg.shards_per_agent;
  o["corrupt_agents"] = cfg.corrupt_agents;
  o["byzantine_agents"] = cfg.byzantine_agents;
  o["gamma"] = cfg.hp.gamma;
  o["alpha"] = cfg.hp.alpha;
  o["clip"] = cfg.hp.clip;
  o["sigma"] = cfg.hp.sigma;
  o["batch"] = cfg.hp.batch;
  o["shapley_permutations"] = cfg.hp.shapley_permutations;
  o["shapley_method"] = cfg.hp.shapley_method;
  o["shapley_eval"] = cfg.hp.shapley_eval;
  o["shapley_min_permutations"] = cfg.hp.shapley_min_permutations;
  o["shapley_ci_z"] = cfg.hp.shapley_ci_z;
  o["validation_batch"] = cfg.hp.validation_batch;
  o["gossip_steps"] = cfg.hp.gossip_steps;
  o["local_steps"] = cfg.hp.local_steps;
  o["sigma_mode"] = cfg.sigma_mode;
  o["noise_scale"] = cfg.noise_scale;
  o["epsilon"] = cfg.epsilon;
  o["delta"] = cfg.delta;
  o["phi_hat_min"] = cfg.phi_hat_min;
  o["threads"] = cfg.threads;
  o["backend"] = cfg.backend;
  o["seed"] = cfg.seed;
  o["drop_prob"] = cfg.drop_prob;
  o["faults"] = sim::fault_plan_to_json(cfg.faults);
  o["channel"] = sim::channel_plan_to_json(cfg.channel);
  o["crash"] = sim::crash_plan_to_json(cfg.crash);
  o["recovery_dir"] = cfg.recovery_dir;
  o["checkpoint_every"] = cfg.checkpoint_every;
  o["checkpoint_path"] = cfg.checkpoint_path;
  o["resume_from"] = cfg.resume_from;
  o["adversary"] = sim::adversary_plan_to_json(cfg.adversary);
  o["defense"] = defense_to_json(cfg.defense);
  o["compression"] = cfg.compression;
  o["fleet"] = fleet::fleet_options_to_json(cfg.fleet);
  o["test_subsample"] = cfg.metrics.test_subsample;
  o["eval_every"] = cfg.metrics.eval_every;
  o["metric_agents"] = cfg.metrics.metric_agents;
  o["profile"] = cfg.profile;
  o["trace_out"] = cfg.trace_out;
  o["ledger_out"] = cfg.ledger_out;
  return json::Value(std::move(o));
}

ExperimentConfig config_from_json(const json::Value& v) {
  const auto& obj = v.as_object();
  static const std::set<std::string> known = {
      "algorithm",  "dataset",   "model",     "topology",      "agents",
      "rounds",     "train_samples", "test_samples", "validation_samples",
      "image",      "hidden",    "mu",        "iid",           "partition",
      "shards_per_agent", "corrupt_agents", "byzantine_agents", "gamma", "alpha", "clip",
      "sigma",      "batch",     "shapley_permutations", "shapley_method",
      "shapley_eval", "shapley_min_permutations", "shapley_ci_z",
      "validation_batch", "gossip_steps", "local_steps", "sigma_mode",
      "noise_scale", "epsilon",  "delta",     "phi_hat_min",   "threads",
      "backend",    "seed",      "drop_prob",  "faults", "adversary", "defense",
      "channel",    "crash",     "recovery_dir", "checkpoint_every",
      "checkpoint_path", "resume_from",
      "compression", "fleet", "test_subsample", "eval_every", "metric_agents",
      "profile",     "trace_out", "ledger_out"};
  for (const auto& [key, value] : obj) {
    if (known.find(key) == known.end()) {
      throw std::invalid_argument("config_from_json: unknown key '" + key + "'");
    }
  }

  ExperimentConfig cfg;
  auto str = [&](const char* k, std::string& dst) {
    if (v.contains(k)) dst = v.at(k).as_string();
  };
  auto num = [&](const char* k, double& dst) {
    if (v.contains(k)) dst = v.at(k).as_number();
  };
  auto idx = [&](const char* k, std::size_t& dst) {
    if (v.contains(k)) dst = static_cast<std::size_t>(v.at(k).as_int());
  };
  str("algorithm", cfg.algorithm);
  str("dataset", cfg.dataset);
  str("model", cfg.model);
  str("topology", cfg.topology);
  idx("agents", cfg.agents);
  idx("rounds", cfg.rounds);
  idx("train_samples", cfg.train_samples);
  idx("test_samples", cfg.test_samples);
  idx("validation_samples", cfg.validation_samples);
  idx("image", cfg.image);
  idx("hidden", cfg.hidden);
  num("mu", cfg.mu);
  if (v.contains("iid")) cfg.iid = v.at("iid").as_bool();
  str("partition", cfg.partition);
  idx("shards_per_agent", cfg.shards_per_agent);
  idx("corrupt_agents", cfg.corrupt_agents);
  idx("byzantine_agents", cfg.byzantine_agents);
  num("gamma", cfg.hp.gamma);
  num("alpha", cfg.hp.alpha);
  num("clip", cfg.hp.clip);
  num("sigma", cfg.hp.sigma);
  idx("batch", cfg.hp.batch);
  idx("shapley_permutations", cfg.hp.shapley_permutations);
  str("shapley_method", cfg.hp.shapley_method);
  str("shapley_eval", cfg.hp.shapley_eval);
  idx("shapley_min_permutations", cfg.hp.shapley_min_permutations);
  num("shapley_ci_z", cfg.hp.shapley_ci_z);
  idx("validation_batch", cfg.hp.validation_batch);
  idx("gossip_steps", cfg.hp.gossip_steps);
  idx("local_steps", cfg.hp.local_steps);
  str("sigma_mode", cfg.sigma_mode);
  num("noise_scale", cfg.noise_scale);
  num("epsilon", cfg.epsilon);
  num("delta", cfg.delta);
  num("phi_hat_min", cfg.phi_hat_min);
  idx("threads", cfg.threads);
  str("backend", cfg.backend);
  if (v.contains("seed")) cfg.seed = static_cast<std::uint64_t>(v.at("seed").as_int());
  num("drop_prob", cfg.drop_prob);
  if (v.contains("faults")) cfg.faults = sim::fault_plan_from_json(v.at("faults"));
  if (v.contains("channel")) cfg.channel = sim::channel_plan_from_json(v.at("channel"));
  if (v.contains("crash")) cfg.crash = sim::crash_plan_from_json(v.at("crash"));
  str("recovery_dir", cfg.recovery_dir);
  idx("checkpoint_every", cfg.checkpoint_every);
  str("checkpoint_path", cfg.checkpoint_path);
  str("resume_from", cfg.resume_from);
  if (v.contains("adversary")) {
    cfg.adversary = sim::adversary_plan_from_json(v.at("adversary"));
  }
  if (v.contains("defense")) cfg.defense = defense_from_json(v.at("defense"));
  str("compression", cfg.compression);
  if (v.contains("fleet")) cfg.fleet = fleet::fleet_options_from_json(v.at("fleet"));
  idx("test_subsample", cfg.metrics.test_subsample);
  idx("eval_every", cfg.metrics.eval_every);
  idx("metric_agents", cfg.metrics.metric_agents);
  if (v.contains("profile")) cfg.profile = v.at("profile").as_bool();
  str("trace_out", cfg.trace_out);
  str("ledger_out", cfg.ledger_out);
  return cfg;
}

ExperimentConfig load_config(const std::string& path) {
  return config_from_json(json::parse_file(path));
}

json::Value result_to_json(const ExperimentResult& res) {
  json::Object o;
  o["algorithm"] = res.algorithm;
  o["final_loss"] = res.final_loss;
  o["final_accuracy"] = res.final_accuracy;
  o["sigma"] = res.sigma;
  o["heterogeneity"] = res.heterogeneity;
  o["rho"] = res.spectral.rho;
  o["spectral_gap"] = res.spectral.spectral_gap;
  o["model_dim"] = res.model_dim;
  o["messages"] = res.messages;
  o["bytes"] = res.bytes;
  o["dropped"] = res.dropped;
  o["delayed"] = res.delayed;
  o["corrupted"] = res.corrupted;
  o["rejected"] = res.rejected;
  o["reclipped"] = res.reclipped;
  o["epsilon_spent"] = res.epsilon_spent;
  o["wire_messages"] = res.wire_messages;
  o["wire_bytes"] = res.wire_bytes;
  o["workers_peak"] = res.workers_peak;
  o["models_materialized"] = res.models_materialized;
  o["participants"] = res.participants;
  o["retransmits"] = res.retransmits;
  o["corruptions_detected"] = res.corruptions_detected;
  o["retry_exhausted"] = res.retry_exhausted;
  o["duplicates_dropped"] = res.duplicates_dropped;
  o["reordered"] = res.reordered;
  o["crashes"] = res.crashes;
  o["resyncs"] = res.resyncs;
  o["resumed_from_round"] = res.resumed_from_round;
  json::Object phases;
  phases["local_grad_s"] = res.phase_totals.local_grad_s;
  phases["crossgrad_s"] = res.phase_totals.crossgrad_s;
  phases["shapley_s"] = res.phase_totals.shapley_s;
  phases["aggregate_s"] = res.phase_totals.aggregate_s;
  phases["gossip_s"] = res.phase_totals.gossip_s;
  o["phase_totals"] = json::Value(std::move(phases));
  json::Array series;
  for (const auto& m : res.series) {
    json::Object row;
    row["round"] = m.round;
    row["avg_loss"] = m.avg_loss;
    row["test_accuracy"] = m.test_accuracy;
    row["consensus"] = m.consensus;
    row["epsilon_spent"] = m.epsilon_spent;
    if (m.byz_active > 0) {
      row["byzantine_active"] = m.byz_active;
      row["msgs_rejected"] = m.rejected;
      row["pi_attacker"] = m.pi_attacker;
      row["pi_honest"] = m.pi_honest;
    }
    series.push_back(json::Value(std::move(row)));
  }
  o["series"] = json::Value(std::move(series));
  return json::Value(std::move(o));
}

}  // namespace pdsl::core
