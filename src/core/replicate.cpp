#include "core/replicate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pdsl::core {

Aggregate Aggregate::of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("Aggregate::of: empty sample");
  Aggregate a;
  a.mean = std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - a.mean) * (x - a.mean);
  a.stddev = xs.size() > 1 ? std::sqrt(var / static_cast<double>(xs.size() - 1)) : 0.0;
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  a.min = *mn;
  a.max = *mx;
  return a;
}

ReplicatedResult run_replicated(ExperimentConfig cfg,
                                const std::vector<std::uint64_t>& seeds) {
  if (seeds.empty()) throw std::invalid_argument("run_replicated: no seeds");
  ReplicatedResult out;
  std::vector<double> losses, accs;
  for (const auto seed : seeds) {
    cfg.seed = seed;
    out.runs.push_back(run_experiment(cfg));
    losses.push_back(out.runs.back().final_loss);
    accs.push_back(out.runs.back().final_accuracy);
  }
  out.final_loss = Aggregate::of(losses);
  out.final_accuracy = Aggregate::of(accs);
  return out;
}

}  // namespace pdsl::core
