#pragma once
// JSON (de)serialization for ExperimentConfig and ExperimentResult, so that
// experiments are reproducible from declarative files:
//   pdsl_cli run --config experiment.json
// Unknown keys in a config file are an error (typos should not silently
// fall back to defaults).

#include <string>

#include "common/json.hpp"
#include "core/experiment.hpp"

namespace pdsl::core {

/// Serialize a config (every field, including defaults).
json::Value config_to_json(const ExperimentConfig& cfg);

/// Build a config from JSON: start from defaults, override per present key.
/// Throws std::invalid_argument on unknown keys or wrong value types.
ExperimentConfig config_from_json(const json::Value& v);

/// Convenience: parse a JSON file into a config.
ExperimentConfig load_config(const std::string& path);

/// Summarize a result (summary metrics + per-round series) as JSON.
json::Value result_to_json(const ExperimentResult& res);

}  // namespace pdsl::core
