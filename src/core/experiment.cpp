#include "core/experiment.hpp"

#include <optional>
#include <stdexcept>

#include "algos/dp_cga.hpp"
#include "algos/dp_dpsgd.hpp"
#include "algos/dp_netfleet.hpp"
#include "algos/async_gossip.hpp"
#include "algos/dpsgd.hpp"
#include "algos/fedavg.hpp"
#include "algos/muffliato.hpp"
#include "algos/qgm.hpp"
#include "compress/compressor.hpp"
#include "core/config_io.hpp"
#include "core/pdsl.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "dp/calibration.hpp"
#include "dp/mechanism.hpp"
#include "fleet/sparse_graph.hpp"
#include "kernels/backend.hpp"
#include "nn/model_zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "recovery/recovery.hpp"
#include "recovery/run_state.hpp"
#include "runtime/parallel_for.hpp"

namespace pdsl::core {

namespace {

data::Dataset build_dataset(const ExperimentConfig& cfg) {
  const std::size_t total = cfg.train_samples + cfg.test_samples + cfg.validation_samples;
  if (cfg.dataset == "mnist_like") {
    return data::make_synthetic_images(data::mnist_like_spec(total, cfg.image, cfg.seed));
  }
  if (cfg.dataset == "cifar_like") {
    return data::make_synthetic_images(data::cifar_like_spec(total, cfg.image, cfg.seed));
  }
  if (cfg.dataset == "gaussian") {
    return data::make_gaussian_mixture(total, 10, cfg.image * cfg.image, 1.5, 1.0, cfg.seed);
  }
  throw std::invalid_argument("run_experiment: unknown dataset '" + cfg.dataset + "'");
}

std::size_t dataset_channels(const ExperimentConfig& cfg) {
  return cfg.dataset == "cifar_like" ? 3 : 1;
}

/// `w` may be null on sparse fleet runs (the N x N matrix is never built);
/// only the "theorem1" mode needs it and throws loudly without it.
double calibrate_sigma_impl(const ExperimentConfig& cfg, const graph::MixingMatrix* w) {
  if (cfg.sigma_mode == "none") return 0.0;
  if (cfg.sigma_mode == "fixed") return cfg.hp.sigma;
  if (cfg.sigma_mode == "dpsgd") {
    // Mini-batch mean of per-example-bounded gradients: replacing one example
    // moves the mean by at most 2C/B.
    const double sensitivity = 2.0 * cfg.hp.clip / static_cast<double>(cfg.hp.batch);
    return dp::gaussian_sigma(sensitivity, cfg.epsilon, cfg.delta);
  }
  if (cfg.sigma_mode == "theorem1") {
    if (w == nullptr) {
      throw std::invalid_argument(
          "run_experiment: sigma_mode 'theorem1' needs the dense mixing matrix and is not "
          "available with fleet.sparse; use 'dpsgd', 'fixed' or 'none'");
    }
    dp::Theorem1Params p;
    p.epsilon = cfg.epsilon;
    p.delta = cfg.delta;
    p.clip = cfg.hp.clip;
    p.phi_hat_min = cfg.phi_hat_min;
    return dp::theorem1_sigma(*w, p);
  }
  throw std::invalid_argument("run_experiment: unknown sigma_mode '" + cfg.sigma_mode + "'");
}

}  // namespace

double calibrate_sigma(const ExperimentConfig& cfg, const graph::MixingMatrix& w) {
  return calibrate_sigma_impl(cfg, &w);
}

std::unique_ptr<algos::Algorithm> make_algorithm(const std::string& name,
                                                 const algos::Env& env) {
  Pdsl::Options popts;
  if (name == "pdsl") return std::make_unique<Pdsl>(env, popts);
  if (name == "pdsl_uniform") {
    popts.uniform_weights = true;
    return std::make_unique<Pdsl>(env, popts);
  }
  if (name == "pdsl_relu") {
    popts.relu_normalization = true;
    return std::make_unique<Pdsl>(env, popts);
  }
  if (name == "pdsl_robust") {
    // Both robustness extensions together: loss characteristic + ReLU norm.
    popts.relu_normalization = true;
    popts.loss_characteristic = true;
    return std::make_unique<Pdsl>(env, popts);
  }
  if (name == "dp_dpsgd") return std::make_unique<algos::DpDpsgd>(env);
  if (name == "muffliato") return std::make_unique<algos::Muffliato>(env);
  if (name == "dp_cga") return std::make_unique<algos::DpCga>(env);
  if (name == "dp_netfleet") return std::make_unique<algos::DpNetFleet>(env);
  if (name == "async_dp_gossip") return std::make_unique<algos::AsyncDpGossip>(env);
  if (name == "dp_qgm") return std::make_unique<algos::DpQgm>(env);
  if (name == "fedavg" || name == "dp_fedavg") return std::make_unique<algos::FedAvg>(env);
  if (name == "dpsgd") return std::make_unique<algos::DPSGD>(env);
  if (name == "dmsgd") return std::make_unique<algos::DMSGD>(env);
  throw std::invalid_argument("make_algorithm: unknown algorithm '" + name + "'");
}

std::uint64_t config_identity_hash(const ExperimentConfig& cfg) {
  ExperimentConfig scrub = cfg;
  // Wall-clock-only and output-routing knobs do not change the trajectory;
  // the checkpoint/resume knobs must not change the hash or a checkpointed
  // run could never be resumed by a config that (correctly) differs in them.
  scrub.threads = 1;
  // cfg.backend stays in the hash: the S-VEC tier is only tolerance-banded
  // against the reference, so switching backends switches trajectories.
  scrub.profile = false;
  scrub.trace_out.clear();
  scrub.ledger_out.clear();
  scrub.recovery_dir.clear();
  scrub.checkpoint_every = 0;
  scrub.checkpoint_path.clear();
  scrub.resume_from.clear();
  return recovery::fnv1a_str(config_to_json(scrub).dump());
}

const std::vector<std::string>& paper_algorithms() {
  static const std::vector<std::string> algos = {"dp_dpsgd", "dp_cga", "muffliato",
                                                 "dp_netfleet", "pdsl"};
  return algos;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  // S-RT: configure the execution width for this run's per-agent phases.
  runtime::set_global_threads(cfg.threads);
  // S-KER: select the math backend; "" keeps the process default (env var).
  if (!cfg.backend.empty()) {
    kernels::set_backend(kernels::backend_from_string(cfg.backend));
  }

  Rng rng(cfg.seed);

  // Data: one synthetic pool split into train / validation (Q) / test.
  const data::Dataset pool = build_dataset(cfg);
  auto [train_and_val, test] = data::split_off(pool, cfg.test_samples, rng);
  auto [train, validation] = data::split_off(train_and_val, cfg.validation_samples, rng);

  // Heterogeneous partition of the training data.
  Rng part_rng = rng.split(0x9A27);
  std::vector<std::vector<std::size_t>> partition;
  if (cfg.iid || cfg.partition == "iid") {
    partition = data::iid_partition(train, cfg.agents, part_rng);
  } else if (cfg.partition == "shards") {
    partition = data::shard_partition(train, cfg.agents, cfg.shards_per_agent, part_rng);
  } else if (cfg.partition == "dirichlet") {
    data::PartitionOptions popts;
    popts.mu = cfg.mu;
    popts.min_per_agent = std::max<std::size_t>(2, cfg.hp.batch / 4);
    partition = data::dirichlet_partition(train, cfg.agents, popts, part_rng);
  } else {
    throw std::invalid_argument("run_experiment: unknown partition '" + cfg.partition + "'");
  }
  const auto dists = data::label_distributions(train, partition, train.num_classes());

  // Optional poisoning: the first corrupt_agents agents see random labels.
  if (cfg.corrupt_agents > 0) {
    if (cfg.corrupt_agents >= cfg.agents) {
      throw std::invalid_argument("run_experiment: corrupt_agents must be < agents");
    }
    Rng poison_rng = rng.split(0xBAD);
    const auto classes = static_cast<std::int64_t>(train.num_classes());
    for (std::size_t a = 0; a < cfg.corrupt_agents; ++a) {
      for (std::size_t idx : partition[a]) {
        train.set_label(idx, static_cast<int>(poison_rng.uniform_int(0, classes - 1)));
      }
    }
  }

  // S-SCALE gating: the fleet path covers the graph-gossip algorithms only.
  // FedAvg has a virtual server (no graph traffic to guard) and the async
  // baseline's pairwise wakes assume every agent is addressable every event.
  if (cfg.fleet.enabled() &&
      (cfg.algorithm == "fedavg" || cfg.algorithm == "dp_fedavg" ||
       cfg.algorithm == "async_dp_gossip")) {
    throw std::invalid_argument("run_experiment: algorithm '" + cfg.algorithm +
                                "' does not support fleet mode (participation sampling / "
                                "lazy state / sparse graphs)");
  }
  cfg.fleet.validate(cfg.agents);

  // Communication graph + mixing matrix. The sparse fleet path never builds
  // the N x N Topology/MixingMatrix; both paths present the same views.
  const bool sparse_only_topology = cfg.topology == "regular" || cfg.topology == "geometric";
  if (sparse_only_topology && !cfg.fleet.sparse) {
    throw std::invalid_argument("run_experiment: topology '" + cfg.topology +
                                "' is generated on demand and requires fleet.sparse "
                                "(--sparse)");
  }
  std::optional<graph::Topology> dense_topo;
  std::optional<graph::MixingMatrix> dense_mixing;
  std::optional<fleet::SparseGraph> sparse_topo;
  std::optional<fleet::SparseMetropolis> sparse_mixing;
  const graph::TopologyView* topo_v = nullptr;
  const graph::MixingView* mix_v = nullptr;
  if (cfg.fleet.sparse) {
    if (cfg.topology == "ring") {
      sparse_topo.emplace(fleet::SparseGraph::ring(cfg.agents));
    } else if (cfg.topology == "regular") {
      sparse_topo.emplace(fleet::SparseGraph::regular(cfg.agents, cfg.fleet.degree));
    } else if (cfg.topology == "geometric") {
      sparse_topo.emplace(
          fleet::SparseGraph::random_geometric(cfg.agents, cfg.fleet.radius, cfg.seed));
    } else {
      // Equivalence path: snapshot the dense generator's adjacency so every
      // historical topology can be replayed through the CSR views.
      Rng topo_rng = rng.split(0x70B0);
      const auto dense = graph::Topology::make(graph::topology_from_string(cfg.topology),
                                               cfg.agents, &topo_rng);
      sparse_topo.emplace(fleet::SparseGraph::from_topology(dense));
    }
    sparse_mixing.emplace(*sparse_topo);
    topo_v = &*sparse_topo;
    mix_v = &*sparse_mixing;
  } else {
    Rng topo_rng = rng.split(0x70B0);
    dense_topo.emplace(
        graph::Topology::make(graph::topology_from_string(cfg.topology), cfg.agents, &topo_rng));
    dense_mixing.emplace(graph::MixingMatrix::metropolis(*dense_topo));
    topo_v = &*dense_topo;
    mix_v = &*dense_mixing;
  }

  // Model template.
  const nn::Model model_template =
      nn::make_model(cfg.model, cfg.image, dataset_channels(cfg), train.num_classes(),
                     cfg.hidden);

  // Noise calibration.
  algos::HyperParams hp = cfg.hp;
  hp.sigma = calibrate_sigma_impl(cfg, dense_mixing ? &*dense_mixing : nullptr);
  if (cfg.sigma_mode != "none") hp.sigma *= cfg.noise_scale;

  algos::Env env;
  env.topo = topo_v;
  env.mixing = mix_v;
  env.train = &train;
  env.validation = &validation;
  env.model_template = &model_template;
  env.partition = &partition;
  env.hp = hp;
  env.seed = cfg.seed;
  env.dp_delta = cfg.delta;
  env.drop_prob = cfg.drop_prob;
  env.faults = cfg.faults;
  env.faults.validate();
  env.adversary = cfg.adversary;
  // Legacy byzantine_agents knob: explicit sign_flip roles at the historical
  // x3 amplification, unless a real plan is already configured.
  if (cfg.byzantine_agents > 0 && !env.adversary.any()) {
    if (cfg.byzantine_agents >= cfg.agents) {
      throw std::invalid_argument("run_experiment: byzantine_agents must be < agents");
    }
    for (std::size_t a = 0; a < cfg.byzantine_agents; ++a) {
      env.adversary.roles.push_back(
          sim::ByzRole{a, sim::ByzMode::kSignFlip, 3.0, 1, sim::kNoRoundLimit});
    }
  }
  env.adversary.validate();
  env.channel = cfg.channel;
  env.channel.validate();
  env.crash = cfg.crash;
  env.crash.validate();
  env.defense = cfg.defense;
  env.fleet = cfg.fleet;
  const auto compressor = compress::make_compressor(cfg.compression);
  if (cfg.compression != "none" && !cfg.compression.empty()) env.compressor = compressor.get();

  // S-OBS: tracing stays off (near-zero overhead) unless a sink is named.
  // The recorder is process-global, so back-to-back runs accumulate into the
  // same trace file — each run rewrites it with everything recorded so far.
  if (!cfg.trace_out.empty()) obs::TraceRecorder::global().enable(true);
  obs::MetricsRegistry::global().gauge("dp.sigma").set(hp.sigma);

  auto alg = make_algorithm(cfg.algorithm, env);

  // S-RECOV: crash injection + snapshot/resync recovery rides on run_round
  // via the RecoveryHook seam. The crash seed falls back to the run seed so
  // configs stay terse; decisions remain a pure (seed, agent, round) hash.
  std::optional<recovery::RecoveryManager> recov;
  if (cfg.crash.any()) {
    sim::CrashPlan plan = cfg.crash;
    if (plan.seed == 0) plan.seed = cfg.seed;
    recovery::RecoveryOptions ropts;
    ropts.snapshot_dir = cfg.recovery_dir;
    recov.emplace(plan, ropts);
    alg->set_recovery(&*recov);
  }

  // S-RECOV kill-and-resume: restore the algorithm + driver state saved by a
  // previous run's checkpoint hook, refusing a config-identity mismatch.
  const std::uint64_t cfg_hash = config_identity_hash(cfg);
  algos::ResumeState resume_state;
  const algos::ResumeState* resume_ptr = nullptr;
  if (!cfg.resume_from.empty()) {
    recovery::RunState st = recovery::load_run_state(cfg.resume_from, cfg_hash);
    io::ByteReader reader(st.algo_state, "run-state algorithm blob");
    alg->load_state(reader);
    resume_state = std::move(st.resume);
    resume_ptr = &resume_state;
  }
  algos::CheckpointHook checkpoint_hook;
  if (cfg.checkpoint_every > 0) {
    if (cfg.checkpoint_path.empty()) {
      throw std::invalid_argument(
          "run_experiment: checkpoint_every > 0 requires checkpoint_path");
    }
    checkpoint_hook = [&cfg, cfg_hash, &alg](std::size_t t, double last_acc,
                                             const dp::RdpAccountant& accountant,
                                             const std::vector<sim::RoundMetrics>& so_far) {
      recovery::RunState st;
      st.config_hash = cfg_hash;
      st.resume.completed_rounds = t;
      st.resume.last_acc = last_acc;
      st.resume.accountant_rdp = accountant.accumulated_rdp();
      st.resume.accountant_invocations = accountant.num_invocations();
      st.resume.prior_series = so_far;
      alg->save_state(st.algo_state);
      recovery::save_run_state(cfg.checkpoint_path, st);
    };
  }

  // S-BENCH360 run ledger: header event with the run's identity, the
  // per-round events from run_with_metrics, then a summary footer.
  obs::RunLedger ledger;
  if (!cfg.ledger_out.empty()) {
    ledger.open(cfg.ledger_out);
    json::Object start;
    start["algorithm"] = cfg.algorithm;
    start["dataset"] = cfg.dataset;
    start["model"] = cfg.model;
    start["topology"] = cfg.topology;
    start["agents"] = cfg.agents;
    start["rounds"] = cfg.rounds;
    start["seed"] = cfg.seed;
    start["sigma"] = hp.sigma;
    start["epsilon"] = cfg.epsilon;
    start["delta"] = cfg.delta;
    ledger.event("run_start", std::move(start));
    // Width-dependent identity goes into its own volatile event so the rest
    // of the ledger stays byte-comparable across --threads settings.
    json::Object env_ev;
    env_ev["threads"] = cfg.threads;
    ledger.event(obs::RunLedger::kEnvEvent, std::move(env_ev));
  }

  auto series = algos::run_with_metrics(*alg, cfg.rounds, test, cfg.metrics,
                                        ledger.enabled() ? &ledger : nullptr, resume_ptr,
                                        checkpoint_hook, cfg.checkpoint_every);

  ExperimentResult res;
  res.algorithm = alg->name();
  res.final_loss = series.empty() ? 0.0 : series.back().avg_loss;
  res.final_accuracy = series.empty() ? 0.0 : series.back().test_accuracy;
  res.sigma = hp.sigma;
  res.heterogeneity = data::heterogeneity_index(dists);
  // Spectral analysis needs the dense W; sparse fleet runs report zeros
  // rather than materializing an N x N matrix just for the diagnostics.
  if (dense_mixing) res.spectral = graph::analyze(*dense_mixing);
  res.model_dim = model_template.num_params();
  res.messages = alg->network().messages_sent();
  res.bytes = alg->network().bytes_sent();
  res.dropped = alg->network().messages_dropped();
  res.delayed = alg->network().messages_delayed();
  res.corrupted = alg->network().messages_corrupted();
  for (const auto& rm : series) {
    res.rejected += rm.rejected;
    res.reclipped += rm.reclipped;
  }
  res.average_model = alg->average_model();
  res.wire_messages = alg->network().wire_messages();
  res.wire_bytes = alg->network().wire_bytes();
  res.retransmits = alg->network().retransmits();
  res.corruptions_detected = alg->network().corruptions_detected();
  res.retry_exhausted = alg->network().retry_exhausted();
  res.duplicates_dropped = alg->network().duplicates_dropped();
  res.reordered = alg->network().reorders();
  for (const auto& rm : series) {
    res.crashes += rm.crashes;
    res.resyncs += rm.resyncs;
  }
  res.resumed_from_round = resume_ptr != nullptr ? resume_state.completed_rounds : 0;
  res.workers_peak = alg->workers_peak();
  res.models_materialized = alg->models_materialized();
  res.participants = alg->participants();
  for (const auto& rm : series) res.phase_totals += rm.phases;
  res.epsilon_spent = series.empty() ? 0.0 : series.back().epsilon_spent;
  res.series = std::move(series);
  alg->network().publish_edge_metrics();
  if (ledger.enabled()) {
    json::Object end;
    end["final_loss"] = res.final_loss;
    end["final_accuracy"] = res.final_accuracy;
    end["messages"] = res.messages;
    end["bytes"] = res.bytes;
    end["dropped"] = res.dropped;
    end["corrupted"] = res.corrupted;
    end["epsilon_spent"] = res.epsilon_spent;
    end["retransmits"] = res.retransmits;
    end["corruptions_detected"] = res.corruptions_detected;
    end["retry_exhausted"] = res.retry_exhausted;
    end["crashes"] = res.crashes;
    end["resyncs"] = res.resyncs;
    ledger.event("run_end", std::move(end));
    ledger.close();
  }
  if (!cfg.trace_out.empty()) obs::TraceRecorder::global().write(cfg.trace_out);
  return res;
}

}  // namespace pdsl::core
