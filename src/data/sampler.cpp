#include "data/sampler.hpp"

#include <stdexcept>

namespace pdsl::data {

BatchSampler::BatchSampler(const Dataset& ds, std::vector<std::size_t> indices,
                           std::size_t batch_size, Rng rng)
    : ds_(&ds), indices_(std::move(indices)), batch_(batch_size), rng_(rng) {
  if (indices_.empty()) throw std::invalid_argument("BatchSampler: empty index set");
  if (batch_ == 0) throw std::invalid_argument("BatchSampler: zero batch size");
}

std::pair<Tensor, std::vector<int>> BatchSampler::sample() {
  return sample_with(rng_);
}

std::pair<Tensor, std::vector<int>> BatchSampler::sample_with(Rng& rng) const {
  std::vector<std::size_t> pick(batch_);
  for (auto& p : pick) {
    p = indices_[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(indices_.size()) - 1))];
  }
  return {ds_->batch_features(pick), ds_->batch_labels(pick)};
}

std::pair<Tensor, std::vector<int>> BatchSampler::next_epoch_batch() {
  if (epoch_order_.empty()) {
    epoch_order_ = indices_;
    rng_.shuffle(epoch_order_);
    epoch_pos_ = 0;
  }
  std::vector<std::size_t> pick;
  pick.reserve(batch_);
  for (std::size_t k = 0; k < batch_; ++k) {
    if (epoch_pos_ >= epoch_order_.size()) {
      rng_.shuffle(epoch_order_);
      epoch_pos_ = 0;
    }
    pick.push_back(epoch_order_[epoch_pos_++]);
  }
  return {ds_->batch_features(pick), ds_->batch_labels(pick)};
}

}  // namespace pdsl::data
