#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdsl::data {

Dataset::Dataset(Shape sample_shape, std::vector<float> features, std::vector<int> labels)
    : sample_shape_(std::move(sample_shape)),
      features_(std::move(features)),
      labels_(std::move(labels)) {
  const std::size_t per = shape_numel(sample_shape_);
  if (per == 0) throw std::invalid_argument("Dataset: empty sample shape");
  if (features_.size() != per * labels_.size()) {
    throw std::invalid_argument("Dataset: feature/label size mismatch");
  }
}

std::size_t Dataset::sample_numel() const { return shape_numel(sample_shape_); }

std::size_t Dataset::num_classes() const {
  int mx = -1;
  for (int y : labels_) mx = std::max(mx, y);
  return static_cast<std::size_t>(mx + 1);
}

void Dataset::set_label(std::size_t i, int label) {
  if (i >= size()) throw std::out_of_range("Dataset::set_label");
  if (label < 0) throw std::invalid_argument("Dataset::set_label: negative label");
  labels_[i] = label;
}

const float* Dataset::sample(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("Dataset::sample");
  return features_.data() + i * sample_numel();
}

Tensor Dataset::batch_features(const std::vector<std::size_t>& idx) const {
  const std::size_t per = sample_numel();
  Shape bshape;
  bshape.push_back(idx.size());
  for (std::size_t d : sample_shape_) bshape.push_back(d);
  Tensor batch(bshape);
  float* out = batch.data();
  for (std::size_t b = 0; b < idx.size(); ++b) {
    const float* src = sample(idx[b]);
    std::copy(src, src + per, out + b * per);
  }
  return batch;
}

std::vector<int> Dataset::batch_labels(const std::vector<std::size_t>& idx) const {
  std::vector<int> out(idx.size());
  for (std::size_t b = 0; b < idx.size(); ++b) {
    if (idx[b] >= size()) throw std::out_of_range("Dataset::batch_labels");
    out[b] = labels_[idx[b]];
  }
  return out;
}

Tensor Dataset::all_features() const {
  std::vector<std::size_t> idx(size());
  for (std::size_t i = 0; i < size(); ++i) idx[i] = i;
  return batch_features(idx);
}

Dataset Dataset::subset(const std::vector<std::size_t>& idx) const {
  const std::size_t per = sample_numel();
  std::vector<float> feats(idx.size() * per);
  std::vector<int> labs(idx.size());
  for (std::size_t b = 0; b < idx.size(); ++b) {
    const float* src = sample(idx[b]);
    std::copy(src, src + per, feats.begin() + static_cast<std::ptrdiff_t>(b * per));
    labs[b] = labels_[idx[b]];
  }
  return Dataset(sample_shape_, std::move(feats), std::move(labs));
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes(), 0);
  for (int y : labels_) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

std::pair<Dataset, Dataset> split_off(const Dataset& ds, std::size_t held_out_count, Rng& rng) {
  if (held_out_count > ds.size()) {
    throw std::invalid_argument("split_off: held_out_count exceeds dataset size");
  }
  auto perm = rng.permutation(ds.size());
  std::vector<std::size_t> held(perm.begin(),
                                perm.begin() + static_cast<std::ptrdiff_t>(held_out_count));
  std::vector<std::size_t> rest(perm.begin() + static_cast<std::ptrdiff_t>(held_out_count),
                                perm.end());
  return {ds.subset(rest), ds.subset(held)};
}

}  // namespace pdsl::data
