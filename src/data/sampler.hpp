#pragma once
// Mini-batch sampling over an agent's local index set. The paper samples
// ξ_{i,t} uniformly from D_i each round (with replacement); an epoch-style
// without-replacement sampler is also provided for the examples.

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace pdsl::data {

class BatchSampler {
 public:
  /// `indices`: the sample indices this agent owns within `ds`.
  BatchSampler(const Dataset& ds, std::vector<std::size_t> indices, std::size_t batch_size,
               Rng rng);

  /// Uniform with-replacement draw of one mini-batch (the paper's sampling).
  [[nodiscard]] std::pair<Tensor, std::vector<int>> sample();

  /// Stateless variant: draw with an externally supplied stream instead of
  /// advancing the member RNG (S-SCALE round-keyed draws — a worker evicted
  /// and re-materialized draws exactly the batches it would have resident).
  [[nodiscard]] std::pair<Tensor, std::vector<int>> sample_with(Rng& rng) const;

  /// Sequential epoch sampling; reshuffles when the epoch is exhausted.
  [[nodiscard]] std::pair<Tensor, std::vector<int>> next_epoch_batch();

  [[nodiscard]] std::size_t local_size() const { return indices_.size(); }
  [[nodiscard]] std::size_t batch_size() const { return batch_; }

  /// The member draw stream, exposed for S-RECOV checkpoint/resume: stateful
  /// (non-fleet) runs advance rng_ once per sample(), so resuming a run
  /// bit-identically requires saving and restoring its cursor.
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  const Dataset* ds_;
  std::vector<std::size_t> indices_;
  std::size_t batch_;
  Rng rng_;
  std::vector<std::size_t> epoch_order_;
  std::size_t epoch_pos_ = 0;
};

}  // namespace pdsl::data
