#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdsl::data {

std::vector<std::vector<std::size_t>> dirichlet_partition(const Dataset& ds,
                                                          std::size_t num_agents,
                                                          const PartitionOptions& opts,
                                                          Rng& rng) {
  if (num_agents == 0) throw std::invalid_argument("dirichlet_partition: zero agents");
  if (ds.size() < num_agents * opts.min_per_agent) {
    throw std::invalid_argument("dirichlet_partition: dataset too small for constraints");
  }
  const std::size_t classes = ds.num_classes();
  std::vector<std::vector<std::size_t>> by_class(classes);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    by_class[static_cast<std::size_t>(ds.label(i))].push_back(i);
  }

  std::vector<std::vector<std::size_t>> parts(num_agents);
  const std::vector<double> alpha(num_agents, opts.mu);
  for (std::size_t c = 0; c < classes; ++c) {
    auto& idx = by_class[c];
    rng.shuffle(idx);
    const std::vector<double> probs = rng.dirichlet(alpha);
    // Cut the shuffled class indices into contiguous chunks proportional to
    // the drawn probabilities (largest-remainder rounding).
    const std::size_t n = idx.size();
    std::vector<std::size_t> counts(num_agents, 0);
    std::size_t assigned = 0;
    std::vector<std::pair<double, std::size_t>> remainders;
    for (std::size_t a = 0; a < num_agents; ++a) {
      const double exact = probs[a] * static_cast<double>(n);
      counts[a] = static_cast<std::size_t>(exact);
      assigned += counts[a];
      remainders.emplace_back(exact - std::floor(exact), a);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (std::size_t k = 0; assigned < n; ++k, ++assigned) {
      ++counts[remainders[k % num_agents].second];
    }
    std::size_t off = 0;
    for (std::size_t a = 0; a < num_agents; ++a) {
      for (std::size_t k = 0; k < counts[a]; ++k) parts[a].push_back(idx[off++]);
    }
  }

  // Rebalance: agents under min_per_agent steal random samples from the
  // largest agent. Keeps the partition a partition while avoiding starved
  // agents that could not even form a mini-batch.
  for (std::size_t a = 0; a < num_agents; ++a) {
    while (parts[a].size() < opts.min_per_agent) {
      const auto richest = static_cast<std::size_t>(
          std::max_element(parts.begin(), parts.end(),
                           [](const auto& x, const auto& y) { return x.size() < y.size(); }) -
          parts.begin());
      if (parts[richest].size() <= opts.min_per_agent) break;  // nothing left to steal
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(parts[richest].size()) - 1));
      parts[a].push_back(parts[richest][pick]);
      parts[richest][pick] = parts[richest].back();
      parts[richest].pop_back();
    }
  }
  return parts;
}

std::vector<std::vector<std::size_t>> iid_partition(const Dataset& ds, std::size_t num_agents,
                                                    Rng& rng) {
  if (num_agents == 0) throw std::invalid_argument("iid_partition: zero agents");
  auto perm = rng.permutation(ds.size());
  std::vector<std::vector<std::size_t>> parts(num_agents);
  for (std::size_t i = 0; i < perm.size(); ++i) parts[i % num_agents].push_back(perm[i]);
  return parts;
}

std::vector<std::vector<std::size_t>> shard_partition(const Dataset& ds,
                                                      std::size_t num_agents,
                                                      std::size_t shards_per_agent, Rng& rng) {
  if (num_agents == 0 || shards_per_agent == 0) {
    throw std::invalid_argument("shard_partition: zero agents or shards");
  }
  const std::size_t num_shards = num_agents * shards_per_agent;
  if (ds.size() < num_shards) {
    throw std::invalid_argument("shard_partition: dataset smaller than shard count");
  }
  // Stable sort indices by label so each shard is (nearly) label-pure.
  std::vector<std::size_t> order(ds.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return ds.label(a) < ds.label(b); });

  auto shard_ids = rng.permutation(num_shards);
  std::vector<std::vector<std::size_t>> parts(num_agents);
  const std::size_t base = ds.size() / num_shards;
  std::size_t extra = ds.size() % num_shards;  // spread the remainder
  std::size_t off = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    const std::size_t owner = shard_ids[s] / shards_per_agent;
    for (std::size_t k = 0; k < len; ++k) parts[owner].push_back(order[off + k]);
    off += len;
  }
  return parts;
}

std::vector<std::vector<double>> label_distributions(
    const Dataset& ds, const std::vector<std::vector<std::size_t>>& parts,
    std::size_t num_classes) {
  std::vector<std::vector<double>> out(parts.size(), std::vector<double>(num_classes, 0.0));
  for (std::size_t a = 0; a < parts.size(); ++a) {
    for (std::size_t i : parts[a]) {
      out[a][static_cast<std::size_t>(ds.label(i))] += 1.0;
    }
    const double total = static_cast<double>(parts[a].size());
    if (total > 0) {
      for (auto& v : out[a]) v /= total;
    }
  }
  return out;
}

double heterogeneity_index(const std::vector<std::vector<double>>& dists) {
  const std::size_t m = dists.size();
  if (m < 2) return 0.0;
  double acc = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      double tv = 0.0;
      for (std::size_t c = 0; c < dists[i].size(); ++c) {
        tv += std::abs(dists[i][c] - dists[j][c]);
      }
      acc += 0.5 * tv;
      ++pairs;
    }
  }
  return acc / static_cast<double>(pairs);
}

}  // namespace pdsl::data
