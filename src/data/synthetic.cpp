#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pdsl::data {

namespace {

/// Deterministic class template: sum of two class-keyed sinusoids plus a
/// Gaussian blob whose center walks around the image with the class index.
/// Channels get phase-shifted copies so channels are correlated but distinct.
float template_pixel(std::size_t cls, std::size_t ch, std::size_t r, std::size_t c,
                     std::size_t image) {
  const double pi = std::numbers::pi;
  const double fr = 1.0 + static_cast<double>(cls % 5);
  const double fc = 1.0 + static_cast<double>((cls * 3 + 1) % 7);
  const double phase = static_cast<double>(ch) * 0.7 + static_cast<double>(cls) * 0.31;
  const double x = static_cast<double>(c) / static_cast<double>(image);
  const double y = static_cast<double>(r) / static_cast<double>(image);
  double v = 0.9 * std::sin(2.0 * pi * fr * y + phase) * std::cos(2.0 * pi * fc * x);

  const double cx = 0.5 + 0.3 * std::cos(2.0 * pi * static_cast<double>(cls) / 10.0);
  const double cy = 0.5 + 0.3 * std::sin(2.0 * pi * static_cast<double>(cls) / 10.0);
  const double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
  v += 2.2 * std::exp(-d2 / 0.03);
  return static_cast<float>(v);
}

}  // namespace

Dataset make_synthetic_images(const SyntheticSpec& spec) {
  if (spec.classes == 0 || spec.image == 0 || spec.channels == 0) {
    throw std::invalid_argument("make_synthetic_images: degenerate spec");
  }
  Rng rng(spec.seed);
  const std::size_t per = spec.channels * spec.image * spec.image;
  std::vector<float> features(spec.num_samples * per);
  std::vector<int> labels(spec.num_samples);

  for (std::size_t i = 0; i < spec.num_samples; ++i) {
    const auto cls =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(spec.classes) - 1));
    labels[i] = static_cast<int>(cls);
    // Per-sample translation jitter: sub-pixel shifts of the template.
    const double dr = rng.uniform(-spec.jitter, spec.jitter);
    const double dc = rng.uniform(-spec.jitter, spec.jitter);
    float* out = features.data() + i * per;
    for (std::size_t ch = 0; ch < spec.channels; ++ch) {
      for (std::size_t r = 0; r < spec.image; ++r) {
        for (std::size_t c = 0; c < spec.image; ++c) {
          const auto rr = static_cast<std::size_t>(std::clamp(
              static_cast<double>(r) + dr, 0.0, static_cast<double>(spec.image - 1)));
          const auto cc = static_cast<std::size_t>(std::clamp(
              static_cast<double>(c) + dc, 0.0, static_cast<double>(spec.image - 1)));
          float v = template_pixel(cls, ch, rr, cc, spec.image);
          v += static_cast<float>(rng.normal(0.0, spec.noise));
          out[(ch * spec.image + r) * spec.image + c] = v;
        }
      }
    }
  }
  return Dataset(Shape{spec.channels, spec.image, spec.image}, std::move(features),
                 std::move(labels));
}

SyntheticSpec mnist_like_spec(std::size_t num_samples, std::size_t image, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.num_samples = num_samples;
  spec.image = image;
  spec.channels = 1;
  spec.noise = 0.35;
  spec.seed = seed;
  return spec;
}

SyntheticSpec cifar_like_spec(std::size_t num_samples, std::size_t image, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.num_samples = num_samples;
  spec.image = image;
  spec.channels = 3;
  spec.noise = 0.6;  // harder task, mirroring CIFAR-10's lower accuracies
  spec.jitter = 1.5;
  spec.seed = seed;
  return spec;
}

Dataset make_gaussian_mixture(std::size_t num_samples, std::size_t classes, std::size_t dim,
                              double separation, double noise, std::uint64_t seed) {
  if (classes == 0 || dim == 0) throw std::invalid_argument("make_gaussian_mixture: degenerate");
  Rng rng(seed);
  // Class means: deterministic directions scaled by `separation`.
  std::vector<std::vector<double>> means(classes, std::vector<double>(dim));
  Rng mean_rng = rng.split(0xC1A55);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t d = 0; d < dim; ++d) means[c][d] = mean_rng.normal(0.0, separation);
  }
  std::vector<float> features(num_samples * dim);
  std::vector<int> labels(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const auto cls =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
    labels[i] = static_cast<int>(cls);
    for (std::size_t d = 0; d < dim; ++d) {
      features[i * dim + d] = static_cast<float>(means[cls][d] + rng.normal(0.0, noise));
    }
  }
  return Dataset(Shape{dim, 1, 1}, std::move(features), std::move(labels));
}

}  // namespace pdsl::data
