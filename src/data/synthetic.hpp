#pragma once
// Synthetic class-structured image datasets standing in for MNIST / CIFAR-10
// (see DESIGN.md "Substitutions"). Each class c has a deterministic template
// image built from class-dependent frequency patterns plus a class-positioned
// blob; samples are noisy draws around the template. This preserves exactly
// what the paper's evaluation manipulates: clustered per-class structure that
// a small CNN/MLP can learn, with label-skew heterogeneity layered on top by
// the Dirichlet partitioner.

#include <cstddef>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace pdsl::data {

struct SyntheticSpec {
  std::size_t num_samples = 2000;
  std::size_t classes = 10;
  std::size_t image = 14;     ///< square image side
  std::size_t channels = 1;   ///< 1 = MNIST-like, 3 = CIFAR-like
  double noise = 0.35;        ///< per-pixel Gaussian noise stddev
  double jitter = 1.0;        ///< max random translation of the class blob (pixels)
  std::uint64_t seed = 1;
};

/// Draw `spec.num_samples` samples with uniformly distributed labels.
Dataset make_synthetic_images(const SyntheticSpec& spec);

/// MNIST-like preset: 1 channel; side defaults to the paper's 28 but reduced
/// scale benches pass a smaller side.
SyntheticSpec mnist_like_spec(std::size_t num_samples, std::size_t image = 28,
                              std::uint64_t seed = 1);

/// CIFAR-like preset: 3 channels, harder (more noise).
SyntheticSpec cifar_like_spec(std::size_t num_samples, std::size_t image = 32,
                              std::uint64_t seed = 2);

/// Low-dimensional Gaussian-mixture dataset (one Gaussian per class) for fast
/// unit tests; sample shape (dim, 1, 1).
Dataset make_gaussian_mixture(std::size_t num_samples, std::size_t classes, std::size_t dim,
                              double separation, double noise, std::uint64_t seed);

}  // namespace pdsl::data
