#pragma once
// Heterogeneous (non-IID) data partitioning across agents via the Dirichlet
// label-skew scheme the paper uses (Sec. VI-A): for every label y, a
// probability vector over the M agents is drawn from Dir(mu * 1_M) and the
// samples of label y are distributed accordingly. mu -> 0 concentrates each
// label on few agents; mu -> infinity recovers an IID split.

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace pdsl::data {

struct PartitionOptions {
  double mu = 0.25;              ///< Dirichlet concentration (paper: 0.25)
  std::size_t min_per_agent = 2; ///< rebalance so nobody is starved
};

/// Returns, for each agent, the list of sample indices it owns. Every sample
/// is assigned to exactly one agent.
std::vector<std::vector<std::size_t>> dirichlet_partition(const Dataset& ds,
                                                          std::size_t num_agents,
                                                          const PartitionOptions& opts,
                                                          Rng& rng);

/// Uniform IID partition (shuffled round-robin), the homogeneous control.
std::vector<std::vector<std::size_t>> iid_partition(const Dataset& ds, std::size_t num_agents,
                                                    Rng& rng);

/// Pathological shard partition (McMahan et al. [2]): sort samples by label,
/// cut into `num_agents * shards_per_agent` contiguous shards, deal each
/// agent `shards_per_agent` shards at random. With shards_per_agent = 2 most
/// agents see only ~2 labels — the classic worst-case label skew.
std::vector<std::vector<std::size_t>> shard_partition(const Dataset& ds,
                                                      std::size_t num_agents,
                                                      std::size_t shards_per_agent, Rng& rng);

/// Per-agent label distribution (rows: agents, cols: classes; rows sum to 1).
std::vector<std::vector<double>> label_distributions(const Dataset& ds,
                                                     const std::vector<std::vector<std::size_t>>& parts,
                                                     std::size_t num_classes);

/// Mean pairwise total-variation distance between agents' label distributions;
/// 0 = perfectly IID, -> 1 as labels become disjoint. Used to verify that the
/// Dirichlet partitioner actually produces heterogeneity.
double heterogeneity_index(const std::vector<std::vector<double>>& dists);

}  // namespace pdsl::data
