#pragma once
// In-memory labeled dataset (S3). Samples are stored contiguously; batches
// are materialized as (B, C, H, W) tensors for the NN substrate.

#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace pdsl::data {

class Dataset {
 public:
  Dataset() = default;

  /// sample_shape is (C, H, W); features has size n * numel(sample_shape).
  Dataset(Shape sample_shape, std::vector<float> features, std::vector<int> labels);

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] bool empty() const { return labels_.empty(); }
  [[nodiscard]] const Shape& sample_shape() const { return sample_shape_; }
  [[nodiscard]] std::size_t sample_numel() const;
  [[nodiscard]] std::size_t num_classes() const;

  [[nodiscard]] int label(std::size_t i) const { return labels_[i]; }

  /// Overwrite one label. Exists for corruption/poisoning experiments (e.g.
  /// the Shapley-robustness ablation) — not used by the training paths.
  void set_label(std::size_t i, int label);
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }
  [[nodiscard]] const float* sample(std::size_t i) const;

  /// Materialize a batch from indices as a (B, C, H, W) tensor + labels.
  [[nodiscard]] Tensor batch_features(const std::vector<std::size_t>& idx) const;
  [[nodiscard]] std::vector<int> batch_labels(const std::vector<std::size_t>& idx) const;

  /// The whole dataset as one batch (use on small validation/test sets only).
  [[nodiscard]] Tensor all_features() const;

  /// Copy a subset.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& idx) const;

  /// Per-class sample counts (length = num_classes()).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

 private:
  Shape sample_shape_;
  std::vector<float> features_;
  std::vector<int> labels_;
};

/// Split `ds` into (remainder, held_out) with `held_out_count` samples chosen
/// uniformly at random — used to carve out the global validation set Q.
std::pair<Dataset, Dataset> split_off(const Dataset& ds, std::size_t held_out_count, Rng& rng);

}  // namespace pdsl::data
